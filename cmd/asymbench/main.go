// Command asymbench regenerates the paper's tables and figures, and runs
// the named scenario families that extend the evaluation beyond the paper.
//
// Usage:
//
//	asymbench -exp fig4a                 # one experiment
//	asymbench -exp all                   # everything, paper order
//	asymbench -exp fig4a -scale 0.1     # scaled down (faster)
//	asymbench -scenario burst-sweep     # a registered scenario family
//	asymbench -list
//
// Output is plain text, one table per experiment; see EXPERIMENTS.md for
// the mapping to the paper's figures and the expected shapes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dynasym/internal/experiments"
	"dynasym/internal/metrics"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list) or 'all'")
		scenName = flag.String("scenario", "", "named scenario family (see -list)")
		scale    = flag.Float64("scale", 1.0, "experiment scale: 1.0 = paper scale")
		seed     = flag.Uint64("seed", 42, "base random seed")
		progress = flag.Bool("progress", false, "report per-cell progress on stderr while a -scenario runs")
		explain  = flag.Bool("explain", false, "with -scenario: print per-policy schedule reports (time breakdown, steal matrix, PTT convergence) after the table")
		list     = flag.Bool("list", false, "list experiment ids and scenario families")
	)
	flag.Parse()

	if *list || (*exp == "" && *scenName == "") {
		fmt.Println("experiments:")
		for _, n := range experiments.Names() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("scenario families (-scenario):")
		width := 0
		for _, n := range scenario.Names() {
			if len(n) > width {
				width = len(n)
			}
		}
		for _, n := range scenario.Names() {
			f, _ := scenario.Lookup(n)
			fmt.Printf("  %-*s  %s\n", width, n, f.Desc)
		}
		if *exp == "" && *scenName == "" {
			os.Exit(2)
		}
		return
	}

	if *scenName != "" {
		f, ok := scenario.Lookup(*scenName)
		if !ok {
			fmt.Fprintf(os.Stderr, "asymbench: unknown scenario %q (available: %s)\n",
				*scenName, strings.Join(scenario.Names(), ", "))
			os.Exit(1)
		}
		spec := f.Spec(*scale)
		spec.Seed = *seed
		spec.Probe = *explain
		if *progress {
			// The engine reports (done, total) monotonically, once per
			// finished (policy × point × rep) cell.
			spec.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells", *scenName, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		start := time.Now()
		res, err := scenario.Run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asymbench: %v\n", err)
			os.Exit(1)
		}
		res.WriteTable(os.Stdout)
		fmt.Printf("(%s on %s in %.1fs)\n", *scenName, res.Topo, time.Since(start).Seconds())
		if *explain {
			explainResult(res)
		}
		if *exp == "" {
			return
		}
	}
	if *explain && *scenName == "" {
		fmt.Fprintln(os.Stderr, "asymbench: -explain requires -scenario")
		os.Exit(1)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := run(id, experiments.Scale(*scale), *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asymbench: %v\n", err)
			os.Exit(1)
		}
		res.Render(os.Stdout)
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}

func run(id string, scale experiments.Scale, seed uint64) (experiments.Renderer, error) {
	switch id {
	case "table1":
		return experiments.Table1(), nil
	case "fig4a":
		return experiments.Fig4(experiments.Fig4Config{Kernel: workloads.MatMul, Scale: scale, Seed: seed}), nil
	case "fig4b":
		return experiments.Fig4(experiments.Fig4Config{Kernel: workloads.Copy, Scale: scale, Seed: seed}), nil
	case "fig4c":
		return experiments.Fig4(experiments.Fig4Config{Kernel: workloads.Stencil, Scale: scale, Seed: seed}), nil
	case "fig5":
		return experiments.Fig5(experiments.Fig5Config{Scale: scale, Seed: seed}), nil
	case "fig6":
		return experiments.Fig6(experiments.Fig5Config{Scale: scale, Seed: seed}), nil
	case "fig7a":
		return experiments.Fig7(experiments.Fig7Config{Kernel: workloads.MatMul, Scale: scale, Seed: seed}), nil
	case "fig7b":
		return experiments.Fig7(experiments.Fig7Config{Kernel: workloads.Copy, Scale: scale, Seed: seed}), nil
	case "fig7c":
		return experiments.Fig7(experiments.Fig7Config{Kernel: workloads.Stencil, Scale: scale, Seed: seed}), nil
	case "fig8":
		return experiments.Fig8(experiments.Fig8Config{Scale: scale, Seed: seed}), nil
	case "fig9a", "fig9b", "fig9c":
		res := experiments.Fig9(experiments.Fig9Config{Scale: scale, Seed: seed})
		switch id {
		case "fig9b":
			return placesRenderer{res, "RWS"}, nil
		case "fig9c":
			return placesRenderer{res, "DAM-P"}, nil
		}
		return res, nil
	case "fig10":
		return experiments.Fig10(experiments.Fig10Config{Scale: scale, Seed: seed}), nil
	case "ablation-alpha":
		return experiments.AblationAlpha(experiments.AblationConfig{Scale: scale, Seed: seed}), nil
	case "ablation-width":
		return experiments.AblationWidth(experiments.AblationConfig{Scale: scale, Seed: seed}), nil
	case "ablation-infer":
		return experiments.AblationInfer(experiments.AblationConfig{Scale: scale, Seed: seed}), nil
	case "ablation-steal", "ablation-wake", "ablation-dheft", "ablation-sampled":
		return experiments.Ablation(experiments.AblationConfig{
			Variant: strings.TrimPrefix(id, "ablation-"),
			Scale:   scale,
			Seed:    seed,
		})
	default:
		return nil, fmt.Errorf("unknown experiment %q (try -list)", id)
	}
}

// explainResult prints one schedule report per policy, each merged over
// the policy's full row of cells (every point and repetition).
func explainResult(res *scenario.Result) {
	for pi, pol := range res.Policies {
		var merged *metrics.Sched
		for xi := range res.Cells[pi] {
			if s := res.Cells[pi][xi].Sched(); s != nil {
				if merged == nil {
					merged = s
				} else {
					merged.Merge(s)
				}
			}
		}
		if merged == nil {
			continue
		}
		fmt.Printf("\n## schedule report: %s\n", pol)
		merged.WriteReport(os.Stdout)
	}
}

// placesRenderer renders Figure 9b/c from a Fig9 result.
type placesRenderer struct {
	res    *experiments.Fig9Result
	policy string
}

func (p placesRenderer) Render(w io.Writer) {
	if err := p.res.RenderPlaces(w, p.policy); err != nil {
		fmt.Fprintf(os.Stderr, "asymbench: %v\n", err)
	}
}
