// Command asymd serves the scenario engine over HTTP: submit a spec (or a
// registered family at a scale), poll the job, fetch the memoized result.
// Identical concurrent submissions share one simulation; finished results
// are cached by the spec's canonical hash.
//
// Usage:
//
//	asymd                          # listen on :8080
//	asymd -addr 127.0.0.1:0        # ephemeral port (logged at startup)
//	asymd -workers 4 -cache 256
//	asymd -peers http://10.0.0.7:8080,http://10.0.0.8:8080
//
// Execution is cell-sharded: a submitted grid is planned into per-cell
// jobs, cached cells are served from the cell-granular LRU, and the
// misses are batched into shards. With -peers set, shards round-robin
// over this node's local pool and the peers' POST /v1/shards APIs (with
// failover), so one daemon fans a large grid out across several.
//
// The dispatch path is fault-tolerant: each peer sits behind a circuit
// breaker (-fail-threshold consecutive transport failures mark it down;
// it is re-probed after an exponential -probe-backoff), each shard has a
// retry budget (-shard-retries rounds with -retry-backoff between them),
// and when every peer is out, shards drain through the local pool — the
// job completes slower, never dead. GET /v1/healthz reports each peer's
// breaker state.
//
// Endpoints (see internal/service):
//
//	POST /v1/jobs            submit {"family","scale","seed"} or {"spec":{...}}
//	GET  /v1/jobs            list known jobs (state, hash, progress)
//	GET  /v1/jobs/{id}       job status + progress + cell hit/miss counters
//	GET  /v1/results/{hash}  grid summary + bit-exact fingerprint
//	GET  /v1/families        registered scenario families (sorted by name)
//	GET  /v1/healthz         liveness + counters
//	GET  /v1/jobs/{id}/trace Perfetto-loadable Chrome trace of the job
//	GET  /metrics            Prometheus text exposition (disable: -metrics=false)
//	GET  /debug/pprof/       net/http/pprof profiling (opt in: -pprof)
//	POST /v1/shards          worker-facing: execute a batch of plan cells
//
// SIGINT/SIGTERM drain in-flight jobs before exit (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynasym/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		workers   = flag.Int("workers", 0, "concurrent cell simulations on the local pool (0 = GOMAXPROCS)")
		cache     = flag.Int("cache", 128, "result cache capacity (finished jobs)")
		cellCache = flag.Int("cellcache", 4096, "cell-result cache capacity (grid cells)")
		shard     = flag.Int("shard", 16, "max cells per dispatched shard")
		peers     = flag.String("peers", "", "comma-separated base URLs of peer asymd nodes to farm shards to")
		shardTO   = flag.Duration("shard-timeout", 10*time.Minute, "max time for one remote shard attempt before failing over (<0 disables)")
		dialTO    = flag.Duration("dial-timeout", 10*time.Second, "max time to connect to a peer before failing over")
		retries   = flag.Int("shard-retries", 3, "retry budget: rounds over the backend fleet before a shard fails its job")
		backoff   = flag.Duration("retry-backoff", 100*time.Millisecond, "base pause between shard retry rounds, doubling with jitter (<0 disables)")
		failThr   = flag.Int("fail-threshold", 3, "consecutive transport failures before a peer is marked down")
		probeBO   = flag.Duration("probe-backoff", time.Second, "initial down time before a down peer is re-probed, doubling with jitter")
		drain     = flag.Duration("drain", 30*time.Second, "max time to drain in-flight jobs on shutdown")
		jsonLog   = flag.Bool("json", false, "log JSON instead of text")
		metrics   = flag.Bool("metrics", true, "serve the Prometheus registry at GET /metrics")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under GET /debug/pprof/")
		traceKeep = flag.Int("trace-retention", 64, "finished job traces kept for GET /v1/jobs/{id}/trace (0 disables tracing)")
		verbose   = flag.Bool("v", false, "log at debug level (includes /v1/healthz and /metrics scrapes)")
	)
	flag.Parse()

	logOpts := &slog.HandlerOptions{}
	if *verbose {
		logOpts.Level = slog.LevelDebug
	}
	var handler slog.Handler = slog.NewTextHandler(os.Stdout, logOpts)
	if *jsonLog {
		handler = slog.NewJSONHandler(os.Stdout, logOpts)
	}
	logger := slog.New(handler)

	// Cache and shard capacities have no meaningful zero or negative
	// configuration — "-cache 0" used to be coerced to the default
	// silently, which reads like "disable caching" but does the opposite.
	// Reject it loudly instead. (-workers 0 stays meaningful: GOMAXPROCS.)
	for _, f := range []struct {
		name string
		v    int
	}{{"cache", *cache}, {"cellcache", *cellCache}, {"shard", *shard}, {"shard-retries", *retries}, {"fail-threshold", *failThr}} {
		if f.v <= 0 {
			logger.Error("flag value must be positive", "flag", "-"+f.name, "value", f.v)
			os.Exit(2)
		}
	}
	for _, f := range []struct {
		name string
		v    time.Duration
	}{{"dial-timeout", *dialTO}, {"probe-backoff", *probeBO}} {
		if f.v <= 0 {
			logger.Error("flag value must be a positive duration", "flag", "-"+f.name, "value", f.v.String())
			os.Exit(2)
		}
	}
	if *workers < 0 {
		logger.Error("flag value must be non-negative (0 = GOMAXPROCS)", "flag", "-workers", "value", *workers)
		os.Exit(2)
	}
	if *traceKeep < 0 {
		logger.Error("flag value must be non-negative (0 = disable tracing)", "flag", "-trace-retention", "value", *traceKeep)
		os.Exit(2)
	}

	var peerURLs []string
	for _, p := range strings.Split(*peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			logger.Error("peer URL must start with http:// or https://", "peer", p)
			os.Exit(2)
		}
		peerURLs = append(peerURLs, p)
	}

	// Config reserves negative TraceRetention for "disabled" so its zero
	// value keeps the default; the flag uses the friendlier 0.
	traceRetention := *traceKeep
	if traceRetention == 0 {
		traceRetention = -1
	}

	mgr := service.NewManager(service.Config{
		Workers:        *workers,
		CacheSize:      *cache,
		CellCacheSize:  *cellCache,
		ShardSize:      *shard,
		Peers:          peerURLs,
		ShardTimeout:   *shardTO,
		DialTimeout:    *dialTO,
		ShardRetries:   *retries,
		RetryBackoff:   *backoff,
		FailThreshold:  *failThr,
		ProbeBackoff:   *probeBO,
		TraceRetention: traceRetention,
		DisableMetrics: !*metrics,
		EnablePprof:    *pprofOn,
	})

	// Listen before serving so "-addr :0" resolves to a concrete port we
	// can log (the smoke test scrapes this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           mgr.Handler(logger),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("asymd listening", "addr", ln.Addr().String(), "workers", *workers,
		"cache", *cache, "cellcache", *cellCache, "shard", *shard, "peers", len(peerURLs),
		"metrics", *metrics, "pprof", *pprofOn, "trace_retention", *traceKeep)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", drain.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http shutdown incomplete", "err", err)
	}
	if err := mgr.Shutdown(shutCtx); err != nil {
		logger.Warn("jobs still in flight at exit", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
