// Command heatdist runs the distributed 2D Heat stencil for real over the
// mpilite TCP transport: one process per rank, each rank running the real
// task runtime (internal/xtr) on its share of the grid and exchanging
// boundary rows through critical message-passing tasks, like the paper's
// MPI Heat on the Haswell cluster.
//
// Start N processes (locally or on different hosts):
//
//	heatdist -rank 0 -ranks 3 -root 127.0.0.1:7777 &
//	heatdist -rank 1 -ranks 3 -root 127.0.0.1:7777 &
//	heatdist -rank 2 -ranks 3 -root 127.0.0.1:7777
//
// Or spawn all ranks from one process for a quick local check:
//
//	heatdist -local -ranks 3
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"dynasym/internal/core"
	"dynasym/internal/heatdriver"
	"dynasym/internal/mpilite"
	"dynasym/internal/topology"
)

func main() {
	var (
		rank    = flag.Int("rank", 0, "this process's rank")
		ranks   = flag.Int("ranks", 2, "total number of ranks")
		root    = flag.String("root", "127.0.0.1:7777", "rank 0 bootstrap address")
		local   = flag.Bool("local", false, "run all ranks in this process (in-proc transport)")
		policy  = flag.String("policy", "DAM-C", "scheduling policy")
		rows    = flag.Int("rows", 256, "grid rows per rank")
		cols    = flag.Int("cols", 256, "grid columns")
		blocks  = flag.Int("blocks", 8, "row blocks per rank")
		iters   = flag.Int("iters", 50, "Jacobi iterations")
		workers = flag.Int("workers", 4, "workers (virtual cores) per rank")
	)
	flag.Parse()

	pol, err := core.ByName(*policy)
	if err != nil {
		fatal(err)
	}
	cfg := heatdriver.Config{
		Rows:   *rows,
		Cols:   *cols,
		Blocks: *blocks,
		Iters:  *iters,
		Topo:   topology.Symmetric(pow2AtLeast(*workers)),
		Policy: pol,
	}

	if *local {
		comms := mpilite.NewInProc(*ranks)
		var wg sync.WaitGroup
		results := make([]heatdriver.Result, *ranks)
		for r := 0; r < *ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				res, err := heatdriver.Run(cfg, comms[r])
				if err != nil {
					fatal(fmt.Errorf("rank %d: %w", r, err))
				}
				results[r] = res
			}(r)
		}
		wg.Wait()
		for r, res := range results {
			report(r, res)
		}
		return
	}

	comm, err := mpilite.DialTCP(*rank, *ranks, *root, 30*time.Second)
	if err != nil {
		fatal(err)
	}
	defer comm.Close()
	res, err := heatdriver.Run(cfg, comm)
	if err != nil {
		fatal(err)
	}
	report(*rank, res)
}

func report(rank int, res heatdriver.Result) {
	fmt.Printf("rank %d: %d tasks in %.3fs (%.0f tasks/s), residual %.3g\n",
		rank, res.Tasks, res.Seconds, float64(res.Tasks)/res.Seconds, res.Residual)
}

func pow2AtLeast(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "heatdist: %v\n", err)
	os.Exit(1)
}
