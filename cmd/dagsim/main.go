// Command dagsim runs a single synthetic-DAG scenario on the simulated
// platform and prints throughput, per-core work time and the priority-task
// placement histogram. It is the quickest way to poke at one scheduling
// configuration.
//
// Examples:
//
//	dagsim -policy DAM-C -kernel matmul -parallelism 2 -interfere corun
//	dagsim -policy RWS -kernel copy -interfere dvfs -tasks 5000
//	dagsim -policy DAM-P -platform haswell16 -interfere none
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynasym/internal/core"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/trace"
	"dynasym/internal/workloads"
)

func main() {
	var (
		policyName  = flag.String("policy", "DAM-C", "scheduling policy (RWS, RWSM-C, FA, FAM-C, DA, DAM-C, DAM-P, dHEFT)")
		kernelName  = flag.String("kernel", "matmul", "kernel: matmul, copy, stencil")
		platform    = flag.String("platform", "tx2", "platform: tx2, haswell16, sym8")
		parallelism = flag.Int("parallelism", 4, "DAG parallelism (tasks per layer)")
		tasks       = flag.Int("tasks", 10000, "total tasks")
		tile        = flag.Int("tile", 0, "tile size (0 = kernel default)")
		scenario    = flag.String("interfere", "corun", "interference: none, corun, memory, dvfs")
		share       = flag.Float64("share", 0.5, "victim core availability under co-run")
		seed        = flag.Uint64("seed", 42, "random seed")
		alpha       = flag.Float64("alpha", 0, "PTT new-sample weight (0 = paper's 1/5)")
		traceOut    = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the schedule to this file")
	)
	flag.Parse()

	pol, err := core.ByName(*policyName)
	if err != nil {
		fatal(err)
	}
	var topo *topology.Platform
	switch *platform {
	case "tx2":
		topo = topology.TX2()
	case "haswell16":
		topo = topology.Haswell16()
	case "sym8":
		topo = topology.Symmetric(8)
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}
	var kernel workloads.KernelKind
	switch strings.ToLower(*kernelName) {
	case "matmul":
		kernel = workloads.MatMul
	case "copy":
		kernel = workloads.Copy
	case "stencil":
		kernel = workloads.Stencil
	default:
		fatal(fmt.Errorf("unknown kernel %q", *kernelName))
	}

	model := machine.New(topo)
	switch *scenario {
	case "none":
	case "corun":
		interfere.CoRunCPU(model, []int{0}, *share)
	case "memory":
		interfere.CoRunMemory(model, 0, *share, 0.8)
	case "dvfs":
		interfere.PaperDVFS(model, 0)
	default:
		fatal(fmt.Errorf("unknown interference %q", *scenario))
	}

	g := workloads.BuildSynthetic(workloads.SyntheticConfig{
		Kernel:      kernel,
		Tile:        *tile,
		Tasks:       *tasks,
		Parallelism: *parallelism,
	})
	fmt.Printf("platform: %s\n", topo)
	fmt.Printf("policy %s, kernel %s, %d tasks, DAG parallelism %d, interference %s\n",
		pol.Name(), kernel, *tasks, *parallelism, *scenario)

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
	}
	rt, err := simrt.New(simrt.Config{Topo: topo, Model: model, Policy: pol, Seed: *seed, Alpha: *alpha, Trace: rec})
	if err != nil {
		fatal(err)
	}
	coll, err := rt.Run(g)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nthroughput: %.0f tasks/s   makespan: %.3f s\n", coll.Throughput(), coll.Makespan())
	fmt.Println("\nper-core kernel work time [s]:")
	for c, b := range coll.CoreBusy() {
		fmt.Printf("  core %-2d %8.3f\n", c, b)
	}
	fmt.Println("\npriority task placement:")
	for i, ps := range coll.PlaceHistogram(true) {
		if i >= 10 || ps.Frac < 0.001 {
			break
		}
		fmt.Printf("  %-8s %6.1f%%  (%d tasks)\n", ps.Place, ps.Frac*100, ps.Count)
	}
	stats := rt.CoreStats()
	var steals int64
	for _, s := range stats {
		steals += s.Steals
	}
	fmt.Printf("\nsteals: %d\n", steals)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule trace (%d events) written to %s\n", rec.Len(), *traceOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dagsim: %v\n", err)
	os.Exit(1)
}
