// Command dagsim runs a single synthetic-DAG scenario on the simulated
// platform and prints throughput, per-core work time and the priority-task
// placement histogram. It is the quickest way to poke at one scheduling
// configuration: the flags assemble a scenario.Spec and hand it to the
// declarative engine.
//
// Examples:
//
//	dagsim -policy DAM-C -kernel matmul -parallelism 2 -interfere corun
//	dagsim -policy RWS -kernel copy -interfere dvfs -tasks 5000
//	dagsim -policy DAM-P -platform haswell16 -interfere none
//	dagsim -policy DAM-C~8 -platform scaleout-8x8 -interfere burst -parallelism 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynasym/internal/core"
	"dynasym/internal/scenario"
	"dynasym/internal/trace"
	"dynasym/internal/workloads"
)

func main() {
	var (
		policyName  = flag.String("policy", "DAM-C", "scheduling policy (RWS, RWSM-C, FA, FAM-C, DA, DAM-C, DAM-P, dHEFT)")
		kernelName  = flag.String("kernel", "matmul", "kernel: matmul, copy, stencil")
		platform    = flag.String("platform", "tx2", "platform preset: tx2, haswell16, haswell-node, sym<N>, scaleout-<C>x<N>")
		parallelism = flag.Int("parallelism", 4, "DAG parallelism (tasks per layer)")
		tasks       = flag.Int("tasks", 10000, "total tasks")
		tile        = flag.Int("tile", 0, "tile size (0 = kernel default)")
		disturb     = flag.String("interfere", "corun", "interference: none, corun, memory, dvfs, burst, throttle")
		share       = flag.Float64("share", 0.5, "victim core availability under co-run")
		seed        = flag.Uint64("seed", 42, "random seed")
		alpha       = flag.Float64("alpha", 0, "PTT new-sample weight (0 = paper's 1/5)")
		traceOut    = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the schedule to this file")
		progress    = flag.Bool("progress", false, "report cell progress on stderr while the run executes")
	)
	flag.Parse()

	pol, err := core.ByName(*policyName)
	if err != nil {
		fatal(err)
	}
	var kernel workloads.KernelKind
	switch strings.ToLower(*kernelName) {
	case "matmul":
		kernel = workloads.MatMul
	case "copy":
		kernel = workloads.Copy
	case "stencil":
		kernel = workloads.Stencil
	default:
		fatal(fmt.Errorf("unknown kernel %q", *kernelName))
	}

	var disturbances []scenario.Disturbance
	switch *disturb {
	case "none":
	case "corun":
		disturbances = []scenario.Disturbance{{Kind: scenario.CoRunCPU, Cores: []int{0}, Share: *share}}
	case "memory":
		disturbances = []scenario.Disturbance{{Kind: scenario.CoRunMemory, Cores: []int{0}, Share: *share, BWFactor: 0.8}}
	case "dvfs":
		disturbances = []scenario.Disturbance{scenario.PaperDVFS(0)}
	case "burst":
		disturbances = []scenario.Disturbance{{Kind: scenario.Burst, Cluster: 0, Share: *share, BusyDur: 1, IdleDur: 2, PhaseStep: 0.5}}
	case "throttle":
		disturbances = []scenario.Disturbance{{Kind: scenario.Throttle, Cluster: 0, From: 1, To: 4, Floor: 0.3, RampSteps: 6}}
	default:
		fatal(fmt.Errorf("unknown interference %q", *disturb))
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
	}
	spec := scenario.Spec{
		Name:     "dagsim",
		Platform: scenario.PlatformSpec{Preset: *platform},
		Workload: scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel:      kernel,
			Tile:        *tile,
			Tasks:       *tasks,
			Parallelism: *parallelism,
		}},
		Disturb:  disturbances,
		Policies: []core.Policy{pol},
		Seed:     *seed,
		Alpha:    *alpha,
		Trace:    rec,
	}
	if *progress {
		spec.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rdagsim: %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := scenario.Run(spec)
	if err != nil {
		fatal(err)
	}
	run := res.Cells[0][0].Run()

	fmt.Printf("platform: %s\n", res.Topo)
	fmt.Printf("policy %s, kernel %s, %d tasks, DAG parallelism %d, interference %s\n",
		pol.Name(), kernel, *tasks, *parallelism, *disturb)
	fmt.Printf("\nthroughput: %.0f tasks/s   makespan: %.3f s\n", run.Throughput, run.Makespan)
	fmt.Println("\nper-core kernel work time [s]:")
	for c, b := range run.CoreBusy {
		fmt.Printf("  core %-2d %8.3f\n", c, b)
	}
	fmt.Println("\npriority task placement:")
	for i, ps := range run.HighHist {
		if i >= 10 || ps.Frac < 0.001 {
			break
		}
		fmt.Printf("  %-8s %6.1f%%  (%d tasks)\n", ps.Place, ps.Frac*100, ps.Count)
	}
	fmt.Printf("\nsteals: %d\n", run.Steals)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule trace (%d events) written to %s\n", rec.Len(), *traceOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dagsim: %v\n", err)
	os.Exit(1)
}
