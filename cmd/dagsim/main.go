// Command dagsim runs a single DAG scenario on the simulated platform
// and prints throughput, per-core work time and the priority-task
// placement histogram. It is the quickest way to poke at one scheduling
// configuration: the flags assemble a scenario.Spec and hand it to the
// declarative engine.
//
// Three workload sources, in precedence order:
//
//   - -dagfile FILE imports an external task graph (GraphViz DOT or the
//     dagio JSON schema; format inferred from the extension or forced
//     with -format);
//   - -gen MODEL expands a parametric generator (cholesky, lu,
//     fork-join, random-layered; shaped by -tiles/-tile/-layers/-width/
//     -degree);
//   - otherwise the paper's synthetic layered DAG (-kernel, -tasks,
//     -parallelism).
//
// Examples:
//
//	dagsim -policy DAM-C -kernel matmul -parallelism 2 -interfere corun
//	dagsim -dagfile examples/dag/demo.dot -policy DAM-C -interfere dvfs
//	dagsim -gen cholesky -tiles 12 -policy DAM-P -interfere none
//	dagsim -gen random-layered -width 16 -policy DAM-C~8 -platform scaleout-8x8
//	dagsim -list
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"dynasym/internal/core"
	"dynasym/internal/dagio"
	"dynasym/internal/scenario"
	"dynasym/internal/trace"
	"dynasym/internal/workloads"
)

func main() {
	var (
		policyName  = flag.String("policy", "DAM-C", "scheduling policy (RWS, RWSM-C, FA, FAM-C, DA, DAM-C, DAM-P, dHEFT)")
		kernelName  = flag.String("kernel", "matmul", "synthetic kernel: matmul, copy, stencil")
		platform    = flag.String("platform", "tx2", "platform preset: tx2, haswell16, haswell-node, sym<N>, scaleout-<C>x<N>")
		parallelism = flag.Int("parallelism", 4, "synthetic DAG parallelism (tasks per layer)")
		tasks       = flag.Int("tasks", 10000, "synthetic total tasks")
		tile        = flag.Int("tile", 0, "tile size in elements (0 = default; scales per-task cost)")
		dagfile     = flag.String("dagfile", "", "import a task graph from this file and run it (DOT or JSON)")
		format      = flag.String("format", "", "dagfile format: dot or json (default: by extension)")
		gen         = flag.String("gen", "", "generate a classic task graph: "+strings.Join(dagio.Models(), ", "))
		tiles       = flag.Int("tiles", 0, "generator tile-grid edge for cholesky/lu (0 = default 8)")
		layers      = flag.Int("layers", 0, "generator layers/segments for fork-join and random-layered (0 = default 12)")
		width       = flag.Int("width", 0, "generator fork width / tasks per layer (0 = default 8)")
		degree      = flag.Int("degree", 0, "random-layered max predecessors per node (0 = default 3)")
		disturb     = flag.String("interfere", "corun", "interference: none, corun, memory, dvfs, burst, throttle")
		share       = flag.Float64("share", 0.5, "victim core availability under co-run")
		seed        = flag.Uint64("seed", 42, "random seed (runtime and generator structure)")
		alpha       = flag.Float64("alpha", 0, "PTT new-sample weight (0 = paper's 1/5)")
		traceOut    = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the schedule to this file")
		explain     = flag.Bool("explain", false, "print a schedule report: per-core time breakdown, steal matrix, queue depths, PTT convergence")
		progress    = flag.Bool("progress", false, "report cell progress on stderr while the run executes")
		fingerprint = flag.Bool("fingerprint", false, "print the sha256 of the run's determinism fingerprint")
		list        = flag.Bool("list", false, "list generators, import formats and scenario families, then exit")
	)
	flag.Parse()

	if *list {
		printList()
		return
	}

	pol, err := core.ByName(*policyName)
	if err != nil {
		fatal(err)
	}

	var disturbances []scenario.Disturbance
	switch *disturb {
	case "none":
	case "corun":
		disturbances = []scenario.Disturbance{{Kind: scenario.CoRunCPU, Cores: []int{0}, Share: *share}}
	case "memory":
		disturbances = []scenario.Disturbance{{Kind: scenario.CoRunMemory, Cores: []int{0}, Share: *share, BWFactor: 0.8}}
	case "dvfs":
		disturbances = []scenario.Disturbance{scenario.PaperDVFS(0)}
	case "burst":
		disturbances = []scenario.Disturbance{{Kind: scenario.Burst, Cluster: 0, Share: *share, BusyDur: 1, IdleDur: 2, PhaseStep: 0.5}}
	case "throttle":
		disturbances = []scenario.Disturbance{{Kind: scenario.Throttle, Cluster: 0, From: 1, To: 4, Floor: 0.3, RampSteps: 6}}
	default:
		fatal(fmt.Errorf("unknown interference %q (known: none, corun, memory, dvfs, burst, throttle)", *disturb))
	}

	workload, describe, err := buildWorkload(workloadFlags{
		dagfile: *dagfile, format: *format,
		gen: *gen, tiles: *tiles, tile: *tile, layers: *layers, width: *width, degree: *degree, seed: *seed,
		kernel: *kernelName, tasks: *tasks, parallelism: *parallelism,
	})
	if err != nil {
		fatal(err)
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
	}
	spec := scenario.Spec{
		Name:     "dagsim",
		Platform: scenario.PlatformSpec{Preset: *platform},
		Workload: workload,
		Disturb:  disturbances,
		Policies: []core.Policy{pol},
		Seed:     *seed,
		Alpha:    *alpha,
		Trace:    rec,
		// A trace render wants the probe's counter lanes too, so tracing
		// implies probing; neither changes the simulated schedule.
		Probe: *explain || *traceOut != "",
	}
	if *progress {
		spec.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rdagsim: %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := scenario.Run(spec)
	if err != nil {
		fatal(err)
	}
	run := res.Cells[0][0].Run()

	fmt.Printf("platform: %s\n", res.Topo)
	fmt.Printf("policy %s, %s, interference %s\n", pol.Name(), describe, *disturb)
	fmt.Printf("\nthroughput: %.0f tasks/s   makespan: %.3f s   tasks completed: %d\n",
		run.Throughput, run.Makespan, run.TasksDone)
	fmt.Println("\nper-core kernel work time [s]:")
	for c, b := range run.CoreBusy {
		fmt.Printf("  core %-2d %8.3f\n", c, b)
	}
	fmt.Println("\npriority task placement:")
	for i, ps := range run.HighHist {
		if i >= 10 || ps.Frac < 0.001 {
			break
		}
		fmt.Printf("  %-8s %6.1f%%  (%d tasks)\n", ps.Place, ps.Frac*100, ps.Count)
	}
	fmt.Printf("\nsteals: %d\n", run.Steals)
	if *explain {
		if sched := run.Sched; sched != nil {
			fmt.Println()
			sched.WriteReport(os.Stdout)
		}
	}
	if *fingerprint {
		sum := sha256.Sum256([]byte(res.Fingerprint()))
		fmt.Printf("fingerprint: %s\n", hex.EncodeToString(sum[:]))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule trace (%d events) written to %s\n", rec.Len(), *traceOut)
	}
}

// workloadFlags carries the workload-selecting flag values.
type workloadFlags struct {
	dagfile, format                    string
	gen                                string
	tiles, tile, layers, width, degree int
	seed                               uint64
	kernel                             string
	tasks, parallelism                 int
}

// buildWorkload resolves the flags into a WorkloadSpec plus a one-line
// description for the report header.
func buildWorkload(f workloadFlags) (scenario.WorkloadSpec, string, error) {
	if f.dagfile != "" && f.gen != "" {
		return scenario.WorkloadSpec{}, "", fmt.Errorf("-dagfile and -gen are mutually exclusive (one run, one workload source)")
	}
	switch {
	case f.dagfile != "":
		g, err := dagio.LoadFile(f.dagfile, f.format)
		if err != nil {
			return scenario.WorkloadSpec{}, "", err
		}
		digest, err := g.Digest()
		if err != nil {
			return scenario.WorkloadSpec{}, "", err
		}
		desc := fmt.Sprintf("imported %s (%d tasks, %d edges, digest %s)",
			f.dagfile, len(g.Nodes), len(g.Edges), digest[:12])
		return scenario.WorkloadSpec{Kind: scenario.DAGFile, DAG: g}, desc, nil
	case f.gen != "":
		cfg := dagio.GenConfig{
			Model: f.gen, Tiles: f.tiles, Tile: f.tile,
			Layers: f.layers, Width: f.width, Degree: f.degree, Seed: f.seed,
		}
		g, err := cfg.Graph()
		if err != nil {
			return scenario.WorkloadSpec{}, "", err
		}
		digest, err := g.Digest()
		if err != nil {
			return scenario.WorkloadSpec{}, "", err
		}
		desc := fmt.Sprintf("generated %s (%d tasks, %d edges, digest %s)",
			f.gen, len(g.Nodes), len(g.Edges), digest[:12])
		return scenario.WorkloadSpec{Kind: scenario.DAGGen, DAGGen: cfg}, desc, nil
	default:
		var kernel workloads.KernelKind
		switch strings.ToLower(f.kernel) {
		case "matmul":
			kernel = workloads.MatMul
		case "copy":
			kernel = workloads.Copy
		case "stencil":
			kernel = workloads.Stencil
		default:
			return scenario.WorkloadSpec{}, "", fmt.Errorf("unknown kernel %q (known kernels: matmul, copy, stencil)", f.kernel)
		}
		desc := fmt.Sprintf("kernel %s, %d tasks, DAG parallelism %d", kernel, f.tasks, f.parallelism)
		return scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel:      kernel,
			Tile:        f.tile,
			Tasks:       f.tasks,
			Parallelism: f.parallelism,
		}}, desc, nil
	}
}

// printList enumerates everything dagsim can run, mirroring asymbench's
// -list for scenario families.
func printList() {
	fmt.Println("generators (-gen):")
	for _, m := range dagio.Models() {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println("import formats (-dagfile with -format, or by extension .dot/.gv/.json):")
	for _, f := range dagio.Formats() {
		fmt.Printf("  %s\n", f)
	}
	fmt.Println("scenario families (run with asymbench -scenario, or POST {\"family\": ...} to asymd):")
	width := 0
	for _, n := range scenario.Names() {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range scenario.Names() {
		f, _ := scenario.Lookup(n)
		fmt.Printf("  %-*s  %s\n", width, n, f.Desc)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dagsim: %v\n", err)
	os.Exit(1)
}
