package dynasym_test

import (
	"sync/atomic"
	"testing"

	"dynasym"
)

// TestPublicAPIRealRun exercises the facade end to end on the real runtime.
func TestPublicAPIRealRun(t *testing.T) {
	g := dynasym.NewGraph()
	var ran atomic.Int32
	body := func(dynasym.Exec) { ran.Add(1) }
	a := g.Add(&dynasym.Task{Label: "a", Body: body, Cost: dynasym.Cost{Ops: 1e5}})
	b := g.Add(&dynasym.Task{Label: "b", Body: body, Cost: dynasym.Cost{Ops: 1e5}}, a)
	g.Add(&dynasym.Task{Label: "c", High: true, Body: body, Cost: dynasym.Cost{Ops: 1e5}}, a, b)
	res, err := dynasym.Run(g, dynasym.RunConfig{
		Platform: dynasym.SymmetricPlatform(2),
		Policy:   dynasym.DAMC(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone() != 3 || ran.Load() < 3 {
		t.Fatalf("tasks done %d, bodies ran %d", res.TasksDone(), ran.Load())
	}
}

// TestPublicAPISimulation exercises Simulate with scenarios and checks that
// interference visibly slows the run.
func TestPublicAPISimulation(t *testing.T) {
	build := func() *dynasym.Graph {
		return dynasym.BuildSyntheticDAG(dynasym.SyntheticConfig{
			Kernel: dynasym.MatMul, Tile: 64, Tasks: 600, Parallelism: 2,
		})
	}
	clean, err := dynasym.Simulate(build(), dynasym.SimConfig{
		Platform: dynasym.TX2(), Policy: dynasym.RWS(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := dynasym.Simulate(build(), dynasym.SimConfig{
		Platform: dynasym.TX2(), Policy: dynasym.RWS(), Seed: 3,
	}, dynasym.WithCoRunner([]int{0}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Throughput() >= clean.Throughput() {
		t.Fatalf("interference did not slow RWS: %.0f vs %.0f", noisy.Throughput(), clean.Throughput())
	}
	// The adaptive scheduler recovers most of the loss.
	adaptive, err := dynasym.Simulate(build(), dynasym.SimConfig{
		Platform: dynasym.TX2(), Policy: dynasym.DAMC(), Seed: 3,
	}, dynasym.WithCoRunner([]int{0}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Throughput() <= noisy.Throughput() {
		t.Fatalf("DAM-C (%.0f) did not beat RWS (%.0f) under interference",
			adaptive.Throughput(), noisy.Throughput())
	}
}

// TestPolicyRegistry checks name round-trips through the facade.
func TestPolicyRegistry(t *testing.T) {
	if len(dynasym.Policies()) != 7 {
		t.Fatalf("Policies() returned %d entries", len(dynasym.Policies()))
	}
	p, err := dynasym.PolicyByName("DAM-P")
	if err != nil || p.Name() != "DAM-P" {
		t.Fatalf("PolicyByName: %v, %v", p, err)
	}
}

// TestScenarioDVFS checks the DVFS scenario plumbs through.
func TestScenarioDVFS(t *testing.T) {
	g := dynasym.BuildSyntheticDAG(dynasym.SyntheticConfig{
		Kernel: dynasym.MatMul, Tile: 64, Tasks: 400, Parallelism: 4,
	})
	res, err := dynasym.Simulate(g, dynasym.SimConfig{
		Platform: dynasym.TX2(), Policy: dynasym.DAMP(), Seed: 5,
	}, dynasym.WithPaperDVFS(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone() != 400 {
		t.Fatalf("tasks done = %d", res.TasksDone())
	}
}
