#!/usr/bin/env sh
# smoke_asymd.sh — build asymd, start it on an ephemeral port, hit
# /v1/healthz, submit a tiny burst-sweep, poll to done and assert the
# result carries a non-empty fingerprint. Used by CI and runnable locally.
set -eu

cd "$(dirname "$0")/.."

BIN="${TMPDIR:-/tmp}/asymd-smoke"
LOG="$(mktemp)"
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

go build -o "$BIN" ./cmd/asymd

"$BIN" -addr 127.0.0.1:0 >"$LOG" 2>&1 &
PID=$!

# The daemon logs "asymd listening addr=<host:port>" once bound.
ADDR=""
for _ in $(seq 1 50); do
	ADDR="$(sed -n 's/.*asymd listening.*addr=\([0-9.:]*\).*/\1/p' "$LOG" | head -n 1)"
	[ -n "$ADDR" ] && break
	kill -0 "$PID" 2>/dev/null || { echo "asymd died:"; cat "$LOG"; exit 1; }
	sleep 0.2
done
[ -n "$ADDR" ] || { echo "asymd never logged its address:"; cat "$LOG"; exit 1; }
BASE="http://$ADDR"
echo "asymd up at $BASE"

curl -fsS "$BASE/v1/healthz" | grep -q '"ok": true' || { echo "healthz failed"; exit 1; }

SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d '{"family": "burst-sweep", "scale": 0.01}' "$BASE/v1/jobs")"
JOB="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOB" ] || { echo "no job id in: $SUBMIT"; exit 1; }
echo "submitted job $JOB"

STATE=""
for _ in $(seq 1 150); do
	STATUS="$(curl -fsS "$BASE/v1/jobs/$JOB")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "job stuck in state '$STATE'"; exit 1; }

RESULT="$(curl -fsS "$BASE/v1/results/$JOB")"
printf '%s' "$RESULT" | grep -q '"fingerprint": "scenario=' \
	|| { echo "empty or missing fingerprint in: $RESULT"; exit 1; }

# Resubmit: the cache must answer with the finished job (HTTP 200, done).
CODE="$(curl -sS -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
	-d '{"family": "burst-sweep", "scale": 0.01}' "$BASE/v1/jobs")"
[ "$CODE" = "200" ] || { echo "cached resubmit returned $CODE, want 200"; exit 1; }

echo "asymd smoke OK"
