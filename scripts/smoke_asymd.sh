#!/usr/bin/env sh
# smoke_asymd.sh — build asymd and smoke two topologies:
#
#  1. single node: start on an ephemeral port, hit /v1/healthz, submit a
#     tiny burst-sweep, poll to done, assert a non-empty fingerprint and
#     a warm-cache resubmit;
#  2. two nodes: start a worker and a coordinator peered to it
#     (-peers, -shard 1), submit a raw multi-cell spec, assert the worker
#     simulated shards, then resubmit the spec plus one extra sweep point
#     and assert the delta job reports cell-cache hits.
#
# Used by CI (asymd-smoke job) and runnable locally.
set -eu

cd "$(dirname "$0")/.."

BIN="${TMPDIR:-/tmp}/asymd-smoke"
LOG="$(mktemp)"
WLOG="$(mktemp)"
CLOG="$(mktemp)"
trap 'kill "$PID" "$WPID" "$CPID" 2>/dev/null || true; rm -f "$LOG" "$WLOG" "$CLOG"' EXIT
PID=""; WPID=""; CPID=""

go build -o "$BIN" ./cmd/asymd

# Non-positive cache capacities must be rejected loudly, not silently
# coerced to the defaults.
for BADFLAG in "-cache 0" "-cellcache 0" "-shard -1"; do
	if "$BIN" $BADFLAG -addr 127.0.0.1:0 >/dev/null 2>&1; then
		echo "asymd accepted '$BADFLAG', want a startup error"; exit 1
	fi
done
echo "bad-flag rejection OK"

# wait_addr <logfile> <pidvarvalue>: print the bound address once logged.
wait_addr() {
	_addr=""
	for _ in $(seq 1 50); do
		_addr="$(sed -n 's/.*asymd listening.*addr=\([0-9.:]*\).*/\1/p' "$1" | head -n 1)"
		[ -n "$_addr" ] && break
		kill -0 "$2" 2>/dev/null || { echo "asymd died:" >&2; cat "$1" >&2; return 1; }
		sleep 0.2
	done
	[ -n "$_addr" ] || { echo "asymd never logged its address:" >&2; cat "$1" >&2; return 1; }
	printf '%s' "$_addr"
}

"$BIN" -addr 127.0.0.1:0 >"$LOG" 2>&1 &
PID=$!
ADDR="$(wait_addr "$LOG" "$PID")"
BASE="http://$ADDR"
echo "asymd up at $BASE"

curl -fsS "$BASE/v1/healthz" | grep -q '"ok": true' || { echo "healthz failed"; exit 1; }

SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d '{"family": "burst-sweep", "scale": 0.01}' "$BASE/v1/jobs")"
JOB="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOB" ] || { echo "no job id in: $SUBMIT"; exit 1; }
echo "submitted job $JOB"

STATE=""
for _ in $(seq 1 150); do
	STATUS="$(curl -fsS "$BASE/v1/jobs/$JOB")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "job stuck in state '$STATE'"; exit 1; }

RESULT="$(curl -fsS "$BASE/v1/results/$JOB")"
printf '%s' "$RESULT" | grep -q '"fingerprint": "scenario=' \
	|| { echo "empty or missing fingerprint in: $RESULT"; exit 1; }

# Resubmit: the cache must answer with the finished job (HTTP 200, done).
CODE="$(curl -sS -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
	-d '{"family": "burst-sweep", "scale": 0.01}' "$BASE/v1/jobs")"
[ "$CODE" = "200" ] || { echo "cached resubmit returned $CODE, want 200"; exit 1; }

# The job listing must include the finished job.
curl -fsS "$BASE/v1/jobs" | grep -q "\"id\": \"$JOB\"" \
	|| { echo "job $JOB missing from GET /v1/jobs"; exit 1; }

echo "single-node smoke OK"

# --- batched same-graph sweep: cell_runs must reflect exact cell counts ---

# A rep-only daggen sweep runs 3 cells of one compiled graph. The local
# backend batches them onto shared workload state; cell_runs must advance
# by exactly the 3 simulated cells — no repeats, no hidden extra builds.
R0="$(curl -fsS "$BASE/v1/healthz" | sed -n 's/.*"cell_runs": \([0-9]*\).*/\1/p')"
SPEC_G='{"name":"smoke-batch","workload":{"kind":"daggen","daggen":{"model":"cholesky","tiles":4}},"policies":["DAM-C"],"reps":3,"seed":11}'
SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"spec\": $SPEC_G}" "$BASE/v1/jobs")"
JOBG="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOBG" ] || { echo "no job id in: $SUBMIT"; exit 1; }

STATE=""
for _ in $(seq 1 150); do
	STATUS="$(curl -fsS "$BASE/v1/jobs/$JOBG")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "batch job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "batch job stuck in state '$STATE'"; exit 1; }

R1="$(curl -fsS "$BASE/v1/healthz" | sed -n 's/.*"cell_runs": \([0-9]*\).*/\1/p')"
DELTA=$((R1 - R0))
[ "$DELTA" = "3" ] || { echo "same-graph sweep advanced cell_runs by $DELTA, want 3"; exit 1; }
echo "batched same-graph sweep simulated exactly $DELTA cells"

# --- two-node peer topology: coordinator + one worker ---------------------

"$BIN" -addr 127.0.0.1:0 >"$WLOG" 2>&1 &
WPID=$!
WADDR="$(wait_addr "$WLOG" "$WPID")"
echo "worker up at http://$WADDR"

# -shard 1 puts every cell in its own shard; round-robin then guarantees
# the worker peer receives shards for any multi-cell job.
"$BIN" -addr 127.0.0.1:0 -peers "http://$WADDR" -shard 1 >"$CLOG" 2>&1 &
CPID=$!
CADDR="$(wait_addr "$CLOG" "$CPID")"
COORD="http://$CADDR"
echo "coordinator up at $COORD (peered to worker)"

SPEC_A='{"name":"smoke-shard","workload":{"kind":"synthetic","synthetic":{"kernel":"MatMul","tasks":600}},"policies":["RWS","DAM-C"],"points":[{"label":"P2","parallelism":2},{"label":"P4","parallelism":4}],"seed":7}'
SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"spec\": $SPEC_A}" "$COORD/v1/jobs")"
JOB2="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOB2" ] || { echo "no job id in: $SUBMIT"; exit 1; }

STATE=""
for _ in $(seq 1 150); do
	STATUS="$(curl -fsS "$COORD/v1/jobs/$JOB2")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "sharded job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "sharded job stuck in state '$STATE'"; exit 1; }

# The worker must have simulated some of the shards.
WRUNS="$(curl -fsS "http://$WADDR/v1/healthz" | sed -n 's/.*"cell_runs": \([0-9]*\).*/\1/p')"
[ -n "$WRUNS" ] && [ "$WRUNS" -ge 1 ] || { echo "worker simulated $WRUNS cells, want >= 1"; exit 1; }
echo "worker simulated $WRUNS cells"

# Resubmit the spec plus one extra sweep point: a NEW job (different spec
# hash) that must assemble the old cells from the coordinator's cell cache
# and simulate only the delta.
SPEC_B='{"name":"smoke-shard","workload":{"kind":"synthetic","synthetic":{"kernel":"MatMul","tasks":600}},"policies":["RWS","DAM-C"],"points":[{"label":"P2","parallelism":2},{"label":"P4","parallelism":4},{"label":"P6","parallelism":6}],"seed":7}'
SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"spec\": $SPEC_B}" "$COORD/v1/jobs")"
JOB3="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOB3" ] || { echo "no job id in: $SUBMIT"; exit 1; }
[ "$JOB3" != "$JOB2" ] || { echo "extended spec hashed to the same job"; exit 1; }

STATE=""
for _ in $(seq 1 150); do
	STATUS="$(curl -fsS "$COORD/v1/jobs/$JOB3")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "delta job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "delta job stuck in state '$STATE'"; exit 1; }

# 4 of the 6 cells (2 policies x 3 points) overlap spec A and must be
# cell-cache hits; only the 2 new P6 cells may miss.
HITS="$(printf '%s' "$STATUS" | sed -n 's/.*"cell_hits": \([0-9]*\).*/\1/p')"
MISSES="$(printf '%s' "$STATUS" | sed -n 's/.*"cell_misses": \([0-9]*\).*/\1/p')"
[ "$HITS" = "4" ] || { echo "delta job had $HITS cell hits, want 4: $STATUS"; exit 1; }
[ "$MISSES" = "2" ] || { echo "delta job had $MISSES cell misses, want 2: $STATUS"; exit 1; }
echo "delta job reused $HITS cells, simulated $MISSES"

echo "asymd smoke OK"
