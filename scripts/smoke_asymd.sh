#!/usr/bin/env sh
# smoke_asymd.sh — build asymd and smoke two topologies:
#
#  1. single node: start on an ephemeral port, hit /v1/healthz, submit a
#     tiny burst-sweep, poll to done, assert a non-empty fingerprint and
#     a warm-cache resubmit;
#  2. two nodes: start a worker and a coordinator peered to it
#     (-peers, -shard 1), submit a raw multi-cell spec, assert the worker
#     simulated shards, fetch a per-cell sim-time trace from the
#     coordinator (counter + task events, despite the cell having run
#     remotely), then resubmit the spec plus one extra sweep point and
#     assert the delta job reports cell-cache hits;
#  3. chaos: coordinator + two workers, SIGKILL one worker mid-sweep,
#     assert the job still completes with the exact fingerprint an
#     undisturbed single-node run produces, the dead peer is reported
#     down by /v1/healthz, and the fleet's cell_runs cover the grid.
#
# Observability rides each leg: /metrics is scraped before and after the
# single-node sweep (asymd_cell_runs_total must advance), the job's
# Perfetto trace is fetched from /v1/jobs/{id}/trace, pprof must 404
# without -pprof and serve with it, and after the chaos kill the
# coordinator's breaker gauge must read 2 (down) for the dead peer.
#
# Used by CI (asymd-smoke job) and runnable locally.
set -eu

cd "$(dirname "$0")/.."

BIN="${TMPDIR:-/tmp}/asymd-smoke"
LOG="$(mktemp)"
WLOG="$(mktemp)"
CLOG="$(mktemp)"
W1LOG="$(mktemp)"
W2LOG="$(mktemp)"
C2LOG="$(mktemp)"
PLOG="$(mktemp)"
trap 'kill "$PID" "$WPID" "$CPID" "$W1PID" "$W2PID" "$C2PID" "$PFPID" 2>/dev/null || true; rm -f "$LOG" "$WLOG" "$CLOG" "$W1LOG" "$W2LOG" "$C2LOG" "$PLOG"' EXIT
PID=""; WPID=""; CPID=""; W1PID=""; W2PID=""; C2PID=""; PFPID=""

go build -o "$BIN" ./cmd/asymd

# Non-positive cache capacities must be rejected loudly, not silently
# coerced to the defaults.
for BADFLAG in "-cache 0" "-cellcache 0" "-shard -1"; do
	if "$BIN" $BADFLAG -addr 127.0.0.1:0 >/dev/null 2>&1; then
		echo "asymd accepted '$BADFLAG', want a startup error"; exit 1
	fi
done
echo "bad-flag rejection OK"

# wait_addr <logfile> <pidvarvalue>: print the bound address once logged.
wait_addr() {
	_addr=""
	for _ in $(seq 1 50); do
		_addr="$(sed -n 's/.*asymd listening.*addr=\([0-9.:]*\).*/\1/p' "$1" | head -n 1)"
		[ -n "$_addr" ] && break
		kill -0 "$2" 2>/dev/null || { echo "asymd died:" >&2; cat "$1" >&2; return 1; }
		sleep 0.2
	done
	[ -n "$_addr" ] || { echo "asymd never logged its address:" >&2; cat "$1" >&2; return 1; }
	printf '%s' "$_addr"
}

"$BIN" -addr 127.0.0.1:0 >"$LOG" 2>&1 &
PID=$!
ADDR="$(wait_addr "$LOG" "$PID")"
BASE="http://$ADDR"
echo "asymd up at $BASE"

curl -fsS "$BASE/v1/healthz" | grep -q '"ok": true' || { echo "healthz failed"; exit 1; }

# Scrape the registry before the sweep; the counter starts at zero.
CR0="$(curl -fsS "$BASE/metrics" | sed -n 's/^asymd_cell_runs_total \([0-9]*\)$/\1/p')"
[ -n "$CR0" ] || { echo "asymd_cell_runs_total missing from /metrics"; exit 1; }

SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d '{"family": "burst-sweep", "scale": 0.01}' "$BASE/v1/jobs")"
JOB="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOB" ] || { echo "no job id in: $SUBMIT"; exit 1; }
echo "submitted job $JOB"

STATE=""
for _ in $(seq 1 150); do
	STATUS="$(curl -fsS "$BASE/v1/jobs/$JOB")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "job stuck in state '$STATE'"; exit 1; }

RESULT="$(curl -fsS "$BASE/v1/results/$JOB")"
printf '%s' "$RESULT" | grep -q '"fingerprint": "scenario=' \
	|| { echo "empty or missing fingerprint in: $RESULT"; exit 1; }

# Resubmit: the cache must answer with the finished job (HTTP 200, done).
CODE="$(curl -sS -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
	-d '{"family": "burst-sweep", "scale": 0.01}' "$BASE/v1/jobs")"
[ "$CODE" = "200" ] || { echo "cached resubmit returned $CODE, want 200"; exit 1; }

# The job listing must include the finished job.
curl -fsS "$BASE/v1/jobs" | grep -q "\"id\": \"$JOB\"" \
	|| { echo "job $JOB missing from GET /v1/jobs"; exit 1; }

echo "single-node smoke OK"

# --- observability: /metrics, the job trace, and the pprof gate -----------

# The sweep must have advanced the cell-run counter and the done counter.
CR1="$(curl -fsS "$BASE/metrics" | sed -n 's/^asymd_cell_runs_total \([0-9]*\)$/\1/p')"
[ -n "$CR1" ] && [ "$CR1" -gt "$CR0" ] \
	|| { echo "asymd_cell_runs_total went $CR0 -> $CR1 over a sweep, want an increase"; exit 1; }
curl -fsS "$BASE/metrics" | grep -q '^asymd_jobs_done_total [1-9]' \
	|| { echo "asymd_jobs_done_total did not advance"; exit 1; }
echo "metrics OK: cell_runs $CR0 -> $CR1"

# The finished job advertises its trace; the export is a Chrome trace
# with named lanes and simulate slices (load it in ui.perfetto.dev).
TRACE_URL="$(curl -fsS "$BASE/v1/jobs/$JOB" | sed -n 's/.*"trace_url": "\([^"]*\)".*/\1/p')"
[ -n "$TRACE_URL" ] || { echo "finished job advertises no trace_url"; exit 1; }
TRACE="$(curl -fsS "$BASE$TRACE_URL")"
printf '%s' "$TRACE" | grep -q '"thread_name"' \
	|| { echo "trace has no lane metadata: $TRACE"; exit 1; }
printf '%s' "$TRACE" | grep -q '"cat":"simulate"' \
	|| { echo "trace has no simulate slices: $TRACE"; exit 1; }
echo "trace OK: $TRACE_URL"

# pprof is opt-in: 404 on the default node, served with -pprof.
CODE="$(curl -sS -o /dev/null -w '%{http_code}' "$BASE/debug/pprof/")"
[ "$CODE" = "404" ] || { echo "pprof served without -pprof (status $CODE)"; exit 1; }
"$BIN" -addr 127.0.0.1:0 -pprof >"$PLOG" 2>&1 &
PFPID=$!
PADDR="$(wait_addr "$PLOG" "$PFPID")"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' "http://$PADDR/debug/pprof/")"
[ "$CODE" = "200" ] || { echo "pprof index returned $CODE with -pprof, want 200"; exit 1; }
kill "$PFPID" 2>/dev/null || true
PFPID=""
echo "pprof gate OK"

# --- batched same-graph sweep: cell_runs must reflect exact cell counts ---

# A rep-only daggen sweep runs 3 cells of one compiled graph. The local
# backend batches them onto shared workload state; cell_runs must advance
# by exactly the 3 simulated cells — no repeats, no hidden extra builds.
R0="$(curl -fsS "$BASE/v1/healthz" | sed -n 's/.*"cell_runs": \([0-9]*\).*/\1/p')"
SPEC_G='{"name":"smoke-batch","workload":{"kind":"daggen","daggen":{"model":"cholesky","tiles":4}},"policies":["DAM-C"],"reps":3,"seed":11}'
SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"spec\": $SPEC_G}" "$BASE/v1/jobs")"
JOBG="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOBG" ] || { echo "no job id in: $SUBMIT"; exit 1; }

STATE=""
for _ in $(seq 1 150); do
	STATUS="$(curl -fsS "$BASE/v1/jobs/$JOBG")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "batch job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "batch job stuck in state '$STATE'"; exit 1; }

R1="$(curl -fsS "$BASE/v1/healthz" | sed -n 's/.*"cell_runs": \([0-9]*\).*/\1/p')"
DELTA=$((R1 - R0))
[ "$DELTA" = "3" ] || { echo "same-graph sweep advanced cell_runs by $DELTA, want 3"; exit 1; }
echo "batched same-graph sweep simulated exactly $DELTA cells"

# --- two-node peer topology: coordinator + one worker ---------------------

"$BIN" -addr 127.0.0.1:0 >"$WLOG" 2>&1 &
WPID=$!
WADDR="$(wait_addr "$WLOG" "$WPID")"
echo "worker up at http://$WADDR"

# -shard 1 puts every cell in its own shard; round-robin then guarantees
# the worker peer receives shards for any multi-cell job.
"$BIN" -addr 127.0.0.1:0 -peers "http://$WADDR" -shard 1 >"$CLOG" 2>&1 &
CPID=$!
CADDR="$(wait_addr "$CLOG" "$CPID")"
COORD="http://$CADDR"
echo "coordinator up at $COORD (peered to worker)"

SPEC_A='{"name":"smoke-shard","workload":{"kind":"synthetic","synthetic":{"kernel":"MatMul","tasks":600}},"policies":["RWS","DAM-C"],"points":[{"label":"P2","parallelism":2},{"label":"P4","parallelism":4}],"seed":7}'
SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"spec\": $SPEC_A}" "$COORD/v1/jobs")"
JOB2="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOB2" ] || { echo "no job id in: $SUBMIT"; exit 1; }

STATE=""
for _ in $(seq 1 150); do
	STATUS="$(curl -fsS "$COORD/v1/jobs/$JOB2")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "sharded job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "sharded job stuck in state '$STATE'"; exit 1; }

# The worker must have simulated some of the shards.
WRUNS="$(curl -fsS "http://$WADDR/v1/healthz" | sed -n 's/.*"cell_runs": \([0-9]*\).*/\1/p')"
[ -n "$WRUNS" ] && [ "$WRUNS" -ge 1 ] || { echo "worker simulated $WRUNS cells, want >= 1"; exit 1; }
echo "worker simulated $WRUNS cells"

# Per-cell sim-time traces work for sharded jobs: the coordinator renders
# any cell's schedule by deterministic re-execution, even though the cell
# itself was simulated on the worker. The trace must carry both task
# slices ("X") and the probe's counter lanes ("C").
SIMTRACE="$(curl -fsS "$COORD/v1/jobs/$JOB2/cells/0/simtrace")"
printf '%s' "$SIMTRACE" | grep -q '"ph":"X"' \
	|| { echo "simtrace has no task slices"; exit 1; }
printf '%s' "$SIMTRACE" | grep -q '"ph":"C"' \
	|| { echo "simtrace has no counter events"; exit 1; }
printf '%s' "$SIMTRACE" | grep -q '"name":"queue depth"' \
	|| { echo "simtrace has no queue-depth lane"; exit 1; }
CODE="$(curl -sS -o /dev/null -w '%{http_code}' "$COORD/v1/jobs/$JOB2/cells/9999/simtrace")"
[ "$CODE" = "400" ] || { echo "out-of-grid simtrace cell returned $CODE, want 400"; exit 1; }
echo "simtrace OK: sharded cell 0 renders task + counter events"

# Resubmit the spec plus one extra sweep point: a NEW job (different spec
# hash) that must assemble the old cells from the coordinator's cell cache
# and simulate only the delta.
SPEC_B='{"name":"smoke-shard","workload":{"kind":"synthetic","synthetic":{"kernel":"MatMul","tasks":600}},"policies":["RWS","DAM-C"],"points":[{"label":"P2","parallelism":2},{"label":"P4","parallelism":4},{"label":"P6","parallelism":6}],"seed":7}'
SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"spec\": $SPEC_B}" "$COORD/v1/jobs")"
JOB3="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOB3" ] || { echo "no job id in: $SUBMIT"; exit 1; }
[ "$JOB3" != "$JOB2" ] || { echo "extended spec hashed to the same job"; exit 1; }

STATE=""
for _ in $(seq 1 150); do
	STATUS="$(curl -fsS "$COORD/v1/jobs/$JOB3")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "delta job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "delta job stuck in state '$STATE'"; exit 1; }

# 4 of the 6 cells (2 policies x 3 points) overlap spec A and must be
# cell-cache hits; only the 2 new P6 cells may miss.
HITS="$(printf '%s' "$STATUS" | sed -n 's/.*"cell_hits": \([0-9]*\).*/\1/p')"
MISSES="$(printf '%s' "$STATUS" | sed -n 's/.*"cell_misses": \([0-9]*\).*/\1/p')"
[ "$HITS" = "4" ] || { echo "delta job had $HITS cell hits, want 4: $STATUS"; exit 1; }
[ "$MISSES" = "2" ] || { echo "delta job had $MISSES cell misses, want 2: $STATUS"; exit 1; }
echo "delta job reused $HITS cells, simulated $MISSES"

# --- chaos: kill a worker mid-sweep; the job must survive it --------------

# 2 policies x 3 points x 3 reps = 18 cells, sized so each takes long
# enough that the kill reliably lands while shards are in flight.
SPEC_C='{"name":"smoke-chaos","workload":{"kind":"synthetic","synthetic":{"kernel":"MatMul","tasks":2000}},"policies":["RWS","DAM-C"],"points":[{"label":"P2","parallelism":2},{"label":"P4","parallelism":4},{"label":"P6","parallelism":6}],"reps":3,"seed":9}'
CELLS_C=18

# Ground truth: the undisturbed fingerprint, from the single node.
SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"spec\": $SPEC_C}" "$BASE/v1/jobs")"
JOBREF="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOBREF" ] || { echo "no job id in: $SUBMIT"; exit 1; }
STATE=""
for _ in $(seq 1 300); do
	STATUS="$(curl -fsS "$BASE/v1/jobs/$JOBREF")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "reference job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "reference job stuck in state '$STATE'"; exit 1; }
FP_WANT="$(curl -fsS "$BASE/v1/results/$JOBREF" | sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p')"
[ -n "$FP_WANT" ] || { echo "no reference fingerprint"; exit 1; }

"$BIN" -addr 127.0.0.1:0 >"$W1LOG" 2>&1 &
W1PID=$!
W1ADDR="$(wait_addr "$W1LOG" "$W1PID")"
"$BIN" -addr 127.0.0.1:0 >"$W2LOG" 2>&1 &
W2PID=$!
W2ADDR="$(wait_addr "$W2LOG" "$W2PID")"
# Fresh coordinator (cold cell cache) with a hair-trigger breaker: the
# first failure marks the dead worker down, and -probe-backoff 30s keeps
# it down for the rest of the leg so /v1/healthz shows the open breaker.
"$BIN" -addr 127.0.0.1:0 -peers "http://$W1ADDR,http://$W2ADDR" -shard 1 \
	-retry-backoff 50ms -fail-threshold 1 -probe-backoff 30s >"$C2LOG" 2>&1 &
C2PID=$!
C2ADDR="$(wait_addr "$C2LOG" "$C2PID")"
CHAOS="http://$C2ADDR"
echo "chaos fleet up: coordinator $CHAOS, workers $W1ADDR + $W2ADDR"

SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"spec\": $SPEC_C}" "$CHAOS/v1/jobs")"
JOBC="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p')"
[ -n "$JOBC" ] || { echo "no job id in: $SUBMIT"; exit 1; }

# Wait until worker 1 has completed at least one cell — the sweep is
# provably mid-flight — then SIGKILL it.
W1RUNS=""
for _ in $(seq 1 300); do
	W1RUNS="$(curl -fsS "http://$W1ADDR/v1/healthz" | sed -n 's/.*"cell_runs": \([0-9]*\).*/\1/p')"
	[ -n "$W1RUNS" ] && [ "$W1RUNS" -ge 1 ] && break
	sleep 0.1
done
[ -n "$W1RUNS" ] && [ "$W1RUNS" -ge 1 ] || { echo "worker 1 never simulated a cell"; exit 1; }
kill -9 "$W1PID"
echo "killed worker 1 after $W1RUNS cells"

STATE=""
for _ in $(seq 1 300); do
	STATUS="$(curl -fsS "$CHAOS/v1/jobs/$JOBC")"
	STATE="$(printf '%s' "$STATUS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
	[ "$STATE" = "done" ] && break
	[ "$STATE" = "failed" ] && { echo "chaos job failed: $STATUS"; exit 1; }
	sleep 0.2
done
[ "$STATE" = "done" ] || { echo "chaos job stuck in state '$STATE'"; exit 1; }

# The fingerprint must be byte-identical to the undisturbed run.
FP_GOT="$(curl -fsS "$CHAOS/v1/results/$JOBC" | sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p')"
[ "$FP_GOT" = "$FP_WANT" ] || {
	echo "chaos fingerprint diverged:"; echo " want $FP_WANT"; echo " got  $FP_GOT"; exit 1; }

# The coordinator's healthz must report the killed peer's open breaker,
# and the breaker gauge must have flipped to 2 (down) for that peer.
HEALTH="$(curl -fsS "$CHAOS/v1/healthz")"
printf '%s' "$HEALTH" | grep -q '"state": "down"' \
	|| { echo "killed worker not reported down: $HEALTH"; exit 1; }
CHAOS_METRICS="$(curl -fsS "$CHAOS/metrics")"
printf '%s' "$CHAOS_METRICS" | grep -qF "asymd_breaker_state{peer=\"http://$W1ADDR\"} 2" \
	|| { echo "breaker gauge for killed worker is not 2 (down):"; \
	     printf '%s\n' "$CHAOS_METRICS" | grep asymd_breaker_state; exit 1; }
printf '%s' "$CHAOS_METRICS" | grep -q '^asymd_shard_failovers_total [1-9]' \
	|| { echo "no shard failovers recorded after worker kill"; exit 1; }
echo "chaos metrics OK: breaker down, failovers recorded"

# Accounting: no cell may be lost or double-served by the job...
HITS="$(printf '%s' "$STATUS" | sed -n 's/.*"cell_hits": \([0-9]*\).*/\1/p')"
MISSES="$(printf '%s' "$STATUS" | sed -n 's/.*"cell_misses": \([0-9]*\).*/\1/p')"
[ "$((HITS + MISSES))" = "$CELLS_C" ] \
	|| { echo "chaos job served $HITS hits + $MISSES misses, want $CELLS_C cells: $STATUS"; exit 1; }
# ...and the fleet's cell_runs must cover the whole grid: coordinator +
# surviving worker + what worker 1 ran before the kill.
C2RUNS="$(printf '%s' "$HEALTH" | sed -n 's/.*"cell_runs": \([0-9]*\).*/\1/p')"
W2RUNS="$(curl -fsS "http://$W2ADDR/v1/healthz" | sed -n 's/.*"cell_runs": \([0-9]*\).*/\1/p')"
TOTAL=$((C2RUNS + W2RUNS + W1RUNS))
[ "$TOTAL" -ge "$CELLS_C" ] \
	|| { echo "fleet cell_runs $C2RUNS+$W2RUNS+$W1RUNS = $TOTAL do not cover $CELLS_C cells"; exit 1; }
echo "chaos smoke OK: fleet ran $TOTAL cells ($C2RUNS coord, $W2RUNS survivor, $W1RUNS pre-kill)"

echo "asymd smoke OK"
