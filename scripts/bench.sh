#!/usr/bin/env sh
# bench.sh — run the simulator perf benchmarks and emit BENCH_<TAG>.json.
#
# Usage: scripts/bench.sh [TAG]     (default TAG: local)
#
# The JSON holds one entry per benchmark with every metric Go reported
# (ns/op, events/s, B/op, allocs/op, ...). See EXPERIMENTS.md for the
# workflow; BENCH_PR2.json is the committed baseline/current snapshot.
set -eu

TAG="${1:-local}"
OUT="BENCH_${TAG}.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

cd "$(dirname "$0")/.."

run() {
	# A broken benchmark must fail the run, not silently vanish from the
	# snapshot; only the no-matching-lines grep is tolerated.
	out="$(go test -run '^$' -bench "$1" -benchtime=3s -count=1 -benchmem "$2")" || {
		echo "bench failed in $2:" >&2
		printf '%s\n' "$out" >&2
		exit 1
	}
	printf '%s\n' "$out" | grep '^Benchmark' >>"$TMP" || true
}

run 'BenchmarkScaleout64Engine$|BenchmarkSimulatedSchedulerThroughput$' .
run 'BenchmarkEventThroughput$|BenchmarkEngineTypedEvents$|BenchmarkEngineClosureEvents$' ./internal/sim
run 'BenchmarkDurationConstant$|BenchmarkDurationDVFS$' ./internal/machine
run 'BenchmarkServiceCacheHit$|BenchmarkServiceColdRun$|BenchmarkShardDispatch$|BenchmarkCellAssemblyWarm$' ./internal/service
run 'BenchmarkImportDOT$|BenchmarkBuildCholesky$|BenchmarkBuildCholeskyAmortized$' ./internal/dagio
run 'BenchmarkCompiledCellRun$|BenchmarkUncompiledCellRun$' ./internal/scenario
run 'BenchmarkMetricsHotPath$|BenchmarkCounterInc$|BenchmarkHistogramObserve$|BenchmarkWritePrometheus$' ./internal/obs

{
	printf '{\n'
	printf '  "tag": "%s",\n' "$TAG"
	printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
	printf '  "benchmarks": [\n'
	awk '
		/^Benchmark/ {
			if (found) printf ",\n"
			found = 1
			name = $1; sub(/-[0-9]+$/, "", name)
			printf "    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", name, $2
			sep = ""
			for (i = 3; i + 1 <= NF; i += 2) {
				printf "%s\"%s\": %s", sep, $(i + 1), $i
				sep = ", "
			}
			printf "}}"
		}
		END { printf "\n" }
	' "$TMP"
	printf '  ]\n}\n'
} >"$OUT"

echo "wrote $OUT"
