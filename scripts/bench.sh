#!/usr/bin/env sh
# bench.sh — run the simulator perf benchmarks and emit BENCH_<TAG>.json.
#
# Usage: scripts/bench.sh TAG          (e.g. scripts/bench.sh PR9)
#
# Each benchmark runs -count=5 and the snapshot records the best run
# (lowest ns/op): committed numbers are throughput claims, and the minimum
# over repeated runs is the standard way to strip scheduler/thermal noise
# from them. The JSON holds one entry per benchmark with every metric Go
# reported for that best run (ns/op, events/s, B/op, allocs/op, ...). See
# EXPERIMENTS.md for the workflow; BENCH_PR<N>.json is the committed
# snapshot of PR N.
set -eu

if [ $# -lt 1 ] || [ -z "$1" ]; then
	echo "usage: scripts/bench.sh TAG   (writes BENCH_<TAG>.json, e.g. scripts/bench.sh PR9)" >&2
	exit 2
fi

TAG="$1"
OUT="BENCH_${TAG}.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

cd "$(dirname "$0")/.."

run() {
	# A broken benchmark must fail the run, not silently vanish from the
	# snapshot; only the no-matching-lines grep is tolerated.
	out="$(go test -run '^$' -bench "$1" -benchtime=3s -count=5 -benchmem "$2")" || {
		echo "bench failed in $2:" >&2
		printf '%s\n' "$out" >&2
		exit 1
	}
	printf '%s\n' "$out" | grep '^Benchmark' >>"$TMP" || true
}

run 'BenchmarkScaleout64Engine$|BenchmarkSimulatedSchedulerThroughput$' .
run 'BenchmarkEventThroughput$|BenchmarkEngineTypedEvents$|BenchmarkEngineClosureEvents$' ./internal/sim
run 'BenchmarkDurationConstant$|BenchmarkDurationDVFS$' ./internal/machine
run 'BenchmarkServiceCacheHit$|BenchmarkServiceColdRun$|BenchmarkShardDispatch$|BenchmarkCellAssemblyWarm$' ./internal/service
run 'BenchmarkImportDOT$|BenchmarkBuildCholesky$|BenchmarkBuildCholeskyAmortized$' ./internal/dagio
run 'BenchmarkCompiledCellRun$|BenchmarkUncompiledCellRun$' ./internal/scenario
run 'BenchmarkMetricsHotPath$|BenchmarkCounterInc$|BenchmarkHistogramObserve$|BenchmarkWritePrometheus$' ./internal/obs

{
	printf '{\n'
	printf '  "tag": "%s",\n' "$TAG"
	printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
	printf '  "benchmarks": [\n'
	awk '
		# Keep, per benchmark, the repetition with the lowest ns/op.
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = ""
			for (i = 3; i + 1 <= NF; i += 2) {
				if ($(i + 1) == "ns/op") ns = $i + 0
			}
			if (!(name in best) || (ns != "" && ns < bestNs[name])) {
				if (!(name in best)) order[++n] = name
				best[name] = $0
				bestNs[name] = ns
			}
		}
		END {
			for (k = 1; k <= n; k++) {
				$0 = best[order[k]]
				if (k > 1) printf ",\n"
				name = $1; sub(/-[0-9]+$/, "", name)
				printf "    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", name, $2
				sep = ""
				for (i = 3; i + 1 <= NF; i += 2) {
					printf "%s\"%s\": %s", sep, $(i + 1), $i
					sep = ", "
				}
				printf "}}"
			}
			printf "\n"
		}
	' "$TMP"
	printf '  ]\n}\n'
} >"$OUT"

echo "wrote $OUT"
