#!/usr/bin/env sh
# bench_regress.sh — guard the engine's event throughput against silent
# regressions.
#
# Usage: scripts/bench_regress.sh
#
# Re-runs the engine benchmarks (the ones that report events/s) and
# compares the best of three short runs against the newest committed
# BENCH_PR<N>.json snapshot. A benchmark that lands more than
# REGRESS_TOLERANCE percent (default 20) below its committed events/s
# fails the script. The tolerance is deliberately loose: CI runners and
# laptops are noisy, and the gate exists to catch structural regressions
# (an accidental O(n) scan, a lost fast path), not single-digit drift —
# the committed BENCH snapshots track that (see EXPERIMENTS.md).
set -eu

cd "$(dirname "$0")/.."

TOL="${REGRESS_TOLERANCE:-20}"

# Newest committed snapshot by PR number (lexical sort would put PR10
# before PR9).
BASE=""
BASEN=-1
for f in BENCH_PR*.json; do
	[ -e "$f" ] || continue
	n="$(printf '%s' "$f" | sed 's/[^0-9]//g')"
	[ -n "$n" ] || continue
	if [ "$n" -gt "$BASEN" ]; then
		BASEN="$n"
		BASE="$f"
	fi
done
if [ -z "$BASE" ]; then
	echo "bench_regress: no committed BENCH_PR*.json baseline; nothing to compare" >&2
	exit 0
fi
echo "bench_regress: comparing against $BASE (tolerance ${TOL}%)"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

bench() {
	out="$(go test -run '^$' -bench "$1" -benchtime=1s -count=3 "$2")" || {
		echo "bench_regress: benchmark run failed in $2:" >&2
		printf '%s\n' "$out" >&2
		exit 1
	}
	printf '%s\n' "$out" | grep '^Benchmark' >>"$TMP" || true
}

bench 'BenchmarkScaleout64Engine$' .
bench 'BenchmarkEngineTypedEvents$|BenchmarkEngineClosureEvents$' ./internal/sim

fail=0
for name in BenchmarkScaleout64Engine BenchmarkEngineTypedEvents BenchmarkEngineClosureEvents; do
	# Best (highest) events/s over the repeated runs.
	cur="$(awk -v n="$name" '
		$1 ~ ("^" n "(-[0-9]+)?$") {
			for (i = 3; i + 1 <= NF; i += 2)
				if ($(i + 1) == "events/s" && $i + 0 > best) best = $i + 0
		}
		END { print best + 0 }
	' "$TMP")"
	# Committed events/s from the snapshot's one-line-per-benchmark JSON.
	base="$(awk -v n="$name" '
		index($0, "\"" n "\"") && match($0, /"events\/s": [0-9.e+]+/) {
			s = substr($0, RSTART, RLENGTH)
			sub(/.*: /, "", s)
			print s
			exit
		}
	' "$BASE")"
	if [ -z "$base" ]; then
		echo "  $name: no events/s in $BASE; skipping"
		continue
	fi
	if [ "$cur" = 0 ]; then
		echo "  $name: benchmark produced no events/s metric" >&2
		fail=1
		continue
	fi
	verdict="$(awk -v c="$cur" -v b="$base" -v t="$TOL" 'BEGIN {
		floor = b * (100 - t) / 100
		printf "%.1f%% of baseline (%d vs %d, floor %d) %s", 100 * c / b, c, b, floor, (c >= floor ? "ok" : "REGRESSION")
	}')"
	echo "  $name: $verdict"
	case "$verdict" in
	*REGRESSION) fail=1 ;;
	esac
done

if [ "$fail" != 0 ]; then
	echo "bench_regress: engine throughput regressed more than ${TOL}% vs $BASE" >&2
	exit 1
fi
echo "bench_regress: all engine benchmarks within ${TOL}% of $BASE"
