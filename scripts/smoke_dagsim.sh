#!/usr/bin/env sh
# smoke_dagsim.sh — build dagsim and smoke the DAG import/generate path:
#
#  1. import the bundled examples/dag/demo.dot, assert the run completes
#     a nonzero number of tasks and prints a fingerprint;
#  2. run it again and assert the fingerprint is bit-stable;
#  3. import the JSON twin (demo.json) and assert it reports the same
#     content digest — format and declaration order cannot change the
#     workload's identity;
#  4. generate a Cholesky DAG and assert its fingerprint is stable too.
#
# Used by CI (dagsim-smoke step) and runnable locally.
set -eu

cd "$(dirname "$0")/.."

BIN="${TMPDIR:-/tmp}/dagsim-smoke"
go build -o "$BIN" ./cmd/dagsim

run_fp() {
	# run_fp <args...>: run dagsim, print "<tasks> <digest> <fingerprint>".
	out="$("$BIN" "$@" -interfere dvfs -fingerprint)" || {
		echo "dagsim failed:" >&2
		printf '%s\n' "$out" >&2
		exit 1
	}
	tasks="$(printf '%s' "$out" | sed -n 's/.*tasks completed: \([0-9]*\).*/\1/p')"
	digest="$(printf '%s' "$out" | sed -n 's/.*digest \([0-9a-f]*\)).*/\1/p')"
	fp="$(printf '%s' "$out" | sed -n 's/^fingerprint: \([0-9a-f]*\)$/\1/p')"
	printf '%s %s %s' "${tasks:-0}" "${digest:-none}" "${fp:-none}"
}

# 1+2: imported DOT graph, nonzero tasks, stable fingerprint.
A="$(run_fp -dagfile examples/dag/demo.dot)"
B="$(run_fp -dagfile examples/dag/demo.dot)"
TASKS="${A%% *}"
[ "$TASKS" -ge 1 ] || { echo "imported run completed $TASKS tasks, want >= 1"; exit 1; }
[ "$A" = "$B" ] || { echo "imported-run fingerprint unstable: '$A' vs '$B'"; exit 1; }
echo "dot import OK: $TASKS tasks, fingerprint ${A##* }"

# 3: the JSON twin is the same workload (same content digest).
C="$(run_fp -dagfile examples/dag/demo.json)"
DIG_A="$(printf '%s' "$A" | cut -d' ' -f2)"
DIG_C="$(printf '%s' "$C" | cut -d' ' -f2)"
[ "$DIG_A" = "$DIG_C" ] || { echo "DOT and JSON digests differ: $DIG_A vs $DIG_C"; exit 1; }
[ "$A" = "$C" ] || { echo "DOT and JSON runs diverged: '$A' vs '$C'"; exit 1; }
echo "json twin OK: digest $DIG_C"

# 4: generated Cholesky DAG, stable fingerprint.
D="$(run_fp -gen cholesky -tiles 8)"
E="$(run_fp -gen cholesky -tiles 8)"
GTASKS="${D%% *}"
[ "$GTASKS" -eq 120 ] || { echo "cholesky T=8 completed $GTASKS tasks, want 120"; exit 1; }
[ "$D" = "$E" ] || { echo "generated-run fingerprint unstable: '$D' vs '$E'"; exit 1; }
echo "cholesky gen OK: $GTASKS tasks, fingerprint ${D##* }"

echo "dagsim smoke OK"
