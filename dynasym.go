// Package dynasym is a task-parallel runtime library with schedulers that
// adapt to dynamically asymmetric platforms — cores whose effective speed
// is unknown and changes over time because of interference from co-running
// applications or DVFS.
//
// It reproduces the system described in
//
//	Chen, Soomro, Abduljabbar, Manivannan, Pericàs.
//	"Scheduling Task-parallel Applications in Dynamically Asymmetric
//	Environments", ICPP Workshops 2020 (arXiv:2009.00915),
//
// including the XiTAO-style moldable-task execution model, the Performance
// Trace Table online performance model, and the seven scheduling policies
// of the paper's Table 1 (RWS, RWSM-C, FA, FAM-C, DA, DAM-C, DAM-P).
//
// Two execution engines share the same scheduler code:
//
//   - Run executes graphs with real goroutine workers and wall-clock
//     timing (package internal/xtr);
//   - Simulate executes graphs on a deterministic discrete-event model of
//     an asymmetric platform with controllable interference and DVFS
//     (package internal/simrt) — this is how the paper's experiments are
//     reproduced (see internal/experiments and cmd/asymbench).
//
// A minimal real run:
//
//	g := dynasym.NewGraph()
//	a := g.Add(&dynasym.Task{Label: "a", Body: func(dynasym.Exec) { ... }})
//	g.Add(&dynasym.Task{Label: "b", Body: ..., High: true}, a)
//	res, err := dynasym.Run(g, dynasym.RunConfig{
//		Platform: dynasym.SymmetricPlatform(4),
//		Policy:   dynasym.DAMC(),
//	})
package dynasym

import (
	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/metrics"
	"dynasym/internal/ptt"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/xtr"
)

// Core model types, re-exported for the public API.
type (
	// Platform describes cores grouped into clusters with valid moldable
	// widths.
	Platform = topology.Platform
	// Cluster is one resource partition of a Platform.
	Cluster = topology.Cluster
	// Place is an execution place: (leader core, resource width).
	Place = topology.Place
	// Policy is a scheduling policy (see Policies).
	Policy = core.Policy
	// Graph is a task graph; build with NewGraph and Graph.Add.
	Graph = dag.Graph
	// Task is one node of a Graph.
	Task = dag.Task
	// Exec tells a task body which partition of a moldable place to
	// compute.
	Exec = dag.Exec
	// Cost describes a task to the simulator's machine model.
	Cost = machine.Cost
	// Collector accumulates execution metrics.
	Collector = metrics.Collector
	// TypeID identifies a task type (one Performance Trace Table per
	// type).
	TypeID = ptt.TypeID
)

// Platform constructors.

// TX2 returns the paper's NVIDIA Jetson TX2 platform model (2 fast Denver
// cores + 4 A57 cores).
func TX2() *Platform { return topology.TX2() }

// Haswell16 returns the paper's 16-core dual-socket Haswell platform model.
func Haswell16() *Platform { return topology.Haswell16() }

// SymmetricPlatform returns n identical cores in one cluster with
// power-of-two widths (n must be a power of two).
func SymmetricPlatform(n int) *Platform { return topology.Symmetric(n) }

// NewPlatform builds a custom platform from clusters.
func NewPlatform(clusters []Cluster) (*Platform, error) { return topology.New(clusters) }

// Scheduling policies (the paper's Table 1).

// RWS returns the random work-stealing baseline.
func RWS() Policy { return core.RWS() }

// RWSMC returns random work stealing with moldability (resource-cost
// objective).
func RWSMC() Policy { return core.RWSMC() }

// FA returns the fixed-asymmetry criticality scheduler.
func FA() Policy { return core.FA() }

// FAMC returns the fixed-asymmetry scheduler with moldability.
func FAMC() Policy { return core.FAMC() }

// DA returns the dynamic asymmetry scheduler without moldability.
func DA() Policy { return core.DA() }

// DAMC returns the dynamic asymmetry scheduler with moldability targeting
// parallel cost (the paper's DAM-C).
func DAMC() Policy { return core.DAMC() }

// DAMP returns the dynamic asymmetry scheduler with moldability targeting
// parallel performance for critical tasks (the paper's DAM-P).
func DAMP() Policy { return core.DAMP() }

// Policies returns all seven built-in policies in Table 1 order.
func Policies() []Policy { return core.All() }

// PolicyByName resolves a policy from its paper name ("DAM-C", "RWS", …).
func PolicyByName(name string) (Policy, error) { return core.ByName(name) }

// NewGraph returns an empty task graph.
func NewGraph() *Graph { return dag.New() }

// Result wraps the metrics of one run.
type Result struct {
	*Collector
}

// RunConfig configures real execution.
type RunConfig struct {
	// Platform defines the workers; required.
	Platform *Platform
	// Policy is the scheduling policy; required.
	Policy Policy
	// Alpha is the PTT new-observation weight (0 = the paper's 1/5).
	Alpha float64
	// Seed drives stealing randomness.
	Seed uint64
	// Pin requests best-effort thread pinning (Linux).
	Pin bool
}

// Run executes the graph with real goroutine workers and returns metrics.
func Run(g *Graph, cfg RunConfig) (*Result, error) {
	rt, err := xtr.New(xtr.Config{
		Topo:   cfg.Platform,
		Policy: cfg.Policy,
		Alpha:  cfg.Alpha,
		Seed:   cfg.Seed,
		Pin:    cfg.Pin,
	})
	if err != nil {
		return nil, err
	}
	coll, err := rt.Run(g)
	if err != nil {
		return nil, err
	}
	return &Result{coll}, nil
}

// Scenario injects dynamic asymmetry into a simulation.
type Scenario func(m *machine.Model)

// WithCoRunner time-shares the given cores with a compute-bound co-running
// application, leaving `share` of each core's cycles to the runtime.
func WithCoRunner(cores []int, share float64) Scenario {
	return func(m *machine.Model) { interfere.CoRunCPU(m, cores, share) }
}

// WithCoRunnerEpisode is WithCoRunner limited to [from, to) seconds.
func WithCoRunnerEpisode(cores []int, share, from, to float64) Scenario {
	return func(m *machine.Model) { interfere.CoRunCPUEpisode(m, cores, share, from, to) }
}

// WithMemoryCoRunner models a streaming co-runner on one core: the core is
// time-shared and its cluster loses a fraction of memory bandwidth.
func WithMemoryCoRunner(core int, share, bwFactor float64) Scenario {
	return func(m *machine.Model) { interfere.CoRunMemory(m, core, share, bwFactor) }
}

// WithDVFS makes a cluster's clock alternate between hiHz (hiDur seconds)
// and loHz (loDur seconds), repeating forever.
func WithDVFS(cluster int, hiHz, loHz, hiDur, loDur float64) Scenario {
	return func(m *machine.Model) { interfere.DVFS(m, cluster, hiHz, loHz, hiDur, loDur) }
}

// WithPaperDVFS applies the paper's DVFS wave (2035/345 MHz, 5 s + 5 s) to
// a cluster.
func WithPaperDVFS(cluster int) Scenario {
	return func(m *machine.Model) { interfere.PaperDVFS(m, cluster) }
}

// SimConfig configures simulated execution.
type SimConfig struct {
	// Platform defines the simulated cores; required.
	Platform *Platform
	// Policy is the scheduling policy; required.
	Policy Policy
	// Alpha is the PTT new-observation weight (0 = the paper's 1/5).
	Alpha float64
	// Seed makes the whole simulation deterministic.
	Seed uint64
	// RunBodies executes task bodies functionally (zero virtual cost).
	RunBodies bool
}

// Simulate executes the graph on the deterministic simulated platform,
// applying the scenarios, and returns metrics. Task durations come from
// each task's Cost and the platform's machine model.
func Simulate(g *Graph, cfg SimConfig, scenarios ...Scenario) (*Result, error) {
	model := machine.New(cfg.Platform)
	for _, s := range scenarios {
		s(model)
	}
	rt, err := simrt.New(simrt.Config{
		Topo:      cfg.Platform,
		Model:     model,
		Policy:    cfg.Policy,
		Alpha:     cfg.Alpha,
		Seed:      cfg.Seed,
		RunBodies: cfg.RunBodies,
	})
	if err != nil {
		return nil, err
	}
	coll, err := rt.Run(g)
	if err != nil {
		return nil, err
	}
	return &Result{coll}, nil
}
