module dynasym

go 1.24
