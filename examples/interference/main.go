// Interference: reproduce the paper's headline result on the simulated
// Jetson TX2 — compare all seven schedulers while a co-running application
// occupies Denver core 0, then under a DVFS square wave on the Denver
// cluster. Deterministic: same seed, same numbers.
//
//	go run ./examples/interference
package main

import (
	"fmt"
	"log"

	"dynasym"
)

func main() {
	fmt.Println("Synthetic MatMul DAG (parallelism 2) on a simulated TX2")
	fmt.Println()

	scenarios := []struct {
		name string
		s    []dynasym.Scenario
	}{
		{"no interference", nil},
		{"co-runner on core 0", []dynasym.Scenario{dynasym.WithCoRunner([]int{0}, 0.5)}},
		{"DVFS on Denver cluster", []dynasym.Scenario{dynasym.WithPaperDVFS(0)}},
	}

	fmt.Printf("%-22s", "scheduler")
	for _, sc := range scenarios {
		fmt.Printf("%24s", sc.name)
	}
	fmt.Println("   [tasks/s]")

	for _, pol := range dynasym.Policies() {
		fmt.Printf("%-22s", pol.Name())
		for _, sc := range scenarios {
			g := dynasym.BuildSyntheticDAG(dynasym.SyntheticConfig{
				Kernel:      dynasym.MatMul,
				Tile:        64,
				Tasks:       6000,
				Parallelism: 2,
			})
			res, err := dynasym.Simulate(g, dynasym.SimConfig{
				Platform: dynasym.TX2(),
				Policy:   pol,
				Seed:     42,
			}, sc.s...)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%24.0f", res.Throughput())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Where did the critical tasks run under interference?")
	for _, name := range []string{"RWS", "FA", "DAM-P"} {
		pol, _ := dynasym.PolicyByName(name)
		g := dynasym.BuildSyntheticDAG(dynasym.SyntheticConfig{
			Kernel: dynasym.MatMul, Tile: 64, Tasks: 6000, Parallelism: 2,
		})
		res, err := dynasym.Simulate(g, dynasym.SimConfig{
			Platform: dynasym.TX2(), Policy: pol, Seed: 42,
		}, dynasym.WithCoRunner([]int{0}, 0.5))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s", name)
		for i, ps := range res.PlaceHistogram(true) {
			if i >= 4 || ps.Frac < 0.01 {
				break
			}
			fmt.Printf("  %s=%.0f%%", ps.Place, ps.Frac*100)
		}
		fmt.Println()
	}
}
