// K-means: run the paper's data-parallel K-means application as a dynamic
// DAG on the real runtime, optionally with a synthetic co-running load, and
// report per-phase timing and clustering quality.
//
//	go run ./examples/kmeans
//	go run ./examples/kmeans -load 2     # with 2 interfering spinner threads
package main

import (
	"flag"
	"fmt"
	"log"

	"dynasym"
)

func main() {
	var (
		load   = flag.Int("load", 0, "interfering spinner threads")
		policy = flag.String("policy", "DAM-P", "scheduling policy")
		n      = flag.Int("n", 1<<14, "points")
		k      = flag.Int("k", 8, "clusters")
		iters  = flag.Int("iters", 30, "max iterations")
	)
	flag.Parse()

	pol, err := dynasym.PolicyByName(*policy)
	if err != nil {
		log.Fatal(err)
	}
	if *load > 0 {
		stop := dynasym.StartInterferingLoad(*load)
		defer stop()
		fmt.Printf("started %d interfering spinner threads\n", *load)
	}

	km := dynasym.NewKMeans(dynasym.KMeansConfig{
		N:        *n,
		D:        16,
		K:        *k,
		Grains:   32,
		MaxIters: *iters,
		Epsilon:  1e-4,
		Seed:     7,
	})
	g := km.Build()

	res, err := dynasym.Run(g, dynasym.RunConfig{
		Platform: dynasym.SymmetricPlatform(4),
		Policy:   pol,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy %s: %d tasks over %d iterations in %.1f ms\n",
		pol.Name(), res.TasksDone(), km.Iters, res.Makespan()*1e3)
	fmt.Printf("converged: %v (last centroid movement %.3g)\n",
		km.Epsilon > 0 && km.Moved < km.Epsilon, km.Moved)
	fmt.Printf("inertia (sum of squared point-centroid distances): %.1f\n", km.Inertia())

	fmt.Println("iteration times [ms]:")
	for _, st := range res.IterStats() {
		if st.Iter%5 == 0 {
			fmt.Printf("  iter %-3d %7.2f\n", st.Iter, (st.End-st.Start)*1e3)
		}
	}
}
