// Quickstart: build a small moldable task DAG with the public API and run
// it on the real runtime with the DAM-C scheduler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"sync/atomic"

	"dynasym"
)

func main() {
	// A diamond DAG: prepare → 4 independent compute stages → combine.
	// The combine task is on the critical path, so it is marked high
	// priority; the scheduler will steer and mold it according to the
	// online performance model.
	g := dynasym.NewGraph()

	var total atomic.Uint64
	work := func(n int) func(dynasym.Exec) {
		// A moldable body: members split the range by Exec.Part/Width.
		return func(e dynasym.Exec) {
			lo := e.Part * n / e.Width
			hi := (e.Part + 1) * n / e.Width
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += math.Sqrt(float64(i))
			}
			total.Add(uint64(sum))
		}
	}

	prepare := g.Add(&dynasym.Task{
		Label: "prepare",
		Type:  0,
		Body:  work(200_000),
		Cost:  dynasym.Cost{Ops: 2e6},
	})
	var stages []*dynasym.Task
	for i := 0; i < 4; i++ {
		stages = append(stages, g.Add(&dynasym.Task{
			Label: fmt.Sprintf("stage-%d", i),
			Type:  1,
			Body:  work(1_000_000),
			Cost:  dynasym.Cost{Ops: 1e7},
		}, prepare))
	}
	g.Add(&dynasym.Task{
		Label: "combine",
		Type:  2,
		High:  true, // critical: everything downstream waits for it
		Body:  work(500_000),
		Cost:  dynasym.Cost{Ops: 5e6},
	}, stages...)

	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DAG: %d tasks, parallelism %.1f\n", g.Total(), g.Parallelism())

	res, err := dynasym.Run(g, dynasym.RunConfig{
		Platform: dynasym.SymmetricPlatform(4),
		Policy:   dynasym.DAMC(),
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d tasks in %.2f ms (checksum %d)\n",
		res.TasksDone(), res.Makespan()*1e3, total.Load())
	fmt.Println("execution places used:")
	for _, ps := range res.PlaceHistogram(false) {
		fmt.Printf("  %-8s %5.1f%%\n", ps.Place, ps.Frac*100)
	}
}
