// Heat: run the shared-memory 2D heat diffusion DAG on the real runtime
// and verify the parallel result against a serial reference — the
// correctness-critical example: scheduling decisions must never change
// numerical results.
//
//	go run ./examples/heat
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"dynasym"
)

func main() {
	var (
		policy = flag.String("policy", "DAM-C", "scheduling policy")
		rows   = flag.Int("rows", 256, "grid rows")
		cols   = flag.Int("cols", 256, "grid columns")
		iters  = flag.Int("iters", 40, "Jacobi iterations")
	)
	flag.Parse()

	pol, err := dynasym.PolicyByName(*policy)
	if err != nil {
		log.Fatal(err)
	}

	h := dynasym.NewHeat(dynasym.HeatConfig{
		Rows: *rows, Cols: *cols, Blocks: 8, Iters: *iters, Seed: 3,
	})
	g := h.Build()
	fmt.Printf("heat %dx%d, %d iterations, %d tasks, DAG parallelism %.1f\n",
		*rows, *cols, *iters, g.Total(), g.Parallelism())

	res, err := dynasym.Run(g, dynasym.RunConfig{
		Platform: dynasym.SymmetricPlatform(4),
		Policy:   pol,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy %s: %.1f ms, %.0f tasks/s\n",
		pol.Name(), res.Makespan()*1e3, res.Throughput())

	// Verify against the serial reference.
	got := h.Result()
	want := h.Reference()
	maxDiff := 0.0
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-9 {
		log.Fatalf("parallel result diverges from serial reference: max diff %g", maxDiff)
	}
	fmt.Printf("verified against serial reference (max diff %g)\n", maxDiff)
}
