package dynasym

import (
	"dynasym/internal/workloads"
	"dynasym/internal/xtr"
)

// Application builders re-exported from internal/workloads: the paper's
// synthetic layered DAGs, K-means clustering and 2D Heat. They produce
// ordinary Graphs that run on either engine.

type (
	// SyntheticConfig describes a layered synthetic DAG (one critical
	// task per layer releases the next layer).
	SyntheticConfig = workloads.SyntheticConfig
	// KernelKind selects the synthetic DAG node type.
	KernelKind = workloads.KernelKind
	// KMeansConfig parameterizes the K-means application.
	KMeansConfig = workloads.KMeansConfig
	// KMeans is the K-means application instance.
	KMeans = workloads.KMeans
	// HeatConfig parameterizes the shared-memory 2D Heat application.
	HeatConfig = workloads.HeatConfig
	// Heat is the shared-memory 2D Heat application instance.
	Heat = workloads.Heat
)

// Synthetic DAG kernel kinds.
const (
	MatMul  = workloads.MatMul
	Copy    = workloads.Copy
	Stencil = workloads.Stencil
)

// BuildSyntheticDAG constructs the paper's layered synthetic DAG.
func BuildSyntheticDAG(cfg SyntheticConfig) *Graph { return workloads.BuildSynthetic(cfg) }

// NewKMeans builds a K-means application over synthetic Gaussian blobs.
func NewKMeans(cfg KMeansConfig) *KMeans { return workloads.NewKMeans(cfg) }

// NewHeat builds a shared-memory 2D Heat diffusion application.
func NewHeat(cfg HeatConfig) *Heat { return workloads.NewHeat(cfg) }

// StartInterferingLoad launches n busy-spinning OS threads as a synthetic
// co-running application for real-mode interference experiments. Call the
// returned function to stop them.
func StartInterferingLoad(n int) (stop func()) { return xtr.SpinLoad(n) }
