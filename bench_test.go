// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each wrapping the corresponding experiment from
// internal/experiments at a reduced scale (the CLI `asymbench` runs them at
// paper scale; see EXPERIMENTS.md). The benchmark metric of interest is the
// reported custom metrics (tasks/s of the key schedulers), not ns/op.
package dynasym_test

import (
	"runtime"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/experiments"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

// benchScale keeps each benchmark iteration around a second.
const benchScale = experiments.Scale(0.05)

func BenchmarkTable1Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1()
		if len(res.Rows) != 7 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func benchFig4(b *testing.B, kernel workloads.KernelKind) {
	for i := 0; i < b.N; i++ {
		grid := experiments.Fig4(experiments.Fig4Config{
			Kernel:       kernel,
			Parallelisms: []int{2, 4, 6},
			Scale:        benchScale,
		})
		b.ReportMetric(grid.Get("DAM-C", 2), "DAM-C@P2_tasks/s")
		b.ReportMetric(grid.Get("RWS", 2), "RWS@P2_tasks/s")
	}
}

func BenchmarkFig4aMatMulCoRun(b *testing.B)  { benchFig4(b, workloads.MatMul) }
func BenchmarkFig4bCopyCoRun(b *testing.B)    { benchFig4(b, workloads.Copy) }
func BenchmarkFig4cStencilCoRun(b *testing.B) { benchFig4(b, workloads.Stencil) }

func BenchmarkFig5PriorityPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(experiments.Fig5Config{Scale: benchScale})
		b.ReportMetric(res.Share("DA", 1)*100, "DA_crit_on_core1_%")
	}
}

func BenchmarkFig6CoreWorkTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6(experiments.Fig5Config{Scale: benchScale})
		b.ReportMetric(res.CoreTime("FA", 0), "FA_core0_s")
	}
}

func benchFig7(b *testing.B, kernel workloads.KernelKind) {
	for i := 0; i < b.N; i++ {
		grid := experiments.Fig7(experiments.Fig7Config{
			Kernel:       kernel,
			Parallelisms: []int{2, 4, 6},
			Scale:        benchScale,
		})
		b.ReportMetric(grid.Get("DAM-P", 2), "DAM-P@P2_tasks/s")
		b.ReportMetric(grid.Get("FA", 2), "FA@P2_tasks/s")
	}
}

func BenchmarkFig7aMatMulDVFS(b *testing.B)  { benchFig7(b, workloads.MatMul) }
func BenchmarkFig7bCopyDVFS(b *testing.B)    { benchFig7(b, workloads.Copy) }
func BenchmarkFig7cStencilDVFS(b *testing.B) { benchFig7(b, workloads.Stencil) }

func BenchmarkFig8WeightSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(experiments.Fig8Config{
			Tiles:  []int{32, 96},
			Alphas: []float64{0.2, 1.0},
			Scale:  benchScale,
		})
		b.ReportMetric(res.Spread(0)*100, "tile32_spread_%")
	}
}

func BenchmarkFig9KMeans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(experiments.Fig9Config{
			Iters: 30, From: 8, To: 22, Scale: experiments.Scale(0.25),
		})
		b.ReportMetric(res.MeanSettledIterTime("RWS")*1e3, "RWS_iter_ms")
		b.ReportMetric(res.MeanSettledIterTime("DAM-P")*1e3, "DAM-P_iter_ms")
	}
}

func BenchmarkFig10DistributedHeat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10(experiments.Fig10Config{Scale: experiments.Scale(0.5)})
		b.ReportMetric(res.Get("DAM-C"), "DAM-C_tasks/s")
		b.ReportMetric(res.Get("RWS"), "RWS_tasks/s")
	}
}

func BenchmarkAblationSteal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(experiments.AblationConfig{
			Variant: "steal", Parallelisms: []int{2}, Scale: benchScale,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(experiments.AblationConfig{
			Variant: "wake", Parallelisms: []int{2}, Scale: benchScale,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDHEFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(experiments.AblationConfig{
			Variant: "dheft", Parallelisms: []int{2}, Scale: benchScale,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleout64Engine is the event-volume stress test: a 64-core
// 8-cluster platform (the scaleout-64 scenario family's shape) with
// phase-staggered bursts on the little clusters, running a wide synthetic
// MatMul DAG under the sampled DAM-C policy. The reported events/s is the
// engine's dispatch throughput, the metric BENCH_PR2.json tracks. Workload
// and platform construction happen outside the timed sections (with a
// forced collection of the setup garbage), so the measurement isolates the
// simulation loop itself.
func BenchmarkScaleout64Engine(b *testing.B) {
	var events uint64
	var tasks int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo := topology.ScaleOut(8, 8)
		model := machine.New(topo)
		for ci := 1; ci < topo.NumClusters(); ci += 2 {
			interfere.BurstCPU(model, topo.CoresOf(ci), 0.5, 2, 2, float64(ci/2), 0)
		}
		g := workloads.BuildSynthetic(workloads.SyntheticConfig{
			Kernel:      workloads.MatMul,
			Tasks:       2400,
			Parallelism: 16,
		}.Defaults())
		rt, err := simrt.New(simrt.Config{
			Topo:   topo,
			Model:  model,
			Policy: core.NewSampled(core.DAMC(), 32),
			Seed:   42,
		})
		if err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		b.StartTimer()
		if _, err := rt.Run(g); err != nil {
			b.Fatal(err)
		}
		events += rt.Engine().Processed
		tasks += g.Total()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "tasks/s")
}

// Engine micro-benchmarks: scheduling throughput of the simulated runtime
// (events/s) and the real runtime (tasks/s on trivial tasks).
func BenchmarkSimulatedSchedulerThroughput(b *testing.B) {
	grid := experiments.Fig4Config{
		Kernel:       workloads.MatMul,
		Parallelisms: []int{6},
		Policies:     []core.Policy{core.DAMC()},
		Scale:        experiments.Scale(0.02),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig4(grid)
	}
}
