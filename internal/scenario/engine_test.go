package scenario

import (
	"os"
	"strings"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/workloads"
)

// smallSynthetic is a fast TX2 matmul spec used across the engine tests.
func smallSynthetic(policies ...core.Policy) Spec {
	return Spec{
		Name:     "engine-test",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel: workloads.MatMul,
			Tasks:  600,
		}},
		Policies: policies,
		Points:   ParallelismPoints(2, 4),
		Seed:     42,
	}
}

func TestRunGridShape(t *testing.T) {
	res, err := Run(smallSynthetic(core.RWS(), core.DAMC()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || len(res.Cells[0]) != 2 {
		t.Fatalf("grid shape %dx%d, want 2x2", len(res.Cells), len(res.Cells[0]))
	}
	for pi := range res.Cells {
		for xi := range res.Cells[pi] {
			c := res.Cells[pi][xi]
			if len(c.Runs) != 1 {
				t.Fatalf("cell %s/%s has %d runs, want 1", c.Policy, c.Point.Label, len(c.Runs))
			}
			r := c.Run()
			if r.Throughput <= 0 || r.Makespan <= 0 || r.TasksDone != 600 {
				t.Errorf("cell %s/%s: tput=%v makespan=%v tasks=%d", c.Policy, c.Point.Label, r.Throughput, r.Makespan, r.TasksDone)
			}
		}
	}
	if res.Cell("DAM-C", "P2") == nil || res.Cell("DAM-C", "nope") != nil {
		t.Errorf("Cell lookup broken")
	}
	var b strings.Builder
	res.WriteTable(&b)
	if !strings.Contains(b.String(), "DAM-C") {
		t.Errorf("WriteTable missing policy row:\n%s", b.String())
	}
}

func TestRepetitionsGetDistinctSeeds(t *testing.T) {
	s := smallSynthetic(core.DAMC())
	s.Points = ParallelismPoints(2)
	s.Reps = 3
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	runs := res.Cells[0][0].Runs
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	if runs[0].Seed != s.Seed {
		t.Errorf("rep 0 seed %d, want base seed %d", runs[0].Seed, s.Seed)
	}
	seen := map[uint64]bool{}
	for _, r := range runs {
		if seen[r.Seed] {
			t.Errorf("duplicate rep seed %d", r.Seed)
		}
		seen[r.Seed] = true
		if r.Throughput <= 0 {
			t.Errorf("rep with seed %d has zero throughput", r.Seed)
		}
	}
	if mean := res.Cells[0][0].MeanThroughput(); mean <= 0 {
		t.Errorf("mean throughput %v", mean)
	}
}

// The engine must produce identical results no matter how many pool
// workers execute the grid.
func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	s := smallSynthetic(core.All()...)
	s.Reps = 2
	s.Workers = 1
	serial, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Workers = 8
	parallel, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint() != parallel.Fingerprint() {
		t.Fatalf("worker count changed results")
	}
}

func TestPointAlphaOverride(t *testing.T) {
	s := smallSynthetic(core.DAMC())
	s.Points = []Point{
		{Label: "slow", Parallelism: 2, Alpha: 0.2},
		{Label: "fast", Parallelism: 2, Alpha: 1.0},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	slow := res.Cell("DAM-C", "slow").Run()
	fast := res.Cell("DAM-C", "fast").Run()
	if slow.Throughput == fast.Throughput {
		t.Errorf("alpha override had no effect: both %v tasks/s", slow.Throughput)
	}
}

func TestCriticalityVariants(t *testing.T) {
	base := smallSynthetic(core.DAMC())
	base.Points = ParallelismPoints(2)
	tputs := map[string]float64{}
	for _, crit := range []string{CritUser, CritInferred, CritNone} {
		s := base
		s.Workload.Criticality = crit
		res, err := Run(s)
		if err != nil {
			t.Fatalf("criticality %q: %v", crit, err)
		}
		tputs[crit] = res.Cells[0][0].Run().Throughput
	}
	// The annotations matter: stripping them must not beat user marks at
	// spine-bound parallelism (the infer ablation's finding).
	if tputs[CritNone] >= tputs[CritUser] {
		t.Errorf("no-priority run (%.0f) should trail user-annotated (%.0f)", tputs[CritNone], tputs[CritUser])
	}
}

func TestDistributedHeatCell(t *testing.T) {
	s := Spec{
		Name:     "heat-test",
		Platform: PlatformSpec{Preset: "haswell-node"},
		Workload: WorkloadSpec{Kind: HeatDist, Heat: workloads.HeatDistConfig{Nodes: 2, Iters: 8, BlocksPerNode: 20}},
		Disturb:  []Disturbance{{Kind: CoRunCPU, Node: 1, Cores: []int{0, 1}, Share: 0.5}},
		Policies: []core.Policy{core.DAMC()},
		Seed:     42,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Cells[0][0].Run()
	if r.TasksDone == 0 || r.Throughput <= 0 {
		t.Fatalf("distributed run empty: %+v", r)
	}
	if want := 2 * res.Topo.NumCores(); len(r.CoreBusy) != want {
		t.Errorf("CoreBusy has %d entries, want %d (2 nodes)", len(r.CoreBusy), want)
	}
	total := 0.0
	for _, ps := range r.HighHist {
		total += ps.Frac
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("merged histogram fractions sum to %v, want 1", total)
	}
}

// A 16-core 4-cluster platform run through the Sampled O(K) search — the
// scale the paper leaves as future work.
func TestScaleOutSixteenCores(t *testing.T) {
	s := Spec{
		Name:     "scaleout-smoke",
		Platform: PlatformSpec{Preset: "scaleout-4x4"},
		Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel: workloads.MatMul,
			Tasks:  1200,
		}},
		Disturb:  []Disturbance{{Kind: Burst, Cluster: 1, Share: 0.5, BusyDur: 0.2, IdleDur: 0.2}},
		Policies: []core.Policy{core.RWS(), core.DAMC(), core.NewSampled(core.DAMC(), 8)},
		Points:   ParallelismPoints(8, 16),
		Seed:     42,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Topo.NumCores() != 16 || res.Topo.NumClusters() != 4 {
		t.Fatalf("platform is %s, want 16 cores in 4 clusters", res.Topo)
	}
	if testing.Verbose() {
		res.WriteTable(os.Stdout)
	}
	for pi := range res.Cells {
		for xi := range res.Cells[pi] {
			if res.Cells[pi][xi].Run().Throughput <= 0 {
				t.Errorf("cell %s/%s produced no throughput", res.Policies[pi], res.Points[xi].Label)
			}
		}
	}
	// The asymmetry-aware policies must beat random stealing at high
	// parallelism on the asymmetric scale-out platform.
	rws := res.Cell("RWS", "P16").Run().Throughput
	damc := res.Cell("DAM-C", "P16").Run().Throughput
	sampled := res.Cell("DAM-C~8", "P16").Run().Throughput
	if damc <= rws {
		t.Errorf("DAM-C (%.0f) should beat RWS (%.0f) on the asymmetric platform", damc, rws)
	}
	if sampled <= rws {
		t.Errorf("Sampled DAM-C~8 (%.0f) should beat RWS (%.0f)", sampled, rws)
	}
}

func TestRunErrorsCarryContext(t *testing.T) {
	s := smallSynthetic(core.DAMC())
	s.Policies = nil
	if _, err := Run(s); err == nil || !strings.Contains(err.Error(), "empty policy set") {
		t.Fatalf("want validation error, got %v", err)
	}
}
