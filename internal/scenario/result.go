package scenario

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"dynasym/internal/metrics"
	"dynasym/internal/topology"
)

// RunMetrics is the aggregated outcome of one repetition of one cell. For
// distributed scenarios the per-core and per-place views concatenate and
// merge the nodes' collectors.
type RunMetrics struct {
	// Seed is the runtime seed this repetition ran with.
	Seed uint64
	// Throughput is completed tasks per second of makespan.
	Throughput float64
	// Makespan is the virtual time of the last task completion.
	Makespan float64
	// TasksDone counts completed task executions.
	TasksDone int64
	// CoreBusy is per-core accumulated kernel work time in seconds
	// (node-major concatenation for distributed runs).
	CoreBusy []float64
	// HighHist is the distribution of high-priority tasks over places.
	HighHist []metrics.PlaceShare
	// Iters holds per-iteration statistics for iterative workloads.
	Iters []metrics.IterStat
	// Steals, FailedSteals and Dispatches sum the scheduler counters over
	// all cores (and nodes).
	Steals, FailedSteals, Dispatches int64
	// Sched carries scheduler-introspection telemetry when the run
	// executed with a probe (Spec.Probe); nil otherwise. It rides the
	// shard wire format like every other field, so remote cells report
	// too. Deliberately not part of Fingerprint: telemetry describes a
	// run, it does not define one.
	Sched *metrics.Sched `json:",omitempty"`
}

// Cell is one (policy, point) position of the grid with all repetitions.
type Cell struct {
	Policy string
	Point  Point
	Runs   []RunMetrics
}

// Run returns the first repetition — the canonical single-run view that
// reproduces a standalone execution with the spec's base seed.
func (c *Cell) Run() RunMetrics { return c.Runs[0] }

// MeanThroughput averages throughput over repetitions.
func (c *Cell) MeanThroughput() float64 {
	sum := 0.0
	for _, r := range c.Runs {
		sum += r.Throughput
	}
	return sum / float64(len(c.Runs))
}

// MeanMakespan averages makespan over repetitions.
func (c *Cell) MeanMakespan() float64 {
	sum := 0.0
	for _, r := range c.Runs {
		sum += r.Makespan
	}
	return sum / float64(len(c.Runs))
}

// Sched merges the repetitions' scheduler telemetry, or nil when the cell
// ran without probes.
func (c *Cell) Sched() *metrics.Sched {
	var out *metrics.Sched
	for _, r := range c.Runs {
		if r.Sched == nil {
			continue
		}
		if out == nil {
			out = r.Sched.Clone()
		} else {
			out.Merge(r.Sched)
		}
	}
	return out
}

// Result is the full grid of a scenario run.
type Result struct {
	// Name echoes the spec.
	Name string
	// Topo is the platform the cells ran on (one node's platform for
	// distributed scenarios).
	Topo *topology.Platform
	// Policies and Points give the grid axes in spec order.
	Policies []string
	Points   []Point
	// Cells is indexed [policy][point].
	Cells [][]Cell
}

// Cell returns the cell for a policy name and point label, or nil.
func (r *Result) Cell(policy, label string) *Cell {
	for pi, p := range r.Policies {
		if p != policy {
			continue
		}
		for xi, pt := range r.Points {
			if pt.Label == label {
				return &r.Cells[pi][xi]
			}
		}
	}
	return nil
}

// Throughputs returns the mean-throughput grid indexed [policy][point].
func (r *Result) Throughputs() [][]float64 {
	out := make([][]float64, len(r.Policies))
	for pi := range r.Cells {
		out[pi] = make([]float64, len(r.Points))
		for xi := range r.Cells[pi] {
			out[pi][xi] = r.Cells[pi][xi].MeanThroughput()
		}
	}
	return out
}

// WriteTable renders the mean-throughput grid as an aligned text table.
func (r *Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Name)
	fmt.Fprintf(w, "%-12s", "policy")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%12s", pt.Label)
	}
	fmt.Fprintln(w)
	for pi, p := range r.Policies {
		fmt.Fprintf(w, "%-12s", p)
		for xi := range r.Points {
			fmt.Fprintf(w, "%12.0f", r.Cells[pi][xi].MeanThroughput())
		}
		fmt.Fprintln(w)
	}
}

// Fingerprint serializes every metric of every repetition bit-exactly.
// Two runs of the same spec must produce identical fingerprints; the
// determinism regression tests rely on this.
func (r *Result) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s topo=%s\n", r.Name, r.Topo)
	for pi, p := range r.Policies {
		for xi, pt := range r.Points {
			for rep, run := range r.Cells[pi][xi].Runs {
				fmt.Fprintf(&b, "%s/%s/r%d seed=%d tput=%x mk=%x tasks=%d steals=%d fsteals=%d disp=%d\n",
					p, pt.Label, rep, run.Seed,
					math.Float64bits(run.Throughput), math.Float64bits(run.Makespan),
					run.TasksDone, run.Steals, run.FailedSteals, run.Dispatches)
				b.WriteString(" busy")
				for _, v := range run.CoreBusy {
					fmt.Fprintf(&b, " %x", math.Float64bits(v))
				}
				b.WriteString("\n hist")
				for _, ps := range run.HighHist {
					fmt.Fprintf(&b, " %s:%d:%x", ps.Place, ps.Count, math.Float64bits(ps.Frac))
				}
				b.WriteString("\n iters")
				for _, st := range run.Iters {
					fmt.Fprintf(&b, " %d:%d:%x:%x:%s", st.Iter, st.Tasks,
						math.Float64bits(st.Start), math.Float64bits(st.End), placesKey(st.Places))
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

// placesKey renders an iteration's place counts in deterministic order.
func placesKey(places map[int]int64) string {
	ids := make([]int, 0, len(places))
	for id := range places {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d=%d", id, places[id])
	}
	return strings.Join(parts, ",")
}

// mergeHists merges per-node place histograms into one distribution,
// sorted like metrics.PlaceHistogram (count descending, then place order).
func mergeHists(hists ...[]metrics.PlaceShare) []metrics.PlaceShare {
	counts := map[topology.Place]int64{}
	var total int64
	for _, h := range hists {
		for _, ps := range h {
			counts[ps.Place] += ps.Count
			total += ps.Count
		}
	}
	out := make([]metrics.PlaceShare, 0, len(counts))
	for pl, n := range counts {
		ps := metrics.PlaceShare{Place: pl, Count: n}
		if total > 0 {
			ps.Frac = float64(n) / float64(total)
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Place.Leader != out[j].Place.Leader {
			return out[i].Place.Leader < out[j].Place.Leader
		}
		return out[i].Place.Width < out[j].Place.Width
	})
	return out
}
