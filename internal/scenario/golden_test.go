package scenario

import (
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/workloads"
)

// TestSpecHashGoldenVectors pins Spec.Hash to literal sha256 strings for
// representative specs. These hashes are the service's cache keys and job
// IDs: every deployed asymd node and every persisted result is keyed by
// them. A failure here means a refactor changed the canonical encoding —
// which silently invalidates (or worse, aliases) every existing cache
// entry. Do not update the literals without meaning to break the key
// space.
func TestSpecHashGoldenVectors(t *testing.T) {
	vectors := []struct {
		name string
		spec Spec
		want string
	}{
		{
			// Everything defaulted: locks withDefaults + the workload's
			// own Defaults() into the encoding.
			name: "defaults",
			spec: Spec{
				Workload: WorkloadSpec{Kind: Synthetic},
				Policies: []core.Policy{core.DAMC()},
				Seed:     42,
			},
			want: "38554b62b8f1d37bcde6a8d3977b11438dc0ce86e0e80af14b29bc38cc0bc465",
		},
		{
			// Sampled policy wrapper ("DAM-C~8"), multi-point sweep,
			// repetitions, a disturbance, scale-out platform.
			name: "sampled",
			spec: Spec{
				Name:     "golden-sampled",
				Platform: PlatformSpec{Preset: "scaleout-4x4"},
				Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
					Kernel: workloads.Stencil, Tasks: 1200,
				}},
				Disturb:  []Disturbance{{Kind: Burst, Cluster: 1, Share: 0.5, BusyDur: 0.2, IdleDur: 0.4}},
				Policies: []core.Policy{core.RWS(), core.NewSampled(core.DAMC(), 8)},
				Points:   ParallelismPoints(8, 16),
				Reps:     2,
				Seed:     7,
			},
			want: "0a678b63098999bfe4b387ce9c41ef4d58a11cc0513a809e6623394c1e57e4c0",
		},
		{
			// KMeans: only the active workload's config may be encoded.
			name: "kmeans",
			spec: Spec{
				Name:     "golden-kmeans",
				Workload: WorkloadSpec{Kind: KMeans, KMeans: workloads.KMeansConfig{K: 8, MaxIters: 4}},
				Policies: []core.Policy{core.DAMP()},
				Seed:     42,
			},
			want: "d47f6cac58234cde6501d2b6f8c77bacbdfa4394d775f7b18dc1dda75b13cf04",
		},
		{
			// Distributed heat with a windowed throttle on node 1 (the
			// implicit ramp-steps default is part of the key).
			name: "heat",
			spec: Spec{
				Name:     "golden-heat",
				Platform: PlatformSpec{Preset: "haswell-node"},
				Workload: WorkloadSpec{Kind: HeatDist, Heat: workloads.HeatDistConfig{Nodes: 2, Iters: 6}},
				Disturb:  []Disturbance{{Kind: Throttle, Node: 1, Cluster: 0, From: 1, To: 3, Floor: 0.5}},
				Policies: []core.Policy{core.DAMC()},
				Seed:     11,
			},
			want: "bbd79ec42b787606b309365d7c6338870eae143cd62031c7593b0d4aa8ea8985",
		},
	}
	for _, v := range vectors {
		v := v
		t.Run(v.name, func(t *testing.T) {
			got, err := v.spec.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if got != v.want {
				cj, _ := v.spec.CanonicalJSON()
				t.Errorf("Spec.Hash = %s, want %s\ncanonical encoding changed to: %s", got, v.want, cj)
			}
		})
	}
}
