package scenario

// Plan / RunCell / Merge split Run's monolithic grid loop into first-class
// schedulable units. A Plan enumerates every (policy × point × repetition)
// cell of a validated spec in Run's execution order; RunCell executes one
// cell as a pure function of the plan and the cell's coordinates; Merge
// reassembles cell results into a Result that is bit-identical to what a
// monolithic Run of the same spec produces.
//
// Each CellJob carries a canonical hash — the cell-granular cache key used
// by internal/service. The hash covers the spec's cell-invariant fields
// (platform, workload, disturbances, alpha, interconnect; see cellBase in
// canonical.go) plus the cell's own policy name, point parameters and
// derived seed. It deliberately excludes the spec's name, its grid axes and
// the point label: none of them change the cell's metrics, so two
// overlapping specs — say, a sweep and the same sweep with one extra point —
// share the hashes of their common cells and a cell cache can serve the
// overlap without re-simulating.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"dynasym/internal/simrt"
	"dynasym/internal/trace"
)

// CellJob identifies one cell of a plan's grid: indexes into the plan
// spec's Policies/Points axes, the repetition number, the derived runtime
// seed, and the canonical cell hash.
type CellJob struct {
	// Policy and Point index Plan.Spec.Policies and Plan.Spec.Points.
	Policy, Point int
	// Rep is the repetition number in [0, Spec.Reps).
	Rep int
	// Seed is the runtime seed this cell runs with
	// (Spec.Seed + Rep*repSeedStride).
	Seed uint64
	// Hash is the canonical per-cell cache key.
	Hash string
}

// Plan is a spec expanded into its cell shards.
type Plan struct {
	// Spec is the normalized (withDefaults) and validated spec.
	Spec Spec
	// Hash is the spec's canonical hash (the job-level key).
	Hash string
	// Canonical is the canonical JSON encoding Hash is the sha256 of,
	// kept so shard senders can ship the spec without re-marshaling it
	// per shard (a dagfile spec embeds its whole graph; re-encoding it
	// for every shard attempt of a large grid is pure waste).
	Canonical []byte
	// Cells enumerates the grid policy-major, then point, then repetition —
	// exactly the order Run executes.
	Cells []CellJob

	// compiled holds, per point index, the shared compiled workload the
	// point's cells run on (nil for HeatDist, whose cells build their own
	// multi-node state). Compilation is lazy: entries compile on the
	// first cell that runs, so plans that are merged purely from cached
	// results never build a graph.
	compiled []*compiledWorkload
	// variant maps each point index to a dense workload-variant id —
	// points with equal ids share one compiled graph. Backends group
	// same-variant cells so a worker sweeps one graph's cells back to
	// back (see PointVariant).
	variant []int
	// cellRecs holds one private trace recorder per cell when the spec
	// traces (Spec.Trace != nil). Cells record into their own recorder so
	// concurrent workers never interleave; mergeTraces folds them into
	// the shared recorder deterministically after the grid drains.
	cellRecs []*trace.Recorder
}

// NewPlan validates the spec and expands it into cell jobs.
func NewPlan(s Spec) (*Plan, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	canonical, err := s.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(canonical)
	hash := hex.EncodeToString(sum[:])
	base, err := s.cellBase()
	if err != nil {
		return nil, err
	}
	cells := make([]CellJob, 0, len(s.Policies)*len(s.Points)*s.Reps)
	for pi, pol := range s.Policies {
		for xi, pt := range s.Points {
			for rep := 0; rep < s.Reps; rep++ {
				seed := s.Seed + uint64(rep)*repSeedStride
				cells = append(cells, CellJob{
					Policy: pi, Point: xi, Rep: rep,
					Seed: seed,
					Hash: cellHash(base, pol.Name(), pt, seed),
				})
			}
		}
	}
	compiled, variant, err := compileWorkloads(s)
	if err != nil {
		return nil, err
	}
	p := &Plan{Spec: s, Hash: hash, Canonical: canonical, Cells: cells,
		compiled: compiled, variant: variant}
	if s.Trace != nil && s.Workload.Kind != HeatDist {
		p.cellRecs = make([]*trace.Recorder, len(cells))
		for i := range p.cellRecs {
			p.cellRecs[i] = trace.New()
		}
	}
	return p, nil
}

// cellHashVersion tags the engine generation in every cell hash. Bump it
// whenever a change alters the simulated metrics of an unchanged spec
// (scheduler behavior, kernel cost models, seeding) — the canonical spec
// encoding cannot see such changes, so without this tag a version-skewed
// peer would serve old-engine results under the same keys and silently
// mix engine outputs inside one merged Result.
const cellHashVersion = "cell-v1"

// cellHash derives the canonical cell key from the engine generation, the
// spec's cell-invariant base encoding and the cell's own coordinates. The
// point label is excluded: it names the point in reports but cannot
// change the metrics.
func cellHash(base []byte, policy string, pt Point, seed uint64) string {
	h := sha256.New()
	h.Write([]byte(cellHashVersion))
	h.Write([]byte{0})
	h.Write(base)
	fmt.Fprintf(h, "\x00policy=%s\x00parallelism=%d\x00tile=%d\x00alpha=%x\x00seed=%d",
		policy, pt.Parallelism, pt.Tile, math.Float64bits(pt.Alpha), seed)
	return hex.EncodeToString(h.Sum(nil))
}

// Cell returns the plan cell at grid position (policy, point, rep); the
// position must be in range (plans enumerate the full grid).
func (p *Plan) Cell(policy, point, rep int) (CellJob, error) {
	if policy < 0 || policy >= len(p.Spec.Policies) ||
		point < 0 || point >= len(p.Spec.Points) ||
		rep < 0 || rep >= p.Spec.Reps {
		return CellJob{}, fmt.Errorf("scenario %q: cell (%d,%d,%d) outside the %dx%dx%d grid",
			p.Spec.Name, policy, point, rep, len(p.Spec.Policies), len(p.Spec.Points), p.Spec.Reps)
	}
	return p.Cells[(policy*len(p.Spec.Points)+point)*p.Spec.Reps+rep], nil
}

// CellLabel renders a cell's coordinates for error messages and logs,
// matching Run's historical error context ("DAM-C at P4 (rep 1)").
func (p *Plan) CellLabel(c CellJob) string {
	return fmt.Sprintf("%s at %s (rep %d)",
		p.Spec.Policies[c.Policy].Name(), p.Spec.Points[c.Point].Label, c.Rep)
}

// PointVariant returns the dense workload-variant id of a point index:
// points with equal ids run structurally identical graphs from one
// compiled workload. Backends order cells by variant so each worker sweeps
// one compiled graph's cells back to back.
func (p *Plan) PointVariant(point int) int {
	if point < 0 || point >= len(p.variant) {
		return 0
	}
	return p.variant[point]
}

// runCellHook, when non-nil, intercepts cell execution. Tests use it to
// inject deterministic mid-grid failures that the public spec surface
// cannot produce.
var runCellHook func(p *Plan, c CellJob) (RunMetrics, error, bool)

// RunCell executes one cell. It is a pure function of the plan's spec and
// the cell's coordinates: same cell, same metrics, bit for bit, no matter
// where or when it runs. The returned metrics carry the cell's seed.
func (p *Plan) RunCell(c CellJob) (RunMetrics, error) {
	return p.RunCellState(nil, c)
}

// RunCellState is RunCell with caller-owned scratch state: a sweep worker
// allocates one CellState and passes it to every cell it runs, so engine
// event storage is reused across the sweep. The state never influences the
// metrics — RunCellState(st, c) and RunCell(c) are bit-identical. A nil
// state is valid (RunCell's path).
func (p *Plan) RunCellState(st *CellState, c CellJob) (RunMetrics, error) {
	if c.Policy < 0 || c.Policy >= len(p.Spec.Policies) || c.Point < 0 || c.Point >= len(p.Spec.Points) {
		return RunMetrics{}, fmt.Errorf("scenario %q: cell (%d,%d) outside the %dx%d grid",
			p.Spec.Name, c.Policy, c.Point, len(p.Spec.Policies), len(p.Spec.Points))
	}
	if hook := runCellHook; hook != nil {
		if rm, err, handled := hook(p, c); handled {
			return rm, err
		}
	}
	var cw *compiledWorkload
	if p.compiled != nil {
		cw = p.compiled[c.Point]
	}
	var rec *trace.Recorder
	if p.cellRecs != nil {
		rec = p.cellRecs[p.cellIndex(c)]
	}
	var probe *simrt.Probe
	if p.Spec.Probe && p.Spec.Workload.Kind != HeatDist {
		probe = st.probeFor()
	}
	rm, err := runCell(p.Spec, p.Spec.Policies[c.Policy], p.Spec.Points[c.Point], c.Seed, cw, st, rec, probe)
	if err != nil {
		return RunMetrics{}, err
	}
	rm.Seed = c.Seed
	return rm, nil
}

// cellIndex returns a cell's position in the plan's grid enumeration.
func (p *Plan) cellIndex(c CellJob) int {
	return (c.Policy*len(p.Spec.Points)+c.Point)*p.Spec.Reps + c.Rep
}

// RunCellTrace executes one cell with a private schedule recorder and
// introspection probe, regardless of the plan spec's Trace/Probe settings.
// Cells are pure functions of the plan and the cell coordinates, so the
// returned trace is exactly the schedule the cell's canonical result came
// from — whether that result was originally computed here, on a remote
// shard, or served from a cache. The recorder holds the task slices plus
// queue-depth, ready-task, PTT-error and per-core-utilization counter
// lanes; the returned metrics carry the Sched aggregate.
func (p *Plan) RunCellTrace(c CellJob) (RunMetrics, *trace.Recorder, error) {
	if p.Spec.Workload.Kind == HeatDist {
		return RunMetrics{}, nil, fmt.Errorf("scenario %q: sim tracing is not supported for distributed scenarios", p.Spec.Name)
	}
	if c.Policy < 0 || c.Policy >= len(p.Spec.Policies) || c.Point < 0 || c.Point >= len(p.Spec.Points) {
		return RunMetrics{}, nil, fmt.Errorf("scenario %q: cell (%d,%d) outside the %dx%d grid",
			p.Spec.Name, c.Policy, c.Point, len(p.Spec.Policies), len(p.Spec.Points))
	}
	var cw *compiledWorkload
	if p.compiled != nil {
		cw = p.compiled[c.Point]
	}
	rec := trace.New()
	rm, err := runCell(p.Spec, p.Spec.Policies[c.Policy], p.Spec.Points[c.Point], c.Seed, cw, nil, rec, simrt.NewProbe())
	if err != nil {
		return RunMetrics{}, nil, err
	}
	rm.Seed = c.Seed
	return rm, rec, nil
}

// mergeTraces folds the per-cell recorders into dst in cell-index order,
// each cell's lanes under its own process row named by the cell label. The
// fold is deterministic regardless of which workers ran which cells.
func (p *Plan) mergeTraces(dst *trace.Recorder) {
	for ci, rec := range p.cellRecs {
		if rec == nil {
			continue
		}
		dst.Group(ci, p.CellLabel(p.Cells[ci]))
		for _, ev := range rec.Events() {
			ev.Pid = ci
			dst.Add(ev)
		}
		for _, cp := range rec.Counters() {
			cp.Pid = ci
			dst.AddCounter(cp)
		}
	}
}

// Merge assembles cell results (keyed by cell hash) into the plan's
// Result. Every plan cell must be present; cells sharing a hash (identical
// parameters under different labels) fill from the one shared result. The
// output is bit-identical to a monolithic Run of the plan's spec.
func Merge(p *Plan, cells map[string]RunMetrics) (*Result, error) {
	topo, err := p.Spec.Platform.Build()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:     p.Spec.Name,
		Topo:     topo,
		Policies: make([]string, len(p.Spec.Policies)),
		Points:   append([]Point(nil), p.Spec.Points...),
		Cells:    make([][]Cell, len(p.Spec.Policies)),
	}
	for pi, pol := range p.Spec.Policies {
		res.Policies[pi] = pol.Name()
		res.Cells[pi] = make([]Cell, len(p.Spec.Points))
		for xi, pt := range p.Spec.Points {
			res.Cells[pi][xi] = Cell{Policy: pol.Name(), Point: pt, Runs: make([]RunMetrics, p.Spec.Reps)}
		}
	}
	for _, c := range p.Cells {
		rm, ok := cells[c.Hash]
		if !ok {
			return nil, fmt.Errorf("scenario %q: missing cell result for %s", p.Spec.Name, p.CellLabel(c))
		}
		res.Cells[c.Policy][c.Point].Runs[c.Rep] = rm
	}
	return res, nil
}
