// Package scenario turns declarative simulation specs into deterministic
// runs. A Spec names a platform, a workload, a set of time-varying
// disturbances (interference, DVFS, thermal throttling), a policy set and a
// sweep axis; Run validates it, executes every (policy × point × repetition)
// cell on a bounded worker pool, and returns the aggregated metrics.
//
// The experiment drivers in internal/experiments are thin spec tables over
// this engine: each paper figure is one Spec literal plus a renderer. New
// platform/interference/workload combinations cost a struct literal, not a
// new driver — see the registry in this package for families the paper
// never ran (bursty phase-shifted interference, thermal-throttle ramps,
// 16–64-core scale-out platforms).
//
// Determinism: a Spec plus its Seed fully determine every metric of every
// cell, bit for bit, regardless of the worker pool's interleaving. Each
// cell runs on a private simulated runtime seeded from (Seed, repetition);
// results are written into pre-indexed slots, never appended.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"dynasym/internal/core"
	"dynasym/internal/dagio"
	"dynasym/internal/interfere"
	"dynasym/internal/topology"
	"dynasym/internal/trace"
	"dynasym/internal/workloads"
)

// PlatformSpec selects the simulated machine: a named preset, optionally
// width-capped, or an explicit cluster list.
type PlatformSpec struct {
	// Preset names a built-in platform: "tx2", "haswell16", "haswell-node",
	// "sym<N>" (e.g. "sym8"), or "scaleout-<clusters>x<cores>"
	// (e.g. "scaleout-4x4" = 16 cores in 4 clusters). Ignored when Clusters
	// is set.
	Preset string
	// Clusters builds a custom platform (see topology.New for the rules).
	Clusters []topology.Cluster
	// WidthCap, when > 0, drops every width above it (1 disables
	// moldability entirely — the width ablation).
	WidthCap int
}

// Build constructs the platform.
func (p PlatformSpec) Build() (*topology.Platform, error) {
	var base *topology.Platform
	switch {
	case len(p.Clusters) > 0:
		var err error
		base, err = topology.New(p.Clusters)
		if err != nil {
			return nil, err
		}
	default:
		var err error
		base, err = presetPlatform(p.Preset)
		if err != nil {
			return nil, err
		}
	}
	if p.WidthCap < 0 {
		return nil, fmt.Errorf("scenario: negative width cap %d", p.WidthCap)
	}
	if p.WidthCap > 0 {
		cs := make([]topology.Cluster, base.NumClusters())
		for i := range cs {
			c := base.Cluster(i)
			var ws []int
			for _, w := range c.Widths {
				if w <= p.WidthCap {
					ws = append(ws, w)
				}
			}
			c.Widths = ws
			cs[i] = c
		}
		return topology.New(cs)
	}
	return base, nil
}

func presetPlatform(name string) (*topology.Platform, error) {
	switch name {
	case "tx2":
		return topology.TX2(), nil
	case "haswell16":
		return topology.Haswell16(), nil
	case "haswell-node":
		return topology.HaswellNode(0), nil
	}
	// Round-trip the parsed shape back into a name: Sscanf alone accepts
	// trailing garbage, which would silently map typos onto a different
	// platform than the user asked for.
	var n int
	if _, err := fmt.Sscanf(name, "sym%d", &n); err == nil && fmt.Sprintf("sym%d", n) == name {
		if n < 1 || n&(n-1) != 0 {
			return nil, fmt.Errorf("scenario: sym platform size %d is not a power of two", n)
		}
		return topology.Symmetric(n), nil
	}
	var nc, cp int
	if _, err := fmt.Sscanf(name, "scaleout-%dx%d", &nc, &cp); err == nil && fmt.Sprintf("scaleout-%dx%d", nc, cp) == name {
		if nc < 1 || cp < 1 {
			return nil, fmt.Errorf("scenario: bad scale-out shape %q", name)
		}
		return topology.ScaleOut(nc, cp), nil
	}
	return nil, fmt.Errorf("scenario: unknown platform preset %q (want tx2, haswell16, haswell-node, sym<N> or scaleout-<C>x<N>)", name)
}

// WorkloadKind selects the task-graph generator.
type WorkloadKind int

const (
	// Synthetic is the paper's layered DAG of one kernel class.
	Synthetic WorkloadKind = iota
	// KMeans is the iterative clustering DAG (Figure 9).
	KMeans
	// HeatDist is the distributed 2D Heat stencil (Figure 10): one runtime
	// per node on a shared virtual clock and a simulated interconnect.
	HeatDist
	// DAGFile executes an imported task graph (GraphViz DOT or the
	// dagio JSON schema). The spec carries the loaded graph, never the
	// source path: canonically it encodes — and hashes — as the
	// normalized graph content, so the same graph imported from any
	// file, in any declaration order, is one cached workload.
	DAGFile
	// DAGGen executes a deterministically generated classic task graph
	// (tiled Cholesky, tiled LU, fork-join chains, seeded random
	// layered DAGs); see dagio.GenConfig.
	DAGGen
)

// workloadKinds lists every valid kind once; validation and the
// canonical codec both range over it, so adding a kind cannot leave one
// of them behind.
var workloadKinds = []WorkloadKind{Synthetic, KMeans, HeatDist, DAGFile, DAGGen}

// String names the kind for reports and errors.
func (k WorkloadKind) String() string {
	switch k {
	case Synthetic:
		return "synthetic"
	case KMeans:
		return "kmeans"
	case HeatDist:
		return "heatdist"
	case DAGFile:
		return "dagfile"
	case DAGGen:
		return "daggen"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(k))
	}
}

// Criticality variants for the workload's priority annotations.
const (
	// CritUser keeps the generator's own high-priority marks (default).
	CritUser = ""
	// CritInferred replaces them with CATS-style path-slack inference.
	CritInferred = "inferred"
	// CritNone strips all priority annotations.
	CritNone = "none"
)

// WorkloadSpec describes the task graph each cell executes.
type WorkloadSpec struct {
	Kind      WorkloadKind
	Synthetic workloads.SyntheticConfig
	KMeans    workloads.KMeansConfig
	Heat      workloads.HeatDistConfig
	// DAG is the imported task graph executed when Kind is DAGFile
	// (load one with dagio.LoadFile or the parsers).
	DAG *dagio.GraphSpec
	// DAGGen parameterizes the generated graph when Kind is DAGGen.
	DAGGen dagio.GenConfig
	// Criticality selects the priority-annotation variant: CritUser,
	// CritInferred or CritNone. Synthetic, DAGFile and DAGGen graphs
	// only (the importers' own high marks are the "user" annotations).
	Criticality string
}

// Disturbance kinds.
type DisturbKind int

const (
	// CoRunCPU time-shares the victim cores with a compute-bound
	// co-runner, optionally only during [From, To).
	CoRunCPU DisturbKind = iota
	// CoRunMemory time-shares one victim core and takes memory bandwidth
	// from its whole cluster (whole-run only).
	CoRunMemory
	// DVFS installs a square-wave clock on a cluster.
	DVFS
	// Stall makes the cores contribute nothing during [From, To).
	Stall
	// Burst runs phase-shifted intermittent co-runners on the victim
	// cores: busy for BusyDur, idle for IdleDur, each successive core
	// shifted by PhaseStep seconds.
	Burst
	// Throttle ramps a cluster's clock down to Floor×base over [From, To)
	// in RampSteps plateaus and holds it there (thermal throttle).
	Throttle
)

// String names the kind for errors and reports.
func (k DisturbKind) String() string {
	switch k {
	case CoRunCPU:
		return "corun-cpu"
	case CoRunMemory:
		return "corun-mem"
	case DVFS:
		return "dvfs"
	case Stall:
		return "stall"
	case Burst:
		return "burst"
	case Throttle:
		return "throttle"
	default:
		return fmt.Sprintf("DisturbKind(%d)", int(k))
	}
}

// Disturbance is one time-varying degradation of the platform. The zero
// window (From == To == 0) means the whole run for the co-runner kinds;
// Stall and Throttle require an explicit window.
type Disturbance struct {
	Kind DisturbKind
	// Node selects the machine model in distributed (HeatDist) scenarios;
	// single-runtime scenarios use node 0.
	Node int
	// Cores are the victim cores (CoRunCPU, Stall, Burst; first entry is
	// the victim for CoRunMemory). Empty means every core of Cluster.
	Cores []int
	// Cluster is the victim cluster for DVFS and Throttle, and the core
	// source when Cores is empty.
	Cluster int
	// Share is the core availability left to the runtime while the
	// co-runner is active (CoRunCPU, CoRunMemory, Burst).
	Share float64
	// BWFactor is the remaining fraction of cluster memory bandwidth
	// under CoRunMemory.
	BWFactor float64
	// From, To bound the episode in seconds of virtual time.
	From, To float64
	// HiHz, LoHz, HiDur, LoDur shape the DVFS square wave.
	HiHz, LoHz, HiDur, LoDur float64
	// BusyDur, IdleDur, Phase0, PhaseStep shape the Burst waves.
	BusyDur, IdleDur, Phase0, PhaseStep float64
	// Floor and RampSteps shape the Throttle ramp.
	Floor     float64
	RampSteps int
}

// PaperDVFS returns the paper's Section 5.2 DVFS square wave on a cluster
// (2035 MHz for 5 s, 345 MHz for 5 s, forever).
func PaperDVFS(cluster int) Disturbance {
	return Disturbance{
		Kind:    DVFS,
		Cluster: cluster,
		HiHz:    interfere.PaperHiHz, LoHz: interfere.PaperLoHz,
		HiDur: interfere.PaperHiDur, LoDur: interfere.PaperLoDur,
	}
}

// Point is one position on the sweep axis. Zero-valued fields keep the
// spec's base configuration, so a sweep over parallelism is just
// []Point{{Label: "2", Parallelism: 2}, ...}.
type Point struct {
	// Label names the point in results; must be unique within a spec.
	Label string
	// Parallelism overrides the synthetic DAG's tasks per layer, or a
	// daggen workload's layer/fork width.
	Parallelism int
	// Tile overrides the synthetic kernel tile size, or a daggen
	// workload's tile-grid edge (the factorization problem size).
	Tile int
	// Alpha overrides the PTT new-sample weight for this point.
	Alpha float64
}

// Spec is one declarative scenario: everything a run depends on, and
// nothing else.
type Spec struct {
	// Name labels the scenario in reports.
	Name string
	// Platform selects the machine (default: preset "tx2").
	Platform PlatformSpec
	// Workload selects the task graph.
	Workload WorkloadSpec
	// Disturb lists the platform degradations, applied before the run.
	Disturb []Disturbance
	// Policies is the scheduler set; names must be unique.
	Policies []core.Policy
	// Points is the sweep axis; empty means one default point.
	Points []Point
	// Seed drives all randomness. Repetition r of every cell uses
	// Seed + r*1000003, so rep 0 reproduces a plain single run.
	Seed uint64
	// Reps is the number of repetitions per cell (default 1).
	Reps int
	// Alpha is the base PTT new-sample weight (0 = the paper's 1/5).
	Alpha float64
	// Workers bounds the worker pool (default: GOMAXPROCS, capped by the
	// number of cells).
	Workers int
	// Latency and Bandwidth describe the interconnect for HeatDist
	// scenarios (defaults: 2 µs, 5 GB/s).
	Latency, Bandwidth float64
	// Trace, when non-nil, records the schedule of the run. Multi-cell
	// specs record each cell into a private per-cell recorder and merge
	// them here in cell-index order after the grid drains, each cell under
	// its own trace process row (not supported for HeatDist).
	Trace *trace.Recorder
	// Probe, when true, attaches a scheduler-introspection probe to every
	// cell run and fills RunMetrics.Sched with the per-core time
	// breakdown, steal matrix, queue-depth and PTT-error telemetry.
	// Telemetry is pure observation — fingerprints are byte-identical
	// with Probe on or off. Execution-only like Workers and Trace
	// (CanonicalJSON and Hash ignore it); ignored for HeatDist cells.
	Probe bool
	// Progress, when non-nil, receives cell-completion updates from Run:
	// once with (0, total) before execution starts, then once after every
	// finished (policy × point × repetition) cell. Calls come from
	// concurrent worker goroutines; the hook must be safe for concurrent
	// use. Like Workers and Trace, Progress is execution plumbing, not
	// part of the scenario's identity — CanonicalJSON and Hash ignore it.
	Progress func(done, total int)
}

// withDefaults fills unset fields.
func (s Spec) withDefaults() Spec {
	if s.Platform.Preset == "" && len(s.Platform.Clusters) == 0 {
		s.Platform.Preset = "tx2"
	}
	if len(s.Points) == 0 {
		s.Points = []Point{{Label: "default"}}
	}
	if s.Reps == 0 {
		s.Reps = 1
	}
	if s.Latency == 0 {
		s.Latency = 2e-6
	}
	if s.Bandwidth == 0 {
		s.Bandwidth = 5e9
	}
	return s
}

// Validate checks the spec without running it. It is called by Run; call it
// directly to fail fast when assembling spec tables.
func (s Spec) Validate() error {
	s = s.withDefaults()
	topo, err := s.Platform.Build()
	if err != nil {
		return err
	}
	if len(s.Policies) == 0 {
		return fmt.Errorf("scenario %q: empty policy set", s.Name)
	}
	seenPol := map[string]bool{}
	for _, p := range s.Policies {
		if p == nil {
			return fmt.Errorf("scenario %q: nil policy", s.Name)
		}
		if seenPol[p.Name()] {
			return fmt.Errorf("scenario %q: duplicate policy %q", s.Name, p.Name())
		}
		seenPol[p.Name()] = true
	}
	if s.Reps < 0 {
		return fmt.Errorf("scenario %q: negative repetitions %d", s.Name, s.Reps)
	}
	if s.Alpha < 0 || s.Alpha > 1 {
		return fmt.Errorf("scenario %q: PTT alpha %v outside [0, 1]", s.Name, s.Alpha)
	}
	seenPt := map[string]bool{}
	for _, pt := range s.Points {
		if pt.Label == "" {
			return fmt.Errorf("scenario %q: point with empty label", s.Name)
		}
		if seenPt[pt.Label] {
			return fmt.Errorf("scenario %q: duplicate point label %q", s.Name, pt.Label)
		}
		seenPt[pt.Label] = true
		if pt.Parallelism < 0 {
			return fmt.Errorf("scenario %q: point %q has negative parallelism", s.Name, pt.Label)
		}
		if pt.Tile < 0 {
			return fmt.Errorf("scenario %q: point %q has negative tile", s.Name, pt.Label)
		}
		if pt.Alpha < 0 || pt.Alpha > 1 {
			return fmt.Errorf("scenario %q: point %q alpha %v outside [0, 1]", s.Name, pt.Label, pt.Alpha)
		}
	}
	known := false
	for _, k := range workloadKinds {
		if s.Workload.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("scenario %q: unknown workload kind %v (known kinds: %s)", s.Name, s.Workload.Kind, workloadKindList())
	}
	switch s.Workload.Criticality {
	case CritUser, CritInferred, CritNone:
	default:
		return fmt.Errorf("scenario %q: unknown criticality variant %q", s.Name, s.Workload.Criticality)
	}
	switch s.Workload.Kind {
	case DAGFile:
		if s.Workload.DAG == nil {
			return fmt.Errorf("scenario %q: dagfile workload has no graph (load one with dagio.LoadFile)", s.Name)
		}
		if err := s.Workload.DAG.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	case DAGGen:
		if err := s.Workload.DAGGen.Defaults().Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	// Point.Parallelism and Point.Tile parameterize the graph builder:
	// synthetic layer width/tile edge, or DAGGen width/tile-grid edge.
	// Fixed graphs (imported files, kmeans, heat) have no such axis.
	if s.Workload.Kind != Synthetic && s.Workload.Kind != DAGGen {
		for _, pt := range s.Points {
			if pt.Parallelism != 0 || pt.Tile != 0 {
				return fmt.Errorf("scenario %q: point %q sets graph-shape fields on a %v workload", s.Name, pt.Label, s.Workload.Kind)
			}
		}
	}
	switch s.Workload.Kind {
	case Synthetic, DAGFile, DAGGen:
	default:
		if s.Workload.Criticality != CritUser {
			return fmt.Errorf("scenario %q: criticality variants apply to synthetic, dagfile and daggen workloads only", s.Name)
		}
	}
	nodes := 1
	if s.Workload.Kind == HeatDist {
		nodes = s.Workload.Heat.Defaults().Nodes
	}
	if err := validateDisturbances(s.Name, topo, s.Disturb, nodes); err != nil {
		return err
	}
	if s.Trace != nil && s.Workload.Kind == HeatDist {
		return fmt.Errorf("scenario %q: tracing is not supported for distributed scenarios", s.Name)
	}
	return nil
}

// window is a disturbance's active interval on one resource.
type window struct {
	kind     DisturbKind
	from, to float64
}

// validateDisturbances checks every disturbance individually, then checks
// that no two disturbances claim the same resource (a core's availability,
// a cluster's clock, a cluster's memory bandwidth) over overlapping
// windows — later profiles would silently replace earlier ones.
func validateDisturbances(name string, topo *topology.Platform, ds []Disturbance, nodes int) error {
	coreWins := map[[2]int][]window{} // (node, core) → windows
	freqWins := map[[2]int][]window{} // (node, cluster) → windows
	bwWins := map[[2]int][]window{}   // (node, cluster) → windows
	for i, d := range ds {
		where := fmt.Sprintf("scenario %q: disturbance %d (%v)", name, i, d.Kind)
		if d.Node < 0 || d.Node >= nodes {
			return fmt.Errorf("%s: node %d outside [0, %d)", where, d.Node, nodes)
		}
		if d.Cluster < 0 || d.Cluster >= topo.NumClusters() {
			return fmt.Errorf("%s: cluster %d outside [0, %d)", where, d.Cluster, topo.NumClusters())
		}
		for _, c := range d.Cores {
			if c < 0 || c >= topo.NumCores() {
				return fmt.Errorf("%s: core %d outside [0, %d)", where, c, topo.NumCores())
			}
		}
		if d.From < 0 || d.To < 0 || (d.From != 0 || d.To != 0) && d.To <= d.From {
			return fmt.Errorf("%s: bad window [%g, %g)", where, d.From, d.To)
		}
		win := window{kind: d.Kind, from: d.From, to: d.To}
		if d.From == 0 && d.To == 0 {
			win.to = math.Inf(1)
		}
		cores := d.Cores
		if len(cores) == 0 {
			cores = topo.CoresOf(d.Cluster)
		}
		switch d.Kind {
		case CoRunCPU:
			if d.Share <= 0 || d.Share > 1 {
				return fmt.Errorf("%s: share %v outside (0, 1]", where, d.Share)
			}
			for _, c := range cores {
				coreWins[[2]int{d.Node, c}] = append(coreWins[[2]int{d.Node, c}], win)
			}
		case CoRunMemory:
			if d.Share <= 0 || d.Share > 1 {
				return fmt.Errorf("%s: share %v outside (0, 1]", where, d.Share)
			}
			if d.BWFactor <= 0 || d.BWFactor > 1 {
				return fmt.Errorf("%s: bandwidth factor %v outside (0, 1]", where, d.BWFactor)
			}
			if d.From != 0 || d.To != 0 {
				return fmt.Errorf("%s: episode windows are not supported for memory co-runners", where)
			}
			victim := cores[0]
			coreWins[[2]int{d.Node, victim}] = append(coreWins[[2]int{d.Node, victim}], win)
			ci := topo.ClusterOf(victim)
			bwWins[[2]int{d.Node, ci}] = append(bwWins[[2]int{d.Node, ci}], win)
		case DVFS:
			if d.HiHz <= 0 || d.LoHz <= 0 || d.HiDur <= 0 || d.LoDur <= 0 {
				return fmt.Errorf("%s: wave needs positive HiHz, LoHz, HiDur, LoDur", where)
			}
			if d.From != 0 || d.To != 0 {
				return fmt.Errorf("%s: windows are not supported for periodic waves (the wave runs forever)", where)
			}
			freqWins[[2]int{d.Node, d.Cluster}] = append(freqWins[[2]int{d.Node, d.Cluster}], win)
		case Stall:
			if d.From == 0 && d.To == 0 {
				return fmt.Errorf("%s: needs an explicit window", where)
			}
			for _, c := range cores {
				coreWins[[2]int{d.Node, c}] = append(coreWins[[2]int{d.Node, c}], win)
			}
		case Burst:
			if d.Share <= 0 || d.Share > 1 {
				return fmt.Errorf("%s: share %v outside (0, 1]", where, d.Share)
			}
			if d.BusyDur <= 0 || d.IdleDur <= 0 {
				return fmt.Errorf("%s: needs positive BusyDur and IdleDur", where)
			}
			if d.From != 0 || d.To != 0 {
				return fmt.Errorf("%s: windows are not supported for periodic waves (the wave runs forever)", where)
			}
			for _, c := range cores {
				coreWins[[2]int{d.Node, c}] = append(coreWins[[2]int{d.Node, c}], win)
			}
		case Throttle:
			if d.From == 0 && d.To == 0 {
				return fmt.Errorf("%s: needs an explicit window", where)
			}
			if d.Floor <= 0 || d.Floor >= 1 {
				return fmt.Errorf("%s: floor %v outside (0, 1)", where, d.Floor)
			}
			if d.RampSteps < 0 {
				return fmt.Errorf("%s: negative ramp steps", where)
			}
			// The floor persists beyond To: the clock never recovers.
			win.to = math.Inf(1)
			freqWins[[2]int{d.Node, d.Cluster}] = append(freqWins[[2]int{d.Node, d.Cluster}], win)
		default:
			return fmt.Errorf("%s: unknown disturbance kind", where)
		}
	}
	for what, wins := range map[string]map[[2]int][]window{
		"core availability": coreWins,
		"cluster clock":     freqWins,
		"memory bandwidth":  bwWins,
	} {
		for key, ws := range wins {
			if a, b, clash := overlapping(ws); clash {
				return fmt.Errorf("scenario %q: overlapping %s disturbances on node %d resource %d (%v [%g, %g) and %v [%g, %g))",
					name, what, key[0], key[1], a.kind, a.from, a.to, b.kind, b.from, b.to)
			}
		}
	}
	return nil
}

// overlapping reports whether any two windows intersect.
func overlapping(ws []window) (a, b window, clash bool) {
	sorted := append([]window(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].from < sorted[j].from })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].from < sorted[i-1].to {
			return sorted[i-1], sorted[i], true
		}
	}
	return window{}, window{}, false
}
