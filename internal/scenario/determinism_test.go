package scenario

import (
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/workloads"
)

// Same scenario + same seed must produce byte-identical aggregated metrics
// across two independent runs, for every policy of Table 1, with the worker
// pool fully engaged and a time-varying disturbance active. This is the
// regression gate for the engine's determinism contract.
func TestDeterminismAllTable1Policies(t *testing.T) {
	for _, pol := range core.All() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			t.Parallel()
			s := Spec{
				Name:     "determinism-" + pol.Name(),
				Platform: PlatformSpec{Preset: "tx2"},
				Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
					Kernel: workloads.MatMul,
					Tasks:  600,
				}},
				Disturb: []Disturbance{
					{Kind: Burst, Cluster: 1, Share: 0.4, BusyDur: 0.1, IdleDur: 0.2, PhaseStep: 0.05},
				},
				Policies: []core.Policy{pol},
				Points:   ParallelismPoints(2, 4),
				Reps:     2,
				Seed:     42,
			}
			a, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			fa, fb := a.Fingerprint(), b.Fingerprint()
			if fa != fb {
				t.Fatalf("two runs of the same spec diverged:\n--- first\n%s\n--- second\n%s", fa, fb)
			}
			if len(fa) == 0 {
				t.Fatalf("empty fingerprint")
			}
		})
	}
}

// Different seeds must actually change the outcome (otherwise the
// determinism test above could pass vacuously on constant output).
func TestSeedChangesOutcome(t *testing.T) {
	mk := func(seed uint64) string {
		s := Spec{
			Name:     "seed-check",
			Platform: PlatformSpec{Preset: "tx2"},
			Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
				Kernel: workloads.MatMul,
				Tasks:  600,
			}},
			Policies: []core.Policy{core.RWS()},
			Points:   ParallelismPoints(4),
			Seed:     seed,
		}
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	if mk(1) == mk(2) {
		t.Fatalf("seeds 1 and 2 produced identical fingerprints")
	}
}

// The distributed heat scenario must be deterministic too: it exercises
// the shared-engine, multi-runtime path.
func TestDeterminismDistributed(t *testing.T) {
	s := Spec{
		Name:     "determinism-heat",
		Platform: PlatformSpec{Preset: "haswell-node"},
		Workload: WorkloadSpec{Kind: HeatDist, Heat: workloads.HeatDistConfig{Nodes: 2, Iters: 6, BlocksPerNode: 20}},
		Disturb:  []Disturbance{{Kind: CoRunCPU, Cores: []int{0, 1, 2}, Share: 0.4}},
		Policies: []core.Policy{core.DAMP()},
		Seed:     7,
	}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("distributed runs diverged")
	}
}
