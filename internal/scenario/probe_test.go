package scenario

import (
	"strings"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dagio"
	"dynasym/internal/trace"
	"dynasym/internal/workloads"
)

// probeWorkloads enumerates one workload spec per probed kind (HeatDist is
// excluded: probes are ignored for distributed cells).
func probeWorkloads() map[string]WorkloadSpec {
	return map[string]WorkloadSpec{
		"synthetic": {Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel: workloads.MatMul, Tasks: 300,
		}},
		"kmeans": {Kind: KMeans, KMeans: workloads.KMeansConfig{
			N: 400, K: 3, Grains: 8, MaxIters: 3,
		}},
		"daggen": {Kind: DAGGen, DAGGen: dagio.GenConfig{
			Model: dagio.ModelCholesky, Tiles: 5,
		}},
		"dagfile": {Kind: DAGFile, DAG: dagio.Demo()},
	}
}

// The probe must be invisible in the results: a probed run's fingerprint
// must be byte-identical to the unprobed run's, for every Table-1 policy
// and every probed workload kind. This is the tentpole's acceptance gate —
// telemetry describes the schedule, it must never change it.
func TestProbeFingerprintNeutral(t *testing.T) {
	for wname, w := range probeWorkloads() {
		w := w
		t.Run(wname, func(t *testing.T) {
			t.Parallel()
			s := Spec{
				Name:     "probe-neutral-" + wname,
				Platform: PlatformSpec{Preset: "tx2"},
				Workload: w,
				Disturb: []Disturbance{
					{Kind: Burst, Cluster: 1, Share: 0.4, BusyDur: 0.1, IdleDur: 0.2, PhaseStep: 0.05},
				},
				Policies: core.All(),
				Reps:     2,
				Seed:     42,
			}
			off, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			s.Probe = true
			on, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if fo, fn := off.Fingerprint(), on.Fingerprint(); fo != fn {
				t.Fatalf("probe changed the schedule:\n--- probe off\n%s\n--- probe on\n%s", fo, fn)
			}
			// The probed run must actually carry telemetry for every cell.
			for pi := range on.Cells {
				for xi := range on.Cells[pi] {
					for rep, run := range on.Cells[pi][xi].Runs {
						if run.Sched == nil {
							t.Fatalf("probed run %s/%s rep %d has no Sched telemetry",
								on.Policies[pi], on.Points[xi].Label, rep)
						}
					}
					if off.Cells[pi][xi].Runs[0].Sched != nil {
						t.Fatal("unprobed run carries Sched telemetry")
					}
				}
			}
		})
	}
}

// probeSpec is a small multi-cell grid used by the trace-merge tests.
func probeSpec(rec *trace.Recorder) Spec {
	return Spec{
		Name:     "probe-trace",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel: workloads.MatMul, Tasks: 200,
		}},
		Policies: []core.Policy{core.DAMC(), core.RWS()},
		Points:   ParallelismPoints(2, 4),
		Reps:     2,
		Seed:     7,
		Trace:    rec,
		Probe:    true,
	}
}

// Multi-cell tracing (the lifted single-cell restriction): every cell of a
// 2-policy × 2-point × 2-rep grid records into the shared recorder, each
// cell on its own process row, and the merged event stream is identical
// across runs regardless of worker scheduling.
func TestMultiCellTraceMergeDeterministic(t *testing.T) {
	render := func() (string, int) {
		rec := trace.New()
		if _, err := Run(probeSpec(rec)); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := rec.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
		return b.String(), rec.Len()
	}
	first, n1 := render()
	second, n2 := render()
	if n1 == 0 {
		t.Fatal("multi-cell trace recorded no events")
	}
	if n1 != n2 || first != second {
		t.Fatalf("merged trace is not deterministic (%d vs %d events)", n1, n2)
	}
	// Eight cells → eight process rows, each with its own name row and
	// counter lanes from the probe.
	for _, want := range []string{
		`"ph":"M"`, `"ph":"X"`, `"ph":"C"`,
		"DAM-C at P2 (rep 0)", "RWS at P4 (rep 1)",
		"queue depth", "ready tasks", "core util",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("merged trace is missing %q", want)
		}
	}
}

// RunCellTrace reproduces any cell's schedule on demand — including cells
// whose canonical result came from elsewhere — and its metrics must match
// the cell's canonical metrics bit for bit.
func TestRunCellTraceMatchesCanonicalRun(t *testing.T) {
	spec := probeSpec(nil)
	spec.Trace = nil
	spec.Probe = false
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []CellJob{plan.Cells[0], plan.Cells[len(plan.Cells)-1]} {
		canonical, err := plan.RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		rm, rec, err := plan.RunCellTrace(c)
		if err != nil {
			t.Fatal(err)
		}
		if rm.Makespan != canonical.Makespan || rm.TasksDone != canonical.TasksDone ||
			rm.Steals != canonical.Steals || rm.Dispatches != canonical.Dispatches {
			t.Fatalf("traced cell diverged from canonical run: traced=%+v canonical=%+v", rm, canonical)
		}
		if rm.Sched == nil {
			t.Fatal("traced cell carries no Sched telemetry")
		}
		if rec.Len() == 0 || len(rec.Counters()) == 0 {
			t.Fatalf("traced cell recorded %d events, %d counter points", rec.Len(), len(rec.Counters()))
		}
	}
}
