package scenario

import (
	"os"
	"testing"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"burst-sweep", "scaleout-16", "scaleout-32", "scaleout-64", "throttle-ramp"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("family %q not registered (have %v)", w, names)
		}
	}
	if _, ok := Lookup("burst-sweep"); !ok {
		t.Errorf("Lookup(burst-sweep) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Errorf("Lookup(nope) succeeded")
	}
}

// Every registered family must validate at full and at test scale.
func TestFamiliesValidate(t *testing.T) {
	for _, name := range Names() {
		f, _ := Lookup(name)
		for _, scale := range []float64{1.0, 0.05} {
			if err := f.Spec(scale).Validate(); err != nil {
				t.Errorf("family %s at scale %v: %v", name, scale, err)
			}
		}
	}
}

// The bursty phase-shifted interference must actually hurt: throughput
// under bursts stays below the undisturbed run, and the dynamic
// asymmetry-aware scheduler keeps more of it than random stealing.
func TestBurstFamilyShape(t *testing.T) {
	f, _ := Lookup("burst-sweep")
	s := f.Spec(0.05)
	s.Points = ParallelismPoints(2)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		res.WriteTable(os.Stdout)
	}
	clean := s
	clean.Name = "burst-sweep/clean"
	clean.Disturb = nil
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"RWS", "DAM-C"} {
		with := res.Cell(pol, "P2").Run().Throughput
		without := cleanRes.Cell(pol, "P2").Run().Throughput
		if with >= without {
			t.Errorf("%s: bursts did not hurt (%.0f with vs %.0f without)", pol, with, without)
		}
	}
	rws := res.Cell("RWS", "P2").Run().Throughput
	damc := res.Cell("DAM-C", "P2").Run().Throughput
	if damc <= rws {
		t.Errorf("DAM-C (%.0f) should beat RWS (%.0f) under bursty interference", damc, rws)
	}
}

// The thermal throttle must flip the platform's asymmetry mid-run: the run
// slows down versus an unthrottled one, and the dynamic scheduler still
// beats the fixed-asymmetry one, which keeps trusting the pre-throttle
// fast cluster.
func TestThrottleFamilyShape(t *testing.T) {
	f, _ := Lookup("throttle-ramp")
	s := f.Spec(0.05)
	s.Points = ParallelismPoints(4)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		res.WriteTable(os.Stdout)
	}
	clean := s
	clean.Name = "throttle-ramp/clean"
	clean.Disturb = nil
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	with := res.Cell("DAM-C", "P4").Run().Throughput
	without := cleanRes.Cell("DAM-C", "P4").Run().Throughput
	if with >= without {
		t.Errorf("throttle did not hurt DAM-C (%.0f with vs %.0f without)", with, without)
	}
	fa := res.Cell("FA", "P4").Run().Throughput
	damc := res.Cell("DAM-C", "P4").Run().Throughput
	if damc <= fa {
		t.Errorf("DAM-C (%.0f) should beat fixed-asymmetry FA (%.0f) once the fast cluster throttles", damc, fa)
	}
}

// The scale-out family runs 16–64-core platforms; smoke the largest at
// tiny scale and check the sampled search keeps up with the full search.
func TestScaleOutFamilyRuns(t *testing.T) {
	f, _ := Lookup("scaleout-64")
	s := f.Spec(0.04)
	s.Points = ParallelismPoints(16)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Topo.NumCores() != 64 || res.Topo.NumClusters() != 8 {
		t.Fatalf("platform is %s, want 64 cores in 8 clusters", res.Topo)
	}
	if testing.Verbose() {
		res.WriteTable(os.Stdout)
	}
	full := res.Cell("DAM-C", "P16").Run().Throughput
	sampled := res.Cell("DAM-C~32", "P16").Run().Throughput
	if full <= 0 || sampled <= 0 {
		t.Fatalf("zero throughput: full=%v sampled=%v", full, sampled)
	}
	if sampled < 0.5*full {
		t.Errorf("sampled search lost too much: %.0f vs full %.0f", sampled, full)
	}
}
