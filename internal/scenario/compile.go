package scenario

// Compiled workloads: a plan compiles each distinct workload variant of its
// spec once — the frozen task graph for static kinds, the generated data
// blob for K-means — and every cell of the grid stamps out (or recycles) a
// cheap per-cell instance instead of re-running the builder. Variants are
// keyed by the workload's content (config after point overrides and
// defaults, or the dagio content digest) plus the criticality variant,
// because applyCriticality rewrites graph priorities; two points that
// resolve to the same key share one compiled workload, and a small
// process-wide cache shares compiled workloads across plans (the service
// re-plans overlapping specs constantly).
//
// Compilation is lazy — NewPlan only records the keys; the first RunCell of
// a variant compiles it. A plan that is only ever merged from cached cell
// results (the service's warm path) therefore never builds a graph at all.

import (
	"fmt"
	"math"
	"sync"

	"dynasym/internal/dag"
	"dynasym/internal/sim"
	"dynasym/internal/simrt"
	"dynasym/internal/workloads"
)

// CellState is reusable per-worker scratch for RunCellState: the simulation
// engine, whose event tiers keep their capacity across cells, and the
// simulated runtime, whose queues, pools, and per-core state are recycled
// via Runtime.Reset. A CellState must not be used by two cells
// concurrently; a nil *CellState is valid and makes RunCellState allocate
// fresh state (RunCell's path).
type CellState struct {
	engine *sim.Engine
	// rt is lazily captured by the first cell the state runs and reset for
	// every cell after it. Reuse is pure mechanism: a reset runtime is
	// bit-identical to a fresh one.
	rt *simrt.Runtime
	// probe is the worker's reusable introspection probe for probed specs;
	// the runtime re-zeros it per cell, and flushed aggregates are deep
	// copies, so reuse never leaks telemetry across cells.
	probe *simrt.Probe
}

// NewCellState returns scratch state for one sweep worker.
func NewCellState() *CellState { return &CellState{engine: sim.New()} }

// probeFor returns the worker's reusable probe, or a fresh one when the
// caller keeps no state.
func (st *CellState) probeFor() *simrt.Probe {
	if st == nil {
		return simrt.NewProbe()
	}
	if st.probe == nil {
		st.probe = simrt.NewProbe()
	}
	return st.probe
}

// engineFor returns the engine a cell should run on: the reset per-worker
// engine, or a fresh one when the caller keeps no state.
func (st *CellState) engineFor() *sim.Engine {
	if st == nil {
		return sim.New()
	}
	st.engine.Reset()
	return st.engine
}

// compiledWorkload is one workload variant, compiled at most once. For
// static kinds (Synthetic, DAGFile, DAGGen) the compiled form is a frozen
// graph plus a pool of reusable instances; for KMeans it is the generated
// application object, shared read-only by all simulated cells (bodies never
// run in simulation, so nothing mutates it); HeatDist has no compiled form.
// A build that produces an unfreezable graph (real bodies, hooks) is not an
// error — the variant just keeps building per cell.
type compiledWorkload struct {
	key   string
	kind  WorkloadKind
	kmCfg workloads.KMeansConfig
	build func() (*dag.Graph, error)

	once   sync.Once
	err    error
	frozen *dag.Frozen
	km     *workloads.KMeans
	pool   sync.Pool // *dag.Graph instances, reset and ready to Start
}

// compile runs once, on the first cell of the variant.
func (cw *compiledWorkload) compile() {
	if cw.kind == KMeans {
		cw.km = workloads.NewKMeans(cw.kmCfg)
		return
	}
	g, err := cw.build()
	if err != nil {
		cw.err = err
		return
	}
	fz, err := g.Freeze()
	if err != nil {
		return // unfreezable: fall back to per-cell builds
	}
	cw.frozen = fz
	cw.pool.Put(g) // the compile build is itself a valid first instance
}

// acquire returns a graph instance ready to Start. Instances from a frozen
// variant must be returned with release after the run.
func (cw *compiledWorkload) acquire() (*dag.Graph, error) {
	cw.once.Do(cw.compile)
	if cw.err != nil {
		return nil, cw.err
	}
	if cw.km != nil {
		return cw.km.Build(), nil
	}
	if cw.frozen == nil {
		return cw.build()
	}
	if v := cw.pool.Get(); v != nil {
		return v.(*dag.Graph), nil
	}
	return cw.frozen.NewGraph(), nil
}

// release resets a drained instance and returns it to the pool. Instances
// that fail to reset (or variants with no frozen form) are simply dropped.
func (cw *compiledWorkload) release(g *dag.Graph) {
	if cw == nil || cw.frozen == nil || g == nil {
		return
	}
	if err := cw.frozen.Reset(g); err != nil {
		return
	}
	cw.pool.Put(g)
}

// workloadKey renders the content key of the workload variant a point runs:
// every field that changes the built graph (config after the point's
// overrides and defaults, the criticality variant, the dagio digest) and
// nothing else. Points with equal keys share one compiled workload.
func workloadKey(w WorkloadSpec, pt Point) (string, error) {
	switch w.Kind {
	case Synthetic:
		cfg := w.Synthetic
		if pt.Parallelism > 0 {
			cfg.Parallelism = pt.Parallelism
		}
		if pt.Tile > 0 {
			cfg.Tile = pt.Tile
		}
		cfg = cfg.Defaults()
		return fmt.Sprintf("synthetic|kernel=%d|tile=%d|sweeps=%d|tasks=%d|par=%d|bodies=%t|seed=%d|crit=%s",
			cfg.Kernel, cfg.Tile, cfg.Sweeps, cfg.Tasks, cfg.Parallelism, cfg.MakeBodies, cfg.Seed, w.Criticality), nil
	case KMeans:
		cfg := w.KMeans.Defaults()
		return fmt.Sprintf("kmeans|n=%d|d=%d|k=%d|grains=%d|jumbo=%x|scale=%x|iters=%d|eps=%x|seed=%d|blob=%x",
			cfg.N, cfg.D, cfg.K, cfg.Grains,
			math.Float64bits(cfg.JumboFrac), math.Float64bits(cfg.CostScale),
			cfg.MaxIters, math.Float64bits(cfg.Epsilon), cfg.Seed,
			math.Float64bits(cfg.BlobStd)), nil
	case DAGFile:
		digest, err := w.DAG.Digest()
		if err != nil {
			return "", err
		}
		return "dagfile|" + digest + "|crit=" + w.Criticality, nil
	case DAGGen:
		cfg := w.DAGGen
		if pt.Parallelism > 0 {
			cfg.Width = pt.Parallelism
		}
		if pt.Tile > 0 {
			cfg.Tiles = pt.Tile
		}
		cfg = cfg.Defaults()
		return fmt.Sprintf("daggen|model=%s|tiles=%d|tile=%d|layers=%d|width=%d|degree=%d|seed=%d|crit=%s",
			cfg.Model, cfg.Tiles, cfg.Tile, cfg.Layers, cfg.Width, cfg.Degree, cfg.Seed, w.Criticality), nil
	default:
		return "", fmt.Errorf("workload kind %v has no compiled form", w.Kind)
	}
}

// compiledCacheCap bounds the process-wide compiled-workload cache. Entries
// are a frozen graph (tens of KB for typical sweeps) or a K-means blob
// (MBs), so the cache is deliberately small; sweeps only need their own
// handful of variants and eviction merely costs a rebuild.
const compiledCacheCap = 32

var (
	compiledMu      sync.Mutex
	compiledEntries = map[string]*compiledWorkload{}
	compiledOrder   []string // LRU, most recent last
)

// compiledFor returns the process-wide compiled workload for the key,
// creating it (uncompiled) on first sight. The build closure and configs
// are only captured for a new entry; for an existing key they are
// equivalent by construction of the key.
func compiledFor(key string, kind WorkloadKind, kmCfg workloads.KMeansConfig, build func() (*dag.Graph, error)) *compiledWorkload {
	compiledMu.Lock()
	defer compiledMu.Unlock()
	if cw, ok := compiledEntries[key]; ok {
		for i, k := range compiledOrder {
			if k == key {
				compiledOrder = append(compiledOrder[:i], compiledOrder[i+1:]...)
				break
			}
		}
		compiledOrder = append(compiledOrder, key)
		return cw
	}
	cw := &compiledWorkload{key: key, kind: kind, kmCfg: kmCfg, build: build}
	compiledEntries[key] = cw
	compiledOrder = append(compiledOrder, key)
	for len(compiledOrder) > compiledCacheCap {
		delete(compiledEntries, compiledOrder[0])
		compiledOrder = compiledOrder[1:]
	}
	return cw
}

// compileWorkloads resolves each point of the (validated, defaults-filled)
// spec to its compiled workload and a dense per-plan variant id. HeatDist
// has no compiled form: byPoint is nil and all variants are 0.
func compileWorkloads(s Spec) (byPoint []*compiledWorkload, variant []int, err error) {
	variant = make([]int, len(s.Points))
	if s.Workload.Kind == HeatDist {
		return nil, variant, nil
	}
	byPoint = make([]*compiledWorkload, len(s.Points))
	ids := make(map[string]int, 1)
	for xi := range s.Points {
		pt := s.Points[xi]
		key, err := workloadKey(s.Workload, pt)
		if err != nil {
			return nil, nil, err
		}
		id, ok := ids[key]
		if !ok {
			id = len(ids)
			ids[key] = id
		}
		variant[xi] = id
		w := s.Workload
		byPoint[xi] = compiledFor(key, w.Kind, w.KMeans, func() (*dag.Graph, error) {
			return buildGraph(w, pt)
		})
	}
	return byPoint, variant, nil
}
