package scenario

// Canonical spec serialization: a stable JSON encoding of Spec that maps
// every result-identical spec to the same byte sequence, and therefore to
// the same Hash. This is the cache key of the scenario service
// (internal/service): any client-submitted spec, and any registered
// family+scale, hashes to the key its results are memoized under.
//
// Canonicalization normalizes before encoding:
//
//   - withDefaults fills unset engine fields (platform preset, points,
//     reps, interconnect), and the workload config's own Defaults() fills
//     its unset fields, so a spec written tersely and its fully spelled-out
//     twin encode identically;
//   - policies encode as their names (core.ByName reconstructs them,
//     including sampled wrappers like "DAM-C~8");
//   - enum kinds encode as their String() names, not integers;
//   - only the active workload's config is encoded — an inactive config
//     cannot influence the run, so it must not influence the key;
//   - execution-only fields never appear: Workers (pool sizing), Trace,
//     Probe and Progress (observation hooks) change how a run executes or
//     is watched, never what it computes.
//
// Struct fields marshal in declaration order and parsing goes through
// typed structs (never map[string]any), so the encoding is invariant
// under key reordering of client JSON by construction.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"dynasym/internal/core"
	"dynasym/internal/dagio"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

type specJSON struct {
	Name      string        `json:"name,omitempty"`
	Platform  platformJSON  `json:"platform"`
	Workload  workloadJSON  `json:"workload"`
	Disturb   []disturbJSON `json:"disturb,omitempty"`
	Policies  []string      `json:"policies"`
	Points    []pointJSON   `json:"points"`
	Seed      uint64        `json:"seed"`
	Reps      int           `json:"reps"`
	Alpha     float64       `json:"alpha,omitempty"`
	Latency   float64       `json:"latency"`
	Bandwidth float64       `json:"bandwidth"`
}

type platformJSON struct {
	Preset   string        `json:"preset,omitempty"`
	Clusters []clusterJSON `json:"clusters,omitempty"`
	WidthCap int           `json:"width_cap,omitempty"`
}

type clusterJSON struct {
	Name         string  `json:"name"`
	FirstCore    int     `json:"first_core"`
	NumCores     int     `json:"num_cores"`
	Widths       []int   `json:"widths"`
	Speed        float64 `json:"speed"`
	BaseHz       float64 `json:"base_hz"`
	L1Bytes      int     `json:"l1_bytes"`
	L2Bytes      int     `json:"l2_bytes"`
	MemBandwidth float64 `json:"mem_bandwidth"`
	NodeID       int     `json:"node_id,omitempty"`
}

type workloadJSON struct {
	Kind      string         `json:"kind"`
	Synthetic *syntheticJSON `json:"synthetic,omitempty"`
	KMeans    *kmeansJSON    `json:"kmeans,omitempty"`
	Heat      *heatJSON      `json:"heat,omitempty"`
	// DAG is the normalized graph content of a dagfile workload
	// (dagio's wire schema, name stripped). Encoding the content —
	// never the source path — is what makes DAGFile hashes a pure
	// function of the graph: rename the file, reorder its
	// declarations, or re-submit it from another host, and the spec
	// still lands on the same cache keys. It also makes the canonical
	// spec self-contained, so a remote shard worker can rebuild the
	// exact workload from the wire bytes alone.
	DAG         *dagio.JSONGraph `json:"dag,omitempty"`
	DAGGen      *dagGenJSON      `json:"daggen,omitempty"`
	Criticality string           `json:"criticality,omitempty"`
}

type dagGenJSON struct {
	Model  string `json:"model"`
	Tiles  int    `json:"tiles"`
	Tile   int    `json:"tile"`
	Layers int    `json:"layers"`
	Width  int    `json:"width"`
	Degree int    `json:"degree"`
	Seed   uint64 `json:"seed"`
}

type syntheticJSON struct {
	Kernel      string `json:"kernel"`
	Tile        int    `json:"tile"`
	Sweeps      int    `json:"sweeps"`
	Tasks       int    `json:"tasks"`
	Parallelism int    `json:"parallelism"`
}

type kmeansJSON struct {
	N         int     `json:"n"`
	D         int     `json:"d"`
	K         int     `json:"k"`
	Grains    int     `json:"grains"`
	JumboFrac float64 `json:"jumbo_frac"`
	CostScale float64 `json:"cost_scale"`
	MaxIters  int     `json:"max_iters"`
	Epsilon   float64 `json:"epsilon"`
	Seed      uint64  `json:"seed"`
	BlobStd   float64 `json:"blob_std"`
}

type heatJSON struct {
	Nodes         int `json:"nodes"`
	BlocksPerNode int `json:"blocks_per_node"`
	Iters         int `json:"iters"`
	RowsPerBlock  int `json:"rows_per_block"`
	Cols          int `json:"cols"`
}

type disturbJSON struct {
	Kind      string  `json:"kind"`
	Node      int     `json:"node,omitempty"`
	Cores     []int   `json:"cores,omitempty"`
	Cluster   int     `json:"cluster,omitempty"`
	Share     float64 `json:"share,omitempty"`
	BWFactor  float64 `json:"bw_factor,omitempty"`
	From      float64 `json:"from,omitempty"`
	To        float64 `json:"to,omitempty"`
	HiHz      float64 `json:"hi_hz,omitempty"`
	LoHz      float64 `json:"lo_hz,omitempty"`
	HiDur     float64 `json:"hi_dur,omitempty"`
	LoDur     float64 `json:"lo_dur,omitempty"`
	BusyDur   float64 `json:"busy_dur,omitempty"`
	IdleDur   float64 `json:"idle_dur,omitempty"`
	Phase0    float64 `json:"phase0,omitempty"`
	PhaseStep float64 `json:"phase_step,omitempty"`
	Floor     float64 `json:"floor,omitempty"`
	RampSteps int     `json:"ramp_steps,omitempty"`
}

type pointJSON struct {
	Label       string  `json:"label"`
	Parallelism int     `json:"parallelism,omitempty"`
	Tile        int     `json:"tile,omitempty"`
	Alpha       float64 `json:"alpha,omitempty"`
}

// CanonicalJSON returns the normalized, deterministic JSON encoding of the
// spec. Two specs that produce bit-identical results under Run encode to
// the same bytes (see the package comment above for the normalization
// rules). The encoding round-trips through ParseSpec.
func (s Spec) CanonicalJSON() ([]byte, error) {
	sj, err := s.canonicalStruct()
	if err != nil {
		return nil, err
	}
	return json.Marshal(sj)
}

// cellBase returns the canonical encoding of the cell-invariant spec
// fields: everything a single cell's metrics depend on that is not the
// cell's own coordinates. Name, Policies, Points, Seed and Reps are zeroed
// out — the policy, the point parameters and the derived seed are hashed
// per cell instead — so two specs that differ only in their grid axes (an
// extra sweep point, a reordered policy list, a different name) share the
// base, and therefore share the cell hashes of their common cells. That
// sharing is what makes the service's cell cache reuse work across
// overlapping specs.
func (s Spec) cellBase() ([]byte, error) {
	sj, err := s.canonicalStruct()
	if err != nil {
		return nil, err
	}
	sj.Name = ""
	sj.Policies = nil
	sj.Points = nil
	sj.Seed = 0
	sj.Reps = 0
	return json.Marshal(sj)
}

// canonicalStruct builds the normalized wire struct both CanonicalJSON and
// cellBase marshal.
func (s Spec) canonicalStruct() (specJSON, error) {
	s = s.withDefaults()
	sj := specJSON{
		Name:      s.Name,
		Seed:      s.Seed,
		Reps:      s.Reps,
		Alpha:     s.Alpha,
		Latency:   s.Latency,
		Bandwidth: s.Bandwidth,
	}
	if len(s.Platform.Clusters) > 0 {
		sj.Platform.Clusters = make([]clusterJSON, len(s.Platform.Clusters))
		for i, c := range s.Platform.Clusters {
			sj.Platform.Clusters[i] = clusterJSON(c)
		}
	} else {
		sj.Platform.Preset = s.Platform.Preset
	}
	sj.Platform.WidthCap = s.Platform.WidthCap

	sj.Workload.Kind = s.Workload.Kind.String()
	switch s.Workload.Kind {
	case Synthetic:
		cfg := s.Workload.Synthetic.Defaults()
		sj.Workload.Synthetic = &syntheticJSON{
			Kernel:      cfg.Kernel.String(),
			Tile:        cfg.Tile,
			Sweeps:      cfg.Sweeps,
			Tasks:       cfg.Tasks,
			Parallelism: cfg.Parallelism,
		}
		sj.Workload.Criticality = s.Workload.Criticality
	case KMeans:
		cfg := s.Workload.KMeans.Defaults()
		sj.Workload.KMeans = &kmeansJSON{
			N: cfg.N, D: cfg.D, K: cfg.K,
			Grains:    cfg.Grains,
			JumboFrac: cfg.JumboFrac,
			CostScale: cfg.CostScale,
			MaxIters:  cfg.MaxIters,
			Epsilon:   cfg.Epsilon,
			Seed:      cfg.Seed,
			BlobStd:   cfg.BlobStd,
		}
	case HeatDist:
		cfg := s.Workload.Heat.Defaults()
		sj.Workload.Heat = &heatJSON{
			Nodes:         cfg.Nodes,
			BlocksPerNode: cfg.BlocksPerNode,
			Iters:         cfg.Iters,
			RowsPerBlock:  cfg.RowsPerBlock,
			Cols:          cfg.Cols,
		}
	case DAGFile:
		if s.Workload.DAG == nil {
			return specJSON{}, fmt.Errorf("scenario: cannot encode dagfile workload without a graph")
		}
		wire := s.Workload.DAG.Wire()
		sj.Workload.DAG = &wire
		sj.Workload.Criticality = s.Workload.Criticality
	case DAGGen:
		cfg := s.Workload.DAGGen.Defaults()
		sj.Workload.DAGGen = &dagGenJSON{
			Model:  cfg.Model,
			Tiles:  cfg.Tiles,
			Tile:   cfg.Tile,
			Layers: cfg.Layers,
			Width:  cfg.Width,
			Degree: cfg.Degree,
			Seed:   cfg.Seed,
		}
		sj.Workload.Criticality = s.Workload.Criticality
	default:
		return specJSON{}, fmt.Errorf("scenario: cannot encode unknown workload kind %v (known kinds: %s)", s.Workload.Kind, workloadKindList())
	}

	if len(s.Disturb) > 0 {
		sj.Disturb = make([]disturbJSON, len(s.Disturb))
		for i, d := range s.Disturb {
			dj := disturbJSON{
				Kind:    d.Kind.String(),
				Node:    d.Node,
				Cluster: d.Cluster,
				Share:   d.Share, BWFactor: d.BWFactor,
				From: d.From, To: d.To,
				HiHz: d.HiHz, LoHz: d.LoHz, HiDur: d.HiDur, LoDur: d.LoDur,
				BusyDur: d.BusyDur, IdleDur: d.IdleDur,
				Phase0: d.Phase0, PhaseStep: d.PhaseStep,
				Floor: d.Floor, RampSteps: d.RampSteps,
			}
			if len(d.Cores) > 0 {
				dj.Cores = d.Cores
			}
			// apply() substitutes the default ramp when steps are unset, so
			// the two spellings are the same schedule — and the same key.
			if d.Kind == Throttle && dj.RampSteps == 0 {
				dj.RampSteps = 8
			}
			sj.Disturb[i] = dj
		}
	}

	sj.Policies = make([]string, len(s.Policies))
	for i, p := range s.Policies {
		if p == nil {
			return specJSON{}, fmt.Errorf("scenario: cannot encode nil policy")
		}
		sj.Policies[i] = p.Name()
	}

	sj.Points = make([]pointJSON, len(s.Points))
	for i, pt := range s.Points {
		sj.Points[i] = pointJSON(pt)
	}

	return sj, nil
}

// Hash returns the sha256 of the canonical JSON encoding, hex-encoded.
// It is the deterministic cache key of the spec: invariant under field
// reordering of client JSON, under unset-vs-spelled-out defaults, and
// under execution-only settings (Workers, Trace, Probe, Progress).
func (s Spec) Hash() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ParseSpec decodes a JSON-encoded spec (canonical or hand-written; key
// order is irrelevant) into a Spec. Unknown fields, unknown enum names and
// unknown policy names are errors. The result is not validated beyond
// that — call Validate or Run.
func ParseSpec(data []byte) (Spec, error) {
	var sj specJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sj); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	s := Spec{
		Name:      sj.Name,
		Seed:      sj.Seed,
		Reps:      sj.Reps,
		Alpha:     sj.Alpha,
		Latency:   sj.Latency,
		Bandwidth: sj.Bandwidth,
	}
	s.Platform.Preset = sj.Platform.Preset
	s.Platform.WidthCap = sj.Platform.WidthCap
	if len(sj.Platform.Clusters) > 0 {
		s.Platform.Clusters = make([]topology.Cluster, len(sj.Platform.Clusters))
		for i, c := range sj.Platform.Clusters {
			s.Platform.Clusters[i] = topology.Cluster(c)
		}
	}

	kind, err := workloadKindByName(sj.Workload.Kind)
	if err != nil {
		return Spec{}, err
	}
	s.Workload.Kind = kind
	s.Workload.Criticality = sj.Workload.Criticality
	if sj.Workload.Synthetic != nil {
		kernel, err := kernelByName(sj.Workload.Synthetic.Kernel)
		if err != nil {
			return Spec{}, err
		}
		s.Workload.Synthetic = workloads.SyntheticConfig{
			Kernel:      kernel,
			Tile:        sj.Workload.Synthetic.Tile,
			Sweeps:      sj.Workload.Synthetic.Sweeps,
			Tasks:       sj.Workload.Synthetic.Tasks,
			Parallelism: sj.Workload.Synthetic.Parallelism,
		}
	}
	if sj.Workload.KMeans != nil {
		k := sj.Workload.KMeans
		s.Workload.KMeans = workloads.KMeansConfig{
			N: k.N, D: k.D, K: k.K,
			Grains:    k.Grains,
			JumboFrac: k.JumboFrac,
			CostScale: k.CostScale,
			MaxIters:  k.MaxIters,
			Epsilon:   k.Epsilon,
			Seed:      k.Seed,
			BlobStd:   k.BlobStd,
		}
	}
	if sj.Workload.Heat != nil {
		h := sj.Workload.Heat
		s.Workload.Heat = workloads.HeatDistConfig{
			Nodes:         h.Nodes,
			BlocksPerNode: h.BlocksPerNode,
			Iters:         h.Iters,
			RowsPerBlock:  h.RowsPerBlock,
			Cols:          h.Cols,
		}
	}
	if sj.Workload.DAG != nil {
		s.Workload.DAG = dagio.FromWire(*sj.Workload.DAG)
	}
	if sj.Workload.DAGGen != nil {
		d := sj.Workload.DAGGen
		s.Workload.DAGGen = dagio.GenConfig{
			Model:  d.Model,
			Tiles:  d.Tiles,
			Tile:   d.Tile,
			Layers: d.Layers,
			Width:  d.Width,
			Degree: d.Degree,
			Seed:   d.Seed,
		}
	}

	if len(sj.Disturb) > 0 {
		s.Disturb = make([]Disturbance, len(sj.Disturb))
		for i, dj := range sj.Disturb {
			dk, err := disturbKindByName(i, dj.Kind)
			if err != nil {
				return Spec{}, err
			}
			s.Disturb[i] = Disturbance{
				Kind:    dk,
				Node:    dj.Node,
				Cores:   dj.Cores,
				Cluster: dj.Cluster,
				Share:   dj.Share, BWFactor: dj.BWFactor,
				From: dj.From, To: dj.To,
				HiHz: dj.HiHz, LoHz: dj.LoHz, HiDur: dj.HiDur, LoDur: dj.LoDur,
				BusyDur: dj.BusyDur, IdleDur: dj.IdleDur,
				Phase0: dj.Phase0, PhaseStep: dj.PhaseStep,
				Floor: dj.Floor, RampSteps: dj.RampSteps,
			}
		}
	}

	s.Policies = make([]core.Policy, len(sj.Policies))
	for i, name := range sj.Policies {
		p, err := core.ByName(name)
		if err != nil {
			return Spec{}, err
		}
		s.Policies[i] = p
	}

	if len(sj.Points) > 0 {
		s.Points = make([]Point, len(sj.Points))
		for i, pt := range sj.Points {
			s.Points[i] = Point(pt)
		}
	}
	return s, nil
}

// disturbKinds lists every valid disturbance kind once, like
// workloadKinds (scenario.go) does for workloads.
var disturbKinds = []DisturbKind{CoRunCPU, CoRunMemory, DVFS, Stall, Burst, Throttle}

// kernelKinds lists the synthetic kernel classes.
var kernelKinds = []workloads.KernelKind{workloads.MatMul, workloads.Copy, workloads.Stencil}

// Unknown-name errors name the offending spec field and enumerate the
// accepted values, so a typo in a submitted document reports
// `unknown workload.kind "sinthetic" (known kinds: ...)` instead of
// just echoing the bad string back.

// nameList renders a kind slice as "a, b, c" for known-kinds errors.
func nameList[T fmt.Stringer](ks []T) string {
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return strings.Join(names, ", ")
}

func workloadKindList() string { return nameList(workloadKinds) }

func workloadKindByName(name string) (WorkloadKind, error) {
	for _, k := range workloadKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown workload.kind %q (known kinds: %s)", name, workloadKindList())
}

func kernelByName(name string) (workloads.KernelKind, error) {
	for _, k := range kernelKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown workload.synthetic.kernel %q (known kernels: %s)", name, nameList(kernelKinds))
}

func disturbKindByName(index int, name string) (DisturbKind, error) {
	for _, k := range disturbKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown disturb[%d].kind %q (known kinds: %s)", index, name, nameList(disturbKinds))
}
