package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

// fullSpec returns a spec exercising every semantic field, written in its
// fully defaulted form so round-trips compare with DeepEqual directly.
func fullSpec() Spec {
	return Spec{
		Name:     "canonical-full",
		Platform: PlatformSpec{Preset: "tx2", WidthCap: 2},
		Workload: WorkloadSpec{
			Kind: Synthetic,
			Synthetic: workloads.SyntheticConfig{
				Kernel: workloads.Stencil, Tile: 512, Sweeps: 2,
				Tasks: 900, Parallelism: 4,
			},
			Criticality: CritInferred,
		},
		Disturb: []Disturbance{
			{Kind: CoRunCPU, Cores: []int{2, 3}, Share: 0.5, From: 1, To: 2},
			{Kind: Burst, Cluster: 1, Share: 0.4, BusyDur: 1.5, IdleDur: 3, Phase0: 0.25, PhaseStep: 1},
			{Kind: Throttle, Cluster: 0, From: 2, To: 4, Floor: 0.3, RampSteps: 6},
			{Kind: DVFS, Cluster: 1, HiHz: 2.035e9, LoHz: 3.45e8, HiDur: 5, LoDur: 5},
		},
		Policies: []core.Policy{core.RWS(), core.DAMC(), core.NewSampled(core.DAMP(), 8)},
		Points: []Point{
			{Label: "P2", Parallelism: 2},
			{Label: "P4-hot", Parallelism: 4, Tile: 256, Alpha: 0.5},
		},
		Seed:      7,
		Reps:      2,
		Alpha:     0.2,
		Latency:   2e-6,
		Bandwidth: 5e9,
	}
}

// TestCanonicalRoundTrip checks Spec → canonical JSON → Spec is lossless
// for every result-determining field, including reconstructed policies
// (sampled wrappers included) and custom cluster platforms.
func TestCanonicalRoundTrip(t *testing.T) {
	specs := map[string]Spec{"full": fullSpec()}

	tx2 := topology.TX2()
	clusters := make([]topology.Cluster, tx2.NumClusters())
	for i := range clusters {
		clusters[i] = tx2.Cluster(i)
	}
	custom := fullSpec()
	custom.Platform = PlatformSpec{Clusters: clusters}
	custom.Disturb = nil
	specs["custom-clusters"] = custom

	km := Spec{
		Name:     "kmeans-rt",
		Platform: PlatformSpec{Preset: "haswell16"},
		Workload: WorkloadSpec{Kind: KMeans, KMeans: workloads.KMeansConfig{}.Defaults()},
		Policies: []core.Policy{core.DAMP()},
		Points:   []Point{{Label: "default"}},
		Seed:     42, Reps: 1, Latency: 2e-6, Bandwidth: 5e9,
	}
	specs["kmeans"] = km

	heat := Spec{
		Name:     "heat-rt",
		Platform: PlatformSpec{Preset: "haswell-node"},
		Workload: WorkloadSpec{Kind: HeatDist, Heat: workloads.HeatDistConfig{}.Defaults()},
		Policies: []core.Policy{core.DAMC()},
		Points:   []Point{{Label: "default"}},
		Seed:     42, Reps: 1, Latency: 1e-6, Bandwidth: 1e9,
	}
	specs["heatdist"] = heat

	for name, s := range specs {
		data, err := s.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: CanonicalJSON: %v", name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: ParseSpec: %v", name, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Errorf("%s: round trip lost information\n got: %#v\nwant: %#v", name, back, s)
		}
		// Re-encoding the parsed spec must be byte-identical (fixed point).
		again, err := back.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: canonical encoding is not a fixed point\n first: %s\nsecond: %s", name, data, again)
		}
	}
}

// TestHashInvariantUnderJSONOrdering feeds the same spec as two JSON
// documents with different key orderings (top-level and nested) and checks
// ParseSpec + Hash agree.
func TestHashInvariantUnderJSONOrdering(t *testing.T) {
	a := []byte(`{
		"name": "order-test",
		"platform": {"preset": "tx2"},
		"workload": {"kind": "synthetic",
			"synthetic": {"kernel": "MatMul", "tile": 64, "sweeps": 1, "tasks": 800, "parallelism": 4}},
		"policies": ["RWS", "DAM-C"],
		"points": [{"label": "P2", "parallelism": 2}],
		"seed": 42, "reps": 1, "latency": 2e-6, "bandwidth": 5e9}`)
	b := []byte(`{
		"bandwidth": 5e9, "latency": 2e-6, "reps": 1, "seed": 42,
		"points": [{"parallelism": 2, "label": "P2"}],
		"policies": ["RWS", "DAM-C"],
		"workload": {
			"synthetic": {"parallelism": 4, "tasks": 800, "sweeps": 1, "tile": 64, "kernel": "MatMul"},
			"kind": "synthetic"},
		"platform": {"preset": "tx2"},
		"name": "order-test"}`)
	sa, err := ParseSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ParseSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := sa.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := sb.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("key ordering changed the hash: %s vs %s", ha, hb)
	}
	if len(ha) != 64 {
		t.Errorf("hash is not a sha256 hex string: %q", ha)
	}
}

// TestHashNormalization checks that unset defaults, execution-only fields
// and equivalent spellings do not split the cache key, while semantic
// changes do.
func TestHashNormalization(t *testing.T) {
	base := fullSpec()
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	same := []struct {
		name string
		mut  func(*Spec)
	}{
		{"workers", func(s *Spec) { s.Workers = 3 }},
		{"probe", func(s *Spec) { s.Probe = true }},
		{"progress hook", func(s *Spec) { s.Progress = func(int, int) {} }},
		{"reps default spelled out", func(s *Spec) {}},
		{"synthetic defaults spelled out", func(s *Spec) {
			s.Workload.Synthetic = s.Workload.Synthetic.Defaults()
		}},
	}
	// Throttle with unset RampSteps keys like the explicit default (8).
	eight := fullSpec()
	eight.Disturb = append([]Disturbance(nil), base.Disturb...)
	eight.Disturb[2].RampSteps = 8
	eightHash, err := eight.Hash()
	if err != nil {
		t.Fatal(err)
	}
	zero := fullSpec()
	zero.Disturb = append([]Disturbance(nil), base.Disturb...)
	zero.Disturb[2].RampSteps = 0
	zeroHash, err := zero.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if eightHash != zeroHash {
		t.Errorf("throttle ramp default: unset RampSteps keys differently from explicit 8")
	}
	if eightHash == baseHash {
		t.Errorf("throttle ramp: steps 8 and 6 should key differently")
	}
	// A terse twin: every defaultable field unset.
	terse := base
	terse.Disturb = append([]Disturbance(nil), base.Disturb...)
	terse.Latency, terse.Bandwidth = 0, 0
	same = append(same, struct {
		name string
		mut  func(*Spec)
	}{"interconnect defaults unset", func(s *Spec) { *s = terse }})

	for _, tc := range same {
		s := base
		s.Disturb = append([]Disturbance(nil), base.Disturb...)
		tc.mut(&s)
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if h != baseHash {
			t.Errorf("%s: execution-equivalent spec changed the hash", tc.name)
		}
	}

	diff := []struct {
		name string
		mut  func(*Spec)
	}{
		{"seed", func(s *Spec) { s.Seed++ }},
		{"policy set", func(s *Spec) { s.Policies = []core.Policy{core.RWS()} }},
		{"platform", func(s *Spec) { s.Platform.Preset = "sym8"; s.Platform.WidthCap = 0 }},
		{"disturbance share", func(s *Spec) { s.Disturb[0].Share = 0.7 }},
		{"point alpha", func(s *Spec) { s.Points[1].Alpha = 0.9 }},
	}
	for _, tc := range diff {
		s := base
		s.Disturb = append([]Disturbance(nil), base.Disturb...)
		s.Points = append([]Point(nil), base.Points...)
		tc.mut(&s)
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if h == baseHash {
			t.Errorf("%s: semantic change did not change the hash", tc.name)
		}
	}
}

// TestParseSpecRejects checks strictness: unknown fields, enum names and
// policy names are errors, not silent drops.
func TestParseSpecRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"unknown field":   `{"workload": {"kind": "synthetic"}, "policies": ["RWS"], "bogus": 1}`,
		"unknown kind":    `{"workload": {"kind": "quantum"}, "policies": ["RWS"]}`,
		"unknown kernel":  `{"workload": {"kind": "synthetic", "synthetic": {"kernel": "FFT"}}, "policies": ["RWS"]}`,
		"unknown policy":  `{"workload": {"kind": "synthetic"}, "policies": ["SJF"]}`,
		"unknown disturb": `{"workload": {"kind": "synthetic"}, "policies": ["RWS"], "disturb": [{"kind": "meteor"}]}`,
	} {
		if _, err := ParseSpec([]byte(doc)); err == nil {
			t.Errorf("%s: ParseSpec accepted %s", name, doc)
		}
	}
}

// TestProgressHook checks Run reports (0, total) up front and then every
// completed cell exactly once, ending at (total, total).
func TestProgressHook(t *testing.T) {
	var mu chanCounter
	s := Spec{
		Name:     "progress",
		Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{Kernel: workloads.MatMul, Tasks: 120, Parallelism: 4}},
		Policies: []core.Policy{core.RWS(), core.DAMC()},
		Points:   ParallelismPoints(2, 4),
		Seed:     1,
		Reps:     2,
		Progress: mu.hook(),
	}
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	total := 2 * 2 * 2 // policies × points × reps
	mu.check(t, total)
}

// chanCounter collects progress callbacks safely.
type chanCounter struct {
	muTotal []int
	muDone  []int
	lock    chan struct{}
}

func (c *chanCounter) hook() func(done, total int) {
	c.lock = make(chan struct{}, 1)
	c.lock <- struct{}{}
	return func(done, total int) {
		<-c.lock
		c.muDone = append(c.muDone, done)
		c.muTotal = append(c.muTotal, total)
		c.lock <- struct{}{}
	}
}

func (c *chanCounter) check(t *testing.T, total int) {
	t.Helper()
	if len(c.muDone) != total+1 {
		t.Fatalf("progress called %d times, want %d", len(c.muDone), total+1)
	}
	if c.muDone[0] != 0 {
		t.Errorf("first progress call reported done=%d, want 0", c.muDone[0])
	}
	seen := make([]bool, total+1)
	for i, d := range c.muDone {
		if c.muTotal[i] != total {
			t.Errorf("call %d reported total=%d, want %d", i, c.muTotal[i], total)
		}
		if d < 0 || d > total || seen[d] {
			t.Errorf("done value %d repeated or out of range", d)
			continue
		}
		seen[d] = true
	}
	if !seen[total] {
		t.Errorf("no progress call reported done=total=%d", total)
	}
}
