package scenario

import (
	"strings"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/topology"
	"dynasym/internal/trace"
	"dynasym/internal/workloads"
)

// okSpec is a minimal valid spec that the failure cases below mutate.
func okSpec() Spec {
	return Spec{
		Name:     "ok",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{Kernel: workloads.MatMul, Tasks: 600}},
		Policies: []core.Policy{core.DAMC()},
	}
}

func TestValidateOK(t *testing.T) {
	if err := okSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"empty policy set", func(s *Spec) { s.Policies = nil }, "empty policy set"},
		{"nil policy", func(s *Spec) { s.Policies = []core.Policy{nil} }, "nil policy"},
		{"duplicate policy", func(s *Spec) { s.Policies = []core.Policy{core.DAMC(), core.DAMC()} }, "duplicate policy"},
		{"unknown preset", func(s *Spec) { s.Platform.Preset = "cray1" }, "unknown platform preset"},
		{"negative width cap", func(s *Spec) { s.Platform.WidthCap = -2 }, "negative width cap"},
		{"bad custom cluster width", func(s *Spec) {
			s.Platform = PlatformSpec{Clusters: []topology.Cluster{{
				Name: "bad", NumCores: 4, Widths: []int{1, 3}, Speed: 1, BaseHz: 1e9,
			}}}
		}, "does not divide"},
		{"negative reps", func(s *Spec) { s.Reps = -1 }, "negative repetitions"},
		{"alpha out of range", func(s *Spec) { s.Alpha = 1.5 }, "outside [0, 1]"},
		{"empty point label", func(s *Spec) { s.Points = []Point{{}} }, "empty label"},
		{"duplicate point label", func(s *Spec) {
			s.Points = []Point{{Label: "x"}, {Label: "x"}}
		}, "duplicate point label"},
		{"negative parallelism", func(s *Spec) {
			s.Points = []Point{{Label: "x", Parallelism: -1}}
		}, "negative parallelism"},
		{"negative tile", func(s *Spec) { s.Points = []Point{{Label: "x", Tile: -1}} }, "negative tile"},
		{"point alpha out of range", func(s *Spec) {
			s.Points = []Point{{Label: "x", Alpha: 2}}
		}, "outside [0, 1]"},
		{"unknown workload kind", func(s *Spec) { s.Workload.Kind = WorkloadKind(99) }, "unknown workload kind"},
		{"unknown criticality", func(s *Spec) { s.Workload.Criticality = "psychic" }, "unknown criticality"},
		{"criticality on kmeans", func(s *Spec) {
			s.Workload = WorkloadSpec{Kind: KMeans, Criticality: CritNone}
		}, "synthetic, dagfile and daggen workloads only"},
		{"synthetic point on kmeans", func(s *Spec) {
			s.Workload = WorkloadSpec{Kind: KMeans}
			s.Points = []Point{{Label: "x", Parallelism: 2}}
		}, "graph-shape fields"},
		{"trace on distributed", func(s *Spec) {
			s.Trace = trace.New()
			s.Workload = WorkloadSpec{Kind: HeatDist}
		}, "not supported for distributed"},

		{"disturb unknown kind", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: DisturbKind(99)}}
		}, "unknown disturbance kind"},
		{"disturb core out of range", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: CoRunCPU, Cores: []int{17}, Share: 0.5}}
		}, "core 17 outside"},
		{"disturb cluster out of range", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: DVFS, Cluster: 9, HiHz: 2e9, LoHz: 1e9, HiDur: 5, LoDur: 5}}
		}, "cluster 9 outside"},
		{"disturb node out of range", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: CoRunCPU, Node: 1, Cores: []int{0}, Share: 0.5}}
		}, "node 1 outside"},
		{"disturb bad share", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: CoRunCPU, Cores: []int{0}, Share: 1.5}}
		}, "share 1.5 outside"},
		{"disturb zero share", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: Burst, Cores: []int{0}, BusyDur: 1, IdleDur: 1}}
		}, "share 0 outside"},
		{"disturb bad bw factor", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: CoRunMemory, Cores: []int{0}, Share: 0.5, BWFactor: 2}}
		}, "bandwidth factor"},
		{"disturb inverted window", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: CoRunCPU, Cores: []int{0}, Share: 0.5, From: 5, To: 2}}
		}, "bad window"},
		{"stall needs window", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: Stall, Cores: []int{0}}}
		}, "explicit window"},
		{"throttle needs window", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: Throttle, Cluster: 0, Floor: 0.5}}
		}, "explicit window"},
		{"throttle bad floor", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: Throttle, Cluster: 0, From: 1, To: 2, Floor: 1.5}}
		}, "floor"},
		{"dvfs bad wave", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: DVFS, Cluster: 0, HiHz: 2e9}}
		}, "positive HiHz"},
		{"burst bad durations", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: Burst, Cores: []int{0}, Share: 0.5}}
		}, "positive BusyDur"},
		{"burst rejects window", func(s *Spec) {
			s.Disturb = []Disturbance{{Kind: Burst, Cores: []int{0}, Share: 0.5, BusyDur: 1, IdleDur: 1, From: 1, To: 2}}
		}, "windows are not supported for periodic waves"},
		{"dvfs rejects window", func(s *Spec) {
			d := PaperDVFS(0)
			d.From, d.To = 1, 2
			s.Disturb = []Disturbance{d}
		}, "windows are not supported for periodic waves"},
		{"overlapping core windows", func(s *Spec) {
			s.Disturb = []Disturbance{
				{Kind: CoRunCPU, Cores: []int{0}, Share: 0.5, From: 0, To: 10},
				{Kind: Stall, Cores: []int{0}, From: 5, To: 6},
			}
		}, "overlapping core availability"},
		{"whole-run plus window overlap", func(s *Spec) {
			s.Disturb = []Disturbance{
				{Kind: CoRunCPU, Cores: []int{0}, Share: 0.5},
				{Kind: Burst, Cores: []int{0}, Share: 0.5, BusyDur: 1, IdleDur: 1},
			}
		}, "overlapping core availability"},
		{"overlapping cluster clocks", func(s *Spec) {
			s.Disturb = []Disturbance{
				{Kind: DVFS, Cluster: 0, HiHz: 2e9, LoHz: 1e9, HiDur: 5, LoDur: 5},
				{Kind: Throttle, Cluster: 0, From: 2, To: 4, Floor: 0.5},
			}
		}, "overlapping cluster clock"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := okSpec()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got: %v", tc.want, err)
			}
			// Run must surface the same validation error, not panic.
			if _, err2 := Run(s); err2 == nil {
				t.Fatalf("Run accepted a spec Validate rejected")
			}
		})
	}
}

// Disturbances on distinct resources or disjoint windows must coexist.
func TestValidateDisjointWindowsOK(t *testing.T) {
	s := okSpec()
	s.Disturb = []Disturbance{
		{Kind: CoRunCPU, Cores: []int{0}, Share: 0.5, From: 0, To: 5},
		{Kind: CoRunCPU, Cores: []int{0}, Share: 0.5, From: 5, To: 10},
		{Kind: Burst, Cores: []int{2}, Share: 0.5, BusyDur: 1, IdleDur: 1},
		{Kind: DVFS, Cluster: 1, HiHz: 2e9, LoHz: 1e9, HiDur: 5, LoDur: 5},
		{Kind: Throttle, Cluster: 0, From: 2, To: 4, Floor: 0.5},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("disjoint disturbances rejected: %v", err)
	}
}

func TestPlatformPresets(t *testing.T) {
	cases := []struct {
		preset string
		cores  int
	}{
		{"tx2", 6},
		{"haswell16", 16},
		{"haswell-node", 20},
		{"sym8", 8},
		{"scaleout-4x4", 16},
		{"scaleout-8x8", 64},
	}
	for _, tc := range cases {
		topo, err := PlatformSpec{Preset: tc.preset}.Build()
		if err != nil {
			t.Errorf("%s: %v", tc.preset, err)
			continue
		}
		if topo.NumCores() != tc.cores {
			t.Errorf("%s: %d cores, want %d", tc.preset, topo.NumCores(), tc.cores)
		}
	}
	if _, err := (PlatformSpec{Preset: "sym7"}).Build(); err == nil {
		t.Errorf("sym7 should be rejected (not a power of two)")
	}
	// Typos must not silently map onto a different platform.
	for _, bad := range []string{"scaleout-4x4junk", "sym8x", "scaleout-4x", "tx2x"} {
		if _, err := (PlatformSpec{Preset: bad}).Build(); err == nil {
			t.Errorf("preset %q should be rejected", bad)
		}
	}
}

func TestWidthCap(t *testing.T) {
	topo, err := PlatformSpec{Preset: "tx2", WidthCap: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.MaxWidth() != 1 {
		t.Fatalf("width-capped TX2 has max width %d, want 1", topo.MaxWidth())
	}
	if got, want := len(topo.Places()), topo.NumCores(); got != want {
		t.Fatalf("width-1 TX2 has %d places, want %d", got, want)
	}
}
