package scenario

import (
	"fmt"
	"sort"
	"sync"

	"dynasym/internal/core"
	"dynasym/internal/dagio"
	"dynasym/internal/workloads"
)

// Family is a named scenario generator. The scale argument shrinks task
// counts and time windows together (1.0 = full scale), so a family behaves
// the same shape-wise at test scale as at paper scale.
type Family struct {
	Name string
	Desc string
	Spec func(scale float64) Spec
}

var (
	regMu    sync.Mutex
	registry = map[string]Family{}
)

// Register adds a family; duplicate names panic (they indicate a
// programming error in an init block).
func Register(f Family) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate family %q", f.Name))
	}
	registry[f.Name] = f
}

// Lookup returns a registered family by name.
func Lookup(name string) (Family, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	f, ok := registry[name]
	return f, ok
}

// Names lists the registered families in sorted order.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// clampScale normalizes a scale factor into (0, 1].
func clampScale(s float64) float64 {
	if s <= 0 || s > 1 {
		return 1
	}
	return s
}

// scaleTasks shrinks a task count, keeping at least min.
func scaleTasks(n int, scale float64, min int) int {
	scaled := int(float64(n) * clampScale(scale))
	if scaled < min {
		return min
	}
	return scaled
}

// ParallelismPoints builds a sweep over DAG parallelism.
func ParallelismPoints(ps ...int) []Point {
	pts := make([]Point, len(ps))
	for i, p := range ps {
		pts[i] = Point{Label: fmt.Sprintf("P%d", p), Parallelism: p}
	}
	return pts
}

// The built-in families extend the paper's evaluation with conditions it
// never ran. They are referenced by name from cmd/asymbench -scenario.
func init() {
	Register(Family{
		Name: "burst-sweep",
		Desc: "TX2 MatMul under phase-shifted bursty co-runners sweeping the A57 cluster (plus an independent burst on Denver core 1)",
		Spec: func(scale float64) Spec {
			f := clampScale(scale)
			return Spec{
				Name:     "burst-sweep",
				Platform: PlatformSpec{Preset: "tx2"},
				Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
					Kernel: workloads.MatMul,
					Tasks:  scaleTasks(32000, f, 600),
				}},
				Disturb: []Disturbance{
					{Kind: Burst, Cluster: 1, Share: 0.4, BusyDur: 1.5 * f, IdleDur: 3 * f, PhaseStep: 1.0 * f},
					{Kind: Burst, Cores: []int{1}, Share: 0.5, BusyDur: 2 * f, IdleDur: 4 * f},
				},
				Policies: core.All(),
				Points:   ParallelismPoints(2, 4, 6),
				Seed:     42,
			}
		},
	})
	Register(Family{
		Name: "throttle-ramp",
		Desc: "TX2 Stencil while the Denver cluster thermal-throttles to 30% mid-run and never recovers",
		Spec: func(scale float64) Spec {
			f := clampScale(scale)
			return Spec{
				Name:     "throttle-ramp",
				Platform: PlatformSpec{Preset: "tx2"},
				Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
					Kernel: workloads.Stencil,
					Tasks:  scaleTasks(20000, f, 600),
				}},
				Disturb: []Disturbance{
					{Kind: Throttle, Cluster: 0, From: 2.5 * f, To: 7.5 * f, Floor: 0.3, RampSteps: 6},
				},
				Policies: core.All(),
				Points:   ParallelismPoints(2, 4, 6),
				Seed:     42,
			}
		},
	})
	Register(Family{
		Name: "cholesky-sweep",
		Desc: "tiled Cholesky DAGs (POTRF/TRSM/SYRK/GEMM) on TX2 under a bursty A57 co-runner, sweeping the tile-grid edge",
		Spec: func(scale float64) Spec {
			f := clampScale(scale)
			// Scale shrinks the tile grids (task count is ~T³/6) while
			// the labels keep naming the nominal size, so a 0.1-scale
			// sweep still has three distinct, comparable points.
			pts := make([]Point, 0, 3)
			for _, T := range []int{8, 12, 16} {
				pts = append(pts, Point{Label: fmt.Sprintf("T%d", T), Tile: scaleTasks(T, f, 3+len(pts))})
			}
			return Spec{
				Name:     "cholesky-sweep",
				Platform: PlatformSpec{Preset: "tx2"},
				Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky}},
				Disturb: []Disturbance{
					{Kind: Burst, Cluster: 1, Share: 0.4, BusyDur: 0.3 * f, IdleDur: 0.6 * f, PhaseStep: 0.2 * f},
				},
				Policies: core.All(),
				Points:   pts,
				Seed:     42,
			}
		},
	})
	Register(Family{
		Name: "random-layered",
		Desc: "seeded random layered DAGs (mixed cpu/mem/mix task classes) on TX2 with a throttling Denver cluster, sweeping layer width",
		Spec: func(scale float64) Spec {
			f := clampScale(scale)
			return Spec{
				Name:     "random-layered",
				Platform: PlatformSpec{Preset: "tx2"},
				Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{
					Model:  dagio.ModelRandomLayered,
					Layers: scaleTasks(96, f, 12),
					Degree: 3,
					Seed:   7,
				}},
				Disturb: []Disturbance{
					{Kind: Throttle, Cluster: 0, From: 1.5 * f, To: 4.5 * f, Floor: 0.3, RampSteps: 6},
				},
				Policies: core.All(),
				Points:   ParallelismPoints(4, 8, 16),
				Seed:     42,
			}
		},
	})
	Register(Family{
		Name: "dag-import-demo",
		Desc: "the bundled examples/dag/demo.dot graph through the DOT importer under a paper-style DVFS wave (scale only trims reps; imported graphs have fixed shape)",
		Spec: func(scale float64) Spec {
			reps := 3
			if clampScale(scale) < 0.5 {
				reps = 1
			}
			return Spec{
				Name:     "dag-import-demo",
				Platform: PlatformSpec{Preset: "tx2"},
				Workload: WorkloadSpec{Kind: DAGFile, DAG: dagio.Demo()},
				Disturb:  []Disturbance{PaperDVFS(1)},
				Policies: core.All(),
				Reps:     reps,
				Seed:     42,
			}
		},
	})
	for _, shape := range []struct {
		cores    int
		clusters int
		per      int
	}{
		{16, 4, 4},
		{32, 4, 8},
		{64, 8, 8},
	} {
		shape := shape
		Register(Family{
			Name: fmt.Sprintf("scaleout-%d", shape.cores),
			Desc: fmt.Sprintf("%d-core %d-cluster big/little platform exercising the O(K) Sampled search at high parallelism", shape.cores, shape.clusters),
			Spec: func(scale float64) Spec {
				f := clampScale(scale)
				// One slow burst per little (odd) cluster, phase-staggered
				// across clusters, keeps the asymmetry dynamic at scale.
				var bursts []Disturbance
				for ci := 1; ci < shape.clusters; ci += 2 {
					bursts = append(bursts, Disturbance{
						Kind: Burst, Cluster: ci, Share: 0.5,
						BusyDur: 2 * f, IdleDur: 2 * f,
						Phase0: float64(ci/2) * f,
					})
				}
				return Spec{
					Name:     fmt.Sprintf("scaleout-%d", shape.cores),
					Platform: PlatformSpec{Preset: fmt.Sprintf("scaleout-%dx%d", shape.clusters, shape.per)},
					Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
						Kernel: workloads.MatMul,
						Tasks:  scaleTasks(32000, scale, 1200),
					}},
					Disturb: bursts,
					Policies: []core.Policy{
						core.RWS(),
						core.DAMC(),
						core.NewSampled(core.DAMC(), 8),
						core.NewSampled(core.DAMC(), 32),
					},
					Points: ParallelismPoints(8, 16),
					Seed:   42,
				}
			},
		})
	}
}
