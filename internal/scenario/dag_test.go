package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dagio"
)

// dagFileSpec builds a DAGFile spec around the bundled demo graph.
func dagFileSpec(pols []core.Policy) Spec {
	return Spec{
		Name:     "dag-test",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: DAGFile, DAG: dagio.Demo()},
		Policies: pols,
		Seed:     42,
	}
}

// A DAGFile spec's hash is a function of graph content only: the same
// graph loaded from differently named files, in a different declaration
// order, or through the other import format must hash identically.
func TestDAGFileHashIgnoresPathAndOrder(t *testing.T) {
	dir := t.TempDir()
	shuffled := `// same demo graph, declarations reversed, other filename
digraph other_name {
  node [work=6.1e6, bytes=6.6e4, type="analyze"];
  report [work=3.1e6, bytes=1.3e5, type="io", high=true];
  m2 [work=2.4e6, bytes=2.6e5, type="merge"];
  m1 [work=2.4e6, bytes=2.6e5, type="merge"];
  m0 [work=2.4e6, bytes=2.6e5, type="merge"];
  a2 -> report; m2 -> report; m1 -> report; m0 -> report;
  b5 -> m2; b4 -> m2; b3 -> m1; b2 -> m1; b1 -> m0; b0 -> m0;
  split -> b5; split -> b4; split -> b3; split -> b2;
  split -> b1; split -> b0;
  a2 [work=1.2e7, type="simulate"];
  a1 [work=1.2e7, type="simulate"];
  a0 [work=1.2e7, type="simulate", high=true];
  split -> a0 -> a1 -> a2;
  split [work=5.0e5, type="io", high=true];
  load  [work=1.5e6, bytes=5.2e5, type="io"];
  load -> split;
}
`
	pa := filepath.Join(dir, "demo.dot")
	pb := filepath.Join(dir, "renamed-elsewhere.gv")
	if err := os.WriteFile(pa, []byte(dagio.DemoDOT), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pb, []byte(shuffled), 0o644); err != nil {
		t.Fatal(err)
	}
	hashOf := func(path string) string {
		g, err := dagio.LoadFile(path, "")
		if err != nil {
			t.Fatal(err)
		}
		s := dagFileSpec(core.All())
		s.Workload.DAG = g
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	ha, hb := hashOf(pa), hashOf(pb)
	if ha != hb {
		t.Fatalf("same graph content, different spec hashes:\n%s (from %s)\n%s (from %s)", ha, pa, hb, pb)
	}
	// And the JSON twin of the same graph too.
	jg, err := dagio.LoadFile("../../examples/dag/demo.json", "")
	if err != nil {
		t.Fatal(err)
	}
	s := dagFileSpec(core.All())
	s.Workload.DAG = jg
	hj, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hj != ha {
		t.Fatalf("JSON twin hashes to %s, DOT to %s", hj, ha)
	}
	// Sanity: a real content change must change the hash.
	mut := dagio.Demo()
	mut.Nodes[0].Work += 1
	s = dagFileSpec(core.All())
	s.Workload.DAG = mut
	hm, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hm == ha {
		t.Fatal("graph content change did not change the spec hash")
	}
}

// Canonical round-trip for the new kinds: encode → ParseSpec → encode
// must be a fixed point, and the parsed spec must re-hash identically.
func TestDAGCanonicalRoundTrip(t *testing.T) {
	specs := map[string]Spec{
		"dagfile": dagFileSpec([]core.Policy{core.DAMC(), core.NewSampled(core.DAMC(), 8)}),
		"daggen": {
			Name:     "gen-roundtrip",
			Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{Model: dagio.ModelLU, Tiles: 4}, Criticality: CritInferred},
			Policies: []core.Policy{core.RWS()},
			Points:   []Point{{Label: "T4", Tile: 4}, {Label: "T6", Tile: 6}},
			Seed:     7,
		},
	}
	for name, s := range specs {
		s := s
		t.Run(name, func(t *testing.T) {
			cj, err := s.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParseSpec(cj)
			if err != nil {
				t.Fatal(err)
			}
			cj2, err := parsed.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(cj) != string(cj2) {
				t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", cj, cj2)
			}
			if err := parsed.Validate(); err != nil {
				t.Fatalf("parsed spec does not validate: %v", err)
			}
		})
	}
}

// An imported DOT graph must run deterministically under every Table-1
// policy: two runs of the same spec, byte-identical fingerprints.
func TestDAGImportDeterminismAllTable1Policies(t *testing.T) {
	for _, pol := range core.All() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			t.Parallel()
			s := dagFileSpec([]core.Policy{pol})
			s.Name = "dag-determinism-" + pol.Name()
			s.Disturb = []Disturbance{
				{Kind: Burst, Cluster: 1, Share: 0.4, BusyDur: 0.02, IdleDur: 0.04, PhaseStep: 0.01},
			}
			s.Reps = 2
			a, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatalf("imported-graph runs diverged under %s", pol.Name())
			}
			if got := int(a.Cells[0][0].Run().TasksDone); got != len(dagio.Demo().Nodes) {
				t.Fatalf("completed %d tasks, want %d", got, len(dagio.Demo().Nodes))
			}
		})
	}
}

// Generated graphs flow through Plan → RunCell → Merge bit-identically,
// and the sweep axis really changes the generated problem size.
func TestDAGGenPlanMergeAndSweep(t *testing.T) {
	s := Spec{
		Name:     "gen-plan",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky}},
		Policies: []core.Policy{core.RWS(), core.DAMC()},
		Points:   []Point{{Label: "T4", Tile: 4}, {Label: "T6", Tile: 6}},
		Seed:     42,
	}
	direct, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	byHash := map[string]RunMetrics{}
	for _, c := range p.Cells {
		rm, err := p.RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		byHash[c.Hash] = rm
	}
	merged, err := Merge(p, byHash)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Fingerprint() != merged.Fingerprint() {
		t.Fatal("Plan/RunCell/Merge diverged from Run for a daggen spec")
	}
	// T4 → 20 Cholesky tasks, T6 → 56: the Tile axis drives the grid.
	if a, b := direct.Cells[0][0].Run().TasksDone, direct.Cells[0][1].Run().TasksDone; a != 20 || b != 56 {
		t.Fatalf("task counts (%d, %d), want (20, 56)", a, b)
	}
}

// Priority-annotation variants apply to imported graphs.
func TestDAGCriticalityVariants(t *testing.T) {
	base := dagFileSpec([]core.Policy{core.DAMC()})
	fps := map[string]string{}
	for _, crit := range []string{CritUser, CritInferred, CritNone} {
		s := base
		s.Workload.Criticality = crit
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		fps[crit] = res.Fingerprint()
	}
	if fps[CritUser] == fps[CritNone] {
		t.Error("stripping the demo graph's priority marks changed nothing")
	}
}

func TestDAGValidation(t *testing.T) {
	t.Run("dagfile without graph", func(t *testing.T) {
		s := dagFileSpec(core.All())
		s.Workload.DAG = nil
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "no graph") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("cyclic import", func(t *testing.T) {
		s := dagFileSpec(core.All())
		s.Workload.DAG = &dagio.GraphSpec{
			Nodes: []dagio.Node{{ID: "a", Work: 1}, {ID: "b", Work: 1}},
			Edges: []dagio.Edge{{From: "a", To: "b"}, {From: "b", To: "a"}},
		}
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("unknown generator model", func(t *testing.T) {
		s := Spec{
			Name:     "bad-gen",
			Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{Model: "moebius"}},
			Policies: []core.Policy{core.RWS()},
		}
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), "known models") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("shape points on dagfile", func(t *testing.T) {
		s := dagFileSpec(core.All())
		s.Points = []Point{{Label: "P2", Parallelism: 2}}
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "graph-shape") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("alpha points allowed on dagfile", func(t *testing.T) {
		s := dagFileSpec(core.All())
		s.Points = []Point{{Label: "a1", Alpha: 0.1}, {Label: "a5", Alpha: 0.5}}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("shape points allowed on daggen", func(t *testing.T) {
		s := Spec{
			Name:     "gen-points",
			Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{Model: dagio.ModelForkJoin}},
			Policies: []core.Policy{core.RWS()},
			Points:   ParallelismPoints(4, 8),
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// ParseSpec's unknown-kind errors must name the offending field and
// enumerate the accepted values (for workloads, disturbances, kernels
// and generator models).
func TestParseSpecErrorsNameFieldAndKnownKinds(t *testing.T) {
	cases := []struct {
		name, doc string
		wants     []string
	}{
		{
			"workload kind",
			`{"workload": {"kind": "sinthetic"}, "policies": ["RWS"]}`,
			[]string{`workload.kind "sinthetic"`, "known kinds:", "synthetic", "kmeans", "heatdist", "dagfile", "daggen"},
		},
		{
			"kernel",
			`{"workload": {"kind": "synthetic", "synthetic": {"kernel": "MatMull", "tile": 64, "sweeps": 1, "tasks": 10, "parallelism": 2}}, "policies": ["RWS"]}`,
			[]string{`workload.synthetic.kernel "MatMull"`, "known kernels:", "MatMul", "Copy", "Stencil"},
		},
		{
			"disturb kind",
			`{"workload": {"kind": "synthetic"}, "disturb": [{"kind": "corun-cpu", "share": 0.5}, {"kind": "quake"}], "policies": ["RWS"]}`,
			[]string{`disturb[1].kind "quake"`, "known kinds:", "corun-cpu", "corun-mem", "dvfs", "stall", "burst", "throttle"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(c.doc))
			if err == nil {
				t.Fatalf("ParseSpec accepted %s", c.doc)
			}
			for _, w := range c.wants {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

// The new families must validate at several scales like the old ones,
// and the import demo family must actually be a DAGFile workload.
func TestDAGFamiliesRegistered(t *testing.T) {
	for _, name := range []string{"cholesky-sweep", "random-layered", "dag-import-demo"} {
		f, ok := Lookup(name)
		if !ok {
			t.Fatalf("family %q not registered", name)
		}
		for _, scale := range []float64{1, 0.1, 0.01} {
			s := f.Spec(scale)
			if err := s.Validate(); err != nil {
				t.Errorf("%s at scale %v: %v", name, scale, err)
			}
		}
	}
	if s := mustLookup(t, "dag-import-demo").Spec(1); s.Workload.Kind != DAGFile {
		t.Errorf("dag-import-demo is %v, want dagfile", s.Workload.Kind)
	}
	if s := mustLookup(t, "cholesky-sweep").Spec(1); s.Workload.Kind != DAGGen {
		t.Errorf("cholesky-sweep is %v, want daggen", s.Workload.Kind)
	}
}

func mustLookup(t *testing.T, name string) Family {
	t.Helper()
	f, ok := Lookup(name)
	if !ok {
		t.Fatalf("family %q not registered", name)
	}
	return f
}

// A tiny cholesky-sweep run end to end, checking the sweep produces a
// full grid (the family smoke used by CI at scale 0.01 mirrors this).
func TestCholeskySweepFamilyRuns(t *testing.T) {
	f := mustLookup(t, "cholesky-sweep")
	s := f.Spec(0.01)
	s.Policies = []core.Policy{core.RWS(), core.DAMC()}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || len(res.Policies) != 2 {
		t.Fatalf("grid %dx%d, want 2x3", len(res.Policies), len(res.Points))
	}
	for pi := range res.Policies {
		for xi := range res.Points {
			if res.Cells[pi][xi].Run().TasksDone == 0 {
				t.Fatalf("cell (%d,%d) completed no tasks", pi, xi)
			}
		}
	}
	if res.Fingerprint() == "" {
		t.Fatal("empty fingerprint")
	}
}

// Golden vectors for the new kinds live beside the existing ones: see
// TestSpecHashGoldenVectors for why these literals must not drift.
func TestDAGSpecHashGoldenVectors(t *testing.T) {
	smallGraph := &dagio.GraphSpec{
		Nodes: []dagio.Node{
			{ID: "b", Work: 2e6, Bytes: 64, Type: "t2"},
			{ID: "a", Work: 1e6, Type: "t1", High: true},
			{ID: "c", Work: 3e6},
		},
		Edges: []dagio.Edge{{From: "a", To: "b"}, {From: "a", To: "c"}},
	}
	vectors := []struct {
		name string
		spec Spec
		want string
	}{
		{
			name: "dagfile",
			spec: Spec{
				Name:     "golden-dagfile",
				Workload: WorkloadSpec{Kind: DAGFile, DAG: smallGraph},
				Policies: []core.Policy{core.DAMC()},
				Seed:     42,
			},
			want: "38800c7ec6111aa1887ad1632eee0f9264b60ea8a78d5295d75a1297c619e302",
		},
		{
			name: "daggen",
			spec: Spec{
				Name:     "golden-daggen",
				Platform: PlatformSpec{Preset: "scaleout-4x4"},
				Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{
					Model: dagio.ModelRandomLayered, Layers: 6, Width: 4, Seed: 9,
				}, Criticality: CritNone},
				Policies: []core.Policy{core.RWS(), core.NewSampled(core.DAMC(), 8)},
				Points:   []Point{{Label: "W4", Parallelism: 4}, {Label: "W8", Parallelism: 8}},
				Reps:     2,
				Seed:     7,
			},
			want: "296f92b8ca766c45e9c95fe669a67337fcc98e991851716d3acc45c7d1641952",
		},
	}
	for _, v := range vectors {
		v := v
		t.Run(v.name, func(t *testing.T) {
			got, err := v.spec.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if got != v.want {
				cj, _ := v.spec.CanonicalJSON()
				t.Errorf("Spec.Hash = %s, want %s\ncanonical encoding: %s", got, v.want, cj)
			}
		})
	}
}
