package scenario

import (
	"strings"
	"sync"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/workloads"
)

// planSpec is the determinism-regression shape: every Table-1 policy runs
// it in TestPlanMergeMatchesRun below.
func planSpec(pol core.Policy) Spec {
	return Spec{
		Name:     "plan-" + pol.Name(),
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel: workloads.MatMul,
			Tasks:  600,
		}},
		Disturb: []Disturbance{
			{Kind: Burst, Cluster: 1, Share: 0.4, BusyDur: 0.1, IdleDur: 0.2, PhaseStep: 0.05},
		},
		Policies: []core.Policy{pol},
		Points:   ParallelismPoints(2, 4),
		Reps:     2,
		Seed:     42,
	}
}

// TestPlanMergeMatchesRun is the refactor's bit-identity gate: for every
// Table-1 policy, executing the plan cell by cell and merging must produce
// the same fingerprint as the monolithic Run — cells are a lossless
// decomposition of the grid.
func TestPlanMergeMatchesRun(t *testing.T) {
	for _, pol := range core.All() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			t.Parallel()
			s := planSpec(pol)
			direct, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewPlan(s)
			if err != nil {
				t.Fatal(err)
			}
			if want := len(s.Policies) * len(s.Points) * s.Reps; len(p.Cells) != want {
				t.Fatalf("plan has %d cells, want %d", len(p.Cells), want)
			}
			byHash := make(map[string]RunMetrics, len(p.Cells))
			// Run the cells in reverse order to prove order independence.
			for i := len(p.Cells) - 1; i >= 0; i-- {
				c := p.Cells[i]
				rm, err := p.RunCell(c)
				if err != nil {
					t.Fatalf("cell %s: %v", p.CellLabel(c), err)
				}
				byHash[c.Hash] = rm
			}
			merged, err := Merge(p, byHash)
			if err != nil {
				t.Fatal(err)
			}
			if merged.Fingerprint() != direct.Fingerprint() {
				t.Fatalf("Plan/RunCell/Merge diverged from Run:\n--- run\n%s\n--- merged\n%s",
					direct.Fingerprint(), merged.Fingerprint())
			}
		})
	}
}

// TestCellHashesSharedAcrossOverlappingSpecs: cells common to two specs
// that differ only in grid axes (name, extra point, extra policy) must
// carry identical hashes — that sharing is what the service's cell cache
// keys on.
func TestCellHashesSharedAcrossOverlappingSpecs(t *testing.T) {
	a := planSpec(core.DAMC())
	b := a
	b.Name = "other-name"
	b.Points = ParallelismPoints(2, 4, 8)
	b.Policies = []core.Policy{core.DAMC(), core.RWS()}
	pa, err := NewPlan(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewPlan(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Hash == pb.Hash {
		t.Fatal("distinct specs share a spec hash")
	}
	for _, ca := range pa.Cells {
		cb, err := pb.Cell(0, ca.Point, ca.Rep) // DAM-C is policy 0 in both
		if err != nil {
			t.Fatal(err)
		}
		if cb.Hash != ca.Hash {
			t.Errorf("shared cell %s hashes differently across overlapping specs", pa.CellLabel(ca))
		}
	}
	// The extra point's cells must NOT collide with the shared ones.
	seen := map[string]bool{}
	for _, c := range pa.Cells {
		seen[c.Hash] = true
	}
	for rep := 0; rep < b.Reps; rep++ {
		c, err := pb.Cell(0, 2, rep)
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.Hash] {
			t.Errorf("new point P8 rep %d reuses an existing cell hash", rep)
		}
	}
}

// TestCellHashIgnoresLabel: a point's label names it in reports but cannot
// change its metrics, so it must not change the cell key.
func TestCellHashIgnoresLabel(t *testing.T) {
	a := planSpec(core.DAMC())
	a.Points = []Point{{Label: "two", Parallelism: 2}}
	b := planSpec(core.DAMC())
	b.Points = []Point{{Label: "deux", Parallelism: 2}}
	pa, err := NewPlan(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewPlan(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Cells[0].Hash != pb.Cells[0].Hash {
		t.Error("relabeling a point changed its cell hash")
	}
}

// TestCellHashSensitivity: everything that CAN change a cell's metrics
// must change its hash.
func TestCellHashSensitivity(t *testing.T) {
	base := planSpec(core.DAMC())
	hash0 := func(s Spec) string {
		t.Helper()
		p, err := NewPlan(s)
		if err != nil {
			t.Fatal(err)
		}
		return p.Cells[0].Hash
	}
	ref := hash0(base)
	mutations := map[string]func(*Spec){
		"seed":      func(s *Spec) { s.Seed++ },
		"alpha":     func(s *Spec) { s.Alpha = 0.9 },
		"platform":  func(s *Spec) { s.Platform.Preset = "haswell16"; s.Disturb = nil },
		"workload":  func(s *Spec) { s.Workload.Synthetic.Tasks = 601 },
		"disturb":   func(s *Spec) { s.Disturb[0].Share = 0.5 },
		"policy":    func(s *Spec) { s.Policies = []core.Policy{core.RWS()} },
		"point":     func(s *Spec) { s.Points[0].Parallelism = 3 },
		"pt-alpha":  func(s *Spec) { s.Points[0].Alpha = 0.7 },
		"width-cap": func(s *Spec) { s.Platform.WidthCap = 1 },
	}
	for name, mutate := range mutations {
		s := base
		s.Disturb = append([]Disturbance(nil), base.Disturb...)
		s.Points = append([]Point(nil), base.Points...)
		mutate(&s)
		if hash0(s) == ref {
			t.Errorf("mutation %q did not change the cell hash", name)
		}
	}
}

// TestPlanCellBounds: grid lookups outside the axes must error, not panic.
func TestPlanCellBounds(t *testing.T) {
	p, err := NewPlan(planSpec(core.DAMC()))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, 2, 0}, {0, 0, 2}} {
		if _, err := p.Cell(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("Cell(%v) accepted an out-of-grid position", bad)
		}
	}
	if _, err := p.RunCell(CellJob{Policy: 99}); err == nil {
		t.Error("RunCell accepted an out-of-grid cell")
	}
}

// TestMergeMissingCell: an incomplete result set must fail loudly.
func TestMergeMissingCell(t *testing.T) {
	p, err := NewPlan(planSpec(core.DAMC()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(p, map[string]RunMetrics{}); err == nil ||
		!strings.Contains(err.Error(), "missing cell result") {
		t.Fatalf("Merge with no cells: err = %v", err)
	}
}

// TestProgressMonotonic: the Progress hook must observe a strictly
// monotonic done count even with many concurrent workers finishing cells
// out of order — the regression this locks is the old atomic-increment
// pattern where the hook could see 4 before 3.
func TestProgressMonotonic(t *testing.T) {
	s := planSpec(core.DAMC())
	s.Points = ParallelismPoints(2, 3, 4, 5)
	s.Reps = 4
	s.Workers = 8
	var mu sync.Mutex
	var calls [][2]int
	s.Progress = func(done, total int) {
		mu.Lock()
		calls = append(calls, [2]int{done, total})
		mu.Unlock()
	}
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	total := len(s.Points) * s.Reps
	if len(calls) != total+1 {
		t.Fatalf("hook called %d times, want %d (initial + one per cell)", len(calls), total+1)
	}
	for i, c := range calls {
		if c[1] != total {
			t.Errorf("call %d reported total %d, want %d", i, c[1], total)
		}
		if c[0] != i {
			t.Errorf("call %d reported done=%d; reported sequence is not monotonic by 1", i, c[0])
		}
	}
}
