package scenario

import (
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dagio"
	"dynasym/internal/workloads"
)

// stateFingerprint runs every cell of the spec sequentially through
// RunCellState with the given scratch state (nil means fresh state per
// cell, RunCell's path) and returns the merged result fingerprint.
func stateFingerprint(t *testing.T, s Spec, st *CellState) string {
	t.Helper()
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[string]RunMetrics, len(p.Cells))
	for _, c := range p.Cells {
		rm, err := p.RunCellState(st, c)
		if err != nil {
			t.Fatalf("%s: %v", p.CellLabel(c), err)
		}
		results[c.Hash] = rm
	}
	res, err := Merge(p, results)
	if err != nil {
		t.Fatal(err)
	}
	return res.Fingerprint()
}

// TestRuntimeReuseMatchesFresh is the determinism gate for cross-cell
// runtime reuse: for every Table-1 policy and each compilable workload
// kind, driving one CellState (reused engine + reset simrt.Runtime)
// through the whole grid must produce a fingerprint byte-identical to
// building fresh state for every cell.
func TestRuntimeReuseMatchesFresh(t *testing.T) {
	kinds := []struct {
		name string
		w    WorkloadSpec
		pts  []Point
	}{
		{"daggen", WorkloadSpec{Kind: DAGGen,
			DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky, Tiles: 6}}, ParallelismPoints(2, 4)},
		{"dagfile", WorkloadSpec{Kind: DAGFile, DAG: dagio.Demo(), Criticality: CritInferred}, nil},
		{"synthetic", WorkloadSpec{Kind: Synthetic,
			Synthetic: workloads.SyntheticConfig{Kernel: workloads.MatMul, Tasks: 240}}, ParallelismPoints(2, 4)},
		{"kmeans", WorkloadSpec{Kind: KMeans,
			KMeans: workloads.KMeansConfig{N: 2048, D: 4, K: 4, Grains: 8, MaxIters: 6}}, nil},
	}
	for _, k := range kinds {
		for _, pol := range core.All() {
			k, pol := k, pol
			t.Run(k.name+"/"+pol.Name(), func(t *testing.T) {
				t.Parallel()
				s := Spec{
					Name:     "reuse-vs-fresh",
					Platform: PlatformSpec{Preset: "tx2"},
					Workload: k.w,
					Policies: []core.Policy{pol},
					Points:   k.pts,
					Reps:     2,
					Seed:     11,
				}
				fresh := stateFingerprint(t, s, nil)
				if fresh == "" {
					t.Fatal("empty fingerprint")
				}
				reused := stateFingerprint(t, s, NewCellState())
				if fresh != reused {
					t.Fatalf("fresh and reused runs diverged:\n--- fresh\n%s\n--- reused\n%s",
						fresh, reused)
				}
			})
		}
	}
}

// A CellState that already ran cells of one spec must be reusable for a
// spec with a different platform shape, policy family, and workload — the
// runtime's shape-change rebuild path — without influencing the metrics.
func TestRuntimeReuseAcrossShapes(t *testing.T) {
	warm := Spec{
		Name:     "reuse-warmup",
		Platform: PlatformSpec{Preset: "haswell16"},
		Workload: WorkloadSpec{Kind: Synthetic,
			Synthetic: workloads.SyntheticConfig{Kernel: workloads.Copy, Tasks: 96}},
		Policies: []core.Policy{core.RWS()},
		Seed:     3,
	}
	target := Spec{
		Name:     "reuse-target",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: DAGGen,
			DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky, Tiles: 5}},
		Policies: []core.Policy{core.DAMP()},
		Points:   ParallelismPoints(2, 4),
		Reps:     2,
		Seed:     23,
	}
	fresh := stateFingerprint(t, target, nil)
	st := NewCellState()
	_ = stateFingerprint(t, warm, st) // dirty the state on another shape
	if reused := stateFingerprint(t, target, st); reused != fresh {
		t.Fatalf("a state warmed on another platform changed the metrics:\n--- fresh\n%s\n--- reused\n%s",
			fresh, reused)
	}
}

// The warm reused path must stay cheap: once a worker's CellState has run
// one cell of the sweep, later same-shape cells may not rebuild the
// runtime. The bound is far below the thousands of allocations a fresh
// runtime costs per cell (per-core state, queues, bitmaps, pools), while
// leaving room for the per-cell topology/model build and the metrics
// readout, which are not pooled.
func TestRuntimeReuseAllocs(t *testing.T) {
	s := Spec{
		Name:     "reuse-allocs",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: DAGGen,
			DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky, Tiles: 5}},
		Policies: []core.Policy{core.DAMC()},
		Reps:     4,
		Seed:     5,
	}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	st := NewCellState()
	if _, err := p.RunCellState(st, p.Cells[0]); err != nil {
		t.Fatal(err) // warm: compiles the variant and captures the runtime
	}
	fresh := testing.AllocsPerRun(5, func() {
		if _, err := p.RunCell(p.Cells[1]); err != nil {
			t.Fatal(err)
		}
	})
	warm := testing.AllocsPerRun(5, func() {
		if _, err := p.RunCellState(st, p.Cells[1]); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs per cell: fresh %.0f, warm %.0f", fresh, warm)
	// The remaining warm-path allocations are the per-cell topology/model
	// build and the metrics readout; the runtime itself contributes none
	// (TestResetAllocs in simrt pins that directly).
	if warm > 0.7*fresh {
		t.Errorf("warm reused cell costs %.0f allocs, fresh costs %.0f; reuse should save at least 30%%", warm, fresh)
	}
}
