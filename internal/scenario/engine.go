package scenario

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/metrics"
	"dynasym/internal/sim"
	"dynasym/internal/simnet"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/trace"
	"dynasym/internal/workloads"
)

// repSeedStride separates repetition seeds; repetition 0 runs with the
// spec's base seed, so a single-rep scenario reproduces a standalone run.
const repSeedStride = 1_000_003

// nodeSeedStride separates per-node runtime seeds in distributed cells
// (matching the paper-reproduction drivers, so refactoring them onto the
// engine changed no numbers).
const nodeSeedStride = 1009

// Run validates the spec and executes the full (policy × point × rep) grid
// on a bounded worker pool. Every cell runs on private state seeded only by
// the spec, so the result is deterministic regardless of pool interleaving.
// A failed cell stops dispatch of the cells after it; the returned error is
// always the lowest-index failing cell's, so failures too are deterministic.
// Run is Plan → RunCell (pooled) → Merge; callers that want to schedule,
// distribute or cache individual cells use those pieces directly.
func Run(s Spec) (*Result, error) {
	p, err := NewPlan(s)
	if err != nil {
		return nil, err
	}
	spec := p.Spec
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.Cells) {
		workers = len(p.Cells)
	}
	results := make([]RunMetrics, len(p.Cells))
	errs := make([]error, len(p.Cells))
	prog := newProgress(spec.Progress, len(p.Cells))
	ch := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := NewCellState()
			for ci := range ch {
				c := p.Cells[ci]
				rm, err := p.RunCellState(st, c)
				if err != nil {
					errs[ci] = fmt.Errorf("scenario %q: %s: %w", spec.Name, p.CellLabel(c), err)
					failed.Store(true)
				} else {
					results[ci] = rm
				}
				prog.cellDone()
			}
		}()
	}
	// Dispatch in cell order and stop feeding once any cell fails:
	// in-flight cells finish, undispatched ones are abandoned. The error
	// scan below still reports the lowest failing cell index — the
	// unbuffered channel hands cells out in index order, so every cell
	// below a recorded failure was dispatched and has recorded its own
	// outcome by the time the pool drains.
	for ci := range p.Cells {
		if failed.Load() {
			break
		}
		ch <- ci
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	byHash := make(map[string]RunMetrics, len(p.Cells))
	for i, c := range p.Cells {
		byHash[c.Hash] = results[i]
	}
	if spec.Trace != nil {
		p.mergeTraces(spec.Trace)
	}
	return Merge(p, byHash)
}

// progressReporter serializes Progress-hook invocations so the hook
// observes a strictly monotonic done count even though cells finish on
// concurrent workers. (An atomic counter alone is not enough: two workers
// can increment in one order and invoke the hook in the other.)
type progressReporter struct {
	fn    func(done, total int)
	total int
	mu    sync.Mutex
	done  int
}

// newProgress reports (0, total) up front, like Run always has.
func newProgress(fn func(done, total int), total int) *progressReporter {
	pr := &progressReporter{fn: fn, total: total}
	if fn != nil {
		fn(0, total)
	}
	return pr
}

// cellDone records one finished cell and reports it. The hook runs under
// the reporter's lock, so it must not block for long.
func (pr *progressReporter) cellDone() {
	if pr.fn == nil {
		return
	}
	pr.mu.Lock()
	pr.done++
	pr.fn(pr.done, pr.total)
	pr.mu.Unlock()
}

// MustRun is Run but panics on error; intended for spec tables whose specs
// are static literals already covered by tests.
func MustRun(s Spec) *Result {
	res, err := Run(s)
	if err != nil {
		panic(err)
	}
	return res
}

// runCell executes one repetition of one cell. cw, when non-nil, supplies
// the point's compiled workload (graph instances come from its pool instead
// of the builder); st, when non-nil, supplies the worker's reusable engine.
// rec, when non-nil, receives the cell's schedule trace; probe, when
// non-nil, records scheduler introspection into RunMetrics.Sched (and,
// when rec is also set, emits queue/PTT/utilization counter lanes). All
// four are pure mechanism — they never change the metrics.
func runCell(s Spec, pol core.Policy, pt Point, seed uint64, cw *compiledWorkload, st *CellState, rec *trace.Recorder, probe *simrt.Probe) (RunMetrics, error) {
	if s.Workload.Kind == HeatDist {
		return runDistCell(s, pol, pt, seed)
	}
	topo, err := s.Platform.Build()
	if err != nil {
		return RunMetrics{}, err
	}
	model := machine.New(topo)
	for _, d := range s.Disturb {
		d.apply(model)
	}
	var g *dag.Graph
	if cw != nil {
		g, err = cw.acquire()
	} else {
		g, err = buildGraph(s.Workload, pt)
	}
	if err != nil {
		return RunMetrics{}, err
	}
	cfg := simrt.Config{
		Topo:   topo,
		Model:  model,
		Policy: pol,
		Alpha:  cellAlpha(s, pt),
		Seed:   seed,
		Trace:  rec,
		Probe:  probe,
		Engine: st.engineFor(),
	}
	var rt *simrt.Runtime
	if st != nil && st.rt != nil {
		// Warm worker: recycle the runtime's allocations. Reset replays
		// New's exact construction sequence, so the cell's metrics cannot
		// depend on what ran before.
		rt = st.rt
		if err := rt.Reset(cfg); err != nil {
			return RunMetrics{}, err
		}
	} else {
		rt, err = simrt.New(cfg)
		if err != nil {
			return RunMetrics{}, err
		}
		if st != nil {
			st.rt = rt
		}
	}
	coll, err := rt.Run(g)
	if err != nil {
		return RunMetrics{}, err
	}
	rm := collectRun(coll, rt)
	if probe != nil && rec != nil {
		probe.EmitCounters(rec, 0)
		rec.AddUtilCounters(0, rm.Makespan)
	}
	// Recycle the instance only after a clean run; a stalled or failed
	// graph is dropped rather than reset.
	if cw != nil {
		cw.release(g)
	}
	return rm, nil
}

// runDistCell executes one distributed heat repetition: one runtime per
// node sharing a virtual clock and a simulated interconnect.
func runDistCell(s Spec, pol core.Policy, pt Point, seed uint64) (RunMetrics, error) {
	engine := sim.New()
	net := simnet.New(engine, s.Latency, s.Bandwidth)
	hd := workloads.NewHeatDist(s.Workload.Heat)
	runtimes := make([]*simrt.Runtime, hd.Nodes)
	for node := 0; node < hd.Nodes; node++ {
		topo, err := nodePlatform(s, node)
		if err != nil {
			return RunMetrics{}, err
		}
		model := machine.New(topo)
		for _, d := range s.Disturb {
			if d.Node == node {
				d.apply(model)
			}
		}
		rt, err := simrt.New(simrt.Config{
			Topo:   topo,
			Model:  model,
			Policy: pol,
			Alpha:  cellAlpha(s, pt),
			Seed:   seed + uint64(node)*nodeSeedStride,
			Engine: engine,
			Hook:   hd.Hook(net),
		})
		if err != nil {
			return RunMetrics{}, err
		}
		if err := rt.Start(hd.BuildNode(node)); err != nil {
			return RunMetrics{}, fmt.Errorf("start node %d: %w", node, err)
		}
		runtimes[node] = rt
	}
	engine.Run()
	var rm RunMetrics
	hists := make([][]metrics.PlaceShare, 0, hd.Nodes)
	for node, rt := range runtimes {
		if !rt.Finished() {
			return RunMetrics{}, fmt.Errorf("node %d stalled (pending msgs: %d)", node, net.Pending())
		}
		part := collectRun(rt.Collector(), rt)
		if part.Makespan > rm.Makespan {
			rm.Makespan = part.Makespan
		}
		rm.TasksDone += part.TasksDone
		rm.CoreBusy = append(rm.CoreBusy, part.CoreBusy...)
		rm.Steals += part.Steals
		rm.FailedSteals += part.FailedSteals
		rm.Dispatches += part.Dispatches
		hists = append(hists, part.HighHist)
	}
	rm.HighHist = mergeHists(hists...)
	if rm.Makespan > 0 {
		rm.Throughput = float64(rm.TasksDone) / rm.Makespan
	}
	return rm, nil
}

// nodePlatform builds the platform for one distributed node. The
// "haswell-node" preset tags each node's clusters with its node id, like
// the paper's four-node cluster; any other platform is replicated as-is.
func nodePlatform(s Spec, node int) (*topology.Platform, error) {
	if s.Platform.Preset == "haswell-node" && len(s.Platform.Clusters) == 0 && s.Platform.WidthCap == 0 {
		return topology.HaswellNode(node), nil
	}
	return s.Platform.Build()
}

// cellAlpha resolves the PTT weight for a point.
func cellAlpha(s Spec, pt Point) float64 {
	if pt.Alpha > 0 {
		return pt.Alpha
	}
	return s.Alpha
}

// buildGraph constructs the task graph for a single-runtime cell.
func buildGraph(w WorkloadSpec, pt Point) (*dag.Graph, error) {
	switch w.Kind {
	case Synthetic:
		cfg := w.Synthetic
		if pt.Parallelism > 0 {
			cfg.Parallelism = pt.Parallelism
		}
		if pt.Tile > 0 {
			cfg.Tile = pt.Tile
		}
		return applyCriticality(workloads.BuildSynthetic(cfg.Defaults()), w.Criticality), nil
	case KMeans:
		return workloads.NewKMeans(w.KMeans).Build(), nil
	case DAGFile:
		g, err := w.DAG.Build()
		if err != nil {
			return nil, err
		}
		return applyCriticality(g, w.Criticality), nil
	case DAGGen:
		cfg := w.DAGGen
		// The sweep axis parameterizes the generator like it does the
		// synthetic builder: Parallelism overrides the layer/fork
		// width, Tile the tile-grid edge of the factorizations.
		if pt.Parallelism > 0 {
			cfg.Width = pt.Parallelism
		}
		if pt.Tile > 0 {
			cfg.Tiles = pt.Tile
		}
		gs, err := cfg.Graph()
		if err != nil {
			return nil, err
		}
		g, err := gs.Build()
		if err != nil {
			return nil, err
		}
		return applyCriticality(g, w.Criticality), nil
	default:
		return nil, fmt.Errorf("unsupported workload kind %v", w.Kind)
	}
}

// applyCriticality rewrites the graph's priority annotations for the
// CritInferred and CritNone variants; CritUser keeps the builder's own
// high marks.
func applyCriticality(g *dag.Graph, variant string) *dag.Graph {
	switch variant {
	case CritInferred:
		g.ClearPriorities()
		g.InferCriticality(1.0, false)
	case CritNone:
		g.ClearPriorities()
	}
	return g
}

// apply installs the disturbance into the model. The spec was validated,
// so parameter errors cannot occur here.
func (d Disturbance) apply(m *machine.Model) {
	cores := d.Cores
	if len(cores) == 0 {
		cores = m.Platform().CoresOf(d.Cluster)
	}
	switch d.Kind {
	case CoRunCPU:
		if d.From == 0 && d.To == 0 {
			interfere.CoRunCPU(m, cores, d.Share)
		} else {
			interfere.CoRunCPUEpisode(m, cores, d.Share, d.From, d.To)
		}
	case CoRunMemory:
		interfere.CoRunMemory(m, cores[0], d.Share, d.BWFactor)
	case DVFS:
		interfere.DVFS(m, d.Cluster, d.HiHz, d.LoHz, d.HiDur, d.LoDur)
	case Stall:
		for _, c := range cores {
			interfere.Stall(m, c, d.From, d.To)
		}
	case Burst:
		interfere.BurstCPU(m, cores, d.Share, d.BusyDur, d.IdleDur, d.Phase0, d.PhaseStep)
	case Throttle:
		steps := d.RampSteps
		if steps == 0 {
			steps = 8
		}
		interfere.ThrottleRamp(m, d.Cluster, d.From, d.To, d.Floor, steps)
	}
}

// collectRun extracts RunMetrics from one runtime's collector.
func collectRun(coll *metrics.Collector, rt *simrt.Runtime) RunMetrics {
	rm := RunMetrics{
		Throughput: coll.Throughput(),
		Makespan:   coll.Makespan(),
		TasksDone:  coll.TasksDone(),
		CoreBusy:   coll.CoreBusy(),
		HighHist:   coll.PlaceHistogram(true),
		Iters:      coll.IterStats(),
		Sched:      coll.Sched(),
	}
	for _, st := range rt.CoreStats() {
		rm.Steals += st.Steals
		rm.FailedSteals += st.FailedSteals
		rm.Dispatches += st.Dispatches
	}
	return rm
}
