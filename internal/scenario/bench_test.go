package scenario

import (
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dagio"
)

// benchCompiledSpec is a same-graph rep sweep over the 16-tile Cholesky
// (816 tasks) — the shape where workload compilation pays: every cell runs
// a structurally identical graph.
func benchCompiledSpec() Spec {
	return Spec{
		Name:     "bench-compiled-cell",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky, Tiles: 16}},
		Policies: []core.Policy{core.DAMC()},
		Reps:     4,
	}
}

// BenchmarkCompiledCellRun measures one full simulated cell of the sweep
// through the compiled-workload path: graph instances come from the
// variant's pool (a Frozen.Reset, not a rebuild) and the worker's engine
// is reused across cells.
func BenchmarkCompiledCellRun(b *testing.B) {
	p, err := NewPlan(benchCompiledSpec())
	if err != nil {
		b.Fatal(err)
	}
	st := NewCellState()
	if _, err := p.RunCellState(st, p.Cells[0]); err != nil {
		b.Fatal(err) // warm: compiles the variant
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunCellState(st, p.Cells[i%len(p.Cells)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUncompiledCellRun is the identical sweep with the compiled
// layer disabled — every cell re-runs the generator and builder, the
// pre-compilation behavior — so the pair quantifies what compilation
// saves per cell.
func BenchmarkUncompiledCellRun(b *testing.B) {
	p, err := NewPlan(benchCompiledSpec())
	if err != nil {
		b.Fatal(err)
	}
	p.compiled = nil
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunCell(p.Cells[i%len(p.Cells)]); err != nil {
			b.Fatal(err)
		}
	}
}
