package scenario

import (
	"strings"
	"sync/atomic"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/dagio"
	"dynasym/internal/workloads"
)

// uncompiledFingerprint runs the spec with the compiled-workload layer
// disabled — every cell rebuilds its graph from the builder, the pre-PR6
// behavior — and returns the result fingerprint.
func uncompiledFingerprint(t *testing.T, s Spec) string {
	t.Helper()
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	p.compiled = nil // force per-cell builds
	results := make(map[string]RunMetrics, len(p.Cells))
	for _, c := range p.Cells {
		rm, err := p.RunCell(c)
		if err != nil {
			t.Fatalf("%s: %v", p.CellLabel(c), err)
		}
		results[c.Hash] = rm
	}
	res, err := Merge(p, results)
	if err != nil {
		t.Fatal(err)
	}
	return res.Fingerprint()
}

// TestCompiledMatchesUncompiled is the tentpole's determinism gate: for
// every Table-1 policy and for each compilable workload kind (both dag
// kinds, the synthetic builder and K-means), the compiled-workload path
// must produce a byte-identical fingerprint to rebuilding the graph per
// cell.
func TestCompiledMatchesUncompiled(t *testing.T) {
	kinds := []struct {
		name string
		w    WorkloadSpec
		pts  []Point
	}{
		{"daggen", WorkloadSpec{Kind: DAGGen,
			DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky, Tiles: 6}}, ParallelismPoints(2, 4)},
		{"dagfile", WorkloadSpec{Kind: DAGFile, DAG: dagio.Demo(), Criticality: CritInferred}, nil},
		{"synthetic", WorkloadSpec{Kind: Synthetic,
			Synthetic: workloads.SyntheticConfig{Kernel: workloads.MatMul, Tasks: 240}}, ParallelismPoints(2, 4)},
		{"kmeans", WorkloadSpec{Kind: KMeans,
			KMeans: workloads.KMeansConfig{N: 2048, D: 4, K: 4, Grains: 8, MaxIters: 6}}, nil},
	}
	for _, k := range kinds {
		for _, pol := range core.All() {
			k, pol := k, pol
			t.Run(k.name+"/"+pol.Name(), func(t *testing.T) {
				t.Parallel()
				s := Spec{
					Name:     "compiled-vs-uncompiled",
					Platform: PlatformSpec{Preset: "tx2"},
					Workload: k.w,
					Policies: []core.Policy{pol},
					Points:   k.pts,
					Reps:     2,
					Seed:     7,
				}
				res, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				compiled := res.Fingerprint()
				if compiled == "" {
					t.Fatal("empty fingerprint")
				}
				if uncompiled := uncompiledFingerprint(t, s); compiled != uncompiled {
					t.Fatalf("compiled and uncompiled runs diverged:\n--- compiled\n%s\n--- uncompiled\n%s",
						compiled, uncompiled)
				}
			})
		}
	}
}

// Plans of the same spec must share one compiled workload through the
// process-wide cache, and points resolving to different graphs must not.
func TestPlansShareCompiledWorkloads(t *testing.T) {
	s := Spec{
		Name:     "share-compiled",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky, Tiles: 5}},
		Policies: []core.Policy{core.RWS(), core.DAMC()},
		Points:   ParallelismPoints(2, 4),
		Reps:     2,
	}
	p1, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	// Both points override the generator width, so they are distinct
	// variants — but each variant is shared across the two plans.
	if p1.PointVariant(0) == p1.PointVariant(1) {
		t.Fatal("points with different parallelism overrides share a variant")
	}
	for xi := range s.Points {
		if p1.compiled[xi] != p2.compiled[xi] {
			t.Errorf("point %d: two plans of one spec hold different compiled workloads", xi)
		}
	}
	// A rep-only sweep has a single variant: all cells share one graph.
	single, err := NewPlan(Spec{
		Name:     "single-variant",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky, Tiles: 5}},
		Policies: []core.Policy{core.RWS()},
		Reps:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if single.PointVariant(0) != 0 {
		t.Errorf("single-point plan variant = %d, want 0", single.PointVariant(0))
	}
}

// TestRunStopsDispatchAfterFailure pins the satellite bugfix: a failed
// cell must stop dispatch of the cells after it (no pointless simulation
// of a doomed grid), while the returned error stays the deterministic
// lowest-index failure.
func TestRunStopsDispatchAfterFailure(t *testing.T) {
	var ran atomic.Int64
	runCellHook = func(p *Plan, c CellJob) (RunMetrics, error, bool) {
		ran.Add(1)
		if c.Rep == 3 || c.Rep == 6 {
			return RunMetrics{}, errInjected(c.Rep), true
		}
		return RunMetrics{}, nil, true
	}
	defer func() { runCellHook = nil }()
	s := Spec{
		Name:     "mid-grid-failure",
		Platform: PlatformSpec{Preset: "tx2"},
		Workload: WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{Kernel: workloads.MatMul, Tasks: 64}},
		Policies: []core.Policy{core.RWS()},
		Reps:     8,
		Seed:     1,
		Workers:  1,
	}
	_, err := Run(s)
	if err == nil {
		t.Fatal("Run succeeded despite injected failures")
	}
	// Two reps fail; the reported one must be the lower index even though
	// dispatch stops early.
	if !strings.Contains(err.Error(), "(rep 3)") {
		t.Errorf("error %q does not name the lowest failing cell (rep 3)", err)
	}
	if n := ran.Load(); n >= 8 {
		t.Errorf("all %d cells were simulated despite the mid-grid failure", n)
	} else if n < 4 {
		t.Errorf("only %d cells ran; every cell up to the failure must be dispatched", n)
	}
}

type errInjected int

func (e errInjected) Error() string { return "injected failure" }

// The pooled acquire/release cycle of a compiled variant must not rebuild
// anything: a handful of bookkeeping allocations at most, against the
// thousands a builder run costs.
func TestCompiledAcquireReleaseAllocs(t *testing.T) {
	w := WorkloadSpec{Kind: DAGGen, DAGGen: dagio.GenConfig{Model: dagio.ModelCholesky, Tiles: 16}}
	cw := &compiledWorkload{
		key:  "allocs-test",
		kind: DAGGen,
		build: func() (*dag.Graph, error) {
			return buildGraph(w, Point{})
		},
	}
	g, err := cw.acquire()
	if err != nil {
		t.Fatal(err)
	}
	if cw.frozen == nil {
		t.Fatal("daggen workload did not freeze")
	}
	cw.release(g)
	avg := testing.AllocsPerRun(50, func() {
		g, err := cw.acquire()
		if err != nil {
			t.Fatal(err)
		}
		cw.release(g)
	})
	if avg > 8 {
		t.Errorf("acquire+release of a pooled compiled graph costs %.1f allocs, want ≤ 8", avg)
	}
}

// A workload whose graph cannot freeze (real bodies) must silently fall
// back to per-cell builds and still run correctly.
func TestUnfreezableWorkloadFallsBack(t *testing.T) {
	w := WorkloadSpec{Kind: Synthetic, Synthetic: workloads.SyntheticConfig{
		Kernel: workloads.Copy, Tasks: 16, MakeBodies: true,
	}}
	key, err := workloadKey(w, Point{})
	if err != nil {
		t.Fatal(err)
	}
	cw := &compiledWorkload{key: key, kind: Synthetic, build: func() (*dag.Graph, error) {
		return buildGraph(w, Point{})
	}}
	g, err := cw.acquire()
	if err != nil {
		t.Fatal(err)
	}
	if cw.frozen != nil {
		t.Fatal("a graph with real bodies froze")
	}
	if g == nil || g.Total() == 0 {
		t.Fatal("fallback build returned no graph")
	}
	g2, err := cw.acquire()
	if err != nil {
		t.Fatal(err)
	}
	if g2 == g {
		t.Fatal("fallback acquires must be independent builds")
	}
}
