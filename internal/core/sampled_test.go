package core

import (
	"testing"

	"dynasym/internal/ptt"
	"dynasym/internal/topology"
)

func TestSampledDelegatesLowPriority(t *testing.T) {
	topo := topology.TX2()
	tbl := trainedTable(topo)
	s := NewSampled(DAMC(), 4)
	pl := s.DispatchPlace(ctxFor(topo, tbl, 4, false))
	want := DAMC().DispatchPlace(ctxFor(topo, tbl, 4, false))
	if pl != want {
		t.Fatalf("sampled low dispatch %v != wrapped %v", pl, want)
	}
}

func TestSampledFindsGoodPlaceOnLargePlatform(t *testing.T) {
	topo := topology.HaswellClusterN(1) // 20 cores, 36 places
	tbl := ptt.NewTable(topo, 1)
	for _, pl := range topo.Places() {
		tbl.Update(pl, 10.0) // everything slow...
	}
	gold := topology.Place{Leader: 15, Width: 1}
	tbl.Update(gold, 1.0) // ...except one core
	s := NewSampled(DAMC(), 16)
	found := 0
	const trials = 50
	ctx := ctxFor(topo, tbl, 3, true) // one context: the RNG advances per decision
	for i := 0; i < trials; i++ {
		if s.DispatchPlace(ctx) == gold {
			found++
		}
	}
	// With 16 samples over 54 places the golden core should be found in
	// a clear majority of decisions.
	if found < trials/3 {
		t.Fatalf("sampled search found the fast core in only %d/%d trials", found, trials)
	}
}

func TestSampledNeverReturnsInvalidPlace(t *testing.T) {
	topo := topology.TX2()
	tbl := trainedTable(topo)
	s := NewSampled(DAMP(), 4)
	for i := 0; i < 200; i++ {
		ctx := ctxFor(topo, tbl, i%6, true)
		if pl := s.DispatchPlace(ctx); !topo.Valid(pl) {
			t.Fatalf("invalid place %v", pl)
		}
	}
}

func TestSampledName(t *testing.T) {
	if got := NewSampled(DAMC(), 12).Name(); got != "DAM-C~12" {
		t.Fatalf("name = %q", got)
	}
	if got := NewSampled(DAMC(), 0).Name(); got != "DAM-C~8" {
		t.Fatalf("default-k name = %q", got)
	}
}

func BenchmarkFullGlobalSearch80Cores(b *testing.B) {
	topo := topology.HaswellClusterN(4)
	tbl := ptt.NewTable(topo, 0)
	for _, pl := range topo.Places() {
		tbl.Update(pl, 1.0)
	}
	ctx := ctxFor(topo, tbl, 3, true)
	p := DAMC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.DispatchPlace(ctx)
	}
}

func BenchmarkSampledSearch80Cores(b *testing.B) {
	topo := topology.HaswellClusterN(4)
	tbl := ptt.NewTable(topo, 0)
	for _, pl := range topo.Places() {
		tbl.Update(pl, 1.0)
	}
	ctx := ctxFor(topo, tbl, 3, true)
	p := NewSampled(DAMC(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.DispatchPlace(ctx)
	}
}
