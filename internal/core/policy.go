// Package core implements the paper's scheduling policies (its primary
// contribution): random work stealing (RWS), RWS with moldability (RWSM-C),
// fixed-asymmetry criticality scheduling (FA, FAM-C), and the dynamic
// asymmetry schedulers (DA, DAM-C, DAM-P) of Algorithm 1.
//
// A Policy makes two kinds of decisions, mirroring the two decision points
// in the paper's Figure 3:
//
//   - WakePlace: when a task becomes ready, which worker's Work-Stealing
//     Queue should hold it (a locality/criticality hint);
//   - DispatchPlace: after a worker dequeues (or steals) the task, the final
//     execution place (leader core, width) before Assembly Queue insertion.
//
// Both runtimes (internal/simrt, internal/xtr) drive policies through this
// interface; policies themselves are stateless apart from a shared
// round-robin counter used by the fixed-asymmetry family.
package core

import (
	"fmt"
	"sync/atomic"

	"dynasym/internal/ptt"
	"dynasym/internal/topology"
	"dynasym/internal/xrand"
)

// Objective selects what a PTT search minimizes.
type Objective int

const (
	// MinCost minimizes predicted time × width (the paper's "parallel
	// cost"), conserving resources.
	MinCost Objective = iota
	// MinTime minimizes predicted time alone (the paper's "parallel
	// performance"), used by DAM-P for critical tasks.
	MinTime
)

// Context carries everything a policy may consult for one decision.
// Pointers reference runtime-owned state. Runtimes may reuse a single
// Context value across decisions (simrt refills one scratch on its hot
// path), so policies must consume it within the WakePlace/DispatchPlace
// call and never retain it.
type Context struct {
	// Self is the core making the decision (the waker at wake time, the
	// dispatching worker at dispatch time).
	Self int
	// High reports the task's priority class.
	High bool
	// Type is the task's type id, selecting its PTT.
	Type ptt.TypeID
	// Table is the task type's Performance Trace Table; nil when the
	// policy does not use a model.
	Table *ptt.Table
	// Topo is the platform.
	Topo *topology.Platform
	// Rand is the deciding worker's deterministic RNG (used only by
	// policies that randomize, none of the built-in seven do).
	Rand *xrand.RNG
	// RR is a shared round-robin counter for fixed-asymmetry placement.
	RR *atomic.Uint64
	// Load, when non-nil, estimates the earliest time (seconds from now)
	// at which a core could start new work. Runtimes provide it for
	// finish-time-based baselines such as dHEFT; the paper's seven
	// policies ignore it.
	Load func(core int) float64
}

// Policy is one scheduling algorithm from the paper's Table 1.
type Policy interface {
	// Name returns the paper's name for the policy ("DAM-C" etc.).
	Name() string
	// UsesPTT reports whether the runtime must maintain trace tables and
	// pass them in Context.Table.
	UsesPTT() bool
	// AllowPrioritySteal reports whether high-priority tasks may be
	// stolen. The paper disables stealing of high-priority tasks for
	// every policy that makes placement decisions; only the random
	// work-stealing family steals them.
	AllowPrioritySteal() bool
	// Moldable reports whether the policy ever chooses widths > 1.
	Moldable() bool
	// WakePlace returns the core whose WSQ should receive a newly ready
	// task. ok=false means "no preference: push to the waking worker".
	WakePlace(ctx *Context) (leader int, ok bool)
	// DispatchPlace returns the final execution place for a task the
	// worker ctx.Self is about to dispatch.
	DispatchPlace(ctx *Context) topology.Place
}

// Feature strings for the paper's Table 1.
type Features struct {
	Asymmetry string // "N/A", "Fixed", "Dynamic"
	Mold      string // "N/A", "No", "Yes"
	Placement string // "N/A", "Resource Cost", "Performance", "Fast cores"
}

type highMode int

const (
	highNone   highMode = iota // treat like low priority (RWS family)
	highFastRR                 // round-robin over the statically fastest cluster
	highGlobal                 // global PTT search
)

// policy is the single configurable implementation behind all seven names.
type policy struct {
	name      string
	usesPTT   bool
	stealHigh bool
	// low-priority dispatch: local width search (moldability) or width 1.
	lowSearch bool
	// high-priority handling.
	high     highMode
	highObj  Objective
	highWOne bool // restrict global search to width-1 places (DA)
	highMold bool // fixed-asymmetry family: local width search at the fast core
	features Features
}

func (p *policy) Name() string             { return p.name }
func (p *policy) UsesPTT() bool            { return p.usesPTT }
func (p *policy) AllowPrioritySteal() bool { return p.stealHigh }
func (p *policy) Moldable() bool {
	return p.lowSearch || p.highMold || (p.high == highGlobal && !p.highWOne)
}
func (p *policy) Features() Features { return p.features }

// WakePlace implements the wake-time WSQ choice. Low-priority tasks always
// go to the waking worker's own queue ("keeping the mapping of the task to
// its local resource partition enhances data-reuse across dependent
// tasks"). High-priority tasks are routed by the policy's placement scheme.
func (p *policy) WakePlace(ctx *Context) (int, bool) {
	if !ctx.High {
		return 0, false
	}
	switch p.high {
	case highFastRR:
		fast := ctx.Topo.CoresOf(ctx.Topo.FastestCluster())
		n := ctx.RR.Add(1) - 1
		return fast[int(n)%len(fast)], true
	case highGlobal:
		pl := globalBest(ctx.Table, ctx.Topo, p.highObj, p.highWOne)
		return pl.Leader, true
	default:
		return 0, false
	}
}

// DispatchPlace implements Algorithm 1.
func (p *policy) DispatchPlace(ctx *Context) topology.Place {
	if ctx.High {
		switch p.high {
		case highGlobal:
			return globalBest(ctx.Table, ctx.Topo, p.highObj, p.highWOne)
		case highFastRR:
			if p.highMold {
				return localBest(ctx.Table, ctx.Topo, ctx.Self, MinCost)
			}
			return topology.Place{Leader: ctx.Self, Width: 1}
		}
		// highNone: fall through to the low-priority path.
	}
	if p.lowSearch {
		return localBest(ctx.Table, ctx.Topo, ctx.Self, MinCost)
	}
	return topology.Place{Leader: ctx.Self, Width: 1}
}

// localBest performs the paper's local search: the resource partition and
// core stay fixed (the place must contain `core`), only the width is
// molded. Unmeasured places (zero entries) win immediately so every width
// is explored at least once. The MinCost search — the only one the Table 1
// policies use — is served from the table's per-core cached best, which
// only rescans after an update.
func localBest(t *ptt.Table, topo *topology.Platform, core int, obj Objective) topology.Place {
	if obj == MinCost {
		return topo.Places()[t.BestLocalCost(core)]
	}
	best := topology.Place{Leader: core, Width: 1}
	bestScore := score(t, best, obj)
	for _, w := range topo.WidthsFor(core) {
		if w == 1 {
			continue
		}
		pl, ok := topo.PlaceFor(core, w)
		if !ok {
			continue
		}
		if s := score(t, pl, obj); s < bestScore {
			best, bestScore = pl, s
		}
	}
	return best
}

// globalBest performs the paper's global search over every execution place
// in the system. widthOne restricts the sweep to single-core places (the
// non-moldable DA scheduler). Ties keep the first place in platform order,
// which makes exploration deterministic. All three variants are served
// from the table's generation-stamped caches, so between PTT updates a
// decision costs one atomic load instead of a full-table scan.
func globalBest(t *ptt.Table, topo *topology.Platform, obj Objective, widthOne bool) topology.Place {
	var id int
	switch {
	case widthOne:
		// Width-1 places have cost == time, so one cache serves both
		// objectives.
		id = t.BestGlobalW1()
	case obj == MinCost:
		id = t.BestGlobalCost()
	default:
		id = t.BestGlobalTime()
	}
	return topo.Places()[id]
}

// score returns the search objective for one place; zero-valued (never
// measured) entries score 0 and therefore always win, implementing the
// "initialize to zero to force exploration" rule.
func score(t *ptt.Table, pl topology.Place, obj Objective) float64 {
	v := t.Value(pl)
	if obj == MinCost {
		return v * float64(pl.Width)
	}
	return v
}

// The seven schedulers of Table 1.

// RWS is random work stealing: no priority handling, no model, width 1.
func RWS() Policy {
	return &policy{
		name: "RWS", stealHigh: true,
		features: Features{Asymmetry: "N/A", Mold: "N/A", Placement: "N/A"},
	}
}

// RWSMC is RWS plus moldability targeting resource cost; it maintains a PTT
// to select widths but ignores priority.
func RWSMC() Policy {
	return &policy{
		name: "RWSM-C", usesPTT: true, stealHigh: true, lowSearch: true,
		features: Features{Asymmetry: "N/A", Mold: "Yes", Placement: "Resource Cost"},
	}
}

// FA is the fixed-asymmetry criticality scheduler: high-priority tasks are
// pinned round-robin to the statically fastest cluster, width 1.
func FA() Policy {
	return &policy{
		name: "FA", high: highFastRR,
		features: Features{Asymmetry: "Fixed", Mold: "No", Placement: "Fast cores"},
	}
}

// FAMC is FA plus moldability targeting resource cost.
func FAMC() Policy {
	return &policy{
		name: "FAM-C", usesPTT: true, lowSearch: true, high: highFastRR, highMold: true,
		features: Features{Asymmetry: "Fixed", Mold: "Yes", Placement: "Resource Cost"},
	}
}

// DA is the dynamic asymmetry scheduler without moldability: critical tasks
// go to the globally fastest single core according to the PTT.
func DA() Policy {
	return &policy{
		name: "DA", usesPTT: true, high: highGlobal, highObj: MinTime, highWOne: true,
		features: Features{Asymmetry: "Dynamic", Mold: "No", Placement: "N/A"},
	}
}

// DAMC is the dynamic asymmetry scheduler with moldability targeting
// parallel cost (Algorithm 1, DAM-C branch).
func DAMC() Policy {
	return &policy{
		name: "DAM-C", usesPTT: true, lowSearch: true, high: highGlobal, highObj: MinCost,
		features: Features{Asymmetry: "Dynamic", Mold: "Yes", Placement: "Resource Cost"},
	}
}

// DAMP is the dynamic asymmetry scheduler with moldability whose critical
// tasks target best parallel performance (Algorithm 1, DAM-P branch).
func DAMP() Policy {
	return &policy{
		name: "DAM-P", usesPTT: true, lowSearch: true, high: highGlobal, highObj: MinTime,
		features: Features{Asymmetry: "Dynamic", Mold: "Yes", Placement: "Performance"},
	}
}

// All returns the seven policies in the paper's Table 1 order.
func All() []Policy {
	return []Policy{RWS(), RWSMC(), FA(), FAMC(), DA(), DAMC(), DAMP()}
}

// ByName returns the policy with the given (case-sensitive) paper name.
func ByName(name string) (Policy, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	if p, ok := extraByName(name); ok {
		return p, nil
	}
	return nil, fmt.Errorf("core: unknown policy %q", name)
}

// FeaturesOf returns the Table 1 feature row for a built-in policy.
func FeaturesOf(p Policy) Features {
	if pp, ok := p.(*policy); ok {
		return pp.features
	}
	return Features{Asymmetry: "?", Mold: "?", Placement: "?"}
}
