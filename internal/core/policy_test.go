package core

import (
	"sync/atomic"
	"testing"

	"dynasym/internal/ptt"
	"dynasym/internal/topology"
	"dynasym/internal/xrand"
)

// trainedTable fills a TX2 PTT with synthetic measurements: core 0 slow
// (interfered Denver), core 1 fast, A57 cores middling, wide places per a
// simple width model.
func trainedTable(topo *topology.Platform) *ptt.Table {
	tbl := ptt.NewTable(topo, 1) // alpha 1: store values directly
	values := map[topology.Place]float64{
		{Leader: 0, Width: 1}: 2.0,
		{Leader: 1, Width: 1}: 1.0,
		{Leader: 0, Width: 2}: 1.8,
		{Leader: 2, Width: 1}: 4.0,
		{Leader: 3, Width: 1}: 4.0,
		{Leader: 4, Width: 1}: 4.0,
		{Leader: 5, Width: 1}: 4.0,
		{Leader: 2, Width: 2}: 2.4,
		{Leader: 4, Width: 2}: 2.4,
		{Leader: 2, Width: 4}: 1.5,
	}
	for pl, v := range values {
		tbl.Update(pl, v)
	}
	return tbl
}

func ctxFor(topo *topology.Platform, tbl *ptt.Table, self int, high bool) *Context {
	return &Context{
		Self:  self,
		High:  high,
		Type:  0,
		Table: tbl,
		Topo:  topo,
		Rand:  xrand.New(1),
		RR:    &atomic.Uint64{},
	}
}

func TestRWSDispatchIsSelfWidth1(t *testing.T) {
	topo := topology.TX2()
	p := RWS()
	for _, self := range []int{0, 3, 5} {
		pl := p.DispatchPlace(ctxFor(topo, nil, self, true))
		if pl.Leader != self || pl.Width != 1 {
			t.Fatalf("RWS dispatch from %d = %v", self, pl)
		}
	}
	if _, ok := p.WakePlace(ctxFor(topo, nil, 2, true)); ok {
		t.Fatal("RWS should have no wake preference")
	}
	if !p.AllowPrioritySteal() || p.UsesPTT() || p.Moldable() {
		t.Fatal("RWS feature flags wrong")
	}
}

func TestRWSMCLocalSearch(t *testing.T) {
	topo := topology.TX2()
	tbl := trainedTable(topo)
	p := RWSMC()
	// At A57 core 3: options (3,1)=4.0 cost 4, (2,2)=2.4 cost 4.8,
	// (2,4)=1.5 cost 6 — width 1 wins on cost.
	pl := p.DispatchPlace(ctxFor(topo, tbl, 3, false))
	if pl != (topology.Place{Leader: 3, Width: 1}) {
		t.Fatalf("RWSM-C local search = %v", pl)
	}
	if !p.AllowPrioritySteal() {
		t.Fatal("RWSM-C must ignore priority for stealing")
	}
}

func TestLocalSearchPrefersCheaperWidth(t *testing.T) {
	topo := topology.TX2()
	tbl := ptt.NewTable(topo, 1)
	// Superlinear speedup: width 4 is 6× faster → cost 4×(4/6) < 4.
	tbl.Update(topology.Place{Leader: 2, Width: 1}, 4.0)
	tbl.Update(topology.Place{Leader: 3, Width: 1}, 4.0)
	tbl.Update(topology.Place{Leader: 2, Width: 2}, 2.2)
	tbl.Update(topology.Place{Leader: 2, Width: 4}, 0.66)
	p := RWSMC()
	pl := p.DispatchPlace(ctxFor(topo, tbl, 3, false))
	if pl != (topology.Place{Leader: 2, Width: 4}) {
		t.Fatalf("local search missed superlinear width: %v", pl)
	}
}

func TestFARoundRobinOverFastCluster(t *testing.T) {
	topo := topology.TX2()
	p := FA()
	ctx := ctxFor(topo, nil, 4, true)
	seen := map[int]int{}
	for i := 0; i < 10; i++ {
		leader, ok := p.WakePlace(ctx)
		if !ok {
			t.Fatal("FA must route high tasks")
		}
		seen[leader]++
	}
	if seen[0] != 5 || seen[1] != 5 {
		t.Fatalf("FA distribution over Denver cores = %v, want 5/5", seen)
	}
	// Low tasks stay put.
	if _, ok := p.WakePlace(ctxFor(topo, nil, 4, false)); ok {
		t.Fatal("FA must not route low tasks")
	}
	// Dispatch at the fast core is width 1.
	pl := p.DispatchPlace(ctxFor(topo, nil, 0, true))
	if pl != (topology.Place{Leader: 0, Width: 1}) {
		t.Fatalf("FA dispatch = %v", pl)
	}
}

func TestFAMCMoldsAtFastCore(t *testing.T) {
	topo := topology.TX2()
	tbl := ptt.NewTable(topo, 1)
	// Make (0,2) the cheapest option at core 0: 0.9×2 < 2.0×1.
	tbl.Update(topology.Place{Leader: 0, Width: 1}, 2.0)
	tbl.Update(topology.Place{Leader: 0, Width: 2}, 0.9)
	tbl.Update(topology.Place{Leader: 1, Width: 1}, 1.0)
	p := FAMC()
	pl := p.DispatchPlace(ctxFor(topo, tbl, 0, true))
	if pl != (topology.Place{Leader: 0, Width: 2}) {
		t.Fatalf("FAM-C high dispatch = %v, want (C0,2)", pl)
	}
}

func TestDAGlobalMinTimeWidthOne(t *testing.T) {
	topo := topology.TX2()
	tbl := trainedTable(topo)
	p := DA()
	// Global width-1 minimum is core 1 (1.0) even though (2,4) has the
	// lowest time overall — DA cannot mold.
	pl := p.DispatchPlace(ctxFor(topo, tbl, 4, true))
	if pl != (topology.Place{Leader: 1, Width: 1}) {
		t.Fatalf("DA high dispatch = %v, want (C1,1)", pl)
	}
	leader, ok := p.WakePlace(ctxFor(topo, tbl, 4, true))
	if !ok || leader != 1 {
		t.Fatalf("DA wake = %d,%v", leader, ok)
	}
	// Low tasks: width 1, stay local.
	pl = p.DispatchPlace(ctxFor(topo, tbl, 4, false))
	if pl != (topology.Place{Leader: 4, Width: 1}) {
		t.Fatalf("DA low dispatch = %v", pl)
	}
	if p.Moldable() {
		t.Fatal("DA must not be moldable")
	}
}

func TestDAMCMinCostVsDAMPMinTime(t *testing.T) {
	topo := topology.TX2()
	tbl := trainedTable(topo)
	// Costs: (1,1)=1.0; (2,4)=1.5×4=6.0. Times: (2,4)=1.5 > (1,1)=1.0.
	damc := DAMC().DispatchPlace(ctxFor(topo, tbl, 4, true))
	if damc != (topology.Place{Leader: 1, Width: 1}) {
		t.Fatalf("DAM-C high = %v, want (C1,1)", damc)
	}
	// Make the wide place the fastest.
	tbl.Update(topology.Place{Leader: 2, Width: 4}, 0.5)
	damp := DAMP().DispatchPlace(ctxFor(topo, tbl, 4, true))
	if damp != (topology.Place{Leader: 2, Width: 4}) {
		t.Fatalf("DAM-P high = %v, want (C2,4)", damp)
	}
	// DAM-C still prefers the cheap narrow place (cost 2.0 vs 1.0).
	damc = DAMC().DispatchPlace(ctxFor(topo, tbl, 4, true))
	if damc != (topology.Place{Leader: 1, Width: 1}) {
		t.Fatalf("DAM-C after update = %v, want (C1,1)", damc)
	}
}

func TestZeroEntryExploration(t *testing.T) {
	topo := topology.TX2()
	tbl := ptt.NewTable(topo, 0) // empty: everything unexplored
	pl := DAMC().DispatchPlace(ctxFor(topo, tbl, 4, true))
	// With all entries zero the first place in platform order wins.
	if pl != topo.Places()[0] {
		t.Fatalf("exploration pick = %v, want first place %v", pl, topo.Places()[0])
	}
	// After measuring every place but one, the remaining zero entry wins.
	for _, p := range topo.Places() {
		if p != (topology.Place{Leader: 4, Width: 2}) {
			tbl.Update(p, 1.0)
		}
	}
	pl = DAMC().DispatchPlace(ctxFor(topo, tbl, 4, true))
	if pl != (topology.Place{Leader: 4, Width: 2}) {
		t.Fatalf("unexplored place not chosen: %v", pl)
	}
}

func TestPriorityStealFlags(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want bool
	}{
		{RWS(), true}, {RWSMC(), true},
		{FA(), false}, {FAMC(), false},
		{DA(), false}, {DAMC(), false}, {DAMP(), false},
	} {
		if tc.p.AllowPrioritySteal() != tc.want {
			t.Errorf("%s AllowPrioritySteal = %v, want %v", tc.p.Name(), tc.p.AllowPrioritySteal(), tc.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"RWS", "RWSM-C", "FA", "FAM-C", "DA", "DAM-C", "DAM-P", "dHEFT"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestAllOrder(t *testing.T) {
	want := []string{"RWS", "RWSM-C", "FA", "FAM-C", "DA", "DAM-C", "DAM-P"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() returned %d policies", len(got))
	}
	for i, p := range got {
		if p.Name() != want[i] {
			t.Fatalf("All()[%d] = %s, want %s", i, p.Name(), want[i])
		}
	}
}

func TestDHEFTUsesLoad(t *testing.T) {
	topo := topology.TX2()
	tbl := ptt.NewTable(topo, 1)
	for _, pl := range topo.Places() {
		if pl.Width == 1 {
			tbl.Update(pl, 1.0)
		}
	}
	busy := map[int]float64{1: 5.0} // core 1 heavily loaded
	ctx := ctxFor(topo, tbl, 3, true)
	ctx.Load = func(c int) float64 { return busy[c] }
	pl := DHEFT().DispatchPlace(ctx)
	if pl.Leader == 1 {
		t.Fatal("dHEFT chose the loaded core")
	}
	if pl.Width != 1 {
		t.Fatalf("dHEFT width = %d", pl.Width)
	}
}

func TestFeaturesTable(t *testing.T) {
	f := FeaturesOf(DAMP())
	if f.Asymmetry != "Dynamic" || f.Mold != "Yes" || f.Placement != "Performance" {
		t.Fatalf("DAM-P features = %+v", f)
	}
}

func BenchmarkGlobalSearch(b *testing.B) {
	topo := topology.HaswellClusterN(1)
	tbl := ptt.NewTable(topo, 0)
	for _, pl := range topo.Places() {
		tbl.Update(pl, 1.0)
	}
	ctx := ctxFor(topo, tbl, 3, true)
	p := DAMC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.DispatchPlace(ctx)
	}
}

func BenchmarkLocalSearch(b *testing.B) {
	topo := topology.TX2()
	tbl := trainedTable(topo)
	ctx := ctxFor(topo, tbl, 3, false)
	p := DAMC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.DispatchPlace(ctx)
	}
}
