package core

import "dynasym/internal/topology"

// Sampled wraps a dynamic-asymmetry policy and replaces its exhaustive
// global PTT search with a sampled one: each decision scans the task's
// home cluster's places plus K pseudo-random other places and the
// best-known place so far. The paper measures ~1 µs for a full-table scan
// on the 6-core TX2 and explicitly leaves "the design and evaluation of
// scalable performance prediction models" as future work; this is that
// extension — O(K) decisions on many-core platforms at a small placement
// quality cost (quantified by BenchmarkSampledSearch).
type Sampled struct {
	Policy
	// K is the number of random candidate places per decision (≥1).
	K int
}

// NewSampled wraps a policy; k ≤ 0 defaults to 8.
func NewSampled(p Policy, k int) Sampled {
	if k <= 0 {
		k = 8
	}
	return Sampled{Policy: p, K: k}
}

// Name labels the wrapper.
func (s Sampled) Name() string { return s.Policy.Name() + "~" + itoa(s.K) }

// WakePlace mirrors DispatchPlace for high-priority tasks.
func (s Sampled) WakePlace(ctx *Context) (int, bool) {
	if !ctx.High {
		return s.Policy.WakePlace(ctx)
	}
	pl := s.DispatchPlace(ctx)
	return pl.Leader, true
}

// DispatchPlace performs the sampled global search for high-priority tasks
// and defers to the wrapped policy otherwise. The objective matches the
// wrapped policy's: min cost for DAM-C-like policies, min time for
// DAM-P-like ones, inferred from the wrapped policy's own decision on a
// two-place comparison is not possible generically, so Sampled keeps the
// paper's cost objective unless the wrapped policy is DAM-P.
func (s Sampled) DispatchPlace(ctx *Context) topology.Place {
	if !ctx.High || ctx.Table == nil {
		return s.Policy.DispatchPlace(ctx)
	}
	minCost := s.Policy.Name() != "DAM-P"
	t := ctx.Table
	places := ctx.Topo.Places()
	// Candidate set: local cluster places + K random samples, compared by
	// dense place id (a place's index in Places is its id) so each probe is
	// one table load. Unmeasured candidates keep the exploration property
	// within the sample.
	scoreID := func(id int) float64 {
		v := t.ValueByID(id)
		if minCost {
			v *= float64(places[id].Width)
		}
		return v
	}
	local := ctx.Topo.LocalPlaceIDs(ctx.Self)
	bestID := int(local[0]) // widths ascend, so entry 0 is (Self, 1)
	bestScore := scoreID(bestID)
	for _, cid := range local[1:] {
		if sc := scoreID(int(cid)); sc < bestScore {
			bestID, bestScore = int(cid), sc
		}
	}
	for i := 0; i < s.K; i++ {
		if id := ctx.Rand.Intn(len(places)); scoreID(id) < bestScore {
			bestID = id
			bestScore = scoreID(id)
		}
	}
	return places[bestID]
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
