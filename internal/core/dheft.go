package core

import (
	"strconv"
	"strings"

	"dynasym/internal/topology"
)

// dheft implements a dynamic Heterogeneous-Earliest-Finish-Time baseline in
// the spirit of Chronaki et al.'s dHEFT (used by the paper's related work
// as the reference for CATS): every task — regardless of priority — is
// placed on the single core that minimizes its estimated finish time,
// where task run times are discovered online through the PTT rather than
// known in advance.
//
// Estimated finish time for core c is
//
//	EFT(c) = load(c) + PTT(c, 1)
//
// with load(c) supplied by the runtime (earliest time core c can start new
// work, 0 when unknown). Unmeasured cores are explored first, like every
// PTT search in this package. dHEFT is not part of the paper's Table 1; it
// exists as an extension baseline for the ablation experiments.
type dheft struct{}

func (dheft) Name() string             { return "dHEFT" }
func (dheft) UsesPTT() bool            { return true }
func (dheft) AllowPrioritySteal() bool { return false }
func (dheft) Moldable() bool           { return false }

// WakePlace routes every task to its earliest-finishing core.
func (d dheft) WakePlace(ctx *Context) (int, bool) {
	pl := d.DispatchPlace(ctx)
	return pl.Leader, true
}

// DispatchPlace scans width-1 places minimizing load + predicted time.
func (dheft) DispatchPlace(ctx *Context) topology.Place {
	best := topology.Place{Leader: ctx.Self, Width: 1}
	bestScore := -1.0
	for _, pl := range ctx.Topo.Places() {
		if pl.Width != 1 {
			continue
		}
		v := ctx.Table.Value(pl)
		if v == 0 {
			// Unmeasured: explore immediately.
			return pl
		}
		s := v
		if ctx.Load != nil {
			s += ctx.Load(pl.Leader)
		}
		if bestScore < 0 || s < bestScore {
			best, bestScore = pl, s
		}
	}
	return best
}

// DHEFT returns the dHEFT baseline policy.
func DHEFT() Policy { return dheft{} }

func extraByName(name string) (Policy, bool) {
	if name == "dHEFT" {
		return DHEFT(), true
	}
	// "<base>~<K>" selects the sampled O(K) search wrapper, e.g. "DAM-C~8".
	if i := strings.LastIndex(name, "~"); i > 0 {
		k, err := strconv.Atoi(name[i+1:])
		if err != nil || k < 1 {
			return nil, false
		}
		base, err := ByName(name[:i])
		if err != nil {
			return nil, false
		}
		return NewSampled(base, k), true
	}
	return nil, false
}
