package machine

import (
	"math"
	"testing"

	"dynasym/internal/profile"
	"dynasym/internal/topology"
)

func newTX2() (*topology.Platform, *Model) {
	topo := topology.TX2()
	m := New(topo)
	m.JitterRel = 0 // deterministic durations in tests
	return topo, m
}

func TestComputeBoundScaling(t *testing.T) {
	topo, m := newTX2()
	_ = topo
	c := Cost{Ops: 2.035e9} // exactly one second on a speed-1 core at base clock
	d := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	if math.Abs(d-1.0) > 0.01 {
		t.Fatalf("A57 compute duration %g, want ~1.0", d)
	}
	// The Denver core is 4× faster.
	dd := m.Duration(c, topology.Place{Leader: 0, Width: 1}, 0, NoJitter)
	if math.Abs(dd-0.25) > 0.01 {
		t.Fatalf("Denver duration %g, want ~0.25", dd)
	}
}

func TestWidthPenalty(t *testing.T) {
	_, m := newTX2()
	c := Cost{Ops: 2.035e9, WidthPenalty: 0.5}
	w1 := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	w4 := m.Duration(c, topology.Place{Leader: 2, Width: 4}, 0, NoJitter)
	// Ideal would be w1/4; the penalty multiplies by 1+0.5×3 = 2.5.
	want := w1 / 4 * 2.5
	if math.Abs(w4-want) > 0.02*want {
		t.Fatalf("width-4 duration %g, want ~%g", w4, want)
	}
}

func TestAvailabilityHalvesSpeed(t *testing.T) {
	_, m := newTX2()
	m.SetCoreAvail(0, profile.Constant(0.5))
	c := Cost{Ops: 2.035e9}
	full := m.Duration(c, topology.Place{Leader: 1, Width: 1}, 0, NoJitter)
	half := m.Duration(c, topology.Place{Leader: 0, Width: 1}, 0, NoJitter)
	if math.Abs(half/full-2.0) > 0.02 {
		t.Fatalf("time-shared core ratio %g, want ~2", half/full)
	}
}

func TestStragglerDominatesAssembly(t *testing.T) {
	_, m := newTX2()
	m.SetCoreAvail(0, profile.Constant(0.5))
	c := Cost{Ops: 2.035e9}
	// Width-2 place including the interfered core 0: the slow member
	// bounds completion.
	d2 := m.Duration(c, topology.Place{Leader: 0, Width: 2}, 0, NoJitter)
	slowAlone := m.Duration(Cost{Ops: c.Ops / 2}, topology.Place{Leader: 0, Width: 1}, 0, NoJitter)
	if d2 < slowAlone*0.99 {
		t.Fatalf("assembly %g finished before its slowest member %g", d2, slowAlone)
	}
}

func TestMemoryBound(t *testing.T) {
	_, m := newTX2()
	// Pure streaming: 16 MB against the per-core share of 30 GB/s / 6.
	c := Cost{Ops: 1, Bytes: 16e6}
	d := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	want := 16e6 / (30e9 / 6)
	if math.Abs(d-want) > 0.05*want {
		t.Fatalf("streaming duration %g, want ~%g", d, want)
	}
	// Width 4 gets 4 shares.
	d4 := m.Duration(c, topology.Place{Leader: 2, Width: 4}, 0, NoJitter)
	if math.Abs(d4-want/4) > 0.1*want/4 {
		t.Fatalf("width-4 streaming %g, want ~%g", d4, want/4)
	}
}

func TestCacheFitDiscountsTraffic(t *testing.T) {
	_, m := newTX2()
	small := Cost{Ops: 1, Bytes: 16e6, WorkingSet: 16 << 10} // fits L1
	big := Cost{Ops: 1, Bytes: 16e6, WorkingSet: 64 << 20}   // fits nothing
	ds := m.Duration(small, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	db := m.Duration(big, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	if ds >= db {
		t.Fatalf("L1-resident %g not faster than DRAM-bound %g", ds, db)
	}
	ratio := db / ds
	if math.Abs(ratio-1/m.L1MissFactor) > 0.4/m.L1MissFactor {
		t.Fatalf("miss-factor ratio %g, want ~%g", ratio, 1/m.L1MissFactor)
	}
}

func TestSharedBytesReplicatePerMember(t *testing.T) {
	_, m := newTX2()
	c := Cost{Ops: 1, SharedBytes: 8e6}
	w1 := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	w4 := m.Duration(c, topology.Place{Leader: 2, Width: 4}, 0, NoJitter)
	// Replicated traffic does not shrink with width; with per-member
	// bandwidth shares equal, duration stays roughly constant.
	if w4 < 0.9*w1 {
		t.Fatalf("replicated traffic sped up with width: w1=%g w4=%g", w1, w4)
	}
}

func TestDVFSSlowdownMidTask(t *testing.T) {
	_, m := newTX2()
	// Clock drops to half speed at t=1.
	m.SetClusterFreq(0, profile.MustSteps(
		profile.Segment{Start: 0, Value: 2.035e9},
		profile.Segment{Start: 1, Value: 2.035e9 / 2},
	))
	// Two seconds of work at full speed on Denver (speed 4): Ops for 2s
	// = 4 × 2.035e9 × 2.
	c := Cost{Ops: 4 * 2.035e9 * 2}
	d := m.Duration(c, topology.Place{Leader: 0, Width: 1}, 0, NoJitter)
	// First second does half the work; the rest takes 2 more seconds.
	if math.Abs(d-3.0) > 0.01 {
		t.Fatalf("DVFS mid-task duration %g, want ~3.0", d)
	}
}

func TestOverheadAndJitterAdd(t *testing.T) {
	_, m := newTX2()
	m.Overhead = 1e-3
	c := Cost{Ops: 2.035e9}
	base := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	noisy := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, Jitter{Mul: 1, Add: 0.5})
	if math.Abs(noisy-base-0.5) > 1e-9 {
		t.Fatalf("additive jitter: %g - %g != 0.5", noisy, base)
	}
	mul := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, Jitter{Mul: 2})
	if mul < 1.9*(base-m.Overhead) {
		t.Fatalf("multiplicative jitter: %g vs base %g", mul, base)
	}
}

func TestStartOffset(t *testing.T) {
	_, m := newTX2()
	c := Cost{Ops: 2.035e9}
	d0 := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	d5 := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 5, NoJitter)
	if math.Abs((d5-5)-d0) > 1e-9 {
		t.Fatalf("start offset broke duration: %g vs %g", d5-5, d0)
	}
}

func TestAmdahlSerialFraction(t *testing.T) {
	_, m := newTX2()
	c := Cost{Ops: 2.035e9, ParallelFraction: 0.5}
	w1 := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	w4 := m.Duration(c, topology.Place{Leader: 2, Width: 4}, 0, NoJitter)
	// Amdahl: 0.5 + 0.5/4 = 0.625 of serial time.
	want := w1 * 0.625
	if math.Abs(w4-want) > 0.05*want {
		t.Fatalf("Amdahl width-4 %g, want ~%g", w4, want)
	}
}

func TestInvalidPlacePanics(t *testing.T) {
	_, m := newTX2()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid place did not panic")
		}
	}()
	m.Duration(Cost{Ops: 1}, topology.Place{Leader: 1, Width: 2}, 0, NoJitter)
}

func TestZeroJitterPanics(t *testing.T) {
	_, m := newTX2()
	defer func() {
		if recover() == nil {
			t.Fatal("zero jitter did not panic")
		}
	}()
	m.Duration(Cost{Ops: 1}, topology.Place{Leader: 0, Width: 1}, 0, Jitter{})
}

func TestBandwidthFrequencyCap(t *testing.T) {
	_, m := newTX2()
	// At 345 MHz the per-core bandwidth cap (2.5 B/cycle) binds:
	// 2.5 × 345e6 ≈ 0.86 GB/s < the 5 GB/s share.
	m.SetClusterFreq(1, profile.Constant(345e6))
	c := Cost{Ops: 1, Bytes: 1e9}
	d := m.Duration(c, topology.Place{Leader: 2, Width: 1}, 0, NoJitter)
	want := 1e9 / (2.5 * 345e6)
	if math.Abs(d-want) > 0.05*want {
		t.Fatalf("low-frequency streaming %g, want ~%g", d, want)
	}
}

func BenchmarkDurationConstant(b *testing.B) {
	_, m := newTX2()
	c := Cost{Ops: 1e6, Bytes: 1e5, WorkingSet: 1e5}
	pl := topology.Place{Leader: 2, Width: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Duration(c, pl, 0, NoJitter)
	}
}

func BenchmarkDurationDVFS(b *testing.B) {
	_, m := newTX2()
	m.SetClusterFreq(0, profile.SquareWave(2.035e9, 345e6, 5, 5))
	c := Cost{Ops: 1e6}
	pl := topology.Place{Leader: 0, Width: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Duration(c, pl, float64(i%10), NoJitter)
	}
}
