// Package machine models the performance of the simulated platform.
//
// It substitutes for the paper's evaluation hardware (Jetson TX2, Haswell
// nodes): given a task's cost descriptor, an execution place, and the
// platform's time-varying condition (DVFS frequency profiles per cluster,
// availability profiles per core for co-runner time-sharing, memory
// bandwidth profiles per cluster for streaming interference), it computes
// when the task finishes.
//
// The model is a piecewise roofline: each member core of a place processes
// its share of the task's compute operations at
//
//	rate(t) = clusterSpeed × freq(t) × availability(t)   [ops/s]
//
// and its share of DRAM traffic at the core's share of the cluster's
// bandwidth profile. The member finishes at the later of its compute and
// memory completion; the task finishes when the slowest member does, plus a
// width-dependent synchronization overhead. Cache fit discounts DRAM
// traffic: working sets that fit in L1/L2 stream far fewer bytes.
//
// # Composed-profile cache
//
// Duration is the simulator's hottest call, so the Model precomputes, per
// core, the two composed profiles every prediction needs:
//
//	rate(t) = clusterSpeed × freq(t) × avail(t)                  [ops/s]
//	bw(t)   = min(membw(t)/clusterCores, BytesPerCycle×freq(t))
//	          × avail(t)                                         [bytes/s]
//
// Invalidation rules: SetClusterFreq and SetClusterBandwidth rebuild the
// cache entries of every core in the cluster; SetCoreAvail rebuilds the one
// core. The BytesPerCycle field is also folded into bw(t); because it is a
// plain exported field, Duration additionally compares it against the value
// the cache was built with and rebuilds everything when it changed. All
// other tunables (Overhead, JitterRel, TimerRes, miss factors) are scalars
// read directly on each call and need no invalidation. Configure the model
// (Set*, field writes) strictly before sharing it between goroutines: the
// rebuilds mutate the cache, and only a fully configured Model is safe for
// concurrent readers.
package machine

import (
	"fmt"
	"math"
	"math/bits"

	"dynasym/internal/profile"
	"dynasym/internal/topology"
)

// Cost describes the resource demands of one task for the simulator. It is
// the analytic counterpart of the real kernels in internal/kernels.
type Cost struct {
	// Ops is the abstract compute work: cycles consumed on a core of
	// speed 1.0 at availability 1.0 per Hz of clock. A kernel doing F
	// floating point operations at a sustained rate of ipc operations
	// per cycle has Ops = F / ipc.
	Ops float64
	// Bytes is the DRAM traffic that splits across the members of a
	// moldable place (each member streams its own partition).
	Bytes float64
	// SharedBytes is DRAM traffic replicated per member regardless of
	// width (e.g. every member of a row-partitioned matmul streams the
	// whole B tile). It is what makes narrow tasks cheaper per byte.
	SharedBytes float64
	// WorkingSet is the number of bytes the task touches repeatedly; it
	// determines cache fit. Zero means streaming (cache cannot help).
	WorkingSet float64
	// SyncSeconds is the per-barrier cost of coordinating one extra core;
	// total sync overhead for width w is SyncSeconds × log2ceil(w).
	SyncSeconds float64
	// WidthPenalty is the relative parallelization inefficiency β: the
	// per-member compute time is multiplied by 1+β(w−1), modeling
	// partition imbalance, coherence traffic and shared-resource stalls.
	// Small tasks have large β (splitting a 64×64 matmul across four
	// cores hardly pays), streaming kernels small β.
	WidthPenalty float64
	// ParallelFraction is the fraction of Ops that parallelizes across
	// the place's cores (Amdahl). 1.0 if fully parallel; the default 0
	// is treated as 1.0.
	ParallelFraction float64
}

// Model holds the platform's time-varying condition. Build with New, then
// override profiles for interference scenarios. A Model is safe for
// concurrent readers once configured.
type Model struct {
	topo *topology.Platform
	// freq[cluster] is the clock in Hz over time.
	freq []*profile.Profile
	// avail[core] is the fraction of the core's cycles available to the
	// runtime (1.0 = exclusive, 0.5 = time-shared with one co-runner).
	avail []*profile.Profile
	// membw[cluster] is the DRAM bandwidth available to the runtime on
	// that cluster, bytes/s.
	membw []*profile.Profile

	// Overhead is the fixed per-task runtime cost (dequeue, place
	// decision, AQ insertion) added to every task duration, in seconds.
	// The paper reports ~1 µs for the PTT search on the TX2.
	Overhead float64
	// JitterRel is the relative standard deviation of multiplicative
	// duration noise the runtime draws per execution.
	JitterRel float64
	// TimerRes is the standard deviation of the additive measurement
	// noise on every execution (clock granularity, cache state, branch
	// warm-up), in seconds. Short tasks are proportionally noisier —
	// the effect behind the paper's tile-size sensitivity (Figure 8).
	TimerRes float64
	// BytesPerCycle caps one core's achievable DRAM bandwidth at
	// BytesPerCycle × freq(t): at low DVFS frequencies even streaming
	// kernels slow down because the core cannot issue enough outstanding
	// misses. Zero disables the cap.
	BytesPerCycle float64

	// L1MissFactor, L2MissFactor, MemMissFactor scale Cost.Bytes when the
	// per-core working-set share fits L1, fits L2, or fits nothing.
	L1MissFactor  float64
	L2MissFactor  float64
	MemMissFactor float64

	// rates caches the composed per-core profiles Duration consumes (see
	// the package comment for the cache-invalidation rules). ratesBPC is
	// the BytesPerCycle value the cache was built with.
	rates    []memberRates
	ratesBPC float64
}

// memberRates holds one core's precomposed rate profiles. For constant
// profiles the value is additionally denormalized into rateConst/bwConst
// (0 when the profile varies), letting Duration's member loop use the
// closed-form completion time — bit-identical to Profile.TimeToDo's
// constant fast path — without any calls.
type memberRates struct {
	// rate is clusterSpeed × freq(t) × avail(t) in ops/s.
	rate *profile.Profile
	// bw is the core's achievable DRAM bandwidth in bytes/s: its share of
	// the cluster bandwidth profile, capped by the frequency-dependent
	// per-core streaming limit, times availability.
	bw        *profile.Profile
	rateConst float64
	bwConst   float64
}

// Jitter carries the per-execution noise drawn by the runtime: a
// multiplicative factor on the work and an additive delay (operating-system
// preemptions, timer interrupts) in seconds. The zero value must not be
// used; NoJitter is the identity.
type Jitter struct {
	Mul float64
	Add float64
}

// NoJitter is the identity noise.
var NoJitter = Jitter{Mul: 1}

// New builds a Model with constant profiles taken from the platform
// description (nominal frequency, full availability, full bandwidth).
func New(topo *topology.Platform) *Model {
	m := &Model{
		topo:          topo,
		freq:          make([]*profile.Profile, topo.NumClusters()),
		avail:         make([]*profile.Profile, topo.NumCores()),
		membw:         make([]*profile.Profile, topo.NumClusters()),
		Overhead:      1e-6,
		JitterRel:     0.02,
		TimerRes:      40e-6,
		BytesPerCycle: 2.5,
		L1MissFactor:  0.05,
		L2MissFactor:  0.30,
		MemMissFactor: 1.0,
	}
	for i := 0; i < topo.NumClusters(); i++ {
		c := topo.Cluster(i)
		m.freq[i] = profile.Constant(c.BaseHz)
		m.membw[i] = profile.Constant(c.MemBandwidth)
	}
	for i := 0; i < topo.NumCores(); i++ {
		m.avail[i] = profile.Constant(1.0)
	}
	m.rebuildRates()
	return m
}

// rebuildRates recomposes the cached profiles of every core.
func (m *Model) rebuildRates() {
	if m.rates == nil {
		m.rates = make([]memberRates, m.topo.NumCores())
	}
	m.ratesBPC = m.BytesPerCycle
	for core := range m.rates {
		m.rebuildCore(core)
	}
}

// rebuildCore recomposes one core's cached profiles from the current freq,
// avail and bandwidth profiles.
func (m *Model) rebuildCore(core int) {
	ci := m.topo.ClusterOf(core)
	cl := m.topo.Cluster(ci)
	bwShare := m.membw[ci].Scale(1.0 / float64(cl.NumCores))
	if m.BytesPerCycle > 0 {
		bwShare = profile.Min2(bwShare, m.freq[ci].Scale(m.BytesPerCycle))
	}
	r := memberRates{
		rate: profile.Mul(m.freq[ci], m.avail[core]).Scale(cl.Speed),
		bw:   profile.Mul(bwShare, m.avail[core]),
	}
	if r.rate.IsConstant() {
		r.rateConst = r.rate.At(0)
	}
	if r.bw.IsConstant() {
		r.bwConst = r.bw.At(0)
	}
	m.rates[core] = r
}

// rebuildCluster recomposes the cached profiles of every core in a cluster.
func (m *Model) rebuildCluster(ci int) {
	for _, core := range m.topo.CoresOf(ci) {
		m.rebuildCore(core)
	}
}

// Platform returns the platform the model describes.
func (m *Model) Platform() *topology.Platform { return m.topo }

// SetClusterFreq overrides the clock profile (Hz) of cluster ci and
// rebuilds the cluster's cached rate and bandwidth profiles.
func (m *Model) SetClusterFreq(ci int, p *profile.Profile) {
	m.freq[ci] = p
	m.rebuildCluster(ci)
}

// SetCoreAvail overrides the availability profile (0..1) of a core and
// rebuilds that core's cached profiles.
func (m *Model) SetCoreAvail(core int, p *profile.Profile) {
	m.avail[core] = p
	m.rebuildCore(core)
}

// SetClusterBandwidth overrides the memory bandwidth profile (bytes/s) of
// cluster ci and rebuilds the cluster's cached bandwidth profiles.
func (m *Model) SetClusterBandwidth(ci int, p *profile.Profile) {
	m.membw[ci] = p
	m.rebuildCluster(ci)
}

// ClusterFreq returns the clock profile of cluster ci.
func (m *Model) ClusterFreq(ci int) *profile.Profile { return m.freq[ci] }

// CoreAvail returns the availability profile of a core.
func (m *Model) CoreAvail(core int) *profile.Profile { return m.avail[core] }

// ClusterBandwidth returns the bandwidth profile of cluster ci.
func (m *Model) ClusterBandwidth(ci int) *profile.Profile { return m.membw[ci] }

// missFactor returns the DRAM-traffic multiplier for a per-core working-set
// share on the given cluster.
func (m *Model) missFactor(wsShare float64, cl topology.Cluster, width int) float64 {
	if wsShare <= 0 {
		return m.MemMissFactor
	}
	if wsShare <= float64(cl.L1Bytes) {
		return m.L1MissFactor
	}
	// The L2 is shared: a place of width w can use the whole L2, other
	// places contend. Credit the place with its proportional share.
	l2Share := float64(cl.L2Bytes) * float64(width) / float64(cl.NumCores)
	if wsShare*float64(width) <= l2Share || wsShare <= l2Share {
		return m.L2MissFactor
	}
	return m.MemMissFactor
}

// Duration returns the finish time of a task with cost c that starts at
// time `start` on place pl, with per-execution noise j (use NoJitter for a
// noiseless prediction). The result includes the fixed runtime overhead.
// It panics if the place is invalid for the platform.
func (m *Model) Duration(c Cost, pl topology.Place, start float64, j Jitter) float64 {
	if !m.topo.Valid(pl) {
		panic(fmt.Sprintf("machine: invalid place %v", pl))
	}
	if j.Mul <= 0 {
		panic("machine: Jitter.Mul must be positive (use NoJitter)")
	}
	if m.rates == nil || m.ratesBPC != m.BytesPerCycle {
		// BytesPerCycle was written directly since the cache was built
		// (or the Model was constructed without New). Configuration-phase
		// only: see the package comment.
		m.rebuildRates()
	}
	ci := m.topo.ClusterOf(pl.Leader)
	cl := m.topo.Cluster(ci)
	w := float64(pl.Width)

	pf := c.ParallelFraction
	if pf <= 0 || pf > 1 {
		pf = 1
	}
	// Serial portion runs on the leader; parallel portion is split evenly
	// and inflated by the width penalty.
	penalty := 1 + c.WidthPenalty*(w-1)
	serialOps := c.Ops * (1 - pf)
	parOps := c.Ops * pf / w * penalty

	// Memory: per-member share of split DRAM traffic plus the replicated
	// traffic, after the cache-fit discount. Each member draws its cached
	// bw(t) profile: the place's proportional share of the cluster's
	// bandwidth, capped by what one core can stream at the current
	// frequency.
	miss := m.missFactor((c.WorkingSet/w+c.SharedBytes)*1.0, cl, pl.Width)
	memBytesPerMember := (c.Bytes/w + c.SharedBytes) * miss

	finish := start
	for i := 0; i < pl.Width; i++ {
		core := pl.Leader + i
		ops := parOps
		if i == 0 {
			ops += serialOps
		}
		r := &m.rates[core]
		var tc, tm float64
		opsWork := ops * j.Mul
		if r.rateConst > 0 {
			tc = start
			if opsWork > 0 {
				tc = start + opsWork/r.rateConst
			}
		} else {
			tc = r.rate.TimeToDo(start, opsWork)
		}
		memWork := memBytesPerMember * j.Mul
		if r.bwConst > 0 {
			tm = start
			if memWork > 0 {
				tm = start + memWork/r.bwConst
			}
		} else {
			tm = r.bw.TimeToDo(start, memWork)
		}
		t := math.Max(tc, tm)
		if t > finish {
			finish = t
		}
	}

	// Synchronization overhead grows with the tree depth of the barrier.
	sync := c.SyncSeconds * log2ceil(pl.Width)
	return finish + sync + m.Overhead + j.Add
}

// SerialDuration is Duration for a width-1 place on the given core; a
// convenience for interference co-runner chains and calibration.
func (m *Model) SerialDuration(c Cost, core int, start float64, j Jitter) float64 {
	return m.Duration(c, topology.Place{Leader: core, Width: 1}, start, j)
}

// log2ceil returns ⌈log2(w)⌉ as a float64: the barrier-tree depth of a
// width-w place. bits.Len(w-1) is the position of the highest set bit of
// w-1, which is exactly the number of doublings needed to reach or exceed w.
func log2ceil(w int) float64 {
	if w <= 1 {
		return 0
	}
	return float64(bits.Len(uint(w - 1)))
}
