package machine

import (
	"testing"

	"dynasym/internal/profile"
	"dynasym/internal/topology"
)

// Duration must be allocation-free in steady state: the composed-profile
// cache removes every per-call profile construction, and TimeToDo's cursor
// paths allocate nothing. This is the allocation-regression gate for the
// machine layer of the simulation hot path.
func TestDurationAllocFree(t *testing.T) {
	_, m := newTX2()
	c := Cost{Ops: 1e6, Bytes: 1e5, SharedBytes: 1e4, WorkingSet: 1e5, SyncSeconds: 1e-6, WidthPenalty: 0.05}
	places := []topology.Place{
		{Leader: 0, Width: 1},
		{Leader: 0, Width: 2},
		{Leader: 2, Width: 4},
	}
	m.Duration(c, places[2], 0, NoJitter) // warm the cache
	allocs := testing.AllocsPerRun(200, func() {
		for i, pl := range places {
			m.Duration(c, pl, float64(i), NoJitter)
		}
	})
	if allocs != 0 {
		t.Fatalf("Duration allocated %.1f allocs/run on constant profiles, want 0", allocs)
	}
}

// The same must hold under time-varying profiles (the periodic scan path).
func TestDurationAllocFreePeriodic(t *testing.T) {
	_, m := newTX2()
	m.SetClusterFreq(1, profile.SquareWave(2.035e9, 345e6, 5, 5))
	m.SetCoreAvail(3, profile.SquareWave(1, 0.5, 1, 1))
	c := Cost{Ops: 1e8, Bytes: 1e6}
	pl := topology.Place{Leader: 2, Width: 4}
	m.Duration(c, pl, 0, NoJitter)
	allocs := testing.AllocsPerRun(200, func() {
		m.Duration(c, pl, 2.5, NoJitter)
	})
	if allocs != 0 {
		t.Fatalf("Duration allocated %.1f allocs/run on periodic profiles, want 0", allocs)
	}
}

// Mutating BytesPerCycle directly (without a Set* call) must still be
// honored: Duration detects the stale cache and rebuilds.
func TestDurationBytesPerCycleInvalidation(t *testing.T) {
	_, m := newTX2()
	c := Cost{Ops: 0, Bytes: 1e8}
	pl := topology.Place{Leader: 0, Width: 1}
	before := m.Duration(c, pl, 0, NoJitter)
	m.BytesPerCycle = 0.001 // throttle the per-core streaming cap hard
	after := m.Duration(c, pl, 0, NoJitter)
	if after <= before {
		t.Fatalf("BytesPerCycle change ignored: %g then %g", before, after)
	}
}
