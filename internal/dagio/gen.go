package dagio

// Deterministic parametric generators for the classic task graphs the
// scheduling literature evaluates on. Every generator emits a GraphSpec
// — the same intermediate form the importers produce — so generated and
// imported graphs share validation, canonical encoding and the Build
// path into the runtime.
//
// Determinism contract: a GenConfig fully determines the emitted graph,
// bit for bit. The only randomness (random-layered structure and work
// jitter) comes from the config's own Seed through xrand, never from
// global state.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dynasym/internal/xrand"
)

// Generator models, in the order Models() reports them.
const (
	// ModelCholesky is the tiled right-looking Cholesky factorization:
	// POTRF/TRSM/SYRK/GEMM tasks over a Tiles×Tiles lower-triangular
	// tile grid, dependencies derived from block data flow.
	ModelCholesky = "cholesky"
	// ModelForkJoin is a chain of Layers fork-join segments: a light
	// fork task fans out to Width workers whose join releases the next
	// segment.
	ModelForkJoin = "fork-join"
	// ModelLU is the tiled LU factorization without pivoting:
	// GETRF/TRSM-row/TRSM-col/GEMM tasks over a Tiles×Tiles grid.
	ModelLU = "lu"
	// ModelRandomLayered is a seeded random layered DAG: Layers ×
	// Width nodes, each wired to 1..Degree predecessors in the
	// previous layer, with ±50% work jitter.
	ModelRandomLayered = "random-layered"
)

// Models lists the generator models in sorted order.
func Models() []string {
	return []string{ModelCholesky, ModelForkJoin, ModelLU, ModelRandomLayered}
}

// GenConfig parameterizes one generated graph.
type GenConfig struct {
	// Model selects the generator (see Models).
	Model string
	// Tiles is the tile-grid edge of the factorization models
	// (default 8: 120 Cholesky tasks, 204 LU tasks).
	Tiles int
	// Tile is the simulated tile edge in elements; it scales every
	// task's compute and traffic like the synthetic kernels' Tile
	// (default 64).
	Tile int
	// Layers is the number of fork-join segments or random layers
	// (default 12).
	Layers int
	// Width is the fork width / tasks per random layer (default 8).
	Width int
	// Degree caps a random-layered node's predecessors (default 3).
	Degree int
	// Seed drives the random-layered structure and work jitter.
	Seed uint64
}

// Defaults fills unset fields.
func (c GenConfig) Defaults() GenConfig {
	if c.Tiles == 0 {
		c.Tiles = 8
	}
	if c.Tile == 0 {
		c.Tile = 64
	}
	if c.Layers == 0 {
		c.Layers = 12
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Degree == 0 {
		c.Degree = 3
	}
	return c
}

// Validate checks the filled config.
func (c GenConfig) Validate() error {
	known := false
	for _, m := range Models() {
		if c.Model == m {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("dagio: unknown generator model %q (known models: %s)", c.Model, modelList())
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"tiles", c.Tiles}, {"tile", c.Tile}, {"layers", c.Layers},
		{"width", c.Width}, {"degree", c.Degree},
	} {
		if f.v < 0 {
			return fmt.Errorf("dagio: generator %s: negative %s %d", c.Model, f.name, f.v)
		}
	}
	return nil
}

func modelList() string {
	return strings.Join(Models(), ", ")
}

// Graph expands the config into its task graph. The result is already
// normalized and validated.
func (c GenConfig) Graph() (*GraphSpec, error) {
	c = c.Defaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var g *GraphSpec
	switch c.Model {
	case ModelCholesky:
		g = genCholesky(c)
	case ModelLU:
		g = genLU(c)
	case ModelForkJoin:
		g = genForkJoin(c)
	case ModelRandomLayered:
		g = genRandomLayered(c)
	}
	ng := g.Normalized()
	if err := ng.Validate(); err != nil {
		return nil, fmt.Errorf("dagio: generator %s emitted an invalid graph: %w", c.Model, err)
	}
	return ng, nil
}

// flopsPerCycle converts tile-kernel flops into machine-model ops,
// matching the calibration of the built-in synthetic kernels (scalar
// gcc code on in-order-ish mobile cores).
const flopsPerCycle = 0.086

// Tile-kernel costs in flops for tile edge t: GEMM does 2t³, TRSM and
// SYRK t³, POTRF t³/3. Traffic is 8-byte elements per tile touched.
func tileCosts(tile int) (gemmW, trsmW, syrkW, potrfW, tileBytes float64) {
	t := float64(tile)
	gemmW = 2 * t * t * t / flopsPerCycle
	trsmW = t * t * t / flopsPerCycle
	syrkW = t * t * t / flopsPerCycle
	potrfW = t * t * t / 3 / flopsPerCycle
	tileBytes = 8 * t * t
	return
}

// blockTracker derives dependencies from block data flow: each task
// declares the tile-grid blocks it touches, and depends on the previous
// writer of every one of them.
type blockTracker struct {
	g      *GraphSpec
	writer map[[2]int]string // block → id of its last writer
}

// task appends a node that reads `reads` and (over)writes `writes`.
func (b *blockTracker) task(id string, work, bytes float64, typ string, high bool, writes [2]int, reads ...[2]int) {
	b.g.Nodes = append(b.g.Nodes, Node{ID: id, Work: work, Bytes: bytes, Type: typ, High: high})
	seen := map[string]bool{}
	for _, blk := range append(reads, writes) {
		if w, ok := b.writer[blk]; ok && w != id && !seen[w] {
			seen[w] = true
			b.g.Edges = append(b.g.Edges, Edge{From: w, To: id})
		}
	}
	b.writer[writes] = id
}

// genCholesky emits the tiled right-looking Cholesky DAG. For T tiles:
// T POTRF + T(T-1)/2 TRSM + T(T-1)/2 SYRK + T(T-1)(T-2)/6 GEMM tasks.
// POTRF tasks (the sequential spine) are marked high priority.
func genCholesky(c GenConfig) *GraphSpec {
	gemmW, trsmW, syrkW, potrfW, tb := tileCosts(c.Tile)
	T := c.Tiles
	b := &blockTracker{
		g:      &GraphSpec{Name: "cholesky-" + strconv.Itoa(T)},
		writer: map[[2]int]string{},
	}
	for k := 0; k < T; k++ {
		b.task(genLabel("potrf", k, -1, -1), potrfW, tb, "potrf", true, [2]int{k, k})
		for i := k + 1; i < T; i++ {
			b.task(genLabel("trsm", i, k, -1), trsmW, 2*tb, "trsm", false,
				[2]int{i, k}, [2]int{k, k})
		}
		for i := k + 1; i < T; i++ {
			b.task(genLabel("syrk", i, k, -1), syrkW, 2*tb, "syrk", false,
				[2]int{i, i}, [2]int{i, k})
			for j := k + 1; j < i; j++ {
				b.task(genLabel("gemm", i, j, k), gemmW, 3*tb, "gemm", false,
					[2]int{i, j}, [2]int{i, k}, [2]int{j, k})
			}
		}
	}
	return b.g
}

// genLU emits the tiled LU factorization (no pivoting). For T tiles:
// T GETRF + T(T-1) TRSM + T(T-1)(2T-1)/6 - ... GEMM update tasks; the
// GETRF spine is marked high priority.
func genLU(c GenConfig) *GraphSpec {
	gemmW, trsmW, _, potrfW, tb := tileCosts(c.Tile)
	// GETRF on one tile costs ~2t³/3 flops — twice the POTRF third.
	getrfW := 2 * potrfW
	T := c.Tiles
	b := &blockTracker{
		g:      &GraphSpec{Name: "lu-" + strconv.Itoa(T)},
		writer: map[[2]int]string{},
	}
	for k := 0; k < T; k++ {
		b.task(genLabel("getrf", k, -1, -1), getrfW, tb, "getrf", true, [2]int{k, k})
		for j := k + 1; j < T; j++ {
			b.task(genLabel("trsmu", k, j, -1), trsmW, 2*tb, "trsm", false,
				[2]int{k, j}, [2]int{k, k})
		}
		for i := k + 1; i < T; i++ {
			b.task(genLabel("trsml", i, k, -1), trsmW, 2*tb, "trsm", false,
				[2]int{i, k}, [2]int{k, k})
		}
		for i := k + 1; i < T; i++ {
			for j := k + 1; j < T; j++ {
				b.task(genLabel("gemm", i, j, k), gemmW, 3*tb, "gemm", false,
					[2]int{i, j}, [2]int{i, k}, [2]int{k, j})
			}
		}
	}
	return b.g
}

// genForkJoin emits Layers fork-join segments of Width workers. Fork
// and join tasks are light coordination work on the critical chain and
// are marked high priority.
func genForkJoin(c GenConfig) *GraphSpec {
	gemmW, _, _, _, tb := tileCosts(c.Tile)
	coordW := gemmW / 64
	if coordW < 1 {
		coordW = 1
	}
	g := &GraphSpec{Name: "fork-join-" + strconv.Itoa(c.Layers) + "x" + strconv.Itoa(c.Width)}
	var prevJoin string
	for l := 0; l < c.Layers; l++ {
		fork := genLabel("fork", l, -1, -1)
		join := genLabel("join", l, -1, -1)
		g.Nodes = append(g.Nodes, Node{ID: fork, Work: coordW, Type: "fork", High: true})
		if prevJoin != "" {
			g.Edges = append(g.Edges, Edge{From: prevJoin, To: fork})
		}
		for i := 0; i < c.Width; i++ {
			w := genLabel("work", l, i, -1)
			g.Nodes = append(g.Nodes, Node{ID: w, Work: gemmW, Bytes: 2 * tb, Type: "work"})
			g.Edges = append(g.Edges, Edge{From: fork, To: w}, Edge{From: w, To: join})
		}
		g.Nodes = append(g.Nodes, Node{ID: join, Work: coordW, Type: "join", High: true})
		prevJoin = join
	}
	return g
}

// genRandomLayered emits a seeded random layered DAG. Node (l, i)
// depends on 1..Degree uniformly chosen nodes of layer l-1 (always at
// least one, so no floating islands), its work jitters ±50% around the
// tile cost, and its type cycles through three byte-intensity classes.
// The first node of each layer is marked high priority.
func genRandomLayered(c GenConfig) *GraphSpec {
	baseW, _, _, _, tb := tileCosts(c.Tile)
	rng := xrand.New(c.Seed)
	g := &GraphSpec{Name: "random-layered-" + strconv.Itoa(c.Layers) + "x" + strconv.Itoa(c.Width)}
	classes := []struct {
		typ   string
		bytes float64
	}{
		{"cpu", 0},
		{"mix", tb},
		{"mem", 4 * tb},
	}
	for l := 0; l < c.Layers; l++ {
		for i := 0; i < c.Width; i++ {
			id := genLabel("rnd", l, i, -1)
			cls := classes[(l*c.Width+i)%len(classes)]
			work := baseW * (0.5 + rng.Float64())
			g.Nodes = append(g.Nodes, Node{ID: id, Work: work, Bytes: cls.bytes, Type: cls.typ, High: i == 0})
			if l == 0 {
				continue
			}
			deg := 1 + rng.Intn(c.Degree)
			if deg > c.Width {
				deg = c.Width
			}
			preds := map[int]bool{}
			for len(preds) < deg {
				preds[rng.Intn(c.Width)] = true
			}
			// Map iteration order is random; materialize edges in
			// sorted order so the emitted spec (pre-normalization) is
			// already deterministic.
			ps := make([]int, 0, len(preds))
			for p := range preds {
				ps = append(ps, p)
			}
			sort.Ints(ps)
			for _, p := range ps {
				g.Edges = append(g.Edges, Edge{From: genLabel("rnd", l-1, p, -1), To: id})
			}
		}
	}
	return g
}

// genLabel renders "kind_a", "kind_a_b" or "kind_a_b_c" without fmt.
func genLabel(kind string, a, b, c int) string {
	var scratch [40]byte
	out := scratch[:0]
	out = append(out, kind...)
	out = append(out, '_')
	out = strconv.AppendInt(out, int64(a), 10)
	if b >= 0 {
		out = append(out, '_')
		out = strconv.AppendInt(out, int64(b), 10)
	}
	if c >= 0 {
		out = append(out, '_')
		out = strconv.AppendInt(out, int64(c), 10)
	}
	return string(out)
}
