package dagio

// DOT import: a pragmatic subset of the GraphViz language, enough to
// run the task graphs the literature publishes as .dot files:
//
//	digraph cholesky {
//	  node [work=6.1e6, type="gemm"];     // defaults for later nodes
//	  potrf_0 [work=1.0e6, type="potrf", high=true];
//	  potrf_0 -> trsm_1_0 -> gemm_2_1;    // edge chains
//	}
//
// Supported: optional "strict", named/anonymous digraphs, node
// statements with attribute lists, edge chains with "->", "node [...]"
// default-attribute statements, quoted and bare identifiers, //, # and
// /* */ comments, and ; or newline statement separation. Recognized
// node attributes are work, bytes, type and high; other attributes
// (label, shape, color, ...) are ignored so published files import
// unmodified. Undirected graphs, subgraphs and ports are errors — a
// task graph has none of them.
//
// Nodes may be declared implicitly by edges; they inherit the current
// "node [...]" defaults. A node that ends up with no positive work
// fails validation by name, so forgetting work= cannot silently
// produce a zero-cost task.

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseDOT parses a DOT digraph into a validated, normalized GraphSpec.
func ParseDOT(data []byte) (*GraphSpec, error) {
	p := &dotParser{src: string(data), line: 1}
	g, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("dagio: parse DOT graph: line %d: %w", p.line, err)
	}
	ng := g.Normalized()
	if err := ng.Validate(); err != nil {
		return nil, err
	}
	return ng, nil
}

// dotDefaults holds the attributes a "node [...]" statement applies to
// subsequently declared nodes.
type dotDefaults struct {
	work  float64
	bytes float64
	typ   string
	high  bool
}

type dotParser struct {
	src  string
	pos  int
	line int

	graph    GraphSpec
	index    map[string]int // node id → index in graph.Nodes
	defaults dotDefaults
}

func (p *dotParser) parse() (*GraphSpec, error) {
	p.index = map[string]int{}
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	if tok == "strict" {
		if tok, err = p.next(); err != nil {
			return nil, err
		}
	}
	switch tok {
	case "digraph":
	case "graph":
		return nil, fmt.Errorf("undirected graphs are not task graphs (want digraph)")
	default:
		return nil, fmt.Errorf("expected 'digraph', got %q", tok)
	}
	tok, err = p.next()
	if err != nil {
		return nil, err
	}
	if tok != "{" { // optional graph name
		p.graph.Name = tok
		if tok, err = p.next(); err != nil {
			return nil, err
		}
	}
	if tok != "{" {
		return nil, fmt.Errorf("expected '{', got %q", tok)
	}
	if err := p.parseBody(); err != nil {
		return nil, err
	}
	return &p.graph, nil
}

// parseBody consumes statements until the closing brace.
func (p *dotParser) parseBody() error {
	for {
		tok, err := p.next()
		if err != nil {
			return err
		}
		switch tok {
		case "}":
			if tok, err := p.next(); err == nil {
				return fmt.Errorf("trailing %q after closing brace", tok)
			}
			return nil
		case ";":
			continue
		case "subgraph", "{":
			return fmt.Errorf("subgraphs are not supported")
		case "node", "edge", "graph":
			// Default-attribute statement. "node" defaults seed later
			// declarations; "edge"/"graph" attrs carry nothing a task
			// graph uses, so their lists are parsed and dropped.
			attrs, err := p.parseAttrList()
			if err != nil {
				return err
			}
			if tok == "node" {
				if err := applyAttrs(attrs, &p.defaults); err != nil {
					return err
				}
			}
		case "=":
			return fmt.Errorf("unexpected '='")
		default:
			if err := p.parseNodeOrEdge(tok); err != nil {
				return err
			}
		}
	}
}

// parseNodeOrEdge handles "id [attrs]", "id = value" (graph attribute,
// ignored) and "id -> id -> id [attrs]" statements; first is the
// already-consumed first identifier.
func (p *dotParser) parseNodeOrEdge(first string) error {
	if !validNodeID(first) {
		return fmt.Errorf("invalid node id %q", first)
	}
	tok, err := p.peek()
	if err != nil {
		return err
	}
	if tok == "=" {
		// Graph-level attribute like rankdir=LR: consume and ignore.
		p.mustNext()
		if _, err := p.next(); err != nil {
			return fmt.Errorf("missing value after %s=", first)
		}
		return nil
	}
	chain := []string{first}
	for {
		tok, err = p.peek()
		if err != nil {
			return err
		}
		if tok != "->" {
			break
		}
		p.mustNext()
		id, err := p.next()
		if err != nil {
			return err
		}
		if id == "--" || !validNodeID(id) {
			return fmt.Errorf("invalid node id %q after ->", id)
		}
		chain = append(chain, id)
	}
	if tok == "--" {
		return fmt.Errorf("undirected edges (--) are not supported")
	}
	var attrs map[string]string
	if tok == "[" {
		if attrs, err = p.parseAttrList(); err != nil {
			return err
		}
	}
	if len(chain) == 1 {
		// Node statement. GraphViz merge semantics: a re-declaration
		// updates only the attributes it names, layered over whatever
		// the node already has; a first declaration starts from the
		// current "node [...]" defaults.
		d := p.defaults
		if i, ok := p.index[first]; ok {
			n := p.graph.Nodes[i]
			d = dotDefaults{work: n.Work, bytes: n.Bytes, typ: n.Type, high: n.High}
		}
		if err := applyAttrs(attrs, &d); err != nil {
			return fmt.Errorf("node %q: %w", first, err)
		}
		p.declare(first, d, true)
		return nil
	}
	// Edge statement: attributes describe the edges (weights, styles);
	// task dependencies carry none, so they are dropped.
	for i := 0; i < len(chain)-1; i++ {
		p.declare(chain[i], p.defaults, false)
		p.declare(chain[i+1], p.defaults, false)
		p.graph.Edges = append(p.graph.Edges, Edge{From: chain[i], To: chain[i+1]})
	}
	return nil
}

// declare creates or updates a node. Explicit node statements install
// their (already merged) attributes; implicit (edge-created)
// declarations never overwrite anything.
func (p *dotParser) declare(id string, d dotDefaults, explicit bool) {
	if i, ok := p.index[id]; ok {
		if explicit {
			p.graph.Nodes[i] = Node{ID: id, Work: d.work, Bytes: d.bytes, Type: d.typ, High: d.high}
		}
		return
	}
	p.index[id] = len(p.graph.Nodes)
	p.graph.Nodes = append(p.graph.Nodes, Node{ID: id, Work: d.work, Bytes: d.bytes, Type: d.typ, High: d.high})
}

// parseAttrList consumes "[ k=v, k=v; ... ]" (the '[' may or may not
// have been consumed by the caller via peek) and returns the pairs.
func (p *dotParser) parseAttrList() (map[string]string, error) {
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	if tok != "[" {
		return nil, fmt.Errorf("expected '[', got %q", tok)
	}
	attrs := map[string]string{}
	for {
		tok, err = p.next()
		if err != nil {
			return nil, err
		}
		if tok == "]" {
			return attrs, nil
		}
		if tok == "," || tok == ";" {
			continue
		}
		key := tok
		if tok, err = p.next(); err != nil {
			return nil, err
		}
		if tok != "=" {
			return nil, fmt.Errorf("expected '=' after attribute %q, got %q", key, tok)
		}
		val, err := p.next()
		if err != nil {
			return nil, err
		}
		if isPunct(val) {
			return nil, fmt.Errorf("missing value for attribute %q", key)
		}
		attrs[key] = val
	}
}

// applyAttrs folds recognized attributes into d; unrecognized ones are
// ignored (cosmetic attributes of published files).
func applyAttrs(attrs map[string]string, d *dotDefaults) error {
	for k, v := range attrs {
		switch k {
		case "work":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad work %q: %w", v, err)
			}
			d.work = f
		case "bytes":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad bytes %q: %w", v, err)
			}
			d.bytes = f
		case "type":
			d.typ = v
		case "high":
			switch v {
			case "true", "1":
				d.high = true
			case "false", "0":
				d.high = false
			default:
				return fmt.Errorf("bad high %q (want true or false)", v)
			}
		}
	}
	return nil
}

// validNodeID rejects tokens that are punctuation or reserved words.
func validNodeID(id string) bool {
	switch id {
	case "", "{", "}", "[", "]", "=", ";", ",", "->", "--",
		"digraph", "graph", "subgraph", "node", "edge", "strict":
		return false
	}
	return true
}

func isPunct(tok string) bool {
	switch tok {
	case "{", "}", "[", "]", "=", ";", ",", "->", "--":
		return true
	}
	return false
}

// mustNext consumes a token the caller already peeked.
func (p *dotParser) mustNext() {
	if _, err := p.next(); err != nil {
		panic("dagio: mustNext after successful peek") // unreachable
	}
}

// peek returns the next token without consuming it.
func (p *dotParser) peek() (string, error) {
	pos, line := p.pos, p.line
	tok, err := p.next()
	p.pos, p.line = pos, line
	return tok, err
}

// next returns the next token: an identifier (bare, numeral or quoted)
// or one of the punctuation tokens. io errors are EOF only.
func (p *dotParser) next() (string, error) {
	if err := p.skipSpace(); err != nil {
		return "", err
	}
	c := p.src[p.pos]
	switch c {
	case '{', '}', '[', ']', '=', ';', ',':
		p.pos++
		return string(c), nil
	case '-':
		if p.pos+1 < len(p.src) {
			switch p.src[p.pos+1] {
			case '>':
				p.pos += 2
				return "->", nil
			case '-':
				p.pos += 2
				return "--", nil
			}
		}
		// Fall through: a leading '-' may start a negative numeral.
	case '"':
		return p.quoted()
	}
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || strings.ContainsRune("_.+-", r) {
			// '-' only continues a token inside numerals ("1e-6");
			// after an identifier character run it would be an arrow.
			if r == '-' && p.pos+1 < len(p.src) && (p.src[p.pos+1] == '>' || p.src[p.pos+1] == '-') {
				break
			}
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("unexpected character %q", string(p.src[p.pos]))
	}
	return p.src[start:p.pos], nil
}

// quoted consumes a double-quoted string with backslash escapes.
func (p *dotParser) quoted() (string, error) {
	var b strings.Builder
	p.pos++ // opening quote
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '"':
			p.pos++
			return b.String(), nil
		case '\\':
			if p.pos+1 >= len(p.src) {
				return "", fmt.Errorf("unterminated escape in string")
			}
			p.pos++
			b.WriteByte(p.src[p.pos])
			p.pos++
		case '\n':
			return "", fmt.Errorf("newline in quoted string")
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", fmt.Errorf("unterminated quoted string")
}

// skipSpace advances over whitespace and //, #, /* */ comments.
func (p *dotParser) skipSpace() error {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/',
			c == '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '*':
			p.pos += 2
			for {
				if p.pos+1 >= len(p.src) {
					return fmt.Errorf("unterminated block comment")
				}
				if p.src[p.pos] == '\n' {
					p.line++
				}
				if p.src[p.pos] == '*' && p.src[p.pos+1] == '/' {
					p.pos += 2
					break
				}
				p.pos++
			}
		default:
			return nil
		}
	}
	return fmt.Errorf("unexpected end of input")
}
