package dagio

import (
	"strings"
	"testing"
)

// choleskyTasks is the closed-form task count of a T-tile Cholesky:
// T POTRF + T(T-1)/2 TRSM + T(T-1)/2 SYRK + T(T-1)(T-2)/6 GEMM.
func choleskyTasks(T int) int {
	return T + T*(T-1)/2 + T*(T-1)/2 + T*(T-1)*(T-2)/6
}

// luTasks is the closed-form task count of a T-tile LU without
// pivoting: T GETRF + T(T-1) TRSM + sum_k (T-1-k)^2 GEMM.
func luTasks(T int) int {
	gemm := 0
	for k := 0; k < T; k++ {
		gemm += (T - 1 - k) * (T - 1 - k)
	}
	return T + T*(T-1) + gemm
}

func TestCholeskyShape(t *testing.T) {
	for _, T := range []int{1, 2, 4, 8} {
		g, err := GenConfig{Model: ModelCholesky, Tiles: T}.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(g.Nodes), choleskyTasks(T); got != want {
			t.Errorf("T=%d: %d tasks, want %d", T, got, want)
		}
		dg, err := g.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := dg.Validate(); err != nil {
			t.Errorf("T=%d: %v", T, err)
		}
		// The POTRF spine serializes the factorization: the critical
		// path has at least one task per elimination step.
		if T > 1 {
			if p := dg.Parallelism(); p <= 0 || p >= float64(len(g.Nodes))/float64(T-1) {
				t.Errorf("T=%d: implausible parallelism %v for %d tasks", T, p, len(g.Nodes))
			}
		}
		high := 0
		for _, n := range g.Nodes {
			if n.High {
				high++
			}
		}
		if high != T {
			t.Errorf("T=%d: %d high-priority tasks, want %d (the POTRF spine)", T, high, T)
		}
	}
}

func TestLUShape(t *testing.T) {
	for _, T := range []int{1, 2, 4, 6} {
		g, err := GenConfig{Model: ModelLU, Tiles: T}.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(g.Nodes), luTasks(T); got != want {
			t.Errorf("T=%d: %d tasks, want %d", T, got, want)
		}
		dg, err := g.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := dg.Validate(); err != nil {
			t.Errorf("T=%d: %v", T, err)
		}
	}
}

func TestForkJoinShape(t *testing.T) {
	g, err := GenConfig{Model: ModelForkJoin, Layers: 5, Width: 7}.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(g.Nodes), 5*(7+2); got != want {
		t.Fatalf("%d tasks, want %d", got, want)
	}
	dg, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Each segment is fork → workers → join, so the longest path is
	// 3 tasks per segment and parallelism = 9/3 = 3 exactly.
	if p := dg.Parallelism(); p != 3 {
		t.Fatalf("fork-join parallelism %v, want 3", p)
	}
}

func TestRandomLayeredDeterminism(t *testing.T) {
	mk := func(seed uint64) string {
		g, err := GenConfig{Model: ModelRandomLayered, Layers: 6, Width: 5, Seed: seed}.Graph()
		if err != nil {
			t.Fatal(err)
		}
		d, err := g.Digest()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if mk(7) != mk(7) {
		t.Fatal("same seed produced different graphs")
	}
	if mk(7) == mk(8) {
		t.Fatal("different seeds produced identical graphs")
	}
	g, err := GenConfig{Model: ModelRandomLayered, Layers: 6, Width: 5, Seed: 7}.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(g.Nodes), 30; got != want {
		t.Fatalf("%d tasks, want %d", got, want)
	}
	dg, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := dg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenConfigValidate(t *testing.T) {
	if err := (GenConfig{Model: "spiral"}.Defaults()).Validate(); err == nil {
		t.Fatal("unknown model accepted")
	} else if !strings.Contains(err.Error(), "known models") {
		t.Fatalf("error %q does not list the known models", err)
	}
	if _, err := (GenConfig{Model: ModelCholesky, Tiles: -1}).Graph(); err == nil {
		t.Fatal("negative tiles accepted")
	}
	for _, m := range Models() {
		if _, err := (GenConfig{Model: m}).Graph(); err != nil {
			t.Errorf("default %s config failed: %v", m, err)
		}
	}
}
