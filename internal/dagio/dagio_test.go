package dagio

import (
	"os"
	"strings"
	"testing"
)

// Two descriptions of the same graph — shuffled declarations, different
// source formats — must share a content Digest; any structural or cost
// change must break it.
func TestDigestInvariantUnderDeclarationOrder(t *testing.T) {
	a := &GraphSpec{
		Nodes: []Node{
			{ID: "a", Work: 1e6, Type: "x", High: true},
			{ID: "b", Work: 2e6, Bytes: 100},
			{ID: "c", Work: 3e6},
		},
		Edges: []Edge{{From: "a", To: "b"}, {From: "a", To: "c"}},
	}
	b := &GraphSpec{
		Name: "same-graph-other-file",
		Nodes: []Node{
			{ID: "c", Work: 3e6},
			{ID: "b", Work: 2e6, Bytes: 100},
			{ID: "a", Work: 1e6, Type: "x", High: true},
		},
		// Shuffled, with one duplicate edge that normalization drops.
		Edges: []Edge{{From: "a", To: "c"}, {From: "a", To: "b"}, {From: "a", To: "c"}},
	}
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("same graph, different digests: %s vs %s", da, db)
	}
	mut := *a
	mut.Nodes = append([]Node(nil), a.Nodes...)
	mut.Nodes[1].Work = 2e6 + 1
	dm, err := mut.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if dm == da {
		t.Fatalf("work change did not change the digest")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		g    GraphSpec
		want string
	}{
		{"empty", GraphSpec{}, "no nodes"},
		{"dup node", GraphSpec{Nodes: []Node{{ID: "a", Work: 1}, {ID: "a", Work: 1}}}, `duplicate node "a"`},
		{"zero work", GraphSpec{Nodes: []Node{{ID: "a"}}}, "non-positive or non-finite work"},
		{"neg bytes", GraphSpec{Nodes: []Node{{ID: "a", Work: 1, Bytes: -1}}}, "negative or non-finite bytes"},
		{"unknown edge", GraphSpec{
			Nodes: []Node{{ID: "a", Work: 1}},
			Edges: []Edge{{From: "a", To: "zz"}},
		}, `unknown node "zz"`},
		{"self edge", GraphSpec{
			Nodes: []Node{{ID: "a", Work: 1}},
			Edges: []Edge{{From: "a", To: "a"}},
		}, "self-edge"},
		{"cycle", GraphSpec{
			Nodes: []Node{{ID: "a", Work: 1}, {ID: "b", Work: 1}, {ID: "c", Work: 1}},
			Edges: []Edge{{From: "a", To: "b"}, {From: "b", To: "c"}, {From: "c", To: "a"}},
		}, "cycle"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := c.g.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a bad graph")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestBuildProducesRunnableGraph(t *testing.T) {
	g := Demo()
	dg, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := dg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := int(dg.Total()), len(g.Nodes); got != want {
		t.Fatalf("built graph has %d tasks, want %d", got, want)
	}
	if p := dg.Parallelism(); p <= 1 {
		t.Fatalf("demo graph parallelism %v, want > 1", p)
	}
	// Distinct types map to distinct, deterministic PTT ids.
	ids := g.TypeIDs()
	if len(ids) < 3 {
		t.Fatalf("demo graph has %d task types, want several", len(ids))
	}
	seen := map[int]string{}
	for ty, id := range ids {
		if prev, dup := seen[int(id)]; dup {
			t.Fatalf("types %q and %q share PTT id %d", prev, ty, id)
		}
		seen[int(id)] = ty
	}
}

func TestBuildRejectsInvalidGraph(t *testing.T) {
	g := &GraphSpec{
		Nodes: []Node{{ID: "a", Work: 1}, {ID: "b", Work: 1}},
		Edges: []Edge{{From: "a", To: "b"}, {From: "b", To: "a"}},
	}
	if _, err := g.Build(); err == nil {
		t.Fatal("Build accepted a cyclic graph")
	}
}

// The wire form must round-trip exactly (it is both the import schema
// and the canonical encoding the scenario layer hashes).
func TestWireRoundTrip(t *testing.T) {
	g := Demo()
	back := FromWire(g.Wire()).Normalized()
	da, _ := g.Digest()
	db, _ := back.Digest()
	if da != db {
		t.Fatalf("wire round-trip changed the digest: %s vs %s", da, db)
	}
	if len(back.Nodes) != len(g.Nodes) || len(back.Edges) != len(g.Edges) {
		t.Fatalf("wire round-trip changed shape: %d/%d nodes, %d/%d edges",
			len(back.Nodes), len(g.Nodes), len(back.Edges), len(g.Edges))
	}
}

// The bundled example files must stay in sync with the embedded demo:
// all three spellings (DemoDOT, examples/dag/demo.dot, demo.json) are
// one graph and must share a Digest.
func TestExampleFilesMatchDemo(t *testing.T) {
	want, err := Demo().Digest()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"../../examples/dag/demo.dot", "../../examples/dag/demo.json"} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("bundled example missing: %v", err)
		}
		g, err := Parse(data, strings.TrimPrefix(strings.ToLower(path[strings.LastIndex(path, ".")+1:]), "."))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		got, err := g.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s digest %s, want %s (bundled example drifted from dagio.DemoDOT)", path, got, want)
		}
	}
	if string(mustRead(t, "../../examples/dag/demo.dot")) != DemoDOT {
		t.Errorf("examples/dag/demo.dot bytes differ from dagio.DemoDOT")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
