package dagio

import (
	"strings"
	"testing"
)

func TestParseDOTFeatures(t *testing.T) {
	src := `
	/* block
	   comment */
	strict digraph "my graph" {
	  rankdir = LR;           // graph attribute: ignored
	  node [work=100, type="base"];
	  a [work=1e6, type=potrf, high=true, color="red"];
	  b [work="2.5e6", bytes=512]; # quoted numeral, trailing comment
	  a -> b -> c;
	  a -> c [weight=3];
	  d;                       // bare node with current defaults
	  d -> c
	}
	`
	g, err := ParseDOT([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "my graph" {
		t.Errorf("graph name %q, want %q", g.Name, "my graph")
	}
	byID := map[string]Node{}
	for _, n := range g.Nodes {
		byID[n.ID] = n
	}
	if len(byID) != 4 {
		t.Fatalf("parsed %d nodes, want 4: %+v", len(byID), g.Nodes)
	}
	if n := byID["a"]; n.Work != 1e6 || n.Type != "potrf" || !n.High {
		t.Errorf("node a = %+v", n)
	}
	if n := byID["b"]; n.Work != 2.5e6 || n.Bytes != 512 || n.Type != "base" {
		t.Errorf("node b = %+v (defaults must fill unset attrs)", n)
	}
	if n := byID["c"]; n.Work != 100 || n.Type != "base" {
		t.Errorf("implicit node c = %+v (must inherit node defaults)", n)
	}
	if n := byID["d"]; n.Work != 100 {
		t.Errorf("bare node d = %+v", n)
	}
	if len(g.Edges) != 4 {
		t.Fatalf("parsed %d edges, want 4: %+v", len(g.Edges), g.Edges)
	}
}

// GraphViz merge semantics: re-declaring a node updates only the
// attributes the later statement names — it must not silently reset
// earlier explicit attributes to the defaults (a published file that
// declares a node and styles it later would otherwise lose its cost
// and priority marks).
func TestParseDOTRedeclarationMerges(t *testing.T) {
	src := `digraph g {
	  node [work=1e6];
	  a [work=5e6, high=true];
	  a -> b;
	  a [type="styled-later"];  // e.g. a trailing style-only statement
	}`
	g, err := ParseDOT([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.ID == "a" {
			if n.Work != 5e6 || !n.High || n.Type != "styled-later" {
				t.Fatalf("re-declared node a = %+v, want work=5e6 high=true type=styled-later", n)
			}
		}
	}
}

// NaN/Inf costs must be rejected by name, not parsed into the machine
// model or left to fail canonical JSON encoding with an opaque error.
func TestNonFiniteWorkRejected(t *testing.T) {
	for _, src := range []string{
		`digraph g { a [work=nan]; }`,
		`digraph g { a [work=inf]; }`,
		`digraph g { a [work=1, bytes=nan]; }`,
		`digraph g { a [work=-inf]; }`,
	} {
		if _, err := ParseDOT([]byte(src)); err == nil {
			t.Errorf("ParseDOT accepted non-finite cost: %q", src)
		} else if !strings.Contains(err.Error(), `"a"`) {
			t.Errorf("non-finite error %q does not name the node", err)
		}
	}
	if _, err := ParseJSON([]byte(`{"nodes":[{"id":"a","work":1e309}]}`)); err == nil {
		t.Error("ParseJSON accepted overflowing work")
	}
}

// A DOT file and the same statements in reverse order must parse to the
// same digest — the property the scenario hash relies on.
func TestParseDOTOrderInvariance(t *testing.T) {
	fwd := `digraph g {
	  a [work=10]; b [work=20]; c [work=30];
	  a -> b; a -> c; b -> c;
	}`
	rev := `digraph g {
	  c [work=30]; b [work=20]; a [work=10];
	  b -> c; a -> c; a -> b;
	}`
	ga, err := ParseDOT([]byte(fwd))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := ParseDOT([]byte(rev))
	if err != nil {
		t.Fatal(err)
	}
	da, _ := ga.Digest()
	db, _ := gb.Digest()
	if da != db {
		t.Fatalf("declaration order changed the digest: %s vs %s", da, db)
	}
}

func TestParseDOTErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"not a digraph", `graph g { a -- b }`, "digraph"},
		{"undirected edge", `digraph g { a [work=1]; b [work=1]; a -- b; }`, "--"},
		{"subgraph", `digraph g { subgraph s { a } }`, "subgraph"},
		{"truncated", `digraph g { a [work=1`, "end of input"},
		{"trailing", `digraph g { a [work=1]; } digraph h {}`, "trailing"},
		{"bad work", `digraph g { a [work=heavy]; }`, "bad work"},
		{"bad high", `digraph g { a [work=1, high=maybe]; }`, "bad high"},
		{"missing work", `digraph g { a; }`, "non-positive or non-finite work"},
		{"cycle", `digraph g { a [work=1]; b [work=1]; a -> b; b -> a; }`, "cycle"},
		{"unterminated string", `digraph g { a [type="x }`, "unterminated"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseDOT([]byte(c.src))
			if err == nil {
				t.Fatalf("ParseDOT accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParseJSONStrictness(t *testing.T) {
	good := `{"name":"j","nodes":[{"id":"a","work":10},{"id":"b","work":5,"type":"t","high":true}],"edges":[{"from":"a","to":"b"}]}`
	g, err := ParseJSON([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 || len(g.Edges) != 1 {
		t.Fatalf("parsed %d nodes / %d edges", len(g.Nodes), len(g.Edges))
	}
	for _, bad := range []string{
		`{"nodes":[{"id":"a","work":10,"wieght":3}]}`, // typo'd field
		`{"nodes":[{"id":"a","work":10}]} trailing`,
		`{"nodes":[{"id":"a","work":0}]}`,
		`{"nodes":[{"id":"a","work":1}],"edges":[{"from":"a","to":"nope"}]}`,
		`[1,2,3]`,
	} {
		if _, err := ParseJSON([]byte(bad)); err == nil {
			t.Errorf("ParseJSON accepted %q", bad)
		}
	}
}

// DOT and JSON spellings of one graph are the same workload.
func TestDOTAndJSONAgree(t *testing.T) {
	dot := `digraph g { a [work=10, type="x", high=true]; b [work=20, bytes=5]; a -> b; }`
	jsn := `{"nodes":[{"id":"b","work":20,"bytes":5},{"id":"a","work":10,"type":"x","high":true}],"edges":[{"from":"a","to":"b"}]}`
	gd, err := ParseDOT([]byte(dot))
	if err != nil {
		t.Fatal(err)
	}
	gj, err := ParseJSON([]byte(jsn))
	if err != nil {
		t.Fatal(err)
	}
	dd, _ := gd.Digest()
	dj, _ := gj.Digest()
	if dd != dj {
		t.Fatalf("DOT and JSON digests differ: %s vs %s", dd, dj)
	}
}

// FuzzParseDOT asserts the importer never panics: any input either
// parses into a graph that validates or returns an error.
func FuzzParseDOT(f *testing.F) {
	f.Add(DemoDOT)
	f.Add(`digraph g { a [work=1]; b [work=2]; a -> b; }`)
	f.Add(`strict digraph { node [work=1e6]; x -> y -> z }`)
	f.Add(`digraph g { a [work=1, high=true, type="q\"uoted"]; }`)
	f.Add(`digraph g { /* }`)
	f.Add(`digraph g { a [`)
	f.Add(`digraph g { a -> }`)
	f.Add("digraph g {\n# comment only\n}")
	f.Add(`-1e300`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseDOT([]byte(src))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("ParseDOT returned an invalid graph (%v) for %q", verr, src)
			}
		}
	})
}

// FuzzParseJSON mirrors FuzzParseDOT for the JSON importer.
func FuzzParseJSON(f *testing.F) {
	f.Add(`{"nodes":[{"id":"a","work":10}]}`)
	f.Add(`{"nodes":[{"id":"a","work":10},{"id":"b","work":5}],"edges":[{"from":"a","to":"b"}]}`)
	f.Add(`{"nodes":[]}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`{"nodes":[{"id":"a","work":1e308}],"edges":[{"from":"a","to":"a"}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseJSON([]byte(src))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("ParseJSON returned an invalid graph (%v) for %q", verr, src)
			}
		}
	})
}
