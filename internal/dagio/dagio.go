// Package dagio makes external task graphs first-class workloads: it
// imports DAG descriptions (GraphViz DOT and a documented JSON schema)
// and expands parametric generators for the classic graphs the
// scheduling literature lives on (tiled Cholesky, tiled LU, fork-join
// chains, seeded random layered DAGs) into the runtime's internal/dag
// representation.
//
// Everything flows through one intermediate form, GraphSpec: importers
// parse into it, generators emit it, and Build turns it into an
// executable *dag.Graph. A GraphSpec is normalized before use — nodes
// sorted by id, edges sorted and deduplicated — so two descriptions of
// the same graph (a DOT file and its JSON twin, or the same file with
// declarations shuffled) are byte-identical after normalization and
// therefore share a content Digest. The scenario layer hashes DAGFile
// workloads by that digest, never by the source path, which keeps the
// service's spec/cell cache keys stable across hosts and file layouts.
//
// Node semantics: Work is abstract compute (cycles on a speed-1.0 core,
// the machine model's Ops unit), Bytes is DRAM traffic split across a
// moldable place's members, Type groups nodes into Performance Trace
// Table classes, and High marks priority (critical) tasks for the
// asymmetry-aware policies.
package dagio

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"dynasym/internal/dag"
	"dynasym/internal/kernels"
	"dynasym/internal/machine"
	"dynasym/internal/ptt"
)

// Node is one task of an imported or generated graph.
type Node struct {
	// ID names the node; unique within the graph.
	ID string
	// Work is the task's abstract compute in machine-model ops
	// (cycles consumed on a speed-1.0 core per Hz). Must be positive.
	Work float64
	// Bytes is the task's DRAM traffic (split across place members).
	Bytes float64
	// Type groups tasks into PTT classes; empty means the default
	// class "task". Each distinct type gets its own Performance Trace
	// Table, so schedulers learn per-type execution profiles.
	Type string
	// High marks the task as high priority (critical).
	High bool
}

// Edge is one dependency: To cannot start before From completes.
type Edge struct {
	From, To string
}

// GraphSpec is the declarative task-graph description shared by the
// importers and the generators. It is plain data: Normalize, Validate,
// Digest and Build never mutate the receiver.
type GraphSpec struct {
	// Name labels the graph in reports. It is not part of the
	// canonical encoding or the Digest: two structurally identical
	// graphs are the same workload no matter what their sources were
	// called.
	Name  string
	Nodes []Node
	Edges []Edge
}

// isNormalized reports whether the graph is already in canonical form,
// so the consumers that run once per simulation cell (Build) can skip
// the copy-and-sort for the common case of a graph that came out of a
// parser, a generator, or a previous Normalized call.
func (g *GraphSpec) isNormalized() bool {
	for i := 1; i < len(g.Nodes); i++ {
		if g.Nodes[i-1].ID >= g.Nodes[i].ID {
			return false
		}
	}
	for i := 1; i < len(g.Edges); i++ {
		a, b := g.Edges[i-1], g.Edges[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			return false
		}
	}
	return true
}

// Normalized returns a canonical copy: nodes sorted by ID, edges sorted
// by (From, To) with exact duplicates removed. Two descriptions of the
// same graph normalize to equal values regardless of declaration order.
// An already-normalized graph is returned as-is (no copy).
func (g *GraphSpec) Normalized() *GraphSpec {
	if g.isNormalized() {
		return g
	}
	ng := &GraphSpec{Name: g.Name}
	ng.Nodes = append([]Node(nil), g.Nodes...)
	sort.Slice(ng.Nodes, func(i, j int) bool { return ng.Nodes[i].ID < ng.Nodes[j].ID })
	ng.Edges = append([]Edge(nil), g.Edges...)
	sort.Slice(ng.Edges, func(i, j int) bool {
		if ng.Edges[i].From != ng.Edges[j].From {
			return ng.Edges[i].From < ng.Edges[j].From
		}
		return ng.Edges[i].To < ng.Edges[j].To
	})
	dedup := ng.Edges[:0]
	for i, e := range ng.Edges {
		if i == 0 || e != ng.Edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	ng.Edges = dedup
	return ng
}

// Validate checks the graph: at least one node, unique node ids,
// positive work, non-negative bytes, edges between known distinct nodes,
// and acyclicity. Errors name the offending node or edge.
func (g *GraphSpec) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("dagio: graph %q has no nodes", g.Name)
	}
	index := make(map[string]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if n.ID == "" {
			return fmt.Errorf("dagio: graph %q: node %d has an empty id", g.Name, i)
		}
		if _, dup := index[n.ID]; dup {
			return fmt.Errorf("dagio: graph %q: duplicate node %q", g.Name, n.ID)
		}
		// NaN fails every comparison, so test finiteness explicitly:
		// a NaN/Inf cost would otherwise sail through into the machine
		// model (or break canonical JSON with an error naming no node).
		if !(n.Work > 0) || math.IsInf(n.Work, 0) {
			return fmt.Errorf("dagio: graph %q: node %q has non-positive or non-finite work %v", g.Name, n.ID, n.Work)
		}
		if !(n.Bytes >= 0) || math.IsInf(n.Bytes, 0) {
			return fmt.Errorf("dagio: graph %q: node %q has negative or non-finite bytes %v", g.Name, n.ID, n.Bytes)
		}
		index[n.ID] = i
	}
	indeg := make([]int, len(g.Nodes))
	succs := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		fi, ok := index[e.From]
		if !ok {
			return fmt.Errorf("dagio: graph %q: edge %s -> %s references unknown node %q", g.Name, e.From, e.To, e.From)
		}
		ti, ok := index[e.To]
		if !ok {
			return fmt.Errorf("dagio: graph %q: edge %s -> %s references unknown node %q", g.Name, e.From, e.To, e.To)
		}
		if fi == ti {
			return fmt.Errorf("dagio: graph %q: self-edge on node %q", g.Name, e.From)
		}
		succs[fi] = append(succs[fi], ti)
		indeg[ti]++
	}
	// Kahn's algorithm: any node left unprocessed sits on a cycle.
	queue := make([]int, 0, len(g.Nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for _, j := range succs[i] {
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if processed != len(g.Nodes) {
		for i, d := range indeg {
			if d > 0 {
				return fmt.Errorf("dagio: graph %q: cycle through node %q", g.Name, g.Nodes[i].ID)
			}
		}
	}
	return nil
}

// JSONGraph is the wire/JSON form of a graph. It is both the documented
// import schema (ParseJSON) and the canonical encoding the scenario
// layer embeds in spec hashes, so a graph submitted as JSON and the
// same graph imported from DOT produce identical canonical bytes.
type JSONGraph struct {
	// Name is accepted on import for readability but stripped from the
	// canonical encoding (see GraphSpec.Name).
	Name  string     `json:"name,omitempty"`
	Nodes []JSONNode `json:"nodes"`
	Edges []JSONEdge `json:"edges,omitempty"`
}

// JSONNode is one node of the JSON schema.
type JSONNode struct {
	ID    string  `json:"id"`
	Work  float64 `json:"work"`
	Bytes float64 `json:"bytes,omitempty"`
	Type  string  `json:"type,omitempty"`
	High  bool    `json:"high,omitempty"`
}

// JSONEdge is one dependency of the JSON schema.
type JSONEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// Wire returns the normalized wire form with the name stripped — the
// exact value whose JSON marshaling is the graph's canonical encoding.
func (g *GraphSpec) Wire() JSONGraph {
	ng := g.Normalized()
	w := JSONGraph{Nodes: make([]JSONNode, len(ng.Nodes))}
	for i, n := range ng.Nodes {
		w.Nodes[i] = JSONNode{ID: n.ID, Work: n.Work, Bytes: n.Bytes, Type: n.Type, High: n.High}
	}
	if len(ng.Edges) > 0 {
		w.Edges = make([]JSONEdge, len(ng.Edges))
		for i, e := range ng.Edges {
			w.Edges[i] = JSONEdge{From: e.From, To: e.To}
		}
	}
	return w
}

// FromWire rebuilds a GraphSpec from its wire form.
func FromWire(w JSONGraph) *GraphSpec {
	g := &GraphSpec{Name: w.Name, Nodes: make([]Node, len(w.Nodes))}
	for i, n := range w.Nodes {
		g.Nodes[i] = Node{ID: n.ID, Work: n.Work, Bytes: n.Bytes, Type: n.Type, High: n.High}
	}
	if len(w.Edges) > 0 {
		g.Edges = make([]Edge, len(w.Edges))
		for i, e := range w.Edges {
			g.Edges[i] = Edge{From: e.From, To: e.To}
		}
	}
	return g
}

// CanonicalJSON returns the canonical byte encoding of the graph:
// the JSON marshaling of the normalized, name-stripped wire form.
func (g *GraphSpec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(g.Wire())
}

// Digest returns the sha256 (hex) of the canonical encoding — the
// graph's content identity. Declaration order, source format and file
// path cannot change it; any structural or cost change does.
func (g *GraphSpec) Digest() (string, error) {
	b, err := g.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// defaultType is the PTT class of nodes with an empty Type.
const defaultType = "task"

// Per-task overheads of imported/generated tasks. Imported graphs
// describe work and traffic but not coordination costs, so every task
// gets the same moderate moldability profile: cheap barriers and a
// width penalty between Copy's and MatMul's.
const (
	taskSyncSeconds  = 2e-6
	taskWidthPenalty = 0.10
)

// TypeIDs returns the deterministic PTT type assignment for the graph:
// distinct node types sorted by name, numbered from kernels.TypeUser.
// Sorting (not first-appearance order) keeps the assignment invariant
// under node declaration order, matching the normalized encoding.
func (g *GraphSpec) TypeIDs() map[string]ptt.TypeID {
	names := make([]string, 0, 4)
	seen := make(map[string]bool, 4)
	for _, n := range g.Nodes {
		ty := n.Type
		if ty == "" {
			ty = defaultType
		}
		if !seen[ty] {
			seen[ty] = true
			names = append(names, ty)
		}
	}
	sort.Strings(names)
	ids := make(map[string]ptt.TypeID, len(names))
	for i, ty := range names {
		ids[ty] = kernels.TypeUser + ptt.TypeID(i)
	}
	return ids
}

// Build validates the normalized graph and constructs the executable
// *dag.Graph. Tasks are inserted in normalized (id-sorted) order, so the
// runtime sees the same graph — and produces bit-identical schedules —
// no matter how the source file ordered its declarations.
func (g *GraphSpec) Build() (*dag.Graph, error) {
	ng := g.Normalized()
	if err := ng.Validate(); err != nil {
		return nil, err
	}
	typeIDs := ng.TypeIDs()
	dg := dag.New()
	dg.Grow(len(ng.Nodes))
	tasks := make(map[string]*dag.Task, len(ng.Nodes))
	for _, n := range ng.Nodes {
		ty := n.Type
		if ty == "" {
			ty = defaultType
		}
		t := &dag.Task{
			Label: n.ID,
			Type:  typeIDs[ty],
			High:  n.High,
			Cost: machine.Cost{
				Ops:          n.Work,
				Bytes:        n.Bytes,
				SyncSeconds:  taskSyncSeconds,
				WidthPenalty: taskWidthPenalty,
			},
		}
		dg.Add(t)
		tasks[n.ID] = t
	}
	for _, e := range ng.Edges {
		dg.AddEdge(tasks[e.From], tasks[e.To])
	}
	return dg, nil
}
