package dagio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Import formats, in the order Formats() reports them.
const (
	// FormatDOT is the GraphViz DOT subset (see dot.go).
	FormatDOT = "dot"
	// FormatJSON is the documented JSON schema (see json.go).
	FormatJSON = "json"
)

// Formats lists the import formats in sorted order.
func Formats() []string { return []string{FormatDOT, FormatJSON} }

// Parse decodes data in the named format ("dot" or "json").
func Parse(data []byte, format string) (*GraphSpec, error) {
	switch format {
	case FormatDOT:
		return ParseDOT(data)
	case FormatJSON:
		return ParseJSON(data)
	default:
		return nil, fmt.Errorf("dagio: unknown import format %q (known formats: %s)", format, strings.Join(Formats(), ", "))
	}
}

// LoadFile reads and parses a task-graph file, picking the format from
// the extension (.dot/.gv → DOT, .json → JSON) unless format is
// non-empty. The path only locates the bytes: the loaded graph's
// identity is its content Digest, so moving or renaming the file never
// changes a spec hash.
func LoadFile(path, format string) (*GraphSpec, error) {
	if format == "" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".dot", ".gv":
			format = FormatDOT
		case ".json":
			format = FormatJSON
		default:
			return nil, fmt.Errorf("dagio: cannot infer format of %q (use .dot, .gv or .json, or pass a format)", path)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dagio: %w", err)
	}
	g, err := Parse(data, format)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if g.Name == "" {
		g.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return g, nil
}
