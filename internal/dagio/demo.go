package dagio

// DemoDOT is the bundled example task graph: a small irregular pipeline
// (load → two parallel analysis branches of different intensity → a
// reduce spine) exercising every importer feature — node defaults,
// per-node overrides, type classes, priority marks, edge chains and
// comments. examples/dag/demo.dot and examples/dag/demo.json ship the
// same graph for the CLI; a test pins all three to the same Digest.
const DemoDOT = `// demo: irregular two-branch analysis pipeline.
// Work is in machine-model ops (cycles at speed 1.0); 6.1e6 ops is
// roughly one 64x64x64 matmul tile (~3 ms on a TX2 A57).
digraph demo {
  node [work=6.1e6, bytes=6.6e4, type="analyze"];

  load   [work=1.5e6, bytes=5.2e5, type="io"];
  split  [work=5.0e5, type="io", high=true];
  load -> split;

  // Branch A: compute-heavy, narrow.
  a0 [work=1.2e7, type="simulate", high=true];
  a1 [work=1.2e7, type="simulate"];
  a2 [work=1.2e7, type="simulate"];
  split -> a0 -> a1 -> a2;

  // Branch B: wide fan-out of lighter analysis tasks.
  split -> b0; split -> b1; split -> b2; split -> b3;
  split -> b4; split -> b5;

  // Reduce spine: pairwise merges, then a final report.
  m0 [work=2.4e6, bytes=2.6e5, type="merge"];
  m1 [work=2.4e6, bytes=2.6e5, type="merge"];
  m2 [work=2.4e6, bytes=2.6e5, type="merge"];
  b0 -> m0; b1 -> m0;
  b2 -> m1; b3 -> m1;
  b4 -> m2; b5 -> m2;

  report [work=3.1e6, bytes=1.3e5, type="io", high=true];
  m0 -> report; m1 -> report; m2 -> report;
  a2 -> report;
}
`

// Demo returns the bundled example graph. It panics only if DemoDOT
// itself is broken, which the package tests rule out.
func Demo() *GraphSpec {
	g, err := ParseDOT([]byte(DemoDOT))
	if err != nil {
		panic(err)
	}
	return g
}
