package dagio

// JSON import: the documented task-graph schema. A document is one
// object:
//
//	{
//	  "name":  "demo",                       // optional label
//	  "nodes": [
//	    {"id": "a", "work": 6.1e6,           // required, positive
//	     "bytes": 6.6e4,                     // optional DRAM traffic
//	     "type": "gemm",                     // optional PTT class
//	     "high": true}                       // optional priority mark
//	  ],
//	  "edges": [{"from": "a", "to": "b"}]    // dependencies
//	}
//
// Unknown fields are errors (they are almost always typos that would
// otherwise silently change the workload). The same schema doubles as
// the canonical encoding — see JSONGraph.

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ParseJSON decodes a JSON task-graph document into a validated,
// normalized GraphSpec.
func ParseJSON(data []byte) (*GraphSpec, error) {
	var w JSONGraph
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("dagio: parse JSON graph: %w", err)
	}
	// A second document after the first is garbage, not padding.
	if dec.More() {
		return nil, fmt.Errorf("dagio: parse JSON graph: trailing data after document")
	}
	g := FromWire(w).Normalized()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
