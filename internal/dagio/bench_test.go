package dagio

import "testing"

// BenchmarkImportDOT measures the full DOT import path — tokenize,
// parse, normalize, validate — on the bundled demo graph. This is the
// per-submission cost a service pays to accept an external task graph.
func BenchmarkImportDOT(b *testing.B) {
	data := []byte(DemoDOT)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseDOT(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCholesky measures generator expansion plus dag.Graph
// construction for a 16-tile Cholesky (816 tasks) — the cold-cache cost
// of materializing a generated workload before a cell runs.
func BenchmarkBuildCholesky(b *testing.B) {
	cfg := GenConfig{Model: ModelCholesky, Tiles: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := cfg.Graph()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCholeskyAmortized measures the same 816-task workload's
// per-cell construction cost on a same-graph sweep through the compiled
// path: the graph is generated and frozen once, and each iteration pays
// only what one sweep cell pays — a Frozen.Reset of the recycled instance
// plus the Start that hands it to a runtime. This is the number
// BenchmarkBuildCholesky's full rebuild is amortized down to.
func BenchmarkBuildCholeskyAmortized(b *testing.B) {
	cfg := GenConfig{Model: ModelCholesky, Tiles: 16}
	gs, err := cfg.Graph()
	if err != nil {
		b.Fatal(err)
	}
	g, err := gs.Build()
	if err != nil {
		b.Fatal(err)
	}
	fz, err := g.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fz.Reset(g); err != nil {
			b.Fatal(err)
		}
		if ready := g.Start(); len(ready) == 0 {
			b.Fatal("reset graph has no ready tasks")
		}
	}
}
