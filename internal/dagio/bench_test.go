package dagio

import "testing"

// BenchmarkImportDOT measures the full DOT import path — tokenize,
// parse, normalize, validate — on the bundled demo graph. This is the
// per-submission cost a service pays to accept an external task graph.
func BenchmarkImportDOT(b *testing.B) {
	data := []byte(DemoDOT)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseDOT(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCholesky measures generator expansion plus dag.Graph
// construction for a 16-tile Cholesky (816 tasks) — the cold-cache cost
// of materializing a generated workload before a cell runs.
func BenchmarkBuildCholesky(b *testing.B) {
	cfg := GenConfig{Model: ModelCholesky, Tiles: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := cfg.Graph()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
