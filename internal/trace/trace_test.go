package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{Label: "x"})
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder misbehaved")
	}
}

func TestEventsSortedByStart(t *testing.T) {
	r := New()
	r.Add(Event{Label: "b", Start: 2, End: 3})
	r.Add(Event{Label: "a", Start: 1, End: 2})
	evs := r.Events()
	if evs[0].Label != "a" || evs[1].Label != "b" {
		t.Fatalf("events not sorted: %+v", evs)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := New()
	r.Add(Event{Label: "t0", Core: 1, Start: 0.001, End: 0.002, Leader: 0, Width: 2, High: true})
	r.Add(Event{Label: "t1", Core: 0, Start: 0.0, End: 0.001, Leader: 0, Width: 1})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("%d events", len(out))
	}
	if out[1]["name"] != "t0" || out[1]["ph"] != "X" {
		t.Fatalf("event = %v", out[1])
	}
	if out[1]["tid"].(float64) != 1 {
		t.Fatal("tid should be the core id")
	}
	args := out[1]["args"].(map[string]any)
	if args["place"] != "(C0,2)" || args["priority"] != "high" {
		t.Fatalf("args = %v", args)
	}
	// Duration in microseconds.
	if dur := out[1]["dur"].(float64); dur < 999 || dur > 1001 {
		t.Fatalf("dur = %v µs", dur)
	}
}

func TestUtilization(t *testing.T) {
	r := New()
	r.Add(Event{Core: 0, Start: 0, End: 1})
	r.Add(Event{Core: 0, Start: 1, End: 2})
	r.Add(Event{Core: 1, Start: 0, End: 1})
	u := r.Utilization(4)
	if u[0] != 0.5 || u[1] != 0.25 {
		t.Fatalf("utilization = %v", u)
	}
	if r.Utilization(0) != nil {
		t.Fatal("zero horizon should return nil")
	}
}

// The lazy sort must invalidate on Add: an event added after a read still
// lands in order on the next read.
func TestLazySortInvalidatesOnAdd(t *testing.T) {
	r := New()
	r.Add(Event{Label: "c", Start: 3, End: 4})
	r.Add(Event{Label: "a", Start: 1, End: 2})
	if evs := r.Events(); evs[0].Label != "a" {
		t.Fatalf("first read unsorted: %+v", evs)
	}
	r.Add(Event{Label: "b", Start: 2, End: 3})
	evs := r.Events()
	if evs[0].Label != "a" || evs[1].Label != "b" || evs[2].Label != "c" {
		t.Fatalf("post-Add read unsorted: %+v", evs)
	}
	// Returned slices are copies: mutating one must not corrupt the next.
	evs[0].Label = "mutated"
	if r.Events()[0].Label != "a" {
		t.Fatal("Events returned an aliased slice")
	}
}

// Counter samples and process groups must stream as valid Chrome JSON:
// "C" events with per-series args next to the "X" slices, and "M"
// process_name metadata for named groups.
func TestChromeTraceCountersAndGroups(t *testing.T) {
	r := New()
	r.Group(0, "cell A")
	r.Group(1, "cell B")
	r.Add(Event{Label: "t", Pid: 0, Core: 0, Start: 0, End: 0.001})
	r.Add(Event{Label: "t", Pid: 1, Core: 0, Start: 0, End: 0.002})
	r.AddCounter(CounterPoint{Name: "queue depth", Pid: 0, At: 0.0005, Series: []CounterValue{
		{Key: "wsq", Value: 3}, {Key: "aq", Value: 1},
	}})
	r.AddCounter(CounterPoint{Name: "ready tasks", Pid: 1, At: 0.001, Series: []CounterValue{
		{Key: "ready", Value: 7},
	}})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	byPhase := map[string][]map[string]any{}
	for _, ev := range out {
		ph := ev["ph"].(string)
		byPhase[ph] = append(byPhase[ph], ev)
	}
	if len(byPhase["M"]) != 2 || len(byPhase["X"]) != 2 || len(byPhase["C"]) != 2 {
		t.Fatalf("phases: M=%d X=%d C=%d, want 2 each", len(byPhase["M"]), len(byPhase["X"]), len(byPhase["C"]))
	}
	meta := byPhase["M"][0]
	if meta["name"] != "process_name" || meta["args"].(map[string]any)["name"] != "cell A" {
		t.Fatalf("metadata = %v", meta)
	}
	c0 := byPhase["C"][0]
	if c0["name"] != "queue depth" || c0["pid"].(float64) != 0 {
		t.Fatalf("counter = %v", c0)
	}
	args := c0["args"].(map[string]any)
	if args["wsq"].(float64) != 3 || args["aq"].(float64) != 1 {
		t.Fatalf("counter args = %v", args)
	}
	if ts := c0["ts"].(float64); ts < 499 || ts > 501 {
		t.Fatalf("counter ts = %v µs", ts)
	}
}

// AddUtilCounters derives the per-core utilization lane from the task
// slices of one process row.
func TestAddUtilCounters(t *testing.T) {
	r := New()
	r.Add(Event{Pid: 0, Core: 0, Start: 0, End: 1})
	r.Add(Event{Pid: 0, Core: 1, Start: 0, End: 0.5})
	r.Add(Event{Pid: 1, Core: 0, Start: 0, End: 1}) // other row: excluded
	r.AddUtilCounters(0, 1)
	var util []CounterPoint
	for _, cp := range r.Counters() {
		if cp.Name == "core util" {
			if cp.Pid != 0 {
				t.Fatalf("util lane on pid %d, want 0", cp.Pid)
			}
			util = append(util, cp)
		}
	}
	if len(util) == 0 {
		t.Fatal("no utilization lane derived")
	}
	// Core 0 is busy the whole horizon: every window's c0 series is 1.
	for _, cp := range util {
		for _, cv := range cp.Series {
			if cv.Key == "c0" && (cv.Value < 0.99 || cv.Value > 1.01) {
				t.Fatalf("c0 utilization %v at %v, want 1", cv.Value, cp.At)
			}
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Event{Core: i % 4, Start: float64(i), End: float64(i) + 1})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d", r.Len())
	}
}
