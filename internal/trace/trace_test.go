package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{Label: "x"})
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder misbehaved")
	}
}

func TestEventsSortedByStart(t *testing.T) {
	r := New()
	r.Add(Event{Label: "b", Start: 2, End: 3})
	r.Add(Event{Label: "a", Start: 1, End: 2})
	evs := r.Events()
	if evs[0].Label != "a" || evs[1].Label != "b" {
		t.Fatalf("events not sorted: %+v", evs)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := New()
	r.Add(Event{Label: "t0", Core: 1, Start: 0.001, End: 0.002, Leader: 0, Width: 2, High: true})
	r.Add(Event{Label: "t1", Core: 0, Start: 0.0, End: 0.001, Leader: 0, Width: 1})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("%d events", len(out))
	}
	if out[1]["name"] != "t0" || out[1]["ph"] != "X" {
		t.Fatalf("event = %v", out[1])
	}
	if out[1]["tid"].(float64) != 1 {
		t.Fatal("tid should be the core id")
	}
	args := out[1]["args"].(map[string]any)
	if args["place"] != "(C0,2)" || args["priority"] != "high" {
		t.Fatalf("args = %v", args)
	}
	// Duration in microseconds.
	if dur := out[1]["dur"].(float64); dur < 999 || dur > 1001 {
		t.Fatalf("dur = %v µs", dur)
	}
}

func TestUtilization(t *testing.T) {
	r := New()
	r.Add(Event{Core: 0, Start: 0, End: 1})
	r.Add(Event{Core: 0, Start: 1, End: 2})
	r.Add(Event{Core: 1, Start: 0, End: 1})
	u := r.Utilization(4)
	if u[0] != 0.5 || u[1] != 0.25 {
		t.Fatalf("utilization = %v", u)
	}
	if r.Utilization(0) != nil {
		t.Fatal("zero horizon should return nil")
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Event{Core: i % 4, Start: float64(i), End: float64(i) + 1})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d", r.Len())
	}
}
