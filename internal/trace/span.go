package trace

// Service-level spans: where Recorder captures simulated task executions
// on numbered cores, SpanSet captures wall-clock operations of the job
// service itself — queueing, shard dispatch, wire time, remote and local
// cell execution, merging — on *named* lanes ("job", "local #0",
// "peer http://… #1 w2"). The export reuses the same Chrome trace-event
// writer, adding thread_name metadata so Perfetto labels each lane, which
// is what turns a two-node chaos run into a readable picture: one lane
// per backend, one slice per shard, the killed peer's shards visibly
// re-dispatched onto the survivors' lanes.

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one service-level slice on a named lane. Start and End are
// offsets from the span set's origin (the job's submission instant).
type Span struct {
	// Name is the slice label ("shard 3", "simulate DAM-C at P4 (rep 1)").
	Name string
	// Cat classifies the slice: "job", "dispatch", "wire", "simulate",
	// "merge".
	Cat string
	// Lane names the track the slice is drawn in; lanes are created on
	// first use, in first-use order.
	Lane string
	// Start and End are offsets from the set's origin.
	Start, End time.Duration
	// Args are optional key/value annotations shown in the slice details.
	Args map[string]string
}

// SpanSet accumulates spans, bounded by max (0 = unlimited): a runaway
// grid cannot grow a job's trace without bound — past the cap, spans are
// dropped and counted. It is safe for concurrent use and cheap when nil:
// all methods are nil-tolerant.
type SpanSet struct {
	mu      sync.Mutex
	spans   []Span
	max     int
	dropped int64
}

// NewSpanSet returns an empty span set retaining at most max spans
// (0 = unlimited).
func NewSpanSet(max int) *SpanSet { return &SpanSet{max: max} }

// Add records one span. Safe on a nil set.
func (s *SpanSet) Add(sp Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.max > 0 && len(s.spans) >= s.max {
		s.dropped++
	} else {
		s.spans = append(s.spans, sp)
	}
	s.mu.Unlock()
}

// Spans returns a copy of the recorded spans sorted by start offset
// (ties broken by lane then name, so exports are deterministic).
func (s *SpanSet) Spans() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]Span(nil), s.spans...)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Lane != out[j].Lane {
			return out[i].Lane < out[j].Lane
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Len returns the number of retained spans.
func (s *SpanSet) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

// Dropped returns how many spans the cap discarded.
func (s *SpanSet) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// WriteChromeTrace writes the spans as a Chrome trace-event JSON array:
// one thread per lane (named via thread_name metadata), one complete
// event per span. Load it in https://ui.perfetto.dev or chrome://tracing.
func (s *SpanSet) WriteChromeTrace(w io.Writer) error {
	spans := s.Spans()
	lanes := make(map[string]int)
	var laneNames []string
	for _, sp := range spans {
		if _, ok := lanes[sp.Lane]; !ok {
			lanes[sp.Lane] = len(laneNames)
			laneNames = append(laneNames, sp.Lane)
		}
	}
	cw := newChromeWriter(w)
	for i, name := range laneNames {
		args, err := jsonNameArgs(name)
		if err != nil {
			return err
		}
		if err := cw.emit(&chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: i, Args: args}); err != nil {
			return err
		}
	}
	for _, sp := range spans {
		cat := sp.Cat
		if cat == "" {
			cat = "span"
		}
		var args json.RawMessage
		if len(sp.Args) > 0 {
			b, err := json.Marshal(sp.Args)
			if err != nil {
				return err
			}
			args = b
		}
		if err := cw.emit(&chromeEvent{
			Name: sp.Name,
			Cat:  cat,
			Ph:   "X",
			Ts:   float64(sp.Start) / float64(time.Microsecond),
			Dur:  float64(sp.End-sp.Start) / float64(time.Microsecond),
			Pid:  0,
			Tid:  lanes[sp.Lane],
			Args: args,
		}); err != nil {
			return err
		}
	}
	return cw.close()
}
