// Package trace records per-task execution events and exports them in the
// Chrome trace-event format (chrome://tracing, Perfetto), giving the same
// post-mortem visibility into schedules that XiTAO's tracing offers: one
// lane per core, one slice per task execution, with place, priority and
// type attached. Counter ("C") lanes — queue depths, ready-task counts,
// per-core utilization — render alongside the task slices, and multi-cell
// sweeps group each cell's lanes under its own process row.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Event is one recorded task execution.
type Event struct {
	// Label is the task label.
	Label string
	// Category classifies the event ("task", "comm", …).
	Category string
	// Pid groups the event's lanes into a Chrome process row; sweeps over
	// many cells put each cell in its own row (see Recorder.Group).
	Pid int
	// Core is the lane the event is drawn in (the executing core).
	Core int
	// Start and End are in seconds (virtual or wall, engine-dependent).
	Start, End float64
	// Leader and Width describe the execution place.
	Leader, Width int
	// High marks critical tasks.
	High bool
}

// CounterPoint is one sample of a Chrome counter ("C") lane: a named lane
// holding one or more series values at a single timestamp. Successive
// points of the same (Pid, Name) lane render as a stacked area chart.
type CounterPoint struct {
	// Name is the counter lane's name ("queue depth", "core util", …).
	Name string
	// Pid groups the lane with the task events of the same process row.
	Pid int
	// At is the sample time in seconds.
	At float64
	// Series holds the lane's values at At, in stable display order.
	Series []CounterValue
}

// CounterValue is one named series value of a counter sample.
type CounterValue struct {
	Key   string
	Value float64
}

// Recorder accumulates events. It is safe for concurrent use and cheap
// when nil: all methods are nil-tolerant so runtimes can call them
// unconditionally.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	// sorted tracks whether events is currently ordered by start time.
	// Sorting happens lazily in Events — Add only invalidates — so bursts
	// of reads (Utilization, writers) sort at most once.
	sorted   bool
	counters []CounterPoint
	groups   map[int]string
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records one event. Safe on a nil recorder.
func (r *Recorder) Add(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.sorted = false
	r.mu.Unlock()
}

// AddCounter records one counter sample. Safe on a nil recorder.
func (r *Recorder) AddCounter(cp CounterPoint) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = append(r.counters, cp)
	r.mu.Unlock()
}

// Group names the process row a Pid's lanes render under (e.g. the cell
// label of a sweep). Safe on a nil recorder.
func (r *Recorder) Group(pid int, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.groups == nil {
		r.groups = map[int]string{}
	}
	r.groups[pid] = name
	r.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time. The
// sort is stable, so equal-start events keep their insertion order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.sorted {
		sort.SliceStable(r.events, func(i, j int) bool { return r.events[i].Start < r.events[j].Start })
		r.sorted = true
	}
	return append([]Event(nil), r.events...)
}

// Counters returns a copy of the recorded counter samples in insertion
// order (recorders sample monotonically, so this is time order per lane).
func (r *Recorder) Counters() []CounterPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]CounterPoint(nil), r.counters...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// chromeEvent is the trace-event JSON schema (complete events ph "X",
// counters ph "C", metadata ph "M"). Args is pre-rendered JSON so the
// writer emits events one at a time without per-event map allocation.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`            // microseconds
	Dur  float64         `json:"dur,omitempty"` // microseconds
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args,omitempty"`
}

// chromeWriter streams chromeEvents as one JSON array, one event at a
// time — traces with hundreds of thousands of events never materialize an
// encoder-side copy.
type chromeWriter struct {
	bw *bufio.Writer
	n  int
}

func newChromeWriter(w io.Writer) *chromeWriter {
	return &chromeWriter{bw: bufio.NewWriter(w)}
}

func (cw *chromeWriter) emit(ce *chromeEvent) error {
	b, err := json.Marshal(ce)
	if err != nil {
		return err
	}
	if cw.n == 0 {
		cw.bw.WriteByte('[')
	} else {
		cw.bw.WriteByte(',')
	}
	cw.bw.WriteByte('\n')
	_, err = cw.bw.Write(b)
	cw.n++
	return err
}

func (cw *chromeWriter) close() error {
	if cw.n == 0 {
		cw.bw.WriteByte('[')
	}
	cw.bw.WriteString("\n]\n")
	return cw.bw.Flush()
}

// jsonNameArgs renders the {"name": …} args of a metadata event.
func jsonNameArgs(name string) (json.RawMessage, error) {
	b, err := json.Marshal(name)
	if err != nil {
		return nil, err
	}
	return json.RawMessage(`{"name":` + string(b) + `}`), nil
}

// WriteChromeTrace writes the events and counter lanes as a Chrome
// trace-event JSON array. Events are streamed one at a time — a large DAG
// sweep's hundred-thousand-event trace never materializes a second copy in
// encoder form. Load the output in chrome://tracing or
// https://ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	counters := r.Counters()
	groups := r.groupNames()
	cw := newChromeWriter(w)
	// Process-name metadata first, in ascending pid order, so multi-cell
	// traces label each cell's row.
	pids := make([]int, 0, len(groups))
	for pid := range groups {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		args, err := jsonNameArgs(groups[pid])
		if err != nil {
			return err
		}
		if err := cw.emit(&chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: args}); err != nil {
			return err
		}
	}
	for i := range events {
		ev := &events[i]
		cat := ev.Category
		if cat == "" {
			cat = "task"
		}
		prio := "low"
		if ev.High {
			prio = "high"
		}
		if err := cw.emit(&chromeEvent{
			Name: ev.Label,
			Cat:  cat,
			Ph:   "X",
			Ts:   ev.Start * 1e6,
			Dur:  (ev.End - ev.Start) * 1e6,
			Pid:  ev.Pid,
			Tid:  ev.Core,
			Args: json.RawMessage(fmt.Sprintf(`{"place":"(C%d,%d)","priority":%q}`, ev.Leader, ev.Width, prio)),
		}); err != nil {
			return err
		}
	}
	var args []byte
	for i := range counters {
		cp := &counters[i]
		args = args[:0]
		args = append(args, '{')
		for si, sv := range cp.Series {
			if si > 0 {
				args = append(args, ',')
			}
			args = strconv.AppendQuote(args, sv.Key)
			args = append(args, ':')
			args = strconv.AppendFloat(args, sv.Value, 'g', -1, 64)
		}
		args = append(args, '}')
		if err := cw.emit(&chromeEvent{
			Name: cp.Name,
			Cat:  "counter",
			Ph:   "C",
			Ts:   cp.At * 1e6,
			Pid:  cp.Pid,
			Args: json.RawMessage(append([]byte(nil), args...)),
		}); err != nil {
			return err
		}
	}
	return cw.close()
}

// groupNames snapshots the pid → process-name table.
func (r *Recorder) groupNames() map[int]string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.groups) == 0 {
		return nil
	}
	out := make(map[int]string, len(r.groups))
	for k, v := range r.groups {
		out[k] = v
	}
	return out
}

// utilWindows is the resolution of the derived per-core utilization lane.
const utilWindows = 160

// AddUtilCounters derives a windowed per-core utilization counter lane
// ("core util", one series per core) from the task events recorded under
// pid, over the horizon [0, horizon]. Call it after the run, before
// writing the trace.
func (r *Recorder) AddUtilCounters(pid int, horizon float64) {
	if r == nil || horizon <= 0 {
		return
	}
	events := r.Events()
	maxCore := -1
	for _, ev := range events {
		if ev.Pid == pid && ev.Core > maxCore {
			maxCore = ev.Core
		}
	}
	if maxCore < 0 {
		return
	}
	dt := horizon / utilWindows
	busy := make([]float64, utilWindows*(maxCore+1))
	for _, ev := range events {
		if ev.Pid != pid || ev.End <= ev.Start {
			continue
		}
		w0 := int(ev.Start / dt)
		w1 := int(ev.End / dt)
		if w1 >= utilWindows {
			w1 = utilWindows - 1
		}
		for w := w0; w <= w1 && w >= 0; w++ {
			lo, hi := float64(w)*dt, float64(w+1)*dt
			if ev.Start > lo {
				lo = ev.Start
			}
			if ev.End < hi {
				hi = ev.End
			}
			if hi > lo {
				busy[w*(maxCore+1)+ev.Core] += hi - lo
			}
		}
	}
	for w := 0; w < utilWindows; w++ {
		series := make([]CounterValue, maxCore+1)
		for c := 0; c <= maxCore; c++ {
			series[c] = CounterValue{Key: "c" + strconv.Itoa(c), Value: busy[w*(maxCore+1)+c] / dt}
		}
		r.AddCounter(CounterPoint{Name: "core util", Pid: pid, At: float64(w) * dt, Series: series})
	}
}

// Utilization returns per-core busy fractions over [0, horizon]; cores
// beyond the observed maximum are omitted.
func (r *Recorder) Utilization(horizon float64) map[int]float64 {
	if horizon <= 0 {
		return nil
	}
	busy := map[int]float64{}
	for _, ev := range r.Events() {
		busy[ev.Core] += ev.End - ev.Start
	}
	for c := range busy {
		busy[c] /= horizon
	}
	return busy
}
