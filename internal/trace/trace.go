// Package trace records per-task execution events and exports them in the
// Chrome trace-event format (chrome://tracing, Perfetto), giving the same
// post-mortem visibility into schedules that XiTAO's tracing offers: one
// lane per core, one slice per task execution, with place, priority and
// type attached.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one recorded task execution.
type Event struct {
	// Label is the task label.
	Label string
	// Category classifies the event ("task", "comm", …).
	Category string
	// Core is the lane the event is drawn in (the executing core).
	Core int
	// Start and End are in seconds (virtual or wall, engine-dependent).
	Start, End float64
	// Leader and Width describe the execution place.
	Leader, Width int
	// High marks critical tasks.
	High bool
}

// Recorder accumulates events. It is safe for concurrent use and cheap
// when nil: all methods are nil-tolerant so runtimes can call them
// unconditionally.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records one event. Safe on a nil recorder.
func (r *Recorder) Add(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// chromeEvent is the trace-event JSON schema (complete events, ph "X").
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the events as a Chrome trace-event JSON array.
// Load the file in chrome://tracing or https://ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		cat := ev.Category
		if cat == "" {
			cat = "task"
		}
		prio := "low"
		if ev.High {
			prio = "high"
		}
		out = append(out, chromeEvent{
			Name: ev.Label,
			Cat:  cat,
			Ph:   "X",
			Ts:   ev.Start * 1e6,
			Dur:  (ev.End - ev.Start) * 1e6,
			Pid:  0,
			Tid:  ev.Core,
			Args: map[string]string{
				"place":    fmt.Sprintf("(C%d,%d)", ev.Leader, ev.Width),
				"priority": prio,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Utilization returns per-core busy fractions over [0, horizon]; cores
// beyond the observed maximum are omitted.
func (r *Recorder) Utilization(horizon float64) map[int]float64 {
	if horizon <= 0 {
		return nil
	}
	busy := map[int]float64{}
	for _, ev := range r.Events() {
		busy[ev.Core] += ev.End - ev.Start
	}
	for c := range busy {
		busy[c] /= horizon
	}
	return busy
}
