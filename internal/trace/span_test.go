package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanSetNilSafe(t *testing.T) {
	var s *SpanSet
	s.Add(Span{Name: "x"})
	if s.Len() != 0 || s.Dropped() != 0 || s.Spans() != nil {
		t.Fatal("nil SpanSet must be inert")
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSpanSetCapDrops(t *testing.T) {
	s := NewSpanSet(2)
	for i := 0; i < 5; i++ {
		s.Add(Span{Name: "s", Start: time.Duration(i)})
	}
	if s.Len() != 2 {
		t.Fatalf("retained %d spans, want 2", s.Len())
	}
	if s.Dropped() != 3 {
		t.Fatalf("dropped %d spans, want 3", s.Dropped())
	}
}

func TestSpansSortedDeterministically(t *testing.T) {
	s := NewSpanSet(0)
	s.Add(Span{Name: "b", Lane: "l2", Start: 10 * time.Millisecond})
	s.Add(Span{Name: "a", Lane: "l1", Start: 10 * time.Millisecond})
	s.Add(Span{Name: "c", Lane: "l1", Start: 5 * time.Millisecond})
	got := s.Spans()
	want := []string{"c", "a", "b"}
	for i, sp := range got {
		if sp.Name != want[i] {
			t.Fatalf("span order %v, want c,a,b", got)
		}
	}
}

func TestWriteChromeTraceSpans(t *testing.T) {
	s := NewSpanSet(0)
	s.Add(Span{Name: "queued", Cat: "job", Lane: "job", Start: 0, End: 2 * time.Millisecond})
	s.Add(Span{Name: "shard 0", Cat: "dispatch", Lane: "local #0",
		Start: 2 * time.Millisecond, End: 9 * time.Millisecond,
		Args: map[string]string{"cells": "4"}})
	s.Add(Span{Name: "shard 1", Cat: "dispatch", Lane: "peer http://w #0",
		Start: 2 * time.Millisecond, End: 7 * time.Millisecond})

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 3 lanes → 3 thread_name metadata events, then 3 slices.
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6:\n%s", len(events), buf.String())
	}
	metaNames := map[string]bool{}
	tidByLane := map[string]float64{}
	for _, ev := range events[:3] {
		if ev["ph"] != "M" || ev["name"] != "thread_name" {
			t.Fatalf("expected thread_name metadata first, got %v", ev)
		}
		lane := ev["args"].(map[string]any)["name"].(string)
		metaNames[lane] = true
		tidByLane[lane] = ev["tid"].(float64)
	}
	for _, lane := range []string{"job", "local #0", "peer http://w #0"} {
		if !metaNames[lane] {
			t.Errorf("lane %q missing a thread_name event", lane)
		}
	}
	slice := events[4] // "shard 0", sorted after "queued"
	if slice["name"] != "shard 0" || slice["ph"] != "X" {
		t.Fatalf("unexpected slice %v", slice)
	}
	if slice["ts"].(float64) != 2000 || slice["dur"].(float64) != 7000 {
		t.Fatalf("shard 0 ts/dur = %v/%v, want 2000/7000 µs", slice["ts"], slice["dur"])
	}
	if slice["tid"].(float64) != tidByLane["local #0"] {
		t.Fatal("slice not drawn in its lane's tid")
	}
	if slice["args"].(map[string]any)["cells"] != "4" {
		t.Fatal("slice args lost")
	}
}

func TestSpanSetConcurrent(t *testing.T) {
	s := NewSpanSet(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Add(Span{Name: "s", Lane: "l", Start: time.Duration(i)})
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = s.Spans()
				var buf bytes.Buffer
				_ = s.WriteChromeTrace(&buf)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 2000 {
		t.Fatalf("retained %d spans, want 2000", s.Len())
	}
}
