package dag

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestLinearChain(t *testing.T) {
	g := New()
	a := g.Add(&Task{Label: "a"})
	b := g.Add(&Task{Label: "b"}, a)
	c := g.Add(&Task{Label: "c"}, b)
	ready := g.Start()
	if len(ready) != 1 || ready[0] != a {
		t.Fatalf("initial ready = %v", ready)
	}
	a.MarkRunning()
	next, drained := g.Complete(a)
	if drained || len(next) != 1 || next[0] != b {
		t.Fatalf("after a: next=%v drained=%v", next, drained)
	}
	b.MarkRunning()
	next, drained = g.Complete(b)
	if drained || len(next) != 1 || next[0] != c {
		t.Fatalf("after b: next=%v drained=%v", next, drained)
	}
	c.MarkRunning()
	next, drained = g.Complete(c)
	if !drained || len(next) != 0 {
		t.Fatalf("after c: next=%v drained=%v", next, drained)
	}
}

func TestDiamond(t *testing.T) {
	g := New()
	top := g.Add(&Task{Label: "top"})
	l := g.Add(&Task{Label: "l"}, top)
	r := g.Add(&Task{Label: "r"}, top)
	bottom := g.Add(&Task{Label: "bottom"}, l, r)
	g.Start()
	top.MarkRunning()
	next, _ := g.Complete(top)
	if len(next) != 2 {
		t.Fatalf("fanout = %d, want 2", len(next))
	}
	l.MarkRunning()
	if next, _ := g.Complete(l); len(next) != 0 {
		t.Fatal("bottom released early")
	}
	r.MarkRunning()
	next, drained := g.Complete(r)
	if len(next) != 1 || next[0] != bottom {
		t.Fatalf("bottom not released: %v", next)
	}
	if drained {
		t.Fatal("drained before bottom completed")
	}
}

func TestDynamicInsertionViaHook(t *testing.T) {
	g := New()
	count := 0
	var mkTask func(i int) *Task
	mkTask = func(i int) *Task {
		return &Task{
			Label: fmt.Sprintf("t%d", i),
			OnComplete: func(g *Graph, _ *Task) {
				count++
				if i < 4 {
					g.Add(mkTask(i + 1))
				}
			},
		}
	}
	g.Add(mkTask(0))
	ready := g.Start()
	for len(ready) > 0 {
		tsk := ready[0]
		ready = ready[1:]
		tsk.MarkRunning()
		next, _ := g.Complete(tsk)
		ready = append(ready, next...)
	}
	if count != 5 {
		t.Fatalf("hook chain executed %d tasks, want 5", count)
	}
	if g.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", g.Outstanding())
	}
}

func TestAddAfterPredecessorDone(t *testing.T) {
	g := New()
	a := g.Add(&Task{Label: "a"})
	g.Start()
	a.MarkRunning()
	g.Complete(a)
	// Dependency on a completed task must not block.
	b := g.Add(&Task{Label: "b"}, a)
	if b.State() != Ready {
		t.Fatalf("task depending on done predecessor is %v, want Ready", b.State())
	}
}

func TestAddEdge(t *testing.T) {
	g := New()
	a := g.Add(&Task{Label: "a"})
	b := g.Add(&Task{Label: "b"})
	g.AddEdge(a, b)
	ready := g.Start()
	if len(ready) != 1 || ready[0] != a {
		t.Fatalf("ready = %v, want just a", ready)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g := New()
	a := g.Add(&Task{Label: "a"})
	b := g.Add(&Task{Label: "b"}, a)
	// Force a cycle through the internal edge list.
	b.succs = append(b.succs, a)
	a.pending.Add(1)
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateOKOnDeepChain(t *testing.T) {
	g := New()
	var prev *Task
	for i := 0; i < 50000; i++ {
		t := &Task{}
		if prev == nil {
			g.Add(t)
		} else {
			g.Add(t, prev)
		}
		prev = t
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelismLayered(t *testing.T) {
	// P tasks per layer, critical task releases the next layer: the
	// paper's definition gives parallelism exactly P.
	for _, p := range []int{1, 2, 4, 7} {
		g := New()
		var crit *Task
		for layer := 0; layer < 10; layer++ {
			var newCrit *Task
			for i := 0; i < p; i++ {
				t := &Task{High: i == 0}
				if crit == nil {
					g.Add(t)
				} else {
					g.Add(t, crit)
				}
				if i == 0 {
					newCrit = t
				}
			}
			crit = newCrit
		}
		if got := g.Parallelism(); got != float64(p) {
			t.Fatalf("parallelism = %g, want %d", got, p)
		}
	}
}

func TestParallelismSingleTask(t *testing.T) {
	g := New()
	g.Add(&Task{})
	if got := g.Parallelism(); got != 1 {
		t.Fatalf("parallelism = %g, want 1", got)
	}
}

func TestParallelismEmptyGraph(t *testing.T) {
	if got := New().Parallelism(); got != 0 {
		t.Fatalf("empty graph parallelism = %g", got)
	}
}

// Property: parallelism is between 1 and the task count for any random
// layered DAG.
func TestParallelismBoundsProperty(t *testing.T) {
	check := func(layersRaw, widthRaw uint8) bool {
		layers := int(layersRaw%8) + 1
		width := int(widthRaw%5) + 1
		g := New()
		var prev []*Task
		for l := 0; l < layers; l++ {
			var cur []*Task
			for i := 0; i < width; i++ {
				t := &Task{}
				g.Add(t, prev...)
				cur = append(cur, t)
			}
			prev = cur
		}
		par := g.Parallelism()
		n := float64(g.Total())
		return par >= 1-1e-9 && par <= n+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIllegalTransitionPanics(t *testing.T) {
	g := New()
	a := g.Add(&Task{Label: "a"})
	g.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double MarkReady did not panic")
		}
	}()
	a.MarkReady() // already Ready
}

func TestConcurrentCompletes(t *testing.T) {
	g := New()
	root := g.Add(&Task{Label: "root"})
	const n = 200
	leaves := make([]*Task, n)
	for i := range leaves {
		leaves[i] = g.Add(&Task{}, root)
	}
	final := g.Add(&Task{Label: "final"}, leaves...)
	g.Start()
	root.MarkRunning()
	ready, _ := g.Complete(root)
	if len(ready) != n {
		t.Fatalf("released %d leaves", len(ready))
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lastReady []*Task
	for _, leaf := range ready {
		wg.Add(1)
		go func(leaf *Task) {
			defer wg.Done()
			leaf.MarkRunning()
			next, _ := g.Complete(leaf)
			if len(next) > 0 {
				mu.Lock()
				lastReady = append(lastReady, next...)
				mu.Unlock()
			}
		}(leaf)
	}
	wg.Wait()
	if len(lastReady) != 1 || lastReady[0] != final {
		t.Fatalf("final released %d times", len(lastReady))
	}
}

func TestTotalAndOutstanding(t *testing.T) {
	g := New()
	a := g.Add(&Task{})
	g.Add(&Task{}, a)
	if g.Total() != 2 || g.Outstanding() != 2 {
		t.Fatalf("total=%d outstanding=%d", g.Total(), g.Outstanding())
	}
	g.Start()
	a.MarkRunning()
	g.Complete(a)
	if g.Total() != 2 || g.Outstanding() != 1 {
		t.Fatalf("after one: total=%d outstanding=%d", g.Total(), g.Outstanding())
	}
}
