package dag

// Criticality inference: the paper relies on user-specified priorities and
// notes that "criticality can also be inferred dynamically by the runtime
// system [CATS]" but leaves that out of scope. This extension provides the
// static variant used by CATS-family schedulers, based on path slack:
// a task lies on a critical path exactly when its top level (longest path
// from any entry up to and including the task) plus its bottom level
// (longest path from the task to any exit) minus its own weight equals the
// critical-path length; tasks with small slack are near-critical.
//
// It operates on the static part of a graph before Start; dynamically
// inserted tasks keep whatever priority their creator assigns.

// InferCriticality marks as high priority every task whose path slack is at
// most (1-fraction) of the critical-path length: fraction 1 marks exactly
// the critical-path tasks, fraction 0.8 also marks tasks within 20% slack.
// Task weights are Cost.Ops when useCost is set (unset costs weigh 1), or
// uniformly 1 otherwise. It returns the number of newly marked tasks and
// the critical-path length in the chosen weight.
//
// Existing High flags are preserved (the union is taken), matching how a
// runtime would refine user annotations rather than discard them.
func (g *Graph) InferCriticality(fraction float64, useCost bool) (marked int, criticalPath float64) {
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	tasks := g.Tasks()
	if len(tasks) == 0 {
		return 0, 0
	}
	index := make(map[*Task]int, len(tasks))
	for i, t := range tasks {
		index[t] = i
	}
	weight := func(t *Task) float64 {
		if useCost && t.Cost.Ops > 0 {
			return t.Cost.Ops
		}
		return 1
	}
	preds := make([][]int, len(tasks))
	outdeg := make([]int, len(tasks))
	indeg := make([]int, len(tasks))
	for i, t := range tasks {
		outdeg[i] = len(t.succs)
		for _, s := range t.succs {
			j := index[s]
			preds[j] = append(preds[j], i)
			indeg[j]++
		}
	}

	// Bottom levels: reverse-topological DP (Kahn on out-degrees).
	bottom := make([]float64, len(tasks))
	queue := make([]int, 0, len(tasks))
	for i, d := range outdeg {
		if d == 0 {
			queue = append(queue, i)
			bottom[i] = weight(tasks[i])
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		for _, p := range preds[i] {
			if b := bottom[i] + weight(tasks[p]); b > bottom[p] {
				bottom[p] = b
			}
			outdeg[p]--
			if outdeg[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	if processed != len(tasks) {
		return 0, 0 // cyclic: nothing sensible to mark
	}

	// Top levels: forward-topological DP.
	top := make([]float64, len(tasks))
	queue = queue[:0]
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
			top[i] = weight(tasks[i])
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, s := range tasks[i].succs {
			j := index[s]
			if tl := top[i] + weight(tasks[j]); tl > top[j] {
				top[j] = tl
			}
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}

	for _, b := range bottom {
		if b > criticalPath {
			criticalPath = b
		}
	}
	maxSlack := (1 - fraction) * criticalPath
	for i, t := range tasks {
		slack := criticalPath - (top[i] + bottom[i] - weight(t))
		if slack <= maxSlack+1e-12 && !t.High {
			t.High = true
			marked++
		}
	}
	return marked, criticalPath
}

// ClearPriorities resets every task's High flag (useful before inference
// when user annotations should be discarded).
func (g *Graph) ClearPriorities() {
	for _, t := range g.Tasks() {
		t.High = false
	}
}
