// Package dag implements the task-graph substrate shared by the simulated
// and the real runtime.
//
// A Graph holds moldable tasks with high/low priority, dependency edges and
// optional completion hooks that may insert new tasks while the graph is
// executing (the paper's "dynamic DAG" — iterative applications unroll one
// iteration at a time). The package also computes the paper's DAG
// parallelism measure: total number of tasks divided by the length of the
// longest path.
package dag

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dynasym/internal/machine"
	"dynasym/internal/ptt"
)

// State tracks a task's lifecycle; runtimes advance it and assert on it.
type State int32

// Task lifecycle states.
const (
	Created State = iota // inserted, dependencies outstanding
	Ready                // all dependencies satisfied, queued
	Running              // executing on its place
	Done                 // finished
)

// Exec describes one member's share of a moldable execution to a real task
// body: the body must perform partition Part of Width.
type Exec struct {
	// Part is this member's index in [0, Width).
	Part int
	// Width is the resource width of the place executing the task.
	Width int
	// Leader is the core id of the place leader.
	Leader int
	// Worker is the core id executing this partition.
	Worker int
}

// Task is one node of the graph. Exported fields are set by the creator
// before Add and read-only afterwards.
type Task struct {
	// Label names the task in traces and error messages.
	Label string
	// Type selects the task's Performance Trace Table.
	Type ptt.TypeID
	// High marks the task as high priority (critical). It must not
	// change while the task is queued in a runtime: the simulated
	// runtime's deque counters and stealable-work bitmaps classify a
	// task once at enqueue time. (ClearPriorities/InferCriticality run
	// before Start, which satisfies this.)
	High bool
	// Cost describes the task to the simulator's machine model.
	Cost machine.Cost
	// Body, if non-nil, is executed by the real runtime: every member of
	// the place calls Body with its partition. Bodies must be safe to run
	// concurrently with other tasks' bodies.
	Body func(Exec)
	// OnComplete, if non-nil, runs exactly once after the task finishes
	// and before its successors are released; it may add tasks and edges
	// (dynamic DAG). It runs on the completing worker.
	OnComplete func(g *Graph, t *Task)
	// Iter tags the task with an application iteration for per-iteration
	// metrics; use -1 (or leave 0 for single-phase apps) when unused.
	// Small, dense iteration numbers aggregate fastest (metrics indexes
	// them directly); sparse tags work but fall back to a map.
	Iter int
	// Data carries workload-specific payload (e.g. the communication
	// endpoints of a distributed boundary-exchange task). The runtimes
	// never interpret it; execution hooks may.
	Data any

	id      int64
	pending atomic.Int32
	state   atomic.Int32
	succs   []*Task
}

// ID returns the task's graph-assigned identifier (its insertion index).
func (t *Task) ID() int64 { return t.id }

// Succs returns the task's current successor list. The returned slice
// aliases graph state: callers must not modify it and should read it only
// while the graph is quiescent (simrt snapshots it before execution).
func (t *Task) Succs() []*Task { return t.succs }

// PendingDeps returns the task's current unsatisfied-dependency count.
func (t *Task) PendingDeps() int32 { return t.pending.Load() }

// State returns the task's current lifecycle state.
func (t *Task) State() State { return State(t.state.Load()) }

// setState transitions the task, panicking on an illegal transition; the
// runtimes are the only callers.
func (t *Task) setState(from, to State) {
	if !t.state.CompareAndSwap(int32(from), int32(to)) {
		panic(fmt.Sprintf("dag: task %q (id %d) illegal transition %d->%d from %d",
			t.Label, t.id, from, to, t.state.Load()))
	}
}

// MarkReady transitions Created→Ready (called by the graph).
func (t *Task) MarkReady() { t.setState(Created, Ready) }

// MarkRunning transitions Ready→Running (called by runtimes at dispatch).
func (t *Task) MarkRunning() { t.setState(Ready, Running) }

// Graph is a mutable task graph. All methods are safe for concurrent use;
// the real runtime completes tasks from many goroutines.
type Graph struct {
	mu          sync.Mutex
	tasks       []*Task
	started     bool
	outstanding atomic.Int64
	total       atomic.Int64
	// readyBuf collects tasks that became ready outside a Complete call
	// (roots added dynamically by completion hooks); Complete drains it.
	readyBuf []*Task
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddLayer adds a batch of tasks that all depend on the same single
// predecessor (nil for none) — the shape of the synthetic layered DAGs —
// under one lock acquisition and one pass of counter updates. It is
// equivalent to calling Add(t, dep) for each task in order.
func (g *Graph) AddLayer(tasks []*Task, dep *Task) {
	if len(tasks) == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	base := int64(len(g.tasks))
	g.tasks = append(g.tasks, tasks...)
	g.total.Add(int64(len(tasks)))
	g.outstanding.Add(int64(len(tasks)))
	depOpen := dep != nil && dep.State() != Done
	if depOpen && cap(dep.succs)-len(dep.succs) < len(tasks) {
		grown := make([]*Task, len(dep.succs), len(dep.succs)+len(tasks))
		copy(grown, dep.succs)
		dep.succs = grown
	}
	for i, t := range tasks {
		t.id = base + int64(i)
		if depOpen {
			dep.succs = append(dep.succs, t)
			t.pending.Add(1)
		}
		if g.started && t.pending.Load() == 0 {
			t.MarkReady()
			g.readyBuf = append(g.readyBuf, t)
		}
	}
}

// Grow preallocates capacity for n additional tasks, so bulk builders
// (synthetic layered DAGs, iteration graphs) avoid repeated slice regrowth.
func (g *Graph) Grow(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cap(g.tasks)-len(g.tasks) < n {
		grown := make([]*Task, len(g.tasks), len(g.tasks)+n)
		copy(grown, g.tasks)
		g.tasks = grown
	}
}

// Add inserts the task with dependencies on the given predecessors and
// returns it. Predecessors that already completed do not block the task.
// Adding a task after Start is allowed (dynamic DAG); if it is immediately
// ready it will be handed to the runtime with the next Complete result.
func (g *Graph) Add(t *Task, deps ...*Task) *Task {
	if t == nil {
		panic("dag: Add(nil)")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	t.id = int64(len(g.tasks))
	g.tasks = append(g.tasks, t)
	g.total.Add(1)
	g.outstanding.Add(1)
	for _, d := range deps {
		if d.State() != Done {
			d.succs = append(d.succs, t)
			t.pending.Add(1)
		}
	}
	if g.started && t.pending.Load() == 0 {
		t.MarkReady()
		g.readyBuf = append(g.readyBuf, t)
	}
	return t
}

// AddEdge adds a dependency succ→pred after both tasks exist. If pred is
// already Done the edge is a no-op. It panics if succ already started.
func (g *Graph) AddEdge(pred, succ *Task) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if succ.State() != Created {
		panic(fmt.Sprintf("dag: AddEdge to task %q which already started", succ.Label))
	}
	if pred.State() == Done {
		return
	}
	pred.succs = append(pred.succs, succ)
	succ.pending.Add(1)
}

// Start freezes the initial graph and returns the initially ready tasks in
// insertion order. It must be called exactly once, by the runtime, before
// execution.
func (g *Graph) Start() []*Task {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		panic("dag: Start called twice")
	}
	g.started = true
	var ready []*Task
	for _, t := range g.tasks {
		if t.pending.Load() == 0 {
			t.MarkReady()
			ready = append(ready, t)
		}
	}
	return ready
}

// Complete marks t finished, runs its completion hook, and returns the
// tasks that became ready as a result (successors whose last dependency was
// t, plus any ready tasks inserted by hooks since the previous Complete).
// The second result is true when the whole graph has drained.
func (g *Graph) Complete(t *Task) (newlyReady []*Task, drained bool) {
	t.setState(Running, Done)
	if t.OnComplete != nil {
		t.OnComplete(g, t)
	}
	g.mu.Lock()
	for _, s := range t.succs {
		if s.pending.Add(-1) == 0 {
			s.MarkReady()
			if newlyReady == nil {
				// One exact-capacity allocation on the first ready
				// successor; completions that ready nothing allocate
				// nothing.
				newlyReady = make([]*Task, 0, len(t.succs))
			}
			newlyReady = append(newlyReady, s)
		}
	}
	if len(g.readyBuf) > 0 {
		newlyReady = append(newlyReady, g.readyBuf...)
		g.readyBuf = g.readyBuf[:0]
	}
	g.mu.Unlock()
	remaining := g.outstanding.Add(-1)
	return newlyReady, remaining == 0
}

// Outstanding returns the number of incomplete tasks.
func (g *Graph) Outstanding() int64 { return g.outstanding.Load() }

// Total returns the number of tasks ever added.
func (g *Graph) Total() int64 { return g.total.Load() }

// Tasks returns a snapshot of all tasks in insertion order.
func (g *Graph) Tasks() []*Task {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Task(nil), g.tasks...)
}

// AppendTasks appends the tasks with insertion index ≥ from to dst in
// order, reusing dst's capacity. Runtimes use it to snapshot the graph
// (from = 0) and to catch their task mirrors up after dynamic insertions
// without allocating a fresh slice per call.
func (g *Graph) AppendTasks(dst []*Task, from int) []*Task {
	g.mu.Lock()
	defer g.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(g.tasks) {
		return dst
	}
	return append(dst, g.tasks[from:]...)
}

// MarkDrained finalizes a graph whose execution was tracked outside the
// graph (simrt's static fast path keeps readiness counts in its own dense
// arrays): every task is stored Done with no pending dependencies and the
// outstanding count drops to zero — exactly the state the equivalent
// sequence of Complete calls would have left. It must only be called when
// every task has in fact executed.
func (g *Graph) MarkDrained() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, t := range g.tasks {
		t.pending.Store(0)
		t.state.Store(int32(Done))
	}
	g.outstanding.Store(0)
}

// Validate checks that the graph (as currently constructed) is acyclic and
// that every edge endpoint belongs to the graph. It is intended for static
// graphs before Start.
func (g *Graph) Validate() error {
	tasks := g.Tasks()
	index := make(map[*Task]int, len(tasks))
	for i, t := range tasks {
		index[t] = i
	}
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	color := make([]int8, len(tasks))
	// Iterative DFS to survive deep chains (synthetic DAGs have tens of
	// thousands of layers).
	type frame struct {
		node int
		next int
	}
	for start := range tasks {
		if color[start] != unvisited {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = onStack
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succs := tasks[f.node].succs
			if f.next < len(succs) {
				s := succs[f.next]
				f.next++
				j, ok := index[s]
				if !ok {
					return fmt.Errorf("dag: task %q has successor %q outside the graph", tasks[f.node].Label, s.Label)
				}
				switch color[j] {
				case onStack:
					return fmt.Errorf("dag: cycle through %q and %q", tasks[f.node].Label, s.Label)
				case unvisited:
					color[j] = onStack
					stack = append(stack, frame{node: j})
				}
				continue
			}
			color[f.node] = done
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// Parallelism returns the paper's DAG parallelism measure for the current
// static graph: total tasks divided by the number of tasks on the longest
// path. An empty graph has parallelism 0.
func (g *Graph) Parallelism() float64 {
	tasks := g.Tasks()
	if len(tasks) == 0 {
		return 0
	}
	index := make(map[*Task]int, len(tasks))
	for i, t := range tasks {
		index[t] = i
	}
	indeg := make([]int, len(tasks))
	for _, t := range tasks {
		for _, s := range t.succs {
			indeg[index[s]]++
		}
	}
	// Kahn topological order with longest-path DP (length counted in
	// tasks, so a single task has path length 1).
	depth := make([]int, len(tasks))
	queue := make([]int, 0, len(tasks))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
			depth[i] = 1
		}
	}
	longest := 0
	processed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		if depth[i] > longest {
			longest = depth[i]
		}
		for _, s := range tasks[i].succs {
			j := index[s]
			if d := depth[i] + 1; d > depth[j] {
				depth[j] = d
			}
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if processed != len(tasks) || longest == 0 {
		return 0 // cyclic graphs have no meaningful parallelism
	}
	return float64(len(tasks)) / float64(longest)
}
