package dag

import (
	"testing"

	"dynasym/internal/machine"
)

// diamond builds a 4-task diamond: a → {b, c} → d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.Add(&Task{Label: "a", High: true, Cost: machine.Cost{Ops: 1}})
	b := g.Add(&Task{Label: "b", Cost: machine.Cost{Ops: 2}}, a)
	c := g.Add(&Task{Label: "c", Cost: machine.Cost{Ops: 3}}, a)
	g.Add(&Task{Label: "d", Iter: 1, Cost: machine.Cost{Ops: 4}}, b, c)
	return g
}

// drain runs the graph to completion in ready order and returns the
// completion order of labels.
func drain(t *testing.T, g *Graph) []string {
	t.Helper()
	var order []string
	queue := g.Start()
	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]
		task.MarkRunning()
		order = append(order, task.Label)
		ready, _ := g.Complete(task)
		queue = append(queue, ready...)
	}
	if g.Outstanding() != 0 {
		t.Fatalf("graph did not drain: %d outstanding", g.Outstanding())
	}
	return order
}

func sameOrder(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFreezeNewGraphMatchesOriginal(t *testing.T) {
	orig := diamond(t)
	fz, err := orig.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if fz.Tasks() != 4 {
		t.Fatalf("Tasks() = %d, want 4", fz.Tasks())
	}
	inst := fz.NewGraph()
	ot, it := orig.Tasks(), inst.Tasks()
	if len(ot) != len(it) {
		t.Fatalf("instance has %d tasks, original %d", len(it), len(ot))
	}
	for i := range ot {
		o, n := ot[i], it[i]
		if o.Label != n.Label || o.Type != n.Type || o.High != n.High ||
			o.Iter != n.Iter || o.Cost != n.Cost || o.ID() != n.ID() {
			t.Fatalf("task %d differs: orig %+v inst %+v", i, o, n)
		}
		if len(o.succs) != len(n.succs) {
			t.Fatalf("task %d has %d succs, want %d", i, len(n.succs), len(o.succs))
		}
		for j := range o.succs {
			if o.succs[j].ID() != n.succs[j].ID() {
				t.Fatalf("task %d succ %d is id %d, want %d", i, j, n.succs[j].ID(), o.succs[j].ID())
			}
		}
	}
	want := drain(t, orig)
	got := drain(t, inst)
	if !sameOrder(got, want) {
		t.Fatalf("instance completion order %v, want %v", got, want)
	}
}

func TestFrozenResetReplays(t *testing.T) {
	g := diamond(t)
	fz, err := g.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	inst := fz.NewGraph()
	first := drain(t, inst)
	// Simulate external priority mutation between runs (ClearPriorities).
	for _, task := range inst.Tasks() {
		task.High = false
	}
	if err := fz.Reset(inst); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if inst.Outstanding() != 4 || inst.Total() != 4 {
		t.Fatalf("after Reset: outstanding=%d total=%d, want 4/4", inst.Outstanding(), inst.Total())
	}
	for _, task := range inst.Tasks() {
		if task.State() != Created {
			t.Fatalf("task %q state %v after Reset, want Created", task.Label, task.State())
		}
	}
	if !inst.Tasks()[0].High {
		t.Fatal("Reset did not restore the High mark")
	}
	second := drain(t, inst)
	if !sameOrder(first, second) {
		t.Fatalf("replay order %v, want %v", second, first)
	}
}

func TestFreezeRejectsDynamicGraphs(t *testing.T) {
	hooked := New()
	hooked.Add(&Task{Label: "h", OnComplete: func(*Graph, *Task) {}})
	if _, err := hooked.Freeze(); err == nil {
		t.Fatal("Freeze accepted a graph with a completion hook")
	}
	bodied := New()
	bodied.Add(&Task{Label: "b", Body: func(Exec) {}})
	if _, err := bodied.Freeze(); err == nil {
		t.Fatal("Freeze accepted a graph with a real body")
	}
	payload := New()
	payload.Add(&Task{Label: "p", Data: 7})
	if _, err := payload.Freeze(); err == nil {
		t.Fatal("Freeze accepted a graph with a data payload")
	}
	started := diamond(t)
	started.Start()
	if _, err := started.Freeze(); err == nil {
		t.Fatal("Freeze accepted a started graph")
	}
}

func TestFrozenResetRejectsForeignGraph(t *testing.T) {
	fz, err := diamond(t).Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	other := New()
	other.Add(&Task{Label: "solo"})
	if err := fz.Reset(other); err == nil {
		t.Fatal("Reset accepted a graph with a different task count")
	}
}

func TestNewGraphInstancesAreIndependent(t *testing.T) {
	fz, err := diamond(t).Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	a, b := fz.NewGraph(), fz.NewGraph()
	drain(t, a)
	// Draining a must leave b untouched.
	for _, task := range b.Tasks() {
		if task.State() != Created {
			t.Fatalf("sibling instance task %q state %v, want Created", task.Label, task.State())
		}
	}
	if b.Outstanding() != 4 {
		t.Fatalf("sibling instance outstanding %d, want 4", b.Outstanding())
	}
	drain(t, b)
}
