package dag

import (
	"testing"

	"dynasym/internal/machine"
)

// chainWithFanout builds a spine of n tasks where each spine task also
// releases f leaf tasks (leaves have no successors).
func chainWithFanout(n, f int) (*Graph, []*Task) {
	g := New()
	var spine []*Task
	var prev *Task
	for i := 0; i < n; i++ {
		t := &Task{Label: "spine"}
		if prev == nil {
			g.Add(t)
		} else {
			g.Add(t, prev)
		}
		spine = append(spine, t)
		for j := 0; j < f; j++ {
			leaf := &Task{Label: "leaf"}
			g.Add(leaf, t)
		}
		prev = t
	}
	return g, spine
}

func TestInferCriticalityMarksSpine(t *testing.T) {
	g, spine := chainWithFanout(10, 3)
	_, cp := g.InferCriticality(1.0, false)
	// The longest path is the 10 spine tasks plus one leaf of the last
	// spine task.
	if cp != 11 {
		t.Fatalf("critical path = %g, want 11", cp)
	}
	for _, s := range spine {
		if !s.High {
			t.Fatal("spine task not marked critical")
		}
	}
	// A leaf hanging off the first spine task has huge slack and must not
	// be marked; the last spine task's leaves lie on critical paths.
	for _, task := range g.Tasks() {
		if task.Label != "leaf" {
			continue
		}
	}
	leaves0 := leavesOf(g, spine[0])
	for _, l := range leaves0 {
		if l.High {
			t.Fatal("slack-heavy leaf marked critical")
		}
	}
	for _, l := range leavesOf(g, spine[len(spine)-1]) {
		if !l.High {
			t.Fatal("critical-path leaf not marked")
		}
	}
}

// leavesOf returns the leaf successors of a spine task.
func leavesOf(g *Graph, spine *Task) []*Task {
	var out []*Task
	for _, s := range spine.succs {
		if s.Label == "leaf" {
			out = append(out, s)
		}
	}
	return out
}

func TestInferCriticalityFraction(t *testing.T) {
	strict, _ := func() (int, float64) {
		g, _ := chainWithFanout(10, 1)
		return g.InferCriticality(1.0, false)
	}()
	loose, _ := func() (int, float64) {
		g, _ := chainWithFanout(10, 1)
		return g.InferCriticality(0.5, false)
	}()
	if loose <= strict {
		t.Fatalf("fraction 0.5 marked %d tasks, strict marked %d — loosening must mark more", loose, strict)
	}
}

func TestInferCriticalityCostWeighted(t *testing.T) {
	g := New()
	// Two parallel branches: a short chain of expensive tasks and a long
	// chain of cheap ones. Cost weighting must pick the expensive branch.
	root := g.Add(&Task{Label: "root", Cost: costOps(1)})
	exp := g.Add(&Task{Label: "heavy", Cost: costOps(100)}, root)
	g.Add(&Task{Label: "heavy2", Cost: costOps(100)}, exp)
	prev := root
	for i := 0; i < 5; i++ {
		prev = g.Add(&Task{Label: "cheap", Cost: costOps(1)}, prev)
	}
	marked, cp := g.InferCriticality(1.0, true)
	if cp != 201 {
		t.Fatalf("cost-weighted critical path = %g, want 201", cp)
	}
	if marked != 3 {
		t.Fatalf("marked %d tasks, want root+heavy+heavy2", marked)
	}
	if !exp.High {
		t.Fatal("expensive branch not marked critical")
	}
	// The cheap chain (bottom level ≤ 6) must not be marked.
	for _, task := range g.Tasks() {
		if task.Label == "cheap" && task.High {
			t.Fatal("cheap chain wrongly marked critical")
		}
	}
}

func TestInferCriticalityPreservesUserFlags(t *testing.T) {
	g := New()
	a := g.Add(&Task{Label: "a"})
	b := g.Add(&Task{Label: "b", High: true}) // user-marked, off critical path
	g.Add(&Task{Label: "c"}, a)
	g.InferCriticality(1.0, false)
	if !b.High {
		t.Fatal("user-marked priority was cleared")
	}
}

func TestClearPriorities(t *testing.T) {
	g := New()
	g.Add(&Task{High: true})
	g.Add(&Task{High: true})
	g.ClearPriorities()
	for _, task := range g.Tasks() {
		if task.High {
			t.Fatal("priority not cleared")
		}
	}
}

func TestInferCriticalityEmptyGraph(t *testing.T) {
	marked, cp := New().InferCriticality(1.0, false)
	if marked != 0 || cp != 0 {
		t.Fatal("empty graph inference nonzero")
	}
}

func costOps(ops float64) machine.Cost {
	return machine.Cost{Ops: ops}
}
