package dag

import (
	"fmt"

	"dynasym/internal/machine"
	"dynasym/internal/ptt"
)

// Frozen is an immutable snapshot of a static graph: the per-task fields
// runtimes read plus the dependency structure in compressed-sparse-row
// form. One Frozen can stamp out any number of independent Graph instances
// (NewGraph) and restore a drained instance to its pre-Start state (Reset),
// so grid sweeps build the workload once and pay a few bulk allocations —
// or, with Reset, none at all — per cell instead of re-running the builder.
//
// Only static graphs freeze: tasks with Body or OnComplete hooks are
// rejected, because completion hooks grow the graph while it executes and a
// grown instance no longer matches the snapshot. Dynamic workloads (KMeans,
// HeatDist) keep their per-cell builders.
type Frozen struct {
	protos  []frozenTask
	succOff []int32 // CSR row offsets, len(protos)+1
	succIdx []int32 // successor task indexes, in the builder's append order
}

// frozenTask is the immutable per-task snapshot. pending is the initial
// dependency count; state is always Created at snapshot time (Freeze
// rejects started graphs).
type frozenTask struct {
	label   string
	typ     ptt.TypeID
	high    bool
	iter    int
	cost    machine.Cost
	pending int32
}

// Freeze snapshots the graph. It fails if the graph already started or if
// any task carries a Body, OnComplete hook or Data payload — those make the
// graph dynamic or tie instances to shared mutable state, and callers
// should fall back to rebuilding such graphs per run.
func (g *Graph) Freeze() (*Frozen, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return nil, fmt.Errorf("dag: cannot freeze a started graph")
	}
	n := len(g.tasks)
	index := make(map[*Task]int32, n)
	for i, t := range g.tasks {
		index[t] = int32(i)
	}
	f := &Frozen{
		protos:  make([]frozenTask, n),
		succOff: make([]int32, n+1),
	}
	nsucc := 0
	for i, t := range g.tasks {
		if t.Body != nil || t.OnComplete != nil || t.Data != nil {
			return nil, fmt.Errorf("dag: cannot freeze task %q: bodies, completion hooks and data payloads are per-instance state", t.Label)
		}
		f.protos[i] = frozenTask{
			label:   t.Label,
			typ:     t.Type,
			high:    t.High,
			iter:    t.Iter,
			cost:    t.Cost,
			pending: t.pending.Load(),
		}
		nsucc += len(t.succs)
	}
	f.succIdx = make([]int32, 0, nsucc)
	for i, t := range g.tasks {
		f.succOff[i] = int32(len(f.succIdx))
		for _, s := range t.succs {
			j, ok := index[s]
			if !ok {
				return nil, fmt.Errorf("dag: cannot freeze: task %q has successor %q outside the graph", t.Label, s.Label)
			}
			f.succIdx = append(f.succIdx, j)
		}
	}
	f.succOff[n] = int32(len(f.succIdx))
	return f, nil
}

// Tasks returns the number of tasks in the snapshot.
func (f *Frozen) Tasks() int { return len(f.protos) }

// NewGraph materializes a fresh, independent Graph instance of the
// snapshot. Task ids, insertion order and successor order all match the
// originally frozen graph exactly, so a runtime executing the instance
// makes bit-identical scheduling decisions. The instance costs four bulk
// allocations regardless of task count.
func (f *Frozen) NewGraph() *Graph {
	n := len(f.protos)
	tasks := make([]Task, n)
	ptrs := make([]*Task, n)
	succs := make([]*Task, len(f.succIdx))
	for i := range tasks {
		p := &f.protos[i]
		t := &tasks[i]
		t.Label = p.label
		t.Type = p.typ
		t.High = p.high
		t.Iter = p.iter
		t.Cost = p.cost
		t.id = int64(i)
		t.pending.Store(p.pending)
		ptrs[i] = t
	}
	for i := range tasks {
		lo, hi := f.succOff[i], f.succOff[i+1]
		if lo == hi {
			continue
		}
		// Full-slice expression: each task's successor list is a private
		// window of the shared backing array and can never grow into its
		// neighbor's (static graphs never append after freeze anyway).
		s := succs[lo:lo:hi]
		for _, j := range f.succIdx[lo:hi] {
			s = append(s, ptrs[j])
		}
		tasks[i].succs = s
	}
	g := &Graph{tasks: ptrs}
	g.total.Store(int64(n))
	g.outstanding.Store(int64(n))
	return g
}

// Reset restores a drained (or fresh) instance of this snapshot to its
// pre-Start state, so the instance can execute again: per-task pending
// counts, states and priority marks are restored and the graph-level run
// state is cleared. It fails if the graph does not structurally match the
// snapshot (wrong task count — e.g. an instance of a different Frozen).
func (f *Frozen) Reset(g *Graph) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.tasks) != len(f.protos) {
		return fmt.Errorf("dag: Reset: graph has %d tasks, snapshot has %d", len(g.tasks), len(f.protos))
	}
	for i, t := range g.tasks {
		p := &f.protos[i]
		t.High = p.high
		t.pending.Store(p.pending)
		t.state.Store(int32(Created))
	}
	g.started = false
	g.readyBuf = g.readyBuf[:0]
	g.outstanding.Store(int64(len(g.tasks)))
	g.total.Store(int64(len(g.tasks)))
	return nil
}
