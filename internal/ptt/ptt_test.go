package ptt

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"dynasym/internal/topology"
)

func tx2Table(alpha float64) *Table {
	return NewTable(topology.TX2(), alpha)
}

func TestZeroInitialized(t *testing.T) {
	tbl := tx2Table(0)
	for _, pl := range tbl.Platform().Places() {
		if v := tbl.Value(pl); v != 0 {
			t.Fatalf("fresh entry %v = %g, want 0", pl, v)
		}
	}
}

func TestFirstUpdateStoresRawValue(t *testing.T) {
	tbl := tx2Table(0)
	pl := topology.Place{Leader: 1, Width: 1}
	tbl.Update(pl, 0.004)
	if v := tbl.Value(pl); v != 0.004 {
		t.Fatalf("first update stored %g, want 0.004", v)
	}
	if n := tbl.Count(pl); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
}

func TestWeightedAverage(t *testing.T) {
	tbl := tx2Table(0) // alpha = 1/5
	pl := topology.Place{Leader: 0, Width: 2}
	tbl.Update(pl, 1.0)
	tbl.Update(pl, 2.0)
	// (4×1.0 + 1×2.0)/5 = 1.2
	if v := tbl.Value(pl); math.Abs(v-1.2) > 1e-12 {
		t.Fatalf("weighted update gave %g, want 1.2", v)
	}
}

func TestPaperAdaptationSpeed(t *testing.T) {
	// The paper: "after a performance variation, at least three
	// measurements need to be taken before the PTT value becomes closer
	// to the new value" — i.e. the 1:4 weighting damps the first couple
	// of divergent observations but still converges quickly.
	tbl := tx2Table(0)
	pl := topology.Place{Leader: 2, Width: 1}
	tbl.Update(pl, 1.0) // steady state
	tbl.Update(pl, 2.0) // interference begins: observations double
	tbl.Update(pl, 2.0)
	v2 := tbl.Value(pl)
	if math.Abs(v2-2.0) < math.Abs(v2-1.0) {
		t.Fatalf("after only two divergent updates value %g already closer to new (too aggressive)", v2)
	}
	for i := 0; i < 8; i++ {
		tbl.Update(pl, 2.0)
	}
	if v := tbl.Value(pl); math.Abs(v-2.0) > 0.25 {
		t.Fatalf("after ten divergent updates value %g has not converged toward 2.0", v)
	}
}

func TestAlphaOneReplaces(t *testing.T) {
	tbl := tx2Table(1.0)
	pl := topology.Place{Leader: 0, Width: 1}
	tbl.Update(pl, 5)
	tbl.Update(pl, 1)
	if v := tbl.Value(pl); v != 1 {
		t.Fatalf("alpha=1 should replace, got %g", v)
	}
}

func TestInvalidObservationsIgnored(t *testing.T) {
	tbl := tx2Table(0)
	pl := topology.Place{Leader: 0, Width: 1}
	tbl.Update(pl, -1)
	tbl.Update(pl, 0)
	tbl.Update(pl, math.Inf(1))
	tbl.Update(pl, math.NaN())
	if v := tbl.Value(pl); v != 0 {
		t.Fatalf("invalid observations changed entry to %g", v)
	}
	tbl.Update(topology.Place{Leader: 1, Width: 4}, 1) // invalid place
	if len(tbl.Snapshot()) != 0 {
		t.Fatal("update to invalid place recorded")
	}
}

func TestValueInvalidPlaceIsInf(t *testing.T) {
	tbl := tx2Table(0)
	if v := tbl.Value(topology.Place{Leader: 1, Width: 2}); !math.IsInf(v, 1) {
		t.Fatalf("invalid place value = %g, want +Inf", v)
	}
}

func TestReset(t *testing.T) {
	tbl := tx2Table(0)
	pl := topology.Place{Leader: 0, Width: 1}
	tbl.Update(pl, 1)
	tbl.Reset()
	if tbl.Value(pl) != 0 || tbl.Count(pl) != 0 {
		t.Fatal("Reset did not clear entries")
	}
}

// Property: an update keeps the value within [min(old,new), max(old,new)].
func TestUpdateBoundedProperty(t *testing.T) {
	tbl := tx2Table(0)
	pl := topology.Place{Leader: 2, Width: 2}
	check := func(obsRaw uint32) bool {
		obs := float64(obsRaw%100000)/1000 + 0.001
		old := tbl.Value(pl)
		tbl.Update(pl, obs)
		v := tbl.Value(pl)
		if old == 0 {
			return v == obs
		}
		lo, hi := math.Min(old, obs), math.Max(old, obs)
		return v >= lo-1e-12 && v <= hi+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	tbl := tx2Table(0)
	pl := topology.Place{Leader: 0, Width: 1}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tbl.Update(pl, 1.0)
			}
		}()
	}
	wg.Wait()
	if n := tbl.Count(pl); n != 8000 {
		t.Fatalf("count = %d, want 8000", n)
	}
	if v := tbl.Value(pl); math.Abs(v-1.0) > 1e-9 {
		t.Fatalf("value = %g, want 1.0", v)
	}
}

func TestSnapshot(t *testing.T) {
	tbl := tx2Table(0)
	a := topology.Place{Leader: 0, Width: 1}
	b := topology.Place{Leader: 2, Width: 4}
	tbl.Update(a, 1)
	tbl.Update(b, 2)
	snap := tbl.Snapshot()
	if len(snap) != 2 || snap[a] != 1 || snap[b] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry(topology.TX2(), 0)
	t1 := reg.Get(0)
	t2 := reg.Get(0)
	if t1 != t2 {
		t.Fatal("Get not idempotent")
	}
	t3 := reg.Get(5)
	if t3 == t1 {
		t.Fatal("different types share a table")
	}
	if got := len(reg.Tables()); got != 6 {
		t.Fatalf("registry has %d slots, want 6", got)
	}
	t1.Update(topology.Place{Leader: 0, Width: 1}, 1)
	reg.ResetAll()
	if t1.Value(topology.Place{Leader: 0, Width: 1}) != 0 {
		t.Fatal("ResetAll did not clear")
	}
}

func TestRegistryConcurrentGet(t *testing.T) {
	reg := NewRegistry(topology.TX2(), 0)
	var wg sync.WaitGroup
	tables := make([]*Table, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tables[w] = reg.Get(TypeID(w % 4))
		}(w)
	}
	wg.Wait()
	for w := 0; w < 16; w++ {
		if tables[w] != reg.Get(TypeID(w%4)) {
			t.Fatal("concurrent Get produced distinct tables for one type")
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	tbl := tx2Table(0)
	pl := topology.Place{Leader: 0, Width: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Update(pl, 0.001)
	}
}

func BenchmarkValue(b *testing.B) {
	tbl := tx2Table(0)
	pl := topology.Place{Leader: 2, Width: 4}
	tbl.Update(pl, 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.Value(pl)
	}
}
