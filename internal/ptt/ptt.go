// Package ptt implements the Performance Trace Table, the online
// per-task-type performance model from the paper (Section 4.1.1) and from
// Rohlin et al. (HIP3ES 2019).
//
// One Table exists per task type. Each entry corresponds to one valid
// execution place (core, width) of the platform and holds a weighted moving
// average of execution times observed by the leader core of that place.
// Entries are initialized to zero, which the schedulers interpret as
// "unmeasured": a zero entry always wins a minimizing search, so every place
// is explored at least once before the model steers placement.
//
// The default update rule matches the paper's sensitivity analysis winner:
//
//	updated = (4*old + 1*new) / 5
//
// Tables are safe for concurrent use: the real runtime has one goroutine per
// worker updating entries after each task, exactly like XiTAO's workers.
package ptt

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"dynasym/internal/topology"
)

// TypeID identifies a task type. Each function implemented as a task gets
// its own TypeID and therefore its own Table, because per-place performance
// varies per type.
type TypeID int

// Table is the Performance Trace Table for one task type.
//
// The paper lays out rows per core so each worker touches one cache line;
// in Go we keep a flat slice indexed by dense place id, with one atomic
// word per entry, which gives the same property: distinct places never
// share a word, and a worker's local places are contiguous.
type Table struct {
	topo *topology.Platform
	// alpha is the weight of the new observation (paper: 1/5);
	// oneMinusAlpha is its precomputed complement so the update rule is one
	// fused multiply-add per observation.
	alpha         float64
	oneMinusAlpha float64
	// entries[placeID] holds the float64 bits of the weighted average.
	entries []atomic.Uint64
	// counts[placeID] counts updates, for diagnostics and reports.
	counts []atomic.Uint64
	// gen counts successful updates, starting at 1, and stamps the cached
	// best-place words below: a cache word whose stamp equals gen reflects
	// the current entries; any update (or Reset) invalidates every cache by
	// bumping gen. Schedulers query a best place on each dispatch decision
	// but the table only changes on task completion, so between completions
	// the minimizing searches collapse to one atomic load.
	gen atomic.Uint64
	// Cached minimizing-search results, packed gen<<bestIDBits | (id+1);
	// zero means never computed. bestLocalCost is indexed by core.
	bestCostAll   atomic.Uint64
	bestTimeAll   atomic.Uint64
	bestW1        atomic.Uint64
	bestLocalCost []atomic.Uint64
}

// DefaultAlpha is the paper's chosen new-sample weight (ratio 1:4).
const DefaultAlpha = 1.0 / 5.0

// NewTable builds an empty table for the platform. alpha is the weight given
// to new observations, in (0, 1]; alpha==1 replaces the entry outright
// (the "1" configuration of Figure 8). Passing alpha <= 0 selects
// DefaultAlpha.
func NewTable(topo *topology.Platform, alpha float64) *Table {
	alpha = clampAlpha(alpha)
	n := len(topo.Places())
	t := &Table{
		topo:          topo,
		alpha:         alpha,
		oneMinusAlpha: 1 - alpha,
		entries:       make([]atomic.Uint64, n),
		counts:        make([]atomic.Uint64, n),
		bestLocalCost: make([]atomic.Uint64, topo.NumCores()),
	}
	t.gen.Store(1)
	return t
}

// clampAlpha normalizes a configured new-observation weight: non-positive
// selects the paper's default, values above 1 saturate.
func clampAlpha(alpha float64) float64 {
	if alpha <= 0 {
		return DefaultAlpha
	}
	if alpha > 1 {
		return 1
	}
	return alpha
}

// Alpha returns the new-observation weight used by Update.
func (t *Table) Alpha() float64 { return t.alpha }

// Platform returns the platform the table is indexed by.
func (t *Table) Platform() *topology.Platform { return t.topo }

// Value returns the current estimate for the place, in seconds. Zero means
// the place has never been measured.
func (t *Table) Value(pl topology.Place) float64 {
	id := t.topo.PlaceID(pl)
	if id < 0 {
		return math.Inf(1)
	}
	return t.ValueByID(id)
}

// ValueByID returns the estimate for a dense place id.
func (t *Table) ValueByID(id int) float64 {
	return math.Float64frombits(t.entries[id].Load())
}

// Count returns how many observations the place has received.
func (t *Table) Count(pl topology.Place) uint64 {
	id := t.topo.PlaceID(pl)
	if id < 0 {
		return 0
	}
	return t.counts[id].Load()
}

// Update folds a new observation (seconds) into the entry for the place
// using the weighted-average rule. The first observation is stored directly
// rather than averaged with the zero initializer, so the entry reflects a
// real measurement as soon as one exists. Non-positive and non-finite
// observations are ignored.
func (t *Table) Update(pl topology.Place, observed float64) {
	t.UpdateByID(t.topo.PlaceID(pl), observed)
}

// UpdateByID is Update for a dense place id, skipping place resolution —
// the simulated runtime resolves the id once at dispatch and completion
// reuses it. Negative ids are ignored like invalid places.
func (t *Table) UpdateByID(id int, observed float64) {
	if id < 0 || observed <= 0 || math.IsInf(observed, 0) || math.IsNaN(observed) {
		return
	}
	e := &t.entries[id]
	for {
		oldBits := e.Load()
		old := math.Float64frombits(oldBits)
		next := observed
		if old != 0 {
			next = t.oneMinusAlpha*old + t.alpha*observed
		}
		if e.CompareAndSwap(oldBits, math.Float64bits(next)) {
			t.counts[id].Add(1)
			t.gen.Add(1)
			return
		}
	}
}

// Reset clears every entry back to the unmeasured state.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i].Store(0)
		t.counts[i].Store(0)
	}
	// Bumping (never rewinding) the generation invalidates the cached best
	// words: a stamp from before the Reset can never match again.
	t.gen.Add(1)
}

// adopt rebinds the table to a (possibly different) platform and alpha and
// clears it, reusing the entry storage when the shapes match. It is the
// pooled-reuse counterpart of NewTable and must not race concurrent
// readers; registries only call it between runs via Registry.Reset.
func (t *Table) adopt(topo *topology.Platform, alpha float64) {
	t.topo = topo
	t.alpha = clampAlpha(alpha)
	t.oneMinusAlpha = 1 - t.alpha
	if n := len(topo.Places()); n != len(t.entries) {
		t.entries = make([]atomic.Uint64, n)
		t.counts = make([]atomic.Uint64, n)
	}
	if n := topo.NumCores(); n != len(t.bestLocalCost) {
		t.bestLocalCost = make([]atomic.Uint64, n)
	}
	// Stale best-place cache words need no clearing: the generation bump in
	// Reset outdates every stamp they could carry.
	t.Reset()
}

// bestIDBits is the width of the place-id field in a packed best-place
// cache word. Platforms with ≥ 2^16-1 places simply skip caching.
const bestIDBits = 16

// BestGlobalCost returns the dense id of the place minimizing estimate ×
// width over every place (the paper's global resource-cost search). Zero
// (unmeasured) entries score zero and therefore always win, and ties keep
// the lowest id — the exploration and determinism rules the schedulers
// rely on. The result is cached against the update generation.
func (t *Table) BestGlobalCost() int { return t.cachedGlobal(&t.bestCostAll, true, false) }

// BestGlobalTime is BestGlobalCost minimizing the raw estimate (the
// paper's parallel-performance objective).
func (t *Table) BestGlobalTime() int { return t.cachedGlobal(&t.bestTimeAll, false, false) }

// BestGlobalW1 minimizes over width-1 places only, where cost and time
// coincide.
func (t *Table) BestGlobalW1() int { return t.cachedGlobal(&t.bestW1, false, true) }

// cachedGlobal serves a global minimizing search from its cache word,
// rescanning only when the update generation moved since it was stored.
func (t *Table) cachedGlobal(slot *atomic.Uint64, cost, widthOne bool) int {
	gen := t.gen.Load()
	if w := slot.Load(); w != 0 && w>>bestIDBits == gen {
		return int(w&(1<<bestIDBits-1)) - 1
	}
	places := t.topo.Places()
	best, bestScore := -1, -1.0
	for id := range t.entries {
		w := places[id].Width
		if widthOne && w != 1 {
			continue
		}
		v := math.Float64frombits(t.entries[id].Load())
		if cost {
			v *= float64(w)
		}
		if best < 0 || v < bestScore {
			best, bestScore = id, v
		}
	}
	t.storeBest(slot, gen, best)
	return best
}

// BestLocalCost returns the dense id of the place minimizing estimate ×
// width among the aligned places containing core (the paper's local width
// search), cached per core against the update generation. Entry order and
// tie-breaking match the uncached search: the width-1 place wins ties.
func (t *Table) BestLocalCost(core int) int {
	slot := &t.bestLocalCost[core]
	gen := t.gen.Load()
	if w := slot.Load(); w != 0 && w>>bestIDBits == gen {
		return int(w&(1<<bestIDBits-1)) - 1
	}
	cands := t.topo.LocalPlaceIDs(core)
	places := t.topo.Places()
	best := int(cands[0]) // widths ascend, so entry 0 is (core, 1)
	bestScore := math.Float64frombits(t.entries[best].Load())
	for _, cid := range cands[1:] {
		id := int(cid)
		v := math.Float64frombits(t.entries[id].Load()) * float64(places[id].Width)
		if v < bestScore {
			best, bestScore = id, v
		}
	}
	t.storeBest(slot, gen, best)
	return best
}

// storeBest packs and publishes one best-place cache word, skipping ids or
// generations too large for their fields (neither occurs in practice).
func (t *Table) storeBest(slot *atomic.Uint64, gen uint64, id int) {
	if id >= 0 && id < 1<<bestIDBits-1 && gen < 1<<(64-bestIDBits) {
		slot.Store(gen<<bestIDBits | uint64(id+1))
	}
}

// Snapshot returns a copy of the table's current estimates keyed by place.
func (t *Table) Snapshot() map[topology.Place]float64 {
	out := make(map[topology.Place]float64, len(t.entries))
	for id, pl := range t.topo.Places() {
		v := t.ValueByID(id)
		if v != 0 {
			out[pl] = v
		}
	}
	return out
}

// String renders the measured entries, ordered by place, for debugging.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("ptt{")
	first := true
	for id, pl := range t.topo.Places() {
		v := t.ValueByID(id)
		if v == 0 {
			continue
		}
		if !first {
			b.WriteString(" ")
		}
		first = false
		fmt.Fprintf(&b, "%s=%.3gs", pl, v)
	}
	b.WriteString("}")
	return b.String()
}

// Registry holds one Table per task type, created lazily. It is safe for
// concurrent use.
type Registry struct {
	topo   *topology.Platform
	alpha  float64
	mu     atomic.Pointer[[]*Table] // copy-on-write slice indexed by TypeID
	growMu chanMutex
}

// chanMutex is a tiny mutex built on a buffered channel so the zero Registry
// literal stays small; it guards the rare grow path only.
type chanMutex struct{ ch atomic.Pointer[chan struct{}] }

func (m *chanMutex) lock() {
	ch := m.ch.Load()
	if ch == nil {
		newCh := make(chan struct{}, 1)
		if m.ch.CompareAndSwap(nil, &newCh) {
			ch = &newCh
		} else {
			ch = m.ch.Load()
		}
	}
	*ch <- struct{}{}
}

func (m *chanMutex) unlock() { <-*m.ch.Load() }

// NewRegistry builds a registry producing tables with the given alpha
// (<= 0 selects DefaultAlpha).
func NewRegistry(topo *topology.Platform, alpha float64) *Registry {
	r := &Registry{topo: topo, alpha: alpha}
	empty := make([]*Table, 0)
	r.mu.Store(&empty)
	return r
}

// Get returns the table for the task type, creating it on first use.
func (r *Registry) Get(id TypeID) *Table {
	if id < 0 {
		panic(fmt.Sprintf("ptt: negative TypeID %d", id))
	}
	tables := *r.mu.Load()
	if int(id) < len(tables) && tables[id] != nil {
		return tables[id]
	}
	r.growMu.lock()
	defer r.growMu.unlock()
	tables = *r.mu.Load()
	if int(id) >= len(tables) {
		grown := make([]*Table, id+1)
		copy(grown, tables)
		tables = grown
	} else {
		tables = append([]*Table(nil), tables...)
	}
	if tables[id] == nil {
		tables[id] = NewTable(r.topo, r.alpha)
	}
	r.mu.Store(&tables)
	return tables[id]
}

// Tables returns the currently existing tables indexed by TypeID; entries
// may be nil for unused ids.
func (r *Registry) Tables() []*Table {
	return *r.mu.Load()
}

// ResetAll clears every table in the registry.
func (r *Registry) ResetAll() {
	for _, t := range r.Tables() {
		if t != nil {
			t.Reset()
		}
	}
}

// Reset returns the registry to the observable state NewRegistry(topo,
// alpha) produces — every table unmeasured, future tables built for the
// given platform and alpha — while reusing the existing tables' storage.
// Unlike ResetAll it may rebind the platform, so pooled runtimes can carry
// one registry across runs that rebuild their topology per run. It must
// not race concurrent Get/Update; callers reset between runs.
func (r *Registry) Reset(topo *topology.Platform, alpha float64) {
	r.growMu.lock()
	defer r.growMu.unlock()
	r.topo = topo
	r.alpha = alpha
	for _, t := range *r.mu.Load() {
		if t != nil {
			t.adopt(topo, alpha)
		}
	}
}
