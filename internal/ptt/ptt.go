// Package ptt implements the Performance Trace Table, the online
// per-task-type performance model from the paper (Section 4.1.1) and from
// Rohlin et al. (HIP3ES 2019).
//
// One Table exists per task type. Each entry corresponds to one valid
// execution place (core, width) of the platform and holds a weighted moving
// average of execution times observed by the leader core of that place.
// Entries are initialized to zero, which the schedulers interpret as
// "unmeasured": a zero entry always wins a minimizing search, so every place
// is explored at least once before the model steers placement.
//
// The default update rule matches the paper's sensitivity analysis winner:
//
//	updated = (4*old + 1*new) / 5
//
// Tables are safe for concurrent use: the real runtime has one goroutine per
// worker updating entries after each task, exactly like XiTAO's workers.
package ptt

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"dynasym/internal/topology"
)

// TypeID identifies a task type. Each function implemented as a task gets
// its own TypeID and therefore its own Table, because per-place performance
// varies per type.
type TypeID int

// Table is the Performance Trace Table for one task type.
//
// The paper lays out rows per core so each worker touches one cache line;
// in Go we keep a flat slice indexed by dense place id, with one atomic
// word per entry, which gives the same property: distinct places never
// share a word, and a worker's local places are contiguous.
type Table struct {
	topo *topology.Platform
	// alpha is the weight of the new observation (paper: 1/5).
	alpha float64
	// entries[placeID] holds the float64 bits of the weighted average.
	entries []atomic.Uint64
	// counts[placeID] counts updates, for diagnostics and reports.
	counts []atomic.Uint64
}

// DefaultAlpha is the paper's chosen new-sample weight (ratio 1:4).
const DefaultAlpha = 1.0 / 5.0

// NewTable builds an empty table for the platform. alpha is the weight given
// to new observations, in (0, 1]; alpha==1 replaces the entry outright
// (the "1" configuration of Figure 8). Passing alpha <= 0 selects
// DefaultAlpha.
func NewTable(topo *topology.Platform, alpha float64) *Table {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if alpha > 1 {
		alpha = 1
	}
	n := len(topo.Places())
	return &Table{
		topo:    topo,
		alpha:   alpha,
		entries: make([]atomic.Uint64, n),
		counts:  make([]atomic.Uint64, n),
	}
}

// Alpha returns the new-observation weight used by Update.
func (t *Table) Alpha() float64 { return t.alpha }

// Platform returns the platform the table is indexed by.
func (t *Table) Platform() *topology.Platform { return t.topo }

// Value returns the current estimate for the place, in seconds. Zero means
// the place has never been measured.
func (t *Table) Value(pl topology.Place) float64 {
	id := t.topo.PlaceID(pl)
	if id < 0 {
		return math.Inf(1)
	}
	return t.ValueByID(id)
}

// ValueByID returns the estimate for a dense place id.
func (t *Table) ValueByID(id int) float64 {
	return math.Float64frombits(t.entries[id].Load())
}

// Count returns how many observations the place has received.
func (t *Table) Count(pl topology.Place) uint64 {
	id := t.topo.PlaceID(pl)
	if id < 0 {
		return 0
	}
	return t.counts[id].Load()
}

// Update folds a new observation (seconds) into the entry for the place
// using the weighted-average rule. The first observation is stored directly
// rather than averaged with the zero initializer, so the entry reflects a
// real measurement as soon as one exists. Non-positive and non-finite
// observations are ignored.
func (t *Table) Update(pl topology.Place, observed float64) {
	id := t.topo.PlaceID(pl)
	if id < 0 || observed <= 0 || math.IsInf(observed, 0) || math.IsNaN(observed) {
		return
	}
	e := &t.entries[id]
	for {
		oldBits := e.Load()
		old := math.Float64frombits(oldBits)
		var next float64
		if old == 0 {
			next = observed
		} else {
			next = (1-t.alpha)*old + t.alpha*observed
		}
		if e.CompareAndSwap(oldBits, math.Float64bits(next)) {
			t.counts[id].Add(1)
			return
		}
	}
}

// Reset clears every entry back to the unmeasured state.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i].Store(0)
		t.counts[i].Store(0)
	}
}

// Snapshot returns a copy of the table's current estimates keyed by place.
func (t *Table) Snapshot() map[topology.Place]float64 {
	out := make(map[topology.Place]float64, len(t.entries))
	for id, pl := range t.topo.Places() {
		v := t.ValueByID(id)
		if v != 0 {
			out[pl] = v
		}
	}
	return out
}

// String renders the measured entries, ordered by place, for debugging.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("ptt{")
	first := true
	for id, pl := range t.topo.Places() {
		v := t.ValueByID(id)
		if v == 0 {
			continue
		}
		if !first {
			b.WriteString(" ")
		}
		first = false
		fmt.Fprintf(&b, "%s=%.3gs", pl, v)
	}
	b.WriteString("}")
	return b.String()
}

// Registry holds one Table per task type, created lazily. It is safe for
// concurrent use.
type Registry struct {
	topo   *topology.Platform
	alpha  float64
	mu     atomic.Pointer[[]*Table] // copy-on-write slice indexed by TypeID
	growMu chanMutex
}

// chanMutex is a tiny mutex built on a buffered channel so the zero Registry
// literal stays small; it guards the rare grow path only.
type chanMutex struct{ ch atomic.Pointer[chan struct{}] }

func (m *chanMutex) lock() {
	ch := m.ch.Load()
	if ch == nil {
		newCh := make(chan struct{}, 1)
		if m.ch.CompareAndSwap(nil, &newCh) {
			ch = &newCh
		} else {
			ch = m.ch.Load()
		}
	}
	*ch <- struct{}{}
}

func (m *chanMutex) unlock() { <-*m.ch.Load() }

// NewRegistry builds a registry producing tables with the given alpha
// (<= 0 selects DefaultAlpha).
func NewRegistry(topo *topology.Platform, alpha float64) *Registry {
	r := &Registry{topo: topo, alpha: alpha}
	empty := make([]*Table, 0)
	r.mu.Store(&empty)
	return r
}

// Get returns the table for the task type, creating it on first use.
func (r *Registry) Get(id TypeID) *Table {
	if id < 0 {
		panic(fmt.Sprintf("ptt: negative TypeID %d", id))
	}
	tables := *r.mu.Load()
	if int(id) < len(tables) && tables[id] != nil {
		return tables[id]
	}
	r.growMu.lock()
	defer r.growMu.unlock()
	tables = *r.mu.Load()
	if int(id) >= len(tables) {
		grown := make([]*Table, id+1)
		copy(grown, tables)
		tables = grown
	} else {
		tables = append([]*Table(nil), tables...)
	}
	if tables[id] == nil {
		tables[id] = NewTable(r.topo, r.alpha)
	}
	r.mu.Store(&tables)
	return tables[id]
}

// Tables returns the currently existing tables indexed by TypeID; entries
// may be nil for unused ids.
func (r *Registry) Tables() []*Table {
	return *r.mu.Load()
}

// ResetAll clears every table in the registry.
func (r *Registry) ResetAll() {
	for _, t := range r.Tables() {
		if t != nil {
			t.Reset()
		}
	}
}
