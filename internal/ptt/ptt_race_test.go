package ptt

import (
	"sync"
	"testing"

	"dynasym/internal/topology"
)

// The real runtime updates one Table from every worker concurrently while
// schedulers read it. These tests exercise exactly that under -race and
// check the lock-free update's invariants: no observation is lost from the
// counters, and the weighted average stays within the observed range.
func TestTableConcurrentUpdateRead(t *testing.T) {
	topo := topology.TX2()
	tbl := NewTable(topo, 0)
	places := topo.Places()
	const writers = 8
	const perWriter = 2000
	lo, hi := 1e-3, 2e-3

	stop := make(chan struct{})
	var readers sync.WaitGroup
	// Concurrent readers: values must always be 0 (unmeasured) or within
	// the observed bounds, never torn.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, pl := range places {
					v := tbl.Value(pl)
					if v != 0 && (v < lo || v > hi) {
						t.Errorf("torn or out-of-range read: %v", v)
						return
					}
				}
				_ = tbl.Snapshot()
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				pl := places[(w+i)%len(places)]
				// Alternate the extremes so averages move but stay bounded.
				obs := lo
				if i%2 == 0 {
					obs = hi
				}
				tbl.Update(pl, obs)
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	var total uint64
	for _, pl := range places {
		total += tbl.Count(pl)
	}
	if total != writers*perWriter {
		t.Fatalf("lost updates: %d counted, want %d", total, writers*perWriter)
	}
	for _, pl := range places {
		if v := tbl.Value(pl); v < lo || v > hi {
			t.Errorf("place %v final value %v outside [%v, %v]", pl, v, lo, hi)
		}
	}
}

// Concurrent Get-then-Update through the registry must land every update
// on one shared table (racing Gets must not strand updates on orphaned
// tables).
func TestRegistryConcurrentGetUpdate(t *testing.T) {
	topo := topology.TX2()
	reg := NewRegistry(topo, 0)
	const goroutines = 16
	tables := make([]*Table, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tables[i] = reg.Get(TypeID(7))
			tables[i].Update(topo.Places()[0], 1e-3)
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if tables[i] != tables[0] {
			t.Fatalf("Registry.Get returned distinct tables for one TypeID")
		}
	}
	if got := tables[0].Count(topo.Places()[0]); got != goroutines {
		t.Fatalf("counted %d updates, want %d", got, goroutines)
	}
}
