package sim_test

import (
	"testing"

	"dynasym/internal/sim"
)

// chain keeps `width` concurrent event chains alive until the budget is
// consumed, so the heap holds a realistic number of pending events while the
// benchmark measures steady-state push/pop/dispatch cost.
const benchChainWidth = 256

// BenchmarkEngineClosureEvents measures the closure-compat scheduling path
// (Engine.After with a pre-built func), the API cold callers like simnet and
// execution hooks use.
func BenchmarkEngineClosureEvents(b *testing.B) {
	e := sim.New()
	left := b.N
	var tick func()
	tick = func() {
		if left > 0 {
			left--
			e.After(1e-6, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < benchChainWidth && left > 0; i++ {
		left--
		e.After(float64(i)*1e-9, tick)
	}
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// rescheduler is a typed-event receiver that keeps its chain alive until the
// shared budget is spent — the steady-state pattern of simrt's step events.
type rescheduler struct {
	e    *sim.Engine
	left int
}

func (r *rescheduler) HandleEvent(kind sim.EventKind, at float64) {
	if r.left > 0 {
		r.left--
		r.e.AfterEvent(1e-6, r, kind)
	}
}

// BenchmarkEngineTypedEvents measures the allocation-free typed dispatch
// path (Engine.AtEvent), the API the simulated runtime's hot loops use.
func BenchmarkEngineTypedEvents(b *testing.B) {
	e := sim.New()
	r := &rescheduler{e: e, left: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < benchChainWidth && r.left > 0; i++ {
		r.left--
		e.AtEvent(float64(i)*1e-9, r, 0)
	}
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
