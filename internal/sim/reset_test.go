package sim

import "testing"

// runTrace schedules a fixed event pattern on the engine and returns the
// observed dispatch order.
func runTrace(e *Engine) []int {
	var got []int
	e.After(2e-6, func() { got = append(got, 1) })
	e.After(1e-6, func() {
		got = append(got, 2)
		e.After(0, func() { got = append(got, 3) })
	})
	e.After(5, func() { got = append(got, 4) })
	e.Run()
	return got
}

func TestResetMatchesFreshEngine(t *testing.T) {
	want := runTrace(New())

	e := New()
	runTrace(e)
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed != 0 {
		t.Fatalf("after Reset: now=%v pending=%d processed=%d, want all zero",
			e.Now(), e.Pending(), e.Processed)
	}
	got := runTrace(e)
	if len(got) != len(want) {
		t.Fatalf("reset engine dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reset engine order %v, want %v", got, want)
		}
	}
}

func TestResetDropsPendingEvents(t *testing.T) {
	e := New()
	fired := false
	e.After(1, func() { fired = true })
	e.After(1e-9, func() { e.Stop() })
	e.RunUntil(1e-6)
	e.Reset()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Reset, want 0", e.Pending())
	}
	e.Run()
	if fired {
		t.Fatal("Reset kept an event scheduled before the reset")
	}
}
