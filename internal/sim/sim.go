// Package sim is a minimal deterministic discrete-event simulation engine.
//
// Events are closures scheduled at absolute virtual times; ties are broken
// by scheduling order, so a run is a pure function of its inputs. The
// simulated runtime (internal/simrt) and the simulated network
// (internal/simnet) both drive their state machines from this engine.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: everything happens on the caller's goroutine inside Run.
type Engine struct {
	now     float64
	seq     uint64
	events  eventHeap
	stopped bool
	// Processed counts events executed, for diagnostics and perf tests.
	Processed uint64
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New returns an engine at virtual time 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it would violate causality and hide bugs.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Run executes events in order until the queue is empty or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() float64 { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with time ≤ limit, advancing the clock, until
// the queue drains, the limit is passed, or Stop is called. The clock never
// exceeds limit.
func (e *Engine) RunUntil(limit float64) float64 {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > limit {
			e.now = limit
			return e.now
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	return e.now
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
