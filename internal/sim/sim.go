// Package sim is a minimal deterministic discrete-event simulation engine.
//
// Events are scheduled at absolute virtual times; ties are broken by
// scheduling order, so a run is a pure function of its inputs. The simulated
// runtime (internal/simrt) and the simulated network (internal/simnet) both
// drive their state machines from this engine.
//
// # Event representation
//
// The engine queues two flavors of event in one typed record:
//
//	kind      scheduled by          dispatched as
//	-------   -------------------   -------------------------------
//	closure   At / After            fn()
//	typed     AtEvent / AfterEvent  h.HandleEvent(kind, at)
//
// Closure events are the convenience API for cold callers (simnet delivery,
// execution hooks, tests): each call allocates the closure it captures.
// Typed events are the hot-path API: the caller passes a long-lived Handler
// (in simrt, the per-core and per-assembly state machines) plus a small
// EventKind discriminator, and scheduling allocates nothing — the record is
// stored by value in the engine's heap slice, whose capacity is reused
// across the whole run.
//
// Event kinds are opaque to the engine: each Handler implementation defines
// its own kind space (see internal/simrt for the runtime's kind table).
//
// # Queue discipline
//
// Events dispatch in strict (at, seq) order, where seq is the global
// scheduling sequence number: events at equal times run in the order they
// were scheduled — the determinism contract the scenario engine's
// byte-identical fingerprints rely on. Because (at, seq) is a strict total
// order, dispatch order is independent of how the pending set is stored.
//
// Storage is tiered purely for speed; every tier holds pointer-free
// 16-byte (at, seq|slot) keys whose payload (handler or closure) lives in
// a freelist-managed arena, and dispatch always takes the minimum of the
// tiers' fronts:
//
//   - nowBuf: events scheduled at exactly the current time (completion
//     cascades, rendezvous deliveries) — FIFO, O(1) both ends. When the
//     other tiers hold nothing at the current time, RunUntil drains an
//     entire same-time generation of this buffer back to back without
//     re-consulting the other tiers, and typed events that duplicate the
//     buffer's tail — same handler, same kind, same timestamp — coalesce
//     into that single pending delivery;
//   - near: events within nearWindow of the clock (dispatch follow-ups,
//     steal retries, idle polls — the bulk of the traffic) — a sorted
//     slice with headroom at both ends: binary-search inserts memmove
//     whichever side of the insertion point is shorter, and the dominant
//     dispatch→step ping-pong (a key landing at the very front) is an O(1)
//     prepend into the gap that pops keep regenerating;
//   - keys: everything further out — an index-based 4-ary min-heap whose
//     sibling groups fit one cache line.
//
// All slices reuse their capacity, so steady-state scheduling and dispatch
// perform no allocation and no GC write barriers.
package sim

import (
	"fmt"
	"math"
)

// EventKind discriminates typed events for a Handler. Kind values are
// defined by each Handler implementation; the engine never interprets them.
type EventKind uint8

// Handler receives typed events. Implementations are long-lived objects
// (core state machines, assemblies) so scheduling a typed event against one
// performs no allocation.
type Handler interface {
	// HandleEvent runs the event. kind is the value passed to AtEvent and
	// at is the event's virtual time (equal to Engine.Now during the
	// call).
	HandleEvent(kind EventKind, at float64)
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: everything happens on the caller's goroutine inside Run.
type Engine struct {
	now  float64
	seq  uint64
	keys []eventKey // 4-ary min-heap of pointer-free sort keys
	recs []eventRec // payload arena, indexed by eventKey.slot
	free []int32    // recycled arena slots
	// nowBuf holds keys scheduled at exactly the current virtual time —
	// completion cascades (a finishing assembly releasing its members,
	// rendezvous deliveries) schedule at t == Now constantly. Entries are
	// appended in seq order, so the buffer is FIFO-sorted by (at, seq)
	// and such events bypass the heap entirely; nowHead is the dispatch
	// cursor. The buffer necessarily drains before the clock can advance,
	// because its entries compare below every later-time heap key.
	nowBuf  []eventKey
	nowHead int
	// near is the sorted near-term tier: keys within nearWindow of the
	// clock (dispatch follow-ups, steal retries, idle polls — the bulk of
	// the traffic) are insertion-sorted here, giving O(1) pops and short
	// memmoves instead of heap sifts. Only far-future keys (task finish
	// times) take the heap. The live window is near[nearHead:]; the
	// consumed prefix below nearHead is reusable headroom, so an insert
	// shifts whichever side of the insertion point is shorter — front
	// inserts (the dispatch→step follow-up that becomes the very next
	// event) slide into the headroom pops keep regenerating, in O(1),
	// instead of moving the whole window. Dispatch always takes the
	// (at, seq) minimum of the three tiers, so the routing never affects
	// order.
	near     []eventKey
	nearHead int
	stopped  bool
	// Processed counts events executed, for diagnostics and perf tests.
	Processed uint64
	// Coalesced counts typed events absorbed into an identical pending
	// delivery (same handler, kind and timestamp) instead of being queued.
	Coalesced uint64
}

// eventKey is one heap entry: the (at, seq) dispatch order plus the arena
// slot of the payload. It is deliberately pointer-free — heap sifts are
// plain memory moves with no GC write barriers — and 16 bytes, so a 4-ary
// sibling group spans a single cache line.
//
// seq and slot share one word: the upper 44 bits hold the scheduling
// sequence number (1.7e13 events before overflow, far beyond any run) and
// the lower 20 bits the arena slot (2^20 pending events; the engine panics
// if a simulation ever exceeds that). Comparing the packed word compares
// seq first, and equal-at events always differ in seq, so the slot bits
// never influence dispatch order.
type eventKey struct {
	at      float64
	seqSlot uint64
}

// slotBits is the width of the arena-slot field in eventKey.seqSlot.
const slotBits = 20

// nearWindow is the horizon of the sorted near-term tier: events scheduled
// within this many seconds of the clock go to the sorted ring, later ones
// to the heap. The value covers the runtime's dispatch/steal/poll delays
// (sub-millisecond) while keeping task completions out. Routing is a pure
// performance decision — dispatch order is decided by key comparison, so
// any value is correct.
const nearWindow = 1e-3

// nearCap bounds the sorted tier: beyond this many pending entries the
// memmove inserts stop paying for themselves, and further near-term keys
// overflow to the heap (again only a routing choice).
const nearCap = 768

// eventRec is one arena payload: either a closure (fn != nil) or a typed
// (h, kind) pair. Dispatch zeroes the record before reuse so the arena
// never retains dead handlers or closures.
type eventRec struct {
	kind EventKind
	h    Handler
	fn   func()
}

// New returns an engine at virtual time 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// checkTime validates a scheduling time. Scheduling in the past would
// violate causality and hide bugs.
func (e *Engine) checkTime(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN")
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics. This is the closure-compat API; hot paths should prefer
// AtEvent, which does not allocate.
func (e *Engine) At(t float64, fn func()) {
	e.checkTime(t)
	e.push(eventRec{fn: fn}, t)
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// AtEvent schedules a typed event for h at absolute virtual time t. It is
// allocation-free: the payload is stored by value in the engine's reusable
// arena and the heap holds only scalar keys.
//
// Typed events at equal timestamps are level-triggered per (handler, kind):
// scheduling an event identical to the most recently queued same-time event
// coalesces into that single pending delivery rather than delivering twice
// (the Coalesced counter records it). Handlers must therefore treat a
// delivery as "the condition at time t", not a countable pulse — which is
// how every state-machine handler in this repository already behaves — and
// must be comparable values (pointers).
func (e *Engine) AtEvent(t float64, h Handler, kind EventKind) {
	e.checkTime(t)
	e.push(eventRec{kind: kind, h: h}, t)
}

// AfterEvent schedules a typed event for h to run d seconds from now.
func (e *Engine) AfterEvent(d float64, h Handler, kind EventKind) {
	e.AtEvent(e.now+d, h, kind)
}

// Run executes events in order until the queue is empty or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() float64 { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with time ≤ limit, advancing the clock, until
// the queue drains, the limit is passed, or Stop is called. The clock never
// exceeds limit.
func (e *Engine) RunUntil(limit float64) float64 {
	e.stopped = false
	for !e.stopped {
		// The next event is the (at, seq) minimum of the three tiers'
		// fronts: the same-time FIFO, the sorted near-term ring, and the
		// far-future heap.
		src := srcNone
		var front, nearFront, heapFront *eventKey
		if e.nowHead < len(e.nowBuf) {
			src, front = srcNow, &e.nowBuf[e.nowHead]
		}
		if e.nearHead < len(e.near) {
			nearFront = &e.near[e.nearHead]
			if src == srcNone || nearFront.less(front) {
				src, front = srcNear, nearFront
			}
		}
		if len(e.keys) > 0 {
			heapFront = &e.keys[0]
			if src == srcNone || heapFront.less(front) {
				src, front = srcHeap, heapFront
			}
		}
		if src == srcNone {
			return e.now
		}
		at := front.at
		if at > limit {
			e.now = limit
			return e.now
		}
		var rec eventRec
		switch src {
		case srcNow:
			// Batch drain: while the other tiers' fronts are strictly
			// later than the buffer's time, this entire same-time FIFO
			// generation — including entries handlers append while it
			// runs — dispatches back to back without re-consulting them.
			// Handlers can only schedule at ≥ now, and same-time pushes
			// always join this buffer while it is non-empty, so no key at
			// this time can appear in the other tiers mid-drain.
			if (nearFront == nil || nearFront.at > at) && (heapFront == nil || heapFront.at > at) {
				e.now = at
				for e.nowHead < len(e.nowBuf) {
					k := e.nowBuf[e.nowHead]
					e.nowHead++
					if e.nowHead == len(e.nowBuf) {
						e.nowBuf = e.nowBuf[:0]
						e.nowHead = 0
					}
					r := e.take(int32(k.seqSlot & (1<<slotBits - 1)))
					e.Processed++
					if r.fn != nil {
						r.fn()
					} else {
						r.h.HandleEvent(r.kind, at)
					}
					if e.stopped {
						break
					}
				}
				continue
			}
			slot := int32(front.seqSlot & (1<<slotBits - 1))
			e.nowHead++
			if e.nowHead == len(e.nowBuf) {
				e.nowBuf = e.nowBuf[:0]
				e.nowHead = 0
			}
			rec = e.take(slot)
		case srcNear:
			slot := int32(front.seqSlot & (1<<slotBits - 1))
			e.nearHead++
			if e.nearHead == len(e.near) {
				e.near = e.near[:0]
				e.nearHead = 0
			}
			rec = e.take(slot)
		default:
			rec = e.pop()
		}
		e.now = at
		e.Processed++
		if rec.fn != nil {
			rec.fn()
		} else {
			rec.h.HandleEvent(rec.kind, at)
		}
	}
	return e.now
}

// Event-source tags for RunUntil's three-way front comparison.
const (
	srcNone = iota
	srcNow
	srcNear
	srcHeap
)

// Stop makes Run return after the current event completes. Pending events
// remain queued; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to the state of a freshly constructed one —
// virtual time 0, no pending events, zero counters — while keeping the
// tiers' allocated capacity. Callers that sweep many independent runs
// (scenario cell workers) Reset between runs so steady-state scheduling
// stays allocation-free across the whole sweep, with semantics identical
// to using a fresh engine per run.
func (e *Engine) Reset() {
	// Drop payloads explicitly: abandoned events (a run stopped early)
	// would otherwise keep their handlers and closures alive in the arena.
	for i := range e.recs {
		e.recs[i] = eventRec{}
	}
	e.now = 0
	e.seq = 0
	e.keys = e.keys[:0]
	e.recs = e.recs[:0]
	e.free = e.free[:0]
	e.nowBuf = e.nowBuf[:0]
	e.nowHead = 0
	e.near = e.near[:0]
	e.nearHead = 0
	e.stopped = false
	e.Processed = 0
	e.Coalesced = 0
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int {
	return len(e.keys) + (len(e.nowBuf) - e.nowHead) + (len(e.near) - e.nearHead)
}

// less orders the heap by (at, seq). seq values are unique, so this is a
// strict total order and the pop sequence is independent of heap shape.
func (a *eventKey) less(b *eventKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seqSlot < b.seqSlot
}

// nearInsert places a key into the sorted near-term tier, whose live window
// is near[nearHead:]. The two dominant arrival patterns are O(1): a key at
// or above the back (completions, polls) appends, a key below the current
// front (the dispatch follow-up that becomes the very next event) slides
// into the headroom that pops regenerate one slot per dispatch. Everything
// else binary-searches for its position and memmoves whichever side of the
// window is shorter, so an insert costs O(min(i, n-i)) contiguous moves.
func (e *Engine) nearInsert(k eventKey) {
	if e.nearHead >= 3*nearCap {
		// Recycle the consumed prefix before it forces the slice to grow,
		// keeping nearCap slots of front headroom. The window holds at most
		// nearCap live keys, so the slice stabilizes at ~4×nearCap entries.
		live := copy(e.near[nearCap:], e.near[e.nearHead:])
		e.near = e.near[:nearCap+live]
		e.nearHead = nearCap
	}
	a := e.near
	n := len(a)
	if n == e.nearHead || !k.less(&a[n-1]) {
		e.near = append(a, k)
		return
	}
	if e.nearHead > 0 && k.less(&a[e.nearHead]) {
		e.nearHead--
		a[e.nearHead] = k
		return
	}
	lo, hi := e.nearHead, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if k.less(&a[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if e.nearHead > 0 && lo-e.nearHead <= n-lo {
		// Front side shorter: shift [nearHead, lo) down into the headroom.
		copy(a[e.nearHead-1:], a[e.nearHead:lo])
		a[lo-1] = k
		e.nearHead--
		return
	}
	// Back side shorter (or no front headroom): shift [lo, n) up one slot.
	a = append(a, k)
	copy(a[lo+1:], a[lo:n])
	a[lo] = k
	e.near = a
}

// take reads and recycles one arena slot.
func (e *Engine) take(slot int32) eventRec {
	rec := e.recs[slot]
	e.recs[slot] = eventRec{}
	e.free = append(e.free, slot)
	return rec
}

// push stores the payload in the arena and enqueues its key: same-time
// events go to the FIFO buffer (coalescing typed duplicates of its tail),
// near-term keys go to the sorted ring, everything else sifts up the 4-ary
// heap.
func (e *Engine) push(rec eventRec, at float64) {
	// Same-time events join the FIFO only while the buffer holds a single
	// time value: RunUntil with a limit below the clock legally rewinds
	// `now` beneath undispatched buffer entries, and mixing times would
	// break the buffer's sorted-by-(at, seq) property.
	nowEligible := at == e.now && (e.nowHead == len(e.nowBuf) || e.nowBuf[len(e.nowBuf)-1].at == at)
	if nowEligible && rec.fn == nil && e.nowHead < len(e.nowBuf) {
		// Typed same-time duplicates of the pending tail collapse into one
		// delivery (see AtEvent): the second delivery would observe exactly
		// the state the first one left, at the same virtual time.
		tail := &e.recs[int32(e.nowBuf[len(e.nowBuf)-1].seqSlot&(1<<slotBits-1))]
		if tail.fn == nil && tail.h == rec.h && tail.kind == rec.kind {
			e.Coalesced++
			return
		}
	}
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
		e.recs[slot] = rec
	} else {
		slot = int32(len(e.recs))
		if slot >= 1<<slotBits {
			panic("sim: more than 2^20 concurrently pending events")
		}
		e.recs = append(e.recs, rec)
	}
	e.seq++
	key := eventKey{at: at, seqSlot: e.seq<<slotBits | uint64(slot)}
	if nowEligible {
		e.nowBuf = append(e.nowBuf, key)
		return
	}
	if at-e.now < nearWindow && len(e.near)-e.nearHead < nearCap {
		e.nearInsert(key)
		return
	}
	h := append(e.keys, key)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h[i].less(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.keys = h
}

// pop removes the minimum key and returns its payload, recycling the arena
// slot and zeroing it so the engine does not retain the handler or closure.
//
// The sift uses the bottom-up strategy: the root hole walks to the leaf
// level along the min-child path (one move and three comparisons per
// level), then the displaced last element bubbles up from the hole —
// usually zero levels, since the last element of a heap is almost always
// leaf-sized. The classic top-down sift pays an extra comparison against
// the displaced element at every level instead.
func (e *Engine) pop() eventRec {
	h := e.keys
	slot := int32(h[0].seqSlot & (1<<slotBits - 1))
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			if c+4 <= n {
				// Full sibling group, unrolled: one 64-byte cache line.
				if h[c+1].less(&h[m]) {
					m = c + 1
				}
				if h[c+2].less(&h[m]) {
					m = c + 2
				}
				if h[c+3].less(&h[m]) {
					m = c + 3
				}
			} else {
				for j := c + 1; j < n; j++ {
					if h[j].less(&h[m]) {
						m = j
					}
				}
			}
			h[i] = h[m]
			i = m
		}
		for i > 0 {
			p := (i - 1) / 4
			if !last.less(&h[p]) {
				break
			}
			h[i] = h[p]
			i = p
		}
		h[i] = last
	}
	e.keys = h
	return e.take(slot)
}
