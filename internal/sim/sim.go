// Package sim is a minimal deterministic discrete-event simulation engine.
//
// Events are scheduled at absolute virtual times; ties are broken by
// scheduling order, so a run is a pure function of its inputs. The simulated
// runtime (internal/simrt) and the simulated network (internal/simnet) both
// drive their state machines from this engine.
//
// # Event representation
//
// The engine queues two flavors of event in one typed record:
//
//	kind      scheduled by          dispatched as
//	-------   -------------------   -------------------------------
//	closure   At / After            fn()
//	typed     AtEvent / AfterEvent  h.HandleEvent(kind, at)
//
// Closure events are the convenience API for cold callers (simnet delivery,
// execution hooks, tests): each call allocates the closure it captures.
// Typed events are the hot-path API: the caller passes a long-lived Handler
// (in simrt, the per-core and per-assembly state machines) plus a small
// EventKind discriminator, and scheduling allocates nothing — the record is
// stored by value in the engine's heap slice, whose capacity is reused
// across the whole run.
//
// Event kinds are opaque to the engine: each Handler implementation defines
// its own kind space (see internal/simrt for the runtime's kind table).
//
// # Queue discipline
//
// Events dispatch in strict (at, seq) order, where seq is the global
// scheduling sequence number: events at equal times run in the order they
// were scheduled — the determinism contract the scenario engine's
// byte-identical fingerprints rely on. Because (at, seq) is a strict total
// order, dispatch order is independent of how the pending set is stored.
//
// Storage is tiered purely for speed; every tier holds pointer-free
// 16-byte (at, seq|slot) keys whose payload (handler or closure) lives in
// a freelist-managed arena, and dispatch always takes the minimum of the
// tiers' fronts:
//
//   - nowBuf: events scheduled at exactly the current time (completion
//     cascades, rendezvous deliveries) — FIFO, O(1) both ends;
//   - near: events within nearWindow of the clock (dispatch follow-ups,
//     steal retries, idle polls — the bulk of the traffic) — a sorted ring
//     with binary-search inserts and O(1) front pops;
//   - keys: everything further out — an index-based 4-ary min-heap whose
//     sibling groups fit one cache line.
//
// All slices reuse their capacity, so steady-state scheduling and dispatch
// perform no allocation and no GC write barriers.
package sim

import (
	"fmt"
	"math"
)

// EventKind discriminates typed events for a Handler. Kind values are
// defined by each Handler implementation; the engine never interprets them.
type EventKind uint8

// Handler receives typed events. Implementations are long-lived objects
// (core state machines, assemblies) so scheduling a typed event against one
// performs no allocation.
type Handler interface {
	// HandleEvent runs the event. kind is the value passed to AtEvent and
	// at is the event's virtual time (equal to Engine.Now during the
	// call).
	HandleEvent(kind EventKind, at float64)
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: everything happens on the caller's goroutine inside Run.
type Engine struct {
	now  float64
	seq  uint64
	keys []eventKey // 4-ary min-heap of pointer-free sort keys
	recs []eventRec // payload arena, indexed by eventKey.slot
	free []int32    // recycled arena slots
	// nowBuf holds keys scheduled at exactly the current virtual time —
	// completion cascades (a finishing assembly releasing its members,
	// rendezvous deliveries) schedule at t == Now constantly. Entries are
	// appended in seq order, so the buffer is FIFO-sorted by (at, seq)
	// and such events bypass the heap entirely; nowHead is the dispatch
	// cursor. The buffer necessarily drains before the clock can advance,
	// because its entries compare below every later-time heap key.
	nowBuf  []eventKey
	nowHead int
	// near is the sorted near-term tier: keys within nearWindow of the
	// clock (dispatch follow-ups, steal retries, idle polls — the bulk of
	// the traffic) are insertion-sorted here, giving O(1) pops and small
	// memmove inserts instead of heap sifts. Only far-future keys (task
	// finish times) take the heap. Dispatch always takes the (at, seq)
	// minimum of the three tiers, so the routing never affects order.
	near     []eventKey
	nearHead int
	stopped  bool
	// Processed counts events executed, for diagnostics and perf tests.
	Processed uint64
}

// eventKey is one heap entry: the (at, seq) dispatch order plus the arena
// slot of the payload. It is deliberately pointer-free — heap sifts are
// plain memory moves with no GC write barriers — and 16 bytes, so a 4-ary
// sibling group spans a single cache line.
//
// seq and slot share one word: the upper 44 bits hold the scheduling
// sequence number (1.7e13 events before overflow, far beyond any run) and
// the lower 20 bits the arena slot (2^20 pending events; the engine panics
// if a simulation ever exceeds that). Comparing the packed word compares
// seq first, and equal-at events always differ in seq, so the slot bits
// never influence dispatch order.
type eventKey struct {
	at      float64
	seqSlot uint64
}

// slotBits is the width of the arena-slot field in eventKey.seqSlot.
const slotBits = 20

// nearWindow is the horizon of the sorted near-term tier: events scheduled
// within this many seconds of the clock go to the sorted ring, later ones
// to the heap. The value covers the runtime's dispatch/steal/poll delays
// (sub-millisecond) while keeping task completions out. Routing is a pure
// performance decision — dispatch order is decided by key comparison, so
// any value is correct.
const nearWindow = 1e-3

// nearCap bounds the sorted tier: beyond this many pending entries the
// memmove inserts stop paying for themselves, and further near-term keys
// overflow to the heap (again only a routing choice).
const nearCap = 768

// eventRec is one arena payload: either a closure (fn != nil) or a typed
// (h, kind) pair. Dispatch zeroes the record before reuse so the arena
// never retains dead handlers or closures.
type eventRec struct {
	kind EventKind
	h    Handler
	fn   func()
}

// New returns an engine at virtual time 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// checkTime validates a scheduling time. Scheduling in the past would
// violate causality and hide bugs.
func (e *Engine) checkTime(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN")
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics. This is the closure-compat API; hot paths should prefer
// AtEvent, which does not allocate.
func (e *Engine) At(t float64, fn func()) {
	e.checkTime(t)
	e.push(eventRec{fn: fn}, t)
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// AtEvent schedules a typed event for h at absolute virtual time t. It is
// allocation-free: the payload is stored by value in the engine's reusable
// arena and the heap holds only scalar keys.
func (e *Engine) AtEvent(t float64, h Handler, kind EventKind) {
	e.checkTime(t)
	e.push(eventRec{kind: kind, h: h}, t)
}

// AfterEvent schedules a typed event for h to run d seconds from now.
func (e *Engine) AfterEvent(d float64, h Handler, kind EventKind) {
	e.AtEvent(e.now+d, h, kind)
}

// Run executes events in order until the queue is empty or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() float64 { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with time ≤ limit, advancing the clock, until
// the queue drains, the limit is passed, or Stop is called. The clock never
// exceeds limit.
func (e *Engine) RunUntil(limit float64) float64 {
	e.stopped = false
	for !e.stopped {
		// The next event is the (at, seq) minimum of the three tiers'
		// fronts: the same-time FIFO, the sorted near-term ring, and the
		// far-future heap.
		src := srcNone
		var front *eventKey
		if e.nowHead < len(e.nowBuf) {
			src, front = srcNow, &e.nowBuf[e.nowHead]
		}
		if e.nearHead < len(e.near) {
			if nf := &e.near[e.nearHead]; src == srcNone || nf.less(front) {
				src, front = srcNear, nf
			}
		}
		if len(e.keys) > 0 {
			if hf := &e.keys[0]; src == srcNone || hf.less(front) {
				src, front = srcHeap, hf
			}
		}
		if src == srcNone {
			return e.now
		}
		at := front.at
		if at > limit {
			e.now = limit
			return e.now
		}
		var rec eventRec
		switch src {
		case srcNow:
			slot := int32(front.seqSlot & (1<<slotBits - 1))
			e.nowHead++
			if e.nowHead == len(e.nowBuf) {
				e.nowBuf = e.nowBuf[:0]
				e.nowHead = 0
			}
			rec = e.take(slot)
		case srcNear:
			slot := int32(front.seqSlot & (1<<slotBits - 1))
			e.nearHead++
			if e.nearHead == len(e.near) {
				e.near = e.near[:0]
				e.nearHead = 0
			}
			rec = e.take(slot)
		default:
			rec = e.pop()
		}
		e.now = at
		e.Processed++
		if rec.fn != nil {
			rec.fn()
		} else {
			rec.h.HandleEvent(rec.kind, at)
		}
	}
	return e.now
}

// Event-source tags for RunUntil's three-way front comparison.
const (
	srcNone = iota
	srcNow
	srcNear
	srcHeap
)

// Stop makes Run return after the current event completes. Pending events
// remain queued; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to the state of a freshly constructed one —
// virtual time 0, no pending events, zero counters — while keeping the
// tiers' allocated capacity. Callers that sweep many independent runs
// (scenario cell workers) Reset between runs so steady-state scheduling
// stays allocation-free across the whole sweep, with semantics identical
// to using a fresh engine per run.
func (e *Engine) Reset() {
	// Drop payloads explicitly: abandoned events (a run stopped early)
	// would otherwise keep their handlers and closures alive in the arena.
	for i := range e.recs {
		e.recs[i] = eventRec{}
	}
	e.now = 0
	e.seq = 0
	e.keys = e.keys[:0]
	e.recs = e.recs[:0]
	e.free = e.free[:0]
	e.nowBuf = e.nowBuf[:0]
	e.nowHead = 0
	e.near = e.near[:0]
	e.nearHead = 0
	e.stopped = false
	e.Processed = 0
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int {
	return len(e.keys) + (len(e.nowBuf) - e.nowHead) + (len(e.near) - e.nearHead)
}

// less orders the heap by (at, seq). seq values are unique, so this is a
// strict total order and the pop sequence is independent of heap shape.
func (a *eventKey) less(b *eventKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seqSlot < b.seqSlot
}

// nearInsert places a key into the sorted near-term ring: binary search
// for the insertion point, one memmove of the (short) suffix. The consumed
// prefix is compacted away once it dominates the slice, keeping the cost
// amortized O(1) per event plus the move.
func (e *Engine) nearInsert(k eventKey) {
	if e.nearHead > 0 && e.nearHead*2 >= len(e.near) {
		n := copy(e.near, e.near[e.nearHead:])
		e.near = e.near[:n]
		e.nearHead = 0
	}
	a := e.near
	lo, hi := e.nearHead, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if k.less(&a[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	a = append(a, eventKey{})
	copy(a[lo+1:], a[lo:])
	a[lo] = k
	e.near = a
}

// take reads and recycles one arena slot.
func (e *Engine) take(slot int32) eventRec {
	rec := e.recs[slot]
	e.recs[slot] = eventRec{}
	e.free = append(e.free, slot)
	return rec
}

// push stores the payload in the arena and enqueues its key: same-time
// events go to the FIFO buffer, everything else sifts up the 4-ary heap.
func (e *Engine) push(rec eventRec, at float64) {
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
		e.recs[slot] = rec
	} else {
		slot = int32(len(e.recs))
		if slot >= 1<<slotBits {
			panic("sim: more than 2^20 concurrently pending events")
		}
		e.recs = append(e.recs, rec)
	}
	e.seq++
	key := eventKey{at: at, seqSlot: e.seq<<slotBits | uint64(slot)}
	// Same-time events join the FIFO only while the buffer holds a single
	// time value: RunUntil with a limit below the clock legally rewinds
	// `now` beneath undispatched buffer entries, and mixing times would
	// break the buffer's sorted-by-(at, seq) property.
	if at == e.now && (e.nowHead == len(e.nowBuf) || e.nowBuf[len(e.nowBuf)-1].at == at) {
		e.nowBuf = append(e.nowBuf, key)
		return
	}
	if at-e.now < nearWindow && len(e.near)-e.nearHead < nearCap {
		e.nearInsert(key)
		return
	}
	h := append(e.keys, key)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h[i].less(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.keys = h
}

// pop removes the minimum key and returns its payload, recycling the arena
// slot and zeroing it so the engine does not retain the handler or closure.
//
// The sift uses the bottom-up strategy: the root hole walks to the leaf
// level along the min-child path (one move and three comparisons per
// level), then the displaced last element bubbles up from the hole —
// usually zero levels, since the last element of a heap is almost always
// leaf-sized. The classic top-down sift pays an extra comparison against
// the displaced element at every level instead.
func (e *Engine) pop() eventRec {
	h := e.keys
	slot := int32(h[0].seqSlot & (1<<slotBits - 1))
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			if c+4 <= n {
				// Full sibling group, unrolled: one 64-byte cache line.
				if h[c+1].less(&h[m]) {
					m = c + 1
				}
				if h[c+2].less(&h[m]) {
					m = c + 2
				}
				if h[c+3].less(&h[m]) {
					m = c + 3
				}
			} else {
				for j := c + 1; j < n; j++ {
					if h[j].less(&h[m]) {
						m = j
					}
				}
			}
			h[i] = h[m]
			i = m
		}
		for i > 0 {
			p := (i - 1) / 4
			if !last.less(&h[p]) {
				break
			}
			h[i] = h[p]
			i = p
		}
		h[i] = last
	}
	e.keys = h
	return e.take(slot)
}
