package sim

import (
	"math"
	"testing"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(2, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(3, func() { order = append(order, 3) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time %g, want 3", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []string
	e.At(1, func() { order = append(order, "first") })
	e.At(1, func() { order = append(order, "second") })
	e.Run()
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("tie broken wrong: %v", order)
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at float64
	e.At(5, func() {
		e.After(2, func() { at = e.Now() })
	})
	e.Run()
	if at != 7 {
		t.Fatalf("After landed at %g, want 7", at)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 10 {
			e.After(1, recur)
		}
	}
	e.At(0, recur)
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 9 {
		t.Fatalf("time = %g, want 9", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := 0
	for i := 1; i <= 10; i++ {
		i := i
		e.At(float64(i), func() { ran = i })
	}
	e.RunUntil(5.5)
	if ran != 5 {
		t.Fatalf("ran through event %d, want 5", ran)
	}
	if e.Now() != 5.5 {
		t.Fatalf("clock = %g, want 5.5", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.Run()
	if ran != 10 {
		t.Fatal("continuation after RunUntil failed")
	}
}

func TestStop(t *testing.T) {
	e := New()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt processing: ran=%d", ran)
	}
	e.Run()
	if ran != 2 {
		t.Fatal("Run after Stop did not resume")
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNaNPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time did not panic")
		}
	}()
	e.At(math.NaN(), func() {})
}

func TestProcessedCounter(t *testing.T) {
	e := New()
	for i := 0; i < 100; i++ {
		e.At(float64(i), func() {})
	}
	e.Run()
	if e.Processed != 100 {
		t.Fatalf("Processed = %d, want 100", e.Processed)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			e.After(1e-6, next)
		}
	}
	e.At(0, next)
	e.Run()
}
