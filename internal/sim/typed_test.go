package sim

import (
	"testing"
)

// recorder logs (kind, at) pairs it receives.
type recorder struct {
	kinds []EventKind
	ats   []float64
}

func (r *recorder) HandleEvent(kind EventKind, at float64) {
	r.kinds = append(r.kinds, kind)
	r.ats = append(r.ats, at)
}

// Typed and closure events must interleave in strict (at, seq) order.
func TestTypedClosureInterleaving(t *testing.T) {
	e := New()
	r := &recorder{}
	var order []string
	e.At(2, func() { order = append(order, "c2") })
	e.AtEvent(1, r, 7)                              // seq 2
	e.At(1, func() { order = append(order, "c1") }) // seq 3: same time, later seq
	e.AtEvent(3, r, 9)
	e.Run()
	if len(r.kinds) != 2 || r.kinds[0] != 7 || r.kinds[1] != 9 {
		t.Fatalf("kinds = %v, want [7 9]", r.kinds)
	}
	if r.ats[0] != 1 || r.ats[1] != 3 {
		t.Fatalf("ats = %v, want [1 3]", r.ats)
	}
	if len(order) != 2 || order[0] != "c1" || order[1] != "c2" {
		t.Fatalf("closure order = %v", order)
	}
	if e.Processed != 4 {
		t.Fatalf("Processed = %d, want 4", e.Processed)
	}
}

// HandleEvent's at argument must equal the engine clock during dispatch.
func TestTypedEventTime(t *testing.T) {
	e := New()
	var seen, now float64
	e.AtEvent(2.5, handlerFunc(func(_ EventKind, at float64) {
		seen, now = at, e.Now()
	}), 0)
	e.Run()
	if seen != 2.5 || now != 2.5 {
		t.Fatalf("at = %g, Now = %g, want 2.5", seen, now)
	}
}

// AfterEvent schedules relative to the current clock.
func TestAfterEvent(t *testing.T) {
	e := New()
	var at float64
	e.At(5, func() {
		e.AfterEvent(2, handlerFunc(func(_ EventKind, a float64) { at = a }), 0)
	})
	e.Run()
	if at != 7 {
		t.Fatalf("typed event at %g, want 7", at)
	}
}

// AtEvent must reject causality violations like At does.
func TestAtEventPastPanics(t *testing.T) {
	e := New()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling typed event in the past did not panic")
			}
		}()
		e.AtEvent(1, &recorder{}, 0)
	})
	e.Run()
}

// A long randomized mix of times must dispatch in exact (at, seq) order —
// the invariant the 4-ary heap must share with the old container/heap.
func TestHeapTotalOrder(t *testing.T) {
	e := New()
	var got []float64
	var markers []int
	// Deterministic pseudo-random times with many duplicates.
	x := uint64(88172645463325252)
	for i := 0; i < 5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		at := float64(x % 97)
		seq := i
		e.At(at, func() { got = append(got, at); markers = append(markers, seq) })
	}
	e.Run()
	if len(got) != 5000 {
		t.Fatalf("ran %d events, want 5000", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("time went backwards at %d: %g after %g", i, got[i], got[i-1])
		}
		if got[i] == got[i-1] && markers[i] < markers[i-1] {
			t.Fatalf("tie at t=%g broke scheduling order: %d after %d", got[i], markers[i], markers[i-1])
		}
	}
}

// Steady-state typed scheduling plus dispatch must not allocate once the
// heap slice has grown to capacity (allocation-regression gate for the
// simulation hot path).
func TestTypedDispatchAllocFree(t *testing.T) {
	e := New()
	r := &countHandler{}
	// Warm: grow the heap slice beyond anything the measured runs need.
	for i := 0; i < 1024; i++ {
		e.AtEvent(float64(i)*1e-6, r, 0)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			e.AtEvent(e.Now()+float64(i)*1e-6, r, 0)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("typed schedule+dispatch allocated %.1f allocs/run, want 0", allocs)
	}
}

type countHandler struct{ n int }

func (c *countHandler) HandleEvent(EventKind, float64) { c.n++ }

// handlerFunc adapts a func to Handler for tests.
type handlerFunc func(EventKind, float64)

func (f handlerFunc) HandleEvent(k EventKind, at float64) { f(k, at) }

// RunUntil may legally be called with a limit below the current clock
// (rewinding Now); events scheduled at the rewound time must still
// dispatch before undispatched same-time-buffer entries from the higher
// time. Regression for the nowBuf routing guard.
func TestRewindKeepsOrder(t *testing.T) {
	e := New()
	var order []float64
	e.At(5, func() {
		e.At(5, func() { order = append(order, 5) }) // lands in the same-time buffer
		e.Stop()
	})
	e.Run()
	e.RunUntil(3) // rewinds the clock below the buffered t=5 event
	if e.Now() != 3 {
		t.Fatalf("Now = %g, want 3", e.Now())
	}
	e.At(3, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 2 || order[0] != 3 || order[1] != 5 {
		t.Fatalf("dispatch order = %v, want [3 5]", order)
	}
}
