package simnet

import (
	"math"
	"testing"

	"dynasym/internal/sim"
)

func TestSendThenRecv(t *testing.T) {
	e := sim.New()
	n := New(e, 1e-6, 1e9)
	var deliveredAt float64
	key := MsgKey{From: 0, To: 1, Tag: 7}
	e.At(0, func() {
		n.Send(key, 1e6) // 1 MB: 1 µs latency + 1 ms transfer
	})
	e.At(0.5e-3, func() {
		n.Recv(key, func(at float64) { deliveredAt = at })
	})
	e.Run()
	want := 1e-6 + 1e-3
	if math.Abs(deliveredAt-want) > 1e-9 {
		t.Fatalf("delivered at %g, want %g", deliveredAt, want)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	e := sim.New()
	n := New(e, 2e-6, 1e9)
	var deliveredAt float64
	key := MsgKey{From: 3, To: 0, Tag: 1}
	e.At(0, func() {
		n.Recv(key, func(at float64) { deliveredAt = at })
	})
	e.At(1.0, func() {
		n.Send(key, 0)
	})
	e.Run()
	if math.Abs(deliveredAt-(1.0+2e-6)) > 1e-12 {
		t.Fatalf("delivered at %g", deliveredAt)
	}
}

func TestRecvAfterArrivalFiresImmediately(t *testing.T) {
	e := sim.New()
	n := New(e, 1e-6, 1e9)
	key := MsgKey{From: 0, To: 1, Tag: 2}
	fired := false
	e.At(0, func() { n.Send(key, 0) })
	e.At(1.0, func() {
		n.Recv(key, func(at float64) {
			fired = true
			if at > 1e-3 {
				t.Errorf("arrival time %g should reflect actual delivery", at)
			}
		})
		if !fired {
			t.Error("late Recv did not fire synchronously")
		}
	})
	e.Run()
}

func TestDistinctTagsDoNotMatch(t *testing.T) {
	e := sim.New()
	n := New(e, 1e-6, 1e9)
	got := 0
	e.At(0, func() {
		n.Send(MsgKey{From: 0, To: 1, Tag: 1}, 0)
		n.Recv(MsgKey{From: 0, To: 1, Tag: 2}, func(float64) { got++ })
	})
	e.Run()
	if got != 0 {
		t.Fatal("mismatched tag delivered")
	}
	if n.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", n.Pending())
	}
}

func TestDuplicateReceiverPanics(t *testing.T) {
	e := sim.New()
	n := New(e, 1e-6, 1e9)
	key := MsgKey{From: 0, To: 1, Tag: 5}
	e.At(0, func() {
		n.Recv(key, func(float64) {})
		defer func() {
			if recover() == nil {
				t.Error("duplicate receiver did not panic")
			}
		}()
		n.Recv(key, func(float64) {})
	})
	e.Run()
}

func TestCounters(t *testing.T) {
	e := sim.New()
	n := New(e, 1e-6, 1e9)
	key := MsgKey{From: 0, To: 1, Tag: 9}
	e.At(0, func() {
		n.Recv(key, func(float64) {})
		n.Send(key, 10)
	})
	e.Run()
	if n.Sent != 1 || n.Delivered != 1 || n.Pending() != 0 {
		t.Fatalf("sent=%d delivered=%d pending=%d", n.Sent, n.Delivered, n.Pending())
	}
}
