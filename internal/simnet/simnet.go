// Package simnet models the cluster interconnect for simulated distributed
// runs: point-to-point messages with per-link latency and bandwidth, plus a
// rendezvous layer that matches sends to the tasks waiting for them.
//
// It substitutes for the paper's Mellanox FDR InfiniBand fabric between the
// Haswell nodes: the distributed Heat workload's boundary-exchange tasks
// complete when both their local CPU work and the matching remote boundary
// have arrived, which is exactly how a blocking MPI Sendrecv behaves.
package simnet

import (
	"fmt"

	"dynasym/internal/sim"
)

// Network delivers messages between nodes over a shared event engine.
type Network struct {
	engine *sim.Engine
	// Latency is the per-message one-way latency in seconds (FDR IB RDMA
	// latency is ~1 µs; MPI adds protocol overhead).
	Latency float64
	// Bandwidth is the per-link bandwidth in bytes/s (FDR 56 Gb/s ≈
	// 6.8 GB/s; defaults use ~5 GB/s effective).
	Bandwidth float64

	inbox map[MsgKey]*slot
	// Sent and Delivered count messages for diagnostics.
	Sent, Delivered int64
}

// MsgKey identifies one logical message: a (from, to, tag) triple. Tags
// encode application structure (e.g. iteration and direction of a boundary
// exchange).
type MsgKey struct {
	From, To int
	Tag      int64
}

type slot struct {
	arrived  bool
	at       float64
	bytes    float64
	receiver func(at float64)
}

// New builds a network on the engine with the given one-way latency
// (seconds) and bandwidth (bytes/s).
func New(engine *sim.Engine, latency, bandwidth float64) *Network {
	if latency < 0 || bandwidth <= 0 {
		panic("simnet: latency must be >= 0 and bandwidth > 0")
	}
	return &Network{
		engine:    engine,
		Latency:   latency,
		Bandwidth: bandwidth,
		inbox:     make(map[MsgKey]*slot),
	}
}

// Send transmits `bytes` from key.From to key.To; the message is delivered
// (and any waiting receiver completed) after latency + bytes/bandwidth.
// Each key must be sent at most once per Recv.
func (n *Network) Send(key MsgKey, bytes float64) {
	n.Sent++
	at := n.engine.Now() + n.Latency + bytes/n.Bandwidth
	n.engine.At(at, func() {
		s := n.inbox[key]
		if s == nil {
			n.inbox[key] = &slot{arrived: true, at: at, bytes: bytes}
			return
		}
		if s.arrived {
			panic(fmt.Sprintf("simnet: duplicate send for %+v", key))
		}
		s.arrived = true
		s.at = at
		n.Delivered++
		recv := s.receiver
		s.receiver = nil
		delete(n.inbox, key)
		recv(at)
	})
}

// Recv registers a receiver for the message key. If the message already
// arrived, done runs immediately (same virtual time); otherwise it runs at
// delivery time. Each key accepts exactly one receiver.
func (n *Network) Recv(key MsgKey, done func(at float64)) {
	s := n.inbox[key]
	if s == nil {
		n.inbox[key] = &slot{receiver: done}
		return
	}
	if s.receiver != nil {
		panic(fmt.Sprintf("simnet: duplicate receiver for %+v", key))
	}
	n.Delivered++
	delete(n.inbox, key)
	done(s.at)
}

// Pending returns the number of unmatched sends or receives, useful for
// detecting protocol mismatches in tests.
func (n *Network) Pending() int { return len(n.inbox) }
