package service

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dynasym/internal/scenario"
)

// fakeClock pins a Manager's clock to a settable instant; the breaker
// state machine then runs entirely on test time.
type fakeClock struct {
	mu  chan struct{}
	cur time.Time
}

func pinClock(m *Manager) *fakeClock {
	c := &fakeClock{mu: make(chan struct{}, 1), cur: time.Unix(1000, 0)}
	c.mu <- struct{}{}
	m.now = c.now
	return c
}

func (c *fakeClock) now() time.Time {
	<-c.mu
	defer func() { c.mu <- struct{}{} }()
	return c.cur
}

func (c *fakeClock) advance(d time.Duration) {
	<-c.mu
	c.cur = c.cur.Add(d)
	c.mu <- struct{}{}
}

// TestPeerBreakerLifecycle drives one handle through the full circuit:
// healthy → down after FailThreshold consecutive failures → probe
// admitted once the (jittered, exponential) backoff elapses → a failed
// probe re-opens with a longer period → a successful probe recovers.
func TestPeerBreakerLifecycle(t *testing.T) {
	m := NewManager(Config{Workers: 1, FailThreshold: 2, ProbeBackoff: time.Second, ProbeMaxBackoff: 8 * time.Second})
	clock := pinClock(m)
	h := &backendHandle{Backend: &flakyBackend{}, breaker: true}
	boom := errors.New("boom")

	if !m.admit(h) {
		t.Fatal("fresh handle not admissible")
	}
	m.report(h, boom)
	if h.state != peerHealthy {
		t.Fatalf("state %v after 1 failure, want healthy (threshold is 2)", h.state)
	}
	if !m.admit(h) {
		t.Fatal("handle below threshold not admissible")
	}
	m.report(h, boom) // second consecutive failure: trips the breaker
	if h.state != peerDown {
		t.Fatalf("state %v after %d consecutive failures, want down", h.state, h.fails)
	}
	wait := h.nextProbe.Sub(clock.now())
	if wait < 500*time.Millisecond || wait >= 1500*time.Millisecond {
		t.Fatalf("first down period %v, want 1s scaled by jitter in [0.5, 1.5)", wait)
	}
	if m.admit(h) {
		t.Fatal("down peer admitted before its probe time")
	}

	clock.advance(wait) // probe due
	if !m.admit(h) {
		t.Fatal("due probe not admitted")
	}
	if h.state != peerProbing {
		t.Fatalf("state %v after probe admission, want probing", h.state)
	}
	if m.admit(h) {
		t.Fatal("second probe admitted while one is in flight")
	}

	m.report(h, boom) // failed probe: re-open with doubled backoff
	if h.state != peerDown {
		t.Fatalf("state %v after a failed probe, want down", h.state)
	}
	wait = h.nextProbe.Sub(clock.now())
	if wait < time.Second || wait >= 3*time.Second {
		t.Fatalf("second down period %v, want 2s scaled by jitter in [0.5, 1.5)", wait)
	}

	clock.advance(wait)
	if !m.admit(h) {
		t.Fatal("second probe not admitted")
	}
	m.report(h, nil) // probe succeeds: full recovery
	if h.state != peerHealthy || h.fails != 0 || h.backoffExp != 0 || h.lastErr != nil {
		t.Fatalf("recovered handle state=%v fails=%d exp=%d lastErr=%v, want clean healthy",
			h.state, h.fails, h.backoffExp, h.lastErr)
	}
	if !m.admit(h) {
		t.Fatal("recovered peer not admissible")
	}
}

// TestProbeBackoffCaps: repeated failed probes double the down period
// only up to ProbeMaxBackoff.
func TestProbeBackoffCaps(t *testing.T) {
	m := NewManager(Config{Workers: 1, FailThreshold: 1, ProbeBackoff: time.Second, ProbeMaxBackoff: 4 * time.Second})
	clock := pinClock(m)
	h := &backendHandle{Backend: &flakyBackend{}, breaker: true}
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		m.report(h, boom)
		if h.state != peerDown {
			t.Fatalf("trip %d: state %v, want down", i, h.state)
		}
		wait := h.nextProbe.Sub(clock.now())
		if wait >= 6*time.Second { // 4s cap × max jitter 1.5
			t.Fatalf("trip %d: down period %v exceeds the 4s cap (with jitter <6s)", i, wait)
		}
		clock.advance(wait)
		if !m.admit(h) {
			t.Fatalf("trip %d: due probe not admitted", i)
		}
	}
	// After many trips the period sits at the cap: 4s × jitter ∈ [2s, 6s).
	m.report(h, boom)
	if wait := h.nextProbe.Sub(clock.now()); wait < 2*time.Second || wait >= 6*time.Second {
		t.Fatalf("capped down period %v, want 4s scaled by jitter in [0.5, 1.5)", wait)
	}
}

// TestJitterDeterministic: two managers share the jitter seed, so their
// backoff streams are identical — chaos runs are reproducible.
func TestJitterDeterministic(t *testing.T) {
	a, b := NewManager(Config{Workers: 1}), NewManager(Config{Workers: 1})
	for i := 0; i < 64; i++ {
		da, db := a.jitterDur(time.Second), b.jitterDur(time.Second)
		if da != db {
			t.Fatalf("jitter stream diverged at draw %d: %v vs %v", i, da, db)
		}
		if da < 500*time.Millisecond || da >= 1500*time.Millisecond {
			t.Fatalf("jitterDur(1s) = %v, want within [0.5s, 1.5s)", da)
		}
	}
}

// TestLocalBackendNeverTrips: the in-process pool records failures but
// stays admissible and is absent from the peer health report — the
// graceful-degradation guarantee.
func TestLocalBackendNeverTrips(t *testing.T) {
	m := NewManager(Config{Workers: 1, FailThreshold: 1})
	h := m.handles[0]
	if h.breaker {
		t.Fatal("local backend handle has its breaker enabled")
	}
	for i := 0; i < 5; i++ {
		m.report(h, errors.New("pool hiccup"))
	}
	if !m.admit(h) {
		t.Error("local backend inadmissible after failures; degradation would deadlock")
	}
	if h.state != peerHealthy {
		t.Errorf("local backend state %v, want healthy", h.state)
	}
	if peers := m.PeerHealth(); len(peers) != 0 {
		t.Errorf("PeerHealth lists %d entries for a peerless manager, want 0", len(peers))
	}
}

// recoveringBackend fails its first n Execute calls with a transport
// error, then delegates to inner — a transient blip.
type recoveringBackend struct {
	name      string
	inner     Backend
	failsLeft atomic.Int64
}

func (r *recoveringBackend) Name() string { return r.name }
func (r *recoveringBackend) Execute(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error) {
	if r.failsLeft.Add(-1) >= 0 {
		return nil, errors.New("transient blip")
	}
	return r.inner.Execute(ctx, plan, cells)
}

// TestRetryBudgetOutlivesTransientBlip: a blip that hits every backend
// at once used to permanently fail the job after one failover pass; the
// per-shard retry budget rides it out, with a backoff pause per round.
func TestRetryBudgetOutlivesTransientBlip(t *testing.T) {
	m := NewManager(Config{Workers: 2, ShardRetries: 3, FailThreshold: 100})
	var sleeps atomic.Int64
	m.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps.Add(1)
		return ctx.Err()
	}
	rb := &recoveringBackend{name: "recovering", inner: m.local}
	rb.failsLeft.Store(2)
	m.setBackends(rb)
	j, _, err := m.Submit(tinySpec(61))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("job finished %v (%v), want done on the third round", j.State(), j.Snapshot().Error)
	}
	if got := sleeps.Load(); got != 2 {
		t.Errorf("retry rounds paused %d times, want 2 (one backoff before each retry round)", got)
	}
	_, fp, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(tinySpec(61)); fp != direct.Fingerprint() {
		t.Error("retried job's fingerprint differs from an undisturbed run")
	}

	// With the budget cut to a single pass, the same blip is fatal.
	m2 := NewManager(Config{Workers: 2, ShardRetries: 1, RetryBackoff: -1, FailThreshold: 100})
	rb2 := &recoveringBackend{name: "recovering", inner: m2.local}
	rb2.failsLeft.Store(2)
	m2.setBackends(rb2)
	j2, _, err := m2.Submit(tinySpec(61))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if j2.State() != StateFailed {
		t.Fatalf("single-pass job finished %v, want failed", j2.State())
	}
	if _, _, _, err := j2.Result(); err == nil || !strings.Contains(err.Error(), "transient blip") {
		t.Errorf("error %v does not carry the transport cause", err)
	}
}

// namedFailBackend always fails with its own distinct message.
type namedFailBackend struct{ name, msg string }

func (b *namedFailBackend) Name() string { return b.name }
func (b *namedFailBackend) Execute(context.Context, *scenario.Plan, []scenario.CellJob) ([]CellResult, error) {
	return nil, errors.New(b.msg)
}

// TestShardErrorAggregatesAllBackends pins the errors.Join satellite: a
// shard exhausted across several backends must report every cause, not
// just the last attempt's.
func TestShardErrorAggregatesAllBackends(t *testing.T) {
	m := NewManager(Config{Workers: 1, ShardRetries: 1, RetryBackoff: -1})
	m.setBackends(
		&namedFailBackend{"peerA", "connection refused by A"},
		&namedFailBackend{"peerB", "tls handshake failed at B"},
	)
	j, _, err := m.Submit(tinySpec(62))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateFailed {
		t.Fatalf("job finished %v, want failed", j.State())
	}
	_, _, _, err = j.Result()
	if err == nil {
		t.Fatal("failed job carries no error")
	}
	for _, want := range []string{"peerA", "connection refused by A", "peerB", "tls handshake failed at B"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error %q is missing %q", err, want)
		}
	}
}
