package service

import (
	"context"
	"errors"
	"testing"

	"dynasym/internal/scenario"
)

// TestExecuteBatchesSameVariantCells: the local backend must order a
// mixed-variant shard so each worker sweeps one compiled graph's cells
// back to back (variant-major), not in plan order (policy-major, which
// interleaves variants).
func TestExecuteBatchesSameVariantCells(t *testing.T) {
	b := newLocalBackend(1)
	var seen []int
	var plan *scenario.Plan
	b.runCell = func(p *scenario.Plan, st *scenario.CellState, c scenario.CellJob) (scenario.RunMetrics, error) {
		seen = append(seen, p.PointVariant(c.Point))
		return scenario.RunMetrics{TasksDone: 1}, nil
	}
	plan, err := scenario.NewPlan(overlapSpec(90, 2, 4)) // 2 policies × 2 points
	if err != nil {
		t.Fatal(err)
	}
	crs, err := b.Execute(context.Background(), plan, plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(crs) != len(plan.Cells) {
		t.Fatalf("Execute returned %d results for %d cells", len(crs), len(plan.Cells))
	}
	for i, cr := range crs {
		if cr.Hash != plan.Cells[i].Hash {
			t.Fatalf("result %d is for hash %s, want the input-order hash %s", i, cr.Hash, plan.Cells[i].Hash)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("ran %d cells, want 4", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("execution order interleaves workload variants: %v", seen)
		}
	}
}

// TestExecuteCancelKeepsCompletedResults pins the satellite bugfix: on
// context cancellation the local backend must return the results of cells
// that already completed (so callers can bank them) and count exactly the
// cells that ran — not the whole shard.
func TestExecuteCancelKeepsCompletedResults(t *testing.T) {
	b := newLocalBackend(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	b.runCell = func(p *scenario.Plan, st *scenario.CellState, c scenario.CellJob) (scenario.RunMetrics, error) {
		ran++
		if ran == 2 {
			cancel() // mid-shard: two cells done, two never started
		}
		return scenario.RunMetrics{TasksDone: 1}, nil
	}
	plan, err := scenario.NewPlan(overlapSpec(91, 2, 4)) // 4 cells, one worker
	if err != nil {
		t.Fatal(err)
	}
	crs, err := b.Execute(ctx, plan, plan.Cells)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute error = %v, want context.Canceled", err)
	}
	if len(crs) != len(plan.Cells) {
		t.Fatalf("cancelled Execute returned %d entries, want one per cell (%d)", len(crs), len(plan.Cells))
	}
	completed := 0
	for _, cr := range crs {
		if cr.Hash != "" {
			if cr.Err != nil || cr.Metrics.TasksDone != 1 {
				t.Errorf("completed cell %s carries err=%v metrics=%+v", cr.Hash, cr.Err, cr.Metrics)
			}
			completed++
		}
	}
	if completed != 2 {
		t.Errorf("cancelled shard kept %d completed results, want 2", completed)
	}
	if got := b.cellRuns.Load(); got != 2 {
		t.Errorf("cellRuns = %d after cancellation, want 2 (abandoned cells must not count)", got)
	}
}

// scriptedBackend lets runShard tests script per-attempt outcomes.
type scriptedBackend struct {
	name string
	fn   func(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error)
}

func (s *scriptedBackend) Name() string { return s.name }
func (s *scriptedBackend) Execute(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error) {
	return s.fn(ctx, plan, cells)
}

// TestRunShardBanksPartialResultsOnFailover: when a backend fails after
// completing part of a shard, the completed cells must enter the cell
// cache immediately and only the remainder may be retried on the next
// backend.
func TestRunShardBanksPartialResultsOnFailover(t *testing.T) {
	m := NewManager(Config{Workers: 1, ShardSize: 16})
	plan, err := scenario.NewPlan(overlapSpec(92, 2, 4)) // 4 cells
	if err != nil {
		t.Fatal(err)
	}
	fake := func(c scenario.CellJob) CellResult {
		return CellResult{Hash: c.Hash, Metrics: scenario.RunMetrics{TasksDone: 7, Seed: c.Seed}}
	}
	first := &scriptedBackend{name: "flaky", fn: func(_ context.Context, _ *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error) {
		out := make([]CellResult, len(cells))
		for i := range cells[:2] {
			out[i] = fake(cells[i]) // two cells finished before the failure
		}
		return out, errors.New("connection lost")
	}}
	var retried []scenario.CellJob
	second := &scriptedBackend{name: "solid", fn: func(_ context.Context, _ *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error) {
		retried = append(retried, cells...)
		out := make([]CellResult, len(cells))
		for i, c := range cells {
			out[i] = fake(c)
		}
		return out, nil
	}}
	m.setBackends(first, second)

	crs, err := m.runShard(context.Background(), 0, plan, plan.Cells)
	if err != nil {
		t.Fatalf("runShard failed despite a healthy second backend: %v", err)
	}
	if len(crs) != len(plan.Cells) {
		t.Fatalf("runShard returned %d results for %d cells", len(crs), len(plan.Cells))
	}
	for i, cr := range crs {
		if cr.Hash != plan.Cells[i].Hash || cr.Err != nil || cr.Metrics.TasksDone != 7 {
			t.Fatalf("result %d malformed: %+v", i, cr)
		}
	}
	if len(retried) != 2 {
		t.Fatalf("second backend re-ran %d cells, want only the 2 the first backend never finished", len(retried))
	}
	for _, c := range retried {
		if c.Hash == plan.Cells[0].Hash || c.Hash == plan.Cells[1].Hash {
			t.Errorf("cell %s was retried although the first backend completed it", c.Hash)
		}
	}
	// The partial results were banked when the first backend failed, so
	// they serve cache probes even while the retry is still out.
	cached, missing := m.probeCells(plan.Cells[:2])
	if len(cached) != 2 || len(missing) != 0 {
		t.Errorf("banked partial results: %d cached / %d missing, want 2 / 0", len(cached), len(missing))
	}
}

// TestLRUGuardsNonPositiveCap pins the satellite bugfix: a non-positive
// capacity used to evict every entry at insert (silent 100% miss rate);
// now it fails construction, and cap 1 keeps exactly the newest entry.
func TestLRUGuardsNonPositiveCap(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("newLRUCache(%d) did not panic", capacity)
				}
			}()
			newLRUCache[int](capacity)
		}()
	}
	c := newLRUCache[int](1)
	c.Add("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatal("cap-1 cache dropped the entry it just inserted")
	}
	c.Add("b", 2)
	if _, ok := c.Get("a"); ok {
		t.Error("cap-1 cache kept the evicted entry")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Error("cap-1 cache dropped the newest entry")
	}
}
