package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dynasym/internal/scenario"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(cfg)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := httptest.NewServer(m.Handler(logger))
	t.Cleanup(srv.Close)
	return m, srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJob(t *testing.T, url string, body string) (Status, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("POST /v1/jobs: decode %q: %v", raw, err)
		}
	}
	return st, resp.StatusCode
}

func pollDone(t *testing.T, url, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st Status
		if code := getJSON(t, url+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

// TestHTTPEndToEnd is the acceptance check: submit over HTTP, poll to
// done, fetch the result, and compare the fingerprint byte-for-byte with
// a direct engine run of the same spec; then resubmit and verify the
// cache answers without another engine run.
func TestHTTPEndToEnd(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 2, CacheSize: 8})

	spec := tinySpec(21)
	specJSON, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"spec": %s}`, specJSON)

	st, code := postJob(t, srv.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("first POST: status %d, want 202", code)
	}
	if st.ID == "" {
		t.Fatal("no job id")
	}
	wantHash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != wantHash {
		t.Errorf("job id %s, want the spec hash %s", st.ID, wantHash)
	}

	final := pollDone(t, srv.URL, st.ID)
	if final.State != "done" {
		t.Fatalf("job finished as %q: %s", final.State, final.Error)
	}
	if final.CellsDone != final.CellsTotal || final.CellsTotal == 0 {
		t.Errorf("progress %d/%d at done", final.CellsDone, final.CellsTotal)
	}

	var res ResultResponse
	if code := getJSON(t, srv.URL+"/v1/results/"+st.ID, &res); code != http.StatusOK {
		t.Fatalf("GET result: status %d", code)
	}
	direct := scenario.MustRun(tinySpec(21))
	if res.Fingerprint != direct.Fingerprint() {
		t.Errorf("HTTP fingerprint differs from direct engine run")
	}
	if len(res.Throughputs) != 2 || len(res.Throughputs[0]) != 2 {
		t.Errorf("throughput grid %dx?, want 2x2", len(res.Throughputs))
	}

	// Resubmit: served from cache, no new engine run.
	st2, code := postJob(t, srv.URL, body)
	if code != http.StatusOK {
		t.Errorf("cached POST: status %d, want 200", code)
	}
	if st2.State != "done" {
		t.Errorf("cached POST state %q, want done", st2.State)
	}
	if got := m.EngineRuns(); got != 1 {
		t.Errorf("engine ran %d times, want 1", got)
	}
}

// TestHTTPConcurrentIdenticalPosts checks N concurrent identical POSTs
// collapse to one job id and one engine run over the wire.
func TestHTTPConcurrentIdenticalPosts(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 2, CacheSize: 8})
	spec := tinySpec(22)
	sj, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"spec": %s}`, sj)

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code := postJob(t, srv.URL, body)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("POST %d: status %d", i, code)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("POST %d got job %s, POST 0 got %s", i, ids[i], ids[0])
		}
	}
	pollDone(t, srv.URL, ids[0])
	if got := m.EngineRuns(); got != 1 {
		t.Errorf("engine ran %d times for %d identical POSTs, want 1", got, n)
	}
	// All N callers fetch the one fingerprint.
	fps := map[string]bool{}
	for i := 0; i < n; i++ {
		var res ResultResponse
		if code := getJSON(t, srv.URL+"/v1/results/"+ids[i], &res); code != http.StatusOK {
			t.Fatalf("GET result %d: status %d", i, code)
		}
		fps[res.Fingerprint] = true
	}
	if len(fps) != 1 {
		t.Errorf("%d distinct fingerprints, want 1", len(fps))
	}
}

// TestHTTPFamilySubmit submits a registered family by name.
func TestHTTPFamilySubmit(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	st, code := postJob(t, srv.URL, `{"family": "burst-sweep", "scale": 0.001}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST family: status %d", code)
	}
	final := pollDone(t, srv.URL, st.ID)
	if final.State != "done" {
		t.Fatalf("family job finished as %q: %s", final.State, final.Error)
	}
	var res ResultResponse
	if code := getJSON(t, srv.URL+"/v1/results/"+st.ID, &res); code != http.StatusOK {
		t.Fatalf("GET family result: status %d", code)
	}
	if res.Name != "burst-sweep" || res.Fingerprint == "" {
		t.Errorf("family result name=%q fingerprint empty=%v", res.Name, res.Fingerprint == "")
	}
}

// TestHTTPErrors covers the 4xx surface.
func TestHTTPErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"empty":          {`{}`, http.StatusBadRequest},
		"both":           {`{"family": "burst-sweep", "spec": {"policies": ["RWS"]}}`, http.StatusBadRequest},
		"unknown family": {`{"family": "nope"}`, http.StatusBadRequest},
		"bad spec":       {`{"spec": {"workload": {"kind": "synthetic"}, "policies": ["SJF"]}}`, http.StatusBadRequest},
		"invalid spec":   {`{"spec": {"workload": {"kind": "synthetic"}, "policies": []}}`, http.StatusBadRequest},
		"unknown field":  {`{"famly": "burst-sweep"}`, http.StatusBadRequest},
		"not json":       {`hello`, http.StatusBadRequest},
	} {
		_, code := postJob(t, srv.URL, tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d", name, code, tc.want)
		}
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/deadbeef", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/v1/results/deadbeef", nil); code != http.StatusNotFound {
		t.Errorf("unknown result: status %d, want 404", code)
	}
}

// TestHTTPHealthzAndFamilies checks the discovery endpoints.
func TestHTTPHealthzAndFamilies(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 3, CacheSize: 7})
	var health struct {
		OK    bool  `json:"ok"`
		Stats Stats `json:"stats"`
	}
	if code := getJSON(t, srv.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if !health.OK || health.Stats.Workers != 3 || health.Stats.CacheSize != 7 {
		t.Errorf("healthz = %+v", health)
	}
	var fams []FamilyInfo
	if code := getJSON(t, srv.URL+"/v1/families", &fams); code != http.StatusOK {
		t.Fatalf("families status %d", code)
	}
	if len(fams) != len(scenario.Names()) {
		t.Fatalf("%d families, want %d", len(fams), len(scenario.Names()))
	}
	for _, f := range fams {
		if f.Name == "" || f.Desc == "" {
			t.Errorf("family %+v missing name or desc", f)
		}
	}
}

// TestHTTPHealthzReportsPeerHealth: /v1/healthz exposes each remote
// peer's breaker state, so an operator can see a down worker (and when
// it will be re-probed) without grepping logs.
func TestHTTPHealthzReportsPeerHealth(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 1, Peers: []string{"http://peer.invalid:7"}, FailThreshold: 3})
	h := m.handles[1] // handle 0 is the local pool
	for i := 0; i < 3; i++ {
		m.report(h, errors.New("dial tcp: connection refused"))
	}
	var health struct {
		OK    bool         `json:"ok"`
		Peers []PeerStatus `json:"peers"`
	}
	if code := getJSON(t, srv.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if len(health.Peers) != 1 {
		t.Fatalf("healthz lists %d peers, want 1: %+v", len(health.Peers), health.Peers)
	}
	p := health.Peers[0]
	if p.Peer != "peer http://peer.invalid:7" {
		t.Errorf("peer name %q", p.Peer)
	}
	if p.State != "down" || p.ConsecutiveFails != 3 {
		t.Errorf("peer reported %s after %d failures, want down after 3", p.State, p.ConsecutiveFails)
	}
	if !strings.Contains(p.LastError, "connection refused") {
		t.Errorf("last_error %q does not carry the failure cause", p.LastError)
	}
	if p.NextProbeSec <= 0 {
		t.Errorf("down peer advertises next_probe_sec %v, want a positive backoff", p.NextProbeSec)
	}
}

// TestHTTPJobsList covers GET /v1/jobs: every submitted job appears with
// state, hash and progress, in-flight entries before finished ones.
func TestHTTPJobsList(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, CacheSize: 8})
	var ids []string
	for _, seed := range []uint64{41, 42} {
		sj, err := tinySpec(seed).CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		st, code := postJob(t, srv.URL, fmt.Sprintf(`{"spec": %s}`, sj))
		if code != http.StatusAccepted {
			t.Fatalf("POST: status %d", code)
		}
		ids = append(ids, st.ID)
		pollDone(t, srv.URL, st.ID)
	}
	var list []Status
	if code := getJSON(t, srv.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/jobs: status %d", code)
	}
	if len(list) != len(ids) {
		t.Fatalf("listing has %d jobs, want %d", len(list), len(ids))
	}
	seen := map[string]bool{}
	for _, st := range list {
		seen[st.ID] = true
		if st.State != "done" {
			t.Errorf("job %s listed as %q, want done", st.ID, st.State)
		}
		if st.CellsTotal == 0 || st.CellsDone != st.CellsTotal {
			t.Errorf("job %s listed with progress %d/%d", st.ID, st.CellsDone, st.CellsTotal)
		}
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("job %s missing from listing", id)
		}
	}
}

// TestHTTPFamiliesSorted pins the stable-response contract: families come
// back sorted by name.
func TestHTTPFamiliesSorted(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	var fams []FamilyInfo
	if code := getJSON(t, srv.URL+"/v1/families", &fams); code != http.StatusOK {
		t.Fatalf("families status %d", code)
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name >= fams[i].Name {
			t.Fatalf("families out of order: %q before %q", fams[i-1].Name, fams[i].Name)
		}
	}
}

// TestHTTPShardErrors covers the worker-facing endpoint's refusal paths.
func TestHTTPShardErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	sj, err := tinySpec(51).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/shards", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"not json":      {`hello`, http.StatusBadRequest},
		"no cells":      {fmt.Sprintf(`{"spec": %s, "cells": []}`, sj), http.StatusBadRequest},
		"bad spec":      {`{"spec": {"workload": {"kind": "synthetic"}, "policies": []}, "cells": [{"policy":0,"point":0,"rep":0,"hash":"x"}]}`, http.StatusBadRequest},
		"out of grid":   {fmt.Sprintf(`{"spec": %s, "cells": [{"policy":9,"point":0,"rep":0,"hash":"x"}]}`, sj), http.StatusBadRequest},
		"hash mismatch": {fmt.Sprintf(`{"spec": %s, "cells": [{"policy":0,"point":0,"rep":0,"hash":"deadbeef"}]}`, sj), http.StatusConflict},
	} {
		if code := post(tc.body); code != tc.want {
			t.Errorf("%s: status %d, want %d", name, code, tc.want)
		}
	}
}

// TestRequestLogging checks the middleware emits structured lines, that
// scrape endpoints (/v1/healthz, /metrics) are demoted to Debug so the
// default Info level stays quiet under monitoring polls, and that job
// lines carry the request ID.
func TestRequestLogging(t *testing.T) {
	m := NewManager(Config{})
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(syncWriter{&mu, &buf}, &slog.HandlerOptions{Level: slog.LevelDebug}))
	srv := httptest.NewServer(m.Handler(logger))
	defer srv.Close()
	if code := getJSON(t, srv.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{"level=DEBUG", "method=GET", "path=/v1/healthz", "status=200", "dur_ms=", "request_id="} {
		if !strings.Contains(out, want) {
			t.Errorf("request log %q missing %q", out, want)
		}
	}

	// At the default Info level, scrapes are silent and job traffic is not.
	mu.Lock()
	buf.Reset()
	mu.Unlock()
	infoLogger := slog.New(slog.NewTextHandler(syncWriter{&mu, &buf}, nil))
	infoSrv := httptest.NewServer(m.Handler(infoLogger))
	defer infoSrv.Close()
	if code := getJSON(t, infoSrv.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if code := getJSON(t, infoSrv.URL+"/metrics", nil); code != http.StatusOK {
		t.Fatal("metrics failed")
	}
	getJSON(t, infoSrv.URL+"/v1/jobs", nil)
	mu.Lock()
	out = buf.String()
	mu.Unlock()
	if strings.Contains(out, "/v1/healthz") || strings.Contains(out, "/metrics") {
		t.Errorf("scrape endpoints logged at info: %q", out)
	}
	if !strings.Contains(out, "path=/v1/jobs") || !strings.Contains(out, "request_id=") {
		t.Errorf("job endpoint line missing from info log: %q", out)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
