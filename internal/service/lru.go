package service

import "container/list"

// lru is a non-thread-safe least-recently-used map from spec hash to
// finished job; callers hold the manager lock. Get promotes, Add inserts
// at the front and evicts from the back past capacity.
type lru struct {
	cap   int
	order *list.List               // front = most recent; values are *Job
	byKey map[string]*list.Element // hash → element
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element, capacity)}
}

func (c *lru) Get(key string) (*Job, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*Job), true
}

func (c *lru) Add(key string, j *Job) {
	if el, ok := c.byKey[key]; ok {
		el.Value = j
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(j)
	for c.order.Len() > c.cap {
		back := c.order.Back()
		evicted := back.Value.(*Job)
		c.order.Remove(back)
		delete(c.byKey, evicted.Hash)
	}
}

func (c *lru) Len() int { return c.order.Len() }

// Keys returns the hashes from most to least recently used (for tests and
// the health endpoint).
func (c *lru) Keys() []string {
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Job).Hash)
	}
	return out
}
