package service

import (
	"container/list"
	"fmt"
)

// lruEntry pairs a cache key with its value inside the recency list.
type lruEntry[V any] struct {
	key string
	val V
}

// lruCache is a non-thread-safe least-recently-used map from string key to
// V; callers hold the manager lock. Get promotes, Add inserts at the front
// and evicts from the back past capacity. The manager keeps two instances:
// finished jobs by spec hash, and cell results by cell hash.
type lruCache[V any] struct {
	cap   int
	order *list.List               // front = most recent; values are lruEntry[V]
	byKey map[string]*list.Element // key → element
}

func newLRUCache[V any](capacity int) *lruCache[V] {
	// A non-positive capacity is a construction bug, not a runtime
	// condition: Add would evict the entry it just inserted and every Get
	// would miss silently. Fail loudly instead.
	if capacity <= 0 {
		panic(fmt.Sprintf("service: lruCache capacity must be positive, got %d", capacity))
	}
	return &lruCache[V]{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element, capacity)}
}

func (c *lruCache[V]) Get(key string) (V, bool) {
	el, ok := c.byKey[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(lruEntry[V]).val, true
}

// Peek returns the value without promoting it — for read-only listings
// that must not perturb eviction order.
func (c *lruCache[V]) Peek(key string) (V, bool) {
	el, ok := c.byKey[key]
	if !ok {
		var zero V
		return zero, false
	}
	return el.Value.(lruEntry[V]).val, true
}

// Add inserts (or refreshes) key and returns how many entries were
// evicted past capacity, so callers can feed eviction counters.
func (c *lruCache[V]) Add(key string, v V) int {
	if el, ok := c.byKey[key]; ok {
		el.Value = lruEntry[V]{key: key, val: v}
		c.order.MoveToFront(el)
		return 0
	}
	c.byKey[key] = c.order.PushFront(lruEntry[V]{key: key, val: v})
	evicted := 0
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byKey, back.Value.(lruEntry[V]).key)
		evicted++
	}
	return evicted
}

func (c *lruCache[V]) Len() int { return c.order.Len() }

// Keys returns the keys from most to least recently used (for tests and
// the jobs listing).
func (c *lruCache[V]) Keys() []string {
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(lruEntry[V]).key)
	}
	return out
}
