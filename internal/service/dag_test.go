package service

import (
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dagio"
	"dynasym/internal/scenario"
)

// TestDAGWorkloadsEndToEnd is the PR's acceptance check: an imported
// DOT graph and a generated Cholesky DAG flow through the HTTP service
// and produce fingerprints bit-identical to direct scenario.Run, then
// warm-cache resubmits are answered from cache without re-simulation.
func TestDAGWorkloadsEndToEnd(t *testing.T) {
	specs := map[string]scenario.Spec{
		"imported-dot": {
			Name:     "svc-dag-import",
			Workload: scenario.WorkloadSpec{Kind: scenario.DAGFile, DAG: dagio.Demo()},
			Policies: []core.Policy{core.RWS(), core.DAMC()},
			Seed:     11,
		},
		"generated-cholesky": {
			Name: "svc-dag-cholesky",
			Workload: scenario.WorkloadSpec{Kind: scenario.DAGGen, DAGGen: dagio.GenConfig{
				Model: dagio.ModelCholesky, Tiles: 5,
			}},
			Policies: []core.Policy{core.RWS(), core.DAMC()},
			Points:   []scenario.Point{{Label: "T5", Tile: 5}, {Label: "T7", Tile: 7}},
			Seed:     11,
		},
	}
	for name, spec := range specs {
		spec := spec
		t.Run(name, func(t *testing.T) {
			m, srv := newTestServer(t, Config{Workers: 2, CacheSize: 8})
			cj, err := spec.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			body := fmt.Sprintf(`{"spec": %s}`, cj)
			st, code := postJob(t, srv.URL, body)
			if code != 202 {
				t.Fatalf("submit returned %d, want 202", code)
			}
			st = pollDone(t, srv.URL, st.ID)
			if st.State != "done" {
				t.Fatalf("job ended %s: %s", st.State, st.Error)
			}
			var res ResultResponse
			if code := getJSON(t, srv.URL+"/v1/results/"+st.ID, &res); code != 200 {
				t.Fatalf("results returned %d", code)
			}
			direct := scenario.MustRun(spec)
			if res.Fingerprint != direct.Fingerprint() {
				t.Fatalf("service fingerprint differs from direct run:\n--- service\n%s\n--- direct\n%s",
					res.Fingerprint, direct.Fingerprint())
			}
			runsBefore := m.CellRuns()
			// Warm resubmit: absorbed by the done job, zero new cells.
			if _, code := postJob(t, srv.URL, body); code != 200 {
				t.Fatalf("warm resubmit returned %d, want 200", code)
			}
			if got := m.CellRuns(); got != runsBefore {
				t.Fatalf("warm resubmit simulated %d extra cells", got-runsBefore)
			}
		})
	}
}

// TestRemoteShardDAGFile ships an imported graph's cells to a peer
// over POST /v1/shards: the canonical spec is self-contained (it
// carries the normalized graph, not a path), so the worker rebuilds the
// exact workload and the merged fingerprint survives the wire.
func TestRemoteShardDAGFile(t *testing.T) {
	worker := NewManager(Config{Workers: 2})
	srv := httptest.NewServer(worker.Handler(slog.New(slog.NewTextHandler(io.Discard, nil))))
	defer srv.Close()
	coord := NewManager(Config{Workers: 2, ShardSize: 2})
	coord.setBackends(NewRemoteBackend(srv.URL, 0))

	spec := scenario.Spec{
		Name:     "remote-dagfile",
		Workload: scenario.WorkloadSpec{Kind: scenario.DAGFile, DAG: dagio.Demo()},
		Policies: []core.Policy{core.RWS(), core.DAMC(), core.DAMP()},
		Reps:     2,
		Seed:     42,
	}
	j, _, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if coord.CellRuns() != 0 {
		t.Errorf("coordinator simulated %d cells itself; all shards should have gone remote", coord.CellRuns())
	}
	if want := int64(3 * 2); worker.CellRuns() != want {
		t.Errorf("worker simulated %d cells, want %d", worker.CellRuns(), want)
	}
	_, fp, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(spec); fp != direct.Fingerprint() {
		t.Error("remote dagfile fingerprint differs from direct engine run")
	}
}

// TestDAGGenCellCacheOverlap extends a Cholesky sweep by one point and
// requires the delta job to assemble the shared cells from the cell
// cache, simulating only the new point's cells.
func TestDAGGenCellCacheOverlap(t *testing.T) {
	mk := func(tiles ...int) scenario.Spec {
		pts := make([]scenario.Point, len(tiles))
		for i, T := range tiles {
			pts[i] = scenario.Point{Label: fmt.Sprintf("T%d", T), Tile: T}
		}
		return scenario.Spec{
			Name: "svc-dag-overlap",
			Workload: scenario.WorkloadSpec{Kind: scenario.DAGGen, DAGGen: dagio.GenConfig{
				Model: dagio.ModelCholesky,
			}},
			Policies: []core.Policy{core.RWS(), core.DAMC()},
			Points:   pts,
			Seed:     23,
		}
	}
	m := NewManager(Config{Workers: 2, CacheSize: 8})
	ja, _, err := m.Submit(mk(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ja)
	cold := m.CellRuns()
	if cold != 4 {
		t.Fatalf("cold run simulated %d cells, want 4", cold)
	}
	jb, existing, err := m.Submit(mk(4, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("extended sweep absorbed by the old job")
	}
	waitDone(t, jb)
	if got := m.CellRuns(); got != cold+2 {
		t.Fatalf("delta job brought cell runs to %d, want %d", got, cold+2)
	}
	st := jb.Snapshot()
	if st.CellHits != 4 || st.CellMisses != 2 {
		t.Fatalf("delta job counted %d hits / %d misses, want 4 / 2", st.CellHits, st.CellMisses)
	}
	_, fp, _, err := jb.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(mk(4, 5, 6)); fp != direct.Fingerprint() {
		t.Fatal("cell-assembled daggen fingerprint differs from a from-scratch run")
	}
}
