package service

// HTTP/JSON wire API over Manager:
//
//	POST /v1/jobs            {"family": "...", "scale": 0.1, "seed": 7}
//	                         or {"spec": {...canonical spec JSON...}}
//	                         → 202 Status (200 when absorbed by an
//	                         in-flight or cached job)
//	GET  /v1/jobs            → 200 [Status] (in-flight first, then cached)
//	GET  /v1/jobs/{id}       → 200 Status
//	GET  /v1/results/{hash}  → 200 Result (409 while still running)
//	GET  /v1/families        → 200 [{name, desc}], sorted by name
//	GET  /v1/healthz         → 200 {ok, stats, peers: per-peer breaker state}
//	GET  /v1/jobs/{id}/trace → 200 Chrome-trace JSON (load in Perfetto)
//	GET  /v1/jobs/{id}/cells/{i}/simtrace
//	                         → 200 sim-time Chrome trace of plan cell i:
//	                         task slices plus queue-depth/ready/PTT-error/
//	                         core-utilization counter lanes, rendered by
//	                         deterministic re-execution (works for cells
//	                         that originally ran on a remote shard)
//	GET  /metrics            → 200 Prometheus text exposition
//	GET  /debug/pprof/*      net/http/pprof (only with Config.EnablePprof)
//	POST /v1/shards          worker-facing: run a batch of plan cells
//	                         {"spec": {...}, "cells": [{policy,point,rep,hash}]}
//	                         → 200 {"results": [{hash, metrics|error}],
//	                         elapsed_ms, spans: worker-side timeline}
//
// Every request carries an X-Request-ID (echoed from the caller, minted
// here otherwise); it is returned as a response header, attached to the
// request log line, rides job submissions into outgoing shard POSTs, and
// so correlates one submission's log lines across the whole fleet.
//
// Job IDs are spec hashes, so the jobs and results namespaces share keys:
// submit returns the ID, poll /v1/jobs/{id} until "done", then fetch
// /v1/results/{id}.
//
// /v1/shards is how one asymd node farms work to another (-peers): the
// coordinator ships the canonical spec plus cell coordinates, the worker
// re-plans it, verifies the cell hashes (rejecting version skew with 409),
// serves what its own cell cache holds and simulates the rest on its local
// pool.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"dynasym/internal/scenario"
	"dynasym/internal/trace"
)

// maxSpecBytes bounds a submitted spec document.
const maxSpecBytes = 1 << 20

// SubmitRequest is the POST /v1/jobs body: either a registered family at
// a scale, or a raw spec document — not both.
type SubmitRequest struct {
	Family string          `json:"family,omitempty"`
	Scale  float64         `json:"scale,omitempty"`
	Seed   *uint64         `json:"seed,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
}

// ResultResponse is the GET /v1/results/{hash} body: the grid summary
// plus the engine's bit-exact fingerprint (identical to what a direct
// scenario.Run of the same spec produces).
type ResultResponse struct {
	Hash        string      `json:"hash"`
	Name        string      `json:"name"`
	Topo        string      `json:"topo"`
	Policies    []string    `json:"policies"`
	Points      []string    `json:"points"`
	Throughputs [][]float64 `json:"throughputs"`
	Fingerprint string      `json:"fingerprint"`
	ElapsedSec  float64     `json:"elapsed_sec"`
}

// FamilyInfo is one GET /v1/families entry.
type FamilyInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// Handler returns the service's HTTP handler with structured request
// logging to logger (nil = slog.Default()).
func (m *Manager) Handler(logger *slog.Logger) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", m.handleHealthz)
	mux.HandleFunc("GET /v1/families", m.handleFamilies)
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", m.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", m.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/cells/{i}/simtrace", m.handleSimTrace)
	mux.HandleFunc("GET /v1/results/{hash}", m.handleResult)
	mux.HandleFunc("POST /v1/shards", m.handleShards)
	if !m.cfg.DisableMetrics {
		mux.Handle("GET /metrics", m.reg.Handler())
	}
	if m.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return logRequests(logger, mux)
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK    bool         `json:"ok"`
		Stats Stats        `json:"stats"`
		Peers []PeerStatus `json:"peers,omitempty"`
	}{true, m.Stats(), m.PeerHealth()})
}

func (m *Manager) handleFamilies(w http.ResponseWriter, r *http.Request) {
	names := scenario.Names()
	out := make([]FamilyInfo, 0, len(names))
	for _, n := range names {
		f, _ := scenario.Lookup(n)
		out = append(out, FamilyInfo{Name: f.Name, Desc: f.Desc})
	}
	// Names() already sorts, but the stable-response contract belongs to
	// this endpoint — keep it even if the registry's ordering changes.
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (m *Manager) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.Jobs())
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	var (
		job      *Job
		existing bool
		err      error
	)
	switch {
	case req.Family != "" && len(req.Spec) > 0:
		writeError(w, http.StatusBadRequest, errors.New("give either family or spec, not both"))
		return
	case req.Family != "":
		job, existing, err = m.submitFamily(req.Family, req.Scale, req.Seed, requestIDFrom(r.Context()))
	case len(req.Spec) > 0:
		var spec scenario.Spec
		spec, err = scenario.ParseSpec(req.Spec)
		if err == nil {
			job, existing, err = m.submit(spec, requestIDFrom(r.Context()))
		}
	default:
		writeError(w, http.StatusBadRequest, errors.New("give a family or a spec"))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if existing {
		code = http.StatusOK
	}
	writeJSON(w, code, job.Snapshot())
}

func (m *Manager) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job (evicted or never submitted)"))
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// handleTrace exports a job's service-level timeline as Chrome-trace
// JSON: one lane per backend attempt slot (plus nested worker-pool
// lanes), one slice per shard/cell/phase. Save the body to a file and
// open it in https://ui.perfetto.dev.
func (m *Manager) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans, ok := m.JobTrace(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no trace for job (unknown, evicted, or tracing disabled)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = spans.WriteChromeTrace(w)
}

// handleSimTrace exports the simulated schedule of one plan cell as
// Chrome-trace JSON (see Manager.SimTrace). The cell index enumerates the
// plan's grid policy-major, then point, then repetition.
func (m *Manager) handleSimTrace(w http.ResponseWriter, r *http.Request) {
	cell, err := strconv.Atoi(r.PathValue("i"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad cell index %q", r.PathValue("i")))
		return
	}
	b, err := m.SimTrace(r.PathValue("id"), cell)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Job(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown result (evicted or never submitted)"))
		return
	}
	switch job.State() {
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusConflict, job.Snapshot())
		return
	case StateFailed:
		_, _, _, err := job.Result()
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, fprint, elapsed, err := job.Result()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	labels := make([]string, len(res.Points))
	for i, pt := range res.Points {
		labels[i] = pt.Label
	}
	writeJSON(w, http.StatusOK, ResultResponse{
		Hash:        job.Hash,
		Name:        res.Name,
		Topo:        res.Topo.String(),
		Policies:    res.Policies,
		Points:      labels,
		Throughputs: res.Throughputs(),
		Fingerprint: fprint,
		ElapsedSec:  elapsed.Seconds(),
	})
}

// handleShards serves the worker side of the shard API: re-plan the
// shipped spec, verify the requested cells against the local derivation,
// serve cached cells and simulate the rest on the local pool. Hash
// disagreement means the peer runs a different canonical encoding or
// engine — refuse with 409 rather than return results under keys the
// coordinator will misfile.
func (m *Manager) handleShards(w http.ResponseWriter, r *http.Request) {
	var req shardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxShardBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode shard request: %w", err))
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("shard has no cells"))
		return
	}
	spec, err := scenario.ParseSpec(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specHash, err := spec.Hash()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := m.planFor(specHash, spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cells := make([]scenario.CellJob, len(req.Cells))
	for i, sc := range req.Cells {
		c, err := plan.Cell(sc.Policy, sc.Point, sc.Rep)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if sc.Hash != c.Hash {
			writeError(w, http.StatusConflict, fmt.Errorf(
				"cell (%d,%d,%d) hashes to %.12s here, coordinator says %.12s (version skew?)",
				sc.Policy, sc.Point, sc.Rep, c.Hash, sc.Hash))
			return
		}
		cells[i] = c
	}

	// The worker records its own span timeline, offset from request
	// receipt, and returns it with the results; the coordinator grafts it
	// into the job trace (remote.go graftSpans), so the merged timeline
	// shows wire time, worker pool slots and per-cell slices without any
	// cross-node clock agreement.
	shardT0 := m.now()
	jt := newJobTrace(shardT0, m.now, trace.NewSpanSet(maxSpansPerJob))

	cached, missing := m.probeCells(cells)
	executed := make(map[string]CellResult, len(missing))
	if len(missing) > 0 {
		crs, err := m.local.Execute(withJobTrace(r.Context(), jt), plan, missing)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		m.bankCells(crs)
		// Counters move only once the shard is actually served: a shard
		// the pool never ran (canceled request, pool error) is retried by
		// the coordinator on another backend and must not be counted
		// twice — for misses or for hits.
		m.cellMisses.Add(int64(len(crs)))
		m.mx.cellMisses.Add(int64(len(crs)))
		for _, cr := range crs {
			executed[cr.Hash] = cr
		}
	}
	results := make([]shardCellResult, len(cells))
	var hits int64
	for i, c := range cells {
		if rm, ok := cached[c.Hash]; ok {
			rm := rm
			results[i] = shardCellResult{Hash: c.Hash, Metrics: &rm}
			hits++
		} else if cr, ok := executed[c.Hash]; ok {
			if cr.Err != nil {
				results[i] = shardCellResult{Hash: c.Hash, Error: cr.Err.Error()}
			} else {
				rm := cr.Metrics
				results[i] = shardCellResult{Hash: c.Hash, Metrics: &rm}
			}
		} else {
			// Unreachable: every requested cell is cached or executed.
			writeError(w, http.StatusInternalServerError, fmt.Errorf("cell %.12s neither cached nor executed", c.Hash))
			return
		}
	}
	m.cellHits.Add(hits)
	m.mx.cellHits.Add(hits)

	elapsed := m.now().Sub(shardT0)
	resp := shardResponse{Results: results, ElapsedMS: float64(elapsed) / float64(time.Millisecond)}
	resp.Spans = append(resp.Spans, wireSpan{
		Name: fmt.Sprintf("serve shard (%d cells, %d cached)", len(cells), hits),
		Cat:  "simulate", EndMS: resp.ElapsedMS,
	})
	for _, sp := range jt.spans.Spans() {
		resp.Spans = append(resp.Spans, wireSpan{
			Name: sp.Name, Cat: sp.Cat, Lane: sp.Lane,
			StartMS: float64(sp.Start) / float64(time.Millisecond),
			EndMS:   float64(sp.End) / float64(time.Millisecond),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// statusWriter captures the response code and size for the request log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// Flush passes streaming through to the underlying writer — wrapping
// must not cost handlers (pprof's trace endpoint, long scrapes) their
// ability to flush incrementally.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer for
// interfaces this wrapper doesn't re-export.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// logRequests assigns each request its ID (echoing the caller's
// X-Request-ID, minting one otherwise) and emits one structured log line
// per request. Scrape traffic — /v1/healthz and /metrics, typically
// polled every few seconds by monitoring — logs at Debug so an idle
// node's log stays quiet at the default Info level.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(withRequestID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		level := slog.LevelInfo
		if r.URL.Path == "/v1/healthz" || r.URL.Path == "/metrics" {
			level = slog.LevelDebug
		}
		logger.Log(r.Context(), level, "request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.code,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
			"request_id", id,
		)
	})
}
