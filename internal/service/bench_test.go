package service

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dynasym/internal/core"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// benchSpec is the service-path workload: big enough that a cold run does
// real simulation, small enough for the CI 1-iteration rot gate.
func benchSpec(seed uint64) scenario.Spec {
	return scenario.Spec{
		Name: "service-bench",
		Workload: scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel: workloads.MatMul, Tasks: 2000, Parallelism: 8,
		}},
		Policies: []core.Policy{core.DAMC()},
		Points:   scenario.ParallelismPoints(8),
		Seed:     seed,
	}
}

// BenchmarkServiceCacheHit measures a warm lookup: submit of an
// already-cached spec (validate + canonicalize + hash + LRU hit), the
// service's steady-state serving cost.
func BenchmarkServiceCacheHit(b *testing.B) {
	m := NewManager(Config{Workers: 1, CacheSize: 4})
	j, _, err := m.Submit(benchSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, existing, err := m.Submit(benchSpec(1))
		if err != nil {
			b.Fatal(err)
		}
		if !existing {
			b.Fatal("cache miss on a warm spec")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkShardDispatch isolates the shard-dispatch machinery — plan,
// cell hashing, cache probes, shard batching, backend round-robin, merge —
// by substituting a no-op cell runner. Each iteration dispatches a fresh
// 24-cell grid (seed varies every cell hash, so nothing caches).
func BenchmarkShardDispatch(b *testing.B) {
	m := NewManager(Config{Workers: 4, CacheSize: 4, ShardSize: 4})
	m.local.runCell = func(*scenario.Plan, *scenario.CellState, scenario.CellJob) (scenario.RunMetrics, error) {
		return scenario.RunMetrics{Throughput: 1, Makespan: 1, TasksDone: 1}, nil
	}
	mkSpec := func(seed uint64) scenario.Spec {
		s := benchSpec(seed)
		s.Policies = []core.Policy{core.RWS(), core.DAMC()}
		s.Points = scenario.ParallelismPoints(2, 4, 8)
		s.Reps = 4 // 2 × 3 × 4 = 24 cells
		return s
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, existing, err := m.Submit(mkSpec(uint64(10_000 + i)))
		if err != nil {
			b.Fatal(err)
		}
		if existing {
			b.Fatal("unexpected job-cache hit")
		}
		if err := j.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		if j.State() != StateDone {
			b.Fatalf("job failed: %v", j.Snapshot().Error)
		}
	}
	b.ReportMetric(float64(24*b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkCellAssemblyWarm measures assembling a job entirely from the
// cell cache: each iteration submits the same grid under a fresh name —
// new job hash, zero engine work — so the cost is plan + cell lookups +
// merge + fingerprint.
func BenchmarkCellAssemblyWarm(b *testing.B) {
	m := NewManager(Config{Workers: 2, CacheSize: 2})
	warmup, _, err := m.Submit(benchSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := warmup.Wait(ctx); err != nil {
		b.Fatal(err)
	}
	runs := m.CellRuns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := benchSpec(1)
		s.Name = fmt.Sprintf("warm-assembly-%d", i)
		j, _, err := m.Submit(s)
		if err != nil {
			b.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		if j.State() != StateDone {
			b.Fatalf("job failed: %v", j.Snapshot().Error)
		}
	}
	b.StopTimer()
	if m.CellRuns() != runs {
		b.Fatalf("warm assembly simulated %d cells", m.CellRuns()-runs)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "assemblies/s")
}

// BenchmarkServiceColdRun measures the uncached path end to end: a fresh
// spec per iteration (seed varies the hash), one full engine run each.
func BenchmarkServiceColdRun(b *testing.B) {
	m := NewManager(Config{Workers: 1, CacheSize: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, existing, err := m.Submit(benchSpec(uint64(1000 + i)))
		if err != nil {
			b.Fatal(err)
		}
		if existing {
			b.Fatal("unexpected cache hit on a fresh seed")
		}
		if err := j.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		if j.State() != StateDone {
			b.Fatalf("job failed: %v", j.Snapshot().Error)
		}
	}
}
