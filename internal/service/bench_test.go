package service

import (
	"context"
	"testing"
	"time"

	"dynasym/internal/core"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// benchSpec is the service-path workload: big enough that a cold run does
// real simulation, small enough for the CI 1-iteration rot gate.
func benchSpec(seed uint64) scenario.Spec {
	return scenario.Spec{
		Name: "service-bench",
		Workload: scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel: workloads.MatMul, Tasks: 2000, Parallelism: 8,
		}},
		Policies: []core.Policy{core.DAMC()},
		Points:   scenario.ParallelismPoints(8),
		Seed:     seed,
	}
}

// BenchmarkServiceCacheHit measures a warm lookup: submit of an
// already-cached spec (validate + canonicalize + hash + LRU hit), the
// service's steady-state serving cost.
func BenchmarkServiceCacheHit(b *testing.B) {
	m := NewManager(Config{Workers: 1, CacheSize: 4})
	j, _, err := m.Submit(benchSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, existing, err := m.Submit(benchSpec(1))
		if err != nil {
			b.Fatal(err)
		}
		if !existing {
			b.Fatal("cache miss on a warm spec")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkServiceColdRun measures the uncached path end to end: a fresh
// spec per iteration (seed varies the hash), one full engine run each.
func BenchmarkServiceColdRun(b *testing.B) {
	m := NewManager(Config{Workers: 1, CacheSize: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, existing, err := m.Submit(benchSpec(uint64(1000 + i)))
		if err != nil {
			b.Fatal(err)
		}
		if existing {
			b.Fatal("unexpected cache hit on a fresh seed")
		}
		if err := j.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		if j.State() != StateDone {
			b.Fatalf("job failed: %v", j.Snapshot().Error)
		}
	}
}
