package service

import (
	"io"
	"log/slog"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dynasym/internal/scenario"
)

// chaosSpec: 2 policies × 3 points × 2 reps = 12 distinct cells, enough
// to spread across several shards and backends.
func chaosSpec(seed uint64) scenario.Spec {
	s := overlapSpec(seed, 2, 4, 8)
	s.Reps = 2
	return s
}

const chaosCells = 12

// assertUndisturbedFingerprint checks the chaos invariant: whatever
// faults fired, the merged fingerprint is byte-identical to a run with
// no faults at all.
func assertUndisturbedFingerprint(t *testing.T, j *Job, spec scenario.Spec) {
	t.Helper()
	if j.State() != StateDone {
		t.Fatalf("job finished %v (%s), want done", j.State(), j.Snapshot().Error)
	}
	_, fp, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(spec); fp != direct.Fingerprint() {
		t.Errorf("fingerprint diverged from the undisturbed run:\n--- chaos\n%s\n--- direct\n%s",
			fp, direct.Fingerprint())
	}
}

// TestChaosAllPeersRefusingDrainsLocally: with every remote peer refusing
// connections, the job must degrade gracefully — all shards drain through
// the local pool, each cell simulated exactly once, and both peers end up
// with open breakers.
func TestChaosAllPeersRefusingDrainsLocally(t *testing.T) {
	m := NewManager(Config{Workers: 2, ShardSize: 2, RetryBackoff: -1, FailThreshold: 2})
	p1 := newFaultBackend("chaos-peer-1", newLocalBackend(2), 0, true, faultRefuse)
	p2 := newFaultBackend("chaos-peer-2", newLocalBackend(2), 0, true, faultRefuse)
	m.setBackends(m.local, p1, p2)

	spec := chaosSpec(70)
	j, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	assertUndisturbedFingerprint(t, j, spec)
	if got := m.CellRuns(); got != chaosCells {
		t.Errorf("degraded run simulated %d cells locally, want exactly %d", got, chaosCells)
	}
	if p1.injected.Load() == 0 || p2.injected.Load() == 0 {
		t.Fatalf("fault injection was vacuous: %d/%d refusals fired", p1.injected.Load(), p2.injected.Load())
	}
	for _, ps := range m.PeerHealth() {
		if ps.State != "down" {
			t.Errorf("peer %s is %s with %d consecutive failures, want down", ps.Peer, ps.State, ps.ConsecutiveFails)
		}
		if ps.LastError == "" {
			t.Errorf("peer %s is down but reports no last error", ps.Peer)
		}
	}
	if st := j.Snapshot(); st.CellHits+st.CellMisses != st.CellsTotal {
		t.Errorf("cell accounting drifted: %d hits + %d misses != %d total", st.CellHits, st.CellMisses, st.CellsTotal)
	}
}

// TestChaosWedgedPeerFailsOverWithinTimeout: a peer that accepts the
// shard but never answers must be cut off by ShardTimeout and the shard
// retried elsewhere; the wedge contributes zero cell runs.
func TestChaosWedgedPeerFailsOverWithinTimeout(t *testing.T) {
	m := NewManager(Config{Workers: 2, ShardSize: 4, ShardTimeout: 30 * time.Millisecond, RetryBackoff: -1})
	wedged := newFaultBackend("chaos-wedged", newLocalBackend(2), 0, true, faultDelay)
	m.setBackends(wedged, m.local)

	spec := chaosSpec(71)
	j, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	assertUndisturbedFingerprint(t, j, spec)
	if got := m.CellRuns(); got != chaosCells {
		t.Errorf("local pool simulated %d cells, want all %d (the wedge must contribute none)", got, chaosCells)
	}
	if wedged.injected.Load() == 0 {
		t.Fatal("fault injection was vacuous: the wedge never fired")
	}
}

// TestChaosMidShardCrashBanksPrefix: a peer that completes k cells and
// then crashes must have that prefix banked, never re-simulated — the
// fleet-wide total stays exactly one run per cell.
func TestChaosMidShardCrashBanksPrefix(t *testing.T) {
	m := NewManager(Config{Workers: 2, ShardSize: 4, RetryBackoff: -1, FailThreshold: 100})
	inner := newLocalBackend(2)
	crashy := newFaultBackend("chaos-crashy", inner, 2, true, faultCrash)
	m.setBackends(crashy, m.local)

	spec := chaosSpec(72)
	j, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	assertUndisturbedFingerprint(t, j, spec)
	banked := inner.cellRuns.Load()
	if banked == 0 {
		t.Fatal("fault injection was vacuous: the crashing peer never completed a prefix")
	}
	if total := m.CellRuns() + banked; total != chaosCells {
		t.Errorf("fleet simulated %d cells in total, want exactly %d (banked prefixes must not re-run)",
			total, chaosCells)
	}
}

// TestChaosSeededSchedules: randomized-but-reproducible chaos. Two peers
// draw refuse/crash/clean outcomes from seeded fault schedules; for every
// seed the job completes with the undisturbed fingerprint.
func TestChaosSeededSchedules(t *testing.T) {
	spec := chaosSpec(73)
	want := scenario.MustRun(spec).Fingerprint()
	for seed := uint64(1); seed <= 5; seed++ {
		m := NewManager(Config{Workers: 4, ShardSize: 2, RetryBackoff: -1, FailThreshold: 3})
		p1 := newFaultBackend("seeded-1", newLocalBackend(2), 1, false,
			seededFaultScript(seed, 64, faultNone, faultRefuse, faultCrash)...)
		p2 := newFaultBackend("seeded-2", newLocalBackend(2), 1, false,
			seededFaultScript(seed*977+1, 64, faultNone, faultRefuse, faultCrash)...)
		m.setBackends(m.local, p1, p2)
		j, _, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if j.State() != StateDone {
			t.Fatalf("seed %d: job finished %v (%s), want done", seed, j.State(), j.Snapshot().Error)
		}
		_, fp, _, err := j.Result()
		if err != nil {
			t.Fatal(err)
		}
		if fp != want {
			t.Errorf("seed %d: fingerprint diverged under scripted chaos", seed)
		}
	}
}

// TestChaosWireFaultsRetryExactly mangles real HTTP responses between a
// coordinator and a worker — a corrupted result hash, then a truncated
// body. remoteBackend's verification must reject both, the retry budget
// must re-send the shard, and the worker's own cell cache must serve the
// retries so no cell is ever simulated twice.
func TestChaosWireFaultsRetryExactly(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind faultKind
	}{
		{"corrupt-hash", faultCorrupt},
		{"truncated-body", faultTruncate},
	} {
		t.Run(tc.name, func(t *testing.T) {
			worker := NewManager(Config{Workers: 2})
			srv := httptest.NewServer(worker.Handler(slog.New(slog.NewTextHandler(io.Discard, nil))))
			defer srv.Close()

			// First two shard posts come back mangled; the third is clean.
			ft := newFaultTransport(false, tc.kind, tc.kind)
			coord := NewManager(Config{Workers: 2, ShardSize: 16, ShardRetries: 3, RetryBackoff: -1})
			coord.setBackends(newRemoteBackend(srv.URL, 0, ft))

			spec := chaosSpec(74)
			j, _, err := coord.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			waitDone(t, j)
			assertUndisturbedFingerprint(t, j, spec)
			if ft.injected.Load() != 2 {
				t.Errorf("fault transport mangled %d responses, want 2", ft.injected.Load())
			}
			if coord.CellRuns() != 0 {
				t.Errorf("coordinator simulated %d cells itself; the remote fleet should have", coord.CellRuns())
			}
			// The worker banked every cell on the first (mangled) attempt,
			// so the retried shards were cache hits: exactly one run each.
			if got := worker.CellRuns(); got != chaosCells {
				t.Errorf("worker simulated %d cells across the retries, want exactly %d", got, chaosCells)
			}
		})
	}
}

// TestChaosPeerRecoveryReadmits: a peer that refuses once, trips its
// breaker, and then heals must be skipped while down and re-admitted by
// the first due probe — no restart, no manual action.
func TestChaosPeerRecoveryReadmits(t *testing.T) {
	m := NewManager(Config{Workers: 2, ShardSize: 2, RetryBackoff: -1, FailThreshold: 1})
	inner := newLocalBackend(2)
	peer := newFaultBackend("healing", inner, 0, false, faultRefuse) // one refusal, healthy after
	m.setBackends(peer, m.local)

	var clockMu sync.Mutex
	cur := time.Unix(1000, 0)
	m.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return cur
	}

	// Job 1: the shard homed on the peer hits the refusal, fails over to
	// the local pool, and trips the breaker (threshold 1).
	s1 := tinySpec(80)
	j1, _, err := m.Submit(s1)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	assertUndisturbedFingerprint(t, j1, s1)
	if ph := m.PeerHealth(); len(ph) != 1 || ph[0].State != "down" {
		t.Fatalf("peer health after refusal = %+v, want one down peer", ph)
	}

	// Job 2, still inside the backoff window: the peer must be skipped.
	s2 := tinySpec(81)
	j2, _, err := m.Submit(s2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	assertUndisturbedFingerprint(t, j2, s2)
	if got := inner.cellRuns.Load(); got != 0 {
		t.Fatalf("down peer simulated %d cells during its backoff window", got)
	}

	// Advance past the probe time: job 3's first shard is the probe, it
	// succeeds, and the peer is healthy again.
	clockMu.Lock()
	cur = cur.Add(time.Hour)
	clockMu.Unlock()
	s3 := tinySpec(82)
	j3, _, err := m.Submit(s3)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j3)
	assertUndisturbedFingerprint(t, j3, s3)
	if got := inner.cellRuns.Load(); got == 0 {
		t.Error("recovered peer never simulated a cell after its probe")
	}
	if ph := m.PeerHealth(); len(ph) != 1 || ph[0].State != "healthy" || ph[0].ConsecutiveFails != 0 {
		t.Errorf("peer health after recovery = %+v, want one clean healthy peer", ph)
	}
}
