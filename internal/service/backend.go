package service

// Backends execute cell shards. The manager plans a submitted spec into
// cell jobs (internal/scenario Plan), batches the uncached cells into
// shards, and hands each shard to a backend; a shard that fails on one
// backend is retried on the others. Two implementations exist: the
// in-process bounded pool below, and the remote peer backend (remote.go)
// that farms shards to another asymd node over POST /v1/shards.

import (
	"context"
	"sync"
	"sync/atomic"

	"dynasym/internal/scenario"
)

// CellResult is one cell's outcome. Err carries a deterministic engine
// error (the cell itself is invalid or failed); such errors fail the job
// and are never retried — rerunning a deterministic failure elsewhere
// produces the same failure. Transport-level problems are reported as
// Execute's error instead, and those ARE retried on another backend.
type CellResult struct {
	Hash    string
	Metrics scenario.RunMetrics
	Err     error
}

// Backend executes a batch of cells from one plan.
type Backend interface {
	// Name identifies the backend in errors, logs and stats.
	Name() string
	// Execute runs the cells and returns one result per cell, in order.
	// A non-nil error means the backend itself failed (pool shut down,
	// peer unreachable, ...) and the whole shard may be retried elsewhere;
	// per-cell engine errors go into CellResult.Err.
	Execute(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error)
}

// localBackend runs cells in process on a bounded worker pool. The pool is
// shared across all jobs and shard requests served by this node, so total
// simulation concurrency stays bounded no matter how many jobs are in
// flight.
type localBackend struct {
	sem chan struct{}
	// cellRuns counts cells actually simulated (the cache-miss work).
	cellRuns atomic.Int64
	// runCell is the engine entry point; tests substitute it to count
	// runs or inject failures without simulating.
	runCell func(*scenario.Plan, scenario.CellJob) (scenario.RunMetrics, error)
}

func newLocalBackend(workers int) *localBackend {
	return &localBackend{
		sem:     make(chan struct{}, workers),
		runCell: (*scenario.Plan).RunCell,
	}
}

func (b *localBackend) Name() string { return "local" }

func (b *localBackend) Execute(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error) {
	out := make([]CellResult, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		select {
		case b.sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return nil, ctx.Err()
		}
		wg.Add(1)
		go func(i int, c scenario.CellJob) {
			defer wg.Done()
			defer func() { <-b.sem }()
			b.cellRuns.Add(1)
			rm, err := b.runCell(plan, c)
			out[i] = CellResult{Hash: c.Hash, Metrics: rm, Err: err}
		}(i, c)
	}
	wg.Wait()
	return out, nil
}
