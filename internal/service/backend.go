package service

// Backends execute cell shards. The manager plans a submitted spec into
// cell jobs (internal/scenario Plan), batches the uncached cells into
// shards, and hands each shard to a backend; a shard that fails on one
// backend is retried on the others. Two implementations exist: the
// in-process bounded pool below, and the remote peer backend (remote.go)
// that farms shards to another asymd node over POST /v1/shards.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynasym/internal/obs"
	"dynasym/internal/scenario"
	"dynasym/internal/trace"
)

// CellResult is one cell's outcome. Err carries a deterministic engine
// error (the cell itself is invalid or failed); such errors fail the job
// and are never retried — rerunning a deterministic failure elsewhere
// produces the same failure. Transport-level problems are reported as
// Execute's error instead, and those ARE retried on another backend.
type CellResult struct {
	Hash    string
	Metrics scenario.RunMetrics
	Err     error
}

// Backend executes a batch of cells from one plan.
type Backend interface {
	// Name identifies the backend in errors, logs and stats.
	Name() string
	// Execute runs the cells and returns one result per cell, in order.
	// A non-nil error means the backend itself failed (pool shut down,
	// peer unreachable, ...) and the shard may be retried elsewhere. Even
	// then the result slice may carry cells that completed before the
	// failure (entries with a non-empty Hash); callers should bank those
	// and retry only the remainder. Per-cell engine errors go into
	// CellResult.Err.
	Execute(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error)
}

// localBackend runs cells in process on a bounded worker pool. The pool is
// shared across all jobs and shard requests served by this node, so total
// simulation concurrency stays bounded no matter how many jobs are in
// flight.
type localBackend struct {
	sem chan struct{}
	// cellRuns counts cells actually simulated (the cache-miss work).
	cellRuns atomic.Int64
	// busy, runs and runSec mirror the pool into the manager's metric
	// registry (utilization gauge, run counter, duration histogram).
	// They are nil-tolerant, so a bare test backend works unwired.
	busy   *obs.Gauge
	runs   *obs.Counter
	runSec *obs.Histogram
	// runCell is the engine entry point; tests substitute it to count
	// runs or inject failures without simulating.
	runCell func(*scenario.Plan, *scenario.CellState, scenario.CellJob) (scenario.RunMetrics, error)
}

func newLocalBackend(workers int) *localBackend {
	return &localBackend{
		sem:     make(chan struct{}, workers),
		runCell: (*scenario.Plan).RunCellState,
	}
}

func (b *localBackend) Name() string { return "local" }

// Execute batches the cells by compiled-workload variant: cells are ordered
// so that each chunk worker sweeps cells of one compiled graph back to
// back, reusing its per-worker scratch state (engine storage) across the
// whole chunk. The semaphore is acquired per cell, not per chunk, so the
// node-wide concurrency bound and cross-shard fairness are unchanged.
//
// On context cancellation the results of cells that already completed are
// returned alongside ctx.Err() — completed simulation work is never
// discarded, and cellRuns counts exactly the cells that actually ran.
func (b *localBackend) Execute(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error) {
	out := make([]CellResult, len(cells))
	if len(cells) == 0 {
		return out, ctx.Err()
	}
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return plan.PointVariant(cells[order[a]].Point) < plan.PointVariant(cells[order[b]].Point)
	})
	workers := cap(b.sem)
	if workers > len(cells) {
		workers = len(cells)
	}
	chunk := (len(cells) + workers - 1) / workers
	jt := jobTraceFrom(ctx)
	lanePrefix := traceLaneFrom(ctx)
	var wg sync.WaitGroup
	for lo := 0; lo < len(order); lo += chunk {
		wg.Add(1)
		go func(w int, idxs []int) {
			defer wg.Done()
			st := scenario.NewCellState()
			lane := ""
			if jt != nil {
				lane = fmt.Sprintf("%s w%d", lanePrefix, w)
			}
			for _, i := range idxs {
				// Check cancellation before racing it against a free
				// worker slot: once the context is done, no further cell
				// of this chunk may start.
				select {
				case <-ctx.Done():
					return
				default:
				}
				select {
				case b.sem <- struct{}{}:
				case <-ctx.Done():
					return
				}
				b.cellRuns.Add(1)
				b.runs.Inc()
				b.busy.Inc()
				cellT0, cellStart := jt.at(), time.Now()
				rm, err := b.runCell(plan, st, cells[i])
				b.runSec.Observe(time.Since(cellStart).Seconds())
				b.busy.Dec()
				if jt != nil {
					jt.span(trace.Span{
						Name: plan.CellLabel(cells[i]), Cat: "simulate",
						Lane: lane, Start: cellT0, End: jt.at(),
					})
				}
				out[i] = CellResult{Hash: cells[i].Hash, Metrics: rm, Err: err}
				<-b.sem
			}
		}(lo/chunk, order[lo:min(lo+chunk, len(order))])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
