package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// getBody fetches a URL and returns status and raw body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// The simtrace endpoint must serve a valid Chrome trace of any plan cell
// of a finished job: task ("X") slices plus counter ("C") lanes, rendered
// by deterministic re-execution and cached by cell hash.
func TestSimTraceEndpoint(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 2, CacheSize: 8})

	spec := tinySpec(33)
	specJSON, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	st, code := postJob(t, srv.URL, fmt.Sprintf(`{"spec": %s}`, specJSON))
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	final := pollDone(t, srv.URL, st.ID)
	if final.State != "done" {
		t.Fatalf("job finished as %q: %s", final.State, final.Error)
	}

	code, body := getBody(t, srv.URL+"/v1/jobs/"+st.ID+"/cells/0/simtrace")
	if code != http.StatusOK {
		t.Fatalf("GET simtrace: status %d: %s", code, body)
	}
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("simtrace is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	counterLanes := map[string]bool{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph == "C" {
			counterLanes[ev["name"].(string)] = true
		}
	}
	if phases["X"] == 0 || phases["C"] == 0 {
		t.Fatalf("simtrace phases %v: want task (X) and counter (C) events", phases)
	}
	for _, lane := range []string{"queue depth", "ready tasks", "core util"} {
		if !counterLanes[lane] {
			t.Fatalf("simtrace has no %q counter lane (lanes: %v)", lane, counterLanes)
		}
	}

	// A second fetch is served from the render cache, byte-identical.
	renders := m.mx.simtraceRenders.Value()
	if renders != 1 {
		t.Fatalf("renders = %d after first fetch, want 1", renders)
	}
	code, again := getBody(t, srv.URL+"/v1/jobs/"+st.ID+"/cells/0/simtrace")
	if code != http.StatusOK || string(again) != string(body) {
		t.Fatalf("cached fetch: status %d, identical=%t", code, string(again) == string(body))
	}
	if got := m.mx.simtraceRenders.Value(); got != renders {
		t.Fatalf("cached fetch re-rendered (renders %d -> %d)", renders, got)
	}

	// Error mapping: unknown job is 404, an out-of-grid cell is 400.
	if code, _ := getBody(t, srv.URL+"/v1/jobs/nope/cells/0/simtrace"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
	if code, _ := getBody(t, srv.URL+"/v1/jobs/"+st.ID+"/cells/9999/simtrace"); code != http.StatusBadRequest {
		t.Fatalf("bad cell index: status %d, want 400", code)
	}
	if code, _ := getBody(t, srv.URL+"/v1/jobs/"+st.ID+"/cells/x/simtrace"); code != http.StatusBadRequest {
		t.Fatalf("non-numeric cell index: status %d, want 400", code)
	}
}

// Sim-level gauges ride /metrics: after a job, the node reports the
// simulated task/steal/dispatch totals of the cells it banked.
func TestSimMetricsExposed(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 2, CacheSize: 8})
	j, _, err := m.Submit(tinySpec(34))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if m.mx.simTasks.Value() == 0 {
		t.Fatal("asymd_sim_tasks_total is zero after a finished job")
	}
	code, body := getBody(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	for _, name := range []string{
		"asymd_sim_tasks_total", "asymd_sim_steals_total", "asymd_sim_dispatches_total",
		"asymd_sim_makespan_seconds", "asymd_sim_core_utilization", "asymd_simtrace_renders_total",
	} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("/metrics is missing %s", name)
		}
	}
}
