package service

// Fleet observability: the manager owns an obs.Registry (served at
// GET /metrics) and, per job, a trace.SpanSet of service-level spans
// (served at GET /v1/jobs/{id}/trace as a Perfetto-loadable Chrome
// trace). Metrics cover the whole request path — job lifecycle, cell
// cache, local pool, per-peer shard RTT, retry/failover and breaker
// transitions — with zero allocations per update, so the counters can
// ride the cell hot path. Spans are the complementary view: where a
// counter says "37 failovers", the trace shows *which* shards moved to
// *which* backend lane and when.
//
// Every job also carries a request ID (X-Request-ID, generated when the
// submitter sends none) that is threaded through POST /v1/shards, so a
// worker's request log lines correlate with the coordinator's.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynasym/internal/obs"
	"dynasym/internal/scenario"
	"dynasym/internal/trace"
)

// serviceMetrics is the manager's metric set. Every field is registered
// once in newServiceMetrics; per-peer series are added by setBackends.
type serviceMetrics struct {
	reg *obs.Registry

	jobsSubmitted *obs.Counter
	jobsAbsorbed  *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsQueued    *obs.Gauge
	jobsRunning   *obs.Gauge
	jobQueueSec   *obs.Histogram
	jobRunSec     *obs.Histogram

	cellRuns   *obs.Counter
	cellRunSec *obs.Histogram
	cellHits   *obs.Counter
	cellMisses *obs.Counter
	cellEvict  *obs.Counter
	jobEvict   *obs.Counter

	poolWorkers *obs.Gauge
	poolBusy    *obs.Gauge

	shardRetryRounds *obs.Counter
	shardFailovers   *obs.Counter

	traceSpansDropped *obs.Counter

	// Sim-level telemetry: scheduler activity inside the simulated runs
	// this node banked into its cell cache (local pool runs and shard
	// results landing from peers alike). All virtual-time quantities.
	simTasks        *obs.Counter
	simSteals       *obs.Counter
	simDispatches   *obs.Counter
	simMakespanSec  *obs.Histogram
	simCoreUtil     *obs.Histogram
	simtraceRenders *obs.Counter
}

// Histogram ladders: cells run µs–minutes, jobs ms–tens of minutes, the
// wire ms–minute. All start low enough that warm-cache service stays
// visible and end past the configured timeouts.
var (
	cellSecBuckets = obs.ExpBuckets(1e-4, 10, 7) // 100µs .. 100s
	jobSecBuckets  = obs.ExpBuckets(1e-3, 10, 7) // 1ms .. 1000s
	rttSecBuckets  = obs.ExpBuckets(1e-3, 10, 6) // 1ms .. 100s
	// Virtual-time makespans of simulated cells: µs-scale toy graphs up
	// to minutes-scale paper sweeps.
	simMakespanBuckets = obs.ExpBuckets(1e-5, 10, 8) // 10µs .. 1000s (virtual)
	// Per-core utilization is a fraction of the makespan.
	simUtilBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
)

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	return &serviceMetrics{
		reg:           reg,
		jobsSubmitted: reg.Counter("asymd_jobs_submitted_total", "Job submissions accepted (including ones absorbed by an in-flight or cached job)."),
		jobsAbsorbed:  reg.Counter("asymd_jobs_absorbed_total", "Submissions absorbed by an in-flight or cached job (no new engine run)."),
		jobsDone:      reg.Counter("asymd_jobs_done_total", "Jobs that finished successfully."),
		jobsFailed:    reg.Counter("asymd_jobs_failed_total", "Jobs that finished in failure."),
		jobsQueued:    reg.Gauge("asymd_jobs_queued", "Jobs admitted but waiting for a worker slot."),
		jobsRunning:   reg.Gauge("asymd_jobs_running", "Jobs currently executing their grid."),
		jobQueueSec:   reg.Histogram("asymd_job_queue_seconds", "Time from submission to execution start.", jobSecBuckets),
		jobRunSec:     reg.Histogram("asymd_job_run_seconds", "Time from execution start to completion.", jobSecBuckets),

		cellRuns:   reg.Counter("asymd_cell_runs_total", "Grid cells simulated by the local pool (own jobs and served shards)."),
		cellRunSec: reg.Histogram("asymd_cell_run_seconds", "Wall time of one local cell simulation.", cellSecBuckets),
		cellHits:   reg.Counter("asymd_cell_cache_hits_total", "Grid cells served from the cell-result cache."),
		cellMisses: reg.Counter("asymd_cell_cache_misses_total", "Grid cells dispatched to a backend (cache misses)."),
		cellEvict:  reg.Counter("asymd_cell_cache_evictions_total", "Cell results evicted from the cell-result LRU."),
		jobEvict:   reg.Counter("asymd_job_cache_evictions_total", "Finished jobs evicted from the job LRU."),

		poolWorkers: reg.Gauge("asymd_pool_workers", "Local pool capacity (concurrent cell simulations)."),
		poolBusy:    reg.Gauge("asymd_pool_busy_workers", "Local pool workers currently simulating a cell."),

		shardRetryRounds: reg.Counter("asymd_shard_retry_rounds_total", "Extra retry rounds entered by shards (first round excluded)."),
		shardFailovers:   reg.Counter("asymd_shard_failovers_total", "Failed shard attempts that moved the shard to another backend or round."),

		traceSpansDropped: reg.Counter("asymd_trace_spans_dropped_total", "Service-trace spans dropped by the per-job retention cap."),

		simTasks:        reg.Counter("asymd_sim_tasks_total", "Simulated task executions inside cells banked by this node."),
		simSteals:       reg.Counter("asymd_sim_steals_total", "Simulated work steals inside cells banked by this node."),
		simDispatches:   reg.Counter("asymd_sim_dispatches_total", "Simulated assembly dispatches inside cells banked by this node."),
		simMakespanSec:  reg.Histogram("asymd_sim_makespan_seconds", "Virtual-time makespan of cells banked by this node.", simMakespanBuckets),
		simCoreUtil:     reg.Histogram("asymd_sim_core_utilization", "Per-core busy fraction of the makespan, one sample per simulated core per banked cell.", simUtilBuckets),
		simtraceRenders: reg.Counter("asymd_simtrace_renders_total", "Per-cell sim-time traces rendered by re-execution (cache hits excluded)."),
	}
}

// observeSim records one banked cell's simulated scheduler activity.
func (mx *serviceMetrics) observeSim(rm scenario.RunMetrics) {
	mx.simTasks.Add(rm.TasksDone)
	mx.simSteals.Add(rm.Steals)
	mx.simDispatches.Add(rm.Dispatches)
	mx.simMakespanSec.Observe(rm.Makespan)
	if rm.Makespan > 0 {
		for _, busy := range rm.CoreBusy {
			mx.simCoreUtil.Observe(busy / rm.Makespan)
		}
	}
}

// peerLabel is the metric label value for a backend handle: the bare
// peer URL for remote backends, the backend name otherwise.
func peerLabel(b Backend) string {
	if rb, ok := b.(*remoteBackend); ok {
		return rb.url
	}
	return b.Name()
}

// wirePeerMetrics registers the per-peer series for one breaker-tracked
// handle. Registration is get-or-create, so re-wrapped fleets share the
// existing series.
func (mx *serviceMetrics) wirePeerMetrics(h *backendHandle) {
	peer := obs.L("peer", peerLabel(h.Backend))
	h.rttSec = mx.reg.Histogram("asymd_peer_shard_rtt_seconds", "Round-trip time of successful shard attempts, per peer.", rttSecBuckets, peer)
	h.failures = mx.reg.Counter("asymd_peer_failures_total", "Failed shard attempts, per peer.", peer)
	h.stateG = mx.reg.Gauge("asymd_breaker_state", "Circuit-breaker state per peer: 0 healthy, 1 probing, 2 down.", peer)
	for s := peerHealthy; s <= peerDown; s++ {
		h.transitions[s] = mx.reg.Counter("asymd_breaker_transitions_total", "Circuit-breaker state transitions, per peer and target state.", peer, obs.L("to", s.String()))
	}
}

// maxSpansPerJob bounds one job's retained spans: a pathological grid
// keeps its newest-first picture instead of growing without bound.
const maxSpansPerJob = 1 << 14

// jobTrace carries one job's span set (plus the clock origin and lane
// allocator) through the dispatch path via context, so backends record
// spans without interface changes. All methods are nil-tolerant — a
// disabled tracer costs one nil check per call site.
type jobTrace struct {
	spans *trace.SpanSet
	t0    time.Time
	now   func() time.Time

	mu    sync.Mutex
	slots map[string][]bool // lane prefix → slot occupancy
}

func newJobTrace(t0 time.Time, now func() time.Time, spans *trace.SpanSet) *jobTrace {
	return &jobTrace{spans: spans, t0: t0, now: now, slots: make(map[string][]bool)}
}

// at returns the current offset from the trace origin.
func (jt *jobTrace) at() time.Duration {
	if jt == nil {
		return 0
	}
	return jt.now().Sub(jt.t0)
}

// span records one slice. Safe on a nil trace.
func (jt *jobTrace) span(sp trace.Span) {
	if jt == nil {
		return
	}
	jt.spans.Add(sp)
}

// lane leases a display lane "<prefix> #<i>" with the lowest free slot
// index, so concurrent shards on one backend render on parallel tracks
// instead of overlapping. Release it when the slice ends.
func (jt *jobTrace) lane(prefix string) (string, func()) {
	if jt == nil {
		return "", func() {}
	}
	jt.mu.Lock()
	slots := jt.slots[prefix]
	idx := -1
	for i, used := range slots {
		if !used {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = len(slots)
		slots = append(slots, false)
	}
	slots[idx] = true
	jt.slots[prefix] = slots
	jt.mu.Unlock()
	lane := fmt.Sprintf("%s #%d", prefix, idx)
	return lane, func() {
		jt.mu.Lock()
		jt.slots[prefix][idx] = false
		jt.mu.Unlock()
	}
}

type jobTraceCtxKey struct{}
type traceLaneCtxKey struct{}
type requestIDCtxKey struct{}

func withJobTrace(ctx context.Context, jt *jobTrace) context.Context {
	if jt == nil {
		return ctx
	}
	return context.WithValue(ctx, jobTraceCtxKey{}, jt)
}

func jobTraceFrom(ctx context.Context) *jobTrace {
	jt, _ := ctx.Value(jobTraceCtxKey{}).(*jobTrace)
	return jt
}

// withTraceLane pins the display lane a backend's spans nest under (the
// shard attempt's lane, set by runShard).
func withTraceLane(ctx context.Context, lane string) context.Context {
	if lane == "" {
		return ctx
	}
	return context.WithValue(ctx, traceLaneCtxKey{}, lane)
}

func traceLaneFrom(ctx context.Context) string {
	lane, _ := ctx.Value(traceLaneCtxKey{}).(string)
	return lane
}

// withRequestID threads a request ID through the dispatch path so
// remote shard POSTs carry it.
func withRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDCtxKey{}, id)
}

func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDCtxKey{}).(string)
	return id
}

// Request-ID generation: a per-process random prefix plus an atomic
// counter — unique across a fleet without coordination, cheap, and easy
// to eyeball in two nodes' logs.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Entropy failure is not worth crashing a daemon over; fall
			// back to a fixed prefix (IDs stay unique per process).
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDCounter atomic.Uint64
)

func newRequestID() string {
	return fmt.Sprintf("%s-%06x", reqIDPrefix, reqIDCounter.Add(1))
}
