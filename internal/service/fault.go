package service

// Deterministic fault injection for the chaos suite (fault_test.go): the
// dispatch path is tested the way the paper tests schedulers — disturb
// it on a schedule and measure that the output does not change. Two
// injection points cover the failure surface:
//
//   - faultBackend wraps any Backend and injects backend-level faults:
//     connection refusal, a wedged peer that never answers (cut off by
//     ShardTimeout), and a mid-shard crash after k completed cells
//     (exercising partial-result banking).
//
//   - faultTransport wraps a remote backend's http.RoundTripper and
//     injects wire-level faults into real HTTP responses: a corrupted
//     result hash (tripping the remote backend's verification) and a
//     truncated body (tripping the JSON decoder).
//
// Both consume a script one entry per call — explicit, or derived from a
// seed via seededFaultScript — so every chaos run is reproducible. This
// lives outside _test.go so future tooling (an asymd chaos mode, fault
// benchmarks) can reuse it.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"dynasym/internal/scenario"
	"dynasym/internal/xrand"
)

// faultKind is one scripted disturbance.
type faultKind int

const (
	// faultNone passes the call through untouched.
	faultNone faultKind = iota
	// faultRefuse fails immediately, like a connection refused.
	faultRefuse
	// faultDelay never answers until the attempt context is cancelled —
	// a wedged-but-connected peer; only ShardTimeout unsticks it.
	faultDelay
	// faultCrash completes the first crashAfter cells, then dies
	// mid-shard, returning the partial results the way a killed worker's
	// delivered prefix would survive.
	faultCrash
	// faultCorrupt (faultTransport only) flips a result hash in the
	// response body, so the coordinator's verification must reject it.
	faultCorrupt
	// faultTruncate (faultTransport only) cuts the response body in
	// half, so decoding fails mid-document.
	faultTruncate
)

func (k faultKind) String() string {
	switch k {
	case faultNone:
		return "none"
	case faultRefuse:
		return "refuse"
	case faultDelay:
		return "delay"
	case faultCrash:
		return "crash"
	case faultCorrupt:
		return "corrupt"
	case faultTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("faultKind(%d)", int(k))
	}
}

// seededFaultScript draws a length-n schedule uniformly from kinds,
// deterministically from seed.
func seededFaultScript(seed uint64, n int, kinds ...faultKind) []faultKind {
	r := xrand.New(seed)
	s := make([]faultKind, n)
	for i := range s {
		s[i] = kinds[r.Intn(len(kinds))]
	}
	return s
}

// faultScript hands out one scripted fault per call, thread-safe. Past
// the script's end it returns faultNone, unless loop is set, in which
// case the script cycles forever.
type faultScript struct {
	mu     sync.Mutex
	script []faultKind
	pos    int
	loop   bool
}

func (f *faultScript) next() faultKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.script) == 0 {
		return faultNone
	}
	if f.pos >= len(f.script) {
		if !f.loop {
			return faultNone
		}
		f.pos = 0
	}
	k := f.script[f.pos]
	f.pos++
	return k
}

// faultBackend wraps inner and injects one scripted fault per Execute
// call. It is deliberately not a *localBackend, so the dispatcher treats
// it like a peer: breaker-tracked and bounded by ShardTimeout.
type faultBackend struct {
	name       string
	inner      Backend
	crashAfter int // cells completed before a faultCrash fires
	script     faultScript
	// injected counts the calls that actually faulted, so tests can
	// prove the chaos was not vacuous.
	injected atomic.Int64
}

func newFaultBackend(name string, inner Backend, crashAfter int, loop bool, script ...faultKind) *faultBackend {
	return &faultBackend{
		name:       name,
		inner:      inner,
		crashAfter: crashAfter,
		script:     faultScript{script: script, loop: loop},
	}
}

func (f *faultBackend) Name() string { return f.name }

func (f *faultBackend) Execute(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error) {
	switch k := f.script.next(); k {
	case faultRefuse:
		f.injected.Add(1)
		return nil, errors.New("injected fault: connection refused")
	case faultDelay:
		f.injected.Add(1)
		<-ctx.Done()
		return nil, fmt.Errorf("injected fault: peer wedged: %w", ctx.Err())
	case faultCrash:
		f.injected.Add(1)
		n := min(f.crashAfter, len(cells))
		out := make([]CellResult, len(cells))
		crs, err := f.inner.Execute(ctx, plan, cells[:n])
		if err == nil {
			copy(out, crs)
		}
		return out, fmt.Errorf("injected fault: crashed after %d of %d cells", n, len(cells))
	default:
		return f.inner.Execute(ctx, plan, cells)
	}
}

// faultTransport wraps an http.RoundTripper and injects wire-level
// faults into responses, one scripted entry per request. faultRefuse
// fails the round trip itself; faultCorrupt and faultTruncate mangle an
// otherwise-genuine response from the peer.
type faultTransport struct {
	base     http.RoundTripper
	script   faultScript
	injected atomic.Int64
}

func newFaultTransport(loop bool, script ...faultKind) *faultTransport {
	return &faultTransport{
		base:   http.DefaultTransport,
		script: faultScript{script: script, loop: loop},
	}
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	k := t.script.next()
	if k == faultRefuse {
		t.injected.Add(1)
		return nil, errors.New("injected fault: connection refused")
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || k == faultNone {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch k {
	case faultCorrupt:
		if mangled, ok := corruptFirstHash(body); ok {
			t.injected.Add(1)
			body = mangled
		}
	case faultTruncate:
		t.injected.Add(1)
		body = body[:len(body)/2]
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", fmt.Sprint(len(body)))
	return resp, nil
}

// corruptFirstHash flips one hex digit of the first "hash" value in a
// JSON document, reporting whether it found one to flip.
func corruptFirstHash(body []byte) ([]byte, bool) {
	marker := []byte(`"hash": "`)
	i := bytes.Index(body, marker)
	if i < 0 {
		return body, false
	}
	out := append([]byte(nil), body...)
	j := i + len(marker)
	if j >= len(out) {
		return body, false
	}
	if out[j] == '0' {
		out[j] = '1'
	} else {
		out[j] = '0'
	}
	return out, true
}
