package service

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dynasym/internal/core"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// overlapSpec returns tinySpec's shape with a configurable sweep axis.
func overlapSpec(seed uint64, points ...int) scenario.Spec {
	s := tinySpec(seed)
	s.Points = scenario.ParallelismPoints(points...)
	return s
}

// TestPartialOverlapReusesCells is the cell-cache acceptance test: after
// spec A runs, submitting A plus one extra sweep point must simulate only
// the new cells — and still merge to the exact fingerprint a from-scratch
// run produces.
func TestPartialOverlapReusesCells(t *testing.T) {
	m := NewManager(Config{Workers: 2, CacheSize: 8})
	a := overlapSpec(31, 2, 4)
	ja, _, err := m.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ja)
	cellsA := int64(len(a.Policies) * 2) // 2 policies × 2 points × 1 rep
	if got := m.CellRuns(); got != cellsA {
		t.Fatalf("cold run simulated %d cells, want %d", got, cellsA)
	}

	b := overlapSpec(31, 2, 4, 8)
	jb, existing, err := m.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("extended spec was absorbed by the old job despite a new point")
	}
	waitDone(t, jb)
	delta := int64(len(b.Policies)) // one new point × 2 policies
	if got := m.CellRuns(); got != cellsA+delta {
		t.Errorf("overlap resubmit brought cell runs to %d, want %d (only the delta simulates)", got, cellsA+delta)
	}
	st := jb.Snapshot()
	if st.CellHits != cellsA || st.CellMisses != delta {
		t.Errorf("job counted %d hits / %d misses, want %d / %d", st.CellHits, st.CellMisses, cellsA, delta)
	}

	// The assembled result must be bit-identical to a from-scratch run.
	_, fp, _, err := jb.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(overlapSpec(31, 2, 4, 8)); fp != direct.Fingerprint() {
		t.Error("cell-assembled fingerprint differs from a from-scratch run")
	}

	stats := m.Stats()
	if stats.CellHits != cellsA || stats.CellMisses != cellsA+delta {
		t.Errorf("stats count %d hits / %d misses, want %d / %d", stats.CellHits, stats.CellMisses, cellsA, cellsA+delta)
	}
}

// TestRemoteBackendFingerprint runs a job whose every shard executes on a
// peer node over POST /v1/shards, for every Table-1 policy at once, and
// requires the merged fingerprint to be bit-identical to a direct
// in-process run — metrics survive the wire exactly.
func TestRemoteBackendFingerprint(t *testing.T) {
	worker := NewManager(Config{Workers: 2})
	srv := httptest.NewServer(worker.Handler(slog.New(slog.NewTextHandler(io.Discard, nil))))
	defer srv.Close()

	coord := NewManager(Config{Workers: 2, ShardSize: 3})
	coord.setBackends(NewRemoteBackend(srv.URL, 0)) // no local fallback: every cell crosses the wire

	spec := scenario.Spec{
		Name: "remote-fingerprint",
		Workload: scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel: workloads.MatMul, Tasks: 400, Parallelism: 4,
		}},
		Disturb:  []scenario.Disturbance{{Kind: scenario.Burst, Cluster: 1, Share: 0.4, BusyDur: 0.1, IdleDur: 0.2}},
		Policies: core.All(),
		Points:   scenario.ParallelismPoints(2, 4),
		Reps:     2,
		Seed:     42,
	}
	j, _, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	_, fp, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if coord.CellRuns() != 0 {
		t.Errorf("coordinator simulated %d cells itself; all shards should have gone remote", coord.CellRuns())
	}
	if want := int64(len(core.All()) * 2 * 2); worker.CellRuns() != want {
		t.Errorf("worker simulated %d cells, want %d", worker.CellRuns(), want)
	}
	if direct := scenario.MustRun(spec); fp != direct.Fingerprint() {
		t.Error("remote-backend fingerprint differs from direct engine run")
	}

	// Resubmit under a different name: same cells, different job. The
	// coordinator's cell cache (fed by remote results) must serve all of it.
	spec2 := spec
	spec2.Name = "remote-fingerprint-rerun"
	runsBefore := worker.CellRuns()
	j2, _, err := coord.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if worker.CellRuns() != runsBefore {
		t.Error("renamed resubmit re-simulated cells despite a warm coordinator cell cache")
	}
	_, fp2, _, err := j2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if fp2 == fp {
		t.Error("renamed spec produced an identical fingerprint (name should differ)")
	}
}

// TestRemoteBackendIterStats sends a KMeans cell over the wire: its
// metrics carry per-iteration stats with integer-keyed place maps, the
// richest part of RunMetrics, and the fingerprint must still survive the
// JSON round trip bit-exactly.
func TestRemoteBackendIterStats(t *testing.T) {
	worker := NewManager(Config{Workers: 2})
	srv := httptest.NewServer(worker.Handler(slog.New(slog.NewTextHandler(io.Discard, nil))))
	defer srv.Close()
	coord := NewManager(Config{Workers: 1})
	coord.setBackends(NewRemoteBackend(srv.URL, 0))

	spec := scenario.Spec{
		Name: "remote-kmeans",
		Workload: scenario.WorkloadSpec{Kind: scenario.KMeans, KMeans: workloads.KMeansConfig{
			N: 4096, K: 4, Grains: 16, MaxIters: 3,
		}},
		Policies: []core.Policy{core.DAMP()},
		Seed:     9,
	}
	j, _, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	res, fp, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells[0][0].Run().Iters) == 0 {
		t.Fatal("kmeans run carried no iteration stats; serialization test is vacuous")
	}
	if direct := scenario.MustRun(spec); fp != direct.Fingerprint() {
		t.Error("remote kmeans fingerprint differs from direct engine run")
	}
}

// flakyBackend fails every Execute with a transport-style error.
type flakyBackend struct{ calls atomic.Int64 }

func (f *flakyBackend) Name() string { return "flaky" }
func (f *flakyBackend) Execute(context.Context, *scenario.Plan, []scenario.CellJob) ([]CellResult, error) {
	f.calls.Add(1)
	return nil, errors.New("connection refused")
}

// TestShardFailoverToAnotherBackend: a shard whose round-robin home
// backend fails must complete on another backend, invisibly to the caller.
func TestShardFailoverToAnotherBackend(t *testing.T) {
	m := NewManager(Config{Workers: 2, ShardSize: 1})
	flaky := &flakyBackend{}
	m.setBackends(flaky, m.local) // every even shard homes on the broken backend
	j, _, err := m.Submit(tinySpec(33))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("job finished %v (%v), want done despite the failing backend", j.State(), j.Snapshot().Error)
	}
	if flaky.calls.Load() == 0 {
		t.Error("failing backend was never tried; test is vacuous")
	}
	_, fp, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(tinySpec(33)); fp != direct.Fingerprint() {
		t.Error("failover changed the fingerprint")
	}
}

// stuckBackend accepts a shard and never returns until its context is
// canceled — a wedged-but-connected peer.
type stuckBackend struct{}

func (stuckBackend) Name() string { return "stuck" }
func (stuckBackend) Execute(ctx context.Context, _ *scenario.Plan, _ []scenario.CellJob) ([]CellResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestShardTimeoutFailover: a wedged non-local backend must be cut off by
// ShardTimeout and the shard completed elsewhere — without the timeout,
// the job (and its admission slot) would hang forever.
func TestShardTimeoutFailover(t *testing.T) {
	m := NewManager(Config{Workers: 2, ShardSize: 1, ShardTimeout: 50 * time.Millisecond})
	m.setBackends(stuckBackend{}, m.local)
	j, _, err := m.Submit(tinySpec(37))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("job finished %v (%v), want done via failover from the stuck backend", j.State(), j.Snapshot().Error)
	}
	_, fp, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(tinySpec(37)); fp != direct.Fingerprint() {
		t.Error("timeout failover changed the fingerprint")
	}
}

// TestAllBackendsFailing: when no backend can take a shard even after the
// whole retry budget, the job fails with an error naming the exhaustion.
func TestAllBackendsFailing(t *testing.T) {
	m := NewManager(Config{Workers: 1, RetryBackoff: -1})
	m.setBackends(&flakyBackend{})
	j, _, err := m.Submit(tinySpec(34))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateFailed {
		t.Fatalf("job finished %v, want failed", j.State())
	}
	if _, _, _, err := j.Result(); err == nil || !strings.Contains(err.Error(), "failed after 3 rounds over 1 backends") {
		t.Errorf("error %v does not name backend exhaustion", err)
	}
}

// TestConcurrentOverlapSharesInFlightCells: a job whose cells another
// running job is already simulating must subscribe to those cells, not
// re-simulate them — in-flight dedupe at cell granularity.
func TestConcurrentOverlapSharesInFlightCells(t *testing.T) {
	m := NewManager(Config{Workers: 4, ShardSize: 1})
	realRun := m.local.runCell
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	m.local.runCell = func(p *scenario.Plan, st *scenario.CellState, c scenario.CellJob) (scenario.RunMetrics, error) {
		started <- struct{}{}
		<-release
		return realRun(p, st, c)
	}

	a := overlapSpec(38, 2, 4) // 2 policies × 2 points = 4 cells
	ja, _, err := m.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	<-started // job A has claimed its cells and begun simulating

	b := overlapSpec(38, 2, 4, 8) // shares A's 4 cells, adds 2
	jb, _, err := m.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	// Give B time to probe and subscribe while A's cells are pending,
	// then let every simulation proceed.
	time.Sleep(50 * time.Millisecond)
	close(release)
	waitDone(t, ja)
	waitDone(t, jb)
	if ja.State() != StateDone || jb.State() != StateDone {
		t.Fatalf("jobs finished %v/%v: %v %v", ja.State(), jb.State(), ja.Snapshot().Error, jb.Snapshot().Error)
	}
	if got, want := m.CellRuns(), int64(6); got != want {
		t.Errorf("concurrent overlapping jobs simulated %d cells, want %d (4 shared + 2 delta)", got, want)
	}
	_, fp, _, err := jb.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(overlapSpec(38, 2, 4, 8)); fp != direct.Fingerprint() {
		t.Error("in-flight-shared cells produced a different fingerprint")
	}
}

// TestFailedJobBanksSucceededCells: a job that fails on one cell must
// still cache the cells that finished — the sibling work survives the
// failure and serves later jobs.
func TestFailedJobBanksSucceededCells(t *testing.T) {
	m := NewManager(Config{Workers: 2, ShardSize: 1})
	realRun := m.local.runCell
	// The P8 cells fail — but only after every good cell finished, so the
	// banked count below is deterministic despite dispatch canceling
	// outstanding shards on the first failure.
	var goodDone atomic.Int64
	m.local.runCell = func(p *scenario.Plan, st *scenario.CellState, c scenario.CellJob) (scenario.RunMetrics, error) {
		if p.Spec.Points[c.Point].Parallelism == 8 {
			for goodDone.Load() < 4 {
				time.Sleep(time.Millisecond)
			}
			return scenario.RunMetrics{}, errors.New("injected cell failure")
		}
		rm, err := realRun(p, st, c)
		goodDone.Add(1)
		return rm, err
	}
	j, _, err := m.Submit(overlapSpec(36, 2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateFailed {
		t.Fatalf("job finished %v, want failed", j.State())
	}
	m.local.runCell = realRun

	// The P2/P4 cells simulated before the failure must now be cache hits.
	j2, _, err := m.Submit(overlapSpec(36, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if j2.State() != StateDone {
		t.Fatalf("follow-up job finished %v: %v", j2.State(), j2.Snapshot().Error)
	}
	st := j2.Snapshot()
	if st.CellHits != 4 || st.CellMisses != 0 {
		t.Errorf("follow-up job had %d hits / %d misses, want 4 / 0 (failed job must bank finished cells)",
			st.CellHits, st.CellMisses)
	}
	_, fp, _, err := j2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(overlapSpec(36, 2, 4)); fp != direct.Fingerprint() {
		t.Error("banked cells produced a different fingerprint")
	}
}

// TestDuplicatePointsShareOneSimulation: two points with identical
// parameters under different labels are one cell hash — the grid fills
// both positions from a single simulation.
func TestDuplicatePointsShareOneSimulation(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	s := tinySpec(35)
	s.Points = []scenario.Point{
		{Label: "left", Parallelism: 4},
		{Label: "right", Parallelism: 4},
	}
	j, _, err := m.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if want := int64(len(s.Policies)); m.CellRuns() != want {
		t.Errorf("simulated %d cells for twin points, want %d", m.CellRuns(), want)
	}
	st := j.Snapshot()
	if st.CellsDone != st.CellsTotal || st.CellsTotal != int64(2*len(s.Policies)) {
		t.Errorf("progress %d/%d, want %d/%d", st.CellsDone, st.CellsTotal, 2*len(s.Policies), 2*len(s.Policies))
	}
	// Hits and misses partition the grid: a duplicate-hash cell must not
	// be counted as a miss at claim time AND a hit when it resolves.
	if st.CellHits+st.CellMisses != st.CellsTotal {
		t.Errorf("cell_hits %d + cell_misses %d != cells_total %d", st.CellHits, st.CellMisses, st.CellsTotal)
	}
	res, _, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	l, r := res.Cell(res.Policies[0], "left").Run(), res.Cell(res.Policies[0], "right").Run()
	if l.Throughput != r.Throughput || l.Makespan != r.Makespan {
		t.Error("twin points diverged")
	}
}

// TestWedgedHTTPPeerShardTimeout: a real HTTP peer that accepts the
// connection but never responds is the nastiest failure mode — no
// transport error ever arrives. ShardTimeout must cut the attempt off as
// a retryable failure and the shard must fail over to the local pool.
func TestWedgedHTTPPeerShardTimeout(t *testing.T) {
	unblock := make(chan struct{})
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // accept the shard, then never answer
		<-unblock
	}))
	defer wedged.Close()
	defer close(unblock) // runs before Close, releasing the held requests

	m := NewManager(Config{Workers: 2, ShardTimeout: 100 * time.Millisecond, RetryBackoff: -1})
	m.setBackends(NewRemoteBackend(wedged.URL, 0), m.local)
	start := time.Now()
	j, _, err := m.Submit(tinySpec(44))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("job finished %v (%s), want done via local failover", j.State(), j.Snapshot().Error)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("failover took %v; the wedged peer was not cut off by ShardTimeout", elapsed)
	}
	_, fp, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if direct := scenario.MustRun(tinySpec(44)); fp != direct.Fingerprint() {
		t.Error("failover fingerprint differs from direct run")
	}
	h := m.handles[0]
	h.mu.Lock()
	lastErr := h.lastErr
	h.mu.Unlock()
	if lastErr == nil || !errors.Is(lastErr, context.DeadlineExceeded) {
		t.Errorf("wedged peer recorded %v, want a context.DeadlineExceeded chain", lastErr)
	}
}
