package service

// Remote backend: farms cell shards to a peer asymd node over its
// internal POST /v1/shards API (served by Manager.Handler, see http.go).
//
// The wire format ships the plan's canonical spec JSON plus each cell's
// grid coordinates and expected hash. The worker re-plans the spec —
// re-deriving the same cells from the same canonical encoding — and
// verifies the hashes match before running anything, so a version-skewed
// peer refuses the shard instead of silently producing results under the
// wrong key. The check catches both encoding skew (the re-derived base
// differs) and engine skew (scenario.cellHashVersion, baked into every
// cell hash, must be bumped when engine behavior changes). Metrics cross
// the wire as plain JSON: Go encodes float64 with the shortest
// representation that round-trips exactly, so merged fingerprints stay
// bit-identical to an in-process run.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"dynasym/internal/scenario"
	"dynasym/internal/trace"
)

// shardRequest is the POST /v1/shards body.
type shardRequest struct {
	// Spec is the plan's canonical spec encoding.
	Spec json.RawMessage `json:"spec"`
	// Cells are the shard's cells by grid coordinates. Hash is the
	// coordinator's cell hash; the worker rejects the shard if its own
	// derivation disagrees.
	Cells []shardCell `json:"cells"`
}

type shardCell struct {
	Policy int    `json:"policy"`
	Point  int    `json:"point"`
	Rep    int    `json:"rep"`
	Hash   string `json:"hash"`
}

// shardResponse is the POST /v1/shards reply: one entry per requested
// cell, in request order. ElapsedMS and Spans let the coordinator graft
// the worker's timeline into the job trace: ElapsedMS is the worker's
// wall time for the shard, and each span's Start/End are offsets (ms)
// from the worker's request receipt. The coordinator re-bases them into
// the attempt window assuming symmetric wire time, so no cross-node
// clock agreement is needed.
type shardResponse struct {
	Results   []shardCellResult `json:"results"`
	ElapsedMS float64           `json:"elapsed_ms,omitempty"`
	Spans     []wireSpan        `json:"spans,omitempty"`
}

// wireSpan is a worker-side trace span in wire form. Lane "" is the
// shard itself; other lanes (worker pool slots) are nested under the
// coordinator's attempt lane by prefixing.
type wireSpan struct {
	Name    string  `json:"name"`
	Cat     string  `json:"cat,omitempty"`
	Lane    string  `json:"lane,omitempty"`
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`
}

type shardCellResult struct {
	Hash    string               `json:"hash"`
	Metrics *scenario.RunMetrics `json:"metrics,omitempty"`
	Error   string               `json:"error,omitempty"`
}

// maxShardBytes bounds a shard request or response document. Shards carry
// full metric sets (per-core busy times, histograms, per-iteration stats),
// so the bound is well above maxSpecBytes.
const maxShardBytes = 64 << 20

// remoteBackend executes shards on one peer asymd node.
type remoteBackend struct {
	url    string // peer base URL, no trailing slash
	client *http.Client
}

// NewRemoteBackend returns a Backend that runs shards on the asymd node at
// baseURL (e.g. "http://10.0.0.7:8080"). Simulations can be long, so the
// client has no overall timeout — the dispatcher bounds each attempt with
// Config.ShardTimeout via the request context — but connecting gets its
// own short timeout (Config.DialTimeout; 0 picks the 10s default, < 0
// disables) so an unroutable peer fails over fast.
func NewRemoteBackend(baseURL string, dialTimeout time.Duration) Backend {
	return newRemoteBackend(baseURL, dialTimeout, nil)
}

// newRemoteBackend additionally accepts a transport override, which the
// chaos suite uses to inject wire-level faults (fault.go) between a real
// coordinator and a real worker.
func newRemoteBackend(baseURL string, dialTimeout time.Duration, rt http.RoundTripper) Backend {
	if dialTimeout == 0 {
		dialTimeout = 10 * time.Second
	} else if dialTimeout < 0 {
		dialTimeout = 0 // net.Dialer: no timeout
	}
	if rt == nil {
		rt = &http.Transport{
			DialContext: (&net.Dialer{Timeout: dialTimeout}).DialContext,
		}
	}
	return &remoteBackend{
		url:    strings.TrimRight(baseURL, "/"),
		client: &http.Client{Transport: rt},
	}
}

func (r *remoteBackend) Name() string { return "peer " + r.url }

// graftSpans merges the worker's shard timeline into the coordinator's
// job trace. The attempt window [t0, t1] minus the worker's own elapsed
// time is wire time, split symmetrically: the worker's offsets re-base
// at t0 + oneWay. Worker lane "" lands on the attempt lane itself; pool
// lanes ("w0", "w1", ...) nest under it by prefixing, so each worker
// slot renders as its own Perfetto track. The residual wire time gets
// explicit "wire" slices bracketing the worker span.
func (r *remoteBackend) graftSpans(jt *jobTrace, lane string, t0, t1 time.Duration, sr *shardResponse) {
	if jt == nil || sr.ElapsedMS <= 0 {
		return
	}
	elapsed := time.Duration(sr.ElapsedMS * float64(time.Millisecond))
	oneWay := (t1 - t0 - elapsed) / 2
	if oneWay < 0 {
		oneWay, elapsed = 0, t1-t0
	}
	base := t0 + oneWay
	if oneWay > 0 {
		jt.span(trace.Span{Name: "wire", Cat: "wire", Lane: lane, Start: t0, End: base})
		jt.span(trace.Span{Name: "wire", Cat: "wire", Lane: lane, Start: base + elapsed, End: t1})
	}
	for _, ws := range sr.Spans {
		l := lane
		if ws.Lane != "" {
			l = lane + " " + ws.Lane
		}
		start := base + time.Duration(ws.StartMS*float64(time.Millisecond))
		end := base + time.Duration(ws.EndMS*float64(time.Millisecond))
		if end > t1 {
			end = t1
		}
		if start > end {
			start = end
		}
		jt.span(trace.Span{Name: ws.Name, Cat: ws.Cat, Lane: l, Start: start, End: end})
	}
}

func (r *remoteBackend) Execute(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob) ([]CellResult, error) {
	// The plan carries its canonical encoding; re-marshaling here would
	// re-encode the full spec (graph included, for dagfile workloads)
	// once per shard attempt.
	req := shardRequest{Spec: plan.Canonical, Cells: make([]shardCell, len(cells))}
	for i, c := range cells {
		req.Cells[i] = shardCell{Policy: c.Policy, Point: c.Point, Rep: c.Rep, Hash: c.Hash}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encode shard: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := requestIDFrom(ctx); id != "" {
		hreq.Header.Set("X-Request-ID", id)
	}
	jt := jobTraceFrom(ctx)
	t0 := jt.at()
	resp, err := r.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("post shard: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("shard rejected: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var sr shardResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxShardBytes)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decode shard response: %w", err)
	}
	r.graftSpans(jt, traceLaneFrom(ctx), t0, jt.at(), &sr)
	if len(sr.Results) != len(cells) {
		return nil, fmt.Errorf("shard response has %d results for %d cells", len(sr.Results), len(cells))
	}
	out := make([]CellResult, len(cells))
	for i, cr := range sr.Results {
		if cr.Hash != cells[i].Hash {
			return nil, fmt.Errorf("shard result %d carries hash %.12s, want %.12s", i, cr.Hash, cells[i].Hash)
		}
		out[i] = CellResult{Hash: cr.Hash}
		switch {
		case cr.Error != "":
			out[i].Err = errors.New(cr.Error)
		case cr.Metrics == nil:
			return nil, fmt.Errorf("shard result %d has neither metrics nor error", i)
		default:
			out[i].Metrics = *cr.Metrics
		}
	}
	return out, nil
}
