// Package service turns the scenario engine into a long-lived,
// cache-backed job service: submit a scenario.Spec (or a registered
// family at a scale), get back a job keyed by the spec's canonical hash,
// poll it, and fetch the memoized result.
//
// The manager deduplicates by construction: a job's identity IS its spec
// hash, so N concurrent submissions of the same spec share one queued
// job — and therefore exactly one engine run (singleflight without a
// second index). Finished jobs move into a bounded LRU; resubmitting a
// cached spec returns the done job immediately without re-simulating.
// The scenario engine is deterministic (same spec → bit-identical
// fingerprint), which is what makes memoization sound.
//
// cmd/asymd wraps Manager.Handler in an HTTP daemon; see http.go for the
// wire API.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynasym/internal/scenario"
)

// State is a job's lifecycle position.
type State int32

const (
	// StateQueued: accepted, waiting for a worker slot.
	StateQueued State = iota
	// StateRunning: a worker is executing the scenario grid.
	StateRunning
	// StateDone: finished successfully; result and fingerprint are set.
	StateDone
	// StateFailed: the engine returned an error (kept, like successes, so
	// identical bad specs fail fast from cache).
	StateFailed
)

// String names the state for the wire API.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Job is one submitted spec moving through the lifecycle. Fields written
// after creation are guarded by the manager lock or atomics; read them
// through Snapshot, Result or Wait.
type Job struct {
	// Hash is the spec's canonical hash — the job ID and cache key.
	Hash string
	// Spec is the parsed, submitted spec (without execution-only fields).
	Spec scenario.Spec

	state   atomic.Int32
	done    chan struct{} // closed on completion
	created time.Time

	cellsDone  atomic.Int64
	cellsTotal atomic.Int64
	// hits counts submissions served by this job after its first (in
	// flight or from cache) — the dedupe/cache-hit counter.
	hits atomic.Int64

	// Written once before close(done), read after.
	result            *scenario.Result
	fperr             error
	fprint            string
	elapsed           time.Duration
	started, finished time.Time
}

// State returns the current lifecycle state.
func (j *Job) State() State { return State(j.state.Load()) }

// Done returns a channel closed when the job reaches done or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes or the context is cancelled.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Result returns the result, fingerprint and run duration of a completed
// job; it errors if the job failed or has not finished.
func (j *Job) Result() (*scenario.Result, string, time.Duration, error) {
	select {
	case <-j.done:
	default:
		return nil, "", 0, fmt.Errorf("service: job %s is %s", j.Hash, j.State())
	}
	if j.fperr != nil {
		return nil, "", 0, j.fperr
	}
	return j.result, j.fprint, j.elapsed, nil
}

// Hits reports how many submissions this job absorbed beyond the first.
func (j *Job) Hits() int64 { return j.hits.Load() }

// Status is an exported snapshot of a job for the wire API.
type Status struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	CellsDone  int64   `json:"cells_done"`
	CellsTotal int64   `json:"cells_total"`
	CacheHits  int64   `json:"cache_hits"`
	Error      string  `json:"error,omitempty"`
	CreatedAt  string  `json:"created_at"`
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
	ResultURL  string  `json:"result_url,omitempty"`
}

// Snapshot captures the job's current status.
func (j *Job) Snapshot() Status {
	st := Status{
		ID:         j.Hash,
		State:      j.State().String(),
		CellsDone:  j.cellsDone.Load(),
		CellsTotal: j.cellsTotal.Load(),
		CacheHits:  j.hits.Load(),
		CreatedAt:  j.created.UTC().Format(time.RFC3339Nano),
	}
	switch j.State() {
	case StateDone:
		st.ElapsedSec = j.elapsed.Seconds()
		st.ResultURL = "/v1/results/" + j.Hash
	case StateFailed:
		st.Error = j.fperr.Error()
	}
	return st
}

// Config sizes a Manager.
type Config struct {
	// Workers bounds concurrent engine runs (default GOMAXPROCS).
	Workers int
	// CacheSize bounds the finished-job LRU (default 128 entries).
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	return c
}

// Manager owns the job table, the worker pool and the result cache.
type Manager struct {
	cfg Config
	sem chan struct{} // worker slots

	mu       sync.Mutex
	inflight map[string]*Job // queued/running, by hash
	cache    *lru            // done/failed, by hash
	closed   bool

	wg   sync.WaitGroup // running job goroutines
	runs atomic.Int64   // engine runs actually executed

	// runFn is the engine entry point; tests substitute it to count runs
	// or inject failures without simulating.
	runFn func(scenario.Spec) (*scenario.Result, error)
}

// NewManager builds a Manager.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		inflight: make(map[string]*Job),
		cache:    newLRU(cfg.CacheSize),
		runFn:    scenario.Run,
	}
}

// Submit registers a spec for execution and returns its job. existing
// reports whether the submission was absorbed by an in-flight or cached
// job (no new engine run). The spec is validated and hashed up front, so
// a bad spec errors here, synchronously.
func (m *Manager) Submit(spec scenario.Spec) (job *Job, existing bool, err error) {
	// Strip execution-only fields: the service owns pool sizing and
	// observation, and the hash ignores them anyway.
	spec.Workers = 0
	spec.Trace = nil
	spec.Progress = nil
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, false, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, fmt.Errorf("service: manager is shut down")
	}
	if j, ok := m.inflight[hash]; ok {
		j.hits.Add(1)
		return j, true, nil
	}
	if j, ok := m.cache.Get(hash); ok {
		j.hits.Add(1)
		return j, true, nil
	}

	j := &Job{
		Hash:    hash,
		Spec:    spec,
		done:    make(chan struct{}),
		created: time.Now(),
	}
	m.inflight[hash] = j
	m.wg.Add(1)
	go m.execute(j)
	return j, false, nil
}

// SubmitFamily resolves a registered scenario family at a scale (seed
// optionally overriding the family default) and submits it.
func (m *Manager) SubmitFamily(name string, scale float64, seed *uint64) (*Job, bool, error) {
	f, ok := scenario.Lookup(name)
	if !ok {
		return nil, false, fmt.Errorf("service: unknown scenario family %q (known: %v)", name, scenario.Names())
	}
	spec := f.Spec(scale)
	if seed != nil {
		spec.Seed = *seed
	}
	return m.Submit(spec)
}

// execute runs one job on a worker slot.
func (m *Manager) execute(j *Job) {
	defer m.wg.Done()
	m.sem <- struct{}{}
	defer func() { <-m.sem }()

	j.state.Store(int32(StateRunning))
	j.started = time.Now()
	spec := j.Spec
	spec.Progress = func(done, total int) {
		j.cellsDone.Store(int64(done))
		j.cellsTotal.Store(int64(total))
	}
	res, err := m.runFn(spec)
	m.runs.Add(1)
	j.finished = time.Now()
	j.elapsed = j.finished.Sub(j.started)
	if err != nil {
		j.fperr = err
		j.state.Store(int32(StateFailed))
	} else {
		j.result = res
		j.fprint = res.Fingerprint()
		j.state.Store(int32(StateDone))
	}

	m.mu.Lock()
	delete(m.inflight, j.Hash)
	m.cache.Add(j.Hash, j)
	m.mu.Unlock()
	close(j.done)
}

// Job looks a job up by hash, in flight or cached.
func (m *Manager) Job(hash string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[hash]; ok {
		return j, true
	}
	return m.cache.Get(hash)
}

// EngineRuns reports how many engine runs the manager has executed —
// submissions minus dedupe and cache hits.
func (m *Manager) EngineRuns() int64 { return m.runs.Load() }

// Stats summarizes the manager for the health endpoint.
type Stats struct {
	Workers    int   `json:"workers"`
	CacheSize  int   `json:"cache_size"`
	Cached     int   `json:"cached"`
	Inflight   int   `json:"inflight"`
	EngineRuns int64 `json:"engine_runs"`
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Workers:    m.cfg.Workers,
		CacheSize:  m.cfg.CacheSize,
		Cached:     m.cache.Len(),
		Inflight:   len(m.inflight),
		EngineRuns: m.runs.Load(),
	}
}

// Shutdown stops accepting submissions and waits for in-flight jobs to
// finish, or for the context to expire.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
}
