// Package service turns the scenario engine into a long-lived,
// cache-backed job service: submit a scenario.Spec (or a registered
// family at a scale), get back a job keyed by the spec's canonical hash,
// poll it, and fetch the memoized result.
//
// The manager deduplicates by construction: a job's identity IS its spec
// hash, so N concurrent submissions of the same spec share one queued
// job — and therefore exactly one engine run (singleflight without a
// second index). Finished jobs move into a bounded LRU; resubmitting a
// cached spec returns the done job immediately without re-simulating.
// The scenario engine is deterministic (same spec → bit-identical
// fingerprint), which is what makes memoization sound.
//
// Execution is cell-sharded: a job's spec is planned into (policy × point
// × repetition) cell jobs (scenario.NewPlan), each carrying a canonical
// cell hash. Cells already in the cell-granular LRU are served from cache;
// the misses are batched into shards and dispatched across the configured
// backends (the in-process pool, plus one remote backend per -peers
// entry), with failed shards retried on another backend. Because cell
// hashes ignore the spec's grid axes, two overlapping specs — a sweep and
// the same sweep with one extra point — share cells, and a resubmission
// with a small delta simulates only the delta.
//
// cmd/asymd wraps Manager.Handler in an HTTP daemon; see http.go for the
// wire API (including the worker-facing POST /v1/shards).
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynasym/internal/obs"
	"dynasym/internal/scenario"
	"dynasym/internal/trace"
	"dynasym/internal/xrand"
)

// State is a job's lifecycle position.
type State int32

const (
	// StateQueued: accepted, waiting for a worker slot.
	StateQueued State = iota
	// StateRunning: a worker is executing the scenario grid.
	StateRunning
	// StateDone: finished successfully; result and fingerprint are set.
	StateDone
	// StateFailed: the engine returned an error (kept, like successes, so
	// identical bad specs fail fast from cache).
	StateFailed
)

// String names the state for the wire API.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Job is one submitted spec moving through the lifecycle. Fields written
// after creation are guarded by the manager lock or atomics; read them
// through Snapshot, Result or Wait.
type Job struct {
	// Hash is the spec's canonical hash — the job ID and cache key.
	Hash string
	// Spec is the parsed, submitted spec (without execution-only fields).
	Spec scenario.Spec

	state   atomic.Int32
	done    chan struct{} // closed on completion
	created time.Time

	// reqID is the propagated request ID of the submission that created
	// the job (X-Request-ID; generated when absent). Immutable.
	reqID string
	// spans holds the job's service-level trace while it is in flight;
	// on completion the manager moves it into the trace-retention LRU
	// and clears this pointer. traced records that tracing was on.
	spans  atomic.Pointer[trace.SpanSet]
	traced bool

	cellsDone  atomic.Int64
	cellsTotal atomic.Int64
	// cellHits and cellMisses count this job's grid cells served from the
	// cell cache vs actually dispatched to a backend.
	cellHits   atomic.Int64
	cellMisses atomic.Int64
	// hits counts submissions served by this job after its first (in
	// flight or from cache) — the dedupe/cache-hit counter.
	hits atomic.Int64

	// Written once before close(done), read after.
	result            *scenario.Result
	fperr             error
	fprint            string
	elapsed           time.Duration
	started, finished time.Time
}

// State returns the current lifecycle state.
func (j *Job) State() State { return State(j.state.Load()) }

// Done returns a channel closed when the job reaches done or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes or the context is cancelled.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Result returns the result, fingerprint and run duration of a completed
// job; it errors if the job failed or has not finished.
func (j *Job) Result() (*scenario.Result, string, time.Duration, error) {
	select {
	case <-j.done:
	default:
		return nil, "", 0, fmt.Errorf("service: job %s is %s", j.Hash, j.State())
	}
	if j.fperr != nil {
		return nil, "", 0, j.fperr
	}
	return j.result, j.fprint, j.elapsed, nil
}

// Hits reports how many submissions this job absorbed beyond the first.
func (j *Job) Hits() int64 { return j.hits.Load() }

// Status is an exported snapshot of a job for the wire API.
type Status struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	CellsDone  int64   `json:"cells_done"`
	CellsTotal int64   `json:"cells_total"`
	CellHits   int64   `json:"cell_hits"`
	CellMisses int64   `json:"cell_misses"`
	CacheHits  int64   `json:"cache_hits"`
	Error      string  `json:"error,omitempty"`
	CreatedAt  string  `json:"created_at"`
	RequestID  string  `json:"request_id,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
	ResultURL  string  `json:"result_url,omitempty"`
	TraceURL   string  `json:"trace_url,omitempty"`
}

// Snapshot captures the job's current status.
func (j *Job) Snapshot() Status {
	st := Status{
		ID:         j.Hash,
		State:      j.State().String(),
		CellsDone:  j.cellsDone.Load(),
		CellsTotal: j.cellsTotal.Load(),
		CellHits:   j.cellHits.Load(),
		CellMisses: j.cellMisses.Load(),
		CacheHits:  j.hits.Load(),
		CreatedAt:  j.created.UTC().Format(time.RFC3339Nano),
		RequestID:  j.reqID,
	}
	if j.traced {
		st.TraceURL = "/v1/jobs/" + j.Hash + "/trace"
	}
	switch j.State() {
	case StateDone:
		st.ElapsedSec = j.elapsed.Seconds()
		st.ResultURL = "/v1/results/" + j.Hash
	case StateFailed:
		st.Error = j.fperr.Error()
	}
	return st
}

// Config sizes a Manager.
type Config struct {
	// Workers bounds concurrent cell simulations on the local backend
	// (default GOMAXPROCS).
	Workers int
	// CacheSize bounds the finished-job LRU (default 128 entries).
	CacheSize int
	// CellCacheSize bounds the cell-result LRU (default 4096 cells).
	CellCacheSize int
	// ShardSize bounds the cells per dispatched shard (default 16).
	ShardSize int
	// Peers lists base URLs of other asymd nodes to farm shards to
	// (cmd/asymd -peers). Each peer becomes a remote backend; the local
	// pool always remains the first backend.
	Peers []string
	// ShardTimeout bounds one remote shard attempt (default 10 minutes;
	// < 0 disables). Without it a wedged-but-connected peer would hang a
	// shard forever and failover could never trigger. It applies only to
	// non-local backends: the in-process pool cannot wedge, and long
	// paper-scale cells must not be killed mid-simulation.
	ShardTimeout time.Duration
	// DialTimeout bounds connecting to a peer (default 10 seconds;
	// < 0 disables). Kept separate from ShardTimeout so an unroutable
	// peer fails over fast while long simulations still get their full
	// attempt budget.
	DialTimeout time.Duration
	// ShardRetries is a shard's retry budget: the number of rounds over
	// the available backends before the shard — and with it the job —
	// fails (default 3; 1 restores the old single-pass behavior). With
	// more than one round, a transient blip on every peer no longer
	// permanently fails a job that a later pass could finish.
	ShardRetries int
	// RetryBackoff is the pause before the second round of a shard's
	// retry budget (default 100ms; < 0 disables). It doubles each round
	// and is jittered by ±50% so concurrent shards don't retry in
	// lockstep.
	RetryBackoff time.Duration
	// FailThreshold trips a peer's circuit breaker after this many
	// consecutive transport failures (default 3). See health.go.
	FailThreshold int
	// ProbeBackoff is how long a freshly tripped peer stays down before
	// one probe attempt is admitted (default 1s). Each failed probe
	// doubles it, up to ProbeMaxBackoff (default 1 minute); both are
	// jittered by ±50%.
	ProbeBackoff    time.Duration
	ProbeMaxBackoff time.Duration
	// TraceRetention bounds how many finished jobs keep their
	// service-level span timeline for GET /v1/jobs/{id}/trace
	// (default 64; < 0 disables job tracing entirely).
	TraceRetention int
	// DisableMetrics unmounts GET /metrics. Collection itself always
	// runs — it is atomic updates, too cheap to gate.
	DisableMetrics bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.CellCacheSize <= 0 {
		c.CellCacheSize = 4096
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 16
	}
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 10 * time.Minute
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.ShardRetries <= 0 {
		c.ShardRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeBackoff <= 0 {
		c.ProbeBackoff = time.Second
	}
	if c.ProbeMaxBackoff <= 0 {
		c.ProbeMaxBackoff = time.Minute
	}
	if c.TraceRetention == 0 {
		c.TraceRetention = 64
	}
	return c
}

// Manager owns the job table, the backends and the result caches.
type Manager struct {
	cfg Config
	sem chan struct{} // job admission slots (Workers); holds jobs in queued

	// local is the in-process backend; handles wraps it first, then one
	// remote backend per configured peer, each in a health-tracked
	// circuit breaker (health.go). Shards round-robin over the
	// admissible handles and fail over to the others.
	local   *localBackend
	handles []*backendHandle

	// now, sleep and rng are the fault-tolerance layer's time and
	// randomness sources, injectable so tests drive probe scheduling
	// with a fake clock and a fixed jitter stream.
	now   func() time.Time
	sleep func(context.Context, time.Duration) error
	rngMu sync.Mutex
	rng   *xrand.RNG

	// reg and mx are the node's metric registry (served at /metrics)
	// and the pre-registered service metric set.
	reg *obs.Registry
	mx  *serviceMetrics

	mu       sync.Mutex
	inflight map[string]*Job                // queued/running, by spec hash
	cache    *lruCache[*Job]                // done/failed jobs, by spec hash
	cells    *lruCache[scenario.RunMetrics] // finished cells, by cell hash
	pending  map[string]*pendingCell        // cells being simulated, by cell hash
	plans    *lruCache[*scenario.Plan]      // memoized plans, by spec hash (shard API)
	traces   *lruCache[*trace.SpanSet]      // finished job traces, by spec hash (nil = tracing off)
	// simtraces caches rendered per-cell sim-time Chrome traces by cell
	// hash. Gated with traces: a deployment that disables trace retention
	// disables sim tracing too.
	simtraces *lruCache[[]byte]
	closed    bool

	wg   sync.WaitGroup // running job goroutines
	runs atomic.Int64   // jobs actually executed (not absorbed)

	cellHits   atomic.Int64 // cells served from the cell cache
	cellMisses atomic.Int64 // cells dispatched to a backend
}

// NewManager builds a Manager.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	local := newLocalBackend(cfg.Workers)
	reg := obs.NewRegistry()
	mx := newServiceMetrics(reg)
	m := &Manager{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		local:    local,
		reg:      reg,
		mx:       mx,
		now:      time.Now,
		sleep:    sleepCtx,
		rng:      xrand.New(0x4ea1),
		inflight: make(map[string]*Job),
		cache:    newLRUCache[*Job](cfg.CacheSize),
		cells:    newLRUCache[scenario.RunMetrics](cfg.CellCacheSize),
		pending:  make(map[string]*pendingCell),
		plans:    newLRUCache[*scenario.Plan](planCacheSize),
	}
	if cfg.TraceRetention > 0 {
		m.traces = newLRUCache[*trace.SpanSet](cfg.TraceRetention)
		m.simtraces = newLRUCache[[]byte](cfg.TraceRetention)
	}
	mx.poolWorkers.Set(int64(cfg.Workers))
	local.busy = mx.poolBusy
	local.runs = mx.cellRuns
	local.runSec = mx.cellRunSec
	backends := []Backend{local}
	for _, peer := range cfg.Peers {
		backends = append(backends, NewRemoteBackend(peer, cfg.DialTimeout))
	}
	m.setBackends(backends...)
	return m
}

// sleepCtx is the default Manager.sleep: a context-respecting pause.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit registers a spec for execution and returns its job. existing
// reports whether the submission was absorbed by an in-flight or cached
// job (no new engine run). The spec is validated and hashed up front, so
// a bad spec errors here, synchronously.
func (m *Manager) Submit(spec scenario.Spec) (job *Job, existing bool, err error) {
	return m.submit(spec, "")
}

// submit is Submit with the originating request ID attached (HTTP path);
// the ID rides the job into worker shard requests and log lines.
func (m *Manager) submit(spec scenario.Spec, reqID string) (job *Job, existing bool, err error) {
	// Strip execution-only fields: the service owns pool sizing and
	// observation, and the hash ignores them anyway. Probe is stripped
	// too — per-cell sim traces are served on demand by re-execution
	// (SimTrace), not by probing every banked cell.
	spec.Workers = 0
	spec.Trace = nil
	spec.Probe = false
	spec.Progress = nil
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, false, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, fmt.Errorf("service: manager is shut down")
	}
	m.mx.jobsSubmitted.Inc()
	if j, ok := m.inflight[hash]; ok {
		j.hits.Add(1)
		m.mx.jobsAbsorbed.Inc()
		return j, true, nil
	}
	if j, ok := m.cache.Get(hash); ok {
		j.hits.Add(1)
		m.mx.jobsAbsorbed.Inc()
		return j, true, nil
	}

	j := &Job{
		Hash:    hash,
		Spec:    spec,
		done:    make(chan struct{}),
		created: m.now(),
		reqID:   reqID,
		traced:  m.traces != nil,
	}
	if j.traced {
		j.spans.Store(trace.NewSpanSet(maxSpansPerJob))
	}
	m.inflight[hash] = j
	m.mx.jobsQueued.Inc()
	m.wg.Add(1)
	go m.execute(j)
	return j, false, nil
}

// SubmitFamily resolves a registered scenario family at a scale (seed
// optionally overriding the family default) and submits it.
func (m *Manager) SubmitFamily(name string, scale float64, seed *uint64) (*Job, bool, error) {
	return m.submitFamily(name, scale, seed, "")
}

func (m *Manager) submitFamily(name string, scale float64, seed *uint64, reqID string) (*Job, bool, error) {
	f, ok := scenario.Lookup(name)
	if !ok {
		return nil, false, fmt.Errorf("service: unknown scenario family %q (known: %v)", name, scenario.Names())
	}
	spec := f.Spec(scale)
	if seed != nil {
		spec.Seed = *seed
	}
	return m.submit(spec, reqID)
}

// execute runs one job: plan, serve cells from cache, dispatch the
// misses, merge. The admission semaphore bounds concurrently executing
// jobs to Workers — excess submissions wait here, observably queued.
func (m *Manager) execute(j *Job) {
	defer m.wg.Done()
	m.sem <- struct{}{}
	defer func() { <-m.sem }()

	j.state.Store(int32(StateRunning))
	j.started = m.now()
	m.mx.jobsQueued.Dec()
	m.mx.jobsRunning.Inc()
	m.mx.jobQueueSec.Observe(j.started.Sub(j.created).Seconds())

	// Thread the job's tracer and request ID through the dispatch path:
	// backends record spans and remote shard POSTs carry the ID.
	var jt *jobTrace
	ctx := withRequestID(context.Background(), j.reqID)
	if spans := j.spans.Load(); spans != nil {
		jt = newJobTrace(j.created, m.now, spans)
		jt.span(trace.Span{Name: "queued", Cat: "job", Lane: "job",
			Start: 0, End: jt.at()})
		ctx = withJobTrace(ctx, jt)
	}

	res, err := m.runJob(ctx, j)
	m.runs.Add(1)
	j.finished = m.now()
	j.elapsed = j.finished.Sub(j.started)
	m.mx.jobsRunning.Dec()
	m.mx.jobRunSec.Observe(j.elapsed.Seconds())
	if err != nil {
		j.fperr = err
		j.state.Store(int32(StateFailed))
		m.mx.jobsFailed.Inc()
	} else {
		j.result = res
		j.fprint = res.Fingerprint()
		j.state.Store(int32(StateDone))
		m.mx.jobsDone.Inc()
	}

	m.mu.Lock()
	delete(m.inflight, j.Hash)
	m.mx.jobEvict.Add(int64(m.cache.Add(j.Hash, j)))
	if spans := j.spans.Load(); spans != nil && m.traces != nil {
		// The finished trace moves into the retention LRU; the job keeps
		// only the traced flag. Drops are surfaced as a counter so a
		// truncated timeline is visible in /metrics, not just puzzling.
		m.traces.Add(j.Hash, spans)
		m.mx.traceSpansDropped.Add(spans.Dropped())
		j.spans.Store(nil)
	}
	m.mu.Unlock()
	close(j.done)
}

// JobTrace returns a job's service-level span timeline: the live set for
// an in-flight job, the retained one for a finished job.
func (m *Manager) JobTrace(hash string) (*trace.SpanSet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[hash]; ok {
		if spans := j.spans.Load(); spans != nil {
			return spans, true
		}
	}
	if m.traces == nil {
		return nil, false
	}
	return m.traces.Get(hash)
}

// ErrUnknownJob reports a job ID the manager does not know (evicted or
// never submitted); the HTTP layer maps it to 404.
var ErrUnknownJob = errors.New("unknown job (evicted or never submitted)")

// ErrSimTraceDisabled reports that trace retention — and with it sim
// tracing — is disabled on this node.
var ErrSimTraceDisabled = errors.New("sim tracing disabled (trace retention < 0)")

// SimTrace renders the sim-time schedule trace of one cell of a job as
// Chrome-trace JSON: task slices plus queue-depth, ready-task, PTT-error
// and per-core-utilization counter lanes. The cell is re-executed locally
// with a private recorder and probe — cells are pure functions of the
// plan and the cell coordinates, so the rendered schedule is exactly the
// one behind the cell's canonical result even when the result itself was
// computed on a remote shard or served from cache. Rendered bytes are
// cached by cell hash.
func (m *Manager) SimTrace(id string, cell int) ([]byte, error) {
	if m.simtraces == nil {
		return nil, ErrSimTraceDisabled
	}
	j, ok := m.Job(id)
	if !ok {
		return nil, ErrUnknownJob
	}
	plan, err := m.planFor(j.Hash, j.Spec)
	if err != nil {
		return nil, err
	}
	if cell < 0 || cell >= len(plan.Cells) {
		return nil, fmt.Errorf("cell %d outside the %d-cell grid", cell, len(plan.Cells))
	}
	c := plan.Cells[cell]
	m.mu.Lock()
	b, ok := m.simtraces.Get(c.Hash)
	m.mu.Unlock()
	if ok {
		return b, nil
	}
	rm, rec, err := plan.RunCellTrace(c)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		return nil, err
	}
	b = buf.Bytes()
	m.mu.Lock()
	m.simtraces.Add(c.Hash, b)
	m.mu.Unlock()
	m.mx.simtraceRenders.Inc()
	_ = rm // the render is the product; the metrics were already banked
	return b, nil
}

// Registry exposes the node's metric registry (the /metrics content);
// callers may register their own series alongside the service's.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// pendingCell is one cell currently being simulated by some job. Other
// jobs needing the same cell subscribe to done instead of re-simulating;
// rm/ok are written before done closes. ok=false means the owner
// abandoned the cell (its dispatch failed or was canceled) — subscribers
// fall back to dispatching it themselves.
type pendingCell struct {
	owner *Job
	done  chan struct{}
	rm    scenario.RunMetrics
	ok    bool
}

// planCacheSize bounds the memoized-plan LRU used by the shard API: a
// worker re-planning a 10k-cell grid per 16-cell shard request would
// hash the whole grid hundreds of times per job.
const planCacheSize = 64

// runJob assembles one job's result from cached cells, cells another job
// is already simulating (in-flight dedupe), and freshly dispatched cells.
func (m *Manager) runJob(ctx context.Context, j *Job) (*scenario.Result, error) {
	jt := jobTraceFrom(ctx)
	planT0 := jt.at()
	plan, err := m.planFor(j.Hash, j.Spec)
	if err != nil {
		return nil, err
	}
	jt.span(trace.Span{Name: "plan", Cat: "job", Lane: "job", Start: planT0, End: jt.at()})
	j.cellsTotal.Store(int64(len(plan.Cells)))

	// Dedupe the grid by cell hash (points with identical parameters under
	// different labels share one simulation). mult counts grid positions
	// per unique hash, so progress advances over plan cells, not unique
	// cells.
	mult := make(map[string]int64, len(plan.Cells))
	byHash := make(map[string]scenario.CellJob, len(plan.Cells))
	for _, c := range plan.Cells {
		mult[c.Hash]++
		byHash[c.Hash] = c
	}

	// One pass under the lock: serve the cell cache, subscribe to cells
	// some other job is already simulating, claim the rest.
	results := make(map[string]scenario.RunMetrics, len(mult))
	waits := make(map[string]*pendingCell)
	claimedSet := make(map[string]bool)
	var claimed []scenario.CellJob
	m.mu.Lock()
	for _, c := range plan.Cells {
		if _, dup := results[c.Hash]; dup {
			continue
		}
		if _, dup := waits[c.Hash]; dup {
			continue
		}
		// Skip hashes this job already claimed: without this, the second
		// occurrence of a duplicate-hash cell would find our own fresh
		// pending entry and self-subscribe, double-counting the cell as
		// both a miss and a hit.
		if claimedSet[c.Hash] {
			continue
		}
		if rm, ok := m.cells.Get(c.Hash); ok {
			results[c.Hash] = rm
			continue
		}
		if p, ok := m.pending[c.Hash]; ok {
			waits[c.Hash] = p
			continue
		}
		claimed = append(claimed, c)
		claimedSet[c.Hash] = true
		m.pending[c.Hash] = &pendingCell{owner: j, done: make(chan struct{})}
	}
	m.mu.Unlock()

	// Whatever happens below, claimed cells this job never resolved
	// (dispatch error, per-cell failure, early cancel) must be released
	// so subscribers fall back instead of waiting forever.
	defer func() {
		m.mu.Lock()
		var abandoned []*pendingCell
		for _, c := range claimed {
			if p, ok := m.pending[c.Hash]; ok && p.owner == j {
				delete(m.pending, c.Hash)
				abandoned = append(abandoned, p)
			}
		}
		m.mu.Unlock()
		for _, p := range abandoned {
			close(p.done)
		}
	}()

	hits := int64(0)
	for h := range results {
		hits += mult[h]
	}
	misses := int64(0)
	for _, c := range claimed {
		misses += mult[c.Hash]
	}
	m.cellHits.Add(hits)
	m.cellMisses.Add(misses)
	m.mx.cellHits.Add(hits)
	m.mx.cellMisses.Add(misses)
	j.cellHits.Store(hits)
	j.cellMisses.Store(misses)
	j.cellsDone.Store(hits)
	onDone := func(c scenario.CellJob) { j.cellsDone.Add(mult[c.Hash]) }

	// Dispatch own claims first — subscribers may be waiting on them;
	// bankCells resolves each pending as its shard lands.
	if len(claimed) > 0 {
		dispT0 := jt.at()
		fresh, err := m.dispatch(ctx, plan, claimed, onDone)
		jt.span(trace.Span{Name: "dispatch", Cat: "job", Lane: "job",
			Start: dispT0, End: jt.at(),
			Args: map[string]string{"cells": fmt.Sprint(len(claimed))}})
		if err != nil {
			return nil, err
		}
		for h, rm := range fresh {
			results[h] = rm
		}
	}

	// Collect subscribed cells. A cell whose owner abandoned it falls
	// back to a second dispatch by this job (duplicating work only in
	// that failure path).
	var fallback []scenario.CellJob
	if len(waits) > 0 {
		waitT0 := jt.at()
		for h, p := range waits {
			<-p.done
			if p.ok {
				results[h] = p.rm
				m.cellHits.Add(mult[h])
				m.mx.cellHits.Add(mult[h])
				j.cellHits.Add(mult[h])
				onDone(byHash[h])
			} else {
				fallback = append(fallback, byHash[h])
			}
		}
		jt.span(trace.Span{Name: "await-shared-cells", Cat: "job", Lane: "job",
			Start: waitT0, End: jt.at(),
			Args: map[string]string{"cells": fmt.Sprint(len(waits))}})
	}
	if len(fallback) > 0 {
		for _, c := range fallback {
			m.cellMisses.Add(mult[c.Hash])
			m.mx.cellMisses.Add(mult[c.Hash])
			j.cellMisses.Add(mult[c.Hash])
		}
		dispT0 := jt.at()
		fresh, err := m.dispatch(ctx, plan, fallback, onDone)
		jt.span(trace.Span{Name: "dispatch-fallback", Cat: "job", Lane: "job",
			Start: dispT0, End: jt.at()})
		if err != nil {
			return nil, err
		}
		for h, rm := range fresh {
			results[h] = rm
		}
	}

	mergeT0 := jt.at()
	res, err := scenario.Merge(plan, results)
	if err != nil {
		return nil, err
	}
	jt.span(trace.Span{Name: "merge", Cat: "merge", Lane: "job", Start: mergeT0, End: jt.at()})
	j.cellsDone.Store(int64(len(plan.Cells)))
	return res, nil
}

// dispatch batches cells into shards and runs them concurrently
// (round-robin over the backends, failing over to the others), calling
// onDone per completed cell. Successful cells enter the cell cache as
// their shard lands — not when the whole dispatch finishes — so a job
// that later fails still banks its finished cells, and a concurrent
// overlapping job starts hitting them as early as possible. A
// deterministic per-cell engine error fails the whole dispatch, like a
// failed cell fails a monolithic Run — and cancels the remaining shards:
// a doomed job must not keep simulating its grid.
func (m *Manager) dispatch(ctx context.Context, plan *scenario.Plan, cells []scenario.CellJob, onDone func(scenario.CellJob)) (map[string]scenario.RunMetrics, error) {
	var shards [][]scenario.CellJob
	for i := 0; i < len(cells); i += m.cfg.ShardSize {
		shards = append(shards, cells[i:min(i+m.cfg.ShardSize, len(cells))])
	}
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Bound in-flight shards: enough to keep every backend's pool full
	// (Workers/ShardSize shards saturate the local pool; assume peers are
	// comparably sized), without a goroutine per shard of a huge grid.
	inflight := len(m.handles) * max(1, (m.cfg.Workers+m.cfg.ShardSize-1)/m.cfg.ShardSize)
	gate := make(chan struct{}, inflight)
	out := make(map[string]scenario.RunMetrics, len(cells))
	var (
		outMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	for si, shard := range shards {
		outMu.Lock()
		stop := firstErr != nil
		outMu.Unlock()
		if stop {
			break
		}
		gate <- struct{}{}
		wg.Add(1)
		go func(si int, shard []scenario.CellJob) {
			defer wg.Done()
			defer func() { <-gate }()
			crs, err := m.runShard(dctx, si, plan, shard)
			if err == nil {
				m.bankCells(crs)
			}
			outMu.Lock()
			defer outMu.Unlock()
			if err != nil {
				fail(err)
				return
			}
			for i, cr := range crs {
				if cr.Err != nil {
					fail(fmt.Errorf("scenario %q: %s: %w", plan.Spec.Name, plan.CellLabel(shard[i]), cr.Err))
					continue
				}
				out[cr.Hash] = cr.Metrics
				onDone(shard[i])
			}
		}(si, shard)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// planFor returns a memoized plan for the spec. A grid is hashed once per
// spec, not once per shard request: without this, a worker serving a
// 10k-cell grid in 16-cell shards would re-derive all 10k cell hashes
// hundreds of times. Plans are immutable after construction, so sharing
// one across concurrent shard requests is safe (RunCell already runs
// concurrently against a single plan).
func (m *Manager) planFor(hash string, spec scenario.Spec) (*scenario.Plan, error) {
	m.mu.Lock()
	plan, ok := m.plans.Get(hash)
	m.mu.Unlock()
	if ok {
		return plan, nil
	}
	plan, err := scenario.NewPlan(spec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.plans.Add(hash, plan)
	m.mu.Unlock()
	return plan, nil
}

// probeCells is the read side of the cell-cache protocol, shared by the
// job path (runJob) and the worker shard path (handleShards): it returns
// the cached metrics by hash and the distinct not-yet-cached cells in
// input order. Duplicate hashes in the input collapse to one entry.
func (m *Manager) probeCells(cells []scenario.CellJob) (cached map[string]scenario.RunMetrics, missing []scenario.CellJob) {
	cached = make(map[string]scenario.RunMetrics, len(cells))
	seen := make(map[string]bool, len(cells))
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range cells {
		if seen[c.Hash] {
			continue
		}
		seen[c.Hash] = true
		if rm, ok := m.cells.Get(c.Hash); ok {
			cached[c.Hash] = rm
		} else {
			missing = append(missing, c)
		}
	}
	return cached, missing
}

// bankCells is the write side of the cell-cache protocol: successful
// results enter the cache, and any job subscribed to the cell is resolved
// immediately — waiters unblock as shards land, not when the owning job
// finishes. Failed cells enter neither.
func (m *Manager) bankCells(crs []CellResult) {
	m.mu.Lock()
	var resolved []*pendingCell
	var fresh []scenario.RunMetrics
	evicted := int64(0)
	for _, cr := range crs {
		if cr.Err != nil {
			continue
		}
		// A cell entering the cache for the first time reports its
		// simulated scheduler activity (observed below, outside the lock);
		// re-banking the same cell — a retried shard re-landing its
		// partials — must not double-count.
		if _, seen := m.cells.Peek(cr.Hash); !seen {
			fresh = append(fresh, cr.Metrics)
		}
		evicted += int64(m.cells.Add(cr.Hash, cr.Metrics))
		if p, ok := m.pending[cr.Hash]; ok {
			p.rm, p.ok = cr.Metrics, true
			delete(m.pending, cr.Hash)
			resolved = append(resolved, p)
		}
	}
	m.mu.Unlock()
	m.mx.cellEvict.Add(evicted)
	for _, p := range resolved {
		close(p.done)
	}
	// Sim-level telemetry: every banked cell counts, whether it ran on the
	// local pool or landed from a remote shard.
	for _, rm := range fresh {
		m.mx.observeSim(rm)
	}
}

// runShard runs one shard to completion across the fleet: up to
// Config.ShardRetries rounds over the backends, each round starting at
// the shard's round-robin home, with exponential jittered backoff
// between rounds. Peers whose circuit breaker is open are skipped
// (health.go); the local pool is always admissible, so a fleet whose
// every remote peer is down degrades to local execution instead of
// failing the job. Remote attempts run under ShardTimeout so a wedged
// peer surfaces as a retryable error instead of hanging the job. A
// failed attempt may still have completed some cells (a cancelled pool
// or a crashed peer returns partial results); those are banked into the
// cell cache immediately and only the remainder is retried, so completed
// simulation work survives the failover. Attempt errors accumulate via
// errors.Join: an exhausted shard reports every cause, not just the last.
func (m *Manager) runShard(ctx context.Context, si int, plan *scenario.Plan, shard []scenario.CellJob) ([]CellResult, error) {
	n := len(m.handles)
	jt := jobTraceFrom(ctx)
	done := make(map[string]CellResult, len(shard))
	remaining := shard
	var attemptErrs []error
	for round := 0; round < m.cfg.ShardRetries && len(remaining) > 0; round++ {
		if round > 0 {
			m.mx.shardRetryRounds.Inc()
			if m.cfg.RetryBackoff > 0 {
				if err := m.sleep(ctx, m.jitterDur(m.cfg.RetryBackoff<<(round-1))); err != nil {
					return nil, err
				}
			}
		}
		for attempt := 0; attempt < n && len(remaining) > 0; attempt++ {
			h := m.handles[(si+attempt)%n]
			if !m.admit(h) {
				continue
			}
			actx, cancel := ctx, context.CancelFunc(func() {})
			if _, isLocal := h.Backend.(*localBackend); !isLocal && m.cfg.ShardTimeout > 0 {
				actx, cancel = context.WithTimeout(ctx, m.cfg.ShardTimeout)
			}
			// The attempt gets a leased display lane on the backend's
			// track group; nested spans (local cell runs, the worker's
			// own timeline) attach under it via the context.
			lane, releaseLane := jt.lane(h.Name())
			actx = withTraceLane(actx, lane)
			attemptT0 := jt.at()
			attemptStart := m.now()
			crs, err := h.Execute(actx, plan, remaining)
			rtt := m.now().Sub(attemptStart)
			cancel()
			if err == nil && len(crs) != len(remaining) {
				err = fmt.Errorf("returned %d results for %d cells", len(crs), len(remaining))
				crs = nil
			}
			if jt != nil {
				outcome := "ok"
				if err != nil {
					outcome = "error: " + err.Error()
				}
				jt.span(trace.Span{
					Name: fmt.Sprintf("shard %d", si), Cat: "dispatch", Lane: lane,
					Start: attemptT0, End: jt.at(),
					Args: map[string]string{
						"backend": h.Name(),
						"round":   fmt.Sprint(round),
						"cells":   fmt.Sprint(len(remaining)),
						"outcome": outcome,
					},
				})
			}
			releaseLane()
			if err == nil {
				m.report(h, nil)
				h.rttSec.Observe(rtt.Seconds())
				for _, cr := range crs {
					done[cr.Hash] = cr
				}
				remaining = nil
				break
			}
			if ctx.Err() != nil {
				// The dispatch itself was cancelled — bank whatever cells
				// completed before the teardown (finished simulation work
				// must survive even a failing job), then abort without
				// blaming the peer.
				var partial []CellResult
				for _, cr := range crs {
					if cr.Hash != "" {
						partial = append(partial, cr)
					}
				}
				if len(partial) > 0 {
					m.bankCells(partial)
				}
				return nil, ctx.Err()
			}
			m.report(h, err)
			h.failures.Inc()
			m.mx.shardFailovers.Inc()
			attemptErrs = append(attemptErrs, fmt.Errorf("backend %s: %w", h.Name(), err))
			var partial []CellResult
			for _, cr := range crs {
				if cr.Hash != "" {
					partial = append(partial, cr)
					done[cr.Hash] = cr
				}
			}
			if len(partial) > 0 {
				m.bankCells(partial)
				rest := make([]scenario.CellJob, 0, len(remaining)-len(partial))
				for _, c := range remaining {
					if _, ok := done[c.Hash]; !ok {
						rest = append(rest, c)
					}
				}
				remaining = rest
			}
		}
	}
	if len(remaining) > 0 {
		joined := errors.Join(attemptErrs...)
		if joined == nil {
			joined = errors.New("every backend's circuit breaker is open")
		}
		return nil, fmt.Errorf("shard of %d cells failed after %d rounds over %d backends: %w",
			len(shard), m.cfg.ShardRetries, n, joined)
	}
	out := make([]CellResult, len(shard))
	for i, c := range shard {
		out[i] = done[c.Hash]
	}
	return out, nil
}

// Job looks a job up by hash, in flight or cached.
func (m *Manager) Job(hash string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[hash]; ok {
		return j, true
	}
	return m.cache.Get(hash)
}

// EngineRuns reports how many jobs the manager has executed —
// submissions minus dedupe and cache hits.
func (m *Manager) EngineRuns() int64 { return m.runs.Load() }

// CellRuns reports how many cells the local backend has simulated (for
// its own jobs and for shards served to peers).
func (m *Manager) CellRuns() int64 { return m.local.cellRuns.Load() }

// Jobs snapshots every known job — in flight first (newest submission
// first), then finished ones from most to least recently used — for the
// GET /v1/jobs listing.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	inflight := make([]*Job, 0, len(m.inflight))
	for _, j := range m.inflight {
		inflight = append(inflight, j)
	}
	cached := make([]*Job, 0, m.cache.Len())
	for _, h := range m.cache.Keys() {
		if j, ok := m.cache.Peek(h); ok {
			cached = append(cached, j)
		}
	}
	m.mu.Unlock()
	sort.Slice(inflight, func(a, b int) bool {
		if !inflight[a].created.Equal(inflight[b].created) {
			return inflight[a].created.After(inflight[b].created)
		}
		return inflight[a].Hash < inflight[b].Hash
	})
	out := make([]Status, 0, len(inflight)+len(cached))
	for _, j := range inflight {
		out = append(out, j.Snapshot())
	}
	for _, j := range cached {
		out = append(out, j.Snapshot())
	}
	return out
}

// Stats summarizes the manager for the health endpoint.
type Stats struct {
	Workers       int      `json:"workers"`
	CacheSize     int      `json:"cache_size"`
	Cached        int      `json:"cached"`
	Inflight      int      `json:"inflight"`
	EngineRuns    int64    `json:"engine_runs"`
	CellCacheSize int      `json:"cell_cache_size"`
	CellsCached   int      `json:"cells_cached"`
	CellHits      int64    `json:"cell_hits"`
	CellMisses    int64    `json:"cell_misses"`
	CellRuns      int64    `json:"cell_runs"`
	Backends      []string `json:"backends"`
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	backends := make([]string, len(m.handles))
	for i, h := range m.handles {
		backends[i] = h.Name()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Workers:       m.cfg.Workers,
		CacheSize:     m.cfg.CacheSize,
		Cached:        m.cache.Len(),
		Inflight:      len(m.inflight),
		EngineRuns:    m.runs.Load(),
		CellCacheSize: m.cfg.CellCacheSize,
		CellsCached:   m.cells.Len(),
		CellHits:      m.cellHits.Load(),
		CellMisses:    m.cellMisses.Load(),
		CellRuns:      m.local.cellRuns.Load(),
		Backends:      backends,
	}
}

// Shutdown stops accepting submissions and waits for in-flight jobs to
// finish, or for the context to expire.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
}
