package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrape fetches GET /metrics and returns the exposition body.
func scrape(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts one series' sample from an exposition body;
// series is the full name including any label set.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad sample %q: %v", series, rest, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, body)
	return 0
}

// TestMetricsExposition runs one job end to end and checks the request
// path showed up in /metrics: lifecycle counters, cache traffic, pool
// sizing and the latency histograms.
func TestMetricsExposition(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 2, CacheSize: 8})
	j, _, err := m.Submit(tinySpec(71))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	// Resubmit: an absorbed submission must move the absorbed counter.
	if _, existing, err := m.Submit(tinySpec(71)); err != nil || !existing {
		t.Fatalf("resubmit: existing=%v err=%v", existing, err)
	}

	body := scrape(t, srv.URL)
	for series, want := range map[string]float64{
		"asymd_jobs_submitted_total": 2,
		"asymd_jobs_absorbed_total":  1,
		"asymd_jobs_done_total":      1,
		"asymd_jobs_failed_total":    0,
		"asymd_jobs_queued":          0,
		"asymd_jobs_running":         0,
		"asymd_pool_workers":         2,
		"asymd_pool_busy_workers":    0,
	} {
		if got := metricValue(t, body, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if runs := metricValue(t, body, "asymd_cell_runs_total"); runs <= 0 {
		t.Errorf("asymd_cell_runs_total = %v, want > 0", runs)
	}
	if misses := metricValue(t, body, "asymd_cell_cache_misses_total"); misses <= 0 {
		t.Errorf("asymd_cell_cache_misses_total = %v, want > 0", misses)
	}
	// Histogram plumbing: the job-run histogram saw exactly one job, the
	// +Inf bucket agrees, and the sum is positive.
	if n := metricValue(t, body, "asymd_job_run_seconds_count"); n != 1 {
		t.Errorf("asymd_job_run_seconds_count = %v, want 1", n)
	}
	if n := metricValue(t, body, `asymd_job_run_seconds_bucket{le="+Inf"}`); n != 1 {
		t.Errorf(`asymd_job_run_seconds +Inf bucket = %v, want 1`, n)
	}
	if s := metricValue(t, body, "asymd_job_run_seconds_sum"); s <= 0 {
		t.Errorf("asymd_job_run_seconds_sum = %v, want > 0", s)
	}
}

// TestMetricsDisabled checks Config.DisableMetrics removes the route.
func TestMetricsDisabled(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, DisableMetrics: true})
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with metrics disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsScrapesRaceJobs hammers /metrics from several goroutines
// while jobs execute and a flaky peer trips its breaker — the race
// detector owns the assertions; the final scrape sanity-checks totals.
func TestMetricsScrapesRaceJobs(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 2, CacheSize: 8, FailThreshold: 1, RetryBackoff: -1})
	flaky := &flakyBackend{}
	m.setBackends(flaky, m.local)

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	const jobs = 4
	var wg sync.WaitGroup
	for seed := uint64(0); seed < jobs; seed++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			j, _, err := m.Submit(tinySpec(800 + seed))
			if err != nil {
				t.Error(err)
				return
			}
			waitDone(t, j)
		}(seed)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	if t.Failed() {
		t.FailNow()
	}

	body := scrape(t, srv.URL)
	if done := metricValue(t, body, "asymd_jobs_done_total"); done != jobs {
		t.Errorf("asymd_jobs_done_total = %v, want %d", done, jobs)
	}
	// The flaky peer failed every attempt it was handed, so failovers and
	// per-peer failures moved, and its breaker opened at least once.
	if fo := metricValue(t, body, "asymd_shard_failovers_total"); fo <= 0 {
		t.Errorf("asymd_shard_failovers_total = %v, want > 0", fo)
	}
	if pf := metricValue(t, body, `asymd_peer_failures_total{peer="flaky"}`); pf <= 0 {
		t.Errorf("peer failures = %v, want > 0", pf)
	}
	if tr := metricValue(t, body, `asymd_breaker_transitions_total{peer="flaky",to="down"}`); tr <= 0 {
		t.Errorf("transitions to down = %v, want > 0", tr)
	}
}

// TestBreakerStateGauge drives a peer down and back up with the breaker
// state machine and checks the gauge tracks it.
func TestBreakerStateGauge(t *testing.T) {
	m := NewManager(Config{Workers: 1, FailThreshold: 2})
	m.setBackends(&flakyBackend{}, m.local)
	var h *backendHandle
	for _, cand := range m.handles {
		if cand.breaker {
			h = cand
		}
	}
	if h == nil {
		t.Fatal("no breaker-tracked handle")
	}
	gauge := func() float64 {
		var buf bytes.Buffer
		m.Registry().WritePrometheus(&buf)
		return metricValue(t, buf.String(), `asymd_breaker_state{peer="flaky"}`)
	}

	if got := gauge(); got != float64(peerHealthy) {
		t.Fatalf("initial breaker gauge = %v, want %d", got, peerHealthy)
	}
	m.report(h, fmt.Errorf("boom"))
	m.report(h, fmt.Errorf("boom"))
	if got := gauge(); got != float64(peerDown) {
		t.Fatalf("breaker gauge after trip = %v, want %d", got, peerDown)
	}
	m.report(h, nil)
	if got := gauge(); got != float64(peerHealthy) {
		t.Fatalf("breaker gauge after recovery = %v, want %d", got, peerHealthy)
	}
	var buf bytes.Buffer
	m.Registry().WritePrometheus(&buf)
	if tr := metricValue(t, buf.String(), `asymd_breaker_transitions_total{peer="flaky",to="healthy"}`); tr != 1 {
		t.Errorf("transitions to healthy = %v, want 1", tr)
	}
}

// chromeEvt mirrors one Chrome trace-event for assertions; the export
// is a top-level JSON array of these.
type chromeEvt struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestTraceEndpoint runs a job whose every cell crosses the wire to a
// worker node and checks GET /v1/jobs/{id}/trace exports a merged
// coordinator+worker timeline: job phases, shard dispatch slices, and
// the worker's simulate slices grafted into the attempt window.
func TestTraceEndpoint(t *testing.T) {
	_, wsrv := newTestServer(t, Config{Workers: 2})
	coord, csrv := newTestServer(t, Config{Workers: 2, ShardSize: 2})
	coord.setBackends(NewRemoteBackend(wsrv.URL, 0)) // no local pool: all cells remote

	j, _, err := coord.submit(tinySpec(31), "trace-req-7")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	st := j.Snapshot()
	if st.RequestID != "trace-req-7" {
		t.Errorf("snapshot request_id = %q, want trace-req-7", st.RequestID)
	}
	wantURL := "/v1/jobs/" + j.Hash + "/trace"
	if st.TraceURL != wantURL {
		t.Fatalf("snapshot trace_url = %q, want %q", st.TraceURL, wantURL)
	}

	resp, err := http.Get(csrv.URL + st.TraceURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	var events []chromeEvt
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var lanes, queued, shardSlices, simulate, merge int
	for _, ev := range events {
		switch {
		case ev.Ph == "M":
			lanes++
			continue
		case ev.Ph != "X":
			t.Errorf("unexpected event phase %q", ev.Ph)
			continue
		case ev.Dur < 0:
			t.Errorf("event %q has negative duration %v", ev.Name, ev.Dur)
		}
		switch {
		case ev.Name == "queued":
			queued++
		case ev.Cat == "dispatch" && strings.HasPrefix(ev.Name, "shard "):
			shardSlices++
			if ev.Args["backend"] == nil {
				t.Errorf("shard slice %q missing backend arg", ev.Name)
			}
		case ev.Cat == "simulate":
			simulate++
		case ev.Name == "merge":
			merge++
		}
	}
	if lanes == 0 {
		t.Error("trace has no thread_name lane metadata")
	}
	if queued != 1 || merge != 1 {
		t.Errorf("trace has %d queued and %d merge slices, want 1 each", queued, merge)
	}
	// tinySpec has 4 cells at ShardSize 2 → at least 2 shard attempts,
	// each answered by the worker with simulate spans to graft.
	if shardSlices < 2 {
		t.Errorf("trace has %d shard slices, want >= 2", shardSlices)
	}
	if simulate == 0 {
		t.Error("trace has no worker simulate slices (grafting failed)")
	}
}

// TestTraceDisabled checks TraceRetention < 0 turns tracing off: no
// trace URL in snapshots and 404 from the endpoint.
func TestTraceDisabled(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 1, TraceRetention: -1})
	j, _, err := m.Submit(tinySpec(32))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if url := j.Snapshot().TraceURL; url != "" {
		t.Errorf("snapshot advertises trace_url %q with tracing disabled", url)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + j.Hash + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET trace with tracing disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestRequestIDPropagation submits over HTTP with an explicit
// X-Request-ID and checks it is echoed in the response header and
// status body, and rides the job's shard POSTs to the worker.
func TestRequestIDPropagation(t *testing.T) {
	worker := NewManager(Config{Workers: 1})
	wh := worker.Handler(slog.New(slog.NewTextHandler(io.Discard, nil)))
	var mu sync.Mutex
	var seen []string
	wsrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shards" {
			mu.Lock()
			seen = append(seen, r.Header.Get("X-Request-ID"))
			mu.Unlock()
		}
		wh.ServeHTTP(w, r)
	}))
	defer wsrv.Close()

	coord, csrv := newTestServer(t, Config{Workers: 1, ShardSize: 2})
	coord.setBackends(NewRemoteBackend(wsrv.URL, 0))

	sj, err := tinySpec(33).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, csrv.URL+"/v1/jobs", strings.NewReader(fmt.Sprintf(`{"spec": %s}`, sj)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "corr-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "corr-42" {
		t.Errorf("response X-Request-ID = %q, want corr-42", got)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.RequestID != "corr-42" {
		t.Errorf("status request_id = %q, want corr-42", st.RequestID)
	}

	pollDone(t, csrv.URL, st.ID)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("worker served no shards")
	}
	for _, id := range seen {
		if id != "corr-42" {
			t.Errorf("worker saw X-Request-ID %q, want corr-42", id)
		}
	}
}

// TestRequestIDMinted checks a submission without an X-Request-ID gets
// one minted and returned.
func TestRequestIDMinted(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	st, code := postJob(t, srv.URL, `{"family": "burst-sweep", "scale": 0.001}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	if st.RequestID == "" {
		t.Error("minted request_id missing from status")
	}
	pollDone(t, srv.URL, st.ID)
}

// TestStatusWriterFlusher checks the logging wrapper passes Flush
// through (and exposes Unwrap for http.ResponseController) instead of
// silently swallowing streaming.
func TestStatusWriterFlusher(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	var w http.ResponseWriter = sw
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if err := http.NewResponseController(sw).Flush(); err != nil {
		t.Errorf("ResponseController.Flush: %v", err)
	}
	if sw.Unwrap() != http.ResponseWriter(rec) {
		t.Error("Unwrap does not return the wrapped writer")
	}
	// A non-flushing underlying writer must not panic.
	(&statusWriter{ResponseWriter: nonFlusher{}}).Flush()
}

type nonFlusher struct{ http.ResponseWriter }

func (nonFlusher) Header() http.Header         { return http.Header{} }
func (nonFlusher) Write(p []byte) (int, error) { return len(p), nil }
func (nonFlusher) WriteHeader(int)             {}

// TestPprofGate checks the profiler mounts only when asked for.
func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof: status %d, want 404", resp.StatusCode)
	}
	_, on := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d, want 200", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(b, []byte("goroutine")) {
		t.Error("pprof index does not list profiles")
	}
}

// TestTraceRetentionEvicts checks finished traces fall out of the
// retention LRU oldest-first.
func TestTraceRetentionEvicts(t *testing.T) {
	m := NewManager(Config{Workers: 1, TraceRetention: 1})
	j1, _, err := m.Submit(tinySpec(41))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	if _, ok := m.JobTrace(j1.Hash); !ok {
		t.Fatal("finished job's trace not retained")
	}
	j2, _, err := m.Submit(tinySpec(42))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if _, ok := m.JobTrace(j1.Hash); ok {
		t.Error("oldest trace survived past retention capacity")
	}
	if _, ok := m.JobTrace(j2.Hash); !ok {
		t.Error("newest trace missing from retention")
	}
}
