package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dynasym/internal/core"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// tinySpec is a fast, deterministic spec; vary seed to vary the hash.
func tinySpec(seed uint64) scenario.Spec {
	return scenario.Spec{
		Name: "service-tiny",
		Workload: scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel: workloads.MatMul, Tasks: 200, Parallelism: 4,
		}},
		Policies: []core.Policy{core.RWS(), core.DAMC()},
		Points:   scenario.ParallelismPoints(2, 4),
		Seed:     seed,
	}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v", j.Hash, err)
	}
}

// TestSingleflightDedupe submits the same spec from N concurrent
// goroutines and checks they all share one job, one engine run, and one
// fingerprint.
func TestSingleflightDedupe(t *testing.T) {
	m := NewManager(Config{Workers: 2, CacheSize: 8})
	const n = 16
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, _, err := m.Submit(tinySpec(1))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < n; i++ {
		if jobs[i] != jobs[0] {
			t.Fatalf("submission %d got a different job (%s vs %s)", i, jobs[i].Hash, jobs[0].Hash)
		}
	}
	waitDone(t, jobs[0])
	if got := m.EngineRuns(); got != 1 {
		t.Errorf("engine ran %d times for %d identical submissions, want 1", got, n)
	}
	if got := jobs[0].Hits(); got != n-1 {
		t.Errorf("job absorbed %d extra submissions, want %d", got, n-1)
	}
	_, fp, _, err := jobs[0].Result()
	if err != nil {
		t.Fatal(err)
	}
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	// Every caller sees the same (only) fingerprint by sharing the job;
	// check it matches a direct engine run of the same spec.
	direct := scenario.MustRun(tinySpec(1))
	if fp != direct.Fingerprint() {
		t.Errorf("service fingerprint differs from direct engine run")
	}
}

// TestCacheHitSkipsRun checks a second submission of a finished spec is
// served from cache without re-simulation.
func TestCacheHitSkipsRun(t *testing.T) {
	m := NewManager(Config{Workers: 1, CacheSize: 8})
	j1, existing, err := m.Submit(tinySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("first submission reported existing")
	}
	waitDone(t, j1)
	j2, existing, err := m.Submit(tinySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if !existing {
		t.Error("second submission was not served from cache")
	}
	if j2 != j1 {
		t.Error("cache returned a different job")
	}
	if got := m.EngineRuns(); got != 1 {
		t.Errorf("engine ran %d times, want 1", got)
	}
}

// TestLRUEvictionOrder drives the lru directly: least-recently-used falls
// out first, and Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache[*Job](2)
	mk := func(h string) *Job { return &Job{Hash: h} }
	c.Add("a", mk("a"))
	c.Add("b", mk("b"))
	if _, ok := c.Get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.Add("c", mk("c")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU order a,c after refreshing a")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted despite being refreshed")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if got, want := fmt.Sprint(c.Keys()), "[c a]"; got != want {
		t.Errorf("recency order %s, want %s", got, want)
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
	// Peek must not refresh recency: peek a (the LRU), add d, a falls out.
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("Peek(a) missed")
	}
	c.Add("d", mk("d"))
	if _, ok := c.Get("a"); ok {
		t.Error("a survived eviction after only a Peek; Peek must not promote")
	}
}

// TestManagerEviction checks evicted results disappear from lookups and a
// resubmission re-runs.
func TestManagerEviction(t *testing.T) {
	m := NewManager(Config{Workers: 1, CacheSize: 2})
	var hashes []string
	for seed := uint64(10); seed < 13; seed++ {
		j, _, err := m.Submit(tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		hashes = append(hashes, j.Hash)
	}
	if _, ok := m.Job(hashes[0]); ok {
		t.Error("oldest job survived a capacity-2 cache after 3 inserts")
	}
	for _, h := range hashes[1:] {
		if _, ok := m.Job(h); !ok {
			t.Errorf("job %s missing from cache", h)
		}
	}
	// Resubmitting the evicted spec must re-run, not error.
	j, existing, err := m.Submit(tinySpec(10))
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Error("evicted spec reported as cached")
	}
	waitDone(t, j)
	if got := m.EngineRuns(); got != 4 {
		t.Errorf("engine ran %d times, want 4 (3 cold + 1 after eviction)", got)
	}
}

// TestFailedJobLifecycle injects an engine failure and checks the state,
// the error surface, and that identical resubmissions fail from cache.
func TestFailedJobLifecycle(t *testing.T) {
	m := NewManager(Config{Workers: 1, CacheSize: 2})
	boom := errors.New("engine exploded")
	m.local.runCell = func(*scenario.Plan, *scenario.CellState, scenario.CellJob) (scenario.RunMetrics, error) {
		return scenario.RunMetrics{}, boom
	}
	j, _, err := m.Submit(tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateFailed {
		t.Fatalf("state %v, want failed", j.State())
	}
	if _, _, _, err := j.Result(); !errors.Is(err, boom) {
		t.Errorf("Result error = %v, want the engine error", err)
	}
	j2, existing, err := m.Submit(tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if !existing || j2 != j {
		t.Error("failed job was not served from cache")
	}
	if got := m.EngineRuns(); got != 1 {
		t.Errorf("engine ran %d times, want 1", got)
	}
}

// TestSubmitValidates checks bad specs are rejected synchronously.
func TestSubmitValidates(t *testing.T) {
	m := NewManager(Config{})
	s := tinySpec(4)
	s.Policies = nil
	if _, _, err := m.Submit(s); err == nil {
		t.Error("empty policy set accepted")
	}
	if _, _, err := m.SubmitFamily("no-such-family", 1, nil); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestShutdown drains in-flight jobs and rejects later submissions.
func TestShutdown(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	j, _, err := m.Submit(tinySpec(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	default:
		t.Error("shutdown returned before the in-flight job finished")
	}
	if _, _, err := m.Submit(tinySpec(6)); err == nil {
		t.Error("submission accepted after shutdown")
	}
}

// TestJobProgressCounters checks the engine progress hook feeds the job's
// counters to completion.
func TestJobProgressCounters(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	j, _, err := m.Submit(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	st := j.Snapshot()
	want := int64(2 * 2) // policies × points, 1 rep
	if st.CellsTotal != want || st.CellsDone != want {
		t.Errorf("progress %d/%d, want %d/%d", st.CellsDone, st.CellsTotal, want, want)
	}
	if st.State != "done" {
		t.Errorf("state %q, want done", st.State)
	}
	if st.ResultURL == "" {
		t.Error("done job has no result URL")
	}
}
