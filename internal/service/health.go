package service

// Peer health tracking: every backend in the shard fleet is wrapped in a
// backendHandle, a per-peer circuit breaker. Consecutive transport
// failures trip the breaker (peerDown); a down peer is skipped by
// runShard until its probe time arrives, at which point exactly one
// shard attempt is admitted as the probe (peerProbing). A successful
// probe re-admits the peer; a failed one re-opens the breaker with an
// exponentially longer, jittered backoff. The in-process pool is created
// with breaker=false — it records outcomes but can never be marked down,
// which is what guarantees graceful degradation: when every remote peer
// is out, shards drain through the local pool and the job still
// completes.
//
// Time and randomness are injected (Manager.now / Manager.sleep /
// Manager.rng), so the whole state machine is deterministic under test:
// a fake clock drives probe scheduling and a seeded xrand.RNG fixes the
// jitter stream.

import (
	"fmt"
	"sync"
	"time"

	"dynasym/internal/obs"
)

// peerState is a handle's circuit-breaker position.
type peerState int32

const (
	// peerHealthy: shard attempts flow freely.
	peerHealthy peerState = iota
	// peerProbing: the breaker tripped and one probe attempt is in
	// flight; other shards skip the peer until the probe reports.
	peerProbing
	// peerDown: the breaker is open; the peer is skipped until nextProbe.
	peerDown
)

func (s peerState) String() string {
	switch s {
	case peerHealthy:
		return "healthy"
	case peerProbing:
		return "probing"
	case peerDown:
		return "down"
	default:
		return fmt.Sprintf("peerState(%d)", int32(s))
	}
}

// backendHandle wraps one Backend with failure accounting and the
// breaker state machine. All mutable fields are guarded by mu; the
// transition logic lives on Manager (admit/report) because it needs the
// config, clock and jitter source.
type backendHandle struct {
	Backend
	// breaker is false for the local pool: it is always admissible, so
	// the fleet can never reach a state where no backend will take a
	// shard.
	breaker bool

	// Per-peer metric series, wired by setBackends for breaker-tracked
	// handles (nil — and therefore inert — for the local pool):
	// successful-attempt RTT, failed attempts, the breaker-state gauge
	// (0 healthy, 1 probing, 2 down) and per-target transition counts.
	rttSec      *obs.Histogram
	failures    *obs.Counter
	stateG      *obs.Gauge
	transitions [peerDown + 1]*obs.Counter

	mu         sync.Mutex
	state      peerState
	fails      int // consecutive transport failures
	lastErr    error
	lastFailAt time.Time
	nextProbe  time.Time // down: earliest next attempt
	backoffExp int       // consecutive trips, drives the probe backoff
}

// setState moves the breaker state machine and keeps the gauge and
// transition counters in step. Call with h.mu held.
func (h *backendHandle) setState(s peerState) {
	if h.state == s {
		return
	}
	h.state = s
	h.stateG.Set(int64(s))
	h.transitions[s].Inc()
}

// setBackends (re)wraps a backend list in health handles; tests swap
// whole fleets in through this. Any *localBackend is exempted from the
// breaker (see backendHandle.breaker).
func (m *Manager) setBackends(bs ...Backend) {
	hs := make([]*backendHandle, len(bs))
	for i, b := range bs {
		_, isLocal := b.(*localBackend)
		hs[i] = &backendHandle{Backend: b, breaker: !isLocal}
		if hs[i].breaker {
			m.mx.wirePeerMetrics(hs[i])
		}
	}
	m.handles = hs
}

// admit reports whether a shard attempt may use h right now. A down
// peer is admitted once its probe time arrives, and that admission IS
// the probe: the state moves to probing so concurrent shards keep
// skipping the peer until the probe's outcome is reported.
func (m *Manager) admit(h *backendHandle) bool {
	if !h.breaker {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case peerProbing:
		return false
	case peerDown:
		if m.now().Before(h.nextProbe) {
			return false
		}
		h.setState(peerProbing)
		return true
	default:
		return true
	}
}

// report records the outcome of an attempt on h. Success closes the
// breaker and clears the failure accounting; failure increments it and
// trips the breaker once FailThreshold consecutive failures accumulate
// (immediately, if the attempt was a probe).
func (m *Manager) report(h *backendHandle, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil {
		h.setState(peerHealthy)
		h.fails, h.backoffExp, h.lastErr = 0, 0, nil
		return
	}
	h.fails++
	h.lastErr = err
	h.lastFailAt = m.now()
	if !h.breaker {
		return
	}
	if h.state == peerProbing || h.fails >= m.cfg.FailThreshold {
		d := m.cfg.ProbeBackoff
		for i := 0; i < h.backoffExp && d < m.cfg.ProbeMaxBackoff; i++ {
			d *= 2
		}
		if d > m.cfg.ProbeMaxBackoff {
			d = m.cfg.ProbeMaxBackoff
		}
		h.backoffExp++
		h.nextProbe = m.now().Add(m.jitterDur(d))
		h.setState(peerDown)
	}
}

// jitterDur scales d by a uniform factor in [0.5, 1.5): it desynchronizes
// probe and retry storms across shards and nodes while keeping the mean,
// and stays deterministic under a seeded RNG.
func (m *Manager) jitterDur(d time.Duration) time.Duration {
	m.rngMu.Lock()
	f := 0.5 + m.rng.Float64()
	m.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// PeerStatus is one breaker-tracked backend's health snapshot, reported
// by GET /v1/healthz alongside the Stats.
type PeerStatus struct {
	Peer             string `json:"peer"`
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_failures"`
	LastError        string `json:"last_error,omitempty"`
	// NextProbeSec is the time until a down peer is re-probed; zero for
	// healthy/probing peers (and for a down peer whose probe is due).
	NextProbeSec float64 `json:"next_probe_sec,omitempty"`
}

// PeerHealth snapshots every breaker-tracked backend — the remote peers;
// the local pool is exempt and not listed.
func (m *Manager) PeerHealth() []PeerStatus {
	now := m.now()
	var out []PeerStatus
	for _, h := range m.handles {
		if !h.breaker {
			continue
		}
		h.mu.Lock()
		ps := PeerStatus{Peer: h.Name(), State: h.state.String(), ConsecutiveFails: h.fails}
		if h.lastErr != nil {
			ps.LastError = h.lastErr.Error()
		}
		if h.state == peerDown {
			if d := h.nextProbe.Sub(now); d > 0 {
				ps.NextProbeSec = d.Seconds()
			}
		}
		h.mu.Unlock()
		out = append(out, ps)
	}
	return out
}
