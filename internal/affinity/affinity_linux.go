//go:build linux

// Package affinity pins OS threads to cores where the platform supports it
// (raw sched_setaffinity on Linux, no-op elsewhere). The real runtime uses
// it so worker goroutines approximate the paper's one-worker-per-core
// model; everything degrades gracefully when pinning is unavailable.
package affinity

import (
	"runtime"
	"syscall"
	"unsafe"
)

// Supported reports whether thread pinning works on this platform.
func Supported() bool { return true }

// Pin locks the calling goroutine to its OS thread and restricts that
// thread to the given CPU (modulo the machine's CPU count). Callers must
// pair it with Unpin. It returns an error if the kernel rejects the mask.
func Pin(cpu int) error {
	runtime.LockOSThread()
	n := runtime.NumCPU()
	if n <= 0 {
		n = 1
	}
	var mask [16]uint64 // 1024 CPUs
	c := cpu % n
	mask[c/64] |= 1 << (uint(c) % 64)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, // current thread
		uintptr(len(mask)*8),
		uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		runtime.UnlockOSThread()
		return errno
	}
	return nil
}

// Unpin releases the thread back to all CPUs and unlocks the goroutine.
func Unpin() {
	n := runtime.NumCPU()
	var mask [16]uint64
	for c := 0; c < n && c < len(mask)*64; c++ {
		mask[c/64] |= 1 << (uint(c) % 64)
	}
	syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	runtime.UnlockOSThread()
}
