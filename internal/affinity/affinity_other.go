//go:build !linux

package affinity

// Supported reports whether thread pinning works on this platform.
func Supported() bool { return false }

// Pin is a no-op on platforms without sched_setaffinity.
func Pin(int) error { return nil }

// Unpin is a no-op on platforms without sched_setaffinity.
func Unpin() {}
