// Package obs is a dependency-free metrics registry for the service
// layer: atomic counters, gauges and fixed-bucket histograms with
// Prometheus text exposition. The paper's core argument is that a
// runtime must continuously observe its own execution rates to detect
// dynamic asymmetry; obs applies the same discipline to the fleet
// itself — every hot-path update is a handful of atomic operations and
// zero allocations, so instrumentation never becomes the interference
// it is supposed to measure.
//
// Metrics are registered get-or-create by (name, labels): registering
// the same series twice returns the same instance, so a re-wrapped
// backend fleet (tests swap fleets freely) never panics or double
// counts. All metric methods are nil-tolerant, so call sites can run
// unconditionally even when a component was built without a registry.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one exposition label pair.
type Label struct {
	Key, Val string
}

// L is shorthand for a Label.
func L(key, val string) Label { return Label{Key: key, Val: val} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n < 0 is a programming error and is ignored).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count. Zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value. Zero on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Bucket bounds are
// upper-inclusive (Prometheus "le" semantics); an implicit +Inf bucket
// catches the rest. Observe is wait-free except for the sum, which is a
// CAS loop over float bits.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value. Safe on a nil histogram; zero allocations.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the branch-free
	// alternative buys nothing at this scale.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations. Zero on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. Zero on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n upper bounds starting at start, each factor times
// the previous — the usual latency ladder (e.g. 1ms..~1000s).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%g, %g, %d): need start > 0, factor > 1, n >= 1", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind discriminates the exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// series is one registered (name, labels) instance.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series of one metric name under a single
// HELP/TYPE block.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted registration names, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName is the Prometheus metric-name grammar; labels use the same
// minus the colon.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(0)
		sb.WriteString(l.Val)
		sb.WriteByte(0)
	}
	return sb.String()
}

// lookup get-or-creates the (name, labels) series of the given kind.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) || strings.ContainsRune(l.Key, ':') {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, byKey: make(map[string]*series)}
		r.families[name] = f
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	key := labelKey(labels)
	s, ok := f.byKey[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{bounds: append([]float64(nil), f.bounds...), counts: make([]atomic.Int64, len(f.bounds))}
		}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// Histogram registers (or returns the existing) histogram series. The
// bucket bounds of the first registration win for the whole family; they
// must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds are not sorted", name))
	}
	return r.lookup(name, help, kindHistogram, bounds, labels).h
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeLabels renders {k="v",...}; extra, when non-empty, is appended as
// a pre-rendered pair (the histogram "le").
func writeLabels(sb *strings.Builder, labels []Label, extra string) {
	if len(labels) == 0 && extra == "" {
		return
	}
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Val))
		sb.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
	}
	sb.WriteByte('}')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.names))
	for i, n := range r.names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		// Families and their series lists are append-only; reading them
		// outside the lock races only with growth, and the slice header
		// was copied above.
		r.mu.Lock()
		ss := append([]*series(nil), f.series...)
		r.mu.Unlock()
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch f.kind {
			case kindCounter:
				sb.WriteString(f.name)
				writeLabels(&sb, s.labels, "")
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatInt(s.c.Value(), 10))
				sb.WriteByte('\n')
			case kindGauge:
				sb.WriteString(f.name)
				writeLabels(&sb, s.labels, "")
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatInt(s.g.Value(), 10))
				sb.WriteByte('\n')
			case kindHistogram:
				cum := int64(0)
				for i, b := range s.h.bounds {
					cum += s.h.counts[i].Load()
					sb.WriteString(f.name)
					sb.WriteString("_bucket")
					writeLabels(&sb, s.labels, `le="`+formatFloat(b)+`"`)
					sb.WriteByte(' ')
					sb.WriteString(strconv.FormatInt(cum, 10))
					sb.WriteByte('\n')
				}
				sb.WriteString(f.name)
				sb.WriteString("_bucket")
				writeLabels(&sb, s.labels, `le="+Inf"`)
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatInt(cum+s.h.inf.Load(), 10))
				sb.WriteByte('\n')
				sb.WriteString(f.name)
				sb.WriteString("_sum")
				writeLabels(&sb, s.labels, "")
				sb.WriteByte(' ')
				sb.WriteString(formatFloat(s.h.Sum()))
				sb.WriteByte('\n')
				sb.WriteString(f.name)
				sb.WriteString("_count")
				writeLabels(&sb, s.labels, "")
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatInt(s.h.Count(), 10))
				sb.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Handler serves the registry at GET on any path (mount it at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
