package obs

import (
	"io"
	"testing"
)

// BenchmarkCounterInc is one atomic add — the floor for any
// instrumentation cost.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve is one latency observation: bucket scan,
// two atomic adds and the float-bits CAS on the sum.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "b", ExpBuckets(1e-4, 10, 7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0123)
	}
}

// BenchmarkMetricsHotPath is the full per-cell instrumentation bill the
// service pays on its hot path (pool gauge swing, run counter, two
// duration histograms) — the number BENCH_PR8 tracks so observability
// overhead regresses like any other perf property.
func BenchmarkMetricsHotPath(b *testing.B) {
	r := NewRegistry()
	busy := r.Gauge("bench_pool_busy", "b")
	runs := r.Counter("bench_cell_runs_total", "b")
	cellSec := r.Histogram("bench_cell_seconds", "b", ExpBuckets(1e-4, 10, 7))
	rtt := r.Histogram("bench_rtt_seconds", "b", ExpBuckets(1e-3, 10, 6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		busy.Inc()
		runs.Inc()
		cellSec.Observe(0.0042)
		rtt.Observe(0.017)
		busy.Dec()
	}
}

// BenchmarkWritePrometheus is one full scrape of a realistically sized
// registry (a few dozen series) — the cost a 10s scrape interval pays.
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a_total", "b_total", "c_total", "d_total"} {
		for _, p := range []string{"p1", "p2", "p3", "p4"} {
			r.Counter(n, "bench", L("peer", p)).Add(12345)
		}
	}
	for _, n := range []string{"x_seconds", "y_seconds", "z_seconds"} {
		h := r.Histogram(n, "bench", ExpBuckets(1e-4, 10, 10))
		for i := 0; i < 100; i++ {
			h.Observe(float64(i) * 1e-3)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
