package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestGetOrCreateReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", L("peer", "x"))
	b := r.Counter("dup_total", "h", L("peer", "x"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("dup_total", "h", L("peer", "y"))
	if a == other {
		t.Fatal("different labels must return a different series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("clash", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must panic", bad)
				}
			}()
			r.Counter(bad, "h")
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 106.65 {
		t.Fatalf("sum = %g, want 106.65", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// le is upper-inclusive and cumulative: 0.05 and 0.1 land in le=0.1.
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="10"} 5`,
		`lat_seconds_bucket{le="+Inf"} 6`,
		`lat_seconds_sum 106.65`,
		`lat_seconds_count 6`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Counter("a_total", "first", L("peer", `quo"te`)).Inc()
	r.Gauge("a_gauge", "g").Set(-3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total first\n# TYPE a_total counter\n" + `a_total{peer="quo\"te"} 1`,
		"# TYPE a_gauge gauge\na_gauge -3",
		"# TYPE b_total counter\nb_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families are sorted by name for stable scrapes.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestConcurrentUpdatesAndScrapes races every metric kind against
// exposition; run with -race.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("con_total", "c")
	g := r.Gauge("con_gauge", "g")
	h := r.Histogram("con_seconds", "h", ExpBuckets(0.001, 10, 6))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-4)
			}
		}()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				// Re-registration during scrapes must stay safe too.
				r.Counter("con_total", "c").Inc()
				r.Gauge("late_gauge", "born mid-scrape", L("w", string(rune('a'+w)))).Set(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 4*2000+4*50 {
		t.Fatalf("counter = %d, want %d", c.Value(), 4*2000+4*50)
	}
	if h.Count() != 4*2000 {
		t.Fatalf("histogram count = %d, want %d", h.Count(), 4*2000)
	}
}

// TestHotPathZeroAllocs is the alloc-regression gate for the exact
// update sequence the service's cell hot path performs per cell: two
// counters, a gauge swing and two histogram observations must not
// allocate.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hp_total", "c")
	c2 := r.Counter("hp2_total", "c")
	g := r.Gauge("hp_gauge", "g")
	h := r.Histogram("hp_seconds", "h", ExpBuckets(1e-4, 10, 7))
	h2 := r.Histogram("hp2_seconds", "h", ExpBuckets(1e-3, 10, 6))
	allocs := testing.AllocsPerRun(1000, func() {
		g.Inc()
		c.Inc()
		c2.Add(3)
		h.Observe(0.0123)
		h2.Observe(1.5)
		g.Dec()
	})
	if allocs != 0 {
		t.Fatalf("hot-path metric updates allocate %.1f times/op, want 0", allocs)
	}
}
