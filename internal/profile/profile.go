// Package profile implements piecewise-constant functions of (virtual) time.
//
// Profiles model every time-varying aspect of the simulated platform: the
// clock frequency of a cluster under DVFS, the availability of a core that
// time-shares with a co-running application, and the memory bandwidth left
// over by a streaming interferer. The simulator composes them into a rate
// function and integrates work over it: given a start time and an amount of
// work, TimeToDo answers when the work completes.
//
// Times are float64 seconds of virtual time. Profiles are immutable after
// construction and safe for concurrent readers.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Segment is one constant piece: Value holds from Start until the next
// segment's Start (the last segment extends to +inf).
type Segment struct {
	Start float64
	Value float64
}

// Profile is a piecewise-constant, right-continuous function of time,
// defined for all t >= 0. The zero value is unusable; build profiles with
// Constant, Steps, SquareWave or the combinators.
type Profile struct {
	segs []Segment
	// periodic, if > 0, means the segments describe one period of length
	// `periodic` and repeat forever.
	period float64
}

// Constant returns the profile that is v everywhere.
func Constant(v float64) *Profile {
	return &Profile{segs: []Segment{{Start: 0, Value: v}}}
}

// Steps builds a profile from explicit segments. Segments must start at 0
// and have strictly increasing start times.
func Steps(segs ...Segment) (*Profile, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("profile: no segments")
	}
	if segs[0].Start != 0 {
		return nil, fmt.Errorf("profile: first segment must start at 0, got %g", segs[0].Start)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start <= segs[i-1].Start {
			return nil, fmt.Errorf("profile: segment starts must increase (%g after %g)", segs[i].Start, segs[i-1].Start)
		}
	}
	return &Profile{segs: append([]Segment(nil), segs...)}, nil
}

// MustSteps is Steps but panics on error.
func MustSteps(segs ...Segment) *Profile {
	p, err := Steps(segs...)
	if err != nil {
		panic(err)
	}
	return p
}

// SquareWave returns a periodic profile alternating between hi (for hiDur
// seconds) and lo (for loDur seconds), starting at hi at t=0 and repeating
// forever. It models the paper's DVFS scenario (2035 MHz for 5 s, 345 MHz
// for 5 s).
func SquareWave(hi, lo, hiDur, loDur float64) *Profile {
	if hiDur <= 0 || loDur <= 0 {
		panic("profile: SquareWave durations must be positive")
	}
	return &Profile{
		segs:   []Segment{{Start: 0, Value: hi}, {Start: hiDur, Value: lo}},
		period: hiDur + loDur,
	}
}

// PhasedSquareWave is SquareWave shifted left by phase seconds: the wave's
// value at t is the unshifted wave's value at t+phase. It models bursty
// interferers whose activity windows are staggered across cores instead of
// firing in lock-step.
func PhasedSquareWave(hi, lo, hiDur, loDur, phase float64) *Profile {
	if hiDur <= 0 || loDur <= 0 {
		panic("profile: PhasedSquareWave durations must be positive")
	}
	period := hiDur + loDur
	phase = math.Mod(phase, period)
	if phase < 0 {
		phase += period
	}
	if phase == 0 {
		return SquareWave(hi, lo, hiDur, loDur)
	}
	val := func(t float64) float64 {
		s := math.Mod(t+phase, period)
		if s < hiDur {
			return hi
		}
		return lo
	}
	// The shifted wave has at most two value changes per period: where the
	// unshifted wave wraps to hi and where it drops to lo. Each segment's
	// value is sampled at its midpoint — sampling at the boundary itself
	// is unreliable, since rounding in the boundary computation can land
	// a hair before the transition.
	bounds := []float64{0,
		math.Mod(period-phase, period),
		math.Mod(hiDur-phase+period, period),
		period,
	}
	sort.Float64s(bounds)
	var segs []Segment
	for i := 0; i+1 < len(bounds); i++ {
		lo2, hi2 := bounds[i], bounds[i+1]
		if hi2 <= lo2 {
			continue
		}
		v := val((lo2 + hi2) / 2)
		if len(segs) > 0 && segs[len(segs)-1].Value == v {
			continue
		}
		segs = append(segs, Segment{Start: lo2, Value: v})
	}
	if len(segs) == 1 {
		// Degenerate phases collapse the wave to a constant.
		return Constant(segs[0].Value)
	}
	return &Profile{segs: segs, period: period}
}

// Episode returns a profile that is `base` everywhere except [from, to),
// where it is `during`. It models a bounded interference episode such as a
// co-runner active during part of the run.
func Episode(base, during, from, to float64) *Profile {
	if to <= from {
		panic("profile: Episode requires to > from")
	}
	if from == 0 {
		return MustSteps(Segment{0, during}, Segment{to, base})
	}
	return MustSteps(Segment{0, base}, Segment{from, during}, Segment{to, base})
}

// At returns the profile's value at time t (t < 0 is treated as 0).
func (p *Profile) At(t float64) float64 {
	if t < 0 {
		t = 0
	}
	if p.period > 0 {
		t = math.Mod(t, p.period)
	}
	i := sort.Search(len(p.segs), func(i int) bool { return p.segs[i].Start > t })
	return p.segs[i-1].Value
}

// NextChange returns the first time strictly greater than t at which the
// profile's value may change, or +Inf if the profile is constant after t.
func (p *Profile) NextChange(t float64) float64 {
	if t < 0 {
		t = 0
	}
	if p.period > 0 {
		if math.IsInf(t, 1) {
			return math.Inf(1)
		}
		// Rounding in floor() or in base+Start can produce a candidate at
		// or before t (e.g. when t sits exactly on a period boundary);
		// returning it would stall integration loops that rely on strictly
		// increasing change points. Scan forward until a candidate clears t.
		base := math.Floor(t/p.period) * p.period
		for {
			for _, s := range p.segs {
				if c := base + s.Start; c > t {
					return c
				}
			}
			next := base + p.period
			if next == base {
				// t is so large that one period is below its ulp: no
				// representable change point remains.
				return math.Inf(1)
			}
			base = next
		}
	}
	i := sort.Search(len(p.segs), func(i int) bool { return p.segs[i].Start > t })
	if i == len(p.segs) {
		return math.Inf(1)
	}
	return p.segs[i].Start
}

// rateOver returns the profile's value on the change-free interval
// [t, next). It samples the midpoint rather than the left edge: for
// periodic profiles, At(t) exactly at a boundary returned by NextChange
// can land one ulp on the wrong side of the corresponding segment start
// (the modulo and the base+Start arithmetic round differently), and that
// misclassification accumulates into a real bias over many periods.
func (p *Profile) rateOver(t, next float64) float64 {
	if math.IsInf(next, 1) {
		return p.At(t)
	}
	return p.At(t + (next-t)/2)
}

// Integrate returns the integral of the profile over [from, to].
func (p *Profile) Integrate(from, to float64) float64 {
	if to <= from {
		return 0
	}
	total := 0.0
	t := from
	for t < to {
		next := p.NextChange(t)
		if next > to {
			next = to
		}
		total += p.rateOver(t, next) * (next - t)
		t = next
	}
	return total
}

// TimeToDo returns the time at which `work` units complete if processing
// starts at `start` and proceeds at rate p(t) units/second. It returns +Inf
// if the profile is zero forever after start. Zero-rate stretches simply
// pause progress.
//
// This is the simulator's innermost loop, so the common shapes take
// segment-cursor fast paths that never rescan the profile from t=0: a
// constant profile is a single division, and a finite (non-periodic)
// profile locates start's segment with one binary search and then walks an
// index cursor forward. Periodic profiles index directly into the period
// containing t via NextChange's floor arithmetic. All paths produce
// bit-identical results to the generic scan.
func (p *Profile) TimeToDo(start, work float64) float64 {
	if work <= 0 {
		return start
	}
	if p.period == 0 {
		if len(p.segs) == 1 {
			v := p.segs[0].Value
			if v <= 0 {
				return math.Inf(1)
			}
			return start + work/v
		}
		if start >= 0 {
			return p.timeToDoFinite(start, work)
		}
	}
	return p.timeToDoScan(start, work)
}

// timeToDoFinite is the cursor fast path for finite multi-segment profiles
// with start >= 0. It mirrors timeToDoScan exactly — including rateOver's
// midpoint sampling and its rounding behavior when the midpoint lands on
// the next boundary — but resolves each segment by cursor index instead of
// re-searching the segment list per change point.
func (p *Profile) timeToDoFinite(start, work float64) float64 {
	segs := p.segs
	i := sort.Search(len(segs), func(i int) bool { return segs[i].Start > start }) - 1
	t := start
	remaining := work
	for {
		if i == len(segs)-1 {
			// Final segment: the rate holds forever.
			rate := segs[i].Value
			if rate <= 0 {
				return math.Inf(1)
			}
			return t + remaining/rate
		}
		next := segs[i+1].Start
		// rateOver samples At(t + (next-t)/2); with t in segment i the
		// midpoint stays in segment i unless rounding lands it exactly on
		// `next` (possible when next-t is at the ulp scale).
		rate := segs[i].Value
		if t+(next-t)/2 >= next {
			rate = segs[i+1].Value
		}
		if rate > 0 {
			capacity := rate * (next - t)
			if capacity >= remaining {
				return t + remaining/rate
			}
			remaining -= capacity
		}
		t = next
		i++
	}
}

// timeToDoScan is the generic integration loop over NextChange/rateOver,
// used for periodic profiles (whose change points are generated by period
// arithmetic, not stored) and as the reference semantics for the fast
// paths.
func (p *Profile) timeToDoScan(start, work float64) float64 {
	t := start
	remaining := work
	for {
		next := p.NextChange(t)
		rate := p.rateOver(t, next)
		if math.IsInf(next, 1) {
			if rate <= 0 {
				return math.Inf(1)
			}
			return t + remaining/rate
		}
		span := next - t
		if rate > 0 {
			capacity := rate * span
			if capacity >= remaining {
				return t + remaining/rate
			}
			remaining -= capacity
		}
		t = next
	}
}

// Scale returns a new profile equal to p multiplied by k everywhere.
func (p *Profile) Scale(k float64) *Profile {
	out := &Profile{segs: make([]Segment, len(p.segs)), period: p.period}
	for i, s := range p.segs {
		out.segs[i] = Segment{Start: s.Start, Value: s.Value * k}
	}
	return out
}

// Mul returns the pointwise product of two profiles, materializing the
// merged breakpoints; when both operands are periodic with commensurable
// periods the result is periodic over their least common multiple.
func Mul(a, b *Profile) *Profile {
	// Fast paths: constant operands.
	if a.IsConstant() {
		return b.Scale(a.segs[0].Value)
	}
	if b.IsConstant() {
		return a.Scale(b.segs[0].Value)
	}
	return combine(a, b, func(x, y float64) float64 { return x * y })
}

// Min2 returns the pointwise minimum of two profiles, materialized over the
// same horizon strategy as Mul.
func Min2(a, b *Profile) *Profile {
	if a.IsConstant() && b.IsConstant() {
		return Constant(math.Min(a.segs[0].Value, b.segs[0].Value))
	}
	// Short-circuit: a constant that never binds.
	if a.IsConstant() && a.segs[0].Value >= b.Max() {
		return b
	}
	if b.IsConstant() && b.segs[0].Value >= a.Max() {
		return a
	}
	return combine(a, b, math.Min)
}

// combine merges the breakpoints of two profiles applying op pointwise,
// preserving periodicity when the periods are commensurable.
func combine(a, b *Profile, op func(x, y float64) float64) *Profile {
	const horizonPeriods = 64
	horizon := 0.0
	period := 0.0
	switch {
	case a.period > 0 && b.period > 0:
		period = lcmFloat(a.period, b.period)
		horizon = period
	case a.period > 0:
		horizon = math.Max(a.period*horizonPeriods, lastStart(b)+a.period)
	case b.period > 0:
		horizon = math.Max(b.period*horizonPeriods, lastStart(a)+b.period)
	default:
		horizon = math.Max(lastStart(a), lastStart(b))
	}
	var segs []Segment
	t := 0.0
	for {
		segs = append(segs, Segment{Start: t, Value: op(a.At(t), b.At(t))})
		next := math.Min(a.NextChange(t), b.NextChange(t))
		if next >= horizon || math.IsInf(next, 1) {
			break
		}
		t = next
	}
	return &Profile{segs: segs, period: period}
}

// IsConstant reports whether the profile has a single value everywhere.
func (p *Profile) IsConstant() bool {
	return p.period == 0 && len(p.segs) == 1
}

// Min returns the smallest value the profile ever takes.
func (p *Profile) Min() float64 {
	m := math.Inf(1)
	for _, s := range p.segs {
		if s.Value < m {
			m = s.Value
		}
	}
	return m
}

// Max returns the largest value the profile ever takes.
func (p *Profile) Max() float64 {
	m := math.Inf(-1)
	for _, s := range p.segs {
		if s.Value > m {
			m = s.Value
		}
	}
	return m
}

// String renders the profile compactly for debugging.
func (p *Profile) String() string {
	var b strings.Builder
	b.WriteString("profile[")
	for i, s := range p.segs {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%g:%g", s.Start, s.Value)
	}
	if p.period > 0 {
		fmt.Fprintf(&b, " period=%g", p.period)
	}
	b.WriteString("]")
	return b.String()
}

func lastStart(p *Profile) float64 {
	return p.segs[len(p.segs)-1].Start
}

// lcmFloat returns the least common multiple of two positive floats if they
// are commensurable within a small tolerance; otherwise it returns a horizon
// covering many periods of both.
func lcmFloat(a, b float64) float64 {
	// Try small integer multiples.
	for i := 1; i <= 64; i++ {
		m := a * float64(i)
		ratio := m / b
		if math.Abs(ratio-math.Round(ratio)) < 1e-9 {
			return m
		}
	}
	return a * b // not commensurable in small multiples; generous horizon
}
