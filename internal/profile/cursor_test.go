package profile

import (
	"math"
	"testing"
)

// The cursor fast paths must be bit-identical to the generic scan for every
// profile shape: the scenario engine's byte-exact determinism fingerprints
// (and the perf rebaseline's "numbers unchanged" guarantee) depend on it.
func TestTimeToDoMatchesScanBitExact(t *testing.T) {
	profiles := map[string]*Profile{
		"constant": Constant(3.5),
		"zero":     Constant(0),
		"steps": MustSteps(
			Segment{0, 2}, Segment{0.3, 0}, Segment{1.1, 5}, Segment{2.7, 0.25},
			Segment{3.14159, 7e3}, Segment{100, 1e-3},
		),
		"steps-zero-tail": MustSteps(Segment{0, 1}, Segment{1, 0}),
		"square":          SquareWave(2035e6, 345e6, 5, 5),
		"phased":          PhasedSquareWave(1, 0.3, 0.7, 1.3, 0.41),
		"combined": Mul(
			MustSteps(Segment{0, 1}, Segment{0.5, 0.4}, Segment{2, 0.9}),
			MustSteps(Segment{0, 2}, Segment{0.8, 1}, Segment{5, 3}),
		),
		"ulp-boundary": MustSteps(
			Segment{0, 1}, Segment{1, 2}, Segment{math.Nextafter(1, 2), 3},
		),
	}
	x := uint64(0x9E3779B97F4A7C15)
	rnd := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%1_000_000) / 1_000
	}
	for name, p := range profiles {
		// Scale work to the profile's magnitude so completion stays within
		// a bounded virtual-time horizon (periodic scans walk every period
		// boundary until the work is done).
		workScale := (1 + p.Max()) * 20
		for i := 0; i < 2000; i++ {
			start := rnd()
			work := rnd() / 1000 * workScale
			if i%17 == 0 {
				work = 0
			}
			if i%23 == 0 {
				// Land start exactly on a change point.
				start = p.NextChange(start)
				if math.IsInf(start, 1) {
					start = 0
				}
			}
			got := p.TimeToDo(start, work)
			want := start
			if work > 0 {
				want = p.timeToDoScan(start, work)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: TimeToDo(%v, %v) = %v, scan says %v", name, start, work, got, want)
			}
		}
	}
}

// Negative starts must keep the old clamping behavior.
func TestTimeToDoNegativeStart(t *testing.T) {
	p := MustSteps(Segment{0, 1}, Segment{2, 3})
	got := p.TimeToDo(-4, 10)
	want := p.timeToDoScan(-4, 10)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("negative start: got %v, want %v", got, want)
	}
}
