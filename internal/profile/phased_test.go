package profile

import (
	"math"
	"testing"
)

// The phased wave must equal the unshifted wave sampled at t+phase, for
// arbitrary (including awkwardly rounded) phases.
func TestPhasedSquareWaveMatchesShiftedWave(t *testing.T) {
	hi, lo := 9.0, 1.0
	hiDur, loDur := 0.1, 0.2
	period := hiDur + loDur
	for _, phase := range []float64{0, 0.05, 0.1, 0.15, 0.25, 0.3, 0.9999, -0.05} {
		p := PhasedSquareWave(hi, lo, hiDur, loDur, phase)
		for _, tm := range []float64{0, 0.01, 0.049, 0.07, 0.12, 0.26, 1.0, 7.33} {
			// Sample away from exact segment boundaries: the reference
			// below and the profile may legitimately disagree there by
			// one ulp of boundary rounding.
			s := math.Mod(math.Mod(tm+phase, period)+period, period)
			if math.Min(math.Abs(s-hiDur), math.Min(s, period-s)) < 1e-9 {
				continue
			}
			want := lo
			if s < hiDur {
				want = hi
			}
			if got := p.At(tm); got != want {
				t.Errorf("phase %g: At(%g) = %g, want %g", phase, tm, got, want)
			}
		}
	}
}

// Regression: boundary rounding once collapsed the shifted wave to a
// constant (the lo segment vanished), which made a bursty co-runner
// disappear entirely.
func TestPhasedSquareWaveKeepsBothLevels(t *testing.T) {
	p := PhasedSquareWave(0.4, 1.0, 0.1, 0.2, 0.05)
	if p.Min() != 0.4 || p.Max() != 1.0 {
		t.Fatalf("wave lost a level: min=%g max=%g, want 0.4 and 1.0", p.Min(), p.Max())
	}
	// Average availability over many periods ≈ (0.4*0.1 + 1.0*0.2) / 0.3.
	avg := p.Integrate(0, 30) / 30
	want := (0.4*0.1 + 1.0*0.2) / 0.3
	if math.Abs(avg-want) > 1e-3 {
		t.Fatalf("average %g, want %g", avg, want)
	}
}

// Regression: NextChange on a periodic profile must return a strictly
// increasing sequence even when t sits exactly on (or one ulp past) a
// period boundary; a non-increasing step stalled TimeToDo forever.
func TestNextChangeStrictlyIncreasesOnPeriodic(t *testing.T) {
	waves := []*Profile{
		SquareWave(2, 1, 0.1, 0.2),
		PhasedSquareWave(2, 1, 0.1, 0.2, 0.05),
	}
	for wi, p := range waves {
		tm := 0.0
		for i := 0; i < 10000; i++ {
			next := p.NextChange(tm)
			if !(next > tm) {
				t.Fatalf("wave %d: NextChange(%.17g) = %.17g did not advance", wi, tm, next)
			}
			tm = next
		}
		// Probe exact and near-boundary times directly.
		period := 0.30000000000000004
		for k := 1; k < 50; k++ {
			at := float64(k) * period
			for _, probe := range []float64{at, math.Nextafter(at, 0), math.Nextafter(at, math.Inf(1))} {
				if next := p.NextChange(probe); !(next > probe) {
					t.Fatalf("wave %d: NextChange(%.17g) = %.17g did not advance", wi, probe, next)
				}
			}
		}
	}
}

// Regression: periodic NextChange must terminate (returning +Inf) when no
// representable change point remains — t = +Inf, or t so large that one
// period is below its ulp.
func TestNextChangeSaturatesOnPeriodic(t *testing.T) {
	p := SquareWave(2, 1, 5, 5)
	if next := p.NextChange(math.Inf(1)); !math.IsInf(next, 1) {
		t.Fatalf("NextChange(+Inf) = %g, want +Inf", next)
	}
	if next := p.NextChange(1e17); !(next > 1e17) {
		t.Fatalf("NextChange(1e17) = %g did not advance", next)
	}
}

func TestPhasedSquareWaveDegenerate(t *testing.T) {
	// A phase of exactly one period is no shift at all.
	a := PhasedSquareWave(2, 1, 1, 1, 2)
	b := SquareWave(2, 1, 1, 1)
	for _, tm := range []float64{0, 0.5, 1.5, 2.5, 10.25} {
		if a.At(tm) != b.At(tm) {
			t.Fatalf("full-period phase changed the wave at t=%g", tm)
		}
	}
}
