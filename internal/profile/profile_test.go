package profile

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	p := Constant(3.5)
	for _, at := range []float64{0, 1, 1e9} {
		if v := p.At(at); v != 3.5 {
			t.Fatalf("At(%g) = %g", at, v)
		}
	}
	if !math.IsInf(p.NextChange(0), 1) {
		t.Fatal("constant profile should never change")
	}
}

func TestStepsValidation(t *testing.T) {
	if _, err := Steps(); err == nil {
		t.Fatal("empty Steps accepted")
	}
	if _, err := Steps(Segment{1, 2}); err == nil {
		t.Fatal("Steps not starting at 0 accepted")
	}
	if _, err := Steps(Segment{0, 1}, Segment{0, 2}); err == nil {
		t.Fatal("non-increasing starts accepted")
	}
}

func TestEpisode(t *testing.T) {
	p := Episode(1.0, 0.5, 2, 5)
	cases := []struct{ at, want float64 }{
		{0, 1}, {1.99, 1}, {2, 0.5}, {4.99, 0.5}, {5, 1}, {100, 1},
	}
	for _, c := range cases {
		if v := p.At(c.at); v != c.want {
			t.Fatalf("At(%g) = %g, want %g", c.at, v, c.want)
		}
	}
	if got := p.NextChange(0); got != 2 {
		t.Fatalf("NextChange(0) = %g, want 2", got)
	}
	if got := p.NextChange(2); got != 5 {
		t.Fatalf("NextChange(2) = %g, want 5", got)
	}
}

func TestEpisodeFromZero(t *testing.T) {
	p := Episode(1.0, 0.25, 0, 3)
	if v := p.At(0); v != 0.25 {
		t.Fatalf("At(0) = %g, want 0.25", v)
	}
	if v := p.At(3); v != 1 {
		t.Fatalf("At(3) = %g, want 1", v)
	}
}

func TestSquareWavePeriodicity(t *testing.T) {
	p := SquareWave(2.0, 0.5, 5, 5)
	for _, c := range []struct{ at, want float64 }{
		{0, 2}, {4.9, 2}, {5, 0.5}, {9.9, 0.5}, {10, 2}, {15, 0.5}, {1000, 2}, {1005, 0.5},
	} {
		if v := p.At(c.at); v != c.want {
			t.Fatalf("At(%g) = %g, want %g", c.at, v, c.want)
		}
	}
	if got := p.NextChange(12); got != 15 {
		t.Fatalf("NextChange(12) = %g, want 15", got)
	}
	if got := p.NextChange(17); got != 20 {
		t.Fatalf("NextChange(17) = %g, want 20", got)
	}
}

func TestIntegrate(t *testing.T) {
	p := SquareWave(2, 1, 1, 1)
	// One full period integrates to 3.
	if got := p.Integrate(0, 2); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Integrate(0,2) = %g, want 3", got)
	}
	// Ten periods.
	if got := p.Integrate(0, 20); math.Abs(got-30) > 1e-9 {
		t.Fatalf("Integrate(0,20) = %g, want 30", got)
	}
	// Partial, crossing a boundary.
	if got := p.Integrate(0.5, 1.5); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Integrate(0.5,1.5) = %g, want 1.5", got)
	}
}

func TestTimeToDo(t *testing.T) {
	p := Constant(2)
	if got := p.TimeToDo(1, 4); got != 3 {
		t.Fatalf("TimeToDo = %g, want 3", got)
	}
	// Square wave: rate 2 for 1s, 0 for 1s — work pauses.
	w := SquareWave(2, 0, 1, 1)
	if got := w.TimeToDo(0, 3); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("TimeToDo over paused stretch = %g, want 2.5", got)
	}
	// Zero forever → +Inf.
	z := Constant(0)
	if !math.IsInf(z.TimeToDo(0, 1), 1) {
		t.Fatal("zero-rate TimeToDo should be +Inf")
	}
	// Zero work completes immediately.
	if got := p.TimeToDo(5, 0); got != 5 {
		t.Fatalf("zero work = %g, want 5", got)
	}
}

// Property: Integrate(start, TimeToDo(start, work)) == work.
func TestTimeToDoInverseOfIntegrate(t *testing.T) {
	p := SquareWave(3, 0.5, 2, 1)
	check := func(startRaw, workRaw uint16) bool {
		start := float64(startRaw) / 100
		work := float64(workRaw)/100 + 0.001
		end := p.TimeToDo(start, work)
		got := p.Integrate(start, end)
		return math.Abs(got-work) < 1e-6*math.Max(1, work)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	p := SquareWave(4, 2, 1, 1).Scale(0.5)
	if v := p.At(0); v != 2 {
		t.Fatalf("scaled At(0) = %g, want 2", v)
	}
	if v := p.At(1.5); v != 1 {
		t.Fatalf("scaled At(1.5) = %g, want 1", v)
	}
}

func TestMul(t *testing.T) {
	a := SquareWave(2, 1, 1, 1)
	b := Constant(3)
	m := Mul(a, b)
	if v := m.At(0.5); v != 6 {
		t.Fatalf("Mul At(0.5) = %g, want 6", v)
	}
	if v := m.At(1.5); v != 3 {
		t.Fatalf("Mul At(1.5) = %g, want 3", v)
	}
	// Two periodic profiles with commensurable periods.
	c := SquareWave(1, 0, 2, 2)
	mc := Mul(a, c)
	for _, at := range []float64{0.5, 1.5, 2.5, 3.5, 4.5, 100.5} {
		want := a.At(at) * c.At(at)
		if v := mc.At(at); math.Abs(v-want) > 1e-12 {
			t.Fatalf("Mul periodic At(%g) = %g, want %g", at, v, want)
		}
	}
}

func TestMin2(t *testing.T) {
	a := Constant(5)
	b := SquareWave(10, 2, 1, 1)
	m := Min2(a, b)
	if v := m.At(0.5); v != 5 {
		t.Fatalf("Min2 At(0.5) = %g, want 5", v)
	}
	if v := m.At(1.5); v != 2 {
		t.Fatalf("Min2 At(1.5) = %g, want 2", v)
	}
	// Constant that never binds returns the other profile's values.
	big := Constant(100)
	if v := Min2(big, b).At(0.2); v != 10 {
		t.Fatalf("Min2 with loose bound At(0.2) = %g, want 10", v)
	}
}

func TestMinMax(t *testing.T) {
	p := SquareWave(7, 3, 1, 2)
	if p.Min() != 3 || p.Max() != 7 {
		t.Fatalf("Min/Max = %g/%g, want 3/7", p.Min(), p.Max())
	}
}

func TestNegativeTimeTreatedAsZero(t *testing.T) {
	p := Episode(1, 0.5, 1, 2)
	if v := p.At(-5); v != 1 {
		t.Fatalf("At(-5) = %g, want 1", v)
	}
}

func BenchmarkTimeToDoConstant(b *testing.B) {
	p := Constant(2e9)
	for i := 0; i < b.N; i++ {
		_ = p.TimeToDo(0, 1e6)
	}
}

func BenchmarkTimeToDoSquareWave(b *testing.B) {
	p := SquareWave(2e9, 3e8, 5, 5)
	for i := 0; i < b.N; i++ {
		_ = p.TimeToDo(float64(i%10), 1e10)
	}
}
