package metrics

// Scheduler-introspection telemetry. A simrt.Probe accumulates raw
// observations during a run and flushes them here as a Sched aggregate;
// the scenario layer copies the aggregate into each cell's RunMetrics, the
// shard wire format carries it between nodes (plain JSON fields), and
// Merge folds per-cell aggregates into per-policy or per-result views.
// Every field is a sum or a maximum so merging stays exact; the derived
// rates (mean queue depth, PTT error) are methods over the sums.

import (
	"fmt"
	"io"
	"sort"
)

// StealEdge is one cell of the steal matrix: how many tasks a thief core
// took from a victim core's WSQ, split by task priority.
type StealEdge struct {
	Victim, Thief int
	Low, High     int64
}

// Sched is the merged scheduler-introspection telemetry of one or more
// runs: the per-core virtual-time breakdown, the steal matrix, queue-depth
// integrals, and the PTT prediction-vs-actual error sums.
type Sched struct {
	// Busy, Dispatch, Steal, Idle break each core's virtual time into
	// kernel work, dispatch windows, successful steal windows, and the
	// residual, in seconds. Idle is clamped at zero per run.
	Busy, Dispatch, Steal, Idle []float64
	// StealMatrix lists the non-zero victim → thief edges, victim-major.
	StealMatrix []StealEdge
	// Span sums the makespans of the merged runs — the denominator for
	// the time-weighted queue averages.
	Span float64
	// QueueSamples counts observed queue-state transitions; ReadySec and
	// CommittedSec integrate WSQ depth (ready tasks) and AQ depth
	// (committed assembly entries) over virtual time.
	QueueSamples int64
	ReadySec     float64
	CommittedSec float64
	MaxReady     int
	MaxCommitted int
	// PTTSamples counts completions whose place had a prior PTT estimate;
	// PTTErrSum accumulates |predicted−actual|/actual over them. The Tail
	// pair covers only the last quarter of each run's series, so a
	// converging table shows TailRelErr ≪ MeanRelErr.
	PTTSamples     int64
	PTTErrSum      float64
	PTTTailSamples int64
	PTTTailErrSum  float64
}

// SetSched attaches a run's scheduler telemetry to the collector.
func (c *Collector) SetSched(s *Sched) {
	c.mu.Lock()
	c.sched = s
	c.mu.Unlock()
}

// Sched returns the telemetry attached by SetSched, or nil.
func (c *Collector) Sched() *Sched {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sched
}

// TotalSteals sums the steal matrix (both priorities).
func (s *Sched) TotalSteals() int64 {
	var n int64
	for _, e := range s.StealMatrix {
		n += e.Low + e.High
	}
	return n
}

// MeanReady is the time-weighted mean number of ready tasks.
func (s *Sched) MeanReady() float64 {
	if s.Span <= 0 {
		return 0
	}
	return s.ReadySec / s.Span
}

// MeanCommitted is the time-weighted mean number of committed AQ entries.
func (s *Sched) MeanCommitted() float64 {
	if s.Span <= 0 {
		return 0
	}
	return s.CommittedSec / s.Span
}

// PTTMeanRelErr is the mean relative PTT prediction error over all
// observed completions.
func (s *Sched) PTTMeanRelErr() float64 {
	if s.PTTSamples == 0 {
		return 0
	}
	return s.PTTErrSum / float64(s.PTTSamples)
}

// PTTTailRelErr is the mean relative PTT prediction error over the last
// quarter of each merged run's completions.
func (s *Sched) PTTTailRelErr() float64 {
	if s.PTTTailSamples == 0 {
		return 0
	}
	return s.PTTTailErrSum / float64(s.PTTTailSamples)
}

// Clone returns a deep copy.
func (s *Sched) Clone() *Sched {
	if s == nil {
		return nil
	}
	out := *s
	out.Busy = append([]float64(nil), s.Busy...)
	out.Dispatch = append([]float64(nil), s.Dispatch...)
	out.Steal = append([]float64(nil), s.Steal...)
	out.Idle = append([]float64(nil), s.Idle...)
	out.StealMatrix = append([]StealEdge(nil), s.StealMatrix...)
	return &out
}

// Merge folds another aggregate into s. Per-core slices grow to the larger
// core count; the steal matrices merge edge-wise and stay victim-major.
func (s *Sched) Merge(o *Sched) {
	if o == nil {
		return
	}
	s.Busy = addInto(s.Busy, o.Busy)
	s.Dispatch = addInto(s.Dispatch, o.Dispatch)
	s.Steal = addInto(s.Steal, o.Steal)
	s.Idle = addInto(s.Idle, o.Idle)
	if len(o.StealMatrix) > 0 {
		type key struct{ v, t int }
		idx := make(map[key]int, len(s.StealMatrix)+len(o.StealMatrix))
		for i, e := range s.StealMatrix {
			idx[key{e.Victim, e.Thief}] = i
		}
		for _, e := range o.StealMatrix {
			if i, ok := idx[key{e.Victim, e.Thief}]; ok {
				s.StealMatrix[i].Low += e.Low
				s.StealMatrix[i].High += e.High
			} else {
				idx[key{e.Victim, e.Thief}] = len(s.StealMatrix)
				s.StealMatrix = append(s.StealMatrix, e)
			}
		}
		sort.Slice(s.StealMatrix, func(i, j int) bool {
			a, b := s.StealMatrix[i], s.StealMatrix[j]
			if a.Victim != b.Victim {
				return a.Victim < b.Victim
			}
			return a.Thief < b.Thief
		})
	}
	s.Span += o.Span
	s.QueueSamples += o.QueueSamples
	s.ReadySec += o.ReadySec
	s.CommittedSec += o.CommittedSec
	if o.MaxReady > s.MaxReady {
		s.MaxReady = o.MaxReady
	}
	if o.MaxCommitted > s.MaxCommitted {
		s.MaxCommitted = o.MaxCommitted
	}
	s.PTTSamples += o.PTTSamples
	s.PTTErrSum += o.PTTErrSum
	s.PTTTailSamples += o.PTTTailSamples
	s.PTTTailErrSum += o.PTTTailErrSum
}

// addInto sums b into a element-wise, growing a as needed.
func addInto(a, b []float64) []float64 {
	if len(b) > len(a) {
		grown := make([]float64, len(b))
		copy(grown, a)
		a = grown
	}
	for i, v := range b {
		a[i] += v
	}
	return a
}

// maxMatrixRows bounds the steal-matrix listing in WriteReport; fleets of
// 64+ cores have thousands of possible edges and the report is for humans.
const maxMatrixRows = 24

// WriteReport renders the aggregate as a human-readable schedule report:
// per-core utilization and time breakdown, the heaviest steal edges, queue
// pressure, and PTT convergence.
func (s *Sched) WriteReport(w io.Writer) {
	total := s.Span
	fmt.Fprintf(w, "per-core time breakdown (virtual time, %d cores, span %.6fs):\n", len(s.Busy), s.Span)
	fmt.Fprintf(w, "  %4s  %10s  %6s  %10s  %10s  %10s\n", "core", "busy", "util", "dispatch", "steal", "idle")
	for i := range s.Busy {
		var disp, steal, idle float64
		if i < len(s.Dispatch) {
			disp = s.Dispatch[i]
		}
		if i < len(s.Steal) {
			steal = s.Steal[i]
		}
		if i < len(s.Idle) {
			idle = s.Idle[i]
		}
		util := 0.0
		if total > 0 {
			util = s.Busy[i] / total
		}
		fmt.Fprintf(w, "  %4d  %10.6f  %5.1f%%  %10.6f  %10.6f  %10.6f\n",
			i, s.Busy[i], util*100, disp, steal, idle)
	}
	fmt.Fprintf(w, "steal matrix (victim -> thief, %d steals", s.TotalSteals())
	if len(s.StealMatrix) == 0 {
		fmt.Fprintf(w, "): none\n")
	} else {
		fmt.Fprintf(w, ", %d edges):\n", len(s.StealMatrix))
		edges := append([]StealEdge(nil), s.StealMatrix...)
		sort.Slice(edges, func(i, j int) bool {
			ni, nj := edges[i].Low+edges[i].High, edges[j].Low+edges[j].High
			if ni != nj {
				return ni > nj
			}
			if edges[i].Victim != edges[j].Victim {
				return edges[i].Victim < edges[j].Victim
			}
			return edges[i].Thief < edges[j].Thief
		})
		shown := edges
		if len(shown) > maxMatrixRows {
			shown = shown[:maxMatrixRows]
		}
		for _, e := range shown {
			fmt.Fprintf(w, "  C%-3d -> C%-3d  %6d low  %6d high\n", e.Victim, e.Thief, e.Low, e.High)
		}
		if len(edges) > len(shown) {
			fmt.Fprintf(w, "  (+%d more edges)\n", len(edges)-len(shown))
		}
	}
	fmt.Fprintf(w, "queues: mean ready %.2f (max %d), mean committed %.2f (max %d), %d transitions\n",
		s.MeanReady(), s.MaxReady, s.MeanCommitted(), s.MaxCommitted, s.QueueSamples)
	if s.PTTSamples > 0 {
		fmt.Fprintf(w, "ptt: %d predictions, mean rel err %.3f, tail rel err %.3f (last quarter)\n",
			s.PTTSamples, s.PTTMeanRelErr(), s.PTTTailRelErr())
	} else {
		fmt.Fprintf(w, "ptt: no predictions (policy does not use the PTT, or no repeat observations)\n")
	}
}
