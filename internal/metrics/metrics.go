// Package metrics collects execution statistics from the runtimes: per-core
// kernel work time (paper Figure 6), priority-task place distributions
// (Figure 5), per-iteration timings and place selections (Figure 9), and
// overall throughput (Figures 4, 7, 10).
package metrics

import (
	"sort"
	"sync"

	"dynasym/internal/ptt"
	"dynasym/internal/topology"
)

// maxDenseIter bounds the dense per-iteration index (well beyond the
// largest synthetic workload's layer count; ~8 MB of pointers at worst).
// Sparse tags above it fall back to a map, preserving the pre-dense
// behavior for arbitrary iteration numbers.
const maxDenseIter = 1 << 20

// Collector accumulates statistics for one run. It is safe for concurrent
// use; the simulated runtime calls it from one goroutine, the real runtime
// from many workers.
type Collector struct {
	topo *topology.Platform

	mu       sync.Mutex
	coreBusy []float64
	// placeAll and placeHigh count task executions per placeID. They are
	// dense slices over the platform's place table rather than maps:
	// TaskDone runs once per task on the simulation hot path, and a slice
	// increment is an order of magnitude cheaper than a map update.
	placeAll  []int64
	placeHigh []int64
	// byIter is indexed by iteration number (iterations are small and
	// dense in every built-in workload; nil entries are iterations never
	// seen). Aggregation uses compact (placeID, count) pairs — an
	// iteration touches few distinct places, and a linear scan over a
	// short pair slice beats a map assignment per task by a wide margin.
	// byIterSparse catches tags above maxDenseIter so arbitrary
	// iteration numbers still work. IterStats materializes the public
	// map form on readout.
	byIter       []*iterAgg
	byIterSparse map[int]*iterAgg
	tasksDone    int64
	makespan     float64
	// aggFree pools retired iterAggs (and their place-pair storage) across
	// Reset cycles so pooled runtimes reach a steady state with no
	// per-iteration allocations.
	aggFree []*iterAgg
	// sched is the scheduler-introspection aggregate a probe-enabled run
	// attaches at completion (see sched.go); nil when no probe ran.
	sched *Sched
}

// iterAgg is the collector's internal per-iteration accumulator.
type iterAgg struct {
	iter       int
	tasks      int64
	start, end float64
	places     []placeCount
}

// placeCount is one (placeID, executions) pair of an iteration.
type placeCount struct {
	id int
	n  int64
}

// newIterAgg allocates one per-iteration accumulator with its place pairs
// pre-sized so typical iterations (a few distinct places) never regrow the
// slice; the repeated doubling from zero was the collector's dominant
// allocation source on the simulation hot path.
func (c *Collector) newIterAgg(iter int, start, finish float64) *iterAgg {
	if n := len(c.aggFree); n > 0 {
		st := c.aggFree[n-1]
		c.aggFree[n-1] = nil
		c.aggFree = c.aggFree[:n-1]
		*st = iterAgg{iter: iter, start: start, end: finish, places: st.places[:0]}
		return st
	}
	return &iterAgg{
		iter:   iter,
		start:  start,
		end:    finish,
		places: make([]placeCount, 0, 16),
	}
}

// bump increments the count for a placeID.
func (a *iterAgg) bump(id int) {
	for i := range a.places {
		if a.places[i].id == id {
			a.places[i].n++
			return
		}
	}
	a.places = append(a.places, placeCount{id: id, n: 1})
}

// IterStat aggregates one application iteration (Figure 9).
type IterStat struct {
	Iter  int
	Tasks int64
	// Start and End are the earliest task start and latest task finish
	// observed for the iteration, so End-Start approximates the
	// iteration's wall time.
	Start, End float64
	// Places counts tasks per placeID within the iteration.
	Places map[int]int64
}

// NewCollector returns an empty collector for the platform.
func NewCollector(topo *topology.Platform) *Collector {
	nPlaces := len(topo.Places())
	return &Collector{
		topo:      topo,
		coreBusy:  make([]float64, topo.NumCores()),
		placeAll:  make([]int64, nPlaces),
		placeHigh: make([]int64, nPlaces),
	}
}

// Reset returns the collector to the observable state NewCollector(topo)
// produces while reusing its storage, including the per-iteration
// accumulators, which move to a freelist for the next run. The platform may
// differ from the one the collector was built with; pooled runtimes rebuild
// their topology per run.
func (c *Collector) Reset(topo *topology.Platform) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.topo = topo
	if n := topo.NumCores(); n != len(c.coreBusy) {
		c.coreBusy = make([]float64, n)
	} else {
		for i := range c.coreBusy {
			c.coreBusy[i] = 0
		}
	}
	if n := len(topo.Places()); n != len(c.placeAll) {
		c.placeAll = make([]int64, n)
		c.placeHigh = make([]int64, n)
	} else {
		for i := range c.placeAll {
			c.placeAll[i] = 0
			c.placeHigh[i] = 0
		}
	}
	for i, st := range c.byIter {
		if st != nil {
			c.aggFree = append(c.aggFree, st)
			c.byIter[i] = nil
		}
	}
	c.byIter = c.byIter[:0]
	for iter, st := range c.byIterSparse {
		c.aggFree = append(c.aggFree, st)
		delete(c.byIterSparse, iter)
	}
	c.tasksDone = 0
	c.makespan = 0
	c.sched = nil
}

// TaskDone records one completed task execution.
func (c *Collector) TaskDone(pl topology.Place, high bool, typ ptt.TypeID, iter int, start, finish float64) {
	c.TaskDoneID(c.topo.PlaceID(pl), pl, high, typ, iter, start, finish)
}

// TaskDoneID is TaskDone with the place's dense id already resolved — the
// simulated runtime resolves it once at dispatch and reuses it here.
func (c *Collector) TaskDoneID(id int, pl topology.Place, high bool, _ ptt.TypeID, iter int, start, finish float64) {
	span := finish - start
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tasksDone++
	c.placeAll[id]++
	if high {
		c.placeHigh[id]++
	}
	for i := 0; i < pl.Width; i++ {
		c.coreBusy[pl.Leader+i] += span
	}
	if iter >= 0 {
		var st *iterAgg
		if iter < maxDenseIter {
			for iter >= len(c.byIter) {
				c.byIter = append(c.byIter, nil)
			}
			if st = c.byIter[iter]; st == nil {
				st = c.newIterAgg(iter, start, finish)
				c.byIter[iter] = st
			}
		} else {
			if c.byIterSparse == nil {
				c.byIterSparse = make(map[int]*iterAgg)
			}
			if st = c.byIterSparse[iter]; st == nil {
				st = c.newIterAgg(iter, start, finish)
				c.byIterSparse[iter] = st
			}
		}
		st.tasks++
		if start < st.start {
			st.start = start
		}
		if finish > st.end {
			st.end = finish
		}
		st.bump(id)
	}
}

// SetMakespan records the total execution time of the run.
func (c *Collector) SetMakespan(t float64) {
	c.mu.Lock()
	c.makespan = t
	c.mu.Unlock()
}

// Makespan returns the recorded total execution time.
func (c *Collector) Makespan() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.makespan
}

// TasksDone returns the number of completed tasks.
func (c *Collector) TasksDone() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tasksDone
}

// Throughput returns completed tasks per second of makespan (the paper's
// headline metric), or 0 when no makespan was recorded.
func (c *Collector) Throughput() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.makespan <= 0 {
		return 0
	}
	return float64(c.tasksDone) / c.makespan
}

// CoreBusy returns the per-core accumulated kernel work time in seconds
// (excluding runtime activity and idleness, like the paper's Figure 6).
func (c *Collector) CoreBusy() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.coreBusy...)
}

// PlaceShare describes one execution place's share of task executions.
type PlaceShare struct {
	Place topology.Place
	Count int64
	Frac  float64
}

// PlaceHistogram returns the distribution of tasks over execution places,
// restricted to high-priority tasks when highOnly is set, sorted by
// descending count then place order. Fractions sum to 1 when any tasks
// were recorded.
func (c *Collector) PlaceHistogram(highOnly bool) []PlaceShare {
	c.mu.Lock()
	src := c.placeAll
	if highOnly {
		src = c.placeHigh
	}
	var total int64
	out := make([]PlaceShare, 0, len(src))
	places := c.topo.Places()
	for id, n := range src {
		if n == 0 {
			continue
		}
		out = append(out, PlaceShare{Place: places[id], Count: n})
		total += n
	}
	c.mu.Unlock()
	for i := range out {
		if total > 0 {
			out[i].Frac = float64(out[i].Count) / float64(total)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Place.Leader != out[j].Place.Leader {
			return out[i].Place.Leader < out[j].Place.Leader
		}
		return out[i].Place.Width < out[j].Place.Width
	})
	return out
}

// IterStats returns the per-iteration statistics ordered by iteration.
func (c *Collector) IterStats() []IterStat {
	c.mu.Lock()
	out := make([]IterStat, 0, len(c.byIter)+len(c.byIterSparse))
	materialize := func(st *iterAgg) {
		cp := IterStat{
			Iter:   st.iter,
			Tasks:  st.tasks,
			Start:  st.start,
			End:    st.end,
			Places: make(map[int]int64, len(st.places)),
		}
		for _, pc := range st.places {
			cp.Places[pc.id] = pc.n
		}
		out = append(out, cp)
	}
	for _, st := range c.byIter {
		if st != nil {
			materialize(st)
		}
	}
	for _, st := range c.byIterSparse {
		materialize(st)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Iter < out[j].Iter })
	return out
}

// Platform returns the platform the collector indexes places against.
func (c *Collector) Platform() *topology.Platform { return c.topo }
