// Package metrics collects execution statistics from the runtimes: per-core
// kernel work time (paper Figure 6), priority-task place distributions
// (Figure 5), per-iteration timings and place selections (Figure 9), and
// overall throughput (Figures 4, 7, 10).
package metrics

import (
	"sort"
	"sync"

	"dynasym/internal/ptt"
	"dynasym/internal/topology"
)

// Collector accumulates statistics for one run. It is safe for concurrent
// use; the simulated runtime calls it from one goroutine, the real runtime
// from many workers.
type Collector struct {
	topo *topology.Platform

	mu        sync.Mutex
	coreBusy  []float64
	placeAll  map[int]int64 // placeID → tasks executed there
	placeHigh map[int]int64 // placeID → high-priority tasks executed there
	byIter    map[int]*IterStat
	tasksDone int64
	makespan  float64
}

// IterStat aggregates one application iteration (Figure 9).
type IterStat struct {
	Iter  int
	Tasks int64
	// Start and End are the earliest task start and latest task finish
	// observed for the iteration, so End-Start approximates the
	// iteration's wall time.
	Start, End float64
	// Places counts tasks per placeID within the iteration.
	Places map[int]int64
}

// NewCollector returns an empty collector for the platform.
func NewCollector(topo *topology.Platform) *Collector {
	return &Collector{
		topo:      topo,
		coreBusy:  make([]float64, topo.NumCores()),
		placeAll:  make(map[int]int64),
		placeHigh: make(map[int]int64),
		byIter:    make(map[int]*IterStat),
	}
}

// TaskDone records one completed task execution.
func (c *Collector) TaskDone(pl topology.Place, high bool, _ ptt.TypeID, iter int, start, finish float64) {
	id := c.topo.PlaceID(pl)
	span := finish - start
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tasksDone++
	c.placeAll[id]++
	if high {
		c.placeHigh[id]++
	}
	for i := 0; i < pl.Width; i++ {
		c.coreBusy[pl.Leader+i] += span
	}
	if iter >= 0 {
		st := c.byIter[iter]
		if st == nil {
			st = &IterStat{Iter: iter, Start: start, End: finish, Places: make(map[int]int64)}
			c.byIter[iter] = st
		}
		st.Tasks++
		if start < st.Start {
			st.Start = start
		}
		if finish > st.End {
			st.End = finish
		}
		st.Places[id]++
	}
}

// SetMakespan records the total execution time of the run.
func (c *Collector) SetMakespan(t float64) {
	c.mu.Lock()
	c.makespan = t
	c.mu.Unlock()
}

// Makespan returns the recorded total execution time.
func (c *Collector) Makespan() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.makespan
}

// TasksDone returns the number of completed tasks.
func (c *Collector) TasksDone() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tasksDone
}

// Throughput returns completed tasks per second of makespan (the paper's
// headline metric), or 0 when no makespan was recorded.
func (c *Collector) Throughput() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.makespan <= 0 {
		return 0
	}
	return float64(c.tasksDone) / c.makespan
}

// CoreBusy returns the per-core accumulated kernel work time in seconds
// (excluding runtime activity and idleness, like the paper's Figure 6).
func (c *Collector) CoreBusy() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.coreBusy...)
}

// PlaceShare describes one execution place's share of task executions.
type PlaceShare struct {
	Place topology.Place
	Count int64
	Frac  float64
}

// PlaceHistogram returns the distribution of tasks over execution places,
// restricted to high-priority tasks when highOnly is set, sorted by
// descending count then place order. Fractions sum to 1 when any tasks
// were recorded.
func (c *Collector) PlaceHistogram(highOnly bool) []PlaceShare {
	c.mu.Lock()
	src := c.placeAll
	if highOnly {
		src = c.placeHigh
	}
	var total int64
	out := make([]PlaceShare, 0, len(src))
	places := c.topo.Places()
	for id, n := range src {
		out = append(out, PlaceShare{Place: places[id], Count: n})
		total += n
	}
	c.mu.Unlock()
	for i := range out {
		if total > 0 {
			out[i].Frac = float64(out[i].Count) / float64(total)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Place.Leader != out[j].Place.Leader {
			return out[i].Place.Leader < out[j].Place.Leader
		}
		return out[i].Place.Width < out[j].Place.Width
	})
	return out
}

// IterStats returns the per-iteration statistics ordered by iteration.
func (c *Collector) IterStats() []IterStat {
	c.mu.Lock()
	out := make([]IterStat, 0, len(c.byIter))
	for _, st := range c.byIter {
		cp := *st
		cp.Places = make(map[int]int64, len(st.Places))
		for k, v := range st.Places {
			cp.Places[k] = v
		}
		out = append(out, cp)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Iter < out[j].Iter })
	return out
}

// Platform returns the platform the collector indexes places against.
func (c *Collector) Platform() *topology.Platform { return c.topo }
