package metrics

import (
	"math"
	"sync"
	"testing"

	"dynasym/internal/topology"
)

func TestThroughputAndMakespan(t *testing.T) {
	c := NewCollector(topology.TX2())
	for i := 0; i < 10; i++ {
		c.TaskDone(topology.Place{Leader: 0, Width: 1}, false, 0, -1, float64(i), float64(i)+0.5)
	}
	c.SetMakespan(10)
	if c.TasksDone() != 10 {
		t.Fatalf("tasks = %d", c.TasksDone())
	}
	if got := c.Throughput(); got != 1 {
		t.Fatalf("throughput = %g, want 1", got)
	}
	if c.Makespan() != 10 {
		t.Fatalf("makespan = %g", c.Makespan())
	}
}

func TestCoreBusyAccumulatesPerMember(t *testing.T) {
	c := NewCollector(topology.TX2())
	c.TaskDone(topology.Place{Leader: 2, Width: 4}, false, 0, -1, 0, 2)
	busy := c.CoreBusy()
	for core := 2; core <= 5; core++ {
		if busy[core] != 2 {
			t.Fatalf("core %d busy %g, want 2", core, busy[core])
		}
	}
	if busy[0] != 0 || busy[1] != 0 {
		t.Fatal("non-member cores accumulated time")
	}
}

func TestPlaceHistogram(t *testing.T) {
	c := NewCollector(topology.TX2())
	hi := topology.Place{Leader: 1, Width: 1}
	lo := topology.Place{Leader: 2, Width: 2}
	for i := 0; i < 3; i++ {
		c.TaskDone(hi, true, 0, -1, 0, 1)
	}
	c.TaskDone(lo, false, 0, -1, 0, 1)
	all := c.PlaceHistogram(false)
	if len(all) != 2 || all[0].Place != hi || all[0].Count != 3 {
		t.Fatalf("all hist = %+v", all)
	}
	if math.Abs(all[0].Frac-0.75) > 1e-12 {
		t.Fatalf("frac = %g", all[0].Frac)
	}
	high := c.PlaceHistogram(true)
	if len(high) != 1 || high[0].Count != 3 || high[0].Frac != 1 {
		t.Fatalf("high hist = %+v", high)
	}
}

func TestIterStats(t *testing.T) {
	c := NewCollector(topology.TX2())
	c.TaskDone(topology.Place{Leader: 0, Width: 1}, false, 0, 1, 2.0, 2.5)
	c.TaskDone(topology.Place{Leader: 1, Width: 1}, false, 0, 1, 1.5, 2.2)
	c.TaskDone(topology.Place{Leader: 0, Width: 1}, false, 0, 0, 0.0, 1.0)
	st := c.IterStats()
	if len(st) != 2 || st[0].Iter != 0 || st[1].Iter != 1 {
		t.Fatalf("iters = %+v", st)
	}
	if st[1].Start != 1.5 || st[1].End != 2.5 || st[1].Tasks != 2 {
		t.Fatalf("iter 1 = %+v", st[1])
	}
	if st[1].Places[c.Platform().PlaceID(topology.Place{Leader: 0, Width: 1})] != 1 {
		t.Fatal("iter place counts wrong")
	}
}

func TestNegativeIterIgnored(t *testing.T) {
	c := NewCollector(topology.TX2())
	c.TaskDone(topology.Place{Leader: 0, Width: 1}, false, 0, -1, 0, 1)
	if len(c.IterStats()) != 0 {
		t.Fatal("iter -1 recorded")
	}
}

func TestConcurrentTaskDone(t *testing.T) {
	c := NewCollector(topology.TX2())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.TaskDone(topology.Place{Leader: 0, Width: 1}, i%2 == 0, 0, i%4, 0, 1)
			}
		}()
	}
	wg.Wait()
	if c.TasksDone() != 4000 {
		t.Fatalf("tasks = %d, want 4000", c.TasksDone())
	}
}

func TestZeroMakespanThroughput(t *testing.T) {
	c := NewCollector(topology.TX2())
	if c.Throughput() != 0 {
		t.Fatal("throughput without makespan should be 0")
	}
}

func TestSparseIterFallsBackToMap(t *testing.T) {
	c := NewCollector(topology.TX2())
	sparse := maxDenseIter + 1_000_000_000 // far beyond the dense range
	c.TaskDone(topology.Place{Leader: 0, Width: 1}, false, 0, 2, 0.0, 1.0)
	c.TaskDone(topology.Place{Leader: 0, Width: 1}, false, 0, sparse, 1.0, 2.0)
	c.TaskDone(topology.Place{Leader: 1, Width: 1}, false, 0, sparse, 1.5, 2.5)
	st := c.IterStats()
	if len(st) != 2 || st[0].Iter != 2 || st[1].Iter != sparse {
		t.Fatalf("iters = %+v", st)
	}
	if st[1].Tasks != 2 || st[1].Start != 1.0 || st[1].End != 2.5 {
		t.Fatalf("sparse iter = %+v", st[1])
	}
	if len(c.byIter) > maxDenseIter/1024 {
		t.Fatalf("sparse tag grew the dense index to %d entries", len(c.byIter))
	}
}
