// Package simrt executes task graphs on the simulated platform.
//
// It reimplements the XiTAO execution protocol the paper builds on
// (Section 4.1.2) as a deterministic state machine over the discrete-event
// engine:
//
//   - each core owns a Work-Stealing Queue (WSQ) of ready tasks and a FIFO
//     Assembly Queue (AQ) of committed moldable executions;
//   - when a task becomes ready its wake-time placement picks a WSQ (high
//     priority tasks are routed by the policy, low priority tasks stay on
//     the waking worker for data reuse);
//   - a worker that dequeues (or steals) a task runs the policy's dispatch
//     decision, then inserts the resulting assembly into the AQs of every
//     member core of the chosen place;
//   - an assembly starts when all members have arrived and finishes when
//     the machine model says the slowest member is done; the leader's
//     observed span updates the task type's Performance Trace Table;
//   - high-priority tasks are not stealable (unless the policy is from the
//     random work-stealing family), exactly like the paper.
//
// Virtual time, stealing victims and measurement jitter are all
// deterministic functions of the configuration seed.
//
// # Event kinds
//
// The runtime drives the engine through sim's typed, allocation-free event
// API. Its kind table:
//
//	kind       receiver    meaning
//	--------   ---------   ------------------------------------------
//	evStep     coreState   the core takes its next scheduler action
//	                       (join assembly, dispatch, or steal)
//	evAsmDone  assembly    the machine model's finish time arrived;
//	                       release members, update PTT, wake deps
//
// Event times carry the payload: an evAsmDone's `at` is the assembly's
// finish time. Only cold paths (execution-hook deliveries) use the engine's
// closure API.
//
// # Steady-state allocation behavior
//
// The hot loops are allocation-free: assemblies are pooled per runtime,
// WSQs and AQs are reusable ring buffers, the policy Context is a reused
// scratch, wakeups touch only the idle-core bitmap, and typed events live
// by value in the engine's heap slice. The allocation-regression tests in
// alloc_test.go hold this property in place.
package simrt

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/machine"
	"dynasym/internal/metrics"
	"dynasym/internal/ptt"
	"dynasym/internal/sim"
	"dynasym/internal/topology"
	"dynasym/internal/trace"
	"dynasym/internal/xrand"
)

// ExecHook lets a workload take over the execution of specific tasks (used
// by the distributed Heat workload for network boundary exchanges). If the
// hook recognizes the task it must eventually call deliver exactly once
// with the absolute finish time (≥ start) and return true; returning false
// falls back to the machine model.
type ExecHook func(rt *Runtime, t *dag.Task, pl topology.Place, start float64, deliver func(finish float64)) bool

// Config configures a simulated runtime instance.
type Config struct {
	// Topo is the platform this runtime schedules on. Required.
	Topo *topology.Platform
	// Model provides task durations. Required (build with machine.New).
	Model *machine.Model
	// Policy is the scheduling policy. Required.
	Policy core.Policy
	// Alpha is the PTT new-observation weight; <= 0 selects the paper's
	// 1/5 default.
	Alpha float64
	// Seed drives all randomness (stealing, jitter).
	Seed uint64
	// Collector receives metrics; nil allocates a private one.
	Collector *metrics.Collector
	// Registry supplies pre-trained trace tables; nil allocates fresh
	// ones.
	Registry *ptt.Registry
	// Engine lets several runtimes share one virtual clock (distributed
	// experiments); nil allocates a private engine.
	Engine *sim.Engine
	// Hook optionally takes over execution of selected tasks.
	Hook ExecHook
	// Trace, when non-nil, records every task execution for post-mortem
	// visualization (see internal/trace).
	Trace *trace.Recorder
	// Probe, when non-nil, records scheduler introspection — per-core time
	// breakdown, the steal matrix, queue-depth samples, PTT
	// prediction-vs-actual error (see probe.go). Pure observation: a
	// probed run is bit-identical to an unprobed one, and a nil Probe
	// costs one pointer check per hook site.
	Probe *Probe

	// DispatchCost is the virtual time a worker spends per dispatch
	// (dequeue + placement decision + AQ insertion). Default 0.2 µs.
	DispatchCost float64
	// StealCost is the virtual time for one steal attempt. Default 1 µs.
	StealCost float64
	// WakeLatency is the delay between work appearing and an idle core
	// noticing. Default 0.5 µs.
	WakeLatency float64
	// PreemptProb is the probability that one task execution absorbs a
	// short isolated system event (OS tick, interrupt); such outliers are
	// what the paper's weighted PTT update is designed to absorb.
	// Default 0.02; negative disables.
	PreemptProb float64
	// PreemptMin/PreemptMax bound the uniformly drawn preemption delay in
	// seconds. Defaults 0.1 ms and 0.5 ms (timer ticks and daemon blips
	// on a busy embedded board).
	PreemptMin, PreemptMax float64
	// PollDelay is how long an idle worker waits before probing for work
	// that appeared on another core's queue (idle workers poll rather
	// than receive targeted wakeups, like XiTAO's spin-steal loop with
	// yields). Default 20 µs.
	PollDelay float64
	// RunBodies makes the simulator execute task bodies (at zero virtual
	// cost) so applications compute real results under simulated
	// scheduling — a functional simulation. Durations still come from
	// the machine model. Member bodies run concurrently (they may
	// synchronize internally), so floating-point reduction order — but
	// nothing else — may vary between runs.
	RunBodies bool
}

type coreStateKind int32

const (
	stIdle coreStateKind = iota
	stScheduled
	stBusy
)

// Typed event kinds (see the package comment's kind table).
const (
	evStep sim.EventKind = iota
	evAsmDone
)

type assembly struct {
	rt      *Runtime
	tref    int32 // packed task reference (see soa.go)
	place   topology.Place
	placeID int32 // dense id of place, resolved once at dispatch
	arrived int
	start   float64
	finish  float64 // estimated, for load queries; 0 until started
}

// HandleEvent completes the assembly at its scheduled finish time.
func (a *assembly) HandleEvent(_ sim.EventKind, at float64) {
	a.rt.completeAssembly(a, at)
}

type coreState struct {
	id    int
	rt    *Runtime
	state coreStateKind
	wsq   deque
	aq    asmQueue
	cur   *assembly
	rng   *xrand.RNG

	steals       int64
	failedSteals int64
	dispatches   int64
}

// HandleEvent performs the core's next scheduler action.
func (c *coreState) HandleEvent(sim.EventKind, float64) { c.rt.step(c) }

// Runtime is one simulated runtime instance. Not safe for concurrent use;
// everything runs on the engine's goroutine.
type Runtime struct {
	cfg      Config
	engine   *sim.Engine
	topo     *topology.Platform
	model    *machine.Model
	policy   core.Policy
	reg      *ptt.Registry
	coll     *metrics.Collector
	rr       atomic.Uint64
	cores    []*coreState
	graph    *dag.Graph
	root     *xrand.RNG
	finished bool
	makespan float64

	// idle is a bitmap over core ids mirroring state == stIdle exactly,
	// so wakeTask pokes only idle workers — O(idle) instead of a scan of
	// every core per wake, which dominated at scaleout core counts.
	idle []uint64
	// wsqAny and wsqLow mirror, per core, wsq.Len() > 0 and
	// wsq.LowLen() > 0. The steal sweep consults the bitmap matching the
	// policy's priority regime, so a failed sweep costs a few word scans
	// instead of probing every core's deque.
	wsqAny []uint64
	wsqLow []uint64
	// asmFree pools assembly records; completed assemblies are recycled
	// so steady-state dispatch allocates nothing.
	asmFree []*assembly
	// ctxScratch is the reused policy-decision context (policies consume
	// it synchronously and must not retain it).
	ctxScratch core.Context
	// loadFn is loadEstimate bound once; a fresh method value per
	// decision would allocate.
	loadFn func(core int) float64
	// tblCache memoizes Registry.Get per task type (stable pointers).
	tblCache []*ptt.Table
	// soa mirrors per-task scheduling state into dense slices (see soa.go).
	soa taskSoA
	// prioSteal and usesPTT cache the policy's constant traits; the hot
	// loop consults them several times per event and an interface call per
	// consult is measurable at scale-out event rates.
	prioSteal bool
	usesPTT   bool
	// privEngine/privReg/privColl record which shared components the runtime
	// allocated itself (the matching Config field was nil), so Reset knows
	// whether it owns them and may recycle them in place.
	privEngine bool
	privReg    bool
	privColl   bool
}

// validateConfig checks the required fields and fills in the defaults,
// mutating cfg in place. New and Reset share it so a reset runtime accepts
// exactly the configurations a fresh one would.
func validateConfig(cfg *Config) error {
	if cfg.Topo == nil {
		return fmt.Errorf("simrt: Config.Topo is required")
	}
	if cfg.Model == nil {
		return fmt.Errorf("simrt: Config.Model is required")
	}
	if cfg.Policy == nil {
		return fmt.Errorf("simrt: Config.Policy is required")
	}
	if cfg.Model.Platform() != cfg.Topo {
		return fmt.Errorf("simrt: Model built for a different platform")
	}
	if cfg.DispatchCost <= 0 {
		cfg.DispatchCost = 0.2e-6
	}
	if cfg.StealCost <= 0 {
		cfg.StealCost = 1e-6
	}
	if cfg.WakeLatency <= 0 {
		cfg.WakeLatency = 0.5e-6
	}
	if cfg.PreemptProb == 0 {
		cfg.PreemptProb = 0.02
	}
	if cfg.PreemptProb < 0 {
		cfg.PreemptProb = 0
	}
	if cfg.PreemptMin <= 0 {
		cfg.PreemptMin = 0.1e-3
	}
	if cfg.PreemptMax <= cfg.PreemptMin {
		cfg.PreemptMax = 0.5e-3
	}
	if cfg.PollDelay <= 0 {
		cfg.PollDelay = 20e-6
	}
	return nil
}

// New validates the configuration and builds a runtime.
func New(cfg Config) (*Runtime, error) {
	if err := validateConfig(&cfg); err != nil {
		return nil, err
	}
	rt := &Runtime{
		cfg:    cfg,
		engine: cfg.Engine,
		topo:   cfg.Topo,
		model:  cfg.Model,
		policy: cfg.Policy,
		reg:    cfg.Registry,
		coll:   cfg.Collector,
		root:   xrand.New(cfg.Seed),
	}
	if rt.engine == nil {
		rt.engine = sim.New()
		rt.privEngine = true
	}
	if rt.reg == nil {
		rt.reg = ptt.NewRegistry(cfg.Topo, cfg.Alpha)
		rt.privReg = true
	}
	if rt.coll == nil {
		rt.coll = metrics.NewCollector(cfg.Topo)
		rt.privColl = true
	}
	rt.prioSteal = cfg.Policy.AllowPrioritySteal()
	rt.usesPTT = cfg.Policy.UsesPTT()
	rt.loadFn = rt.loadEstimate
	rt.ctxScratch = core.Context{Topo: rt.topo, RR: &rt.rr, Load: rt.loadFn}
	rt.buildCores()
	if cfg.Probe != nil {
		cfg.Probe.reset(len(rt.cores))
	}
	return rt, nil
}

// buildCores (re)allocates the per-core state, bitmaps, and assembly pool
// for the current topology. The per-core RNGs are split off the root in
// ascending core order; New and Reset both rely on that draw sequence being
// identical.
func (rt *Runtime) buildCores() {
	rt.cores = make([]*coreState, rt.topo.NumCores())
	words := (rt.topo.NumCores() + 63) / 64
	rt.idle = make([]uint64, words)
	rt.wsqAny = make([]uint64, words)
	rt.wsqLow = make([]uint64, words)
	for i := range rt.cores {
		c := &coreState{id: i, rt: rt, rng: rt.root.Split()}
		c.wsq.reserve(8)
		c.aq.reserve(8)
		rt.cores[i] = c
		rt.markIdle(i)
	}
	// Warm the assembly pool so steady-state dispatch never allocates: the
	// number of live assemblies is bounded by the queued + running set,
	// which rarely exceeds a couple per core.
	rt.asmFree = make([]*assembly, 2*len(rt.cores))
	for i := range rt.asmFree {
		rt.asmFree[i] = &assembly{}
	}
}

// Reset returns the runtime to the observable state New(cfg) produces while
// reusing its allocations — core states, queue rings, the assembly pool,
// per-core RNGs, and (when privately owned) the engine, registry, and
// collector. Scenario runners execute thousands of short cells back to
// back; rebuilding the runtime per cell dominated their allocation profile.
//
// The reused runtime is bit-identical to a fresh one: the RNG reseed and
// per-core splits replay New's exact draw sequence, and the PTT generation
// counters only ever advance, so no stale cached decision can survive.
// Reset accepts a different topology/policy/seed than the previous run
// (shape changes rebuild the per-core state).
func (rt *Runtime) Reset(cfg Config) error {
	if err := validateConfig(&cfg); err != nil {
		return err
	}
	// Shared components: adopt the caller's when provided, recycle our own
	// private ones otherwise. A runtime that previously adopted a shared
	// component must not reset it — the caller owns it — so it allocates a
	// fresh private one instead.
	if cfg.Engine != nil {
		rt.engine = cfg.Engine
		rt.privEngine = false
	} else if rt.privEngine {
		rt.engine.Reset()
	} else {
		rt.engine = sim.New()
		rt.privEngine = true
	}
	if cfg.Registry != nil {
		rt.reg = cfg.Registry
		rt.privReg = false
	} else if rt.privReg {
		rt.reg.Reset(cfg.Topo, cfg.Alpha)
	} else {
		rt.reg = ptt.NewRegistry(cfg.Topo, cfg.Alpha)
		rt.privReg = true
	}
	if cfg.Collector != nil {
		rt.coll = cfg.Collector
		rt.privColl = false
	} else if rt.privColl {
		rt.coll.Reset(cfg.Topo)
	} else {
		rt.coll = metrics.NewCollector(cfg.Topo)
		rt.privColl = true
	}
	sameShape := rt.topo != nil && len(rt.cores) == cfg.Topo.NumCores()
	rt.cfg = cfg
	rt.topo = cfg.Topo
	rt.model = cfg.Model
	rt.policy = cfg.Policy
	rt.prioSteal = cfg.Policy.AllowPrioritySteal()
	rt.usesPTT = cfg.Policy.UsesPTT()
	rt.rr.Store(0)
	rt.root.Reseed(cfg.Seed)
	if sameShape {
		for i := range rt.idle {
			rt.idle[i] = 0
			rt.wsqAny[i] = 0
			rt.wsqLow[i] = 0
		}
		for _, c := range rt.cores {
			c.state = stIdle
			c.cur = nil
			c.wsq.clear()
			c.aq.clear()
			rt.root.SplitInto(c.rng)
			c.steals = 0
			c.failedSteals = 0
			c.dispatches = 0
			rt.markIdle(c.id)
		}
	} else {
		rt.buildCores()
	}
	// The table cache is keyed by type id against the (possibly replaced)
	// registry; drop every entry in place.
	for i := range rt.tblCache {
		rt.tblCache[i] = nil
	}
	rt.ctxScratch = core.Context{Topo: rt.topo, RR: &rt.rr, Load: rt.loadFn}
	// The task mirror is rebuilt at Start; release the previous graph's
	// task pointers now so Reset does not pin it.
	for i := range rt.soa.ptr {
		rt.soa.ptr[i] = nil
	}
	rt.soa.ptr = rt.soa.ptr[:0]
	rt.graph = nil
	rt.finished = false
	rt.makespan = 0
	if cfg.Probe != nil {
		cfg.Probe.reset(len(rt.cores))
	}
	return nil
}

// markIdle sets a core's bit in the idle bitmap.
func (rt *Runtime) markIdle(core int) { rt.idle[core>>6] |= 1 << (uint(core) & 63) }

// clearIdle clears a core's bit in the idle bitmap.
func (rt *Runtime) clearIdle(core int) { rt.idle[core>>6] &^= 1 << (uint(core) & 63) }

// updateWSQBits refreshes a core's stealable-work bits after any WSQ
// mutation. Every wsq push/pop site must call it.
func (rt *Runtime) updateWSQBits(c *coreState) {
	w, b := c.id>>6, uint64(1)<<(uint(c.id)&63)
	if c.wsq.Len() > 0 {
		rt.wsqAny[w] |= b
	} else {
		rt.wsqAny[w] &^= b
	}
	if c.wsq.LowLen() > 0 {
		rt.wsqLow[w] |= b
	} else {
		rt.wsqLow[w] &^= b
	}
}

// nextSetBit returns the first set bit index in [from, limit), or -1.
func nextSetBit(bm []uint64, from, limit int) int {
	if from >= limit {
		return -1
	}
	wi := from >> 6
	word := bm[wi] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			if idx := wi<<6 + bits.TrailingZeros64(word); idx < limit {
				return idx
			}
			return -1
		}
		wi++
		if wi<<6 >= limit {
			return -1
		}
		word = bm[wi]
	}
}

// findVictim returns the first core at or after start (cyclically, skipping
// self) whose bit is set, or nil. This visits cores in exactly the order
// the O(cores) probe sweep used, so steal victims are unchanged.
func (rt *Runtime) findVictim(bm []uint64, start, self int) *coreState {
	n := len(rt.cores)
	idx := nextSetBit(bm, start, n)
	if idx == self {
		idx = nextSetBit(bm, idx+1, n)
	}
	if idx < 0 {
		idx = nextSetBit(bm, 0, start)
		if idx == self {
			idx = nextSetBit(bm, idx+1, start)
		}
	}
	if idx < 0 {
		return nil
	}
	return rt.cores[idx]
}

// Engine returns the runtime's event engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.engine }

// Collector returns the runtime's metrics collector.
func (rt *Runtime) Collector() *metrics.Collector { return rt.coll }

// Registry returns the runtime's PTT registry.
func (rt *Runtime) Registry() *ptt.Registry { return rt.reg }

// Policy returns the runtime's scheduling policy.
func (rt *Runtime) Policy() core.Policy { return rt.policy }

// Finished reports whether the graph drained.
func (rt *Runtime) Finished() bool { return rt.finished }

// Makespan returns the virtual time at which the last task finished.
func (rt *Runtime) Makespan() float64 { return rt.makespan }

// Run executes the graph to completion on a private engine and returns the
// collector. It fails if the configuration shares an engine (use Start and
// drive the engine yourself) or if execution stalls.
func (rt *Runtime) Run(g *dag.Graph) (*metrics.Collector, error) {
	if err := rt.Start(g); err != nil {
		return nil, err
	}
	rt.engine.Run()
	if !rt.finished {
		out := g.Outstanding()
		if rt.soa.static {
			out = int64(rt.soa.remaining)
		}
		return nil, fmt.Errorf("simrt: execution stalled with %d tasks outstanding (possible dependency deadlock)", out)
	}
	return rt.coll, nil
}

// Start wires the graph into the runtime and schedules the initial events.
// The caller is responsible for running the engine (shared-engine mode).
func (rt *Runtime) Start(g *dag.Graph) error {
	if rt.graph != nil {
		return fmt.Errorf("simrt: runtime already started")
	}
	rt.graph = g
	ready := g.Start()
	if len(ready) == 0 && g.Outstanding() > 0 {
		return fmt.Errorf("simrt: graph has %d tasks but none ready (cycle?)", g.Outstanding())
	}
	rt.buildSoA(g)
	for _, t := range ready {
		rt.wakeTask(rt.tref(t), 0)
	}
	if g.Outstanding() == 0 {
		rt.finished = true
		rt.coll.SetMakespan(0)
		if p := rt.cfg.Probe; p != nil {
			p.flushTo(rt.coll, 0)
		}
		return nil
	}
	for _, c := range rt.cores {
		rt.scheduleStep(c, rt.cfg.WakeLatency)
	}
	return nil
}

// scheduleStep queues a step for an idle core after delay seconds.
func (rt *Runtime) scheduleStep(c *coreState, delay float64) {
	if c.state != stIdle {
		return
	}
	c.state = stScheduled
	rt.clearIdle(c.id)
	rt.engine.AfterEvent(delay, c, evStep)
}

// table returns the PTT for a task type, or nil when the policy does not
// use a model. Tables are resolved through the registry once per type and
// then served from a local slice: registry table pointers are stable, and
// the cache avoids the registry's atomic-load fast path on the two policy
// decisions of every task.
func (rt *Runtime) table(id ptt.TypeID) *ptt.Table {
	if !rt.usesPTT {
		return nil
	}
	if int(id) < len(rt.tblCache) {
		if t := rt.tblCache[id]; t != nil {
			return t
		}
	} else {
		grown := make([]*ptt.Table, id+1)
		copy(grown, rt.tblCache)
		rt.tblCache = grown
	}
	t := rt.reg.Get(id)
	rt.tblCache[id] = t
	return t
}

// ctx refills the runtime's scratch decision context. The invariant fields
// (Topo, RR, Load) are set once in New; only the per-decision fields are
// written here. Policies consume the context within the
// WakePlace/DispatchPlace call, so one scratch per runtime suffices and the
// hot path stays allocation-free.
func (rt *Runtime) ctx(self int, tr int32) *core.Context {
	c := &rt.ctxScratch
	c.Self = self
	c.High = tr&1 != 0
	typ := rt.soa.typ[tr>>1]
	if c.Type != typ || c.Table == nil {
		c.Type = typ
		c.Table = rt.table(typ)
	}
	c.Rand = rt.cores[self].rng
	return c
}

// loadEstimate reports how many seconds from now the core is expected to be
// occupied (assembly remainder only; queued work is not counted).
func (rt *Runtime) loadEstimate(coreID int) float64 {
	c := rt.cores[coreID]
	if c.cur == nil || c.cur.finish == 0 {
		return 0
	}
	d := c.cur.finish - rt.engine.Now()
	if d < 0 {
		return 0
	}
	return d
}

// wakeTask performs the wake-time placement of a newly ready task: the
// policy may route it (high-priority tasks), otherwise it lands on the
// waking worker's WSQ. Idle cores are then given a chance to steal.
func (rt *Runtime) wakeTask(tr int32, waker int) {
	leader, ok := rt.policy.WakePlace(rt.ctx(waker, tr))
	if !ok {
		leader = waker
	}
	target := rt.cores[leader]
	target.wsq.PushBottom(tr)
	rt.updateWSQBits(target)
	if p := rt.cfg.Probe; p != nil {
		p.queueDelta(rt.engine.Now(), 1, 0)
	}
	rt.scheduleStep(target, rt.cfg.WakeLatency)
	if tr&1 == 0 || rt.prioSteal {
		// Idle workers discover remote work by polling, with a per-core
		// stagger so probes do not stampede. The bitmap walk visits
		// exactly the idle cores in ascending id order (the target went
		// non-idle above), so a wake costs O(idle), not O(cores).
		for wi, word := range rt.idle {
			for word != 0 {
				c := rt.cores[wi<<6+bits.TrailingZeros64(word)]
				word &= word - 1
				rt.scheduleStep(c, rt.cfg.PollDelay*(0.5+c.rng.Float64()))
			}
		}
	}
}

// step performs one worker action: join the head assembly, dispatch one
// local task, or attempt one steal. Cores go idle when nothing is
// available; new work wakes them.
func (rt *Runtime) step(c *coreState) {
	if c.state != stScheduled {
		panic(fmt.Sprintf("simrt: step on core %d in state %d", c.id, c.state))
	}
	// The core stays in stScheduled while acting, so wake attempts during
	// dispatch (e.g. the core inserting an assembly into its own AQ) are
	// no-ops instead of duplicate step events.

	// 0. Criticality-aware policies dispatch waiting high-priority tasks
	// before anything else, so a critical task routed to this worker is
	// never stranded behind committed low-priority assemblies.
	if !rt.prioSteal {
		if t, ok := c.wsq.PopHigh(); ok {
			rt.updateWSQBits(c)
			if p := rt.cfg.Probe; p != nil {
				p.queueDelta(rt.engine.Now(), -1, 0)
				p.dispatched(c.id, rt.cfg.DispatchCost)
			}
			rt.dispatch(c, t)
			c.dispatches++
			rt.engine.AfterEvent(rt.cfg.DispatchCost, c, evStep)
			return
		}
	}

	// 1. Committed assemblies first: another worker may be waiting on us.
	if a := c.aq.PopFront(); a != nil {
		if p := rt.cfg.Probe; p != nil {
			p.queueDelta(rt.engine.Now(), 0, -1)
		}
		c.state = stBusy
		c.cur = a
		a.arrived++
		if a.arrived == a.place.Width {
			rt.startAssembly(a)
		}
		return
	}

	// 2. Local ready tasks. Criticality-aware policies run high-priority
	// tasks first; the RWS family is priority-oblivious.
	if t, ok := c.wsq.PopBottom(!rt.prioSteal); ok {
		rt.updateWSQBits(c)
		if p := rt.cfg.Probe; p != nil {
			p.queueDelta(rt.engine.Now(), -1, 0)
			p.dispatched(c.id, rt.cfg.DispatchCost)
		}
		rt.dispatch(c, t)
		c.dispatches++
		rt.engine.AfterEvent(rt.cfg.DispatchCost, c, evStep)
		return
	}

	// 3. Steal: sweep the other cores from a pseudo-random start and take
	// the first victim's oldest stealable task — the event-level
	// equivalent of a spinning thief's rapid successive probes. The
	// stealable-work bitmaps pick the same victim the per-core probe
	// sweep would, in O(words) instead of O(cores). The placement
	// decision is then re-run on this core (the paper's step 4: the PTT
	// is visited again after a successful steal). If no victim exists the
	// core goes idle; new pushes wake idle cores.
	allowHigh := rt.prioSteal
	bm := rt.wsqLow
	if allowHigh {
		bm = rt.wsqAny
	}
	start := c.rng.Intn(len(rt.cores))
	if v := rt.findVictim(bm, start, c.id); v != nil {
		t, ok := v.wsq.StealOldest(allowHigh)
		if !ok {
			panic(fmt.Sprintf("simrt: stealable bitmap out of sync on core %d", v.id))
		}
		rt.updateWSQBits(v)
		c.steals++
		if p := rt.cfg.Probe; p != nil {
			p.queueDelta(rt.engine.Now(), -1, 0)
			p.stole(v.id, c.id, t&1 != 0, rt.cfg.StealCost)
		}
		rt.dispatch(c, t)
		rt.engine.AfterEvent(rt.cfg.StealCost, c, evStep)
		return
	}
	c.failedSteals++
	c.state = stIdle
	rt.markIdle(c.id)
	// Nothing to do; wait for a wake.
}

// dispatch runs the final placement decision for tr on worker c and inserts
// the assembly into the AQs of the place's members.
func (rt *Runtime) dispatch(c *coreState, tr int32) {
	pl := rt.policy.DispatchPlace(rt.ctx(c.id, tr))
	pid := rt.topo.PlaceID(pl)
	if pid < 0 {
		panic(fmt.Sprintf("simrt: policy %s produced invalid place %v", rt.policy.Name(), pl))
	}
	if !rt.soa.static {
		rt.soa.ptr[tr>>1].MarkRunning()
	}
	a := rt.getAssembly(tr, pl, int32(pid))
	for i := 0; i < pl.Width; i++ {
		m := rt.cores[pl.Leader+i]
		if tr&1 != 0 && pl.Width == 1 {
			// Width-1 high-priority assemblies jump the queue. They run
			// to completion without a rendezvous, so overtaking committed
			// assemblies cannot create a circular wait (wider assemblies
			// could: a member already blocked in an overtaken assembly
			// would deadlock the newcomer's rendezvous).
			m.aq.PushFront(a)
		} else {
			m.aq.PushBack(a)
		}
		rt.scheduleStep(m, rt.cfg.WakeLatency)
	}
	if p := rt.cfg.Probe; p != nil {
		p.queueDelta(rt.engine.Now(), 0, pl.Width)
	}
}

// getAssembly takes a pooled assembly record (or allocates the pool's
// growth) and initializes it for one execution.
func (rt *Runtime) getAssembly(tr int32, pl topology.Place, pid int32) *assembly {
	if n := len(rt.asmFree); n > 0 {
		a := rt.asmFree[n-1]
		rt.asmFree[n-1] = nil
		rt.asmFree = rt.asmFree[:n-1]
		*a = assembly{rt: rt, tref: tr, place: pl, placeID: pid}
		return a
	}
	return &assembly{rt: rt, tref: tr, place: pl, placeID: pid}
}

// putAssembly recycles a completed assembly. Callers guarantee no live
// references remain: all members popped it from their AQs and cleared cur,
// and its finish event has fired.
func (rt *Runtime) putAssembly(a *assembly) {
	rt.asmFree = append(rt.asmFree, a)
}

// startAssembly runs when the last member arrives. The hot path touches
// only the SoA cost slice; the task pointer is fetched solely for the cold
// body/hook paths.
func (rt *Runtime) startAssembly(a *assembly) {
	a.start = rt.engine.Now()
	idx := a.tref >> 1
	if rt.cfg.RunBodies {
		if t := rt.soa.ptr[idx]; t.Body != nil {
			runBodyMembers(t, a.place)
		}
	}
	if rt.cfg.Hook != nil {
		delivered := false
		handled := rt.cfg.Hook(rt, rt.soa.ptr[idx], a.place, a.start, func(finish float64) {
			if delivered {
				panic("simrt: exec hook delivered twice")
			}
			delivered = true
			if finish < a.start {
				finish = a.start
			}
			a.finish = finish
			if finish <= rt.engine.Now() {
				rt.completeAssembly(a, rt.engine.Now())
			} else {
				rt.engine.AtEvent(finish, a, evAsmDone)
			}
		})
		if handled {
			return
		}
	}
	j := rt.drawJitter(a.place.Leader)
	t := rt.soa.ptr[idx]
	finish := rt.model.Duration(t.Cost, a.place, a.start, j)
	if math.IsInf(finish, 1) {
		panic(fmt.Sprintf("simrt: task %q never finishes on %v (zero rate forever)", t.Label, a.place))
	}
	a.finish = finish
	rt.engine.AtEvent(finish, a, evAsmDone)
}

// completeAssembly releases the members, updates the PTT with the leader's
// observed span, records metrics, and wakes dependents. On static graphs
// the dependency bookkeeping runs over the SoA's CSR — no graph mutex, no
// per-completion allocation — and the dag.Graph is finalized in bulk when
// the last task drains.
func (rt *Runtime) completeAssembly(a *assembly, finish float64) {
	span := finish - a.start
	idx := a.tref >> 1
	high := a.tref&1 != 0
	typ := rt.soa.typ[idx]
	if tbl := rt.table(typ); tbl != nil {
		if p := rt.cfg.Probe; p != nil {
			// The table's estimate before this observation folds in is the
			// prediction the dispatch decision would have seen.
			p.pttObserve(finish, a.placeID, int32(typ), tbl.ValueByID(int(a.placeID)), span)
		}
		tbl.UpdateByID(int(a.placeID), span)
	}
	rt.coll.TaskDoneID(int(a.placeID), a.place, high, typ, rt.soa.ptr[idx].Iter, a.start, finish)
	if rt.cfg.Trace != nil {
		for i := 0; i < a.place.Width; i++ {
			rt.cfg.Trace.Add(trace.Event{
				Label:  rt.soa.ptr[idx].Label,
				Core:   a.place.Leader + i,
				Start:  a.start,
				End:    finish,
				Leader: a.place.Leader,
				Width:  a.place.Width,
				High:   high,
			})
		}
	}
	for i := 0; i < a.place.Width; i++ {
		m := rt.cores[a.place.Leader+i]
		if m.cur != a {
			panic(fmt.Sprintf("simrt: core %d completing foreign assembly", m.id))
		}
		m.cur = nil
		m.state = stScheduled
		rt.engine.AtEvent(finish, m, evStep)
	}
	leader := a.place.Leader
	rt.putAssembly(a)
	if rt.soa.static {
		s := &rt.soa
		for _, si := range s.succIdx[s.succOff[idx]:s.succOff[idx+1]] {
			if s.pending[si]--; s.pending[si] == 0 {
				rt.wakeTask(makeTref(int(si), s.high[si]), leader)
			}
		}
		if s.remaining--; s.remaining == 0 {
			if int(rt.graph.Total()) != s.total {
				panic("simrt: tasks added to a graph that started without completion hooks")
			}
			rt.graph.MarkDrained()
			rt.finished = true
			rt.makespan = finish
			rt.coll.SetMakespan(finish)
			if p := rt.cfg.Probe; p != nil {
				p.flushTo(rt.coll, finish)
			}
		}
		return
	}
	ready, drained := rt.graph.Complete(rt.soa.ptr[idx])
	for _, t := range ready {
		rt.wakeTask(rt.tref(t), leader)
	}
	if drained {
		rt.finished = true
		rt.makespan = finish
		rt.coll.SetMakespan(finish)
		if p := rt.cfg.Probe; p != nil {
			p.flushTo(rt.coll, finish)
		}
	}
}

// ModelDuration returns the machine-model finish time for a cost on a
// place starting at start, drawing this runtime's usual execution noise
// from the place leader's RNG. Execution hooks use it for the CPU portion
// of tasks whose completion they control.
func (rt *Runtime) ModelDuration(c machine.Cost, pl topology.Place, start float64) float64 {
	return rt.model.Duration(c, pl, start, rt.drawJitter(pl.Leader))
}

// drawJitter samples the per-execution noise from the leader's RNG:
// multiplicative variance, continuous timer-resolution noise, and rare
// preemption outliers.
func (rt *Runtime) drawJitter(leader int) machine.Jitter {
	j := machine.NoJitter
	rng := rt.cores[leader].rng
	if rt.model.JitterRel > 0 {
		j.Mul = rng.Jitter(rt.model.JitterRel)
	}
	if rt.model.TimerRes > 0 {
		j.Add += math.Abs(rng.NormFloat64()) * rt.model.TimerRes
	}
	if rt.cfg.PreemptProb > 0 && rng.Float64() < rt.cfg.PreemptProb {
		j.Add += rt.cfg.PreemptMin + (rt.cfg.PreemptMax-rt.cfg.PreemptMin)*rng.Float64()
	}
	return j
}

// runBodyMembers executes all member partitions of a task body. Members
// run on goroutines because bodies may synchronize internally (e.g. the
// stencil kernel's per-sweep barrier).
func runBodyMembers(t *dag.Task, pl topology.Place) {
	if pl.Width == 1 {
		t.Body(dag.Exec{Part: 0, Width: 1, Leader: pl.Leader, Worker: pl.Leader})
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < pl.Width; i++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			t.Body(dag.Exec{Part: part, Width: pl.Width, Leader: pl.Leader, Worker: pl.Leader + part})
		}(i)
	}
	wg.Wait()
}

// Stats exposes per-core scheduler counters for diagnostics and tests.
type Stats struct {
	Steals, FailedSteals, Dispatches int64
}

// CoreStats returns the per-core scheduler counters.
func (rt *Runtime) CoreStats() []Stats {
	out := make([]Stats, len(rt.cores))
	for i, c := range rt.cores {
		out[i] = Stats{Steals: c.steals, FailedSteals: c.failedSteals, Dispatches: c.dispatches}
	}
	return out
}
