// Package simrt executes task graphs on the simulated platform.
//
// It reimplements the XiTAO execution protocol the paper builds on
// (Section 4.1.2) as a deterministic state machine over the discrete-event
// engine:
//
//   - each core owns a Work-Stealing Queue (WSQ) of ready tasks and a FIFO
//     Assembly Queue (AQ) of committed moldable executions;
//   - when a task becomes ready its wake-time placement picks a WSQ (high
//     priority tasks are routed by the policy, low priority tasks stay on
//     the waking worker for data reuse);
//   - a worker that dequeues (or steals) a task runs the policy's dispatch
//     decision, then inserts the resulting assembly into the AQs of every
//     member core of the chosen place;
//   - an assembly starts when all members have arrived and finishes when
//     the machine model says the slowest member is done; the leader's
//     observed span updates the task type's Performance Trace Table;
//   - high-priority tasks are not stealable (unless the policy is from the
//     random work-stealing family), exactly like the paper.
//
// Virtual time, stealing victims and measurement jitter are all
// deterministic functions of the configuration seed.
//
// # Event kinds
//
// The runtime drives the engine through sim's typed, allocation-free event
// API. Its kind table:
//
//	kind       receiver    meaning
//	--------   ---------   ------------------------------------------
//	evStep     coreState   the core takes its next scheduler action
//	                       (join assembly, dispatch, or steal)
//	evAsmDone  assembly    the machine model's finish time arrived;
//	                       release members, update PTT, wake deps
//
// Event times carry the payload: an evAsmDone's `at` is the assembly's
// finish time. Only cold paths (execution-hook deliveries) use the engine's
// closure API.
//
// # Steady-state allocation behavior
//
// The hot loops are allocation-free: assemblies are pooled per runtime,
// WSQs and AQs are reusable ring buffers, the policy Context is a reused
// scratch, wakeups touch only the idle-core bitmap, and typed events live
// by value in the engine's heap slice. The allocation-regression tests in
// alloc_test.go hold this property in place.
package simrt

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/machine"
	"dynasym/internal/metrics"
	"dynasym/internal/ptt"
	"dynasym/internal/sim"
	"dynasym/internal/topology"
	"dynasym/internal/trace"
	"dynasym/internal/xrand"
)

// ExecHook lets a workload take over the execution of specific tasks (used
// by the distributed Heat workload for network boundary exchanges). If the
// hook recognizes the task it must eventually call deliver exactly once
// with the absolute finish time (≥ start) and return true; returning false
// falls back to the machine model.
type ExecHook func(rt *Runtime, t *dag.Task, pl topology.Place, start float64, deliver func(finish float64)) bool

// Config configures a simulated runtime instance.
type Config struct {
	// Topo is the platform this runtime schedules on. Required.
	Topo *topology.Platform
	// Model provides task durations. Required (build with machine.New).
	Model *machine.Model
	// Policy is the scheduling policy. Required.
	Policy core.Policy
	// Alpha is the PTT new-observation weight; <= 0 selects the paper's
	// 1/5 default.
	Alpha float64
	// Seed drives all randomness (stealing, jitter).
	Seed uint64
	// Collector receives metrics; nil allocates a private one.
	Collector *metrics.Collector
	// Registry supplies pre-trained trace tables; nil allocates fresh
	// ones.
	Registry *ptt.Registry
	// Engine lets several runtimes share one virtual clock (distributed
	// experiments); nil allocates a private engine.
	Engine *sim.Engine
	// Hook optionally takes over execution of selected tasks.
	Hook ExecHook
	// Trace, when non-nil, records every task execution for post-mortem
	// visualization (see internal/trace).
	Trace *trace.Recorder

	// DispatchCost is the virtual time a worker spends per dispatch
	// (dequeue + placement decision + AQ insertion). Default 0.2 µs.
	DispatchCost float64
	// StealCost is the virtual time for one steal attempt. Default 1 µs.
	StealCost float64
	// WakeLatency is the delay between work appearing and an idle core
	// noticing. Default 0.5 µs.
	WakeLatency float64
	// PreemptProb is the probability that one task execution absorbs a
	// short isolated system event (OS tick, interrupt); such outliers are
	// what the paper's weighted PTT update is designed to absorb.
	// Default 0.02; negative disables.
	PreemptProb float64
	// PreemptMin/PreemptMax bound the uniformly drawn preemption delay in
	// seconds. Defaults 0.1 ms and 0.5 ms (timer ticks and daemon blips
	// on a busy embedded board).
	PreemptMin, PreemptMax float64
	// PollDelay is how long an idle worker waits before probing for work
	// that appeared on another core's queue (idle workers poll rather
	// than receive targeted wakeups, like XiTAO's spin-steal loop with
	// yields). Default 20 µs.
	PollDelay float64
	// RunBodies makes the simulator execute task bodies (at zero virtual
	// cost) so applications compute real results under simulated
	// scheduling — a functional simulation. Durations still come from
	// the machine model. Member bodies run concurrently (they may
	// synchronize internally), so floating-point reduction order — but
	// nothing else — may vary between runs.
	RunBodies bool
}

type coreStateKind int32

const (
	stIdle coreStateKind = iota
	stScheduled
	stBusy
)

// Typed event kinds (see the package comment's kind table).
const (
	evStep sim.EventKind = iota
	evAsmDone
)

type assembly struct {
	rt      *Runtime
	task    *dag.Task
	place   topology.Place
	arrived int
	start   float64
	finish  float64 // estimated, for load queries; 0 until started
}

// HandleEvent completes the assembly at its scheduled finish time.
func (a *assembly) HandleEvent(_ sim.EventKind, at float64) {
	a.rt.completeAssembly(a, at)
}

type coreState struct {
	id    int
	rt    *Runtime
	state coreStateKind
	wsq   deque
	aq    asmQueue
	cur   *assembly
	rng   *xrand.RNG

	steals       int64
	failedSteals int64
	dispatches   int64
}

// HandleEvent performs the core's next scheduler action.
func (c *coreState) HandleEvent(sim.EventKind, float64) { c.rt.step(c) }

// Runtime is one simulated runtime instance. Not safe for concurrent use;
// everything runs on the engine's goroutine.
type Runtime struct {
	cfg      Config
	engine   *sim.Engine
	topo     *topology.Platform
	model    *machine.Model
	policy   core.Policy
	reg      *ptt.Registry
	coll     *metrics.Collector
	rr       atomic.Uint64
	cores    []*coreState
	graph    *dag.Graph
	root     *xrand.RNG
	finished bool
	makespan float64

	// idle is a bitmap over core ids mirroring state == stIdle exactly,
	// so wakeTask pokes only idle workers — O(idle) instead of a scan of
	// every core per wake, which dominated at scaleout core counts.
	idle []uint64
	// wsqAny and wsqLow mirror, per core, wsq.Len() > 0 and
	// wsq.LowLen() > 0. The steal sweep consults the bitmap matching the
	// policy's priority regime, so a failed sweep costs a few word scans
	// instead of probing every core's deque.
	wsqAny []uint64
	wsqLow []uint64
	// asmFree pools assembly records; completed assemblies are recycled
	// so steady-state dispatch allocates nothing.
	asmFree []*assembly
	// ctxScratch is the reused policy-decision context (policies consume
	// it synchronously and must not retain it).
	ctxScratch core.Context
	// loadFn is loadEstimate bound once; a fresh method value per
	// decision would allocate.
	loadFn func(core int) float64
	// tblCache memoizes Registry.Get per task type (stable pointers).
	tblCache []*ptt.Table
}

// New validates the configuration and builds a runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("simrt: Config.Topo is required")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("simrt: Config.Model is required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("simrt: Config.Policy is required")
	}
	if cfg.Model.Platform() != cfg.Topo {
		return nil, fmt.Errorf("simrt: Model built for a different platform")
	}
	if cfg.DispatchCost <= 0 {
		cfg.DispatchCost = 0.2e-6
	}
	if cfg.StealCost <= 0 {
		cfg.StealCost = 1e-6
	}
	if cfg.WakeLatency <= 0 {
		cfg.WakeLatency = 0.5e-6
	}
	if cfg.PreemptProb == 0 {
		cfg.PreemptProb = 0.02
	}
	if cfg.PreemptProb < 0 {
		cfg.PreemptProb = 0
	}
	if cfg.PreemptMin <= 0 {
		cfg.PreemptMin = 0.1e-3
	}
	if cfg.PreemptMax <= cfg.PreemptMin {
		cfg.PreemptMax = 0.5e-3
	}
	if cfg.PollDelay <= 0 {
		cfg.PollDelay = 20e-6
	}
	rt := &Runtime{
		cfg:    cfg,
		engine: cfg.Engine,
		topo:   cfg.Topo,
		model:  cfg.Model,
		policy: cfg.Policy,
		reg:    cfg.Registry,
		coll:   cfg.Collector,
		root:   xrand.New(cfg.Seed),
	}
	if rt.engine == nil {
		rt.engine = sim.New()
	}
	if rt.reg == nil {
		rt.reg = ptt.NewRegistry(cfg.Topo, cfg.Alpha)
	}
	if rt.coll == nil {
		rt.coll = metrics.NewCollector(cfg.Topo)
	}
	rt.loadFn = rt.loadEstimate
	rt.ctxScratch = core.Context{Topo: rt.topo, RR: &rt.rr, Load: rt.loadFn}
	rt.cores = make([]*coreState, cfg.Topo.NumCores())
	words := (cfg.Topo.NumCores() + 63) / 64
	rt.idle = make([]uint64, words)
	rt.wsqAny = make([]uint64, words)
	rt.wsqLow = make([]uint64, words)
	for i := range rt.cores {
		rt.cores[i] = &coreState{id: i, rt: rt, rng: rt.root.Split()}
		rt.markIdle(i)
	}
	return rt, nil
}

// markIdle sets a core's bit in the idle bitmap.
func (rt *Runtime) markIdle(core int) { rt.idle[core>>6] |= 1 << (uint(core) & 63) }

// clearIdle clears a core's bit in the idle bitmap.
func (rt *Runtime) clearIdle(core int) { rt.idle[core>>6] &^= 1 << (uint(core) & 63) }

// updateWSQBits refreshes a core's stealable-work bits after any WSQ
// mutation. Every wsq push/pop site must call it.
func (rt *Runtime) updateWSQBits(c *coreState) {
	w, b := c.id>>6, uint64(1)<<(uint(c.id)&63)
	if c.wsq.Len() > 0 {
		rt.wsqAny[w] |= b
	} else {
		rt.wsqAny[w] &^= b
	}
	if c.wsq.LowLen() > 0 {
		rt.wsqLow[w] |= b
	} else {
		rt.wsqLow[w] &^= b
	}
}

// nextSetBit returns the first set bit index in [from, limit), or -1.
func nextSetBit(bm []uint64, from, limit int) int {
	if from >= limit {
		return -1
	}
	wi := from >> 6
	word := bm[wi] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			if idx := wi<<6 + bits.TrailingZeros64(word); idx < limit {
				return idx
			}
			return -1
		}
		wi++
		if wi<<6 >= limit {
			return -1
		}
		word = bm[wi]
	}
}

// findVictim returns the first core at or after start (cyclically, skipping
// self) whose bit is set, or nil. This visits cores in exactly the order
// the O(cores) probe sweep used, so steal victims are unchanged.
func (rt *Runtime) findVictim(bm []uint64, start, self int) *coreState {
	n := len(rt.cores)
	idx := nextSetBit(bm, start, n)
	if idx == self {
		idx = nextSetBit(bm, idx+1, n)
	}
	if idx < 0 {
		idx = nextSetBit(bm, 0, start)
		if idx == self {
			idx = nextSetBit(bm, idx+1, start)
		}
	}
	if idx < 0 {
		return nil
	}
	return rt.cores[idx]
}

// Engine returns the runtime's event engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.engine }

// Collector returns the runtime's metrics collector.
func (rt *Runtime) Collector() *metrics.Collector { return rt.coll }

// Registry returns the runtime's PTT registry.
func (rt *Runtime) Registry() *ptt.Registry { return rt.reg }

// Policy returns the runtime's scheduling policy.
func (rt *Runtime) Policy() core.Policy { return rt.policy }

// Finished reports whether the graph drained.
func (rt *Runtime) Finished() bool { return rt.finished }

// Makespan returns the virtual time at which the last task finished.
func (rt *Runtime) Makespan() float64 { return rt.makespan }

// Run executes the graph to completion on a private engine and returns the
// collector. It fails if the configuration shares an engine (use Start and
// drive the engine yourself) or if execution stalls.
func (rt *Runtime) Run(g *dag.Graph) (*metrics.Collector, error) {
	if err := rt.Start(g); err != nil {
		return nil, err
	}
	rt.engine.Run()
	if !rt.finished {
		return nil, fmt.Errorf("simrt: execution stalled with %d tasks outstanding (possible dependency deadlock)", g.Outstanding())
	}
	return rt.coll, nil
}

// Start wires the graph into the runtime and schedules the initial events.
// The caller is responsible for running the engine (shared-engine mode).
func (rt *Runtime) Start(g *dag.Graph) error {
	if rt.graph != nil {
		return fmt.Errorf("simrt: runtime already started")
	}
	rt.graph = g
	ready := g.Start()
	if len(ready) == 0 && g.Outstanding() > 0 {
		return fmt.Errorf("simrt: graph has %d tasks but none ready (cycle?)", g.Outstanding())
	}
	for _, t := range ready {
		rt.wakeTask(t, 0)
	}
	if g.Outstanding() == 0 {
		rt.finished = true
		rt.coll.SetMakespan(0)
		return nil
	}
	for _, c := range rt.cores {
		rt.scheduleStep(c, rt.cfg.WakeLatency)
	}
	return nil
}

// scheduleStep queues a step for an idle core after delay seconds.
func (rt *Runtime) scheduleStep(c *coreState, delay float64) {
	if c.state != stIdle {
		return
	}
	c.state = stScheduled
	rt.clearIdle(c.id)
	rt.engine.AfterEvent(delay, c, evStep)
}

// table returns the PTT for a task type, or nil when the policy does not
// use a model. Tables are resolved through the registry once per type and
// then served from a local slice: registry table pointers are stable, and
// the cache avoids the registry's atomic-load fast path on the two policy
// decisions of every task.
func (rt *Runtime) table(id ptt.TypeID) *ptt.Table {
	if !rt.policy.UsesPTT() {
		return nil
	}
	if int(id) < len(rt.tblCache) {
		if t := rt.tblCache[id]; t != nil {
			return t
		}
	} else {
		grown := make([]*ptt.Table, id+1)
		copy(grown, rt.tblCache)
		rt.tblCache = grown
	}
	t := rt.reg.Get(id)
	rt.tblCache[id] = t
	return t
}

// ctx refills the runtime's scratch decision context. The invariant fields
// (Topo, RR, Load) are set once in New; only the per-decision fields are
// written here. Policies consume the context within the
// WakePlace/DispatchPlace call, so one scratch per runtime suffices and the
// hot path stays allocation-free.
func (rt *Runtime) ctx(self int, t *dag.Task) *core.Context {
	c := &rt.ctxScratch
	c.Self = self
	c.High = t.High
	if c.Type != t.Type || c.Table == nil {
		c.Type = t.Type
		c.Table = rt.table(t.Type)
	}
	c.Rand = rt.cores[self].rng
	return c
}

// loadEstimate reports how many seconds from now the core is expected to be
// occupied (assembly remainder only; queued work is not counted).
func (rt *Runtime) loadEstimate(coreID int) float64 {
	c := rt.cores[coreID]
	if c.cur == nil || c.cur.finish == 0 {
		return 0
	}
	d := c.cur.finish - rt.engine.Now()
	if d < 0 {
		return 0
	}
	return d
}

// wakeTask performs the wake-time placement of a newly ready task: the
// policy may route it (high-priority tasks), otherwise it lands on the
// waking worker's WSQ. Idle cores are then given a chance to steal.
func (rt *Runtime) wakeTask(t *dag.Task, waker int) {
	leader, ok := rt.policy.WakePlace(rt.ctx(waker, t))
	if !ok {
		leader = waker
	}
	target := rt.cores[leader]
	target.wsq.PushBottom(t)
	rt.updateWSQBits(target)
	rt.scheduleStep(target, rt.cfg.WakeLatency)
	if !t.High || rt.policy.AllowPrioritySteal() {
		// Idle workers discover remote work by polling, with a per-core
		// stagger so probes do not stampede. The bitmap walk visits
		// exactly the idle cores in ascending id order (the target went
		// non-idle above), so a wake costs O(idle), not O(cores).
		for wi, word := range rt.idle {
			for word != 0 {
				c := rt.cores[wi<<6+bits.TrailingZeros64(word)]
				word &= word - 1
				rt.scheduleStep(c, rt.cfg.PollDelay*(0.5+c.rng.Float64()))
			}
		}
	}
}

// step performs one worker action: join the head assembly, dispatch one
// local task, or attempt one steal. Cores go idle when nothing is
// available; new work wakes them.
func (rt *Runtime) step(c *coreState) {
	if c.state != stScheduled {
		panic(fmt.Sprintf("simrt: step on core %d in state %d", c.id, c.state))
	}
	// The core stays in stScheduled while acting, so wake attempts during
	// dispatch (e.g. the core inserting an assembly into its own AQ) are
	// no-ops instead of duplicate step events.

	// 0. Criticality-aware policies dispatch waiting high-priority tasks
	// before anything else, so a critical task routed to this worker is
	// never stranded behind committed low-priority assemblies.
	if !rt.policy.AllowPrioritySteal() {
		if t, ok := c.wsq.PopHigh(); ok {
			rt.updateWSQBits(c)
			rt.dispatch(c, t)
			c.dispatches++
			rt.engine.AfterEvent(rt.cfg.DispatchCost, c, evStep)
			return
		}
	}

	// 1. Committed assemblies first: another worker may be waiting on us.
	if a := c.aq.PopFront(); a != nil {
		c.state = stBusy
		c.cur = a
		a.arrived++
		if a.arrived == a.place.Width {
			rt.startAssembly(a)
		}
		return
	}

	// 2. Local ready tasks. Criticality-aware policies run high-priority
	// tasks first; the RWS family is priority-oblivious.
	if t, ok := c.wsq.PopBottom(!rt.policy.AllowPrioritySteal()); ok {
		rt.updateWSQBits(c)
		rt.dispatch(c, t)
		c.dispatches++
		rt.engine.AfterEvent(rt.cfg.DispatchCost, c, evStep)
		return
	}

	// 3. Steal: sweep the other cores from a pseudo-random start and take
	// the first victim's oldest stealable task — the event-level
	// equivalent of a spinning thief's rapid successive probes. The
	// stealable-work bitmaps pick the same victim the per-core probe
	// sweep would, in O(words) instead of O(cores). The placement
	// decision is then re-run on this core (the paper's step 4: the PTT
	// is visited again after a successful steal). If no victim exists the
	// core goes idle; new pushes wake idle cores.
	allowHigh := rt.policy.AllowPrioritySteal()
	bm := rt.wsqLow
	if allowHigh {
		bm = rt.wsqAny
	}
	start := c.rng.Intn(len(rt.cores))
	if v := rt.findVictim(bm, start, c.id); v != nil {
		t, ok := v.wsq.StealOldest(allowHigh)
		if !ok {
			panic(fmt.Sprintf("simrt: stealable bitmap out of sync on core %d", v.id))
		}
		rt.updateWSQBits(v)
		c.steals++
		rt.dispatch(c, t)
		rt.engine.AfterEvent(rt.cfg.StealCost, c, evStep)
		return
	}
	c.failedSteals++
	c.state = stIdle
	rt.markIdle(c.id)
	// Nothing to do; wait for a wake.
}

// dispatch runs the final placement decision for t on worker c and inserts
// the assembly into the AQs of the place's members.
func (rt *Runtime) dispatch(c *coreState, t *dag.Task) {
	pl := rt.policy.DispatchPlace(rt.ctx(c.id, t))
	if !rt.topo.Valid(pl) {
		panic(fmt.Sprintf("simrt: policy %s produced invalid place %v", rt.policy.Name(), pl))
	}
	t.MarkRunning()
	a := rt.getAssembly(t, pl)
	for i := 0; i < pl.Width; i++ {
		m := rt.cores[pl.Leader+i]
		if t.High && pl.Width == 1 {
			// Width-1 high-priority assemblies jump the queue. They run
			// to completion without a rendezvous, so overtaking committed
			// assemblies cannot create a circular wait (wider assemblies
			// could: a member already blocked in an overtaken assembly
			// would deadlock the newcomer's rendezvous).
			m.aq.PushFront(a)
		} else {
			m.aq.PushBack(a)
		}
		rt.scheduleStep(m, rt.cfg.WakeLatency)
	}
}

// getAssembly takes a pooled assembly record (or allocates the pool's
// growth) and initializes it for one execution.
func (rt *Runtime) getAssembly(t *dag.Task, pl topology.Place) *assembly {
	if n := len(rt.asmFree); n > 0 {
		a := rt.asmFree[n-1]
		rt.asmFree[n-1] = nil
		rt.asmFree = rt.asmFree[:n-1]
		*a = assembly{rt: rt, task: t, place: pl}
		return a
	}
	return &assembly{rt: rt, task: t, place: pl}
}

// putAssembly recycles a completed assembly. Callers guarantee no live
// references remain: all members popped it from their AQs and cleared cur,
// and its finish event has fired.
func (rt *Runtime) putAssembly(a *assembly) {
	a.task = nil
	rt.asmFree = append(rt.asmFree, a)
}

// startAssembly runs when the last member arrives.
func (rt *Runtime) startAssembly(a *assembly) {
	a.start = rt.engine.Now()
	if rt.cfg.RunBodies && a.task.Body != nil {
		runBodyMembers(a.task, a.place)
	}
	if rt.cfg.Hook != nil {
		delivered := false
		handled := rt.cfg.Hook(rt, a.task, a.place, a.start, func(finish float64) {
			if delivered {
				panic("simrt: exec hook delivered twice")
			}
			delivered = true
			if finish < a.start {
				finish = a.start
			}
			a.finish = finish
			if finish <= rt.engine.Now() {
				rt.completeAssembly(a, rt.engine.Now())
			} else {
				rt.engine.AtEvent(finish, a, evAsmDone)
			}
		})
		if handled {
			return
		}
	}
	j := rt.drawJitter(a.place.Leader)
	finish := rt.model.Duration(a.task.Cost, a.place, a.start, j)
	if math.IsInf(finish, 1) {
		panic(fmt.Sprintf("simrt: task %q never finishes on %v (zero rate forever)", a.task.Label, a.place))
	}
	a.finish = finish
	rt.engine.AtEvent(finish, a, evAsmDone)
}

// completeAssembly releases the members, updates the PTT with the leader's
// observed span, records metrics, and wakes dependents.
func (rt *Runtime) completeAssembly(a *assembly, finish float64) {
	span := finish - a.start
	if tbl := rt.table(a.task.Type); tbl != nil {
		tbl.Update(a.place, span)
	}
	rt.coll.TaskDone(a.place, a.task.High, a.task.Type, a.task.Iter, a.start, finish)
	if rt.cfg.Trace != nil {
		for i := 0; i < a.place.Width; i++ {
			rt.cfg.Trace.Add(trace.Event{
				Label:  a.task.Label,
				Core:   a.place.Leader + i,
				Start:  a.start,
				End:    finish,
				Leader: a.place.Leader,
				Width:  a.place.Width,
				High:   a.task.High,
			})
		}
	}
	for i := 0; i < a.place.Width; i++ {
		m := rt.cores[a.place.Leader+i]
		if m.cur != a {
			panic(fmt.Sprintf("simrt: core %d completing foreign assembly", m.id))
		}
		m.cur = nil
		m.state = stScheduled
		rt.engine.AtEvent(finish, m, evStep)
	}
	task, leader := a.task, a.place.Leader
	rt.putAssembly(a)
	ready, drained := rt.graph.Complete(task)
	for _, t := range ready {
		rt.wakeTask(t, leader)
	}
	if drained {
		rt.finished = true
		rt.makespan = finish
		rt.coll.SetMakespan(finish)
	}
}

// ModelDuration returns the machine-model finish time for a cost on a
// place starting at start, drawing this runtime's usual execution noise
// from the place leader's RNG. Execution hooks use it for the CPU portion
// of tasks whose completion they control.
func (rt *Runtime) ModelDuration(c machine.Cost, pl topology.Place, start float64) float64 {
	return rt.model.Duration(c, pl, start, rt.drawJitter(pl.Leader))
}

// drawJitter samples the per-execution noise from the leader's RNG:
// multiplicative variance, continuous timer-resolution noise, and rare
// preemption outliers.
func (rt *Runtime) drawJitter(leader int) machine.Jitter {
	j := machine.NoJitter
	rng := rt.cores[leader].rng
	if rt.model.JitterRel > 0 {
		j.Mul = rng.Jitter(rt.model.JitterRel)
	}
	if rt.model.TimerRes > 0 {
		j.Add += math.Abs(rng.NormFloat64()) * rt.model.TimerRes
	}
	if rt.cfg.PreemptProb > 0 && rng.Float64() < rt.cfg.PreemptProb {
		j.Add += rt.cfg.PreemptMin + (rt.cfg.PreemptMax-rt.cfg.PreemptMin)*rng.Float64()
	}
	return j
}

// runBodyMembers executes all member partitions of a task body. Members
// run on goroutines because bodies may synchronize internally (e.g. the
// stencil kernel's per-sweep barrier).
func runBodyMembers(t *dag.Task, pl topology.Place) {
	if pl.Width == 1 {
		t.Body(dag.Exec{Part: 0, Width: 1, Leader: pl.Leader, Worker: pl.Leader})
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < pl.Width; i++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			t.Body(dag.Exec{Part: part, Width: pl.Width, Leader: pl.Leader, Worker: pl.Leader + part})
		}(i)
	}
	wg.Wait()
}

// Stats exposes per-core scheduler counters for diagnostics and tests.
type Stats struct {
	Steals, FailedSteals, Dispatches int64
}

// CoreStats returns the per-core scheduler counters.
func (rt *Runtime) CoreStats() []Stats {
	out := make([]Stats, len(rt.cores))
	for i, c := range rt.cores {
		out[i] = Stats{Steals: c.steals, FailedSteals: c.failedSteals, Dispatches: c.dispatches}
	}
	return out
}
