// Package simrt executes task graphs on the simulated platform.
//
// It reimplements the XiTAO execution protocol the paper builds on
// (Section 4.1.2) as a deterministic state machine over the discrete-event
// engine:
//
//   - each core owns a Work-Stealing Queue (WSQ) of ready tasks and a FIFO
//     Assembly Queue (AQ) of committed moldable executions;
//   - when a task becomes ready its wake-time placement picks a WSQ (high
//     priority tasks are routed by the policy, low priority tasks stay on
//     the waking worker for data reuse);
//   - a worker that dequeues (or steals) a task runs the policy's dispatch
//     decision, then inserts the resulting assembly into the AQs of every
//     member core of the chosen place;
//   - an assembly starts when all members have arrived and finishes when
//     the machine model says the slowest member is done; the leader's
//     observed span updates the task type's Performance Trace Table;
//   - high-priority tasks are not stealable (unless the policy is from the
//     random work-stealing family), exactly like the paper.
//
// Virtual time, stealing victims and measurement jitter are all
// deterministic functions of the configuration seed.
package simrt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/machine"
	"dynasym/internal/metrics"
	"dynasym/internal/ptt"
	"dynasym/internal/sim"
	"dynasym/internal/topology"
	"dynasym/internal/trace"
	"dynasym/internal/xrand"
)

// ExecHook lets a workload take over the execution of specific tasks (used
// by the distributed Heat workload for network boundary exchanges). If the
// hook recognizes the task it must eventually call deliver exactly once
// with the absolute finish time (≥ start) and return true; returning false
// falls back to the machine model.
type ExecHook func(rt *Runtime, t *dag.Task, pl topology.Place, start float64, deliver func(finish float64)) bool

// Config configures a simulated runtime instance.
type Config struct {
	// Topo is the platform this runtime schedules on. Required.
	Topo *topology.Platform
	// Model provides task durations. Required (build with machine.New).
	Model *machine.Model
	// Policy is the scheduling policy. Required.
	Policy core.Policy
	// Alpha is the PTT new-observation weight; <= 0 selects the paper's
	// 1/5 default.
	Alpha float64
	// Seed drives all randomness (stealing, jitter).
	Seed uint64
	// Collector receives metrics; nil allocates a private one.
	Collector *metrics.Collector
	// Registry supplies pre-trained trace tables; nil allocates fresh
	// ones.
	Registry *ptt.Registry
	// Engine lets several runtimes share one virtual clock (distributed
	// experiments); nil allocates a private engine.
	Engine *sim.Engine
	// Hook optionally takes over execution of selected tasks.
	Hook ExecHook
	// Trace, when non-nil, records every task execution for post-mortem
	// visualization (see internal/trace).
	Trace *trace.Recorder

	// DispatchCost is the virtual time a worker spends per dispatch
	// (dequeue + placement decision + AQ insertion). Default 0.2 µs.
	DispatchCost float64
	// StealCost is the virtual time for one steal attempt. Default 1 µs.
	StealCost float64
	// WakeLatency is the delay between work appearing and an idle core
	// noticing. Default 0.5 µs.
	WakeLatency float64
	// PreemptProb is the probability that one task execution absorbs a
	// short isolated system event (OS tick, interrupt); such outliers are
	// what the paper's weighted PTT update is designed to absorb.
	// Default 0.02; negative disables.
	PreemptProb float64
	// PreemptMin/PreemptMax bound the uniformly drawn preemption delay in
	// seconds. Defaults 0.1 ms and 0.5 ms (timer ticks and daemon blips
	// on a busy embedded board).
	PreemptMin, PreemptMax float64
	// PollDelay is how long an idle worker waits before probing for work
	// that appeared on another core's queue (idle workers poll rather
	// than receive targeted wakeups, like XiTAO's spin-steal loop with
	// yields). Default 20 µs.
	PollDelay float64
	// RunBodies makes the simulator execute task bodies (at zero virtual
	// cost) so applications compute real results under simulated
	// scheduling — a functional simulation. Durations still come from
	// the machine model. Member bodies run concurrently (they may
	// synchronize internally), so floating-point reduction order — but
	// nothing else — may vary between runs.
	RunBodies bool
}

type coreStateKind int32

const (
	stIdle coreStateKind = iota
	stScheduled
	stBusy
)

type assembly struct {
	task    *dag.Task
	place   topology.Place
	arrived int
	start   float64
	finish  float64 // estimated, for load queries; 0 until started
}

type coreState struct {
	id    int
	state coreStateKind
	wsq   deque
	aq    []*assembly
	cur   *assembly
	rng   *xrand.RNG

	steals       int64
	failedSteals int64
	dispatches   int64
}

// Runtime is one simulated runtime instance. Not safe for concurrent use;
// everything runs on the engine's goroutine.
type Runtime struct {
	cfg      Config
	engine   *sim.Engine
	topo     *topology.Platform
	model    *machine.Model
	policy   core.Policy
	reg      *ptt.Registry
	coll     *metrics.Collector
	rr       atomic.Uint64
	cores    []*coreState
	graph    *dag.Graph
	root     *xrand.RNG
	finished bool
	makespan float64
}

// New validates the configuration and builds a runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("simrt: Config.Topo is required")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("simrt: Config.Model is required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("simrt: Config.Policy is required")
	}
	if cfg.Model.Platform() != cfg.Topo {
		return nil, fmt.Errorf("simrt: Model built for a different platform")
	}
	if cfg.DispatchCost <= 0 {
		cfg.DispatchCost = 0.2e-6
	}
	if cfg.StealCost <= 0 {
		cfg.StealCost = 1e-6
	}
	if cfg.WakeLatency <= 0 {
		cfg.WakeLatency = 0.5e-6
	}
	if cfg.PreemptProb == 0 {
		cfg.PreemptProb = 0.02
	}
	if cfg.PreemptProb < 0 {
		cfg.PreemptProb = 0
	}
	if cfg.PreemptMin <= 0 {
		cfg.PreemptMin = 0.1e-3
	}
	if cfg.PreemptMax <= cfg.PreemptMin {
		cfg.PreemptMax = 0.5e-3
	}
	if cfg.PollDelay <= 0 {
		cfg.PollDelay = 20e-6
	}
	rt := &Runtime{
		cfg:    cfg,
		engine: cfg.Engine,
		topo:   cfg.Topo,
		model:  cfg.Model,
		policy: cfg.Policy,
		reg:    cfg.Registry,
		coll:   cfg.Collector,
		root:   xrand.New(cfg.Seed),
	}
	if rt.engine == nil {
		rt.engine = sim.New()
	}
	if rt.reg == nil {
		rt.reg = ptt.NewRegistry(cfg.Topo, cfg.Alpha)
	}
	if rt.coll == nil {
		rt.coll = metrics.NewCollector(cfg.Topo)
	}
	rt.cores = make([]*coreState, cfg.Topo.NumCores())
	for i := range rt.cores {
		rt.cores[i] = &coreState{id: i, rng: rt.root.Split()}
	}
	return rt, nil
}

// Engine returns the runtime's event engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.engine }

// Collector returns the runtime's metrics collector.
func (rt *Runtime) Collector() *metrics.Collector { return rt.coll }

// Registry returns the runtime's PTT registry.
func (rt *Runtime) Registry() *ptt.Registry { return rt.reg }

// Policy returns the runtime's scheduling policy.
func (rt *Runtime) Policy() core.Policy { return rt.policy }

// Finished reports whether the graph drained.
func (rt *Runtime) Finished() bool { return rt.finished }

// Makespan returns the virtual time at which the last task finished.
func (rt *Runtime) Makespan() float64 { return rt.makespan }

// Run executes the graph to completion on a private engine and returns the
// collector. It fails if the configuration shares an engine (use Start and
// drive the engine yourself) or if execution stalls.
func (rt *Runtime) Run(g *dag.Graph) (*metrics.Collector, error) {
	if err := rt.Start(g); err != nil {
		return nil, err
	}
	rt.engine.Run()
	if !rt.finished {
		return nil, fmt.Errorf("simrt: execution stalled with %d tasks outstanding (possible dependency deadlock)", g.Outstanding())
	}
	return rt.coll, nil
}

// Start wires the graph into the runtime and schedules the initial events.
// The caller is responsible for running the engine (shared-engine mode).
func (rt *Runtime) Start(g *dag.Graph) error {
	if rt.graph != nil {
		return fmt.Errorf("simrt: runtime already started")
	}
	rt.graph = g
	ready := g.Start()
	if len(ready) == 0 && g.Outstanding() > 0 {
		return fmt.Errorf("simrt: graph has %d tasks but none ready (cycle?)", g.Outstanding())
	}
	for _, t := range ready {
		rt.wakeTask(t, 0)
	}
	if g.Outstanding() == 0 {
		rt.finished = true
		rt.coll.SetMakespan(0)
		return nil
	}
	for _, c := range rt.cores {
		rt.scheduleStep(c, rt.cfg.WakeLatency)
	}
	return nil
}

// scheduleStep queues a step for an idle core after delay seconds.
func (rt *Runtime) scheduleStep(c *coreState, delay float64) {
	if c.state != stIdle {
		return
	}
	c.state = stScheduled
	rt.engine.After(delay, func() { rt.step(c) })
}

// table returns the PTT for a task type, or nil when the policy does not
// use a model.
func (rt *Runtime) table(id ptt.TypeID) *ptt.Table {
	if !rt.policy.UsesPTT() {
		return nil
	}
	return rt.reg.Get(id)
}

func (rt *Runtime) ctx(self int, t *dag.Task) *core.Context {
	return &core.Context{
		Self:  self,
		High:  t.High,
		Type:  t.Type,
		Table: rt.table(t.Type),
		Topo:  rt.topo,
		Rand:  rt.cores[self].rng,
		RR:    &rt.rr,
		Load:  rt.loadEstimate,
	}
}

// loadEstimate reports how many seconds from now the core is expected to be
// occupied (assembly remainder only; queued work is not counted).
func (rt *Runtime) loadEstimate(coreID int) float64 {
	c := rt.cores[coreID]
	if c.cur == nil || c.cur.finish == 0 {
		return 0
	}
	d := c.cur.finish - rt.engine.Now()
	if d < 0 {
		return 0
	}
	return d
}

// wakeTask performs the wake-time placement of a newly ready task: the
// policy may route it (high-priority tasks), otherwise it lands on the
// waking worker's WSQ. Idle cores are then given a chance to steal.
func (rt *Runtime) wakeTask(t *dag.Task, waker int) {
	leader, ok := rt.policy.WakePlace(rt.ctx(waker, t))
	if !ok {
		leader = waker
	}
	target := rt.cores[leader]
	target.wsq.PushBottom(t)
	rt.scheduleStep(target, rt.cfg.WakeLatency)
	if !t.High || rt.policy.AllowPrioritySteal() {
		for _, c := range rt.cores {
			if c.state == stIdle && c != target {
				// Idle workers discover remote work by polling, with a
				// per-core stagger so probes do not stampede.
				rt.scheduleStep(c, rt.cfg.PollDelay*(0.5+c.rng.Float64()))
			}
		}
	}
}

// step performs one worker action: join the head assembly, dispatch one
// local task, or attempt one steal. Cores go idle when nothing is
// available; new work wakes them.
func (rt *Runtime) step(c *coreState) {
	if c.state != stScheduled {
		panic(fmt.Sprintf("simrt: step on core %d in state %d", c.id, c.state))
	}
	// The core stays in stScheduled while acting, so wake attempts during
	// dispatch (e.g. the core inserting an assembly into its own AQ) are
	// no-ops instead of duplicate step events.

	// 0. Criticality-aware policies dispatch waiting high-priority tasks
	// before anything else, so a critical task routed to this worker is
	// never stranded behind committed low-priority assemblies.
	if !rt.policy.AllowPrioritySteal() {
		if t, ok := c.wsq.PopHigh(); ok {
			rt.dispatch(c, t)
			c.dispatches++
			rt.engine.After(rt.cfg.DispatchCost, func() { rt.step(c) })
			return
		}
	}

	// 1. Committed assemblies first: another worker may be waiting on us.
	if len(c.aq) > 0 {
		a := c.aq[0]
		copy(c.aq, c.aq[1:])
		c.aq = c.aq[:len(c.aq)-1]
		c.state = stBusy
		c.cur = a
		a.arrived++
		if a.arrived == a.place.Width {
			rt.startAssembly(a)
		}
		return
	}

	// 2. Local ready tasks. Criticality-aware policies run high-priority
	// tasks first; the RWS family is priority-oblivious.
	if t, ok := c.wsq.PopBottom(!rt.policy.AllowPrioritySteal()); ok {
		rt.dispatch(c, t)
		c.dispatches++
		rt.engine.After(rt.cfg.DispatchCost, func() { rt.step(c) })
		return
	}

	// 3. Steal: sweep the other cores from a pseudo-random start and take
	// the first victim's oldest stealable task — the event-level
	// equivalent of a spinning thief's rapid successive probes. The
	// placement decision is then re-run on this core (the paper's step 4:
	// the PTT is visited again after a successful steal). If the sweep
	// finds nothing the core goes idle; new pushes wake idle cores.
	n := len(rt.cores)
	allowHigh := rt.policy.AllowPrioritySteal()
	start := c.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := rt.cores[(start+i)%n]
		if v == c {
			continue
		}
		if t, ok := v.wsq.StealOldest(allowHigh); ok {
			c.steals++
			rt.dispatch(c, t)
			rt.engine.After(rt.cfg.StealCost, func() { rt.step(c) })
			return
		}
	}
	c.failedSteals++
	c.state = stIdle
	// Nothing to do; wait for a wake.
}

// dispatch runs the final placement decision for t on worker c and inserts
// the assembly into the AQs of the place's members.
func (rt *Runtime) dispatch(c *coreState, t *dag.Task) {
	pl := rt.policy.DispatchPlace(rt.ctx(c.id, t))
	if !rt.topo.Valid(pl) {
		panic(fmt.Sprintf("simrt: policy %s produced invalid place %v", rt.policy.Name(), pl))
	}
	t.MarkRunning()
	a := &assembly{task: t, place: pl}
	for i := 0; i < pl.Width; i++ {
		m := rt.cores[pl.Leader+i]
		if t.High && pl.Width == 1 {
			// Width-1 high-priority assemblies jump the queue. They run
			// to completion without a rendezvous, so overtaking committed
			// assemblies cannot create a circular wait (wider assemblies
			// could: a member already blocked in an overtaken assembly
			// would deadlock the newcomer's rendezvous).
			m.aq = append(m.aq, nil)
			copy(m.aq[1:], m.aq)
			m.aq[0] = a
		} else {
			m.aq = append(m.aq, a)
		}
		rt.scheduleStep(m, rt.cfg.WakeLatency)
	}
}

// startAssembly runs when the last member arrives.
func (rt *Runtime) startAssembly(a *assembly) {
	a.start = rt.engine.Now()
	if rt.cfg.RunBodies && a.task.Body != nil {
		runBodyMembers(a.task, a.place)
	}
	if rt.cfg.Hook != nil {
		delivered := false
		handled := rt.cfg.Hook(rt, a.task, a.place, a.start, func(finish float64) {
			if delivered {
				panic("simrt: exec hook delivered twice")
			}
			delivered = true
			if finish < a.start {
				finish = a.start
			}
			a.finish = finish
			if finish <= rt.engine.Now() {
				rt.completeAssembly(a, rt.engine.Now())
			} else {
				rt.engine.At(finish, func() { rt.completeAssembly(a, finish) })
			}
		})
		if handled {
			return
		}
	}
	j := rt.drawJitter(a.place.Leader)
	finish := rt.model.Duration(a.task.Cost, a.place, a.start, j)
	if math.IsInf(finish, 1) {
		panic(fmt.Sprintf("simrt: task %q never finishes on %v (zero rate forever)", a.task.Label, a.place))
	}
	a.finish = finish
	rt.engine.At(finish, func() { rt.completeAssembly(a, finish) })
}

// completeAssembly releases the members, updates the PTT with the leader's
// observed span, records metrics, and wakes dependents.
func (rt *Runtime) completeAssembly(a *assembly, finish float64) {
	span := finish - a.start
	if tbl := rt.table(a.task.Type); tbl != nil {
		tbl.Update(a.place, span)
	}
	rt.coll.TaskDone(a.place, a.task.High, a.task.Type, a.task.Iter, a.start, finish)
	if rt.cfg.Trace != nil {
		for i := 0; i < a.place.Width; i++ {
			rt.cfg.Trace.Add(trace.Event{
				Label:  a.task.Label,
				Core:   a.place.Leader + i,
				Start:  a.start,
				End:    finish,
				Leader: a.place.Leader,
				Width:  a.place.Width,
				High:   a.task.High,
			})
		}
	}
	for i := 0; i < a.place.Width; i++ {
		m := rt.cores[a.place.Leader+i]
		if m.cur != a {
			panic(fmt.Sprintf("simrt: core %d completing foreign assembly", m.id))
		}
		m.cur = nil
		m.state = stScheduled
		rt.engine.At(finish, func() { rt.step(m) })
	}
	ready, drained := rt.graph.Complete(a.task)
	for _, t := range ready {
		rt.wakeTask(t, a.place.Leader)
	}
	if drained {
		rt.finished = true
		rt.makespan = finish
		rt.coll.SetMakespan(finish)
	}
}

// ModelDuration returns the machine-model finish time for a cost on a
// place starting at start, drawing this runtime's usual execution noise
// from the place leader's RNG. Execution hooks use it for the CPU portion
// of tasks whose completion they control.
func (rt *Runtime) ModelDuration(c machine.Cost, pl topology.Place, start float64) float64 {
	return rt.model.Duration(c, pl, start, rt.drawJitter(pl.Leader))
}

// drawJitter samples the per-execution noise from the leader's RNG:
// multiplicative variance, continuous timer-resolution noise, and rare
// preemption outliers.
func (rt *Runtime) drawJitter(leader int) machine.Jitter {
	j := machine.NoJitter
	rng := rt.cores[leader].rng
	if rt.model.JitterRel > 0 {
		j.Mul = rng.Jitter(rt.model.JitterRel)
	}
	if rt.model.TimerRes > 0 {
		j.Add += math.Abs(rng.NormFloat64()) * rt.model.TimerRes
	}
	if rt.cfg.PreemptProb > 0 && rng.Float64() < rt.cfg.PreemptProb {
		j.Add += rt.cfg.PreemptMin + (rt.cfg.PreemptMax-rt.cfg.PreemptMin)*rng.Float64()
	}
	return j
}

// runBodyMembers executes all member partitions of a task body. Members
// run on goroutines because bodies may synchronize internally (e.g. the
// stencil kernel's per-sweep barrier).
func runBodyMembers(t *dag.Task, pl topology.Place) {
	if pl.Width == 1 {
		t.Body(dag.Exec{Part: 0, Width: 1, Leader: pl.Leader, Worker: pl.Leader})
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < pl.Width; i++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			t.Body(dag.Exec{Part: part, Width: pl.Width, Leader: pl.Leader, Worker: pl.Leader + part})
		}(i)
	}
	wg.Wait()
}

// Stats exposes per-core scheduler counters for diagnostics and tests.
type Stats struct {
	Steals, FailedSteals, Dispatches int64
}

// CoreStats returns the per-core scheduler counters.
func (rt *Runtime) CoreStats() []Stats {
	out := make([]Stats, len(rt.cores))
	for i, c := range rt.cores {
		out[i] = Stats{Steals: c.steals, FailedSteals: c.failedSteals, Dispatches: c.dispatches}
	}
	return out
}
