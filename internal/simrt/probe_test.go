package simrt

import (
	"math"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/kernels"
	"dynasym/internal/machine"
	"dynasym/internal/topology"
)

// probeGraph builds a steal-heavy workload: low-priority tasks wake onto
// core 0, so the other cores live on the steal path while high-priority
// tasks exercise the dispatch path.
func probeGraph(n int) *dag.Graph {
	g := dag.New()
	g.Grow(n)
	cost := kernels.MatMulCost(64)
	for i := 0; i < n; i++ {
		g.Add(&dag.Task{
			Label: "probe",
			Type:  kernels.TypeMatMul,
			High:  i%16 == 0,
			Cost:  cost,
			Iter:  -1,
		})
	}
	return g
}

// probeRun executes the workload to completion with the given probe (nil
// = probes off) and returns the runtime.
func probeRun(t *testing.T, p *Probe) *Runtime {
	t.Helper()
	topo := topology.TX2()
	rt, err := New(Config{Topo: topo, Model: machine.New(topo), Policy: core.DAMC(), Seed: 9, Probe: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(probeGraph(1200)); err != nil {
		t.Fatal(err)
	}
	rt.Engine().Run()
	if !rt.Finished() {
		t.Fatal("run did not finish")
	}
	return rt
}

// An attached probe must be pure observation: every scheduler counter and
// every virtual-time metric must be bit-identical with and without it.
func TestProbeDoesNotPerturbRun(t *testing.T) {
	off := probeRun(t, nil)
	on := probeRun(t, NewProbe())

	if a, b := off.Collector().Makespan(), on.Collector().Makespan(); a != b {
		t.Fatalf("makespan diverged: off=%v on=%v", a, b)
	}
	offStats, onStats := off.CoreStats(), on.CoreStats()
	for i := range offStats {
		if offStats[i] != onStats[i] {
			t.Fatalf("core %d counters diverged: off=%+v on=%+v", i, offStats[i], onStats[i])
		}
	}
	offBusy, onBusy := off.Collector().CoreBusy(), on.Collector().CoreBusy()
	for i := range offBusy {
		if offBusy[i] != onBusy[i] {
			t.Fatalf("core %d busy diverged: off=%v on=%v", i, offBusy[i], onBusy[i])
		}
	}
	if off.Collector().Sched() != nil {
		t.Fatal("probe-off run produced Sched telemetry")
	}
	if on.Collector().Sched() == nil {
		t.Fatal("probe-on run produced no Sched telemetry")
	}
}

// The steal matrix is an exact decomposition of the steal counters: the
// per-thief edge sums must equal CoreStats' per-core steal counts.
func TestProbeStealMatrixMatchesCounters(t *testing.T) {
	rt := probeRun(t, NewProbe())
	sched := rt.Collector().Sched()
	stats := rt.CoreStats()

	perThief := make([]int64, len(stats))
	var matrixTotal int64
	for _, e := range sched.StealMatrix {
		if e.Victim < 0 || e.Victim >= len(stats) || e.Thief < 0 || e.Thief >= len(stats) {
			t.Fatalf("edge %+v outside the %d-core platform", e, len(stats))
		}
		if e.Low < 0 || e.High < 0 || e.Low+e.High == 0 {
			t.Fatalf("degenerate edge %+v", e)
		}
		perThief[e.Thief] += e.Low + e.High
		matrixTotal += e.Low + e.High
	}
	var statsTotal int64
	for i, s := range stats {
		statsTotal += s.Steals
		if perThief[i] != s.Steals {
			t.Fatalf("thief %d: matrix says %d steals, counters say %d", i, perThief[i], s.Steals)
		}
	}
	if matrixTotal != statsTotal || sched.TotalSteals() != statsTotal {
		t.Fatalf("matrix total %d (TotalSteals %d) != counter total %d", matrixTotal, sched.TotalSteals(), statsTotal)
	}
}

// The per-core time breakdown must partition the makespan: busy +
// dispatch + steal + idle = span for every core, with nothing negative.
func TestProbeTimeBreakdownPartitionsSpan(t *testing.T) {
	rt := probeRun(t, NewProbe())
	sched := rt.Collector().Sched()
	if sched.Span <= 0 {
		t.Fatalf("span %v, want > 0", sched.Span)
	}
	for i := range sched.Busy {
		for _, v := range []float64{sched.Busy[i], sched.Dispatch[i], sched.Steal[i], sched.Idle[i]} {
			if v < 0 {
				t.Fatalf("core %d has a negative component: busy=%v dispatch=%v steal=%v idle=%v",
					i, sched.Busy[i], sched.Dispatch[i], sched.Steal[i], sched.Idle[i])
			}
		}
		sum := sched.Busy[i] + sched.Dispatch[i] + sched.Steal[i] + sched.Idle[i]
		if math.Abs(sum-sched.Span) > 1e-9*math.Max(1, sched.Span) {
			t.Fatalf("core %d breakdown sums to %v, span is %v", i, sum, sched.Span)
		}
	}
	if sched.QueueSamples == 0 || sched.MeanReady() <= 0 {
		t.Fatalf("queue telemetry empty: samples=%d meanReady=%v", sched.QueueSamples, sched.MeanReady())
	}
	if sched.PTTSamples == 0 {
		t.Fatal("no PTT prediction samples on a PTT policy")
	}
}

// A probe reused across Runtime.Reset must report each run's telemetry in
// isolation: two identical runs through one probe yield identical Sched.
func TestProbeReuseAcrossReset(t *testing.T) {
	topo := topology.TX2()
	p := NewProbe()
	cfg := Config{Topo: topo, Model: machine.New(topo), Policy: core.DAMC(), Seed: 9, Probe: p}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Runtime {
		if err := rt.Start(probeGraph(600)); err != nil {
			t.Fatal(err)
		}
		rt.Engine().Run()
		return rt
	}
	first := run().Collector().Sched()
	if err := rt.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	second := run().Collector().Sched()

	if first == second {
		t.Fatal("flushed Sched aggregates alias the pooled probe")
	}
	if first.Span != second.Span || first.TotalSteals() != second.TotalSteals() ||
		first.QueueSamples != second.QueueSamples || first.PTTSamples != second.PTTSamples {
		t.Fatalf("reused probe leaked state across Reset:\nfirst:  span=%v steals=%d qs=%d ptt=%d\nsecond: span=%v steals=%d qs=%d ptt=%d",
			first.Span, first.TotalSteals(), first.QueueSamples, first.PTTSamples,
			second.Span, second.TotalSteals(), second.QueueSamples, second.PTTSamples)
	}
	for i := range first.Busy {
		if first.Busy[i] != second.Busy[i] || first.Idle[i] != second.Idle[i] {
			t.Fatalf("core %d telemetry diverged across reuse", i)
		}
	}
}
