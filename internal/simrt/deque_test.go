package simrt

import (
	"testing"
	"testing/quick"
)

// mkref builds distinct trefs from a per-test counter so identity checks
// catch loss or duplication, mirroring how the runtime packs task indices.
func mkref(ctr *int, high bool) int32 {
	*ctr++
	return makeTref(*ctr, high)
}

func TestDequeLIFO(t *testing.T) {
	var d deque
	var ctr int
	a, b := mkref(&ctr, false), mkref(&ctr, false)
	d.PushBottom(a)
	d.PushBottom(b)
	if got, _ := d.PopBottom(false); got != b {
		t.Fatal("plain pop not LIFO")
	}
	if got, _ := d.PopBottom(false); got != a {
		t.Fatal("second pop wrong")
	}
	if _, ok := d.PopBottom(false); ok {
		t.Fatal("empty deque popped")
	}
}

func TestDequePreferHigh(t *testing.T) {
	var d deque
	var ctr int
	h := mkref(&ctr, true)
	l1, l2 := mkref(&ctr, false), mkref(&ctr, false)
	_ = l1
	d.PushBottom(h)
	d.PushBottom(l1)
	d.PushBottom(l2)
	if got, _ := d.PopBottom(true); got != h {
		t.Fatal("preferHigh did not return the high task")
	}
	if got, _ := d.PopBottom(true); got != l2 {
		t.Fatal("after high, pop should be LIFO")
	}
}

func TestDequePopHigh(t *testing.T) {
	var d deque
	var ctr int
	h1 := mkref(&ctr, true)
	l := mkref(&ctr, false)
	h2 := mkref(&ctr, true)
	d.PushBottom(h1)
	d.PushBottom(l)
	d.PushBottom(h2)
	if got, _ := d.PopHigh(); got != h2 {
		t.Fatal("PopHigh should return the newest high task")
	}
	if got, _ := d.PopHigh(); got != h1 {
		t.Fatal("PopHigh second")
	}
	if _, ok := d.PopHigh(); ok {
		t.Fatal("PopHigh on low-only deque succeeded")
	}
	if d.Len() != 1 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestDequeStealOldest(t *testing.T) {
	var d deque
	var ctr int
	h := mkref(&ctr, true)
	l1, l2 := mkref(&ctr, false), mkref(&ctr, false)
	_ = l2
	d.PushBottom(h)
	d.PushBottom(l1)
	d.PushBottom(l2)
	// Without high stealing the oldest LOW task goes first.
	if got, _ := d.StealOldest(false); got != l1 {
		t.Fatal("steal did not take oldest stealable")
	}
	// With high stealing the high task (oldest overall) goes.
	if got, _ := d.StealOldest(true); got != h {
		t.Fatal("allowHigh steal did not take the high task")
	}
	if !d.HasStealable(false) {
		t.Fatal("l2 should be stealable")
	}
}

func TestDequeHasStealable(t *testing.T) {
	var d deque
	var ctr int
	d.PushBottom(mkref(&ctr, true))
	if d.HasStealable(false) {
		t.Fatal("high-only queue reported stealable without allowHigh")
	}
	if !d.HasStealable(true) {
		t.Fatal("high task not stealable with allowHigh")
	}
}

// Property: any sequence of pushes and pops conserves tasks (no loss, no
// duplication).
func TestDequeConservation(t *testing.T) {
	check := func(ops []uint8) bool {
		var d deque
		var ctr int
		pushed, popped := 0, 0
		for _, op := range ops {
			switch op % 5 {
			case 0, 1:
				d.PushBottom(mkref(&ctr, op%7 == 0))
				pushed++
			case 2:
				if _, ok := d.PopBottom(true); ok {
					popped++
				}
			case 3:
				if _, ok := d.StealOldest(op%2 == 0); ok {
					popped++
				}
			case 4:
				if _, ok := d.PopHigh(); ok {
					popped++
				}
			}
			if d.Len() != pushed-popped {
				return false
			}
		}
		return d.Len() == pushed-popped
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
