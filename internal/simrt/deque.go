package simrt

import "dynasym/internal/dag"

// deque is the Work-Stealing Queue of one simulated core: the owner pushes
// and pops at the bottom (LIFO, for locality), thieves remove the oldest
// stealable entry from the top, like a Blumofe–Leiserson deque. The
// simulator is single-threaded, so no synchronization is needed; the real
// runtime (internal/xtr) has its own locked implementation.
type deque struct {
	items []*dag.Task
}

// Len returns the number of queued tasks.
func (d *deque) Len() int { return len(d.items) }

// PushBottom appends a task at the owner's end.
func (d *deque) PushBottom(t *dag.Task) { d.items = append(d.items, t) }

// PopBottom removes and returns the task the owner should run next: with
// preferHigh set, the most recently pushed high-priority task if any
// (criticality-aware policies run critical tasks first); otherwise plain
// LIFO, which is what the priority-oblivious random work stealing family
// does.
func (d *deque) PopBottom(preferHigh bool) (*dag.Task, bool) {
	n := len(d.items)
	if n == 0 {
		return nil, false
	}
	idx := n - 1
	if preferHigh && !d.items[idx].High {
		for i := n - 2; i >= 0; i-- {
			if d.items[i].High {
				idx = i
				break
			}
		}
	}
	t := d.items[idx]
	copy(d.items[idx:], d.items[idx+1:])
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return t, true
}

// PopHigh removes and returns the most recently pushed high-priority task,
// if any. Criticality-aware workers dispatch these before anything else.
func (d *deque) PopHigh() (*dag.Task, bool) {
	for i := len(d.items) - 1; i >= 0; i-- {
		if d.items[i].High {
			t := d.items[i]
			copy(d.items[i:], d.items[i+1:])
			d.items[len(d.items)-1] = nil
			d.items = d.items[:len(d.items)-1]
			return t, true
		}
	}
	return nil, false
}

// HasStealable reports whether the deque holds a task a thief may take.
func (d *deque) HasStealable(allowHigh bool) bool {
	for _, t := range d.items {
		if allowHigh || !t.High {
			return true
		}
	}
	return false
}

// StealOldest removes and returns the oldest stealable task.
func (d *deque) StealOldest(allowHigh bool) (*dag.Task, bool) {
	for i, t := range d.items {
		if allowHigh || !t.High {
			copy(d.items[i:], d.items[i+1:])
			d.items[len(d.items)-1] = nil
			d.items = d.items[:len(d.items)-1]
			return t, true
		}
	}
	return nil, false
}
