package simrt

// deque is the Work-Stealing Queue of one simulated core: the owner pushes
// and pops at the bottom (LIFO, for locality), thieves remove the oldest
// stealable entry from the top, like a Blumofe–Leiserson deque. The
// simulator is single-threaded, so no synchronization is needed; the real
// runtime (internal/xtr) has its own locked implementation.
//
// Entries are packed trefs (task index << 1 | high bit, see soa.go), so
// the ring is pointer-free — the GC never scans queued work — and the
// priority-scanning paths test a bit instead of chasing a task pointer.
//
// Storage is the shared power-of-two ring (see ring.go), plus a count of
// low-priority entries that makes the priority-scanning paths O(1) in the
// common no-high-queued state and backs the runtime's stealable-work
// bitmaps. The common operations are O(1) index moves: PushBottom appends
// at the back, plain PopBottom removes the back, StealOldest usually
// removes the front. Removals from the middle (the priority-scanning
// paths) shift the shorter side of the ring instead of copying the whole
// tail, so they cost O(min(i, n-i)) and the FIFO/LIFO order of the
// remaining entries is preserved exactly.
type deque struct {
	ring[int32]
	low int // queued tasks with the high bit clear
}

// LowLen returns the number of queued low-priority tasks — the entries a
// thief may take under the paper's no-priority-steal rule. The runtime
// mirrors Len/LowLen into its stealable-work bitmaps.
func (d *deque) LowLen() int { return d.low }

// clear empties the deque, keeping its storage. Trefs are pointer-free, so
// stale ring slots retain nothing.
func (d *deque) clear() {
	d.head = 0
	d.n = 0
	d.low = 0
}

// removeAt removes and returns the tref at logical index i, shifting the
// shorter side of the window toward the gap.
func (d *deque) removeAt(i int) int32 {
	t := d.at(i)
	if t&1 == 0 {
		d.low--
	}
	if i < d.n-1-i {
		// Closer to the front: shift [0, i) up by one and advance head.
		for k := i; k > 0; k-- {
			d.set(k, d.at(k-1))
		}
		d.head = (d.head + 1) & (len(d.buf) - 1)
	} else {
		// Closer to the back: shift (i, n) down by one.
		for k := i; k < d.n-1; k++ {
			d.set(k, d.at(k+1))
		}
	}
	d.n--
	return t
}

// PushBottom appends a tref at the owner's end.
func (d *deque) PushBottom(t int32) {
	d.pushBack(t)
	if t&1 == 0 {
		d.low++
	}
}

// PopBottom removes and returns the tref the owner should run next: with
// preferHigh set, the most recently pushed high-priority task if any
// (criticality-aware policies run critical tasks first); otherwise plain
// LIFO, which is what the priority-oblivious random work stealing family
// does. The priority scan is skipped entirely when the counters show no
// high-priority entry is queued — the overwhelmingly common state.
func (d *deque) PopBottom(preferHigh bool) (int32, bool) {
	if d.n == 0 {
		return 0, false
	}
	idx := d.n - 1
	if preferHigh && d.low < d.n && d.at(idx)&1 == 0 {
		for i := d.n - 2; i >= 0; i-- {
			if d.at(i)&1 != 0 {
				idx = i
				break
			}
		}
	}
	return d.removeAt(idx), true
}

// PopHigh removes and returns the most recently pushed high-priority task,
// if any. Criticality-aware workers dispatch these before anything else;
// the counters make the empty case O(1), so checking on every worker step
// is free.
func (d *deque) PopHigh() (int32, bool) {
	if d.low == d.n {
		return 0, false
	}
	for i := d.n - 1; i >= 0; i-- {
		if d.at(i)&1 != 0 {
			return d.removeAt(i), true
		}
	}
	return 0, false
}

// HasStealable reports whether the deque holds a task a thief may take.
// O(1): the counters decide both priority regimes.
func (d *deque) HasStealable(allowHigh bool) bool {
	if allowHigh {
		return d.n > 0
	}
	return d.low > 0
}

// StealOldest removes and returns the oldest stealable task. The common
// case — the oldest entry is stealable — is an O(1) head advance.
func (d *deque) StealOldest(allowHigh bool) (int32, bool) {
	if !d.HasStealable(allowHigh) {
		return 0, false
	}
	for i := 0; i < d.n; i++ {
		if allowHigh || d.at(i)&1 == 0 {
			return d.removeAt(i), true
		}
	}
	return 0, false
}
