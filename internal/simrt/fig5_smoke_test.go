package simrt_test

import (
	"fmt"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

func TestSmokeFig5(t *testing.T) {
	for _, pol := range core.All() {
		topo := topology.TX2()
		model := machine.New(topo)
		interfere.CoRunCPU(model, []int{0}, 0.5)
		g := workloads.BuildSynthetic(workloads.SyntheticConfig{
			Kernel: workloads.MatMul, Tile: 64, Tasks: 3200, Parallelism: 2,
		})
		rt, _ := simrt.New(simrt.Config{Topo: topo, Model: model, Policy: pol, Seed: 1})
		coll, err := rt.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-7s:", pol.Name())
		for i, ps := range coll.PlaceHistogram(true) {
			if i > 5 {
				break
			}
			fmt.Printf(" %s=%.1f%%", ps.Place, ps.Frac*100)
		}
		fmt.Println()
	}
}
