package simrt

// Probe is the runtime's scheduler-introspection hook. It observes the
// existing decision points of the execution protocol — dispatches, steals,
// queue transitions, PTT updates — and never influences them: it draws no
// randomness, schedules no events, and reads virtual time only at
// boundaries the runtime already crossed, so a probed run is bit-identical
// to an unprobed one (the fingerprint gates in internal/scenario prove it
// per policy × workload kind).
//
// A nil probe is the default and costs one pointer check per hook site;
// the alloc gates in alloc_test.go hold the disabled hot path at zero
// allocations.

import (
	"math"

	"dynasym/internal/metrics"
	"dynasym/internal/trace"
)

// maxQueueSamples and maxPTTSamples cap the recorded sample series (the
// running aggregates keep accumulating past the cap, so summary telemetry
// stays exact; only the plotted series truncates, deterministically).
const (
	maxQueueSamples = 1 << 16
	maxPTTSamples   = 1 << 16
)

// QueueSample is one observed queue-state transition: the total ready
// tasks across all WSQs and committed entries across all AQs at a virtual
// time.
type QueueSample struct {
	At               float64
	Ready, Committed int32
}

// PTTSample is one PTT prediction-vs-actual observation: at a completion,
// the table's estimate for the place before the update, and the observed
// span that updated it.
type PTTSample struct {
	At                float64
	Place, Type       int32
	Predicted, Actual float64
}

// Probe records scheduler introspection for one runtime. Attach it via
// Config.Probe; New/Reset size it to the platform. Not safe for concurrent
// use — it observes a single runtime on the engine's goroutine.
type Probe struct {
	cores int

	// dispatchSec/stealSec accumulate the virtual time each core was
	// charged for dispatch windows and successful steal windows.
	dispatchSec []float64
	stealSec    []float64
	// stealLow/stealHigh are cores×cores victim-major steal counts.
	stealLow  []int64
	stealHigh []int64

	// Queue tracking: running totals, maxima, depth-over-time integrals,
	// and the capped sample series.
	ready, committed       int
	maxReady, maxCommitted int
	lastAt                 float64
	readyInt, committedInt float64
	transitions            int64
	samples                []QueueSample
	samplesDropped         int64

	// PTT tracking: error sum over every observed prediction plus the
	// capped raw series.
	pttCount   int64
	pttErrSum  float64
	pttSamples []PTTSample
	pttDropped int64
}

// NewProbe returns an empty probe; attaching it to a runtime sizes it.
func NewProbe() *Probe { return &Probe{} }

// reset clears the probe for a run on n cores, reusing its storage.
func (p *Probe) reset(n int) {
	p.cores = n
	p.dispatchSec = resizeZero(p.dispatchSec, n)
	p.stealSec = resizeZero(p.stealSec, n)
	p.stealLow = resizeZeroI(p.stealLow, n*n)
	p.stealHigh = resizeZeroI(p.stealHigh, n*n)
	p.ready, p.committed = 0, 0
	p.maxReady, p.maxCommitted = 0, 0
	p.lastAt = 0
	p.readyInt, p.committedInt = 0, 0
	p.transitions = 0
	p.samples = p.samples[:0]
	p.samplesDropped = 0
	p.pttCount = 0
	p.pttErrSum = 0
	p.pttSamples = p.pttSamples[:0]
	p.pttDropped = 0
}

func resizeZero(sl []float64, n int) []float64 {
	if cap(sl) < n {
		return make([]float64, n)
	}
	sl = sl[:n]
	for i := range sl {
		sl[i] = 0
	}
	return sl
}

func resizeZeroI(sl []int64, n int) []int64 {
	if cap(sl) < n {
		return make([]int64, n)
	}
	sl = sl[:n]
	for i := range sl {
		sl[i] = 0
	}
	return sl
}

// dispatched charges one dispatch window to a core.
func (p *Probe) dispatched(core int, sec float64) {
	p.dispatchSec[core] += sec
}

// stole records one successful steal: the thief's steal window and the
// victim→thief matrix cell for the task's priority class.
func (p *Probe) stole(victim, thief int, high bool, sec float64) {
	p.stealSec[thief] += sec
	i := victim*p.cores + thief
	if high {
		p.stealHigh[i]++
	} else {
		p.stealLow[i]++
	}
}

// queueDelta applies one queue-state transition at virtual time at:
// dReady ready tasks entered/left WSQs, dCommitted entries entered/left
// AQs. The depth integrals advance before the state changes.
func (p *Probe) queueDelta(at float64, dReady, dCommitted int) {
	if at > p.lastAt {
		dt := at - p.lastAt
		p.readyInt += float64(p.ready) * dt
		p.committedInt += float64(p.committed) * dt
		p.lastAt = at
	}
	p.ready += dReady
	p.committed += dCommitted
	if p.ready > p.maxReady {
		p.maxReady = p.ready
	}
	if p.committed > p.maxCommitted {
		p.maxCommitted = p.committed
	}
	p.transitions++
	if len(p.samples) < maxQueueSamples {
		p.samples = append(p.samples, QueueSample{At: at, Ready: int32(p.ready), Committed: int32(p.committed)})
	} else {
		p.samplesDropped++
	}
}

// pttObserve records one prediction-vs-actual pair (the table's estimate
// for the place before this completion's update folded in).
func (p *Probe) pttObserve(at float64, place, typ int32, predicted, actual float64) {
	if actual <= 0 || predicted <= 0 {
		return
	}
	p.pttCount++
	p.pttErrSum += math.Abs(predicted-actual) / actual
	if len(p.pttSamples) < maxPTTSamples {
		p.pttSamples = append(p.pttSamples, PTTSample{At: at, Place: place, Type: typ, Predicted: predicted, Actual: actual})
	} else {
		p.pttDropped++
	}
}

// flushTo aggregates the probe into the collector at run completion.
func (p *Probe) flushTo(coll *metrics.Collector, makespan float64) {
	coll.SetSched(p.Sched(coll.CoreBusy(), makespan))
}

// Sched renders the accumulated telemetry as a mergeable aggregate. busy
// is the per-core kernel time (the collector's CoreBusy); idle is the
// residual of the makespan after busy, dispatch and steal windows.
func (p *Probe) Sched(busy []float64, makespan float64) *metrics.Sched {
	s := &metrics.Sched{
		Busy:         busy,
		Dispatch:     append([]float64(nil), p.dispatchSec...),
		Steal:        append([]float64(nil), p.stealSec...),
		Idle:         make([]float64, p.cores),
		Span:         makespan,
		QueueSamples: p.transitions,
		ReadySec:     p.readyInt,
		CommittedSec: p.committedInt,
		MaxReady:     p.maxReady,
		MaxCommitted: p.maxCommitted,
		PTTSamples:   p.pttCount,
		PTTErrSum:    p.pttErrSum,
	}
	// Close the depth integrals at the makespan (the final stretch after
	// the last transition is all-idle queues, but committed may be 0 only
	// at the very end, so integrate whatever state was left).
	if makespan > p.lastAt {
		dt := makespan - p.lastAt
		s.ReadySec += float64(p.ready) * dt
		s.CommittedSec += float64(p.committed) * dt
	}
	for i := 0; i < p.cores && i < len(busy); i++ {
		idle := makespan - busy[i] - s.Dispatch[i] - s.Steal[i]
		if idle < 0 {
			idle = 0
		}
		s.Idle[i] = idle
	}
	for v := 0; v < p.cores; v++ {
		for t := 0; t < p.cores; t++ {
			lo, hi := p.stealLow[v*p.cores+t], p.stealHigh[v*p.cores+t]
			if lo != 0 || hi != 0 {
				s.StealMatrix = append(s.StealMatrix, metrics.StealEdge{Victim: v, Thief: t, Low: lo, High: hi})
			}
		}
	}
	// Tail error: the last quarter of the recorded series, the "has the
	// table converged" view the paper's Figure 5 narrative builds on.
	if n := len(p.pttSamples); n > 0 {
		for _, ps := range p.pttSamples[n-n/4:] {
			s.PTTTailSamples++
			s.PTTTailErrSum += math.Abs(ps.Predicted-ps.Actual) / ps.Actual
		}
	}
	return s
}

// QueueSamples returns the recorded queue-depth series (read-only; valid
// until the probe's next reset).
func (p *Probe) QueueSamples() []QueueSample { return p.samples }

// PTTSeries returns the recorded prediction-vs-actual series (read-only;
// valid until the probe's next reset).
func (p *Probe) PTTSeries() []PTTSample { return p.pttSamples }

// EmitCounters converts the recorded series into Chrome counter lanes on
// the recorder under pid: "queue depth" (wsq/aq series), "ready tasks",
// and "ptt rel err".
func (p *Probe) EmitCounters(rec *trace.Recorder, pid int) {
	if rec == nil {
		return
	}
	for _, s := range p.samples {
		rec.AddCounter(trace.CounterPoint{Name: "queue depth", Pid: pid, At: s.At, Series: []trace.CounterValue{
			{Key: "wsq", Value: float64(s.Ready)},
			{Key: "aq", Value: float64(s.Committed)},
		}})
		rec.AddCounter(trace.CounterPoint{Name: "ready tasks", Pid: pid, At: s.At, Series: []trace.CounterValue{
			{Key: "ready", Value: float64(s.Ready)},
		}})
	}
	for _, ps := range p.pttSamples {
		rec.AddCounter(trace.CounterPoint{Name: "ptt rel err", Pid: pid, At: ps.At, Series: []trace.CounterValue{
			{Key: "err", Value: math.Abs(ps.Predicted-ps.Actual) / ps.Actual},
		}})
	}
}
