package simrt

import (
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/kernels"
	"dynasym/internal/machine"
	"dynasym/internal/topology"
)

// resetGraph builds a small mixed-priority diamond-chain workload; every
// call returns a structurally identical fresh instance.
func resetGraph() *dag.Graph {
	g := dag.New()
	g.Grow(400)
	cost := kernels.MatMulCost(48)
	var prev *dag.Task
	for i := 0; i < 400; i++ {
		t := &dag.Task{
			Label: "reset-probe",
			Type:  kernels.TypeMatMul,
			High:  i%8 == 0,
			Cost:  cost,
			Iter:  i / 40,
		}
		g.Add(t)
		if prev != nil && i%3 == 0 {
			g.AddEdge(prev, t)
		}
		prev = t
	}
	return g
}

// runOnce executes one fresh graph on rt and returns a compact result
// signature: the makespan bits plus the per-core scheduler counters.
func runOnce(t *testing.T, rt *Runtime) (float64, []Stats) {
	t.Helper()
	coll, err := rt.Run(resetGraph())
	if err != nil {
		t.Fatal(err)
	}
	if coll.TasksDone() != 400 {
		t.Fatalf("run completed %d tasks, want 400", coll.TasksDone())
	}
	return rt.Makespan(), rt.CoreStats()
}

// A reset runtime must replay a fresh runtime's execution bit for bit:
// same makespan, same per-core steal/dispatch counters, for every Table-1
// policy. This pins Reset's contract at the layer that owns it (the
// scenario-level fingerprint tests pin the end-to-end metrics).
func TestResetMatchesNew(t *testing.T) {
	for _, pol := range core.All() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			t.Parallel()
			topo := topology.TX2()
			model := machine.New(topo)
			cfg := Config{Topo: topo, Model: model, Policy: pol, Seed: 31}
			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantMk, wantStats := runOnce(t, fresh)

			reused, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Dirty the runtime with a different seed first so Reset has
			// real state to erase.
			dirty := cfg
			dirty.Seed = 99
			if _, ds := runOnce(t, reused); len(ds) == 0 {
				t.Fatal("dirty run recorded no cores")
			}
			if err := reused.Reset(dirty); err != nil {
				t.Fatal(err)
			}
			if _, err := reused.Run(resetGraph()); err != nil {
				t.Fatal(err)
			}
			if err := reused.Reset(cfg); err != nil {
				t.Fatal(err)
			}
			gotMk, gotStats := runOnce(t, reused)
			if gotMk != wantMk {
				t.Fatalf("reset runtime makespan %v, fresh %v", gotMk, wantMk)
			}
			for i := range wantStats {
				if gotStats[i] != wantStats[i] {
					t.Fatalf("core %d counters diverged: reset %+v, fresh %+v", i, gotStats[i], wantStats[i])
				}
			}
		})
	}
}

// Reset itself must be allocation-free once the runtime's pools have
// reached their high-water marks — it exists to recycle allocations, so it
// may not introduce its own.
func TestResetAllocs(t *testing.T) {
	topo := topology.TX2()
	model := machine.New(topo)
	cfg := Config{Topo: topo, Model: model, Policy: core.DAMC(), Seed: 7}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: a few full cycles grow the collector freelist and queue rings.
	for i := 0; i < 3; i++ {
		runOnce(t, rt)
		if err := rt.Reset(cfg); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := rt.Reset(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset costs %.1f allocs, want 0", allocs)
	}
	// The runtime must still work after the measurement loop.
	runOnce(t, rt)
}
