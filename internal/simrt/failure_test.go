package simrt_test

import (
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/trace"
	"dynasym/internal/workloads"
)

// TestStallEpisodeSurvived injects a full stall of a core (availability 0)
// for a bounded episode — harsher than anything in the paper — and checks
// the run completes with the dynamic scheduler routing critical tasks
// around the dead core.
func TestStallEpisodeSurvived(t *testing.T) {
	topo := topology.TX2()
	model := machine.New(topo)
	// Core 1 (the fast clean Denver core!) dies between 50 ms and 1 s.
	interfere.Stall(model, 1, 0.05, 1.0)
	g := workloads.BuildSynthetic(workloads.SyntheticConfig{
		Kernel: workloads.MatMul, Tile: 64, Tasks: 2000, Parallelism: 2,
	})
	rt, err := simrt.New(simrt.Config{Topo: topo, Model: model, Policy: core.DAMC(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := rt.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if coll.TasksDone() != 2000 {
		t.Fatalf("completed %d tasks", coll.TasksDone())
	}
	// Tasks that started inside the stall window on core 1 simply take
	// until the episode ends; the model must never produce a task that
	// outlives the run unfinished.
	if coll.Makespan() <= 1.0 {
		t.Fatalf("makespan %g suspiciously short for a run spanning a 0.95s stall", coll.Makespan())
	}
}

// TestFlakyCoreAdaptation alternates a core between full speed and 20%
// availability and checks the dynamic scheduler still beats random work
// stealing.
func TestFlakyCoreAdaptation(t *testing.T) {
	run := func(pol core.Policy) float64 {
		topo := topology.TX2()
		model := machine.New(topo)
		interfere.Flaky(model, 1, 0.2, 2, 2)
		g := workloads.BuildSynthetic(workloads.SyntheticConfig{
			Kernel: workloads.MatMul, Tile: 64, Tasks: 3000, Parallelism: 2,
		})
		rt, err := simrt.New(simrt.Config{Topo: topo, Model: model, Policy: pol, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		coll, err := rt.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		return coll.Throughput()
	}
	da := run(core.DAMC())
	rws := run(core.RWS())
	if da <= rws {
		t.Fatalf("DAM-C (%.0f) did not beat RWS (%.0f) on a flaky core", da, rws)
	}
}

// TestTraceRecording checks that the simulated runtime emits one trace
// event per member execution.
func TestTraceRecording(t *testing.T) {
	topo := topology.TX2()
	model := machine.New(topo)
	rec := trace.New()
	g := workloads.BuildSynthetic(workloads.SyntheticConfig{
		Kernel: workloads.MatMul, Tile: 64, Tasks: 100, Parallelism: 4,
	})
	rt, err := simrt.New(simrt.Config{Topo: topo, Model: model, Policy: core.DAMP(), Seed: 2, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := rt.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() < int(coll.TasksDone()) {
		t.Fatalf("trace has %d events for %d tasks", rec.Len(), coll.TasksDone())
	}
	for _, ev := range rec.Events() {
		if ev.End < ev.Start {
			t.Fatalf("event %q ends before it starts", ev.Label)
		}
		if ev.Core < ev.Leader || ev.Core >= ev.Leader+ev.Width {
			t.Fatalf("event %q core %d outside place (C%d,%d)", ev.Label, ev.Core, ev.Leader, ev.Width)
		}
	}
}

// TestSampledPolicyRuns exercises the scalable sampled-search extension on
// a large platform end to end.
func TestSampledPolicyRuns(t *testing.T) {
	topo := topology.HaswellClusterN(1)
	model := machine.New(topo)
	interfere.CoRunCPU(model, []int{0, 1, 2}, 0.5)
	g := workloads.BuildSynthetic(workloads.SyntheticConfig{
		Kernel: workloads.MatMul, Tile: 64, Tasks: 1000, Parallelism: 8,
	})
	rt, err := simrt.New(simrt.Config{Topo: topo, Model: model, Policy: core.NewSampled(core.DAMC(), 8), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := rt.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if coll.TasksDone() != 1000 {
		t.Fatalf("completed %d tasks", coll.TasksDone())
	}
}
