package simrt_test

import (
	"math"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

func newRT(t *testing.T, pol core.Policy, seed uint64, disturb func(*machine.Model)) *simrt.Runtime {
	t.Helper()
	topo := topology.TX2()
	model := machine.New(topo)
	if disturb != nil {
		disturb(model)
	}
	rt, err := simrt.New(simrt.Config{Topo: topo, Model: model, Policy: pol, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func smallDAG() *dag.Graph {
	return workloads.BuildSynthetic(workloads.SyntheticConfig{
		Kernel: workloads.MatMul, Tile: 64, Tasks: 400, Parallelism: 4,
	})
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		rt := newRT(t, core.DAMC(), 99, nil)
		coll, err := rt.Run(smallDAG())
		if err != nil {
			t.Fatal(err)
		}
		return coll.Makespan(), coll.TasksDone()
	}
	m1, n1 := run()
	m2, n2 := run()
	if m1 != m2 || n1 != n2 {
		t.Fatalf("same seed produced different results: %g/%d vs %g/%d", m1, n1, m2, n2)
	}
}

func TestSeedsChangeSchedule(t *testing.T) {
	run := func(seed uint64) float64 {
		rt := newRT(t, core.RWS(), seed, nil)
		coll, err := rt.Run(smallDAG())
		if err != nil {
			t.Fatal(err)
		}
		return coll.Makespan()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds gave bit-identical makespans (suspicious)")
	}
}

func TestAllTasksComplete(t *testing.T) {
	for _, pol := range core.All() {
		g := smallDAG()
		rt := newRT(t, pol, 5, nil)
		coll, err := rt.Run(g)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if coll.TasksDone() != 400 {
			t.Fatalf("%s: %d tasks done, want 400", pol.Name(), coll.TasksDone())
		}
		if g.Outstanding() != 0 {
			t.Fatalf("%s: %d outstanding", pol.Name(), g.Outstanding())
		}
		for _, tsk := range g.Tasks() {
			if tsk.State() != dag.Done {
				t.Fatalf("%s: task %q in state %d", pol.Name(), tsk.Label, tsk.State())
			}
		}
	}
}

func TestWorkConservation(t *testing.T) {
	// Total per-core busy time must not exceed cores × makespan, and
	// must be positive and account for a decent share of the run.
	rt := newRT(t, core.DAMC(), 5, nil)
	coll, err := rt.Run(smallDAG())
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, b := range coll.CoreBusy() {
		total += b
	}
	limit := coll.Makespan() * 6
	if total <= 0 || total > limit*1.0001 {
		t.Fatalf("busy time %g outside (0, %g]", total, limit)
	}
}

func TestHighTasksRespectPlacementGuarantee(t *testing.T) {
	// Under DA the critical tasks must never run on the interfered core
	// once the model has learned (the paper's Figure 5e shows 98% on
	// core 1); allow a small exploration allowance.
	rt := newRT(t, core.DA(), 7, func(m *machine.Model) {
		interfere.CoRunCPU(m, []int{0}, 0.5)
	})
	g := workloads.BuildSynthetic(workloads.SyntheticConfig{
		Kernel: workloads.MatMul, Tile: 64, Tasks: 2000, Parallelism: 2,
	})
	coll, err := rt.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	var onInterfered, total int64
	for _, ps := range coll.PlaceHistogram(true) {
		total += ps.Count
		if ps.Place.Leader == 0 {
			onInterfered += ps.Count
		}
	}
	if frac := float64(onInterfered) / float64(total); frac > 0.05 {
		t.Fatalf("%.1f%% of critical tasks on the interfered core, want < 5%%", frac*100)
	}
}

func TestNonMoldablePoliciesNeverMold(t *testing.T) {
	for _, pol := range []core.Policy{core.RWS(), core.FA(), core.DA()} {
		rt := newRT(t, pol, 3, nil)
		coll, err := rt.Run(smallDAG())
		if err != nil {
			t.Fatal(err)
		}
		for _, ps := range coll.PlaceHistogram(false) {
			if ps.Place.Width != 1 {
				t.Fatalf("%s used place %v", pol.Name(), ps.Place)
			}
		}
	}
}

func TestFunctionalSimulationMatchesReference(t *testing.T) {
	// RunBodies: the simulated heat must compute exactly the serial
	// reference, for every policy — scheduling can never change results.
	for _, pol := range []core.Policy{core.RWS(), core.DAMP()} {
		h := workloads.NewHeat(workloads.HeatConfig{Rows: 64, Cols: 64, Blocks: 4, Iters: 10, Seed: 2})
		g := h.Build()
		topo := topology.TX2()
		model := machine.New(topo)
		rt, err := simrt.New(simrt.Config{Topo: topo, Model: model, Policy: pol, Seed: 1, RunBodies: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(g); err != nil {
			t.Fatal(err)
		}
		got, want := h.Result(), h.Reference()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%s: functional sim diverges at %d", pol.Name(), i)
			}
		}
	}
}

func TestDynamicGraphRuns(t *testing.T) {
	km := workloads.NewKMeans(workloads.KMeansConfig{N: 1 << 10, MaxIters: 5, Grains: 8})
	g := km.Build()
	rt := newRT(t, core.DAMC(), 11, nil)
	coll, err := rt.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// 5 iterations × (8 assigns + 1 reduce).
	if coll.TasksDone() != 45 {
		t.Fatalf("dynamic graph executed %d tasks, want 45", coll.TasksDone())
	}
}

func TestConfigValidation(t *testing.T) {
	topo := topology.TX2()
	model := machine.New(topo)
	if _, err := simrt.New(simrt.Config{Model: model, Policy: core.RWS()}); err == nil {
		t.Fatal("missing Topo accepted")
	}
	if _, err := simrt.New(simrt.Config{Topo: topo, Policy: core.RWS()}); err == nil {
		t.Fatal("missing Model accepted")
	}
	if _, err := simrt.New(simrt.Config{Topo: topo, Model: model}); err == nil {
		t.Fatal("missing Policy accepted")
	}
	other := topology.TX2()
	if _, err := simrt.New(simrt.Config{Topo: other, Model: model, Policy: core.RWS()}); err == nil {
		t.Fatal("model/platform mismatch accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	rt := newRT(t, core.RWS(), 1, nil)
	coll, err := rt.Run(dag.New())
	if err != nil {
		t.Fatal(err)
	}
	if coll.TasksDone() != 0 || coll.Makespan() != 0 {
		t.Fatal("empty graph produced work")
	}
}

func TestRuntimeSingleUse(t *testing.T) {
	rt := newRT(t, core.RWS(), 1, nil)
	if _, err := rt.Run(smallDAG()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(smallDAG()); err == nil {
		t.Fatal("second Run on same runtime accepted")
	}
}

func TestStealCountersMove(t *testing.T) {
	rt := newRT(t, core.RWS(), 1, nil)
	if _, err := rt.Run(smallDAG()); err != nil {
		t.Fatal(err)
	}
	var steals int64
	for _, s := range rt.CoreStats() {
		steals += s.Steals
	}
	if steals == 0 {
		t.Fatal("no steals happened in a work-stealing run")
	}
}
