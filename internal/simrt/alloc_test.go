package simrt

import (
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/kernels"
	"dynasym/internal/machine"
	"dynasym/internal/topology"
)

// allocRuntime builds a runtime over a constant-profile TX2 with a large
// pool of independent tasks: the low-priority tasks all wake onto core 0,
// so every other core exercises the poll/steal path continuously while
// assemblies dispatch, start and complete — the full wake/steal/dispatch
// state machine.
func allocRuntime(t *testing.T) *Runtime {
	t.Helper()
	topo := topology.TX2()
	model := machine.New(topo)
	g := dag.New()
	g.Grow(4000)
	cost := kernels.MatMulCost(64)
	for i := 0; i < 4000; i++ {
		g.Add(&dag.Task{
			Label: "alloc-probe",
			Type:  kernels.TypeMatMul,
			High:  i%16 == 0,
			Cost:  cost,
			Iter:  -1,
		})
	}
	rt, err := New(Config{Topo: topo, Model: model, Policy: core.DAMC(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(g); err != nil {
		t.Fatal(err)
	}
	return rt
}

// Steady-state simulation — wake, poll, steal, dispatch, assembly start and
// completion, PTT updates, metrics — must be allocation-free once the
// runtime's rings, pools and the engine's tiers have reached their
// high-water marks. This is the allocation-regression gate for the simrt
// layer of the hot path.
func TestSteadyStateAllocFree(t *testing.T) {
	rt := allocRuntime(t)
	e := rt.Engine()
	// Warm: run a third of the workload so every ring, the assembly pool
	// and the engine arena have grown to their final capacity.
	e.RunUntil(0.008)
	if rt.Finished() {
		t.Fatal("workload drained during warm-up; enlarge it")
	}
	allocs := testing.AllocsPerRun(5, func() {
		e.RunUntil(e.Now() + 1e-3)
	})
	if allocs != 0 {
		t.Fatalf("steady-state wake/steal/dispatch allocated %.1f allocs per 1ms window, want 0", allocs)
	}
	if rt.Finished() {
		t.Fatal("workload drained during measurement; enlarge it")
	}
	// The run must still complete correctly afterwards.
	e.Run()
	if !rt.Finished() {
		t.Fatal("run did not finish after measurement")
	}
}
