package simrt

// ring is the power-of-two ring-buffer core shared by the per-core WSQ
// deque and the assembly queues: buf holds n live entries at physical
// positions (head+i)&(len(buf)-1) for logical indexes i in [0, n), with
// logical 0 the oldest. Specialized queue types embed it and layer their
// own discipline (priority counters, front pushes) on top.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued entries.
func (r *ring[T]) Len() int { return r.n }

// at returns the entry at logical index i (0 = oldest).
func (r *ring[T]) at(i int) T { return r.buf[(r.head+i)&(len(r.buf)-1)] }

// set stores an entry at logical index i.
func (r *ring[T]) set(i int, v T) { r.buf[(r.head+i)&(len(r.buf)-1)] = v }

// grow doubles the ring, unwrapping the live window to the front.
func (r *ring[T]) grow() {
	newCap := 8
	if len(r.buf) > 0 {
		newCap = len(r.buf) * 2
	}
	nb := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf = nb
	r.head = 0
}

// reserve grows the ring's buffer until it holds at least n entries, so
// construction-time callers can move the first growth steps off the
// simulation hot path.
func (r *ring[T]) reserve(n int) {
	for len(r.buf) < n {
		r.grow()
	}
}

// pushBack appends at the logical end.
func (r *ring[T]) pushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.set(r.n, v)
	r.n++
}

// pushFront prepends before logical index 0.
func (r *ring[T]) pushFront(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = v
	r.n++
}

// popFront removes and returns the oldest entry, zeroing its slot so the
// ring retains no reference.
func (r *ring[T]) popFront() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v, true
}
