package simrt

// asmQueue is one core's FIFO Assembly Queue of committed executions,
// layered on the shared power-of-two ring. The runtime's hot operations —
// front pop on every worker step, back push on every dispatch, and front
// push for queue-jumping width-1 critical assemblies — are all O(1) index
// moves; the old slice implementation paid an O(n) copy for the front
// operations on every single dispatch.
type asmQueue struct {
	ring[*assembly]
}

// PushBack enqueues at the tail (normal dispatch order).
func (q *asmQueue) PushBack(a *assembly) { q.pushBack(a) }

// PushFront enqueues at the head: width-1 high-priority assemblies jump the
// queue (see dispatch for why this cannot deadlock).
func (q *asmQueue) PushFront(a *assembly) { q.pushFront(a) }

// PopFront dequeues the head assembly; nil when empty.
func (q *asmQueue) PopFront() *assembly {
	a, _ := q.popFront()
	return a
}

// clear empties the queue, keeping its storage but releasing every queued
// assembly (a stalled run may leave residue behind).
func (q *asmQueue) clear() {
	for i := range q.buf {
		q.buf[i] = nil
	}
	q.head = 0
	q.n = 0
}
