package simrt_test

import (
	"fmt"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

// TestSmokeFig4Shape runs a scaled-down Figure 4a scenario (MatMul DAG,
// co-runner on Denver core 0) under all policies and prints throughputs.
func TestSmokeFig4Shape(t *testing.T) {
	for _, par := range []int{2, 4, 6} {
		results := map[string]float64{}
		for _, pol := range core.All() {
			topo := topology.TX2()
			model := machine.New(topo)
			interfere.CoRunCPU(model, []int{0}, 0.5)
			g := workloads.BuildSynthetic(workloads.SyntheticConfig{
				Kernel:      workloads.MatMul,
				Tile:        64,
				Tasks:       3200,
				Parallelism: par,
			})
			rt, err := simrt.New(simrt.Config{Topo: topo, Model: model, Policy: pol, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			coll, err := rt.Run(g)
			if err != nil {
				t.Fatalf("policy %s: %v", pol.Name(), err)
			}
			results[pol.Name()] = coll.Throughput()
		}
		if testing.Verbose() {
			fmt.Printf("P=%d:", par)
			for _, p := range core.All() {
				fmt.Printf("  %s=%.0f", p.Name(), results[p.Name()])
			}
			fmt.Println()
		}
		if results["DA"] <= results["RWS"] {
			t.Errorf("P=%d: DA (%.0f) not above RWS (%.0f) under interference", par, results["DA"], results["RWS"])
		}
		if par == 2 && results["DAM-C"] < 1.5*results["RWS"] {
			t.Errorf("P=2: DAM-C (%.0f) less than 1.5x RWS (%.0f)", results["DAM-C"], results["RWS"])
		}
	}
}
