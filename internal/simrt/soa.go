package simrt

// Structure-of-arrays task state. The scheduler's inner loop used to chase
// a *dag.Task pointer for every field it touched and to route every
// completion through the graph's mutex; at scale-out core counts that
// pointer traffic and the per-completion allocation in dag.Complete
// dominated the profile. The runtime now mirrors the fields the hot loop
// reads repeatedly into dense slices indexed by task id (a task's dag ID
// is its insertion index), and queues pass packed int32 references instead
// of pointers, so queue storage is GC-invisible and a priority check is a
// bit test. Fields read once per task execution (Cost, Iter, Label, Body)
// deliberately stay on the dag.Task: mirroring them would cost more in
// copy and allocation than the single pointer access they replace.

import (
	"dynasym/internal/dag"
	"dynasym/internal/ptt"
)

// A tref is a packed task reference: task index << 1 | high-priority bit.
func makeTref(idx int, high bool) int32 {
	r := int32(idx) << 1
	if high {
		r |= 1
	}
	return r
}

// taskSoA is the dense mirror of per-task scheduling state.
type taskSoA struct {
	// static is set when the graph provably cannot change mid-run: no task
	// has a completion hook and no exec hook is installed. In static mode
	// completion runs over the CSR below — no graph mutex, no per-ready
	// allocation, no state-machine CAS — and the dag.Graph is finalized
	// once in bulk when the last task drains (Graph.MarkDrained). In
	// dynamic mode completion defers to Graph.Complete and the mirror
	// grows lazily as hooks insert tasks.
	static bool
	ptr    []*dag.Task
	high   []bool
	typ    []ptt.TypeID
	// Static-mode dependency state, snapshot at Start: pending counts and
	// a CSR of successor indices (succIdx[succOff[i]:succOff[i+1]]).
	pending []int32
	succOff []int32
	succIdx []int32
	// remaining counts unfinished tasks in static mode; total is the task
	// count at Start, used to detect mid-run graph mutation.
	remaining int
	total     int
}

// resize returns sl with length n, reusing capacity. Callers overwrite
// every element, so stale values never escape.
func resize[T any](sl []T, n int) []T {
	if cap(sl) < n {
		return make([]T, n)
	}
	return sl[:n]
}

// build (re)populates the mirror from the tasks already snapshot into
// s.ptr, reusing every slice's capacity so a pooled runtime rebuilds it
// allocation-free.
func (s *taskSoA) build(static bool) {
	n := len(s.ptr)
	s.static = static
	s.total = n
	s.remaining = n
	s.high = resize(s.high, n)
	s.typ = resize(s.typ, n)
	for i, t := range s.ptr {
		s.high[i] = t.High
		s.typ[i] = t.Type
	}
	if !static {
		// Dynamic graphs keep readiness in the graph itself; the CSR would
		// go stale as hooks add edges.
		s.pending = s.pending[:0]
		s.succOff = s.succOff[:0]
		s.succIdx = s.succIdx[:0]
		return
	}
	edges := 0
	for _, t := range s.ptr {
		edges += len(t.Succs())
	}
	s.pending = resize(s.pending, n)
	s.succOff = resize(s.succOff, n+1)
	s.succIdx = resize(s.succIdx, edges)
	off := int32(0)
	for i, t := range s.ptr {
		s.succOff[i] = off
		for _, succ := range t.Succs() {
			s.succIdx[off] = int32(succ.ID())
			off++
		}
		s.pending[i] = t.PendingDeps()
	}
	s.succOff[n] = off
}

// buildSoA snapshots the graph into the runtime's task mirror and decides
// whether the static fast path applies.
func (rt *Runtime) buildSoA(g *dag.Graph) {
	rt.soa.ptr = g.AppendTasks(rt.soa.ptr[:0], 0)
	static := rt.cfg.Hook == nil
	if static {
		for _, t := range rt.soa.ptr {
			if t.OnComplete != nil {
				static = false
				break
			}
		}
	}
	rt.soa.build(static)
}

// tref returns the packed reference for a task, growing the mirror when
// completion hooks inserted tasks the snapshot has not seen (graph IDs are
// insertion-ordered, so appending the graph's tail catches the mirror up).
func (rt *Runtime) tref(t *dag.Task) int32 {
	idx := int(t.ID())
	s := &rt.soa
	if idx >= len(s.ptr) {
		from := len(s.ptr)
		s.ptr = rt.graph.AppendTasks(s.ptr, from)
		for _, nt := range s.ptr[from:] {
			s.high = append(s.high, nt.High)
			s.typ = append(s.typ, nt.Type)
		}
	}
	return makeTref(idx, s.high[idx])
}
