package simrt

import (
	"testing"

	"dynasym/internal/xrand"
)

// The deque is single-owner by design, but its steal/pop invariants are
// load-bearing for the whole scheduler: PopBottom must be LIFO among its
// candidates, PopHigh must return the newest high-priority task,
// StealOldest must return the oldest stealable one, and no operation may
// lose or duplicate a task. This test drives a long randomized operation
// sequence against a reference slice model and checks every removal
// against the model's prediction. It runs under -race in CI like the rest
// of the package.
func TestDequeRandomizedInvariants(t *testing.T) {
	rng := xrand.New(12345)
	var d deque
	var model []int32 // model[i] mirrors d's i-th queued tref
	high := func(r int32) bool { return r&1 != 0 }

	modelRemove := func(i int) int32 {
		tk := model[i]
		model = append(model[:i], model[i+1:]...)
		return tk
	}
	// Reference predictions mirroring the documented contracts. The
	// sentinel -1 means "no removal expected" (trefs are non-negative).
	predictPopBottom := func(preferHigh bool) int32 {
		if len(model) == 0 {
			return -1
		}
		idx := len(model) - 1
		if preferHigh && !high(model[idx]) {
			for i := len(model) - 2; i >= 0; i-- {
				if high(model[i]) {
					idx = i
					break
				}
			}
		}
		return modelRemove(idx)
	}
	predictPopHigh := func() int32 {
		for i := len(model) - 1; i >= 0; i-- {
			if high(model[i]) {
				return modelRemove(i)
			}
		}
		return -1
	}
	predictSteal := func(allowHigh bool) int32 {
		for i, tk := range model {
			if allowHigh || !high(tk) {
				return modelRemove(i)
			}
		}
		return -1
	}

	live := map[int32]bool{}
	ctr := 0
	for op := 0; op < 20000; op++ {
		switch rng.Intn(5) {
		case 0, 1: // push (slightly biased so the deque stays populated)
			ctr++
			tk := makeTref(ctr, rng.Intn(3) == 0)
			d.PushBottom(tk)
			model = append(model, tk)
			if live[tk] {
				t.Fatalf("op %d: tref pushed twice", op)
			}
			live[tk] = true
		case 2:
			preferHigh := rng.Intn(2) == 0
			want := predictPopBottom(preferHigh)
			got, ok := d.PopBottom(preferHigh)
			checkRemoval(t, op, "PopBottom", want, got, ok, live)
		case 3:
			want := predictPopHigh()
			got, ok := d.PopHigh()
			checkRemoval(t, op, "PopHigh", want, got, ok, live)
		case 4:
			allowHigh := rng.Intn(2) == 0
			wantStealable := false
			for _, tk := range model {
				if allowHigh || !high(tk) {
					wantStealable = true
					break
				}
			}
			if got := d.HasStealable(allowHigh); got != wantStealable {
				t.Fatalf("op %d: HasStealable(%v) = %v, want %v", op, allowHigh, got, wantStealable)
			}
			want := predictSteal(allowHigh)
			got, ok := d.StealOldest(allowHigh)
			checkRemoval(t, op, "StealOldest", want, got, ok, live)
		}
		if d.Len() != len(model) {
			t.Fatalf("op %d: deque len %d, model len %d", op, d.Len(), len(model))
		}
		wantLow := 0
		for _, tk := range model {
			if !high(tk) {
				wantLow++
			}
		}
		if d.LowLen() != wantLow {
			t.Fatalf("op %d: LowLen %d, model %d", op, d.LowLen(), wantLow)
		}
	}
	// Drain: every remaining task must come out exactly once, oldest first.
	for len(model) > 0 {
		want := modelRemove(0)
		got, ok := d.StealOldest(true)
		if !ok || got != want {
			t.Fatalf("drain: got %v ok=%v, want %v", got, ok, want)
		}
		delete(live, got)
	}
	if d.Len() != 0 {
		t.Fatalf("deque not empty after drain: %d left", d.Len())
	}
}

// checkRemoval verifies one removal against the model's prediction and
// maintains the no-loss/no-duplication ledger.
func checkRemoval(t *testing.T, op int, what string, want, got int32, ok bool, live map[int32]bool) {
	t.Helper()
	if (want >= 0) != ok {
		t.Fatalf("op %d: %s ok=%v, model predicted %v", op, what, ok, want)
	}
	if !ok {
		return
	}
	if got != want {
		t.Fatalf("op %d: %s returned wrong tref (high=%v, want high=%v)", op, what, got&1 != 0, want&1 != 0)
	}
	if !live[got] {
		t.Fatalf("op %d: %s returned a tref that was already removed", op, what)
	}
	delete(live, got)
}
