package heatdriver

import (
	"sync"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/mpilite"
	"dynasym/internal/topology"
)

// runAll executes a full communicator in-process and returns the results.
func runAll(t *testing.T, ranks int, cfg Config) []Result {
	t.Helper()
	comms := mpilite.NewInProc(ranks)
	results := make([]Result, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = Run(cfg, comms[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results
}

func baseCfg(pol core.Policy) Config {
	return Config{
		Rows: 32, Cols: 32, Blocks: 4, Iters: 12,
		Topo:   topology.Symmetric(2),
		Policy: pol,
		Seed:   3,
	}
}

func TestRanksAgreeOnResidual(t *testing.T) {
	results := runAll(t, 3, baseCfg(core.DAMC()))
	for r := 1; r < len(results); r++ {
		if results[r].Residual != results[0].Residual {
			t.Fatalf("rank %d residual %g != rank 0 %g", r, results[r].Residual, results[0].Residual)
		}
	}
	want := int64(12 * (4 + 1))
	for r, res := range results {
		if res.Tasks != want {
			t.Fatalf("rank %d executed %d tasks, want %d", r, res.Tasks, want)
		}
	}
}

func TestPolicyIndependentResult(t *testing.T) {
	// The numerical result must not depend on the scheduling policy.
	r1 := runAll(t, 2, baseCfg(core.RWS()))
	r2 := runAll(t, 2, baseCfg(core.DAMP()))
	if r1[0].Residual != r2[0].Residual {
		t.Fatalf("policy changed the result: %g vs %g", r1[0].Residual, r2[0].Residual)
	}
}

func TestSingleRank(t *testing.T) {
	res := runAll(t, 1, baseCfg(core.DAMC()))
	if res[0].Residual <= 0 {
		t.Fatal("single-rank run produced no heat")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	comms := mpilite.NewInProc(1)
	cfg := baseCfg(core.RWS())
	cfg.Blocks = 0
	if _, err := Run(cfg, comms[0]); err == nil {
		t.Fatal("invalid config accepted")
	}
}
