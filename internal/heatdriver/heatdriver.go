// Package heatdriver runs the distributed 2D Heat stencil for real: each
// rank executes its slab of the grid on the real task runtime
// (internal/xtr) and exchanges boundary rows with its neighbours through
// mpilite inside high-priority message-passing tasks — the real-mode
// counterpart of the simulated Figure 10 experiment.
package heatdriver

import (
	"encoding/binary"
	"fmt"
	"math"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/kernels"
	"dynasym/internal/mpilite"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
	"dynasym/internal/xtr"
)

// Config parameterizes one rank's run. Every rank must use identical Rows,
// Cols, Blocks and Iters.
type Config struct {
	// Rows is the number of interior rows owned by this rank; Cols the
	// row width. Two extra ghost rows hold the neighbours' boundaries.
	Rows, Cols int
	// Blocks is the number of row blocks (compute tasks per iteration).
	Blocks int
	// Iters is the number of Jacobi iterations.
	Iters int
	// Topo and Policy configure the local runtime.
	Topo   *topology.Platform
	Policy core.Policy
	// Seed drives the runtime's stealing randomness.
	Seed uint64
}

// Result summarizes one rank's run.
type Result struct {
	// Tasks is the number of tasks executed by this rank.
	Tasks int64
	// Seconds is the rank's makespan.
	Seconds float64
	// Residual is the global sum of squares of the final grid (identical
	// on every rank after the closing Allreduce).
	Residual float64
}

// state holds one rank's grids: (Rows+2)×Cols with ghost rows 0 and
// Rows+1. Iteration i reads grid[i%2] and writes grid[(i+1)%2].
type state struct {
	cfg  Config
	comm mpilite.Comm
	grid [2][]float64
}

// Run executes the configured number of iterations and returns the rank's
// result. It blocks until the whole communicator finishes (final
// Allreduce).
func Run(cfg Config, comm mpilite.Comm) (Result, error) {
	if cfg.Rows < cfg.Blocks || cfg.Blocks < 1 || cfg.Cols < 3 || cfg.Iters < 1 {
		return Result{}, fmt.Errorf("heatdriver: invalid config %+v", cfg)
	}
	st := &state{cfg: cfg, comm: comm}
	n := (cfg.Rows + 2) * cfg.Cols
	st.grid[0] = make([]float64, n)
	st.grid[1] = make([]float64, n)
	// Deterministic initial condition: a hot left column plus a
	// rank-dependent hot row so ranks differ.
	for r := 1; r <= cfg.Rows; r++ {
		st.grid[0][r*cfg.Cols] = 100
		st.grid[1][r*cfg.Cols] = 100
	}
	hot := 1 + (comm.Rank()*7)%cfg.Rows
	for c := 0; c < cfg.Cols; c++ {
		st.grid[0][hot*cfg.Cols+c] = 50
		st.grid[1][hot*cfg.Cols+c] = 50
	}

	g := st.build()
	rt, err := xtr.New(xtr.Config{Topo: cfg.Topo, Policy: cfg.Policy, Seed: cfg.Seed})
	if err != nil {
		return Result{}, err
	}
	coll, err := rt.Run(g)
	if err != nil {
		return Result{}, err
	}
	// Global residual: a correctness check that all ranks agree on.
	local := 0.0
	final := st.grid[cfg.Iters%2]
	for r := 1; r <= cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			v := final[r*cfg.Cols+c]
			local += v * v
		}
	}
	global, err := comm.Allreduce(mpilite.OpSum, []float64{local})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Tasks:    coll.TasksDone(),
		Seconds:  coll.Makespan(),
		Residual: global[0],
	}, nil
}

// blockRows returns block b's half-open interior row interval (1-based,
// ghosts excluded).
func (st *state) blockRows(b int) (lo, hi int) {
	lo = 1 + b*st.cfg.Rows/st.cfg.Blocks
	hi = 1 + (b+1)*st.cfg.Rows/st.cfg.Blocks
	return lo, hi
}

// exchangeBody swaps boundary rows with both neighbours for iteration
// iter. Only the leader member performs communication; mpilite's buffered
// sends prevent symmetric deadlock.
func (st *state) exchangeBody(iter int) func(dag.Exec) {
	return func(e dag.Exec) {
		if e.Part != 0 {
			return
		}
		cols := st.cfg.Cols
		src := st.grid[iter%2]
		rank, size := st.comm.Rank(), st.comm.Size()
		// Send up / receive from up into ghost row 0.
		if rank > 0 {
			payload := encodeRow(src[cols : 2*cols])
			if err := st.comm.Send(rank-1, iter, payload); err != nil {
				panic(fmt.Sprintf("heatdriver: send up: %v", err))
			}
		}
		if rank < size-1 {
			payload := encodeRow(src[st.cfg.Rows*cols : (st.cfg.Rows+1)*cols])
			if err := st.comm.Send(rank+1, iter, payload); err != nil {
				panic(fmt.Sprintf("heatdriver: send down: %v", err))
			}
		}
		if rank > 0 {
			data, err := st.comm.Recv(rank-1, iter)
			if err != nil {
				panic(fmt.Sprintf("heatdriver: recv up: %v", err))
			}
			decodeRow(data, src[0:cols])
		}
		if rank < size-1 {
			data, err := st.comm.Recv(rank+1, iter)
			if err != nil {
				panic(fmt.Sprintf("heatdriver: recv down: %v", err))
			}
			decodeRow(data, src[(st.cfg.Rows+1)*cols:(st.cfg.Rows+2)*cols])
		}
	}
}

// blockBody updates one block of one iteration.
func (st *state) blockBody(iter, b int) func(dag.Exec) {
	return func(e dag.Exec) {
		cols := st.cfg.Cols
		src := st.grid[iter%2]
		dst := st.grid[(iter+1)%2]
		lo, hi := st.blockRows(b)
		span := hi - lo
		mlo := lo + e.Part*span/e.Width
		mhi := lo + (e.Part+1)*span/e.Width
		for r := mlo; r < mhi; r++ {
			row := r * cols
			for c := 1; c < cols-1; c++ {
				dst[row+c] = 0.2 * (src[row+c] + src[row+c-1] + src[row+c+1] + src[row-cols+c] + src[row+cols+c])
			}
			dst[row] = src[row]
			dst[row+cols-1] = src[row+cols-1]
		}
	}
}

// build constructs this rank's task graph: per iteration one high-priority
// exchange task plus Blocks compute tasks, with the same dependency shape
// as the simulated workload (workloads.HeatDist).
func (st *state) build() *dag.Graph {
	g := dag.New()
	B := st.cfg.Blocks
	commCost := workloads.NewHeatDist(workloads.HeatDistConfig{
		Nodes: st.comm.Size(), BlocksPerNode: B, Iters: st.cfg.Iters,
		RowsPerBlock: st.cfg.Rows / B, Cols: st.cfg.Cols,
	})
	prev := make([]*dag.Task, B)
	var prevComm *dag.Task
	for iter := 0; iter < st.cfg.Iters; iter++ {
		comm := &dag.Task{
			Label: fmt.Sprintf("exchange[%d]", iter),
			Type:  kernels.TypeComm,
			High:  true,
			Cost:  commCost.CommCost,
			Body:  st.exchangeBody(iter),
			Iter:  iter,
		}
		var cdeps []*dag.Task
		if prevComm != nil {
			cdeps = append(cdeps, prevComm, prev[0])
			if B > 1 {
				cdeps = append(cdeps, prev[B-1])
			}
		}
		g.Add(comm, cdeps...)
		prevComm = comm

		cur := make([]*dag.Task, B)
		for b := 0; b < B; b++ {
			t := &dag.Task{
				Label: fmt.Sprintf("heat[%d.%d]", iter, b),
				Type:  workloads.HeatTypeCompute,
				Cost:  commCost.ComputeCost,
				Body:  st.blockBody(iter, b),
				Iter:  iter,
			}
			// Only the edge blocks read ghost rows, so only they wait
			// for the exchange (same shape as the simulated workload).
			var deps []*dag.Task
			if b == 0 || b == B-1 {
				deps = append(deps, comm)
			}
			if iter > 0 {
				deps = append(deps, prev[b])
				if b > 0 {
					deps = append(deps, prev[b-1])
				}
				if b < B-1 {
					deps = append(deps, prev[b+1])
				}
			}
			g.Add(t, deps...)
			cur[b] = t
		}
		prev = cur
	}
	return g
}

// encodeRow packs a float64 row little-endian.
func encodeRow(row []float64) []byte {
	buf := make([]byte, 8*len(row))
	for i, v := range row {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// decodeRow unpacks a row in place.
func decodeRow(data []byte, into []float64) {
	for i := range into {
		into[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
}
