// Package mpilite is a small rank-based message-passing substrate in the
// spirit of the MPI subset the paper's distributed 2D Heat stencil needs:
// point-to-point Send/Recv with tags, Sendrecv for boundary exchange,
// Barrier, and Allreduce for residual reduction.
//
// Two transports are provided:
//
//   - InProc: all ranks in one process, delivery through in-memory inboxes
//     (used by tests and by multi-goroutine example runs);
//   - TCP (see tcp.go): one process per rank on a real network, stdlib
//     net with length-prefixed binary framing, substituting for the
//     paper's Intel MPI over InfiniBand.
//
// The package is intentionally blocking and deterministic in-order per
// (sender, tag) pair, like MPI's non-overtaking rule.
package mpilite

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Comm is one rank's endpoint of a communicator.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to rank `to` under the tag. It may buffer; it
	// never blocks waiting for the receiver.
	Send(to, tag int, data []byte) error
	// Recv blocks until a message from rank `from` with the tag arrives
	// and returns its payload. Messages from the same (from, tag) pair
	// arrive in send order.
	Recv(from, tag int) ([]byte, error)
	// Sendrecv sends to `to` and receives from `from` with the same tag,
	// without deadlocking on symmetric exchanges.
	Sendrecv(to, tag int, data []byte, from int) ([]byte, error)
	// Barrier blocks until every rank has entered it.
	Barrier() error
	// Allreduce combines each rank's vector elementwise with op and
	// returns the combined vector on every rank.
	Allreduce(op ReduceOp, vals []float64) ([]float64, error)
	// Close releases the endpoint. Pending receivers fail.
	Close() error
}

// ReduceOp is an elementwise reduction operator.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	default:
		panic(fmt.Sprintf("mpilite: unknown ReduceOp %d", int(op)))
	}
}

// Reserved internal tags; applications must use tags in [0, 1<<30).
const (
	tagBarrierGather  = 1<<30 + iota // rank → 0
	tagBarrierRelease                // 0 → rank
	tagReduceGather
	tagReduceBcast
)

// maxUserTag is the first invalid application tag.
const maxUserTag = 1 << 30

type msgKey struct {
	from, tag int
}

// inbox queues incoming messages and matches them to blocked receivers.
type inbox struct {
	mu     sync.Mutex
	queues map[msgKey][][]byte
	waits  map[msgKey][]chan []byte
	closed bool
}

func newInbox() *inbox {
	return &inbox{queues: make(map[msgKey][][]byte), waits: make(map[msgKey][]chan []byte)}
}

// deliver hands an incoming payload to a waiting receiver or queues it.
func (ib *inbox) deliver(from, tag int, data []byte) {
	k := msgKey{from, tag}
	ib.mu.Lock()
	if ws := ib.waits[k]; len(ws) > 0 {
		ch := ws[0]
		if len(ws) == 1 {
			delete(ib.waits, k)
		} else {
			ib.waits[k] = ws[1:]
		}
		ib.mu.Unlock()
		ch <- data
		return
	}
	ib.queues[k] = append(ib.queues[k], data)
	ib.mu.Unlock()
}

// recv blocks until a message for the key is available.
func (ib *inbox) recv(from, tag int) ([]byte, error) {
	k := msgKey{from, tag}
	ib.mu.Lock()
	if ib.closed {
		ib.mu.Unlock()
		return nil, fmt.Errorf("mpilite: communicator closed")
	}
	if q := ib.queues[k]; len(q) > 0 {
		data := q[0]
		if len(q) == 1 {
			delete(ib.queues, k)
		} else {
			ib.queues[k] = q[1:]
		}
		ib.mu.Unlock()
		return data, nil
	}
	ch := make(chan []byte, 1)
	ib.waits[k] = append(ib.waits[k], ch)
	ib.mu.Unlock()
	data, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("mpilite: communicator closed while receiving")
	}
	return data, nil
}

// close fails all blocked receivers.
func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	for k, ws := range ib.waits {
		for _, ch := range ws {
			close(ch)
		}
		delete(ib.waits, k)
	}
	ib.mu.Unlock()
}

// validate checks rank and tag arguments shared by the transports.
// Internal collective tags (≥ maxUserTag) are legal here; the documented
// application range is [0, maxUserTag).
func validate(size, self, peer, tag int) error {
	if peer < 0 || peer >= size {
		return fmt.Errorf("mpilite: rank %d out of range 0..%d", peer, size-1)
	}
	if peer == self {
		return fmt.Errorf("mpilite: self-messaging (rank %d) is not supported", self)
	}
	if tag < 0 {
		return fmt.Errorf("mpilite: negative tag %d", tag)
	}
	return nil
}

// collectives implements Barrier and Allreduce on top of Send/Recv; both
// transports embed it.
type collectives struct {
	comm Comm
}

func (c collectives) barrier() error {
	self, size := c.comm.Rank(), c.comm.Size()
	if size == 1 {
		return nil
	}
	if self == 0 {
		for r := 1; r < size; r++ {
			if _, err := c.comm.Recv(r, tagBarrierGather); err != nil {
				return err
			}
		}
		for r := 1; r < size; r++ {
			if err := c.comm.Send(r, tagBarrierRelease, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.comm.Send(0, tagBarrierGather, nil); err != nil {
		return err
	}
	_, err := c.comm.Recv(0, tagBarrierRelease)
	return err
}

func (c collectives) allreduce(op ReduceOp, vals []float64) ([]float64, error) {
	self, size := c.comm.Rank(), c.comm.Size()
	out := append([]float64(nil), vals...)
	if size == 1 {
		return out, nil
	}
	if self == 0 {
		for r := 1; r < size; r++ {
			data, err := c.comm.Recv(r, tagReduceGather)
			if err != nil {
				return nil, err
			}
			peer, err := decodeFloats(data)
			if err != nil {
				return nil, err
			}
			if len(peer) != len(out) {
				return nil, fmt.Errorf("mpilite: allreduce length mismatch: %d vs %d", len(peer), len(out))
			}
			for i := range out {
				out[i] = op.apply(out[i], peer[i])
			}
		}
		enc := encodeFloats(out)
		for r := 1; r < size; r++ {
			if err := c.comm.Send(r, tagReduceBcast, enc); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if err := c.comm.Send(0, tagReduceGather, encodeFloats(out)); err != nil {
		return nil, err
	}
	data, err := c.comm.Recv(0, tagReduceBcast)
	if err != nil {
		return nil, err
	}
	return decodeFloats(data)
}

// encodeFloats packs a float64 slice little-endian.
func encodeFloats(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// decodeFloats unpacks a little-endian float64 slice.
func decodeFloats(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("mpilite: float payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// inprocComm is one rank of an in-process communicator.
type inprocComm struct {
	rank  int
	peers []*inbox // indexed by rank; peers[rank] is our own inbox
	coll  collectives
}

// NewInProc builds an n-rank in-process communicator and returns the n
// endpoints. Endpoints are safe for concurrent use by multiple goroutines
// of the same rank.
func NewInProc(n int) []Comm {
	if n <= 0 {
		panic("mpilite: NewInProc needs n >= 1")
	}
	inboxes := make([]*inbox, n)
	for i := range inboxes {
		inboxes[i] = newInbox()
	}
	comms := make([]Comm, n)
	for i := range comms {
		c := &inprocComm{rank: i, peers: inboxes}
		c.coll = collectives{comm: c}
		comms[i] = c
	}
	return comms
}

func (c *inprocComm) Rank() int { return c.rank }
func (c *inprocComm) Size() int { return len(c.peers) }

func (c *inprocComm) Send(to, tag int, data []byte) error {
	if err := validate(len(c.peers), c.rank, to, tag); err != nil {
		return err
	}
	// Copy so the sender may reuse its buffer, like MPI's send semantics.
	c.peers[to].deliver(c.rank, tag, append([]byte(nil), data...))
	return nil
}

func (c *inprocComm) Recv(from, tag int) ([]byte, error) {
	if err := validate(len(c.peers), c.rank, from, tag); err != nil {
		return nil, err
	}
	return c.peers[c.rank].recv(from, tag)
}

func (c *inprocComm) Sendrecv(to, tag int, data []byte, from int) ([]byte, error) {
	if err := c.Send(to, tag, data); err != nil {
		return nil, err
	}
	return c.Recv(from, tag)
}

func (c *inprocComm) Barrier() error { return c.coll.barrier() }

func (c *inprocComm) Allreduce(op ReduceOp, vals []float64) ([]float64, error) {
	return c.coll.allreduce(op, vals)
}

func (c *inprocComm) Close() error {
	c.peers[c.rank].close()
	return nil
}
