package mpilite

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// The TCP transport runs one process (or one endpoint) per rank over a real
// network, substituting for the paper's Intel MPI over InfiniBand.
//
// Bootstrap protocol: rank 0 listens on a well-known address; every other
// rank dials it, announces its rank and its own listener address, and
// receives the full address table once all ranks have registered. Each
// rank then eagerly completes a full mesh: it dials every lower-ranked
// peer and waits for the inbound connections of higher-ranked peers, so
// every unordered pair owns exactly one connection and no dial races are
// possible.
//
// Wire format, little-endian:
//
//	handshake: u32 magic, u32 rank
//	frame:     u32 from, u32 tag, u32 length, payload
const wireMagic = 0x4d50494c // "MPIL"

// maxFrame bounds a frame payload to catch corrupted length prefixes.
const maxFrame = 1 << 30

// tcpComm is one rank of a TCP communicator.
type tcpComm struct {
	rank, size int
	inbox      *inbox
	coll       collectives

	listener net.Listener
	addrs    []string // rank → dialable address

	mu    sync.Mutex
	conns map[int]net.Conn // rank → established connection

	closed  sync.Once
	closeCh chan struct{}
	wg      sync.WaitGroup
}

// DialTCP creates the endpoint for `rank` in a size-rank communicator whose
// rank 0 bootstraps at rootAddr (e.g. "127.0.0.1:7000"). All ranks must
// call DialTCP concurrently; the call returns once the address table is
// complete. timeout bounds the whole bootstrap.
func DialTCP(rank, size int, rootAddr string, timeout time.Duration) (Comm, error) {
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpilite: rank %d out of range 0..%d", rank, size-1)
	}
	c := &tcpComm{
		rank:    rank,
		size:    size,
		inbox:   newInbox(),
		conns:   make(map[int]net.Conn),
		closeCh: make(chan struct{}),
	}
	c.coll = collectives{comm: c}

	deadline := time.Now().Add(timeout)
	var err error
	if rank == 0 {
		err = c.bootstrapRoot(rootAddr, deadline)
	} else {
		err = c.bootstrapPeer(rootAddr, deadline)
	}
	if err != nil {
		return nil, err
	}
	// Accept loop for inbound peer connections (from higher ranks), then
	// complete the mesh eagerly: every rank dials all lower ranks, so by
	// the time DialTCP returns each pair has exactly one connection.
	c.wg.Add(1)
	go c.acceptLoop()
	if err := c.completeMesh(deadline); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// completeMesh dials every lower-ranked peer (the connection to rank 0
// already exists from the bootstrap) and waits until every higher-ranked
// peer has dialed us.
func (c *tcpComm) completeMesh(deadline time.Time) error {
	for r := 1; r < c.rank; r++ {
		conn, err := net.DialTimeout("tcp", c.addrs[r], time.Until(deadline))
		if err != nil {
			return fmt.Errorf("mpilite: dial rank %d: %w", r, err)
		}
		if err := writeRegistration(conn, c.rank, c.listener.Addr().String()); err != nil {
			conn.Close()
			return err
		}
		c.adoptConn(r, conn)
	}
	for {
		c.mu.Lock()
		n := len(c.conns)
		c.mu.Unlock()
		if n >= c.size-1 {
			debugf("rank %d mesh complete (%d peers)", c.rank, n)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mpilite: rank %d mesh incomplete: %d/%d connections", c.rank, n, c.size-1)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// bootstrapRoot collects every rank's listener address and broadcasts the
// table.
func (c *tcpComm) bootstrapRoot(rootAddr string, deadline time.Time) error {
	ln, err := net.Listen("tcp", rootAddr)
	if err != nil {
		return fmt.Errorf("mpilite: root listen: %w", err)
	}
	c.listener = ln
	c.addrs = make([]string, c.size)
	c.addrs[0] = ln.Addr().String()
	type reg struct {
		rank int
		addr string
		conn net.Conn
	}
	regs := make([]reg, 0, c.size-1)
	for len(regs) < c.size-1 {
		if dl, ok := ln.(*net.TCPListener); ok {
			if err := dl.SetDeadline(deadline); err != nil {
				return err
			}
		}
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("mpilite: root accept: %w", err)
		}
		// Bound the handshake read so a foreign or dead connection cannot
		// hang the bootstrap.
		conn.SetReadDeadline(deadline)
		peerRank, addr, err := readRegistration(conn)
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			conn.Close()
			return err
		}
		if peerRank <= 0 || peerRank >= c.size || c.addrs[peerRank] != "" {
			conn.Close()
			return fmt.Errorf("mpilite: bad registration from rank %d", peerRank)
		}
		c.addrs[peerRank] = addr
		regs = append(regs, reg{rank: peerRank, addr: addr, conn: conn})
	}
	// Broadcast the table; the registration connection becomes the
	// messaging connection between 0 and the peer.
	table := encodeAddrs(c.addrs)
	for _, r := range regs {
		if err := writeFrame(r.conn, 0, tagAddrTable, table); err != nil {
			return err
		}
		c.adoptConn(r.rank, r.conn)
	}
	return nil
}

// bootstrapPeer registers with the root and waits for the address table.
func (c *tcpComm) bootstrapPeer(rootAddr string, deadline time.Time) error {
	// Our own listener for higher-rank peers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("mpilite: peer listen: %w", err)
	}
	c.listener = ln

	var conn net.Conn
	for {
		conn, err = net.DialTimeout("tcp", rootAddr, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mpilite: dial root %s: %w", rootAddr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := writeRegistration(conn, c.rank, ln.Addr().String()); err != nil {
		conn.Close()
		return err
	}
	conn.SetReadDeadline(deadline)
	from, tag, payload, err := readRawFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil || from != 0 || tag != tagAddrTable {
		conn.Close()
		return fmt.Errorf("mpilite: waiting for address table: %v", err)
	}
	c.addrs, err = decodeAddrs(payload, c.size)
	if err != nil {
		conn.Close()
		return err
	}
	c.adoptConn(0, conn)
	return nil
}

// tagAddrTable is the bootstrap-only frame tag.
const tagAddrTable = maxUserTag + 100

var debugMesh = os.Getenv("MPILITE_DEBUG") != ""

func debugf(format string, args ...any) {
	if debugMesh {
		fmt.Fprintf(os.Stderr, "mpilite: "+format+"\n", args...)
	}
}

// adoptConn registers an established connection and starts its reader.
func (c *tcpComm) adoptConn(rank int, conn net.Conn) {
	debugf("rank %d adopt conn for peer %d", c.rank, rank)
	c.mu.Lock()
	if old, ok := c.conns[rank]; ok {
		// Keep the existing connection; close the duplicate.
		_ = old
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.conns[rank] = conn
	c.mu.Unlock()
	c.wg.Add(1)
	go c.readLoop(conn)
}

// acceptLoop admits inbound peer connections until Close.
func (c *tcpComm) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			select {
			case <-c.closeCh:
				return
			default:
			}
			return
		}
		peerRank, _, err := readRegistration(conn)
		if err != nil || peerRank < 0 || peerRank >= c.size {
			conn.Close()
			continue
		}
		c.adoptConn(peerRank, conn)
	}
}

// readLoop dispatches inbound frames to the inbox until the connection or
// communicator closes.
func (c *tcpComm) readLoop(conn net.Conn) {
	defer c.wg.Done()
	for {
		from, tag, payload, err := readRawFrame(conn)
		if err != nil {
			return
		}
		c.inbox.deliver(from, tag, payload)
	}
}

// connTo returns the connection to a peer; the mesh is complete after
// DialTCP, so a missing connection means the peer has gone away.
func (c *tcpComm) connTo(rank int) (net.Conn, error) {
	c.mu.Lock()
	conn, ok := c.conns[rank]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mpilite: no connection to rank %d", rank)
	}
	return conn, nil
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return c.size }

func (c *tcpComm) Send(to, tag int, data []byte) error {
	if err := validate(c.size, c.rank, to, tag); err != nil {
		return err
	}
	conn, err := c.connTo(to)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeFrame(conn, c.rank, tag, data)
}

func (c *tcpComm) Recv(from, tag int) ([]byte, error) {
	if err := validate(c.size, c.rank, from, tag); err != nil {
		return nil, err
	}
	return c.inbox.recv(from, tag)
}

func (c *tcpComm) Sendrecv(to, tag int, data []byte, from int) ([]byte, error) {
	if err := c.Send(to, tag, data); err != nil {
		return nil, err
	}
	return c.Recv(from, tag)
}

func (c *tcpComm) Barrier() error { return c.coll.barrier() }

func (c *tcpComm) Allreduce(op ReduceOp, vals []float64) ([]float64, error) {
	return c.coll.allreduce(op, vals)
}

func (c *tcpComm) Close() error {
	c.closed.Do(func() {
		close(c.closeCh)
		c.inbox.close()
		if c.listener != nil {
			c.listener.Close()
		}
		c.mu.Lock()
		for _, conn := range c.conns {
			conn.Close()
		}
		c.mu.Unlock()
	})
	return nil
}

// Wire helpers.

func writeRegistration(conn net.Conn, rank int, addr string) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], wireMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(rank))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	return writeFrame(conn, rank, tagAddrTable, []byte(addr))
}

func readRegistration(conn net.Conn) (rank int, addr string, err error) {
	var hdr [8]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, "", err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != wireMagic {
		return 0, "", fmt.Errorf("mpilite: bad handshake magic")
	}
	rank = int(binary.LittleEndian.Uint32(hdr[4:]))
	from, tag, payload, err := readRawFrame(conn)
	if err != nil {
		return 0, "", err
	}
	if from != rank || tag != tagAddrTable {
		return 0, "", fmt.Errorf("mpilite: bad registration frame")
	}
	return rank, string(payload), nil
}

func writeFrame(conn net.Conn, from, tag int, payload []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(from))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(tag))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := conn.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func readRawFrame(conn net.Conn) (from, tag int, payload []byte, err error) {
	var hdr [12]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	from = int(binary.LittleEndian.Uint32(hdr[0:]))
	tag = int(binary.LittleEndian.Uint32(hdr[4:]))
	n := binary.LittleEndian.Uint32(hdr[8:])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("mpilite: frame length %d exceeds limit", n)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(conn, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return from, tag, payload, nil
}

// encodeAddrs packs the address table as length-prefixed strings.
func encodeAddrs(addrs []string) []byte {
	var buf []byte
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(addrs)))
	buf = append(buf, tmp[:]...)
	for _, a := range addrs {
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(a)))
		buf = append(buf, tmp[:]...)
		buf = append(buf, a...)
	}
	return buf
}

// decodeAddrs unpacks the address table, checking the expected size.
func decodeAddrs(data []byte, want int) ([]string, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("mpilite: short address table")
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n != want {
		return nil, fmt.Errorf("mpilite: address table has %d ranks, want %d", n, want)
	}
	data = data[4:]
	out := make([]string, n)
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("mpilite: truncated address table")
		}
		l := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < l {
			return nil, fmt.Errorf("mpilite: truncated address entry")
		}
		out[i] = string(data[:l])
		data = data[l:]
	}
	return out, nil
}
