package mpilite

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestInProcSendRecv(t *testing.T) {
	comms := NewInProc(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		data, err := comms[1].Recv(0, 7)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if string(data) != "hello" {
			t.Errorf("got %q", data)
		}
	}()
	if err := comms[0].Send(1, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestInProcOrderingPerTag(t *testing.T) {
	comms := NewInProc(2)
	for i := 0; i < 100; i++ {
		if err := comms[0].Send(1, 3, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		data, err := comms[1].Recv(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(i) {
			t.Fatalf("message %d arrived out of order (%d)", i, data[0])
		}
	}
}

func TestSendrecvSymmetricNoDeadlock(t *testing.T) {
	comms := NewInProc(2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			peer := 1 - r
			got, err := comms[r].Sendrecv(peer, 1, []byte{byte(r)}, peer)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			if got[0] != byte(peer) {
				t.Errorf("rank %d got %d", r, got[0])
			}
		}(r)
	}
	wg.Wait()
}

func TestBarrier(t *testing.T) {
	const n = 4
	comms := NewInProc(n)
	var phase [n]int
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phase[r] = 1
			if err := comms[r].Barrier(); err != nil {
				t.Errorf("barrier: %v", err)
				return
			}
			// Everyone must have reached phase 1 by now.
			for i := 0; i < n; i++ {
				if phase[i] != 1 {
					t.Errorf("rank %d passed barrier before rank %d arrived", r, i)
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestAllreduce(t *testing.T) {
	const n = 3
	comms := NewInProc(n)
	var wg sync.WaitGroup
	results := make([][]float64, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out, err := comms[r].Allreduce(OpSum, []float64{float64(r + 1), float64(r)})
			if err != nil {
				t.Errorf("allreduce: %v", err)
				return
			}
			results[r] = out
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if results[r][0] != 6 || results[r][1] != 3 {
			t.Fatalf("rank %d got %v, want [6 3]", r, results[r])
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	comms := NewInProc(2)
	var wg sync.WaitGroup
	var maxOut, minOut []float64
	wg.Add(2)
	go func() {
		defer wg.Done()
		maxOut, _ = comms[0].Allreduce(OpMax, []float64{1})
		minOut, _ = comms[0].Allreduce(OpMin, []float64{1})
	}()
	go func() {
		defer wg.Done()
		comms[1].Allreduce(OpMax, []float64{5})
		comms[1].Allreduce(OpMin, []float64{5})
	}()
	wg.Wait()
	if maxOut[0] != 5 || minOut[0] != 1 {
		t.Fatalf("max=%v min=%v", maxOut, minOut)
	}
}

func TestValidation(t *testing.T) {
	comms := NewInProc(2)
	if err := comms[0].Send(0, 1, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := comms[0].Send(5, 1, nil); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if err := comms[0].Send(1, -1, nil); err == nil {
		t.Fatal("negative tag accepted")
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	comms := NewInProc(2)
	errCh := make(chan error, 1)
	go func() {
		_, err := comms[0].Recv(1, 1)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	comms[0].Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("closed Recv returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

// freeAddr reserves an ephemeral localhost address for a test bootstrap.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestTCPLoopback(t *testing.T) {
	const n = 3
	addr := freeAddr(t)
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([][]float64, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := DialTCP(r, n, addr, 15*time.Second)
			if err != nil {
				errs[r] = err
				return
			}
			defer comm.Close()
			// Ring exchange: send to (r+1) mod n, receive from (r-1).
			next, prev := (r+1)%n, (r+n-1)%n
			if err := comm.Send(next, 4, []byte(fmt.Sprintf("from-%d", r))); err != nil {
				errs[r] = err
				return
			}
			data, err := comm.Recv(prev, 4)
			if err != nil {
				errs[r] = err
				return
			}
			if string(data) != fmt.Sprintf("from-%d", prev) {
				errs[r] = fmt.Errorf("rank %d got %q", r, data)
				return
			}
			if err := comm.Barrier(); err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = comm.Allreduce(OpSum, []float64{float64(r)})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if results[r][0] != 3 {
			t.Fatalf("rank %d allreduce = %v", r, results[r])
		}
	}
}

func TestFloatCodecRoundTrip(t *testing.T) {
	in := []float64{0, 1.5, -2.25, 1e300, -1e-300}
	out, err := decodeFloats(encodeFloats(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("roundtrip[%d] = %g, want %g", i, out[i], in[i])
		}
	}
	if _, err := decodeFloats([]byte{1, 2, 3}); err == nil {
		t.Fatal("odd-length payload accepted")
	}
}
