package experiments

import (
	"bytes"
	"os"
	"testing"

	"dynasym/internal/workloads"
)

func TestTable1MatchesPaper(t *testing.T) {
	res := Table1()
	want := []Table1Row{
		{"RWS", "N/A", "N/A", "N/A"},
		{"RWSM-C", "N/A", "Yes", "Resource Cost"},
		{"FA", "Fixed", "No", "Fast cores"},
		{"FAM-C", "Fixed", "Yes", "Resource Cost"},
		{"DA", "Dynamic", "No", "N/A"},
		{"DAM-C", "Dynamic", "Yes", "Resource Cost"},
		{"DAM-P", "Dynamic", "Yes", "Performance"},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i, w := range want {
		if res.Rows[i] != w {
			t.Fatalf("row %d = %+v, want %+v", i, res.Rows[i], w)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFig5Shape(t *testing.T) {
	res := Fig5(Fig5Config{Scale: testScale})
	if testing.Verbose() {
		res.Render(os.Stdout)
	}
	// FA splits critical tasks 50/50 over the Denver cores.
	if s := res.Share("FA", 0); s < 0.45 || s > 0.55 {
		t.Errorf("FA core-0 share %.2f, want ~0.5", s)
	}
	// The dynamic schedulers put ≥90%% of critical tasks on the clean
	// fast core 1 (paper: 92–98%%).
	for _, name := range []string{"DA", "DAM-C", "DAM-P"} {
		if s := res.Share(name, 1); s < 0.90 {
			t.Errorf("%s core-1 share %.2f, want ≥0.90", name, s)
		}
	}
	// RWS spreads them: no core above 40%%.
	for c := 0; c < 6; c++ {
		if s := res.Share("RWS", c); s > 0.4 {
			t.Errorf("RWS concentrated %.2f on core %d", s, c)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	res := Fig6(Fig5Config{Scale: testScale})
	if testing.Verbose() {
		res.Render(os.Stdout)
	}
	// FA pins half the critical tasks to the interfered core 0, so its
	// core-0 work time is the highest across schedulers (paper Fig. 6).
	fa := res.CoreTime("FA", 0)
	for _, name := range []string{"RWS", "DA", "DAM-C", "DAM-P"} {
		if other := res.CoreTime(name, 0); other >= fa {
			t.Errorf("%s core-0 time %.2f ≥ FA %.2f", name, other, fa)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	grid := Fig7(Fig7Config{Kernel: workloads.MatMul, Parallelisms: []int{2, 6}, Scale: testScale})
	if testing.Verbose() {
		grid.Render(os.Stdout)
	}
	// Dynamic schedulers beat the fixed and random families under DVFS.
	for _, name := range []string{"RWS", "FA"} {
		if grid.Get("DAM-P", 2) <= grid.Get(name, 2) {
			t.Errorf("DAM-P (%.0f) not above %s (%.0f) at P=2 under DVFS",
				grid.Get("DAM-P", 2), name, grid.Get(name, 2))
		}
	}
	// DAM-P ≥ DAM-C at low parallelism (the paper's key DVFS finding:
	// minimizing time beats minimizing cost when parallelism is scarce).
	if grid.Get("DAM-P", 2) < grid.Get("DAM-C", 2) {
		t.Errorf("DAM-P (%.0f) below DAM-C (%.0f) at P=2 under DVFS",
			grid.Get("DAM-P", 2), grid.Get("DAM-C", 2))
	}
}

func TestFig8Shape(t *testing.T) {
	res := Fig8(Fig8Config{Scale: testScale})
	if testing.Verbose() {
		res.Render(os.Stdout)
	}
	// The PTT weight only matters for the smallest tile: its spread is
	// the largest, and the large tiles stay comparatively flat (paper:
	// ~36% for tile 32, stable above).
	small := res.Spread(0)
	for i := 1; i < len(res.Tiles); i++ {
		if s := res.Spread(i); s > small {
			t.Errorf("tile %d spread %.2f exceeds tile 32 spread %.2f", res.Tiles[i], s, small)
		}
	}
	if small < 0.05 {
		t.Errorf("tile 32 spread %.3f too small — weight ratio should matter", small)
	}
	// Throughput decreases with tile size (cubic work growth).
	if res.Tput[0][0] <= res.Tput[len(res.Tiles)-1][0] {
		t.Error("throughput did not decrease with tile size")
	}
}

func TestAblationSteal(t *testing.T) {
	grid, err := Ablation(AblationConfig{Variant: "steal", Parallelisms: []int{2}, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		grid.Render(os.Stdout)
	}
	// Allowing critical tasks to be stolen voids the placement guarantee
	// and should not help DAM-C under interference.
	if grid.Get("DAM-C+steal", 2) > grid.Get("DAM-C", 2)*1.05 {
		t.Errorf("stealing critical tasks helped: %0.f vs %0.f",
			grid.Get("DAM-C+steal", 2), grid.Get("DAM-C", 2))
	}
}

func TestAblationWake(t *testing.T) {
	grid, err := Ablation(AblationConfig{Variant: "wake", Parallelisms: []int{2}, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		grid.Render(os.Stdout)
	}
	// Without wake-time routing critical tasks still get re-placed at
	// dispatch; the result must stay within 2× (sanity) and the variant
	// must run to completion.
	if grid.Get("DAM-C-wake", 2) <= 0 {
		t.Fatal("wake ablation produced no throughput")
	}
}

func TestAblationDHEFT(t *testing.T) {
	grid, err := Ablation(AblationConfig{Variant: "dheft", Parallelisms: []int{2}, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		grid.Render(os.Stdout)
	}
	// dHEFT places every task by earliest finish time; under interference
	// it should comfortably beat RWS.
	if grid.Get("dHEFT", 2) <= grid.Get("RWS", 2) {
		t.Errorf("dHEFT (%.0f) not above RWS (%.0f)", grid.Get("dHEFT", 2), grid.Get("RWS", 2))
	}
}

func TestAblationUnknownVariant(t *testing.T) {
	if _, err := Ablation(AblationConfig{Variant: "bogus"}); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestAblationAlphaRuns(t *testing.T) {
	res := AblationAlpha(AblationConfig{Scale: Scale(0.03)})
	if len(res.Tput) != 5 {
		t.Fatalf("%d alpha points", len(res.Tput))
	}
	for i, v := range res.Tput {
		if v <= 0 {
			t.Fatalf("alpha %g throughput %g", res.Alphas[i], v)
		}
	}
}

func TestAblationWidthRuns(t *testing.T) {
	grid := AblationWidth(AblationConfig{Scale: Scale(0.03)})
	if testing.Verbose() {
		grid.Render(os.Stdout)
	}
	if len(grid.Tput) != 4 {
		t.Fatalf("width ablation rows = %d", len(grid.Tput))
	}
}

func TestFig9Render(t *testing.T) {
	res := Fig9(Fig9Config{Iters: 12, From: 4, To: 9, Scale: Scale(0.125)})
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty fig9 render")
	}
	buf.Reset()
	if err := res.RenderPlaces(&buf, "DAM-P"); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderPlaces(&buf, "nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestScaleApply(t *testing.T) {
	if Scale(0).Apply(100, 10) != 100 {
		t.Fatal("zero scale should be identity")
	}
	if Scale(1).Apply(100, 10) != 100 {
		t.Fatal("unit scale should be identity")
	}
	if Scale(0.1).Apply(100, 10) != 10 {
		t.Fatal("scaling wrong")
	}
	if Scale(0.01).Apply(100, 10) != 10 {
		t.Fatal("minimum not applied")
	}
}

func TestAblationInfer(t *testing.T) {
	grid := AblationInfer(AblationConfig{Parallelisms: []int{2}, Scale: testScale})
	if testing.Verbose() {
		grid.Render(os.Stdout)
	}
	user, inferred, none := grid.Get("user", 2), grid.Get("inferred", 2), grid.Get("none", 2)
	// CATS-style inference recovers the user annotations on the layered
	// DAG (the critical chain is its unique critical path)...
	if inferred < 0.95*user {
		t.Errorf("inferred criticality (%.0f) underperforms user annotations (%.0f)", inferred, user)
	}
	// ...and criticality knowledge is the main lever: without it DAM-C
	// degrades toward RWS.
	if none > 0.6*user {
		t.Errorf("priority-free run (%.0f) too close to annotated run (%.0f)", none, user)
	}
}
