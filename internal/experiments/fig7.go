package experiments

import (
	"fmt"

	"dynasym/internal/core"
	"dynasym/internal/interfere"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// Fig7Config parameterizes the DVFS experiment (Figure 7): the Denver
// cluster's clock alternates between 2035 MHz and 345 MHz with a 10-second
// period (5 s + 5 s) while the synthetic DAGs run; no co-runner.
type Fig7Config struct {
	Kernel       workloads.KernelKind
	Parallelisms []int
	Policies     []core.Policy
	Seed         uint64
	Scale        Scale
	// HiHz/LoHz/HiDur/LoDur override the paper's DVFS wave when non-zero.
	HiHz, LoHz    float64
	HiDur, LoDur  float64
	VictimCluster int
}

func (c Fig7Config) defaults() Fig7Config {
	if len(c.Parallelisms) == 0 {
		c.Parallelisms = []int{2, 3, 4, 5, 6}
	}
	if len(c.Policies) == 0 {
		c.Policies = core.All()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.HiHz == 0 {
		c.HiHz = interfere.PaperHiHz
	}
	if c.LoHz == 0 {
		c.LoHz = interfere.PaperLoHz
	}
	if c.HiDur == 0 {
		c.HiDur = interfere.PaperHiDur
	}
	if c.LoDur == 0 {
		c.LoDur = interfere.PaperLoDur
	}
	return c
}

// spec assembles the declarative scenario: TX2 with a DVFS square wave on
// the victim cluster, swept over parallelism.
func (c Fig7Config) spec() scenario.Spec {
	wcfg := workloads.SyntheticConfig{Kernel: c.Kernel}.Defaults()
	wcfg.Tasks = c.Scale.Apply(wcfg.Tasks, 600)
	return scenario.Spec{
		Name:     fmt.Sprintf("fig7-%s", c.Kernel),
		Platform: scenario.PlatformSpec{Preset: "tx2"},
		Workload: scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: wcfg},
		Disturb: []scenario.Disturbance{{
			Kind:    scenario.DVFS,
			Cluster: c.VictimCluster,
			HiHz:    c.HiHz, LoHz: c.LoHz,
			HiDur: c.HiDur, LoDur: c.LoDur,
		}},
		Policies: c.Policies,
		Points:   scenario.ParallelismPoints(c.Parallelisms...),
		Seed:     c.Seed,
	}
}

// Fig7 runs the DVFS experiment and returns the throughput grid.
func Fig7(cfg Fig7Config) *ThroughputGrid {
	cfg = cfg.defaults()
	res := scenario.MustRun(cfg.spec())
	title := fmt.Sprintf("Figure 7 (%s): throughput under DVFS on the Denver cluster", cfg.Kernel)
	return gridFrom(res, title, "P", cfg.Parallelisms)
}
