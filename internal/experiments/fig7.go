package experiments

import (
	"fmt"

	"dynasym/internal/core"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

// Fig7Config parameterizes the DVFS experiment (Figure 7): the Denver
// cluster's clock alternates between 2035 MHz and 345 MHz with a 10-second
// period (5 s + 5 s) while the synthetic DAGs run; no co-runner.
type Fig7Config struct {
	Kernel       workloads.KernelKind
	Parallelisms []int
	Policies     []core.Policy
	Seed         uint64
	Scale        Scale
	// HiHz/LoHz/HiDur/LoDur override the paper's DVFS wave when non-zero.
	HiHz, LoHz    float64
	HiDur, LoDur  float64
	VictimCluster int
}

func (c Fig7Config) defaults() Fig7Config {
	if len(c.Parallelisms) == 0 {
		c.Parallelisms = []int{2, 3, 4, 5, 6}
	}
	if len(c.Policies) == 0 {
		c.Policies = core.All()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.HiHz == 0 {
		c.HiHz = 2035e6
	}
	if c.LoHz == 0 {
		c.LoHz = 345e6
	}
	if c.HiDur == 0 {
		c.HiDur = 5
	}
	if c.LoDur == 0 {
		c.LoDur = 5
	}
	return c
}

// Fig7 runs the DVFS experiment and returns the throughput grid.
func Fig7(cfg Fig7Config) *ThroughputGrid {
	cfg = cfg.defaults()
	grid := &ThroughputGrid{
		Title:    fmt.Sprintf("Figure 7 (%s): throughput under DVFS on the Denver cluster", cfg.Kernel),
		XLabel:   "P",
		X:        cfg.Parallelisms,
		Policies: policyNames(cfg.Policies),
		Tput:     make([][]float64, len(cfg.Policies)),
	}
	wcfg := workloads.SyntheticConfig{Kernel: cfg.Kernel}.Defaults()
	wcfg.Tasks = cfg.Scale.Apply(wcfg.Tasks, 600)
	for i, pol := range cfg.Policies {
		grid.Tput[i] = make([]float64, len(cfg.Parallelisms))
		for j, par := range cfg.Parallelisms {
			grid.Tput[i][j] = runDVFSOnce(cfg, wcfg, pol, par, 0)
		}
	}
	return grid
}

// runDVFSOnce executes one DVFS cell with an optional PTT alpha override.
func runDVFSOnce(cfg Fig7Config, wcfg workloads.SyntheticConfig, pol core.Policy, parallelism int, alpha float64) float64 {
	topo, model := newModelTX2()
	interfere.DVFS(model, cfg.VictimCluster, cfg.HiHz, cfg.LoHz, cfg.HiDur, cfg.LoDur)
	wcfg.Parallelism = parallelism
	g := workloads.BuildSynthetic(wcfg)
	rt, err := simrt.New(simCfg(topo, model, pol, cfg.Seed, alpha))
	if err != nil {
		panic(fmt.Sprintf("experiments: fig7: %v", err))
	}
	coll, err := rt.Run(g)
	if err != nil {
		panic(fmt.Sprintf("experiments: fig7 %s P=%d: %v", pol.Name(), parallelism, err))
	}
	return coll.Throughput()
}

// runDVFSOnTopo runs the Stencil DVFS scenario on an arbitrary platform
// (used by the width ablation).
func runDVFSOnTopo(topo *topology.Platform, cfg AblationConfig, pol core.Policy, parallelism int) float64 {
	model := machine.New(topo)
	interfere.PaperDVFS(model, 0)
	wcfg := workloads.SyntheticConfig{Kernel: workloads.Stencil}.Defaults()
	wcfg.Tasks = cfg.Scale.Apply(wcfg.Tasks, 600)
	wcfg.Parallelism = parallelism
	g := workloads.BuildSynthetic(wcfg)
	rt, err := simrt.New(simCfg(topo, model, pol, cfg.Seed+7, 0))
	if err != nil {
		panic(fmt.Sprintf("experiments: width ablation: %v", err))
	}
	coll, err := rt.Run(g)
	if err != nil {
		panic(fmt.Sprintf("experiments: width ablation %s P=%d: %v", pol.Name(), parallelism, err))
	}
	return coll.Throughput()
}
