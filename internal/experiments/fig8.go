package experiments

import (
	"fmt"
	"io"

	"dynasym/internal/core"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// Fig8Config parameterizes the sensitivity analysis (Figure 8): MatMul DAG
// throughput as a function of the PTT update weight (new-sample weight
// alpha = 1/5 … 5/5) and the tile size (32, 64, 80, 96), under the same
// core-0 co-runner as Figure 4. Short tasks (tile 32) are sensitive to
// measurement outliers, so aggressive weights mis-steer the scheduler;
// larger tiles are insensitive — that is the paper's justification for the
// 1:4 weighted update.
type Fig8Config struct {
	Tiles    []int
	Alphas   []float64
	Policy   core.Policy
	Seed     uint64
	Scale    Scale
	Share    float64
	Parallel int
}

func (c Fig8Config) defaults() Fig8Config {
	if len(c.Tiles) == 0 {
		c.Tiles = []int{32, 64, 80, 96}
	}
	if len(c.Alphas) == 0 {
		c.Alphas = []float64{1.0 / 5, 2.0 / 5, 3.0 / 5, 4.0 / 5, 1.0}
	}
	if c.Policy == nil {
		c.Policy = core.DAMC()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Share == 0 {
		c.Share = 0.5
	}
	if c.Parallel == 0 {
		// Parallelism 2 keeps the run spine-bound, where critical-task
		// placement flips caused by noisy measurements actually cost
		// throughput (the paper's tile-32 sensitivity).
		c.Parallel = 2
	}
	return c
}

// Fig8Result holds throughput per (tile, alpha).
type Fig8Result struct {
	Tiles  []int
	Alphas []float64
	// Tput[i][j] is throughput for Tiles[i] at Alphas[j].
	Tput [][]float64
}

// Fig8 runs the sensitivity sweep: one scenario whose points are the full
// tile × alpha cross product.
func Fig8(cfg Fig8Config) *Fig8Result {
	cfg = cfg.defaults()
	label := func(tile int, alpha float64) string { return fmt.Sprintf("t%d/w%g", tile, alpha) }
	var points []scenario.Point
	for _, tile := range cfg.Tiles {
		for _, alpha := range cfg.Alphas {
			points = append(points, scenario.Point{Label: label(tile, alpha), Tile: tile, Alpha: alpha})
		}
	}
	sres := scenario.MustRun(scenario.Spec{
		Name:     "fig8",
		Platform: scenario.PlatformSpec{Preset: "tx2"},
		Workload: scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: workloads.SyntheticConfig{
			Kernel:      workloads.MatMul,
			Tasks:       cfg.Scale.Apply(32000, 600),
			Parallelism: cfg.Parallel,
		}},
		Disturb:  []scenario.Disturbance{{Kind: scenario.CoRunCPU, Cores: []int{0}, Share: cfg.Share}},
		Policies: []core.Policy{cfg.Policy},
		Points:   points,
		Seed:     cfg.Seed,
	})
	res := &Fig8Result{Tiles: cfg.Tiles, Alphas: cfg.Alphas, Tput: make([][]float64, len(cfg.Tiles))}
	for i, tile := range cfg.Tiles {
		res.Tput[i] = make([]float64, len(cfg.Alphas))
		for j, alpha := range cfg.Alphas {
			res.Tput[i][j] = sres.Cell(cfg.Policy.Name(), label(tile, alpha)).Run().Throughput
		}
	}
	return res
}

// Render prints tiles × alphas.
func (r *Fig8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "# Figure 8: PTT weight-ratio and tile-size sensitivity (MatMul, co-run on core 0)")
	fmt.Fprintf(w, "%-6s", "tile")
	for _, a := range r.Alphas {
		fmt.Fprintf(w, "  w=%.1f   ", a)
	}
	fmt.Fprintln(w)
	for i, tile := range r.Tiles {
		fmt.Fprintf(w, "%-6d", tile)
		for j := range r.Alphas {
			fmt.Fprintf(w, "%9.0f", r.Tput[i][j])
		}
		fmt.Fprintln(w)
	}
}

// Spread returns (max-min)/max throughput across alphas for a tile index —
// the paper reports ~36% for tile 32 and near-flat for larger tiles.
func (r *Fig8Result) Spread(i int) float64 {
	min, max := r.Tput[i][0], r.Tput[i][0]
	for _, v := range r.Tput[i] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 0
	}
	return (max - min) / max
}
