package experiments

import (
	"fmt"
	"io"

	"dynasym/internal/core"
	"dynasym/internal/metrics"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// Fig5Config parameterizes the priority-task placement analysis
// (Figure 5): the distribution of high-priority tasks over execution
// places, per scheduler, for the MatMul DAG at parallelism 2 with the
// co-runner on Denver core 0. Figure 6 (per-core work time) comes from the
// same runs.
type Fig5Config struct {
	Policies []core.Policy
	Seed     uint64
	Scale    Scale
	Share    float64
}

func (c Fig5Config) defaults() Fig5Config {
	if len(c.Policies) == 0 {
		c.Policies = core.All()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Share == 0 {
		c.Share = 0.5
	}
	return c
}

// Fig5Result holds, per policy, the high-priority place histogram and the
// per-core work times of the same run.
type Fig5Result struct {
	Policies []string
	Hists    [][]metrics.PlaceShare
	CoreBusy [][]float64 // [policy][core] seconds
	Makespan []float64
	Cores    int
}

// Fig5 runs the experiment: the Figure 4a scenario restricted to P=2, read
// out as place histograms and per-core work times instead of throughput.
func Fig5(cfg Fig5Config) *Fig5Result {
	cfg = cfg.defaults()
	spec := Fig4Config{
		Kernel:       workloads.MatMul,
		Parallelisms: []int{2},
		Policies:     cfg.Policies,
		Seed:         cfg.Seed,
		Share:        cfg.Share,
		Scale:        cfg.Scale,
	}.defaults().spec()
	spec.Name = "fig5"
	sres := scenario.MustRun(spec)
	res := &Fig5Result{Policies: sres.Policies, Cores: sres.Topo.NumCores()}
	for pi := range sres.Policies {
		run := sres.Cells[pi][0].Run()
		res.Hists = append(res.Hists, run.HighHist)
		res.CoreBusy = append(res.CoreBusy, run.CoreBusy)
		res.Makespan = append(res.Makespan, run.Makespan)
	}
	return res
}

// Render prints the place distribution per policy (the paper's pie charts
// as percentage lists).
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "# Figure 5: distribution of priority tasks over execution places (MatMul, P=2)")
	for i, p := range r.Policies {
		fmt.Fprintf(w, "%-8s", p)
		for k, ps := range r.Hists[i] {
			if ps.Frac < 0.001 || k > 7 {
				break
			}
			fmt.Fprintf(w, "  %s=%0.1f%%", ps.Place, ps.Frac*100)
		}
		fmt.Fprintln(w)
	}
}

// Share returns the fraction of priority tasks policy `name` placed on
// places whose leader is `leader` (any width), for shape assertions.
func (r *Fig5Result) Share(name string, leader int) float64 {
	for i, p := range r.Policies {
		if p != name {
			continue
		}
		total := 0.0
		for _, ps := range r.Hists[i] {
			if ps.Place.Leader == leader {
				total += ps.Frac
			}
		}
		return total
	}
	return 0
}

// Fig6Result renders the per-core work time view of the Figure 5 runs.
type Fig6Result struct{ *Fig5Result }

// Fig6 runs (or reuses) the Figure 5 configuration and returns the
// per-core work time result.
func Fig6(cfg Fig5Config) *Fig6Result { return &Fig6Result{Fig5(cfg)} }

// Render prints per-core cumulative kernel work time and the total
// execution time per scheduler (the paper's Figure 6 bars).
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "# Figure 6: per-core work time [s] and total execution time (MatMul, P=2, co-run on core 0)")
	fmt.Fprintf(w, "%-8s", "policy")
	for c := 0; c < r.Cores; c++ {
		fmt.Fprintf(w, "   core%-2d", c)
	}
	fmt.Fprintf(w, "%9s\n", "total")
	for i, p := range r.Policies {
		fmt.Fprintf(w, "%-8s", p)
		for _, v := range r.CoreBusy[i] {
			fmt.Fprintf(w, "%9.2f", v)
		}
		fmt.Fprintf(w, "%9.2f\n", r.Makespan[i])
	}
}

// CoreTime returns policy `name`'s work time on a core.
func (r *Fig5Result) CoreTime(name string, coreID int) float64 {
	for i, p := range r.Policies {
		if p == name {
			return r.CoreBusy[i][coreID]
		}
	}
	return 0
}
