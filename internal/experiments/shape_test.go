package experiments

import (
	"os"
	"testing"

	"dynasym/internal/workloads"
)

// The shape tests assert the qualitative findings of the paper's evaluation
// (DESIGN.md §4) at reduced scale. Verbose runs also print the rendered
// tables for eyeballing against the paper.

const testScale = Scale(0.08)

func TestFig4aShape(t *testing.T) {
	grid := Fig4(Fig4Config{Kernel: workloads.MatMul, Parallelisms: []int{2, 4, 6}, Scale: testScale})
	if testing.Verbose() {
		grid.Render(os.Stdout)
	}
	rws, fa, damc := grid.Get("RWS", 2), grid.Get("FA", 2), grid.Get("DAM-C", 2)
	if !(damc > fa && fa > rws) {
		t.Errorf("P=2 ordering: want DAM-C > FA > RWS, got DAM-C=%.0f FA=%.0f RWS=%.0f", damc, fa, rws)
	}
	if damc < 2*rws {
		t.Errorf("P=2: DAM-C should be ≥2× RWS (paper: up to 3.5×), got %.2f×", damc/rws)
	}
	if damc < 1.5*fa {
		t.Errorf("P=2: DAM-C should be ≥1.5× FA (paper: ~1.9×), got %.2f×", damc/fa)
	}
	// DAM-C saturates early: its P=2 throughput is already ≥70% of its
	// P=6 throughput, while RWS grows roughly linearly with P.
	if damc < 0.7*grid.Get("DAM-C", 6) {
		t.Errorf("DAM-C should saturate early: P=2 %.0f vs P=6 %.0f", damc, grid.Get("DAM-C", 6))
	}
	if r6 := grid.Get("RWS", 6); r6 < 2.2*rws {
		t.Errorf("RWS should scale ~linearly with P: P=6 %.0f vs P=2 %.0f", r6, rws)
	}
}

func TestFig9Shape(t *testing.T) {
	res := Fig9(Fig9Config{Iters: 40, From: 10, To: 30, Scale: Scale(0.25)})
	if testing.Verbose() {
		res.Render(os.Stdout)
	}
	// Inside the interference window the dynamic schedulers stay close to
	// their uninterfered pace while RWS degrades markedly (paper: DAM-P
	// best during interference, RWS worst with heavy wobble).
	rws := res.MeanSettledIterTime("RWS")
	damc := res.MeanSettledIterTime("DAM-C")
	damp := res.MeanSettledIterTime("DAM-P")
	if !(damc < rws && damp < rws) {
		t.Errorf("window iteration times: want DAM-C, DAM-P < RWS, got DAM-P=%.3g DAM-C=%.3g RWS=%.3g", damp, damc, rws)
	}
	if rws < 1.10*damc {
		t.Errorf("RWS should degrade ≥10%% vs DAM-C inside the window: RWS=%.3g DAM-C=%.3g", rws, damc)
	}
	if damp > 1.20*damc {
		t.Errorf("DAM-P should stay close to DAM-C inside the window: DAM-P=%.3g DAM-C=%.3g", damp, damc)
	}
	// DAM-P molds during interference (Figure 9c shows wide places).
	if ws := res.WideShare("DAM-P"); ws <= 0 {
		t.Errorf("DAM-P should use wide places during interference, wide share = %.3f", ws)
	}
}

func TestFig10Shape(t *testing.T) {
	res := Fig10(Fig10Config{Scale: Scale(0.5)})
	if testing.Verbose() {
		res.Render(os.Stdout)
	}
	rws, rwsm := res.Get("RWS"), res.Get("RWSM-C")
	da, damc, damp := res.Get("DA"), res.Get("DAM-C"), res.Get("DAM-P")
	if !(damc > rwsm && rwsm > rws) {
		t.Errorf("want DAM-C > RWSM-C > RWS, got DAM-C=%.0f RWSM-C=%.0f RWS=%.0f", damc, rwsm, rws)
	}
	if !(damc > da && damp > da) {
		t.Errorf("moldability should help Heat: want DAM-C, DAM-P > DA, got DAM-C=%.0f DAM-P=%.0f DA=%.0f", damc, damp, da)
	}
}
