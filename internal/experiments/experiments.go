// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment is a thin spec table over the
// declarative scenario engine (internal/scenario): the driver assembles a
// scenario.Spec literal (platform, disturbances, workload, policy set,
// sweep points), runs it, and reshapes the aggregated metrics into the
// figure's result type. cmd/asymbench exposes the drivers on the command
// line and the repository's benchmarks wrap them with testing.B.
//
// The experiment index lives in DESIGN.md §4; expected shapes (who wins,
// by roughly what factor) are asserted by this package's tests and recorded
// against the paper in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"dynasym/internal/scenario"
)

// Scale shrinks an experiment: 1.0 is paper scale, smaller values reduce
// task counts proportionally (minimum sizes keep results meaningful).
// Benchmarks use 0.1 to keep iterations fast; the CLI defaults to 1.0.
type Scale float64

// Apply scales a task count, keeping at least min.
func (s Scale) Apply(n, min int) int {
	if s <= 0 || s >= 1 {
		return n
	}
	scaled := int(float64(n) * float64(s))
	if scaled < min {
		return min
	}
	return scaled
}

// Names of the built-in experiments, in paper order.
func Names() []string {
	return []string{
		"table1",
		"fig4a", "fig4b", "fig4c",
		"fig5", "fig6",
		"fig7a", "fig7b", "fig7c",
		"fig8",
		"fig9a", "fig9b", "fig9c",
		"fig10",
		"ablation-alpha", "ablation-steal", "ablation-dheft", "ablation-width", "ablation-sampled", "ablation-infer",
	}
}

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render(w io.Writer)
}

// ThroughputGrid holds throughput [tasks/s] for policies × x-axis points
// (DAG parallelism for Figures 4 and 7).
type ThroughputGrid struct {
	Title    string
	XLabel   string
	X        []int
	Policies []string
	// Tput[i][j] is the throughput of Policies[i] at X[j].
	Tput [][]float64
}

// Render writes the grid as an aligned table, one row per policy.
func (g *ThroughputGrid) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", g.Title)
	fmt.Fprintf(w, "%-8s", g.XLabel)
	for _, x := range g.X {
		fmt.Fprintf(w, "%10d", x)
	}
	fmt.Fprintln(w)
	for i, p := range g.Policies {
		fmt.Fprintf(w, "%-8s", p)
		for j := range g.X {
			fmt.Fprintf(w, "%10.0f", g.Tput[i][j])
		}
		fmt.Fprintln(w)
	}
}

// Get returns the throughput for a policy name at parallelism x.
func (g *ThroughputGrid) Get(policy string, x int) float64 {
	pi, xi := -1, -1
	for i, p := range g.Policies {
		if p == policy {
			pi = i
		}
	}
	for j, v := range g.X {
		if v == x {
			xi = j
		}
	}
	if pi < 0 || xi < 0 {
		return 0
	}
	return g.Tput[pi][xi]
}

// gridFrom reshapes a scenario result into a throughput grid whose x-axis
// is the integer sweep the spec's points were built from.
func gridFrom(res *scenario.Result, title, xlabel string, xs []int) *ThroughputGrid {
	return &ThroughputGrid{
		Title:    title,
		XLabel:   xlabel,
		X:        xs,
		Policies: res.Policies,
		Tput:     res.Throughputs(),
	}
}

// bar renders a quick proportional ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
