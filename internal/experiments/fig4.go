package experiments

import (
	"fmt"

	"dynasym/internal/core"
	"dynasym/internal/interfere"
	"dynasym/internal/metrics"
	"dynasym/internal/simrt"
	"dynasym/internal/workloads"
)

// Fig4Config parameterizes the co-running interference experiment
// (Figure 4): throughput of the seven schedulers over DAG parallelism 2–6
// on the TX2, with a serial co-runner pinned to Denver core 0 for the whole
// execution. MatMul and Stencil face a compute-bound co-runner (CPU
// interference); Copy faces a streaming co-runner (memory interference).
type Fig4Config struct {
	Kernel       workloads.KernelKind
	Parallelisms []int
	Policies     []core.Policy
	Seed         uint64
	Scale        Scale
	// Share is the fraction of the victim core left to the runtime
	// (default 0.5: equal time-sharing with the co-runner).
	Share float64
	// BWFactor is the victim cluster's remaining memory bandwidth under
	// the streaming co-runner (Copy only; default 0.8).
	BWFactor float64
}

func (c Fig4Config) defaults() Fig4Config {
	if len(c.Parallelisms) == 0 {
		c.Parallelisms = []int{2, 3, 4, 5, 6}
	}
	if len(c.Policies) == 0 {
		c.Policies = core.All()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Share == 0 {
		c.Share = 0.5
	}
	if c.BWFactor == 0 {
		c.BWFactor = 0.8
	}
	return c
}

// Fig4 runs the experiment and returns the throughput grid.
func Fig4(cfg Fig4Config) *ThroughputGrid {
	cfg = cfg.defaults()
	grid := &ThroughputGrid{
		Title:    fmt.Sprintf("Figure 4 (%s): throughput under co-running interference on core 0", cfg.Kernel),
		XLabel:   "P",
		X:        cfg.Parallelisms,
		Policies: policyNames(cfg.Policies),
		Tput:     make([][]float64, len(cfg.Policies)),
	}
	wcfg := workloads.SyntheticConfig{Kernel: cfg.Kernel}.Defaults()
	wcfg.Tasks = cfg.Scale.Apply(wcfg.Tasks, 600)
	for i, pol := range cfg.Policies {
		grid.Tput[i] = make([]float64, len(cfg.Parallelisms))
		for j, par := range cfg.Parallelisms {
			coll := runFig4Once(cfg, wcfg, pol, par)
			grid.Tput[i][j] = coll.Throughput()
		}
	}
	return grid
}

// runFig4Once executes one (policy, parallelism) cell and returns its
// collector; Figures 5 and 6 reuse it for their single-cell analyses.
func runFig4Once(cfg Fig4Config, wcfg workloads.SyntheticConfig, pol core.Policy, parallelism int) *metrics.Collector {
	topo, model := newModelTX2()
	if cfg.Kernel == workloads.Copy {
		interfere.CoRunMemory(model, 0, cfg.Share, cfg.BWFactor)
	} else {
		interfere.CoRunCPU(model, []int{0}, cfg.Share)
	}
	wcfg.Parallelism = parallelism
	g := workloads.BuildSynthetic(wcfg)
	rt, err := simrt.New(simCfg(topo, model, pol, cfg.Seed, 0))
	if err != nil {
		panic(fmt.Sprintf("experiments: fig4: %v", err))
	}
	coll, err := rt.Run(g)
	if err != nil {
		panic(fmt.Sprintf("experiments: fig4 %s P=%d: %v", pol.Name(), parallelism, err))
	}
	return coll
}
