package experiments

import (
	"fmt"

	"dynasym/internal/core"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// Fig4Config parameterizes the co-running interference experiment
// (Figure 4): throughput of the seven schedulers over DAG parallelism 2–6
// on the TX2, with a serial co-runner pinned to Denver core 0 for the whole
// execution. MatMul and Stencil face a compute-bound co-runner (CPU
// interference); Copy faces a streaming co-runner (memory interference).
type Fig4Config struct {
	Kernel       workloads.KernelKind
	Parallelisms []int
	Policies     []core.Policy
	Seed         uint64
	Scale        Scale
	// Share is the fraction of the victim core left to the runtime
	// (default 0.5: equal time-sharing with the co-runner).
	Share float64
	// BWFactor is the victim cluster's remaining memory bandwidth under
	// the streaming co-runner (Copy only; default 0.8).
	BWFactor float64
}

func (c Fig4Config) defaults() Fig4Config {
	if len(c.Parallelisms) == 0 {
		c.Parallelisms = []int{2, 3, 4, 5, 6}
	}
	if len(c.Policies) == 0 {
		c.Policies = core.All()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Share == 0 {
		c.Share = 0.5
	}
	if c.BWFactor == 0 {
		c.BWFactor = 0.8
	}
	return c
}

// spec assembles the declarative scenario: TX2, the kernel's co-runner on
// core 0, a parallelism sweep. Figures 5 and 6 reuse it for their
// single-point analyses.
func (c Fig4Config) spec() scenario.Spec {
	wcfg := workloads.SyntheticConfig{Kernel: c.Kernel}.Defaults()
	wcfg.Tasks = c.Scale.Apply(wcfg.Tasks, 600)
	disturb := scenario.Disturbance{Kind: scenario.CoRunCPU, Cores: []int{0}, Share: c.Share}
	if c.Kernel == workloads.Copy {
		disturb = scenario.Disturbance{Kind: scenario.CoRunMemory, Cores: []int{0}, Share: c.Share, BWFactor: c.BWFactor}
	}
	return scenario.Spec{
		Name:     fmt.Sprintf("fig4-%s", c.Kernel),
		Platform: scenario.PlatformSpec{Preset: "tx2"},
		Workload: scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: wcfg},
		Disturb:  []scenario.Disturbance{disturb},
		Policies: c.Policies,
		Points:   scenario.ParallelismPoints(c.Parallelisms...),
		Seed:     c.Seed,
	}
}

// Fig4 runs the experiment and returns the throughput grid.
func Fig4(cfg Fig4Config) *ThroughputGrid {
	cfg = cfg.defaults()
	res := scenario.MustRun(cfg.spec())
	title := fmt.Sprintf("Figure 4 (%s): throughput under co-running interference on core 0", cfg.Kernel)
	return gridFrom(res, title, "P", cfg.Parallelisms)
}
