package experiments

import (
	"fmt"
	"io"

	"dynasym/internal/core"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// Fig10Config parameterizes the distributed 2D Heat experiment
// (Figure 10): four dual-socket 10-core nodes run the stencil with critical
// boundary-exchange (MPI) tasks while a compute-bound interferer occupies
// five cores of node 0's socket 0. The paper evaluates RWS, RWSM-C, DA,
// DAM-C and DAM-P.
type Fig10Config struct {
	Policies []core.Policy
	Seed     uint64
	Scale    Scale
	Share    float64
	// Latency/Bandwidth describe the interconnect (defaults: 2 µs,
	// 5 GB/s effective — FDR InfiniBand class).
	Latency, Bandwidth float64
	HD                 workloads.HeatDistConfig
}

func (c Fig10Config) defaults() Fig10Config {
	if len(c.Policies) == 0 {
		c.Policies = []core.Policy{core.RWS(), core.RWSMC(), core.DA(), core.DAMC(), core.DAMP()}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Share == 0 {
		c.Share = 0.35
	}
	if c.Latency == 0 {
		c.Latency = 2e-6
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 5e9
	}
	return c
}

// spec assembles the distributed scenario: one runtime per Haswell node on
// a shared clock and interconnect, the interferer on five cores of node
// 0's socket 0 from `warmup` seconds onward (0 = the whole run).
func (c Fig10Config) spec(name string, hdCfg workloads.HeatDistConfig, pols []core.Policy, warmup float64) scenario.Spec {
	disturb := scenario.Disturbance{Kind: scenario.CoRunCPU, Node: 0, Cores: []int{0, 1, 2, 3, 4}, Share: c.Share}
	if warmup > 0 {
		disturb.From, disturb.To = warmup, 1e18
	}
	return scenario.Spec{
		Name:      name,
		Platform:  scenario.PlatformSpec{Preset: "haswell-node"},
		Workload:  scenario.WorkloadSpec{Kind: scenario.HeatDist, Heat: hdCfg},
		Disturb:   []scenario.Disturbance{disturb},
		Policies:  pols,
		Seed:      c.Seed,
		Latency:   c.Latency,
		Bandwidth: c.Bandwidth,
	}
}

// Fig10Result holds throughput per policy.
type Fig10Result struct {
	Policies []string
	Tput     []float64
	Makespan []float64
	Tasks    int64
	// Warmup is the time at which the interferer started.
	Warmup float64
}

// Fig10 runs the distributed experiment through the scenario engine.
func Fig10(cfg Fig10Config) *Fig10Result {
	cfg = cfg.defaults()
	hdCfg := cfg.HD.Defaults()
	if cfg.Scale > 0 && cfg.Scale < 1 {
		hdCfg.Iters = cfg.Scale.Apply(hdCfg.Iters, 10)
	}
	// Calibrate the iteration pace (DAM-C, a few iterations) so the
	// co-runner can start after a training window, as in the paper ("the
	// co-running application starts a few iterations after the start
	// ensuring a reasonable window for training").
	calibCfg := hdCfg
	calibCfg.Iters = 10
	calib := scenario.MustRun(cfg.spec("fig10-calibration", calibCfg, []core.Policy{core.DAMC()}, 0))
	iterTime := calib.Cells[0][0].Run().Makespan / float64(calibCfg.Iters)
	warmup := 8 * iterTime

	sres := scenario.MustRun(cfg.spec("fig10", hdCfg, cfg.Policies, warmup))
	res := &Fig10Result{Policies: sres.Policies, Warmup: warmup}
	for pi := range sres.Policies {
		run := sres.Cells[pi][0].Run()
		res.Tput = append(res.Tput, run.Throughput)
		res.Makespan = append(res.Makespan, run.Makespan)
		res.Tasks = run.TasksDone
	}
	return res
}

// Render prints the per-policy throughput bars.
func (r *Fig10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "# Figure 10: distributed 2D Heat throughput on 4 nodes (interference on node 0, socket 0)")
	max := 0.0
	for _, v := range r.Tput {
		if v > max {
			max = v
		}
	}
	for i, p := range r.Policies {
		fmt.Fprintf(w, "%-8s%10.0f tasks/s  %s\n", p, r.Tput[i], bar(r.Tput[i], max, 40))
	}
}

// Get returns the throughput of a policy by name.
func (r *Fig10Result) Get(policy string) float64 {
	for i, p := range r.Policies {
		if p == policy {
			return r.Tput[i]
		}
	}
	return 0
}
