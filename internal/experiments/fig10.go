package experiments

import (
	"fmt"
	"io"

	"dynasym/internal/core"
	"dynasym/internal/interfere"
	"dynasym/internal/machine"
	"dynasym/internal/metrics"
	"dynasym/internal/sim"
	"dynasym/internal/simnet"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

// Fig10Config parameterizes the distributed 2D Heat experiment
// (Figure 10): four dual-socket 10-core nodes run the stencil with critical
// boundary-exchange (MPI) tasks while a compute-bound interferer occupies
// five cores of node 0's socket 0. The paper evaluates RWS, RWSM-C, DA,
// DAM-C and DAM-P.
type Fig10Config struct {
	Policies []core.Policy
	Seed     uint64
	Scale    Scale
	Share    float64
	// Latency/Bandwidth describe the interconnect (defaults: 2 µs,
	// 5 GB/s effective — FDR InfiniBand class).
	Latency, Bandwidth float64
	HD                 workloads.HeatDistConfig
}

func (c Fig10Config) defaults() Fig10Config {
	if len(c.Policies) == 0 {
		c.Policies = []core.Policy{core.RWS(), core.RWSMC(), core.DA(), core.DAMC(), core.DAMP()}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Share == 0 {
		c.Share = 0.35
	}
	if c.Latency == 0 {
		c.Latency = 2e-6
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 5e9
	}
	return c
}

// Fig10Result holds throughput per policy.
type Fig10Result struct {
	Policies []string
	Tput     []float64
	Makespan []float64
	Tasks    int64
	// Warmup is the time at which the interferer started.
	Warmup float64
}

// Fig10 runs the distributed experiment: one simulated runtime per node
// sharing a virtual clock and a simulated interconnect.
func Fig10(cfg Fig10Config) *Fig10Result {
	cfg = cfg.defaults()
	hdCfg := cfg.HD.Defaults()
	if cfg.Scale > 0 && cfg.Scale < 1 {
		hdCfg.Iters = cfg.Scale.Apply(hdCfg.Iters, 10)
	}
	// Calibrate the uninterfered iteration pace (DAM-C, a few iterations)
	// so the co-runner can start after a training window, as in the paper
	// ("the co-running application starts a few iterations after the
	// start ensuring a reasonable window for training").
	calibCfg := hdCfg
	calibCfg.Iters = 10
	_, calibSpan, _ := runFig10Once(cfg, calibCfg, core.DAMC(), 0)
	iterTime := calibSpan / float64(calibCfg.Iters)
	warmup := 8 * iterTime

	res := &Fig10Result{Policies: policyNames(cfg.Policies), Warmup: warmup}
	for _, pol := range cfg.Policies {
		tput, makespan, tasks := runFig10Once(cfg, hdCfg, pol, warmup)
		res.Tput = append(res.Tput, tput)
		res.Makespan = append(res.Makespan, makespan)
		res.Tasks = tasks
	}
	return res
}

// runFig10Once executes the 4-node simulation for one policy. The
// interferer starts at `warmup` seconds (0 = from the beginning) and stays
// for the rest of the run.
func runFig10Once(cfg Fig10Config, hdCfg workloads.HeatDistConfig, pol core.Policy, warmup float64) (tput, makespan float64, tasks int64) {
	engine := sim.New()
	net := simnet.New(engine, cfg.Latency, cfg.Bandwidth)
	hd := workloads.NewHeatDist(hdCfg)
	runtimes := make([]*simrt.Runtime, hd.Nodes)
	colls := make([]*metrics.Collector, hd.Nodes)
	for node := 0; node < hd.Nodes; node++ {
		topo := topology.HaswellNode(node)
		model := machine.New(topo)
		if node == 0 {
			// Five cores of socket 0 run the interfering matmul kernel.
			if warmup > 0 {
				interfere.CoRunCPUEpisode(model, []int{0, 1, 2, 3, 4}, cfg.Share, warmup, 1e18)
			} else {
				interfere.CoRunCPU(model, []int{0, 1, 2, 3, 4}, cfg.Share)
			}
		}
		rt, err := simrt.New(simrt.Config{
			Topo:   topo,
			Model:  model,
			Policy: pol,
			Seed:   cfg.Seed + uint64(node)*1009,
			Engine: engine,
			Hook:   hd.Hook(net),
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: fig10: %v", err))
		}
		if err := rt.Start(hd.BuildNode(node)); err != nil {
			panic(fmt.Sprintf("experiments: fig10 start node %d: %v", node, err))
		}
		runtimes[node] = rt
		colls[node] = rt.Collector()
	}
	engine.Run()
	for node, rt := range runtimes {
		if !rt.Finished() {
			panic(fmt.Sprintf("experiments: fig10 %s: node %d stalled (pending msgs: %d)", pol.Name(), node, net.Pending()))
		}
		if rt.Makespan() > makespan {
			makespan = rt.Makespan()
		}
		tasks += colls[node].TasksDone()
	}
	return float64(tasks) / makespan, makespan, tasks
}

// Render prints the per-policy throughput bars.
func (r *Fig10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "# Figure 10: distributed 2D Heat throughput on 4 nodes (interference on node 0, socket 0)")
	max := 0.0
	for _, v := range r.Tput {
		if v > max {
			max = v
		}
	}
	for i, p := range r.Policies {
		fmt.Fprintf(w, "%-8s%10.0f tasks/s  %s\n", p, r.Tput[i], bar(r.Tput[i], max, 40))
	}
}

// Get returns the throughput of a policy by name.
func (r *Fig10Result) Get(policy string) float64 {
	for i, p := range r.Policies {
		if p == policy {
			return r.Tput[i]
		}
	}
	return 0
}
