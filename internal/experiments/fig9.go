package experiments

import (
	"fmt"
	"io"
	"sort"

	"dynasym/internal/core"
	"dynasym/internal/metrics"
	"dynasym/internal/scenario"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

// Fig9Config parameterizes the K-means experiment (Figure 9): per-iteration
// execution time of RWS, DAM-C and DAM-P on the 16-core dual-socket Haswell
// node, with a co-runner occupying socket 0 during iterations
// [From, To). The paper's interference window is iterations 20–70 of 100.
type Fig9Config struct {
	Policies []core.Policy
	Iters    int
	From, To int
	Share    float64
	Seed     uint64
	Scale    Scale
	KM       workloads.KMeansConfig
}

func (c Fig9Config) defaults() Fig9Config {
	if len(c.Policies) == 0 {
		c.Policies = []core.Policy{core.RWS(), core.DAMC(), core.DAMP()}
	}
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.To == 0 {
		c.From, c.To = 20, 70
	}
	if c.Share == 0 {
		c.Share = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Fig9Result holds per-iteration statistics per policy. The interference
// window is defined in absolute virtual time (calibrated so it opens at
// iteration From under uninterfered pacing); because interference slows
// iterations down, the set of affected iteration indices differs per
// policy — InWindow reports the actual overlap.
type Fig9Result struct {
	Policies []string
	Stats    [][]metrics.IterStat
	Topo     *topology.Platform
	// WindowIters is the configured iteration window (paper labeling).
	WindowIters [2]int
	// WindowTime is the absolute interference interval in seconds.
	WindowTime [2]float64
	// AvgIter is the calibrated uninterfered iteration time.
	AvgIter float64
}

// kmeansSpec assembles the Haswell16 K-means scenario, optionally with the
// socket-0 co-runner active during [from, to) seconds of virtual time.
func kmeansSpec(name string, kmCfg workloads.KMeansConfig, pols []core.Policy, seed uint64, disturb []scenario.Disturbance) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Platform: scenario.PlatformSpec{Preset: "haswell16"},
		Workload: scenario.WorkloadSpec{Kind: scenario.KMeans, KMeans: kmCfg},
		Disturb:  disturb,
		Policies: pols,
		Seed:     seed,
	}
}

// Fig9 runs the experiment. The interference window is positioned in time
// by first calibrating the uninterfered iteration duration with DAM-C.
func Fig9(cfg Fig9Config) *Fig9Result {
	cfg = cfg.defaults()
	kmCfg := cfg.KM
	kmCfg.MaxIters = cfg.Iters
	if cfg.Scale > 0 && cfg.Scale < 1 {
		base := kmCfg.Defaults()
		kmCfg = base
		kmCfg.N = cfg.Scale.Apply(base.N, 1<<13)
	}

	// Calibration run: DAM-C, no interference.
	calib := scenario.MustRun(kmeansSpec("fig9-calibration", kmCfg, []core.Policy{core.DAMC()}, cfg.Seed, nil))
	stats := calib.Cells[0][0].Run().Iters
	total := 0.0
	for _, st := range stats {
		total += st.End - st.Start
	}
	avgIter := total / float64(len(stats))

	res := &Fig9Result{
		WindowIters: [2]int{cfg.From, cfg.To},
		WindowTime:  [2]float64{float64(cfg.From) * avgIter, float64(cfg.To) * avgIter},
		AvgIter:     avgIter,
	}
	// Main runs: the co-runner occupies all of socket 0 (cluster 0)
	// during the calibrated window.
	sres := scenario.MustRun(kmeansSpec("fig9", kmCfg, cfg.Policies, cfg.Seed, []scenario.Disturbance{{
		Kind:    scenario.CoRunCPU,
		Cluster: 0,
		Share:   cfg.Share,
		From:    res.WindowTime[0],
		To:      res.WindowTime[1],
	}}))
	res.Topo = sres.Topo
	res.Policies = sres.Policies
	for pi := range sres.Policies {
		res.Stats = append(res.Stats, sres.Cells[pi][0].Run().Iters)
	}
	return res
}

// policyIndex returns the row for a policy name, or -1.
func (r *Fig9Result) policyIndex(name string) int {
	for i, p := range r.Policies {
		if p == name {
			return i
		}
	}
	return -1
}

// InWindow reports whether iteration stat overlaps the interference
// interval.
func (r *Fig9Result) InWindow(st metrics.IterStat) bool {
	return st.End > r.WindowTime[0] && st.Start < r.WindowTime[1]
}

// InWindowSettled reports whether the iteration lies fully inside the
// interference interval, past the adaptation transient (the PTT needs a few
// observations before placements migrate, so the first post-onset
// iterations are excluded when comparing steady-state behaviour).
func (r *Fig9Result) InWindowSettled(st metrics.IterStat) bool {
	return st.Start >= r.WindowTime[0]+4*r.AvgIter && st.End <= r.WindowTime[1]
}

// MeanIterTime returns a policy's mean iteration wall time, either inside
// or outside the interference window.
func (r *Fig9Result) MeanIterTime(policy string, inWindow bool) float64 {
	i := r.policyIndex(policy)
	if i < 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, st := range r.Stats[i] {
		if r.InWindow(st) == inWindow {
			sum += st.End - st.Start
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanSettledIterTime returns a policy's mean iteration wall time over
// iterations fully inside the interference window, past the adaptation
// transient.
func (r *Fig9Result) MeanSettledIterTime(policy string) float64 {
	i := r.policyIndex(policy)
	if i < 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, st := range r.Stats[i] {
		if r.InWindowSettled(st) {
			sum += st.End - st.Start
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WideShare returns the fraction of tasks the policy executed at width > 1
// inside the interference window (Figure 9c's molding behaviour).
func (r *Fig9Result) WideShare(policy string) float64 {
	i := r.policyIndex(policy)
	if i < 0 {
		return 0
	}
	places := r.Topo.Places()
	var wide, total int64
	for _, st := range r.Stats[i] {
		if !r.InWindow(st) {
			continue
		}
		for id, n := range st.Places {
			total += n
			if places[id].Width > 1 {
				wide += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wide) / float64(total)
}

// Render prints Figure 9a (iteration times), marking iterations that
// overlap the interference window.
func (r *Fig9Result) Render(w io.Writer) {
	fmt.Fprintf(w, "# Figure 9a: K-means per-iteration time [ms]; interference window targets iterations [%d, %d)\n",
		r.WindowIters[0], r.WindowIters[1])
	fmt.Fprintf(w, "%-6s", "iter")
	for _, p := range r.Policies {
		fmt.Fprintf(w, "%10s", p)
	}
	fmt.Fprintln(w, "  (* = interfered, first policy's timeline)")
	n := 0
	for _, st := range r.Stats {
		if len(st) > n {
			n = len(st)
		}
	}
	for k := 0; k < n; k++ {
		fmt.Fprintf(w, "%-6d", k)
		interfered := false
		for i := range r.Policies {
			if k < len(r.Stats[i]) {
				fmt.Fprintf(w, "%10.2f", (r.Stats[i][k].End-r.Stats[i][k].Start)*1e3)
				if i == 0 {
					interfered = r.InWindow(r.Stats[i][k])
				}
			} else {
				fmt.Fprintf(w, "%10s", "-")
			}
		}
		if interfered {
			fmt.Fprint(w, "  *")
		}
		fmt.Fprintln(w)
	}
}

// RenderPlaces prints Figure 9b/c: per-iteration task counts per execution
// place for the given policy.
func (r *Fig9Result) RenderPlaces(w io.Writer, policy string) error {
	idx := r.policyIndex(policy)
	if idx < 0 {
		return fmt.Errorf("experiments: policy %q not in Figure 9 run", policy)
	}
	allPlaces := r.Topo.Places()
	seen := map[int]bool{}
	for _, st := range r.Stats[idx] {
		for id := range st.Places {
			seen[id] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Fprintf(w, "# Figure 9 (%s): task count per execution place per iteration\n", policy)
	fmt.Fprintf(w, "%-6s", "iter")
	for _, id := range ids {
		fmt.Fprintf(w, "%9s", allPlaces[id].String())
	}
	fmt.Fprintln(w)
	for k, st := range r.Stats[idx] {
		fmt.Fprintf(w, "%-6d", k)
		for _, id := range ids {
			fmt.Fprintf(w, "%9d", st.Places[id])
		}
		fmt.Fprintln(w)
	}
	return nil
}
